(* Command-line front end: the manual proactive-validation workflow (§5.1.2)
   over a directory of configuration files.

   Failure semantics: operator mistakes (unknown node names, bad addresses,
   unknown profiles) get a friendly message and a nonzero exit, never a raw
   exception; pipeline trouble surfaces as structured diagnostics
   (`diagnostics` command), and `--strict` turns Error/Fatal diagnostics into
   a nonzero exit for CI use. *)

open Cmdliner

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"CONFIG_DIR" ~doc:"Directory of configuration files")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit with a nonzero status if any Error or Fatal diagnostic was produced")

(* --domains accepts a worker count or "auto": auto picks a
   machine-appropriate count and turns on the adaptive cutoff, so small
   queries fall back to serial instead of paying fan-out overhead. *)
let domains_conv =
  let parse s =
    if s = "auto" then Ok `Auto
    else
      match int_of_string_opt s with
      | Some n -> Ok (`Fixed n)
      | None ->
        Error
          (`Msg (Printf.sprintf "invalid DOMAINS '%s' (an integer or 'auto')" s))
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Fixed n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let domains_arg =
  Arg.(value & opt domains_conv (`Fixed 1)
       & info [ "domains" ] ~docv:"DOMAINS"
           ~doc:"Worker domains for parallel computation (route exchange and \
                 sharded symbolic verification). Results are identical at any \
                 value; 0 picks a machine-appropriate count, and 'auto' \
                 additionally falls back to serial execution for queries too \
                 small to amortize the parallel fan-out.")

let resolve_domains = function
  | `Auto -> (Par.default_domains (), true)
  | `Fixed n -> ((if n <= 0 then Par.default_domains () else n), false)

(* --compress selects the forwarding-graph quotient mode. Answers are
   bit-identical at any setting; this only trades partition-refinement
   time against propagation time. *)
let compress_conv =
  let parse = function
    | "on" -> Ok `On
    | "off" -> Ok `Off
    | "auto" -> Ok `Auto
    | s -> Error (`Msg (Printf.sprintf "invalid MODE '%s' (on, off or auto)" s))
  in
  let print ppf (m : Fquery.compress_mode) =
    Format.pp_print_string ppf
      (match m with `On -> "on" | `Off -> "off" | `Auto -> "auto")
  in
  Arg.conv (parse, print)

let compress_arg =
  Arg.(value & opt compress_conv `Auto
       & info [ "compress" ] ~docv:"MODE"
           ~doc:"Quotient compression of the forwarding graph: 'on' always \
                 propagates over the behavioral-equivalence quotient, 'off' \
                 never does, 'auto' (default) enables it when the graph is \
                 large and compresses well. Results are bit-identical at any \
                 setting.")

let load ?(domains = `Fixed 1) ?(compress = `Auto) dir =
  let domains, auto_domains = resolve_domains domains in
  Batfish.init
    ~options:{ Dataplane.default_options with domains }
    ~auto_domains ~compress
    (Batfish.Snapshot.of_dir dir)

(* --- incremental mode (--base): CONFIG_DIR is a revision of BASE_DIR --- *)

let base_arg =
  Arg.(value & opt (some dir) None
       & info [ "base" ] ~docv:"BASE_DIR"
           ~doc:"Incremental mode (CI): treat $(docv) as the previously analyzed \
                 snapshot and CONFIG_DIR as its updated revision. Files whose \
                 content fingerprint is unchanged are not re-parsed, and \
                 data-plane commands re-simulate only the dirty dependency \
                 components; results are identical to a from-scratch run.")

(* Snapshot-level reuse (parse stage only): enough for commands that never
   compute a data plane. *)
let load_snapshot_incremental ?(domains = `Fixed 1) ~base dir =
  let domains, auto_domains = resolve_domains domains in
  let base_snap = Batfish.Snapshot.of_dir base in
  let files, diags = Batfish.Snapshot.read_dir dir in
  let snap = Batfish.Snapshot.of_texts ~diags ~base:base_snap files in
  Printf.printf "incremental: re-parsed %d of %d files, %d node(s) changed\n\n"
    (Batfish.Snapshot.reparsed snap) (List.length files)
    (List.length (Batfish.Snapshot.changed_nodes ~base:base_snap snap));
  Batfish.init ~options:{ Dataplane.default_options with domains } ~auto_domains
    snap

(* Full engine reuse: analyze BASE_DIR (data plane + forwarding graph), apply
   the revision via Batfish.update, and print the engine counters. *)
let load_update_incremental ?(domains = `Fixed 1) ?(compress = `Auto) ~base dir =
  let domains, auto_domains = resolve_domains domains in
  let bf0 =
    Batfish.init
      ~options:{ Dataplane.default_options with domains }
      ~auto_domains ~compress
      (Batfish.Snapshot.of_dir base)
  in
  ignore (Batfish.dataplane bf0);
  ignore (Batfish.try_forwarding bf0);
  let files, diags = Batfish.Snapshot.read_dir dir in
  let removed =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n files then None else Some n)
      (Batfish.Snapshot.files (Batfish.snapshot bf0))
  in
  let bf, report = Batfish.update ~removed ~diags ~files bf0 in
  Questions.print_answer (Batfish.answer_update_report report);
  print_newline ();
  bf

(* Operator-input errors: a friendly message and exit 1, never a raw
   exception at the user. *)
let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("error: " ^ msg); exit 1) fmt

let shortlist names =
  let shown = List.filteri (fun i _ -> i < 8) names in
  String.concat ", " shown ^ if List.length names > 8 then ", ..." else ""

let check_node bf name =
  let known = Batfish.Snapshot.node_names (Batfish.snapshot bf) in
  if not (List.mem name known) then
    die "unknown node '%s' (known nodes: %s)" name (shortlist known)

let known_protocols =
  [ "connected"; "local"; "static"; "ospf"; "ospfIA"; "ospfE1"; "ospfE2"; "bgp"; "ibgp" ]

let finish ~strict bf =
  if strict && Batfish.strict_failure bf then begin
    prerr_endline
      "strict: Error/Fatal diagnostics were produced (run the diagnostics command for details)";
    exit 1
  end

let print_answers answers =
  List.iter
    (fun a ->
      Questions.print_answer a;
      print_newline ())
    answers

(* --- parse --- *)

let parse_cmd =
  let run dir strict =
    let bf = load dir in
    print_answers
      [ Questions.node_properties (Batfish.Snapshot.configs (Batfish.snapshot bf));
        Batfish.answer_init_issues bf ];
    finish ~strict bf
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse configurations and report issues")
    Term.(const run $ dir_arg $ strict_arg)

(* --- diagnostics --- *)

let diagnostics_cmd =
  let dataplane =
    Arg.(value & flag
         & info [ "dataplane" ] ~doc:"Also compute the data plane and include its diagnostics")
  in
  let run dir dataplane strict =
    let bf = load dir in
    if dataplane then ignore (Batfish.dataplane bf);
    print_answers [ Batfish.answer_diagnostics bf ];
    finish ~strict bf
  in
  Cmd.v
    (Cmd.info "diagnostics"
       ~doc:"Show structured pipeline diagnostics (skipped files, quarantined nodes, budgets)")
    Term.(const run $ dir_arg $ dataplane $ strict_arg)

(* --- dataplane --- *)

let dataplane_cmd =
  let run dir domains strict =
    let bf = load ~domains dir in
    let t0 = Unix.gettimeofday () in
    let dp = Batfish.dataplane bf in
    Printf.printf "data plane: %d nodes, %d routes, converged=%b, %d BGP rounds (%.2fs)\n"
      (List.length dp.Dataplane.node_order)
      (Dataplane.total_routes dp) dp.Dataplane.converged dp.Dataplane.rounds
      (Unix.gettimeofday () -. t0);
    List.iter
      (fun (node, reason) -> Printf.printf "quarantined: %s (%s)\n" node reason)
      dp.Dataplane.quarantined;
    print_newline ();
    print_answers [ Batfish.answer_bgp_status bf ];
    finish ~strict bf
  in
  Cmd.v (Cmd.info "dataplane" ~doc:"Generate the data plane and show session status")
    Term.(const run $ dir_arg $ domains_arg $ strict_arg)

(* --- routes --- *)

let routes_cmd =
  let node = Arg.(value & opt (some string) None & info [ "node" ] ~doc:"Limit to one node") in
  let proto = Arg.(value & opt (some string) None & info [ "protocol" ] ~doc:"Limit to a protocol") in
  let run dir node protocol strict =
    let bf = load dir in
    Option.iter (check_node bf) node;
    Option.iter
      (fun p ->
        if not (List.mem p known_protocols) then
          die "unknown protocol '%s' (one of: %s)" p (String.concat ", " known_protocols))
      protocol;
    print_answers [ Batfish.answer_routes ?node ?protocol bf ];
    finish ~strict bf
  in
  Cmd.v (Cmd.info "routes" ~doc:"Show main-RIB routes")
    Term.(const run $ dir_arg $ node $ proto $ strict_arg)

(* --- lint --- *)

let lint_cmd =
  let dir =
    Arg.(value & pos 0 (some dir) None
         & info [] ~docv:"CONFIG_DIR" ~doc:"Directory of configuration files")
  in
  let select =
    Arg.(value & opt (some string) None
         & info [ "select" ] ~docv:"PASSES"
             ~doc:"Comma-separated lint passes to run (by name or LINT0xx code)")
  in
  let ignore_ =
    Arg.(value & opt (some string) None
         & info [ "ignore" ] ~docv:"PASSES"
             ~doc:"Comma-separated lint passes to skip (by name or LINT0xx code)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON report")
  in
  let fail_on =
    Arg.(value & opt (some string) None
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:"Exit 2 if any finding is at or above SEVERITY (info|warn|error|fatal)")
  in
  let list_passes =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered passes and exit")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"CI gate: shorthand for --fail-on warn (any finding fails the run)")
  in
  let run dir base select ignore_ json fail_on strict list_passes domains =
    if list_passes then begin
      List.iter
        (fun (p : Lint.pass) ->
          let dc =
            if List.mem p.Lint.p_code Lint.dead_config_passes then
              "  [dead-config report]"
            else ""
          in
          Printf.printf "%s  %-22s %s%s\n" p.p_code p.p_name p.p_doc dc)
        Lint.passes;
      exit 0
    end;
    let dir =
      match dir with
      | Some d -> d
      | None -> die "CONFIG_DIR required (or use --list to show the passes)"
    in
    let bf =
      match base with
      | Some b -> load_snapshot_incremental ~domains ~base:b dir
      | None -> load ~domains dir
    in
    let split = Option.map (String.split_on_char ',') in
    match Batfish.lint ?select:(split select) ?ignore_passes:(split ignore_) bf with
    | Error msg -> die "%s (passes: %s)" msg (String.concat ", " Lint.pass_names)
    | Ok report ->
      print_string
        (if json then Lint.report_to_json report ^ "\n" else Lint.report_to_text report);
      let threshold =
        match fail_on with
        | Some s -> (
          match Diag.severity_of_string s with
          | Some sv -> Some sv
          | None -> die "unknown severity '%s' (info|warn|error|fatal)" s)
        | None -> if strict then Some Diag.Warn else None
      in
      (match threshold with
       | Some sv when Lint.count_at_least sv report > 0 -> exit 2
       | _ -> ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis lint passes over a snapshot (no data plane computed)")
    Term.(const run $ dir $ base_arg $ select $ ignore_ $ json $ fail_on $ strict $ list_passes $ domains_arg)

(* --- coverage --- *)

let coverage_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the machine-readable JSON report")
  in
  let run dir base domains json strict =
    let bf =
      match base with
      | Some b -> load_update_incremental ~domains ~base:b dir
      | None -> load ~domains dir
    in
    let report = Batfish.coverage bf in
    print_string
      (if json then Coverage.report_to_json report
       else Coverage.report_to_text report);
    finish ~strict bf
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Report which config source lines the query set exercises: \
             per-file covered/uncovered/dead lines plus the unified \
             dead-config report (lint dead lines and never-exercised lines \
             in one ranked view)")
    Term.(const run $ dir_arg $ base_arg $ domains_arg $ json $ strict_arg)

(* --- checks --- *)

let check_cmd =
  let run dir base domains strict =
    let bf =
      match base with
      | Some b ->
        (* full engine reuse so the report shows the route-delta counters
           (frontierSize, nodesConvergedEarly) alongside the hygiene checks *)
        load_update_incremental ~domains ~base:b dir
      | None -> load ~domains dir
    in
    print_answers (Batfish.check_all bf);
    finish ~strict bf
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the configuration-hygiene battery (references, duplicate IPs, BGP compatibility, consistency)")
    Term.(const run $ dir_arg $ base_arg $ domains_arg $ strict_arg)

(* --- trace --- *)

let trace_cmd =
  let start = Arg.(required & opt (some string) None & info [ "start" ] ~doc:"Start node") in
  let ingress = Arg.(value & opt (some string) None & info [ "ingress" ] ~doc:"Ingress interface") in
  let src = Arg.(required & opt (some string) None & info [ "src" ] ~doc:"Source IP") in
  let dst = Arg.(required & opt (some string) None & info [ "dst" ] ~doc:"Destination IP") in
  let dport = Arg.(value & opt int 80 & info [ "dport" ] ~doc:"Destination port") in
  let proto = Arg.(value & opt string "tcp" & info [ "proto" ] ~doc:"tcp | udp | icmp") in
  let run dir start ingress src dst dport proto =
    let bf = load dir in
    check_node bf start;
    let ip what s =
      match Ipv4.of_string_opt s with
      | Some ip -> ip
      | None -> die "bad %s address '%s'" what s
    in
    let src = ip "source" src and dst = ip "destination" dst in
    let pkt =
      match proto with
      | "udp" -> Packet.udp ~src ~dst dport
      | "icmp" -> Packet.icmp ~src ~dst ()
      | "tcp" -> Packet.tcp ~src ~dst dport
      | p -> die "unknown protocol '%s' (tcp | udp | icmp)" p
    in
    Printf.printf "traceroute %s from %s:\n" (Packet.to_string pkt) start;
    List.iter
      (fun tr -> print_endline (Traceroute.trace_to_string tr))
      (Batfish.traceroute bf ~start ?ingress pkt)
  in
  Cmd.v (Cmd.info "trace" ~doc:"Concrete traceroute through the computed data plane")
    Term.(const run $ dir_arg $ start $ ingress $ src $ dst $ dport $ proto)

(* --- reach --- *)

let reach_cmd =
  let src = Arg.(required & opt (some string) None & info [ "src" ] ~doc:"Start as NODE or NODE/IFACE") in
  let dst = Arg.(required & opt (some string) None & info [ "dst-prefix" ] ~doc:"Destination prefix") in
  let run dir src dst compress =
    let bf = load ~compress dir in
    let src =
      match String.index_opt src '/' with
      | Some i ->
        (String.sub src 0 i, Some (String.sub src (i + 1) (String.length src - i - 1)))
      | None -> (src, None)
    in
    check_node bf (fst src);
    let dst_ip =
      match Prefix.of_string_opt dst with
      | Some p -> p
      | None -> die "bad destination prefix '%s'" dst
    in
    print_answers [ Batfish.answer_reachability bf ~src ~dst_ip () ]
  in
  Cmd.v (Cmd.info "reach" ~doc:"Symbolic reachability with examples")
    Term.(const run $ dir_arg $ src $ dst $ compress_arg)

(* --- verify (multipath + loops) --- *)

let verify_cmd =
  let all_pairs =
    Arg.(value & flag
         & info [ "all-pairs" ]
             ~doc:"Also run all-pairs reachability (one forward pass per edge \
                   interface, fanned across --domains workers)")
  in
  let failures =
    Arg.(value & opt int 0
         & info [ "failures" ] ~docv:"K"
             ~doc:"Also verify reachability under every failure scenario of \
                   up to $(docv) (1 or 2) simultaneous link/node failures: \
                   symmetric scenarios are pruned by forwarding-atom \
                   equivalence and the rest re-simulated warm from the base \
                   fixed point")
  in
  let run dir base domains all_pairs failures compress =
    if failures < 0 || failures > 2 then
      die "--failures supports k = 1 (single failures) or k = 2 (double failures)";
    let bf =
      match base with
      | Some b -> load_update_incremental ~domains ~compress ~base:b dir
      | None -> load ~domains ~compress dir
    in
    print_answers
      ([ Batfish.answer_multipath_consistency bf; Batfish.answer_loops bf ]
      @ (if all_pairs then [ Batfish.answer_all_pairs bf ] else []));
    if failures > 0 then begin
      let report, answers = Batfish.answer_failures ~k:failures bf in
      print_answers answers;
      List.iter
        (fun (sc, why) ->
          Printf.printf "inconclusive: %s: %s\n" (Failures.scenario_to_string sc) why)
        report.Failures.rp_inconclusive
    end;
    (* Engine counters for CI logs: op-cache health of the main manager,
       session-pool usage, and worker-resident graph reuse. *)
    (match Batfish.try_forwarding bf with
     | Error _ -> ()
     | Ok fq ->
       let cs = Bdd.cache_stats (Pktset.man (Fquery.env fq)) in
       let lookups = cs.Bdd.cs_hits + cs.Bdd.cs_misses in
       Printf.printf
         "bdd op-cache: %d/%d lookups hit (%.1f%%), %d/%d entries filled (%.1f%%)\n"
         cs.Bdd.cs_hits lookups
         (if lookups = 0 then 0.0
          else 100.0 *. float_of_int cs.Bdd.cs_hits /. float_of_int lookups)
         cs.Bdd.cs_filled cs.Bdd.cs_entries
         (if cs.Bdd.cs_entries = 0 then 0.0
          else
            100.0 *. float_of_int cs.Bdd.cs_filled
            /. float_of_int cs.Bdd.cs_entries);
       match Fquery.compression_info fq with
       | None -> ()
       | Some (ratio, classes, _) ->
         let passes, fallbacks = Fquery.compress_stats fq in
         Printf.printf
           "quotient compression: %d classes over %d locations (ratio %.2f), \
            %d compressed pass(es), %d fallback(s)\n"
           classes
           (Fgraph.n_locs (Fquery.graph fq))
           ratio passes fallbacks);
    (match Batfish.pool_stats bf with
     | None -> ()
     | Some (workers, jobs) ->
       let imports, reuses = Fpar.worker_stats () in
       Printf.printf
         "worker pool: %d workers, %d jobs; graphs imported %d, reused warm %d\n"
         workers jobs imports reuses);
    Batfish.shutdown bf
  in
  Cmd.v (Cmd.info "verify" ~doc:"Multipath consistency and loop detection")
    Term.(
      const run $ dir_arg $ base_arg $ domains_arg $ all_pairs $ failures
      $ compress_arg)

(* --- serve: analysis as a service --- *)

let serve_cmd =
  let socket =
    Arg.(value & opt string "/tmp/batfish.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on (replaced if it exists)")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Also listen on localhost:$(docv) (same protocol)")
  in
  let preload =
    Arg.(value & opt_all dir []
         & info [ "preload" ] ~docv:"CONFIG_DIR"
             ~doc:"Load this snapshot at startup (repeatable); its forwarding \
                   graph is imported into every worker before the first \
                   client query, so cold-start latency is paid here, not in \
                   a request")
  in
  let serve_domains =
    Arg.(value & opt domains_conv `Auto
         & info [ "domains" ] ~docv:"DOMAINS"
             ~doc:"Worker domains for the shared session pool (default \
                   'auto': machine-appropriate count with the adaptive \
                   serial fallback)")
  in
  let max_snapshots =
    Arg.(value & opt (some int) None
         & info [ "max-snapshots" ] ~docv:"N"
             ~doc:"Keep at most $(docv) snapshots loaded: registering one \
                   past the bound evicts the least recently queried snapshot \
                   (eviction counts appear under 'stats'). Unbounded by \
                   default.")
  in
  let run socket tcp preload domains max_snapshots compress =
    let domains, auto = resolve_domains domains in
    let svc = Service.create ~domains ~auto ?max_snapshots ~compress () in
    List.iter
      (fun dir ->
        let files, _ = Batfish.Snapshot.read_dir dir in
        let fp = Service.load_files svc files in
        Printf.printf "preloaded %s as %s (%d files)\n%!" dir fp
          (List.length files))
      preload;
    Printf.printf "serving on %s%s (%d worker domain%s); SIGINT/SIGTERM to stop\n%!"
      socket
      (match tcp with Some p -> Printf.sprintf " and localhost:%d" p | None -> "")
      domains
      (if domains = 1 then "" else "s");
    Service.serve ?tcp_port:tcp ~socket svc;
    let s = Service.stats svc in
    Printf.printf
      "served %d request(s): %d computed, %d coalesced, %d error(s), %d \
       snapshot(s) live, %d evicted\n"
      s.Service.st_requests s.Service.st_computed s.Service.st_coalesced
      s.Service.st_errors s.Service.st_snapshots s.Service.st_evictions
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived analysis daemon: newline-delimited JSON requests \
             over a Unix-domain (and optional TCP) socket, sharing parsed \
             snapshots, data planes and warm worker caches across clients")
    Term.(
      const run $ socket $ tcp $ preload $ serve_domains $ max_snapshots
      $ compress_arg)

(* --- netgen --- *)

let netgen_cmd =
  let profile =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE"
           ~doc:"NET1..NET13, or clos/enterprise/wan/campus")
  in
  let out = Arg.(required & opt (some string) None & info [ "out" ] ~doc:"Output directory") in
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Size multiplier") in
  let run profile out scale =
    let net =
      match List.find_opt (fun (p : Netgen.profile) -> p.Netgen.p_name = profile) Netgen.profiles with
      | Some p -> p.p_make scale
      | None -> (
        match profile with
        | "clos" -> Netgen.clos ~name:"clos" ~spines:4 ~leaves:(int_of_float (8.0 *. scale)) ()
        | "enterprise" -> Netgen.enterprise ~name:"ent" ~sites:(int_of_float (8.0 *. scale)) ()
        | "wan" -> Netgen.wan ~name:"wan" ~pops:(int_of_float (16.0 *. scale)) ()
        | "campus" -> Netgen.campus ~name:"campus" ~buildings:(int_of_float (8.0 *. scale)) ()
        | p ->
          die "unknown profile '%s' (NET1..NET13, clos, enterprise, wan, campus)" p)
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun (name, text) ->
        let oc = open_out (Filename.concat out name) in
        output_string oc text;
        close_out oc)
      net.Netgen.n_configs;
    Printf.printf "wrote %d configs (%d lines) to %s\n" (Netgen.device_count net)
      (Netgen.config_lines net) out
  in
  Cmd.v (Cmd.info "netgen" ~doc:"Generate a synthetic network's configurations")
    Term.(const run $ profile $ out $ scale)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "batfish_cli" ~version:"1.0"
             ~doc:"Configuration analysis: parse, simulate, verify")
          [ parse_cmd; diagnostics_cmd; dataplane_cmd; routes_cmd; lint_cmd; coverage_cmd;
            check_cmd; trace_cmd; reach_cmd; verify_cmd; serve_cmd; netgen_cmd ]))
