(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe                 -- everything, default scale
     dune exec bench/main.exe -- table1 table2 --scale 2
     dune exec bench/main.exe -- fig1 fig3 apt ablations micro

   Absolute numbers depend on this machine; the shapes (who wins, by what
   order of magnitude) are the reproduction target. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fmt_s t = if t < 0.001 then Printf.sprintf "%.2fms" (t *. 1000.0) else Printf.sprintf "%.3fs" t

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every benchmark also records its numbers  *)
(* here, and the harness writes BENCH_results.json on exit so the perf *)
(* trajectory can be tracked across PRs.                               *)
(* ------------------------------------------------------------------ *)

let m_f k v = (k, Printf.sprintf "%.6f" v)
let m_i k v = (k, string_of_int v)
let m_b k v = (k, if v then "true" else "false")

(* Peak resident set size (VmHWM) in kB from /proc/self/status; 0 when the
   proc filesystem is unavailable (non-Linux). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
    let rec scan acc =
      match input_line ic with
      | line ->
        (match Scanf.sscanf_opt line "VmHWM: %d kB" (fun v -> v) with
        | Some v -> scan v
        | None -> scan acc)
      | exception End_of_file -> acc
    in
    let v = scan 0 in
    close_in ic;
    v

let records : (string * (string * string) list) list ref = ref []

(* Every record carries the process footprint at the moment it was taken:
   peak RSS plus the node total across every live BDD manager (schema 4) —
   worker-resident managers included, which per-section [m_bdd] cannot see. *)
let record name metrics =
  let live_managers, global_nodes = Bdd.global_stats () in
  records :=
    (name,
     metrics
     @ [ m_i "peak_rss_kb" (peak_rss_kb ());
         m_i "bdd_live_managers" live_managers;
         m_i "bdd_global_nodes" global_nodes ])
    :: !records

(* BDD-manager counters as metrics: nodes, op-cache hits/misses, current
   op-cache capacity and occupancy. *)
let m_bdd man =
  let nodes, _, _ = Bdd.stats man in
  let cs = Bdd.cache_stats man in
  [ m_i "bdd_nodes" nodes; m_i "cache_hits" cs.Bdd.cs_hits;
    m_i "cache_misses" cs.Bdd.cs_misses; m_i "cache_entries" cs.Bdd.cs_entries;
    m_i "cache_filled" cs.Bdd.cs_filled ]

let write_results ~scale ~domains () =
  let oc = open_out "BENCH_results.json" in
  let entry (name, metrics) =
    Printf.sprintf "    {\"name\": \"%s\"%s}" name
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %s" k v) metrics))
  in
  Printf.fprintf oc
    "{\n  \"schema\": 8,\n  \"scale\": %g,\n  \"domains\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    scale domains
    (String.concat ",\n" (List.map entry (List.rev !records)));
  close_out oc;
  Printf.printf "wrote BENCH_results.json (%d results)\n" (List.length !records)

(* CI gate: any record carrying identical=false means a parallel or
   incremental path diverged from the sequential engine — fail the run even
   if the section that produced it did not exit itself. *)
let check_identical () =
  let bad =
    List.filter
      (fun (_, metrics) -> List.mem ("identical", "false") metrics)
      !records
  in
  if bad <> [] then begin
    List.iter
      (fun (name, _) ->
        Printf.printf "ERROR: %s: results not identical to the sequential engine\n" name)
      bad;
    exit 1
  end

(* Performance gates beyond bit-identity: the two service-mode regressions
   this harness exists to catch. A cold sharded fan-out losing to serial
   means the prewarm path stopped hiding the per-worker graph import; a
   service run with zero coalesced requests means in-flight coalescing went
   inert and every concurrent duplicate paid a full computation. *)
let check_gates () =
  let bad = ref [] in
  List.iter
    (fun (name, metrics) ->
      let fv k = Option.bind (List.assoc_opt k metrics) float_of_string_opt in
      (match fv "speedup_cold" with
      | Some s when s < 1.0 ->
        bad :=
          Printf.sprintf
            "%s: speedup_cold %.2f < 1.0 (cold sharded fan-out lost to serial)"
            name s
          :: !bad
      | Some _ | None -> ());
      (* the sweep's largest scale factor must show compression winning;
         smaller factors may legitimately hover around 1.0. At >= 500
         devices the all-pairs sweep itself must win by >= 2x (the ISSUE 10
         acceptance bar). *)
      (match (fv "sweep_speedup", List.assoc_opt "sweep_largest" metrics) with
      | Some s, Some "true" when s < 1.0 ->
        bad :=
          Printf.sprintf
            "%s: compression speedup %.2f < 1.0 at the largest sweep scale"
            name s
          :: !bad
      | _ -> ());
      (match
         (fv "all_pairs_speedup", fv "devices",
          List.assoc_opt "sweep_largest" metrics)
       with
      | Some s, Some d, Some "true" when d >= 500.0 && s < 2.0 ->
        bad :=
          Printf.sprintf
            "%s: all-pairs speedup %.2f < 2.0 at %.0f devices" name s d
          :: !bad
      | _ -> ());
      if String.length name >= 8 && String.sub name 0 8 = "service." then
        match fv "coalesced" with
        | Some c when c < 1.0 ->
          bad :=
            (name ^ ": no coalesced requests (in-flight coalescing inert)")
            :: !bad
        | Some _ | None -> ())
    !records;
  if !bad <> [] then begin
    List.iter (fun m -> Printf.printf "ERROR: %s\n" m) !bad;
    exit 1
  end

let load_profile ~scale (p : Netgen.profile) =
  let net = p.p_make scale in
  let texts = net.Netgen.n_configs in
  let snap, parse_t = time (fun () -> Batfish.Snapshot.of_texts texts) in
  (net, snap, parse_t)

(* ------------------------------------------------------------------ *)
(* Table 1: the networks                                              *)
(* ------------------------------------------------------------------ *)

let table1 ~scale () =
  print_endline "== Table 1: benchmark networks (synthetic stand-ins for the paper's 11) ==";
  let rows =
    List.map
      (fun (p : Netgen.profile) ->
        let net, snap, _ = load_profile ~scale p in
        let bf = Batfish.init ~env:net.Netgen.n_env snap in
        let dp = Batfish.dataplane bf in
        [ p.p_name; net.Netgen.n_type;
          string_of_int (Netgen.device_count net);
          string_of_int (Netgen.config_lines net);
          string_of_int (Dataplane.total_routes dp);
          p.p_protocols; p.p_vendors ])
      Netgen.profiles
  in
  Table.print
    ~header:[ "network"; "type"; "devices"; "LoC"; "routes"; "protocols"; "vendors" ]
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2: performance of current Batfish                            *)
(* ------------------------------------------------------------------ *)

let table2 ~scale () =
  print_endline "== Table 2: current-engine performance per network ==";
  let rows =
    List.map
      (fun (p : Netgen.profile) ->
        let net, snap, parse_t = load_profile ~scale p in
        let bf = Batfish.init ~env:net.Netgen.n_env snap in
        let dp, dp_t = time (fun () -> Batfish.dataplane bf) in
        let q, graph_t = time (fun () -> Batfish.forwarding bf) in
        (* destination reachability: one backward pass toward the first host
           subnet (§4.2.3 backward propagation) *)
        let e = Fquery.env q in
        let dst = Prefix.make (Ipv4.of_octets 172 16 0 0) 24 in
        let _, dest_t =
          time (fun () -> Fquery.to_delivered q ~hdr:(Pktset.dst_prefix e dst) ())
        in
        let _, mpc_t = time (fun () -> Fquery.multipath_consistency q ()) in
        ignore dp;
        record
          (Printf.sprintf "table2.%s" p.p_name)
          ([ m_i "devices" (Netgen.device_count net); m_f "parse_s" parse_t;
             m_f "dataplane_s" dp_t; m_f "graph_s" graph_t; m_f "dest_reach_s" dest_t;
             m_f "multipath_s" mpc_t ]
          @ m_bdd (Pktset.man e));
        [ p.p_name; string_of_int (Netgen.device_count net); fmt_s parse_t; fmt_s dp_t;
          fmt_s graph_t; fmt_s dest_t; fmt_s mpc_t ])
      Netgen.profiles
  in
  Table.print
    ~header:
      [ "network"; "devices"; "parse"; "DP gen"; "graph build"; "dest reach";
        "multipath cons." ]
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 3: current vs original engines                              *)
(* ------------------------------------------------------------------ *)

let fig3_one ~leaves () =
  let net = Netgen.clos ~name:"net1o" ~spines:4 ~leaves () in
  let texts = net.Netgen.n_configs in
  let snap, parse_t = time (fun () -> Batfish.Snapshot.of_texts texts) in
  let configs = Batfish.Snapshot.configs snap in
  let dp, imp_t = time (fun () -> Dataplane.compute ~env:net.Netgen.n_env configs) in
  let dl, dl_t = time (fun () -> Datalog_cp.run ~configs ~env:net.Netgen.n_env) in
  let find name = Batfish.Snapshot.find snap name in
  let q, _ = time (fun () -> Fquery.make ~configs:find ~dp ()) in
  let _, bdd_t = time (fun () -> Fquery.multipath_consistency q ()) in
  let hsa, _ = time (fun () -> Hsa_engine.build ~configs:find ~dp) in
  let _, hsa_t = time (fun () -> Hsa_engine.multipath_consistency hsa) in
  [ [ Printf.sprintf "%d devices: parsing" (Netgen.device_count net);
      fmt_s parse_t; fmt_s parse_t; "1x" ];
    [ "  data plane generation"; fmt_s dl_t; fmt_s imp_t;
      Printf.sprintf "%.0fx" (dl_t /. imp_t) ];
    [ Printf.sprintf "  data plane verification (%d facts retained)"
        dl.Datalog_cp.derived_facts;
      fmt_s hsa_t; fmt_s bdd_t; Printf.sprintf "%.0fx" (hsa_t /. bdd_t) ] ]

let fig3 ~scale () =
  print_endline "== Figure 3: current vs original Batfish (NET1-class networks) ==";
  print_endline "   (original = Datalog control plane + difference-of-cubes verification;";
  print_endline "    the gap grows super-linearly: at the paper's network sizes it reaches";
  print_endline "    three orders of magnitude for generation)";
  let sizes =
    List.map (fun l -> max 2 (int_of_float (float_of_int l *. scale))) [ 10; 20; 30 ]
  in
  let rows = List.concat_map (fun leaves -> fig3_one ~leaves ()) sizes in
  Table.print ~header:[ "stage"; "original"; "current"; "speedup" ] rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 1: convergence patterns                                     *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  print_endline "== Figure 1(b): mutual-export pattern under different schedules ==";
  let net = Netgen.fig1b () in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let configs = Batfish.Snapshot.configs snap in
  let run schedule clocks =
    let options =
      { Dataplane.default_options with schedule; use_logical_clocks = clocks;
        max_rounds = 60 }
    in
    Dataplane.compute ~options ~env:net.Netgen.n_env configs
  in
  let rows =
    List.map
      (fun (label, schedule, clocks) ->
        let dp = run schedule clocks in
        [ label;
          (if dp.Dataplane.converged then "converged" else "did NOT converge");
          (if dp.Dataplane.oscillated then "oscillation detected" else "-");
          string_of_int dp.Dataplane.rounds ])
      [ ("lockstep (naive parallelism)", Dataplane.Lockstep, true);
        ("colored schedule + logical clocks", Dataplane.Colored, true);
        ("colored, no logical clocks", Dataplane.Colored, false) ]
  in
  Table.print ~header:[ "schedule"; "outcome"; "pathology"; "BGP rounds" ] rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* §6.2: comparison with Atomic Predicates                            *)
(* ------------------------------------------------------------------ *)

let apt ~scale () =
  print_endline "== APT comparison (§6.2): 92-node network, dest reachability ==";
  (* A WAN, like APT's largest published network (Internet2-class, dst-only
     forwarding predicates). *)
  let pops = max 8 (int_of_float (92.0 *. scale)) in
  let net = Netgen.wan ~name:"apt" ~pops () in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  Printf.printf "   network: %d devices\n" (Netgen.device_count net);
  let bf = Batfish.init ~env:net.Netgen.n_env snap in
  let dp = Batfish.dataplane bf in
  let find = Batfish.Snapshot.find snap in
  (* Batfish: graph build + one destination-reachability query *)
  let q, bf_graph_t = time (fun () -> Fquery.make ~configs:find ~dp ()) in
  let e = Fquery.env q in
  let dst = Prefix.make (Ipv4.of_octets 172 16 0 0) 24 in
  let _, bf_query_t =
    time (fun () -> Fquery.to_delivered q ~hdr:(Pktset.dst_prefix e dst) ())
  in
  (* APT: the same graph, plus atom computation, then the query *)
  let apt_t0 = Unix.gettimeofday () in
  let g2 = Fgraph.build ~env:e ~configs:find ~dp () in
  let atoms = Apt.build g2 in
  let apt_build_t = Unix.gettimeofday () -. apt_t0 in
  let targets =
    Fgraph.locs_where g2 (function
      | Fgraph.Dst _ | Fgraph.Accept _ -> true
      | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false)
  in
  let src =
    Option.get
      (Fgraph.loc_id g2
         (Fgraph.Src ("apt-p0", "Loopback0")))
  in
  let _, apt_query_t = time (fun () -> Apt.reach atoms g2 ~src ~targets) in
  Table.print
    ~header:[ "engine"; "build (graph+atoms)"; "dest-reach query"; "total" ]
    [ [ "Batfish BDD dataflow"; fmt_s bf_graph_t; fmt_s bf_query_t;
        fmt_s (bf_graph_t +. bf_query_t) ];
      [ Printf.sprintf "Atomic Predicates (%d atoms)" (Apt.atom_count atoms);
        fmt_s apt_build_t; fmt_s apt_query_t; fmt_s (apt_build_t +. apt_query_t) ] ];
  Printf.printf "   advantage: %.0fx\n\n"
    ((apt_build_t +. apt_query_t) /. (bf_graph_t +. bf_query_t))

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let ablations ~scale () =
  print_endline "== Ablations of the design choices ==";
  (* 1. attribute interning (§4.1.3) *)
  let p8 = List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = "NET8") Netgen.profiles in
  let net = p8.p_make scale in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let configs = Batfish.Snapshot.configs snap in
  let run_dp () = Dataplane.compute ~env:net.Netgen.n_env configs in
  Attrs.clear_pools ();
  Attrs.interning_enabled := true;
  let dp_on, t_on = time run_dp in
  let distinct, requests = Attrs.pool_stats () in
  let words_on = Dataplane.rib_words dp_on in
  Attrs.interning_enabled := false;
  let dp_off, t_off = time run_dp in
  let words_off = Dataplane.rib_words dp_off in
  Attrs.interning_enabled := true;
  print_endline "-- route-attribute interning (NET8) --";
  Table.print
    ~header:[ "variant"; "DP gen"; "RIB heap (words)"; "sharing" ]
    [ [ "interned"; fmt_s t_on; string_of_int words_on;
        Printf.sprintf "%d distinct / %d uses" distinct requests ];
      [ "no interning"; fmt_s t_off; string_of_int words_off; "-" ] ];
  Printf.printf "   memory saved: %.0f%%\n\n"
    (100.0 *. (1.0 -. (float_of_int words_on /. float_of_int (max 1 words_off))));

  (* 2. full-RIB-compare convergence detection vs deltas (§4.1.3) *)
  let _, t_delta = time run_dp in
  let _, t_full =
    time (fun () ->
        Dataplane.compute
          ~options:{ Dataplane.default_options with full_rib_compare = true }
          ~env:net.Netgen.n_env configs)
  in
  print_endline "-- convergence detection (NET8) --";
  Table.print
    ~header:[ "method"; "DP gen" ]
    [ [ "RIB deltas (production)"; fmt_s t_delta ];
      [ "full RIB snapshot+compare"; fmt_s t_full ] ];
  print_newline ();

  (* 3. BDD variable order (§4.2.2): encode a large multi-field ACL (with
     port ranges, where bit order matters most) under each order *)
  print_endline "-- BDD variable order (400-line ACL with prefixes + port ranges) --";
  let synth_acl =
    let rng = Rng.create 7 in
    let lines =
      List.init 400 (fun i ->
          { Vi.acl_line_default with
            l_seq = (i + 1) * 10;
            l_action = (if Rng.int rng 4 = 0 then Vi.Deny else Vi.Permit);
            l_proto = Some (if Rng.bool rng then 6 else 17);
            l_src = Prefix.make (Rng.int rng 0x4000_0000 * 4) (8 + Rng.int rng 17);
            l_dst = Prefix.make (Rng.int rng 0x4000_0000 * 4) (8 + Rng.int rng 17);
            l_dst_ports = [ (let lo = Rng.int rng 60000 in (lo, lo + 1 + Rng.int rng 5000)) ];
            l_src_ports = (if Rng.bool rng then [ (1024, 65535) ] else []) })
    in
    { Vi.acl_name = "SYNTH"; acl_lines = lines }
  in
  let order_row label order =
    let env = Pktset.create ~order () in
    let bdd, build_t = time (fun () -> Acl_bdd.permits env synth_acl) in
    let nodes, _, _ = Bdd.stats (Pktset.man env) in
    [ label; fmt_s build_t; string_of_int (Bdd.size (Pktset.man env) bdd);
      string_of_int nodes ]
  in
  Table.print
    ~header:[ "variable order"; "build"; "ACL BDD size"; "manager nodes" ]
    [ order_row "paper heuristic (dst first, MSB first)" Pktset.Paper_order;
      order_row "reversed fields" Pktset.Reversed_fields;
      order_row "LSB first" Pktset.Lsb_first ];
  print_newline ();
  let p5 = List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = "NET5") Netgen.profiles in
  let net5 = p5.p_make scale in
  let snap5 = Batfish.Snapshot.of_texts net5.Netgen.n_configs in
  let dp5 = Dataplane.compute ~env:net5.Netgen.n_env (Batfish.Snapshot.configs snap5) in
  let find5 = Batfish.Snapshot.find snap5 in

  (* 4. graph compression (§4.2.3) *)
  print_endline "-- forwarding-graph compression (NET5) --";
  let comp_row label compress =
    let env = Pktset.create () in
    let (q : Fquery.t), build_t =
      time (fun () ->
          Fquery.of_graph
            (Fgraph.build ~env ~compress ~configs:find5 ~dp:dp5 ())
            ~dp:dp5 ~configs:find5)
    in
    let _, t = time (fun () -> Fquery.to_delivered q ()) in
    [ label; string_of_int (Fgraph.n_edges q.Fquery.g); fmt_s build_t; fmt_s t ]
  in
  Table.print
    ~header:[ "variant"; "edges"; "build"; "dest reach" ]
    [ comp_row "compressed" true; comp_row "uncompressed" false ];
  print_newline ();

  (* 5. fused NAT transform (§4.2.3) *)
  print_endline "-- fused vs unfused NAT transform (1000 applications) --";
  let env = Pktset.create () in
  let man = Pktset.man env in
  let rel =
    Pktset.rel env
      ~guard:(Pktset.src_prefix env (Prefix.make (Ipv4.of_octets 10 0 0 0) 8))
      [ (Field.Src_ip, Pktset.Set_prefix (Prefix.make (Ipv4.of_octets 198 51 100 0) 24));
        (Field.Src_port, Pktset.Set_range (1024, 65535)) ]
  in
  let sets =
    List.init 50 (fun i ->
        Bdd.band man
          (Pktset.dst_prefix env (Prefix.make (Ipv4.of_octets 10 i 0 0) 16))
          (Pktset.range env Field.Dst_port 0 (80 + i)))
  in
  let _, t_fused =
    time (fun () ->
        for _ = 1 to 20 do
          List.iter (fun s -> ignore (Pktset.apply_rel env rel s)) sets
        done)
  in
  let _, t_unfused =
    time (fun () ->
        for _ = 1 to 20 do
          List.iter (fun s -> ignore (Pktset.apply_rel_unfused env rel s)) sets
        done)
  in
  Table.print
    ~header:[ "variant"; "time"; "relative" ]
    [ [ "fused and-exists-rename"; fmt_s t_fused; "1.0x" ];
      [ "three separate BDD ops"; fmt_s t_unfused;
        Printf.sprintf "%.2fx" (t_unfused /. t_fused) ] ];
  print_newline ();

  (* 6. backward vs forward propagation for a single destination (§4.2.3):
     a fabric with many sources, one destination subnet *)
  print_endline "-- single-destination query: backward vs forward (Clos fabric) --";
  let net6n = Netgen.clos ~name:"bvf" ~spines:4 ~leaves:(max 4 (int_of_float (24.0 *. scale))) () in
  let snap6 = Batfish.Snapshot.of_texts net6n.Netgen.n_configs in
  let dp5 = Dataplane.compute ~env:net6n.Netgen.n_env (Batfish.Snapshot.configs snap6) in
  let find5 = Batfish.Snapshot.find snap6 in
  let env6 = Pktset.create () in
  let g6 = Fgraph.build ~env:env6 ~configs:find5 ~dp:dp5 () in
  let q6 = Fquery.of_graph g6 ~dp:dp5 ~configs:find5 in
  let dst = Pktset.dst_prefix env6 (Prefix.make (Ipv4.of_octets 172 16 0 0) 24) in
  let delivered_sinks =
    List.map
      (fun id -> (id, dst))
      (Fgraph.locs_where g6 (function
        | Fgraph.Dst _ | Fgraph.Accept _ -> true
        | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false))
  in
  let (_, back_apps), t_back =
    time (fun () -> Freach.backward_counted g6 delivered_sinks)
  in
  let starts =
    List.map (fun (n, i) -> (n, Some i)) (Fgraph.edge_interfaces g6 ~dp:dp5)
  in
  let man6 = Pktset.man env6 in
  let fwd_seed = Bdd.band man6 dst (Fquery.clean q6) in
  let fwd_seeds =
    List.filter_map
      (fun (n, i) ->
        Option.map
          (fun id -> (id, fwd_seed))
          (Fgraph.loc_id g6 (Fgraph.Src (n, Option.get i))))
      starts
  in
  let (_, fwd_apps), t_fwd = time (fun () -> Freach.forward_counted g6 fwd_seeds) in
  Table.print
    ~header:[ "direction"; "time"; "edge applications" ]
    [ [ "backward from destination"; fmt_s t_back; string_of_int back_apps ];
      [ "forward from all sources"; fmt_s t_fwd; string_of_int fwd_apps ] ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sharded parallel verification                                       *)
(* ------------------------------------------------------------------ *)

let parallel ~scale ~domains () =
  Printf.printf
    "== Sharded parallel verification (%d resident pool workers, private BDD managers) ==\n"
    domains;
  (* One persistent pool serves the whole sweep, so the second (and warm)
     calls at each scale run on workers whose imported graph and BDD caches
     survived the previous call — the session shape the engine optimizes. *)
  let pool = Par.Pool.create ~domains () in
  let scales = [ scale; scale *. 2.0 ] in
  let table_rows = ref [] in
  List.iteri
    (fun si sc ->
      let leaves = max 4 (int_of_float (12.0 *. sc)) in
      let net = Netgen.clos ~name:"par" ~spines:4 ~leaves () in
      let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
      let dp = Dataplane.compute ~env:net.Netgen.n_env (Batfish.Snapshot.configs snap) in
      let find = Batfish.Snapshot.find snap in
      let q = Fquery.make ~configs:find ~dp () in
      let devices = Netgen.device_count net in
      let starts = List.length (Fquery.default_starts q) in
      Printf.printf "   scale %.2g: %d devices, %d start locations\n" sc devices starts;
      let scaled_up = si = List.length scales - 1 in
      let suffix = if scaled_up then "" else Printf.sprintf ".scale%g" sc in
      (* all-pairs reachability: per-source forward passes. Serial runs
         first on the equally cold main manager. The session then prewarms
         the pool — one broadcast import per worker, the daemon-startup
         move — so the first client-visible query ("cold") no longer pays
         the per-worker graph import inside its own latency: that unhidden
         import is what made speedup_cold 0.59-0.65 in schema 6. *)
      let rows_seq, ap_ts = time (fun () -> Fpar.all_pairs ~domains:1 q) in
      let warmed, prewarm_t = time (fun () -> Fpar.prewarm ~pool q) in
      let rows_cold, ap_tc = time (fun () -> Fpar.all_pairs ~pool q) in
      let rows_warm, ap_tw = time (fun () -> Fpar.all_pairs ~pool q) in
      let ap_same = rows_seq = rows_cold && rows_seq = rows_warm in
      (* multipath consistency: per-destination-shard backward passes *)
      let v_seq, mpc_ts = time (fun () -> Fquery.multipath_consistency q ()) in
      let v_par, mpc_tp = time (fun () -> Fpar.multipath_consistency ~pool q) in
      let mpc_same =
        List.length v_seq = List.length v_par
        && List.for_all2
             (fun (s1, b1) (s2, b2) -> s1 = s2 && Bdd.equal b1 b2)
             v_seq v_par
      in
      (* memoized repeat of the multipath query (same graph + header set) *)
      let _, memo_t = time (fun () -> Fquery.multipath_consistency q ()) in
      let memo_hits, memo_misses = Fquery.memo_stats q in
      let label l = Printf.sprintf "%s (scale %.2g)" l sc in
      table_rows :=
        !table_rows
        @ [ [ label "all-pairs reachability"; fmt_s ap_ts; fmt_s ap_tc; fmt_s ap_tw;
              Printf.sprintf "%.2fx" (ap_ts /. Float.max 1e-9 ap_tw);
              string_of_bool ap_same ];
            [ label "multipath consistency"; fmt_s mpc_ts; fmt_s mpc_tp; "-";
              Printf.sprintf "%.2fx" (mpc_ts /. Float.max 1e-9 mpc_tp);
              string_of_bool mpc_same ];
            [ label "multipath (memoized)"; fmt_s mpc_ts; "-"; fmt_s memo_t;
              Printf.sprintf "%.2fx" (mpc_ts /. Float.max 1e-9 memo_t); "true" ] ];
      record
        ("parallel.all_pairs" ^ suffix)
        [ m_i "devices" devices; m_i "rows" (List.length rows_seq);
          m_f "t_serial_s" ap_ts; m_f "prewarm_s" prewarm_t;
          m_i "workers_prewarmed" warmed; m_f "t_cold_s" ap_tc;
          m_f "t_warm_s" ap_tw; m_f "speedup" (ap_ts /. Float.max 1e-9 ap_tw);
          m_f "speedup_cold" (ap_ts /. Float.max 1e-9 ap_tc);
          m_b "identical" ap_same ];
      record
        ("parallel.multipath" ^ suffix)
        [ m_i "violations" (List.length v_seq); m_f "t_serial_s" mpc_ts;
          m_f "t_pool_s" mpc_tp; m_f "speedup" (mpc_ts /. Float.max 1e-9 mpc_tp);
          m_b "identical" mpc_same ];
      if scaled_up then
        record "parallel.memo"
          ([ m_f "t_first_s" mpc_ts; m_f "t_memoized_s" memo_t;
             m_i "memo_hits" memo_hits; m_i "memo_misses" memo_misses ]
          @ m_bdd (Pktset.man (Fquery.env q)));
      (* adaptive cutoff at the base scale: --domains auto must never lose
         to plain serial on a query this small *)
      if si = 0 then begin
        let rows_auto, ap_ta = time (fun () -> Fpar.all_pairs ~pool ~auto:true q) in
        let auto_same = rows_auto = rows_seq in
        record "parallel.auto"
          [ m_i "devices" devices; m_f "t_serial_s" ap_ts; m_f "t_auto_s" ap_ta;
            m_f "ratio" (ap_ts /. Float.max 1e-9 ap_ta); m_b "identical" auto_same ];
        Printf.printf "   --domains auto at scale %.2g: %s vs serial %s (ratio %.2fx)\n"
          sc (fmt_s ap_ta) (fmt_s ap_ts) (ap_ts /. Float.max 1e-9 ap_ta);
        (* the same guarantee for the sharded-pass workload: a multipath job
           this small must plan serial under the measured cutoff (the
           schema-3 0.38-0.46x regression was exactly this job fanning out) *)
        let v_auto, mpc_ta =
          time (fun () -> Fpar.multipath_consistency ~pool ~auto:true q)
        in
        let mpc_auto_same =
          List.length v_seq = List.length v_auto
          && List.for_all2
               (fun (s1, b1) (s2, b2) -> s1 = s2 && Bdd.equal b1 b2)
               v_seq v_auto
        in
        record "parallel.multipath_auto"
          [ m_i "devices" devices; m_f "t_serial_s" mpc_ts; m_f "t_auto_s" mpc_ta;
            m_f "ratio" (mpc_ts /. Float.max 1e-9 mpc_ta);
            m_b "identical" mpc_auto_same ]
      end)
    scales;
  Table.print
    ~header:[ "query"; "serial"; "pool cold"; "pool warm"; "speedup"; "identical" ]
    !table_rows;
  (* pool + worker-resident cache counters *)
  let imports, reuses = Fpar.worker_stats () in
  let wr = Fpar.worker_cache_stats pool in
  let lookups = wr.Fpar.wr_hits + wr.Fpar.wr_misses in
  Printf.printf
    "   pool: %d workers, %d jobs; graphs imported %d, reused warm %d; worker op-cache hit rate %.1f%%\n"
    (Par.Pool.size pool) (Par.Pool.jobs_run pool) imports reuses
    (if lookups = 0 then 0.0
     else 100.0 *. float_of_int wr.Fpar.wr_hits /. float_of_int lookups);
  record "parallel.pool"
    [ m_i "workers" (Par.Pool.size pool); m_i "jobs" (Par.Pool.jobs_run pool);
      m_i "graph_imports" imports; m_i "graph_reuses" reuses;
      m_i "worker_cached_graphs" wr.Fpar.wr_cached;
      m_i "worker_cache_capacity" wr.Fpar.wr_capacity;
      m_i "graph_evictions" wr.Fpar.wr_evictions;
      m_i "worker_cache_hits" wr.Fpar.wr_hits;
      m_i "worker_cache_misses" wr.Fpar.wr_misses;
      m_f "worker_cache_hit_rate"
        (if lookups = 0 then 0.0
         else float_of_int wr.Fpar.wr_hits /. float_of_int lookups);
      m_f "worker_cache_occupancy"
        (if wr.Fpar.wr_entries = 0 then 0.0
         else float_of_int wr.Fpar.wr_filled /. float_of_int wr.Fpar.wr_entries) ];
  Par.Pool.shutdown pool;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Incremental update: scratch vs warm (ISSUE 4)                      *)
(* ------------------------------------------------------------------ *)

let incremental ~scale () =
  print_endline "== Incremental update: from-scratch recompute vs Batfish.update ==";
  let all_identical = ref true in
  let no_reuse = ref [] in
  let rows =
    List.filter_map
      (fun name ->
        let p =
          List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles
        in
        let net = p.p_make scale in
        let rng = Rng.create (Hashtbl.hash name) in
        match Chaos.semantic_edit_network ~rng net with
        | None -> None
        | Some (net', mut) ->
          let file = List.hd mut.Chaos.mut_files in
          let changed = (file, List.assoc file net'.Netgen.n_configs) in
          (* base analysis, fully forced (the state a CI daemon would hold) *)
          let bf = Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs) in
          ignore (Batfish.dataplane bf);
          ignore (Batfish.forwarding bf);
          (* warm path: re-parse changed files, re-simulate dirty components,
             rebuild the graph in the warm BDD environment *)
          let (bf', rep), warm_t = time (fun () -> Batfish.update ~files:[ changed ] bf) in
          (* scratch path: everything from the file texts *)
          let scratch, scratch_t =
            time (fun () ->
                let s =
                  Batfish.init ~env:net.Netgen.n_env
                    (Batfish.Snapshot.of_texts net'.Netgen.n_configs)
                in
                ignore (Batfish.dataplane s);
                ignore (Batfish.forwarding s);
                s)
          in
          (* the contract: bit-identical state on both paths *)
          let routing dp =
            List.map
              (fun n ->
                let r = Dataplane.node dp n in
                (n, Rib.best_routes r.Dataplane.nr_main, Fib.entries r.Dataplane.nr_fib))
              dp.Dataplane.node_order
          in
          let q' = Batfish.forwarding bf' and qs = Batfish.forwarding scratch in
          let identical =
            routing (Batfish.dataplane bf') = routing (Batfish.dataplane scratch)
            && Fgraph.to_spec (Fquery.graph q') = Fgraph.to_spec (Fquery.graph qs)
            && Fquery.all_pairs q' () = Fquery.all_pairs qs ()
          in
          if not identical then all_identical := false;
          (* single-edit gate: per-node reuse must actually kick in — a
             dirty component re-simulated wholesale would report 0 reused *)
          if rep.Batfish.up_nodes_changed <> [] && rep.Batfish.up_nodes_reused = 0
          then no_reuse := p.p_name :: !no_reuse;
          (* a cosmetic edit keeps the engine, memo included: the repeated
             query must answer from cache *)
          let noop_file = (file, snd changed ^ "\n! bench cosmetic edit") in
          let bf'', noop_rep =
            let q0 = Batfish.forwarding bf' in
            ignore (Fquery.to_delivered q0 ());
            Batfish.update ~files:[ noop_file ] bf'
          in
          let q'' = Batfish.forwarding bf'' in
          let hits0, _ = Fquery.memo_stats q'' in
          let _, noop_t = time (fun () -> Fquery.to_delivered q'' ()) in
          let hits1, misses1 = Fquery.memo_stats q'' in
          let memo_rate =
            float_of_int hits1 /. float_of_int (max 1 (hits1 + misses1))
          in
          record
            (Printf.sprintf "incremental.%s" p.p_name)
            [ m_i "devices" (Netgen.device_count net); m_f "scratch_s" scratch_t;
              m_f "warm_s" warm_t; m_f "speedup" (scratch_t /. Float.max 1e-9 warm_t);
              m_i "files_reparsed" rep.Batfish.up_files_reparsed;
              m_i "nodes_changed" (List.length rep.Batfish.up_nodes_changed);
              m_i "dirty_components" rep.Batfish.up_dirty_components;
              m_i "nodes_simulated" rep.Batfish.up_nodes_simulated;
              m_i "nodes_reused" rep.Batfish.up_nodes_reused;
              m_i "frontier_size" rep.Batfish.up_frontier_size;
              m_i "nodes_converged_early" rep.Batfish.up_nodes_converged_early;
              m_i "memo_invalidated" rep.Batfish.up_memo_invalidated;
              m_f "noop_update_memo_rate" memo_rate;
              m_b "noop_memo_hit" (hits1 > hits0);
              m_b "identical" identical ];
          ignore noop_t;
          ignore noop_rep;
          Some
            [ p.p_name; string_of_int (Netgen.device_count net); fmt_s scratch_t;
              fmt_s warm_t; Printf.sprintf "%.2fx" (scratch_t /. Float.max 1e-9 warm_t);
              string_of_int rep.Batfish.up_nodes_simulated;
              string_of_int rep.Batfish.up_nodes_reused;
              string_of_int rep.Batfish.up_nodes_converged_early;
              string_of_bool identical ])
      [ "NET1"; "NET3"; "NET5"; "NET7" ]
  in
  Table.print
    ~header:[ "network"; "devices"; "scratch"; "warm"; "speedup"; "frontier";
              "reused"; "early"; "identical" ]
    rows;
  if not !all_identical then begin
    print_endline "ERROR: incremental update differs from the from-scratch engine";
    exit 1
  end;
  if !no_reuse <> [] then begin
    Printf.printf
      "ERROR: no per-node reuse on single-edit profile(s): %s\n"
      (String.concat ", " (List.rev !no_reuse));
    exit 1
  end;
  (* warm speedup as a curve: the same single edit on NET3 at growing scale
     (the per-node worklist should pull further ahead of scratch as the
     network grows, where component-level dirtiness stayed flat) *)
  let sweep_point ~scale tag =
    let p =
      List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = "NET3") Netgen.profiles
    in
    let net = p.p_make scale in
    let rng = Rng.create (Hashtbl.hash ("incremental.sweep", tag)) in
    match Chaos.semantic_edit_network ~rng net with
    | None -> []
    | Some (net', mut) ->
      let file = List.hd mut.Chaos.mut_files in
      let changed = (file, List.assoc file net'.Netgen.n_configs) in
      let bf =
        Batfish.init ~env:net.Netgen.n_env
          (Batfish.Snapshot.of_texts net.Netgen.n_configs)
      in
      ignore (Batfish.dataplane bf);
      let (bf', rep), warm_t = time (fun () -> Batfish.update ~files:[ changed ] bf) in
      let scratch, scratch_t =
        time (fun () ->
            let s =
              Batfish.init ~env:net.Netgen.n_env
                (Batfish.Snapshot.of_texts net'.Netgen.n_configs)
            in
            ignore (Batfish.dataplane s);
            s)
      in
      let routing dp =
        List.map
          (fun n ->
            let r = Dataplane.node dp n in
            (n, Rib.best_routes r.Dataplane.nr_main, Fib.entries r.Dataplane.nr_fib))
          dp.Dataplane.node_order
      in
      let identical =
        routing (Batfish.dataplane bf') = routing (Batfish.dataplane scratch)
      in
      if not identical then all_identical := false;
      [ m_i ("devices_x" ^ tag) (Netgen.device_count net);
        m_f ("scratch_s_x" ^ tag) scratch_t;
        m_f ("warm_s_x" ^ tag) warm_t;
        m_f ("speedup_x" ^ tag) (scratch_t /. Float.max 1e-9 warm_t);
        m_i ("frontier_size_x" ^ tag) rep.Batfish.up_frontier_size;
        m_i ("nodes_reused_x" ^ tag) rep.Batfish.up_nodes_reused;
        m_b ("identical_x" ^ tag) identical ]
  in
  let sweep_metrics =
    List.concat_map
      (fun (s, tag) -> sweep_point ~scale:s tag)
      [ (0.5, "0p5"); (1.0, "1"); (2.0, "2") ]
  in
  record "incremental.sweep"
    (sweep_metrics @ [ m_b "identical" !all_identical ]);
  if not !all_identical then begin
    print_endline "ERROR: incremental sweep differs from the from-scratch engine";
    exit 1
  end;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Failure scenarios: pruning leverage + warm re-simulation (ISSUE 6)  *)
(* ------------------------------------------------------------------ *)

let failures ~scale ~domains () =
  print_endline
    "== Failure scenarios: atom pruning + warm fault-injected re-simulation ==";
  let rows =
    List.map
      (fun (name, k, sc) ->
        let p =
          List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles
        in
        let net = p.p_make sc in
        let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
        let options = { Dataplane.default_options with domains } in
        let bf = Batfish.init ~options ~env:net.Netgen.n_env snap in
        ignore (Batfish.dataplane bf);
        ignore (Batfish.forwarding bf);
        let report, warm_t = time (fun () -> Batfish.failure_report ~k bf) in
        (* cold reference: every representative recomputed from scratch in a
           fresh manager — the warm path's bit-identity contract, and the
           speedup baseline. Honestly cold: a fresh context (base fixed
           point included) per representative, so no manager or fixed-point
           state is shared between scenario recomputes. *)
        let reps =
          List.filter
            (fun r -> r.Failures.r_rep = r.Failures.r_scenario.Failures.sc_id)
            report.Failures.rp_results
        in
        let n_same, cold_t =
          time (fun () ->
              List.fold_left
                (fun acc r ->
                  let cold =
                    Failures.cold_context ~options ~env:net.Netgen.n_env
                      ~configs_list:(Batfish.Snapshot.configs snap)
                      ~find:(Batfish.Snapshot.find snap) ()
                  in
                  let co =
                    Failures.cold_outcome cold
                      ~properties:report.Failures.rp_properties
                      r.Failures.r_scenario
                  in
                  if co = r.Failures.r_outcome then acc + 1 else acc)
                0 reps)
        in
        let identical = n_same = List.length reps in
        let rate =
          float_of_int report.Failures.rp_simulated /. Float.max 1e-9 warm_t
        in
        Batfish.shutdown bf;
        record
          (Printf.sprintf "failures.%s.k%d" p.p_name k)
          [ m_i "devices" (Netgen.device_count net); m_i "k" k;
            m_i "properties" (List.length report.Failures.rp_properties);
            m_i "enumerated" report.Failures.rp_enumerated;
            m_i "simulated" report.Failures.rp_simulated;
            m_i "pruned" report.Failures.rp_pruned;
            m_b "pruning" report.Failures.rp_pruning;
            m_i "atoms" report.Failures.rp_atoms;
            m_i "failing" (List.length report.Failures.rp_failing);
            m_i "inconclusive" (List.length report.Failures.rp_inconclusive);
            m_f "warm_s" warm_t; m_f "cold_s" cold_t;
            m_f "scenarios_per_s" rate;
            m_f "speedup" (cold_t /. Float.max 1e-9 warm_t);
            m_b "identical" identical ];
        [ Printf.sprintf "%s k=%d" p.p_name k;
          string_of_int (Netgen.device_count net);
          string_of_int report.Failures.rp_enumerated;
          string_of_int report.Failures.rp_simulated;
          Printf.sprintf "%.1f/s" rate; fmt_s warm_t; fmt_s cold_t;
          Printf.sprintf "%.2fx" (cold_t /. Float.max 1e-9 warm_t);
          string_of_bool identical ])
      [ ("NET3", 1, scale *. 0.5); ("NET1", 1, scale); ("NET3", 2, scale *. 0.25) ]
  in
  Table.print
    ~header:
      [ "sweep"; "devices"; "enumerated"; "simulated"; "scen/s"; "warm"; "cold";
        "speedup"; "identical" ]
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Coverage: line attribution, cold vs session-warm                   *)
(* ------------------------------------------------------------------ *)

(* Cold = first coverage call on a fresh session (data plane + forwarding
   graph built on demand); warm = second call on the same session, reusing
   the memoized query engine. The identical gate checks the two reports
   render byte-identically. *)
let coverage_bench ~scale ~domains () =
  print_endline "== Coverage: line attribution, cold vs memo-warm ==";
  List.iter
    (fun name ->
      let p =
        List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles
      in
      let net = p.p_make scale in
      let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
      let options = { Dataplane.default_options with domains } in
      let bf = Batfish.init ~options ~env:net.Netgen.n_env snap in
      let r_cold, cold_t = time (fun () -> Batfish.coverage bf) in
      let r_warm, warm_t = time (fun () -> Batfish.coverage bf) in
      let identical =
        Coverage.report_to_json r_cold = Coverage.report_to_json r_warm
      in
      Printf.printf
        "  %-6s %3d devices: %5d units (%d covered, %d dead), cold %.2fs warm %.2fs%s\n"
        p.p_name (Netgen.device_count net) r_cold.Coverage.cov_total
        r_cold.Coverage.cov_covered r_cold.Coverage.cov_dead cold_t warm_t
        (if identical then "" else "  MISMATCH");
      Batfish.shutdown bf;
      record
        (Printf.sprintf "coverage.%s" p.p_name)
        [ m_i "devices" (Netgen.device_count net);
          m_i "units" r_cold.Coverage.cov_total;
          m_i "attributed" r_cold.Coverage.cov_attributed;
          m_i "covered" r_cold.Coverage.cov_covered;
          m_i "uncovered" r_cold.Coverage.cov_uncovered;
          m_i "dead" r_cold.Coverage.cov_dead;
          m_i "shards" r_cold.Coverage.cov_shards;
          m_f "cold_s" cold_t; m_f "warm_s" warm_t;
          m_b "identical" identical ])
    [ "NET1"; "NET3" ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Analysis service: daemon over a Unix socket (ISSUE 9)              *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let service_bench ~scale ~domains () =
  Printf.printf
    "== Analysis service: concurrent clients over a Unix socket (%d worker domains) ==\n"
    domains;
  let leaves = max 4 (int_of_float (8.0 *. scale)) in
  let net = Netgen.clos ~name:"svc" ~spines:2 ~leaves () in
  let files = net.Netgen.n_configs in
  let svc = Service.create ~domains () in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bf_bench_%d.sock" (Unix.getpid ()))
  in
  let server =
    Thread.create (fun () -> Service.serve ~install_signals:false ~socket svc) ()
  in
  let rec wait_sock n =
    if n = 0 then failwith "service socket never appeared"
    else if not (Sys.file_exists socket) then begin
      Thread.delay 0.01;
      wait_sock (n - 1)
    end
  in
  wait_sock 500;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let request (ic, oc) line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  let query_line question =
    Sjson.to_string
      (Sjson.Obj
         [ ("method", Sjson.Str "query");
           ("params", Sjson.Obj [ ("question", Sjson.Str question) ]) ])
  in
  let c0 = connect () in
  (* cold load through the protocol: parse + data plane + forwarding graph
     + prewarm broadcast, all inside the daemon *)
  let load_line =
    Sjson.to_string
      (Sjson.Obj
         [ ("method", Sjson.Str "load");
           ("params",
            Sjson.Obj
              [ ("files",
                 Sjson.Obj (List.map (fun (n, t) -> (n, Sjson.Str t)) files)) ]) ])
  in
  let load_resp, load_t = time (fun () -> request c0 load_line) in
  let _, cold_q_t = time (fun () -> request c0 (query_line "all_pairs")) in
  let warm_resp, warm_q_t = time (fun () -> request c0 (query_line "all_pairs")) in
  (* dedup: a second client loading byte-identical configs must be answered
     from the store without parsing (reused=true, still one live snapshot) *)
  let c1 = connect () in
  let dedup_resp = request c1 load_line in
  let dedup_reused =
    match Sjson.parse dedup_resp with
    | Ok r ->
      Option.bind (Sjson.member "result" r) (Sjson.member "reused")
      = Some (Sjson.Bool true)
    | Error _ -> false
  in
  (* coalescing: concurrent identical uncached queries must join one
     computation. The test seam stretches the compute window so the
     overlap is deterministic at bench timescales. *)
  Service.test_delay := 0.05;
  let racers =
    List.init 4 (fun _ ->
        Thread.create (fun () -> ignore (request (connect ()) (query_line "loops"))) ())
  in
  List.iter Thread.join racers;
  Service.test_delay := 0.0;
  (* sustained load: a small fleet of clients issuing memo-warm queries;
     latency distribution + throughput are the service-mode numbers *)
  let clients = 4 and per_client = 25 in
  let latencies = Array.make (clients * per_client) 0.0 in
  let questions = [| "all_pairs"; "multipath"; "routes"; "diagnostics" |] in
  let t0 = Unix.gettimeofday () in
  let fleet =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let conn = connect () in
            for i = 0 to per_client - 1 do
              let line = query_line questions.((ci + i) mod Array.length questions) in
              let _, dt = time (fun () -> request conn line) in
              latencies.((ci * per_client) + i) <- dt
            done)
          ())
  in
  List.iter Thread.join fleet;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let p50 = percentile latencies 0.5 and p99 = percentile latencies 0.99 in
  let qps = float_of_int (clients * per_client) /. Float.max 1e-9 elapsed in
  (* byte-identity with the one-shot engine: the service's rendered answer
     must equal the same snapshot analyzed directly, serially *)
  let direct =
    Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts files)
  in
  let direct_answer = Batfish.answer_all_pairs direct in
  let identical =
    match Sjson.parse warm_resp with
    | Error _ -> false
    | Ok r -> (
      match Option.bind (Sjson.member "result" r) (Sjson.member "answers") with
      | Some (Sjson.Arr [ Sjson.Obj fields ]) ->
        List.assoc_opt "title" fields
        = Some (Sjson.Str direct_answer.Questions.a_title)
        && List.assoc_opt "rows" fields
           = Some
               (Sjson.Arr
                  (List.map
                     (fun row -> Sjson.Arr (List.map (fun c -> Sjson.Str c) row))
                     direct_answer.Questions.a_rows))
      | _ -> false)
  in
  ignore (request c0 (Sjson.to_string (Sjson.Obj [ ("method", Sjson.Str "shutdown") ])));
  Thread.join server;
  let s = Service.stats svc in
  Printf.printf
    "   load %s; query cold %s warm %s; %d reqs from %d clients: %.0f q/s, p50 %s p99 %s\n"
    (fmt_s load_t) (fmt_s cold_q_t) (fmt_s warm_q_t) (clients * per_client)
    clients qps (fmt_s p50) (fmt_s p99);
  Printf.printf
    "   computed %d, coalesced %d, dedup %s, errors %d, pool shutdowns %d\n"
    s.Service.st_computed s.Service.st_coalesced
    (if dedup_reused then "hit" else "MISS") s.Service.st_errors
    s.Service.st_shutdowns_run;
  ignore load_resp;
  record "service.bench"
    [ m_i "devices" (Netgen.device_count net); m_i "clients" clients;
      m_i "requests" s.Service.st_requests; m_f "load_s" load_t;
      m_f "cold_query_s" cold_q_t; m_f "warm_query_s" warm_q_t;
      m_f "qps" qps; m_f "p50_s" p50; m_f "p99_s" p99;
      m_i "computed" s.Service.st_computed;
      m_i "coalesced" s.Service.st_coalesced;
      m_i "errors" s.Service.st_errors;
      m_b "dedup_hit" dedup_reused;
      m_i "snapshots" s.Service.st_snapshots;
      m_i "shutdowns_run" s.Service.st_shutdowns_run;
      m_b "identical" identical ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                        *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "== Micro-benchmarks (Bechamel, ns/op) ==";
  let open Bechamel in
  let open Toolkit in
  let env = Pktset.create () in
  let man = Pktset.man env in
  let a = Pktset.dst_prefix env (Prefix.make (Ipv4.of_octets 10 0 0 0) 8) in
  let b = Pktset.src_prefix env (Prefix.make (Ipv4.of_octets 172 16 0 0) 12) in
  let t_band = Test.make ~name:"bdd.band" (Staged.stage (fun () -> ignore (Bdd.band man a b))) in
  let acl_cfg, _ =
    Parse.parse_config
      (String.concat "\n"
         [ "hostname m"; "ip access-list extended T";
           " 10 permit tcp 10.0.0.0 0.255.255.255 any eq 443";
           " 20 deny udp any any"; " 30 permit ip any 172.16.0.0 0.15.255.255" ])
  in
  let acl = Option.get (Vi.find_acl acl_cfg "T") in
  let pkt = Packet.tcp ~src:(Ipv4.of_octets 10 1 2 3) ~dst:(Ipv4.of_octets 172 16 9 9) 443 in
  let t_acl =
    Test.make ~name:"acl.eval" (Staged.stage (fun () -> ignore (Acl_eval.action acl pkt)))
  in
  let trie =
    List.fold_left
      (fun t i -> Prefix_trie.add (Prefix.make (Ipv4.of_octets 10 i 0 0) 16) i t)
      Prefix_trie.empty
      (List.init 200 Fun.id)
  in
  let t_lpm =
    Test.make ~name:"trie.lpm"
      (Staged.stage (fun () ->
           ignore (Prefix_trie.longest_match (Ipv4.of_octets 10 77 1 1) trie)))
  in
  let rib =
    Rib.create ~prefer:Cmp.main_prefer ~multipath_equal:Cmp.main_multipath_equal
      ~max_paths:4 ()
  in
  let route =
    Route.static ~net:(Prefix.make (Ipv4.of_octets 10 9 0 0) 16)
      ~nh:(Route.Nh_ip (Ipv4.of_octets 10 0 0 1)) ~ad:1 ~tag:0
  in
  let t_rib =
    Test.make ~name:"rib.merge"
      (Staged.stage (fun () ->
           Rib.merge rib route;
           ignore (Rib.take_delta rib)))
  in
  let tests = Test.make_grouped ~name:"micro" [ t_band; t_acl; t_lpm; t_rib ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name r ->
      match Bechamel.Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "  %-24s %10.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-24s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Scale sweep: quotient compression vs uncompressed on the fat-leaf  *)
(* NET12 fabric (ISSUE 10), up to ~1k devices at the largest factor   *)
(* ------------------------------------------------------------------ *)

(* One data plane per scale factor; the same graph spec is materialized
   into two private managers — compression forced off and on — and both
   sides answer the same all-pairs, multipath and loop queries from a cold
   manager, so neither side warms the other's operation cache. All-pairs
   rows are plain data; multipath/loop verdict sets are exported from the
   on-side manager and re-imported into the off-side one, where canonicity
   makes bit-identity a physical-equality check. Serial on purpose: the
   ratio isolates the quotient, not the parallel fan-out. *)
let sweep ~factors () =
  print_endline
    "== scale sweep: quotient compression vs uncompressed (NET12, serial) ==";
  let p =
    List.find
      (fun (p : Netgen.profile) -> p.Netgen.p_name = "NET12")
      Netgen.profiles
  in
  let largest = List.fold_left max 0.0 factors in
  let rows =
    List.map
      (fun f ->
        let net, snap, _ = load_profile ~scale:f p in
        let bf = Batfish.init ~env:net.Netgen.n_env snap in
        let dp = Batfish.dataplane bf in
        let configs = Batfish.Snapshot.find snap in
        let spec = Fgraph.to_spec (Fquery.graph (Batfish.forwarding bf)) in
        let q_off =
          Fquery.of_graph ~compress_mode:`Off (Fgraph.of_spec spec) ~dp ~configs
        in
        let q_on =
          Fquery.of_graph ~compress_mode:`On (Fgraph.of_spec spec) ~dp ~configs
        in
        (* a start sample bounds the sweep's wall clock; it must be large
           enough to amortize the compressed side's one-off costs (first
           cold pass, first-pass verification) the way a full sweep would *)
        let starts =
          List.filteri (fun i _ -> i < 96) (Fquery.default_starts q_off)
        in
        (* compact before every timed block: the two sides run sequentially
           in one process, so without this the later side pays the major-GC
           cost of the earlier side's garbage and the ratio is biased *)
        let timed f =
          Gc.compact ();
          time f
        in
        (* whole-sample calls, not per-start: grouped all-pairs shares one
           pass across a device's interchangeable access ports, which
           per-start invocations would artificially forbid *)
        let rows_off, ap_off =
          timed (fun () -> Fquery.all_pairs q_off ~starts ())
        in
        let rows_on, ap_on =
          timed (fun () -> Fquery.all_pairs q_on ~starts ())
        in
        let mpc_off, mp_off =
          timed (fun () -> Fquery.multipath_consistency q_off ~starts ())
        in
        let mpc_on, mp_on =
          timed (fun () -> Fquery.multipath_consistency q_on ~starts ())
        in
        let loops_off = Fquery.find_loops q_off in
        let loops_on = Fquery.find_loops q_on in
        let man_off = Pktset.man (Fquery.env q_off) in
        let man_on = Pktset.man (Fquery.env q_on) in
        let import_on bs = Bdd.import man_off (Bdd.export man_on bs) in
        let identical =
          rows_off = rows_on
          && List.map fst mpc_off = List.map fst mpc_on
          && List.for_all2 Bdd.equal
               (List.map snd mpc_off)
               (import_on (List.map snd mpc_on))
          && List.map fst loops_off = List.map fst loops_on
          && List.for_all2 Bdd.equal
               (List.map snd loops_off)
               (import_on (List.map snd loops_on))
        in
        let ratio, classes =
          match Fquery.compression_info q_on with
          | Some (r, c, _) -> (r, c)
          | None -> (1.0, Fgraph.n_locs (Fquery.graph q_on))
        in
        let passes, fallbacks = Fquery.compress_stats q_on in
        let wall_off = ap_off +. mp_off and wall_on = ap_on +. mp_on in
        let speedup = if wall_on > 0.0 then wall_off /. wall_on else 1.0 in
        let ap_speedup = if ap_on > 0.0 then ap_off /. ap_on else 1.0 in
        let nodes_off, _, _ = Bdd.stats man_off in
        let nodes_on, _, _ = Bdd.stats man_on in
        record
          (Printf.sprintf "sweep.NET12.x%g" f)
          [ m_i "devices" (Netgen.device_count net);
            m_i "locs" (Fgraph.n_locs (Fquery.graph q_off));
            m_i "edges" (Fgraph.n_edges (Fquery.graph q_off));
            m_i "starts" (List.length starts);
            m_f "all_pairs_off_s" ap_off; m_f "all_pairs_on_s" ap_on;
            m_f "multipath_off_s" mp_off; m_f "multipath_on_s" mp_on;
            m_f "wall_off_s" wall_off; m_f "wall_on_s" wall_on;
            m_f "sweep_speedup" speedup; m_f "all_pairs_speedup" ap_speedup;
            m_b "sweep_largest" (f = largest);
            m_b "identical" identical; m_f "compress_ratio" ratio;
            m_i "classes" classes; m_i "compressed_passes" passes;
            m_i "compress_fallbacks" fallbacks;
            m_i "bdd_nodes_off" nodes_off; m_i "bdd_nodes_on" nodes_on ];
        [ Printf.sprintf "x%g" f;
          string_of_int (Netgen.device_count net);
          string_of_int (Fgraph.n_locs (Fquery.graph q_off));
          fmt_s wall_off; fmt_s wall_on; Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.2fx" ap_speedup;
          Printf.sprintf "%.2f" ratio; string_of_int classes;
          (if identical then "yes" else "NO") ])
      factors
  in
  Table.print
    ~header:
      [ "scale"; "devices"; "locs"; "uncompressed"; "compressed"; "speedup";
        "all-pairs"; "ratio"; "classes"; "identical" ]
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale =
    let rec find = function
      | "--scale" :: v :: _ -> float_of_string v
      | "--full" :: _ -> 4.0
      | _ :: rest -> find rest
      | [] -> 1.0
    in
    find args
  in
  let domains =
    let rec find = function
      | "--domains" :: v :: _ -> int_of_string v
      | _ :: rest -> find rest
      | [] -> 4
    in
    find args
  in
  let selected =
    List.filter
      (fun a ->
        String.length a > 0 && a.[0] <> '-' && float_of_string_opt a = None)
      args
  in
  let all = selected = [] in
  let want name = all || List.mem name selected in
  Printf.printf "batfish-caml benchmark harness (scale %.2g, domains %d)\n\n" scale domains;
  (* smoke: the fast CI subset (make bench-smoke) — exercises the parallel
     machinery and the convergence harness, writes BENCH_results.json, and
     exits nonzero on crash or on a parallel-vs-sequential mismatch. *)
  let smoke = List.mem "smoke" selected in
  if want "table1" && not smoke then table1 ~scale ();
  if want "table2" && not smoke then table2 ~scale ();
  if want "fig1" || smoke then fig1 ();
  if want "fig3" && not smoke then fig3 ~scale ();
  if want "apt" && not smoke then apt ~scale:(min scale 1.0) ();
  if want "ablations" && not smoke then ablations ~scale ();
  if want "parallel" || smoke then
    parallel ~scale:(if smoke then min scale 1.0 else scale) ~domains ();
  if want "incremental" || smoke then
    incremental ~scale:(if smoke then min scale 1.0 else scale) ();
  if want "failures" || smoke then
    failures ~scale:(if smoke then min scale 1.0 else scale) ~domains ();
  if want "coverage" || smoke then
    coverage_bench ~scale:(if smoke then min scale 1.0 else scale) ~domains ();
  if want "service" || smoke then
    service_bench ~scale:(if smoke then min scale 1.0 else scale) ~domains ();
  if want "micro" && not smoke then micro ();
  (* smoke runs the sweep at one small factor (the bit-identity gate still
     applies); full runs sweep three factors, plus the ~1k-device point when
     invoked with --scale >= 2 or --full *)
  if want "sweep" || smoke then
    sweep
      ~factors:
        (if smoke then [ 0.5 ]
         else if scale >= 2.0 then [ 1.0; 2.0; 4.0; 8.0 ]
         else [ 1.0; 2.0; 4.0 ])
      ();
  write_results ~scale ~domains ();
  check_identical ();
  check_gates ()
