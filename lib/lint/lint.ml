(* Semantic configuration linter (paper §4.4: specialized queries that catch
   misconfigurations before any data plane exists).

   A lint pass runs over the parsed VI model — never the data plane — and
   emits Diag.t findings with stable LINT0xx codes. Syntactic passes walk the
   model directly; the semantic passes (shadowed ACL rules, dead route-map
   clauses) decide reachability with BDDs, so a rule is reported dead exactly
   when no packet can reach it, not merely when its text duplicates an
   earlier rule. *)

type ctx = {
  lc_files : (string * Vi.t) list;
  lc_configs : Vi.t list;
  lc_env : Pktset.t Lazy.t;
  lc_domains : int;
  lc_pool : Par.Pool.t option;
}

let make_ctx ?(files = []) ?(domains = 1) ?pool configs =
  { lc_files = files; lc_configs = configs;
    lc_env = lazy (Pktset.create ()); lc_domains = domains; lc_pool = pool }

type pass = {
  p_code : string;
  p_name : string;
  p_doc : string;
  p_run : ctx -> Diag.t list;
}

let code_crash = "LINT_CRASH"

let finding ~severity ?node ?file ?line ~code msg =
  Diag.make ?node ?file ?line ~severity ~phase:Diag.Lint ~code msg

(* --- LINT001: undefined references --- *)

let undefined_reference_pass ctx =
  List.concat_map
    (fun (cfg : Vi.t) ->
      List.map
        (fun (ty, name, where) ->
          finding ~severity:Diag.Error ~node:cfg.hostname ~code:"LINT001"
            (Printf.sprintf "undefined %s '%s' referenced from %s" ty name where))
        (Parse.undefined_references cfg))
    ctx.lc_configs

(* --- LINT002: unused structures --- *)

(* Names of ACLs / route-maps / prefix-lists referenced anywhere in [cfg]
   (interfaces, NAT, zone policies, BGP, OSPF, route-map match clauses).
   Shared by LINT002 (defined but unused) and LINT008 (referenced but
   uncoverable). *)
let referenced_structures (cfg : Vi.t) =
  let used_acls =
    List.concat_map
      (fun (i : Vi.interface) ->
        Option.to_list i.if_in_acl @ Option.to_list i.if_out_acl)
      cfg.interfaces
    @ List.filter_map (fun (r : Vi.nat_rule) -> r.nr_match_acl) cfg.nat_rules
    @ List.map (fun (zp : Vi.zone_policy) -> zp.zp_acl) cfg.zone_policies
  in
  let neighbor_policies =
    match cfg.bgp with
    | Some b ->
      List.concat_map
        (fun (n : Vi.bgp_neighbor) ->
          Option.to_list n.bn_import_policy @ Option.to_list n.bn_export_policy)
        b.bp_neighbors
      @ List.filter_map snd b.bp_networks
      @ List.filter_map (fun (r : Vi.redistribution) -> r.rd_route_map) b.bp_redistribute
    | None -> []
  in
  let ospf_policies =
    match cfg.ospf with
    | Some o ->
      List.filter_map (fun (r : Vi.redistribution) -> r.rd_route_map) o.op_redistribute
    | None -> []
  in
  let used_rms = neighbor_policies @ ospf_policies in
  let used_pls =
    List.concat_map
      (fun (rm : Vi.route_map) ->
        List.concat_map
          (fun (c : Vi.rm_clause) ->
            List.filter_map
              (function
                | Vi.Match_prefix_list p -> Some p
                | _ -> None)
              c.rc_matches)
          rm.rm_clauses)
      cfg.route_maps
    @ (match cfg.bgp with
       | Some b ->
         List.concat_map
           (fun (n : Vi.bgp_neighbor) ->
             Option.to_list n.bn_prefix_list_in @ Option.to_list n.bn_prefix_list_out)
           b.bp_neighbors
       | None -> [])
  in
  (used_acls, used_rms, used_pls)

(* (structure type, name) pairs defined by [cfg] but referenced nowhere in
   it. Anonymous route-filter prefix lists ("__rf...") are internal. *)
let unused_structures (cfg : Vi.t) =
  let used_acls, used_rms, used_pls = referenced_structures cfg in
  let unused kind names used =
    List.filter_map
      (fun name -> if List.mem name used then None else Some (kind, name))
      names
  in
  unused "acl" (List.map (fun (a : Vi.acl) -> a.acl_name) cfg.acls) used_acls
  @ unused "route-map" (List.map (fun (r : Vi.route_map) -> r.rm_name) cfg.route_maps) used_rms
  @ unused "prefix-list"
      (List.filter_map
         (fun (p : Vi.prefix_list) ->
           if String.length p.pl_name >= 4 && String.sub p.pl_name 0 4 = "__rf" then None
           else Some p.pl_name)
         cfg.prefix_lists)
      used_pls

let unused_structure_pass ctx =
  List.concat_map
    (fun (cfg : Vi.t) ->
      List.map
        (fun (ty, name) ->
          finding ~severity:Diag.Warn ~node:cfg.hostname ~code:"LINT002"
            (Printf.sprintf "%s '%s' is defined but never used" ty name))
        (unused_structures cfg))
    ctx.lc_configs

(* --- LINT003: shadowed / unreachable ACL rules (BDD subsumption) --- *)

(* A line is dead when its match set is covered by the union of the match
   sets of all earlier lines — no packet can reach it. This is a semantic
   property: "permit tcp host 10.1.2.3 any eq 80" is dead under an earlier
   "permit ip 10.0.0.0/8 any" even though the texts share nothing. If a
   covering earlier line carries the opposite action the rule's intent is
   inverted, which we report at Error severity; a same-action shadow is
   redundancy (Warn), as is a line whose own match set is empty.

   The per-line analysis is exposed as [acl_line_statuses] so the coverage
   engine consumes the same effective-match BDDs and dead verdicts as the
   LINT003 findings: lint and coverage agree by construction. *)

type acl_dead_reason =
  | Dead_empty  (* the line's own match set is the empty BDD *)
  | Dead_shadowed of Vi.acl_line list * bool  (* blockers, conflicting action *)

type acl_line_status = {
  als_line : Vi.acl_line;
  als_match : Bdd.t;  (* the line's own match set *)
  als_effective : Bdd.t;  (* match minus the union of all earlier lines *)
  als_dead : acl_dead_reason option;
}

let acl_line_statuses env (acl : Vi.acl) =
  let man = Pktset.man env in
  let _, _, out =
    List.fold_left
      (fun (earlier, seen, out) (l : Vi.acl_line) ->
        let m = Acl_bdd.line env l in
        let eff = Bdd.bdiff man m earlier in
        let dead =
          if Bdd.is_bot m then Some Dead_empty
          else if Bdd.is_bot eff then begin
            let blockers =
              List.filter
                (fun ((_ : Vi.acl_line), m') ->
                  not (Bdd.is_bot (Bdd.band man m m')))
                (List.rev seen)
            in
            let masked =
              List.exists
                (fun ((b : Vi.acl_line), _) -> b.l_action <> l.l_action)
                blockers
            in
            Some (Dead_shadowed (List.map fst blockers, masked))
          end
          else None
        in
        ( Bdd.bor man earlier m,
          (l, m) :: seen,
          { als_line = l; als_match = m; als_effective = eff; als_dead = dead }
          :: out ))
      (Bdd.bot, [], []) acl.acl_lines
  in
  List.rev out

let opt_line l = if l > 0 then Some l else None

let acl_shadow_config env (cfg : Vi.t) =
  List.concat_map
    (fun (acl : Vi.acl) ->
      List.filter_map
        (fun s ->
          let l = s.als_line in
          match s.als_dead with
          | None -> None
          | Some Dead_empty ->
            Some
              (finding ~severity:Diag.Warn ~node:cfg.hostname
                 ?line:(opt_line l.l_line) ~code:"LINT003"
                 (Printf.sprintf "acl %s line %d can match no packet: %s"
                    acl.acl_name l.l_seq l.l_text))
          | Some (Dead_shadowed (blockers, masked)) ->
            let by =
              String.concat ", "
                (List.map
                   (fun (b : Vi.acl_line) -> string_of_int b.l_seq)
                   blockers)
            in
            Some
              (finding
                 ~severity:(if masked then Diag.Error else Diag.Warn)
                 ~node:cfg.hostname ?line:(opt_line l.l_line) ~code:"LINT003"
                 (Printf.sprintf
                    "acl %s line %d is unreachable (shadowed by line%s %s%s): %s"
                    acl.acl_name l.l_seq
                    (if List.length blockers = 1 then "" else "s")
                    by
                    (if masked then ", with conflicting action" else "")
                    l.l_text)))
        (acl_line_statuses env acl))
    cfg.acls

(* Findings are plain data and each config is judged against its own ACLs
   only, so the per-node checks are independent: with [lc_domains > 1] they
   fan out over worker domains, each with a private BDD manager. Results
   come back in config order either way. *)
let acl_shadow_pass ctx =
  if (ctx.lc_domains <= 1 && Option.is_none ctx.lc_pool)
     || List.length ctx.lc_configs < 2
  then
    let env = Lazy.force ctx.lc_env in
    List.concat_map (acl_shadow_config env) ctx.lc_configs
  else
    let results =
      Par.map_dynamic_init ?pool:ctx.lc_pool ~domains:ctx.lc_domains
        ~init:(fun () -> Pktset.create ())
        acl_shadow_config
        (Array.of_list ctx.lc_configs)
    in
    List.concat (Array.to_list results)

(* --- LINT004: dead route-map clauses --- *)

(* Route-map matches are conjunctive, so clause E subsumes a later clause C
   when every condition of E is implied by some condition of C: any route
   that satisfies all of C's conditions satisfies all of E's, and E fires
   first. In particular a clause with no match conditions subsumes every
   later clause. Condition implication is structural equality — sound, if
   incomplete. *)
let cond_implies c e = c = e

let clause_subsumes (e : Vi.rm_clause) (c : Vi.rm_clause) =
  List.for_all
    (fun ec -> List.exists (fun cc -> cond_implies cc ec) c.Vi.rc_matches)
    e.Vi.rc_matches

(* Per-clause dead verdicts, shared with the coverage engine (same
   contract as [acl_line_statuses]): a clause paired with the earliest
   earlier clause that subsumes it, or [None] when reachable. *)
let routemap_clause_statuses (rm : Vi.route_map) =
  let _, out =
    List.fold_left
      (fun (earlier, out) (c : Vi.rm_clause) ->
        let blocker =
          List.find_opt (fun e -> clause_subsumes e c) (List.rev earlier)
        in
        (c :: earlier, (c, blocker) :: out))
      ([], []) rm.Vi.rm_clauses
  in
  List.rev out

let routemap_dead_clause_pass ctx =
  List.concat_map
    (fun (cfg : Vi.t) ->
      List.concat_map
        (fun (rm : Vi.route_map) ->
          List.filter_map
            (fun ((c : Vi.rm_clause), blocker) ->
              match blocker with
              | None -> None
              | Some (e : Vi.rm_clause) ->
                let masked = e.rc_action <> c.rc_action in
                Some
                  (finding
                     ~severity:(if masked then Diag.Error else Diag.Warn)
                     ~node:cfg.hostname ?line:(opt_line c.rc_line) ~code:"LINT004"
                     (Printf.sprintf
                        "route-map %s clause %d is dead: clause %d matches every route it would%s"
                        rm.rm_name c.rc_seq e.rc_seq
                        (if masked then " and has the opposite action" else ""))))
            (routemap_clause_statuses rm))
        cfg.route_maps)
    ctx.lc_configs

(* --- LINT008: uncoverable structures --- *)

(* A prefix-list entry is satisfiable when some prefix length in [elen..32]
   meets its ge/le window (Policy_eval semantics: no modifier means exact
   length, which is always achievable). *)
let prefix_list_entry_satisfiable (e : Vi.prefix_list_entry) =
  let elen = Prefix.length e.Vi.ple_prefix in
  let lo = max elen (Option.value e.Vi.ple_ge ~default:elen) in
  let hi = Option.value e.Vi.ple_le ~default:32 in
  lo <= hi && lo <= 32

(* A structure that is referenced but whose overall match predicate is
   empty: an ACL that permits no packet, a route-map with no reachable
   permit clause, a prefix-list with no satisfiable permit entry. Distinct
   from LINT003/LINT004, which flag individual dead lines inside otherwise
   functional structures — here the whole structure can never pass
   anything, so every reference to it is a drop-everything filter. *)
let uncoverable_structure_pass ctx =
  List.concat_map
    (fun (cfg : Vi.t) ->
      let used_acls, used_rms, used_pls = referenced_structures cfg in
      let acl_findings =
        List.filter_map
          (fun (acl : Vi.acl) ->
            if
              List.mem acl.acl_name used_acls
              && Bdd.is_bot (Acl_bdd.permits (Lazy.force ctx.lc_env) acl)
            then
              let line =
                match acl.acl_lines with l :: _ -> l.Vi.l_line | [] -> 0
              in
              Some
                (finding ~severity:Diag.Warn ~node:cfg.hostname
                   ?line:(opt_line line) ~code:"LINT008"
                   (Printf.sprintf
                      "acl %s is referenced but permits no packet" acl.acl_name))
            else None)
          cfg.acls
      in
      let rm_findings =
        List.filter_map
          (fun (rm : Vi.route_map) ->
            if not (List.mem rm.rm_name used_rms) then None
            else
              let can_accept =
                List.exists
                  (fun ((c : Vi.rm_clause), blocker) ->
                    blocker = None && c.rc_action = Vi.Permit)
                  (routemap_clause_statuses rm)
              in
              if can_accept then None
              else
                let line =
                  match rm.rm_clauses with c :: _ -> c.Vi.rc_line | [] -> 0
                in
                Some
                  (finding ~severity:Diag.Warn ~node:cfg.hostname
                     ?line:(opt_line line) ~code:"LINT008"
                     (Printf.sprintf
                        "route-map %s is referenced but can accept no route"
                        rm.rm_name)))
          cfg.route_maps
      in
      let pl_findings =
        List.filter_map
          (fun (pl : Vi.prefix_list) ->
            if not (List.mem pl.pl_name used_pls) then None
            else
              let can_permit =
                List.exists
                  (fun (e : Vi.prefix_list_entry) ->
                    e.ple_action = Vi.Permit && prefix_list_entry_satisfiable e)
                  pl.pl_entries
              in
              if can_permit then None
              else
                let line =
                  match pl.pl_entries with e :: _ -> e.Vi.ple_line | [] -> 0
                in
                Some
                  (finding ~severity:Diag.Warn ~node:cfg.hostname
                     ?line:(opt_line line) ~code:"LINT008"
                     (Printf.sprintf
                        "prefix-list %s is referenced but can match no prefix"
                        pl.pl_name)))
          cfg.prefix_lists
      in
      acl_findings @ rm_findings @ pl_findings)
    ctx.lc_configs

(* --- LINT005: BGP session compatibility --- *)

(* Purely configuration-based pairwise session check: both ends of each
   declared session must exist and agree on AS numbers. Peers whose address
   no device in the snapshot owns are external and not judged here. *)
let bgp_session_issues configs =
  let by_ip : (Ipv4.t, string * Vi.bgp_proc) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (cfg : Vi.t) ->
      Option.iter
        (fun bgp ->
          List.iter
            (fun (_, ip, _) -> Hashtbl.replace by_ip ip (cfg.Vi.hostname, bgp))
            (Vi.interface_prefixes cfg))
        cfg.bgp)
    configs;
  let issues = ref [] in
  List.iter
    (fun (cfg : Vi.t) ->
      Option.iter
        (fun (bgp : Vi.bgp_proc) ->
          List.iter
            (fun (n : Vi.bgp_neighbor) ->
              let issue severity text =
                issues := (cfg.Vi.hostname, n.bn_peer, text, severity) :: !issues
              in
              match Hashtbl.find_opt by_ip n.bn_peer with
              | None -> () (* external or unknown: covered by session status *)
              | Some (peer_node, peer_bgp) ->
                let local_as = Option.value n.bn_local_as ~default:bgp.bp_as in
                if n.bn_remote_as <> peer_bgp.bp_as then
                  issue Diag.Error
                    (Printf.sprintf "remote-as %d but %s is AS %d" n.bn_remote_as
                       peer_node peer_bgp.bp_as)
                else begin
                  let our_ips =
                    List.map (fun (_, ip, _) -> ip) (Vi.interface_prefixes cfg)
                  in
                  match
                    List.find_opt
                      (fun (rn : Vi.bgp_neighbor) -> List.mem rn.bn_peer our_ips)
                      peer_bgp.bp_neighbors
                  with
                  | None ->
                    issue Diag.Warn
                      (Printf.sprintf "%s has no neighbor statement back" peer_node)
                  | Some rn ->
                    if rn.bn_remote_as <> local_as then
                      issue Diag.Error
                        (Printf.sprintf "%s expects AS %d but we are AS %d" peer_node
                           rn.bn_remote_as local_as)
                end)
            bgp.bp_neighbors)
        cfg.bgp)
    configs;
  List.rev !issues

let bgp_session_pass ctx =
  List.map
    (fun (node, peer, text, severity) ->
      finding ~severity ~node ~code:"LINT005"
        (Printf.sprintf "bgp neighbor %s: %s" (Ipv4.to_string peer) text))
    (bgp_session_issues ctx.lc_configs)

(* --- LINT006: interface addressing sanity --- *)

(* Interface addresses claimed by more than one interface in the snapshot,
   as [(ip, owners)] with owners in first-seen order. *)
let duplicate_ips configs =
  let owners : (Ipv4.t, (string * string) list) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (cfg : Vi.t) ->
      List.iter
        (fun (iface, ip, _) ->
          (match Hashtbl.find_opt owners ip with
           | None -> order := ip :: !order
           | Some _ -> ());
          Hashtbl.replace owners ip
            ((cfg.Vi.hostname, iface)
            :: Option.value (Hashtbl.find_opt owners ip) ~default:[]))
        (Vi.interface_prefixes cfg))
    configs;
  List.rev !order
  |> List.filter_map (fun ip ->
         match Hashtbl.find_opt owners ip with
         | Some users when List.length users > 1 -> Some (ip, List.rev users)
         | _ -> None)

let interface_addressing_pass ctx =
  let dups =
    List.map
      (fun (ip, users) ->
        finding ~severity:Diag.Error ~code:"LINT006"
          (Printf.sprintf "address %s assigned to more than one interface: %s"
             (Ipv4.to_string ip)
             (String.concat ", "
                (List.map (fun (n, i) -> Printf.sprintf "%s[%s]" n i) users))))
      (duplicate_ips ctx.lc_configs)
  in
  (* Link-endpoint subnet sanity: two interfaces on different nodes whose
     subnets overlap without being equal will never be inferred as adjacent
     (L3 inference wants equal subnets) — almost always a mistyped mask. *)
  let endpoints =
    List.concat_map
      (fun (cfg : Vi.t) ->
        List.map (fun (iface, ip, p) -> (cfg.Vi.hostname, iface, ip, p))
          (Vi.interface_prefixes cfg))
      ctx.lc_configs
  in
  let rec pairs acc = function
    | [] -> List.rev acc
    | (n1, i1, _, p1) :: rest ->
      let acc =
        List.fold_left
          (fun acc (n2, i2, _, p2) ->
            if n1 <> n2 && not (Prefix.equal p1 p2)
               && (Prefix.contains_prefix p1 p2 || Prefix.contains_prefix p2 p1)
            then
              finding ~severity:Diag.Warn ~node:n1 ~code:"LINT006"
                (Printf.sprintf
                   "%s[%s] %s and %s[%s] %s overlap but are not the same subnet (mask mismatch?)"
                   n1 i1 (Prefix.to_string p1) n2 i2 (Prefix.to_string p2))
              :: acc
            else acc)
          acc rest
      in
      pairs acc rest
  in
  dups @ pairs [] endpoints

(* --- LINT007: duplicate identities --- *)

let duplicate_identity_pass ctx =
  (* Hostnames defined by more than one file: visible only pre-dedup, so the
     snapshot loader hands us every parsed file. *)
  let hostname_findings =
    let by_host : (string, string list) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (fname, (cfg : Vi.t)) ->
        (match Hashtbl.find_opt by_host cfg.hostname with
         | None -> order := cfg.hostname :: !order
         | Some _ -> ());
        Hashtbl.replace by_host cfg.hostname
          (fname :: Option.value (Hashtbl.find_opt by_host cfg.hostname) ~default:[]))
      ctx.lc_files;
    List.rev !order
    |> List.filter_map (fun host ->
           match Hashtbl.find_opt by_host host with
           | Some files when List.length files > 1 ->
             Some
               (finding ~severity:Diag.Error ~node:host ~code:"LINT007"
                  (Printf.sprintf "hostname '%s' defined by %d files: %s" host
                     (List.length files)
                     (String.concat ", " (List.rev files))))
           | _ -> None)
  in
  (* Explicit router-ids shared across distinct nodes break OSPF and BGP
     peerings in ways that are miserable to debug from the data plane. *)
  let rid_findings =
    let claims =
      List.concat_map
        (fun (cfg : Vi.t) ->
          (match cfg.ospf with
           | Some { op_router_id = Some rid; _ } -> [ (rid, cfg.hostname, "ospf") ]
           | _ -> [])
          @
          (match cfg.bgp with
           | Some { bp_router_id = Some rid; _ } -> [ (rid, cfg.hostname, "bgp") ]
           | _ -> []))
        ctx.lc_configs
    in
    let by_rid : (Ipv4.t, (string * string) list) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (rid, node, proto) ->
        (match Hashtbl.find_opt by_rid rid with
         | None -> order := rid :: !order
         | Some _ -> ());
        Hashtbl.replace by_rid rid
          ((node, proto) :: Option.value (Hashtbl.find_opt by_rid rid) ~default:[]))
      claims;
    List.rev !order
    |> List.filter_map (fun rid ->
           match Hashtbl.find_opt by_rid rid with
           | Some users ->
             let nodes = List.sort_uniq compare (List.map fst users) in
             if List.length nodes > 1 then
               Some
                 (finding ~severity:Diag.Error ~code:"LINT007"
                    (Printf.sprintf "router-id %s used by more than one node: %s"
                       (Ipv4.to_string rid)
                       (String.concat ", "
                          (List.map
                             (fun (n, p) -> Printf.sprintf "%s(%s)" n p)
                             (List.rev users)))))
             else None
           | None -> None)
  in
  hostname_findings @ rid_findings

(* --- the registry --- *)

let passes =
  [ { p_code = "LINT001"; p_name = "undefined-reference";
      p_doc = "structure referenced but never defined";
      p_run = undefined_reference_pass };
    { p_code = "LINT002"; p_name = "unused-structure";
      p_doc = "structure defined but never referenced";
      p_run = unused_structure_pass };
    { p_code = "LINT003"; p_name = "acl-shadowed-rule";
      p_doc = "ACL line no packet can reach (BDD subsumption by earlier lines)";
      p_run = acl_shadow_pass };
    { p_code = "LINT004"; p_name = "routemap-dead-clause";
      p_doc = "route-map clause subsumed by an earlier clause";
      p_run = routemap_dead_clause_pass };
    { p_code = "LINT005"; p_name = "bgp-session";
      p_doc = "declared BGP sessions whose two ends disagree";
      p_run = bgp_session_pass };
    { p_code = "LINT006"; p_name = "interface-addressing";
      p_doc = "duplicate interface addresses and mismatched link subnets";
      p_run = interface_addressing_pass };
    { p_code = "LINT007"; p_name = "duplicate-identity";
      p_doc = "hostname or router-id claimed by more than one device";
      p_run = duplicate_identity_pass };
    { p_code = "LINT008"; p_name = "uncoverable-structure";
      p_doc = "referenced structure whose match predicate is the empty BDD";
      p_run = uncoverable_structure_pass } ]

(* Passes whose findings feed the coverage dead-config report: these mark
   config lines statically dead, which coverage unifies with query-driven
   "never exercised" lines. *)
let dead_config_passes = [ "LINT003"; "LINT004"; "LINT008" ]

let find_pass key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun p -> String.lowercase_ascii p.p_code = k || p.p_name = k)
    passes

let pass_names = List.map (fun p -> p.p_name) passes

(* [select]/[ignore] entries name passes by p_name or p_code; an unknown
   name is an operator error returned, not raised. *)
let resolve_selection ?select ?ignore_passes () =
  let resolve keys =
    List.fold_left
      (fun acc key ->
        match acc with
        | Error _ -> acc
        | Ok ps -> (
          match find_pass key with
          | Some p -> Ok (p :: ps)
          | None -> Error key))
      (Ok []) keys
  in
  let wanted =
    match select with
    | None | Some [] -> Ok passes
    | Some keys -> Result.map (fun ps -> List.rev ps) (resolve keys)
  in
  match (wanted, ignore_passes) with
  | Error k, _ -> Error (Printf.sprintf "unknown lint pass '%s'" k)
  | Ok ps, (None | Some []) -> Ok ps
  | Ok ps, Some keys -> (
    match resolve keys with
    | Error k -> Error (Printf.sprintf "unknown lint pass '%s'" k)
    | Ok ignored ->
      Ok
        (List.filter
           (fun p -> not (List.exists (fun i -> i.p_code = p.p_code) ignored))
           ps))

(* --- running --- *)

type report = { r_results : (pass * Diag.t list) list }

(* When the snapshot's file list is known, stamp each finding that names a
   node with the file that defined it, so every surface renders the same
   "file:line" location. *)
let attach_files ctx findings =
  match ctx.lc_files with
  | [] -> findings
  | files ->
    let by_node = Hashtbl.create 16 in
    List.iter
      (fun (fname, (cfg : Vi.t)) ->
        if not (Hashtbl.mem by_node cfg.Vi.hostname) then
          Hashtbl.add by_node cfg.Vi.hostname fname)
      files;
    List.map
      (fun (d : Diag.t) ->
        match (d.Diag.d_loc.Diag.loc_file, d.Diag.d_loc.Diag.loc_node) with
        | None, Some node -> (
          match Hashtbl.find_opt by_node node with
          | Some f -> Diag.set_file d f
          | None -> d)
        | _ -> d)
      findings

(* Each pass is fault-isolated: a crashing pass yields a single Fatal
   LINT_CRASH finding instead of taking the lint run down. Findings are
   deterministically ordered per pass. *)
let run_passes ctx ps =
  let results =
    List.map
      (fun p ->
        let findings =
          try List.sort Diag.compare_for_report (attach_files ctx (p.p_run ctx))
          with exn ->
            [ finding ~severity:Diag.Fatal ~code:code_crash
                (Printf.sprintf "pass %s crashed: %s" p.p_name
                   (Printexc.to_string exn)) ]
        in
        (p, findings))
      ps
  in
  { r_results = results }

let run ?select ?ignore_passes ctx =
  Result.map (run_passes ctx) (resolve_selection ?select ?ignore_passes ())

let findings report = List.concat_map snd report.r_results

let max_severity report = Diag.max_severity (findings report)

let count_at_least severity report =
  List.length (List.filter (Diag.at_least severity) (findings report))

(* --- rendering --- *)

let report_to_text report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (p, findings) ->
      List.iter
        (fun d -> Buffer.add_string buf (Printf.sprintf "%s  (%s)\n" (Diag.to_string d) p.p_name))
        findings)
    report.r_results;
  let total = List.length (findings report) in
  Buffer.add_string buf
    (Printf.sprintf "%d finding%s from %d pass%s\n" total
       (if total = 1 then "" else "s")
       (List.length report.r_results)
       (if List.length report.r_results = 1 then "" else "es"));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json pass (d : Diag.t) =
  let field k v = Printf.sprintf "\"%s\":%s" k v in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let opt k = function Some v -> [ field k (str v) ] | None -> [] in
  let parts =
    [ field "pass" (str pass.p_name); field "code" (str d.d_code);
      field "severity" (str (Diag.severity_to_string d.d_severity)) ]
    @ opt "node" d.d_loc.loc_node
    @ opt "file" d.d_loc.loc_file
    @ (match d.d_loc.loc_line with
      | Some l -> [ field "line" (string_of_int l) ]
      | None -> [])
    @ (match (d.d_loc.loc_file, d.d_loc.loc_line) with
      | Some f, Some l -> [ field "location" (str (Printf.sprintf "%s:%d" f l)) ]
      | _ -> [])
    @ [ field "message" (str d.d_message) ]
  in
  "{" ^ String.concat "," parts ^ "}"

let report_to_json report =
  let all =
    List.concat_map
      (fun (p, findings) -> List.map (finding_to_json p) findings)
      report.r_results
  in
  let by_pass =
    List.map
      (fun (p, findings) ->
        Printf.sprintf "\"%s\":%d" (json_escape p.p_name) (List.length findings))
      report.r_results
  in
  let max_sev = max_severity report in
  Printf.sprintf
    "{\"findings\":[%s],\"summary\":{\"passes_run\":%d,\"findings\":%d,\"max_severity\":\"%s\",\"by_pass\":{%s}}}"
    (String.concat "," all)
    (List.length report.r_results)
    (List.length (findings report))
    (Diag.severity_to_string max_sev)
    (String.concat "," by_pass)
