(** Semantic configuration linter: named, individually-enableable static
    analysis passes over the VI model (paper §4.4's specialized queries,
    run before — and without — any data plane).

    Each pass emits {!Diag.t} findings with a stable [LINT0xx] code and
    [phase = Lint]. The semantic passes decide rule reachability with BDDs
    ({!Acl_bdd}): a rule is dead exactly when the union of earlier rules
    covers its match set, not merely when its text repeats an earlier rule.

    Pass catalog:
    - [LINT001] [undefined-reference]: structure referenced but never defined
    - [LINT002] [unused-structure]: structure defined but never referenced
    - [LINT003] [acl-shadowed-rule]: ACL line no packet can reach
    - [LINT004] [routemap-dead-clause]: route-map clause subsumed by an
      earlier clause
    - [LINT005] [bgp-session]: declared sessions whose two ends disagree
    - [LINT006] [interface-addressing]: duplicate addresses, mismatched link
      subnets
    - [LINT007] [duplicate-identity]: hostname/router-id claimed twice
    - [LINT008] [uncoverable-structure]: referenced structure whose match
      predicate is the empty BDD (an ACL permitting no packet, a route-map
      with no reachable permit clause, a prefix-list no prefix satisfies) *)

type ctx = {
  lc_files : (string * Vi.t) list;
      (** every successfully parsed file (filename, config), {e before}
          duplicate-hostname dedup — only this view can see duplicates *)
  lc_configs : Vi.t list;  (** deduplicated configs, first definition wins *)
  lc_env : Pktset.t Lazy.t;  (** BDD environment for the semantic passes *)
  lc_domains : int;
      (** worker domains for the per-node BDD passes; findings are
          identical at any value *)
  lc_pool : Par.Pool.t option;
      (** persistent worker pool for those passes; overrides [lc_domains] *)
}

(** [make_ctx ?files configs] builds a context; [files] defaults to empty,
    which disables the duplicate-hostname check (everything else works).
    [domains] (default 1) fans the per-node BDD subsumption checks across
    worker domains, each with a private manager. *)
val make_ctx :
  ?files:(string * Vi.t) list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  Vi.t list ->
  ctx

type pass = {
  p_code : string;  (** stable code, e.g. ["LINT003"] *)
  p_name : string;  (** CLI-facing name, e.g. ["acl-shadowed-rule"] *)
  p_doc : string;
  p_run : ctx -> Diag.t list;
}

(** All registered passes, in code order. *)
val passes : pass list

(** Codes of the passes whose findings feed the coverage dead-config
    report (the statically-dead-line passes). *)
val dead_config_passes : string list

val pass_names : string list

(** Look up by [p_name] or (case-insensitive) [p_code]. *)
val find_pass : string -> pass option

(** Resolve [--select]/[--ignore] lists into the passes to run; [Error msg]
    names the first unknown pass. No selection means every pass. *)
val resolve_selection :
  ?select:string list -> ?ignore_passes:string list -> unit -> (pass list, string) result

type report = { r_results : (pass * Diag.t list) list }

(** Run the given passes. Each pass is fault-isolated: one that raises
    contributes a single [Fatal] [LINT_CRASH] finding instead of aborting
    the run. Per-pass findings are sorted deterministically. *)
val run_passes : ctx -> pass list -> report

(** [resolve_selection] + [run_passes]. *)
val run :
  ?select:string list -> ?ignore_passes:string list -> ctx -> (report, string) result

(** All findings, in pass order. *)
val findings : report -> Diag.t list

(** Highest severity of any finding ([Info] when clean). *)
val max_severity : report -> Diag.severity

(** Number of findings at or above a severity. *)
val count_at_least : Diag.severity -> report -> int

(** One line per finding (suffixed with the pass name) plus a summary. *)
val report_to_text : report -> string

(** Machine-readable report:
    [{"findings": [...], "summary": {...}}]. *)
val report_to_json : report -> string

(** {2 Shared analyses (also used by {!Questions} and the coverage engine)} *)

(** Why an ACL line is dead. *)
type acl_dead_reason =
  | Dead_empty  (** the line's own match set is the empty BDD *)
  | Dead_shadowed of Vi.acl_line list * bool
      (** earlier lines covering it; [true] when one has the opposite action *)

(** Per-line verdict from the LINT003 analysis. [als_effective] is the
    line's match set minus the union of all earlier lines — the packets
    that actually reach this line. *)
type acl_line_status = {
  als_line : Vi.acl_line;
  als_match : Bdd.t;
  als_effective : Bdd.t;
  als_dead : acl_dead_reason option;
}

(** The LINT003 per-line analysis, exposed so the coverage engine and the
    lint pass agree on dead lines by construction. *)
val acl_line_statuses : Pktset.t -> Vi.acl -> acl_line_status list

(** The LINT004 per-clause analysis: each clause paired with the earliest
    earlier clause that subsumes it ([None] = reachable). *)
val routemap_clause_statuses :
  Vi.route_map -> (Vi.rm_clause * Vi.rm_clause option) list

(** Whether some prefix length can satisfy the entry's ge/le window. *)
val prefix_list_entry_satisfiable : Vi.prefix_list_entry -> bool

(** Names of (ACLs, route-maps, prefix-lists) referenced anywhere in one
    config. *)
val referenced_structures : Vi.t -> string list * string list * string list

(** (structure type, name) pairs defined but unreferenced in one config. *)
val unused_structures : Vi.t -> (string * string) list

(** Pairwise session check over the snapshot:
    (node, peer address, issue text, severity). *)
val bgp_session_issues : Vi.t list -> (string * Ipv4.t * string * Diag.severity) list

(** Addresses claimed by more than one interface: [(ip, owners)] in
    first-seen order. *)
val duplicate_ips : Vi.t list -> (Ipv4.t * (string * string) list) list

(** The code carried by a crashing pass's [Fatal] finding. *)
val code_crash : string
