(** Sets of packets represented as BDDs over header variables (§4.2.2).

    An environment owns a BDD manager whose variables encode one IPv4 header
    (plus primed copies of the transformable fields, plus a few query-local
    "extra" bits used for zones and waypoints). The variable order defaults
    to the paper's heuristic; alternative orders exist for the variable-order
    ablation benchmark. *)


type t

type order =
  | Paper_order  (** most-constrained fields first, MSB first *)
  | Reversed_fields  (** least-constrained fields first (bad) *)
  | Lsb_first  (** paper field order, least significant bit first (bad) *)

val create : ?order:order -> ?extra_bits:int -> unit -> t
val man : t -> Bdd.man
val order : t -> order

(** [clone_empty env] is a fresh environment with a private BDD manager and
    the same variable layout ([order], [extra_bits]) as [env]. BDDs exported
    ({!Bdd.export}) from one can be imported into the other because levels
    carry the same meaning. Used to give each worker domain its own
    manager. *)
val clone_empty : t -> t

(** Levels of the field's unprimed bits, most significant bit first. *)
val levels : t -> Field.t -> int array

val extra_count : t -> int

(** Level of extra (zone/waypoint) bit [i]. *)
val extra_level : t -> int -> int

(** The set where extra bit [i] is set. *)
val extra : t -> int -> Bdd.t

(** {2 Header constraints} *)

(** [value env f v] is the set of packets whose field [f] equals [v]. *)
val value : t -> Field.t -> int -> Bdd.t

(** [ip_prefix env f p] constrains an IP-valued field to a prefix. *)
val ip_prefix : t -> Field.t -> Prefix.t -> Bdd.t

val dst_prefix : t -> Prefix.t -> Bdd.t
val src_prefix : t -> Prefix.t -> Bdd.t

(** [range env f lo hi] is the set where [lo <= f <= hi] (inclusive). *)
val range : t -> Field.t -> int -> int -> Bdd.t

(** [tcp_flag env mask] is the set where the TCP flag bit [mask] (one of
    {!Packet.Tcp_flags}) is set. *)
val tcp_flag : t -> int -> Bdd.t

(** Singleton set holding exactly this packet's header. *)
val of_packet : t -> Packet.t -> Bdd.t

(** [mem env set pkt] tests concrete membership (extra bits read as 0). *)
val mem : t -> Bdd.t -> Packet.t -> bool

(** {2 Packet transformations (NAT), §4.2.3} *)

type rewrite =
  | Set_value of int  (** rewrite to a constant (static NAT / PAT address) *)
  | Set_prefix of Prefix.t  (** rewrite into a pool prefix *)
  | Set_range of int * int  (** rewrite into a port range *)

(** [rel env ~guard rewrites] builds a transformation relation: packets
    matching [guard] have the listed fields rewritten and all other
    transformable fields preserved. Only transformable fields may appear. *)
val rel : t -> guard:Bdd.t -> (Field.t * rewrite) list -> Bdd.t

(** Image of a packet set under a relation (the fused BDD operation). *)
val apply_rel : t -> Bdd.t -> Bdd.t -> Bdd.t

(** Same image computed as three separate BDD operations (ablation). *)
val apply_rel_unfused : t -> Bdd.t -> Bdd.t -> Bdd.t

(** Preimage of a packet set under a relation (backward propagation). *)
val apply_rel_reverse : t -> Bdd.t -> Bdd.t -> Bdd.t

(** [swap_src_dst env s] is the set of packets whose src/dst-swapped
    counterpart (addresses and ports) is in [s] — the return flows of the
    sessions in [s] (§4.2.3 bidirectional reachability). *)
val swap_src_dst : t -> Bdd.t -> Bdd.t

(** {2 Example extraction (§4.4.3)} *)

(** Ordered preference constraints used to pick realistic examples: common
    protocols and applications first, then source/destination hints. *)
val standard_prefs :
  t -> ?src_prefix:Prefix.t -> ?dst_prefix:Prefix.t -> unit -> Bdd.t list

(** [to_packet env ?prefs set] extracts a concrete example packet, biased by
    the preferences; [None] iff the set is empty. *)
val to_packet : t -> ?prefs:Bdd.t list -> Bdd.t -> Packet.t option
