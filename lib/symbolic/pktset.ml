
type order = Paper_order | Reversed_fields | Lsb_first

type t = {
  man : Bdd.man;
  order : order;
  flevels : (Field.t, int array) Hashtbl.t;  (* MSB first *)
  fprimed : (Field.t, int array) Hashtbl.t;
  extra_base : int;
  extra_count : int;
  level_field : (Field.t * int) option array;  (* level -> (field, msb-index) *)
  quant_unprimed : Bdd.varset;
  quant_primed : Bdd.varset;
  to_unprimed : Bdd.perm;
  to_primed : Bdd.perm;
  identity_cache : (Field.t, Bdd.t) Hashtbl.t;
  mutable swap_perm : Bdd.perm option;
}

let field_sequence order =
  match order with
  | Paper_order | Lsb_first -> Field.all
  | Reversed_fields -> List.rev Field.all

let create ?(order = Paper_order) ?(extra_bits = 8) () =
  let nvars = Field.total_vars + extra_bits in
  let man = Bdd.create ~nvars () in
  let flevels = Hashtbl.create 16 in
  let fprimed = Hashtbl.create 8 in
  let level_field = Array.make nvars None in
  let off = ref 0 in
  let assign f =
    let bits = Field.bits f in
    if Field.transformable f then begin
      let base = !off in
      Hashtbl.add flevels f (Array.init bits (fun i -> base + (2 * i)));
      Hashtbl.add fprimed f (Array.init bits (fun i -> base + (2 * i) + 1));
      off := base + (2 * bits)
    end
    else begin
      Hashtbl.add flevels f (Array.init bits (fun i -> !off + i));
      off := !off + bits
    end
  in
  let seq = field_sequence order in
  (* Transformable fields keep their interleaved pairs in every order; the
     order variants permute fields and (for Lsb_first) bit significance. *)
  List.iter (fun f -> if Field.transformable f then assign f) seq;
  List.iter (fun f -> if not (Field.transformable f) then assign f) seq;
  assert (!off = Field.total_vars);
  (if order = Lsb_first then
     let flip tbl =
       Hashtbl.iter
         (fun f arr ->
           Hashtbl.replace tbl f (Array.init (Array.length arr) (fun i -> arr.(Array.length arr - 1 - i))))
         (Hashtbl.copy tbl)
     in
     flip flevels;
     flip fprimed);
  Hashtbl.iter
    (fun f arr -> Array.iteri (fun i lvl -> level_field.(lvl) <- Some (f, i)) arr)
    flevels;
  let unprimed_levels =
    List.concat_map
      (fun f -> if Field.transformable f then Array.to_list (Hashtbl.find flevels f) else [])
      Field.all
  and primed_levels =
    List.concat_map
      (fun f -> if Field.transformable f then Array.to_list (Hashtbl.find fprimed f) else [])
      Field.all
  in
  let pairs = List.combine unprimed_levels primed_levels in
  { man; order; flevels; fprimed;
    extra_base = Field.total_vars; extra_count = extra_bits;
    level_field;
    quant_unprimed = Bdd.varset man unprimed_levels;
    quant_primed = Bdd.varset man primed_levels;
    to_unprimed = Bdd.perm man (List.map (fun (u, p) -> (p, u)) pairs);
    to_primed = Bdd.perm man pairs;
    identity_cache = Hashtbl.create 8; swap_perm = None }

let man env = env.man
let order env = env.order
let levels env f = Hashtbl.find env.flevels f
let primed env f = Hashtbl.find env.fprimed f
let extra_count env = env.extra_count

(* A fresh environment with its own private manager but the same variable
   layout (order + extra bits). Since the layout is a pure function of those
   two parameters, BDD levels mean the same thing in both environments, so
   BDDs exported from one manager can be imported into the other. *)
let clone_empty env = create ~order:env.order ~extra_bits:env.extra_count ()

let extra_level env i =
  if i < 0 || i >= env.extra_count then invalid_arg "Pktset.extra_level";
  env.extra_base + i

let extra env i = Bdd.var env.man (extra_level env i)

let value_on env lvls v =
  let bits = Array.length lvls in
  let acc = ref Bdd.top in
  for i = bits - 1 downto 0 do
    let lit =
      if (v lsr (bits - 1 - i)) land 1 = 1 then Bdd.var env.man lvls.(i)
      else Bdd.nvar env.man lvls.(i)
    in
    acc := Bdd.band env.man lit !acc
  done;
  !acc

let value env f v = value_on env (levels env f) v

let prefix_on env lvls p =
  let len = Prefix.length p and net = Prefix.network p in
  let acc = ref Bdd.top in
  for i = len - 1 downto 0 do
    let lit =
      if Ipv4.bit net i then Bdd.var env.man lvls.(i) else Bdd.nvar env.man lvls.(i)
    in
    acc := Bdd.band env.man lit !acc
  done;
  !acc

let ip_prefix env f p = prefix_on env (levels env f) p
let dst_prefix env p = ip_prefix env Field.Dst_ip p
let src_prefix env p = ip_prefix env Field.Src_ip p

let range_on env lvls lo hi =
  let bits = Array.length lvls in
  let rec ge i =
    (* x(i..) >= lo(i..) *)
    if i = bits then Bdd.top
    else if (lo lsr (bits - 1 - i)) land 1 = 1 then
      Bdd.band env.man (Bdd.var env.man lvls.(i)) (ge (i + 1))
    else Bdd.bor env.man (Bdd.var env.man lvls.(i)) (ge (i + 1))
  in
  let rec le i =
    if i = bits then Bdd.top
    else if (hi lsr (bits - 1 - i)) land 1 = 0 then
      Bdd.band env.man (Bdd.nvar env.man lvls.(i)) (le (i + 1))
    else Bdd.bor env.man (Bdd.nvar env.man lvls.(i)) (le (i + 1))
  in
  Bdd.band env.man (ge 0) (le 0)

let range env f lo hi =
  let maxv = (1 lsl Field.bits f) - 1 in
  if lo > hi || lo < 0 || hi > maxv then invalid_arg "Pktset.range";
  if lo = 0 && hi = maxv then Bdd.top
  else if lo = hi then value env f lo
  else range_on env (levels env f) lo hi

let tcp_flag env mask =
  let k =
    let rec log2 m i = if m <= 1 then i else log2 (m lsr 1) (i + 1) in
    log2 mask 0
  in
  if mask <> 1 lsl k || k > 7 then invalid_arg "Pktset.tcp_flag";
  let lvls = levels env Field.Tcp_flags in
  Bdd.var env.man lvls.(7 - k)

let of_packet env pkt =
  List.fold_left
    (fun acc f -> Bdd.band env.man acc (value env f (Field.value_of_packet pkt f)))
    Bdd.top Field.all

let mem env set pkt =
  Bdd.eval env.man set (fun lvl ->
      match env.level_field.(lvl) with
      | Some (f, i) ->
        let v = Field.value_of_packet pkt f in
        (v lsr (Field.bits f - 1 - i)) land 1 = 1
      | None -> false)

(* Packet transformations ---------------------------------------------- *)

type rewrite = Set_value of int | Set_prefix of Prefix.t | Set_range of int * int

let identity_rel env f =
  match Hashtbl.find_opt env.identity_cache f with
  | Some id -> id
  | None ->
    let u = levels env f and p = primed env f in
    let acc = ref Bdd.top in
    for i = Array.length u - 1 downto 0 do
      let eq =
        Bdd.bnot env.man (Bdd.bxor env.man (Bdd.var env.man u.(i)) (Bdd.var env.man p.(i)))
      in
      acc := Bdd.band env.man eq !acc
    done;
    Hashtbl.add env.identity_cache f !acc;
    !acc

let rel env ~guard rewrites =
  List.iter
    (fun (f, _) -> if not (Field.transformable f) then invalid_arg "Pktset.rel")
    rewrites;
  let rewritten f = List.mem_assoc f rewrites in
  let constraint_for (f, rw) =
    let p = primed env f in
    match rw with
    | Set_value v -> value_on env p v
    | Set_prefix pre -> prefix_on env p pre
    | Set_range (lo, hi) -> range_on env p lo hi
  in
  let keep =
    List.filter_map
      (fun f -> if Field.transformable f && not (rewritten f) then Some (identity_rel env f) else None)
      Field.all
  in
  Bdd.conj env.man (guard :: (List.map constraint_for rewrites @ keep))

let apply_rel env r set =
  Bdd.transform env.man ~rel:r ~quant:env.quant_unprimed ~rename:env.to_unprimed set

let apply_rel_unfused env r set =
  Bdd.transform_unfused env.man ~rel:r ~quant:env.quant_unprimed ~rename:env.to_unprimed set

let apply_rel_reverse env r out_set =
  let shifted = Bdd.replace env.man env.to_primed out_set in
  Bdd.and_exists env.man env.quant_primed r shifted

(* Return-flow matching for bidirectional reachability: swap the source and
   destination fields (addresses and ports). Uses the arbitrary-permutation
   compose, since the swap violates the variable order. The permutation is
   built once per environment. *)
let swap_perm_of env =
  let pairs a b =
    let la = levels env a and lb = levels env b in
    Array.to_list (Array.mapi (fun i l -> (l, lb.(i))) la)
    @ Array.to_list (Array.mapi (fun i l -> (l, la.(i))) lb)
  in
  Bdd.perm env.man (pairs Field.Src_ip Field.Dst_ip @ pairs Field.Src_port Field.Dst_port)

let swap_src_dst env set =
  let pm =
    match env.swap_perm with
    | Some pm -> pm
    | None ->
      let pm = swap_perm_of env in
      env.swap_perm <- Some pm;
      pm
  in
  Bdd.compose_perm env.man pm set

(* Example extraction ---------------------------------------------------- *)

let standard_prefs env ?src_prefix:sp ?dst_prefix:dp () =
  let v = value env in
  let base =
    [ v Field.Protocol Packet.Proto.tcp;
      v Field.Dst_port 80;
      v Field.Tcp_flags Packet.Tcp_flags.syn;
      range env Field.Src_port 49152 65535;
      v Field.Dscp 0; v Field.Ecn 0; v Field.Fragment_offset 0;
      v Field.Packet_length 512 ]
  in
  let hint f = function
    | Some p -> [ ip_prefix env f p ]
    | None -> []
  in
  hint Field.Src_ip sp @ hint Field.Dst_ip dp @ base
  @ [ v Field.Protocol Packet.Proto.udp; v Field.Protocol Packet.Proto.icmp ]

let to_packet env ?(prefs = []) set =
  let set = Bdd.pick_preferred env.man set prefs in
  match Bdd.any_sat env.man set with
  | None -> None
  | Some assignment ->
    let values = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.replace values f 0) Field.all;
    List.iter
      (fun (lvl, b) ->
        match env.level_field.(lvl) with
        | Some (f, i) when b ->
          Hashtbl.replace values f
            (Hashtbl.find values f lor (1 lsl (Field.bits f - 1 - i)))
        | Some _ | None -> ())
      assignment;
    let g f = Hashtbl.find values f in
    Some
      { Packet.src_ip = g Field.Src_ip; dst_ip = g Field.Dst_ip;
        protocol = g Field.Protocol; src_port = g Field.Src_port;
        dst_port = g Field.Dst_port; icmp_type = g Field.Icmp_type;
        icmp_code = g Field.Icmp_code; tcp_flags = g Field.Tcp_flags;
        dscp = g Field.Dscp; ecn = g Field.Ecn;
        fragment_offset = g Field.Fragment_offset;
        packet_length = g Field.Packet_length }
