(** Layer-3 topology inference from interface addressing.

    Two enabled interfaces are adjacent when their addresses fall in the same
    subnet (with matching prefix length), the standard Batfish inference when
    no explicit layer-1 topology is supplied. *)

type endpoint = {
  ep_node : string;
  ep_iface : string;
  ep_ip : Ipv4.t;
  ep_prefix : Prefix.t;
}

type t

val infer : Vi.t list -> t
val nodes : t -> string list

(** All interface endpoints of a node. *)
val endpoints : t -> string -> endpoint list

(** Endpoints adjacent to [(node, iface)] — the other ends of the link. *)
val neighbors : t -> node:string -> iface:string -> endpoint list

(** All adjacent node pairs (unordered, deduplicated). *)
val node_edges : t -> (string * string) list

(** All links as endpoint pairs: one entry per adjacent
    (interface, interface) pair across distinct nodes, endpoint-canonical
    (lower (node, iface) first) and sorted — a deterministic enumeration
    basis for failure scenarios. A shared subnet with [n] endpoints yields
    all cross-node pairs. *)
val links : t -> (endpoint * endpoint) list

(** The endpoint owning the address, if any. *)
val owner_of_ip : t -> Ipv4.t -> endpoint option

(** Endpoint record for a specific interface. *)
val endpoint : t -> node:string -> iface:string -> endpoint option
