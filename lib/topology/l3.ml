type endpoint = {
  ep_node : string;
  ep_iface : string;
  ep_ip : Ipv4.t;
  ep_prefix : Prefix.t;
}

type t = {
  all_nodes : string list;
  by_node : (string, endpoint list) Hashtbl.t;
  by_subnet : (Prefix.t, endpoint list) Hashtbl.t;
  by_ip : (Ipv4.t, endpoint) Hashtbl.t;
}

let infer configs =
  let by_node = Hashtbl.create 64 in
  let by_subnet = Hashtbl.create 64 in
  let by_ip = Hashtbl.create 64 in
  let push tbl key v =
    Hashtbl.replace tbl key
      (v
      ::
      (match Hashtbl.find_opt tbl key with
       | Some l -> l
       | None -> []))
  in
  List.iter
    (fun (cfg : Vi.t) ->
      List.iter
        (fun (iface, ip, prefix) ->
          let ep = { ep_node = cfg.hostname; ep_iface = iface; ep_ip = ip; ep_prefix = prefix } in
          push by_node cfg.hostname ep;
          push by_subnet prefix ep;
          if not (Hashtbl.mem by_ip ip) then Hashtbl.add by_ip ip ep)
        (Vi.interface_prefixes cfg))
    configs;
  (* Preserve input order of endpoints within each node. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace by_node k (List.rev v)) (Hashtbl.copy by_node);
  { all_nodes = List.map (fun (c : Vi.t) -> c.hostname) configs; by_node; by_subnet; by_ip }

let nodes t = t.all_nodes

let endpoints t node =
  match Hashtbl.find_opt t.by_node node with
  | Some eps -> eps
  | None -> []

let endpoint t ~node ~iface =
  List.find_opt (fun ep -> ep.ep_iface = iface) (endpoints t node)

let neighbors t ~node ~iface =
  match endpoint t ~node ~iface with
  | None -> []
  | Some ep -> (
    match Hashtbl.find_opt t.by_subnet ep.ep_prefix with
    | None -> []
    | Some eps ->
      List.filter (fun other -> not (other.ep_node = node && other.ep_iface = iface)) eps)

let node_edges t =
  let seen = Hashtbl.create 64 in
  Hashtbl.fold
    (fun _ eps acc ->
      let rec pairs acc = function
        | [] -> acc
        | ep :: rest ->
          let acc =
            List.fold_left
              (fun acc other ->
                if ep.ep_node = other.ep_node then acc
                else
                  let key =
                    if ep.ep_node < other.ep_node then (ep.ep_node, other.ep_node)
                    else (other.ep_node, ep.ep_node)
                  in
                  if Hashtbl.mem seen key then acc
                  else begin
                    Hashtbl.add seen key ();
                    key :: acc
                  end)
              acc rest
          in
          pairs acc rest
      in
      pairs acc eps)
    t.by_subnet []

let links t =
  let seen = Hashtbl.create 64 in
  let key ep = (ep.ep_node, ep.ep_iface) in
  let acc =
    Hashtbl.fold
      (fun _ eps acc ->
        let rec pairs acc = function
          | [] -> acc
          | ep :: rest ->
            let acc =
              List.fold_left
                (fun acc other ->
                  if ep.ep_node = other.ep_node then acc
                  else
                    let a, b =
                      if key ep <= key other then (ep, other) else (other, ep)
                    in
                    if Hashtbl.mem seen (key a, key b) then acc
                    else begin
                      Hashtbl.add seen (key a, key b) ();
                      (a, b) :: acc
                    end)
                acc rest
            in
            pairs acc rest
        in
        pairs acc eps)
      t.by_subnet []
  in
  List.sort (fun (a1, b1) (a2, b2) -> compare (key a1, key b1) (key a2, key b2)) acc

let owner_of_ip t ip = Hashtbl.find_opt t.by_ip ip
