(** Routing-policy (route-map) evaluation.

    This is the concrete policy engine the simulator uses at import/export
    points. Evaluation is first-matching-clause with an implicit deny, as in
    IOS; Junos policy-statements are normalized to the same shape by the
    parser. *)

type ctx = {
  cfg : Vi.t;
  semantics : Semantics.t;
  self_ip : Ipv4.t option;  (** address used for [Set_next_hop_self] *)
}

val make_ctx : ?self_ip:Ipv4.t -> Vi.t -> ctx

type result = Accepted of Route.t | Denied

val run_route_map : ctx -> Vi.route_map -> Route.t -> result

(** Resolve the route map by name; an undefined name follows the vendor's
    undefined-policy semantics (Lesson 3). *)
val run_named : ctx -> string -> Route.t -> result

(** [None] policy means "no filtering": accept unchanged. *)
val run_optional : ctx -> string option -> Route.t -> result

(** Does one entry match this prefix (network containment plus the ge/le
    length window)? Exposed for the coverage engine's per-entry
    first-match attribution. *)
val entry_matches : Vi.prefix_list_entry -> Prefix.t -> bool

(** Does the prefix list permit this prefix (first-match, implicit deny)? *)
val prefix_list_permits : Vi.prefix_list -> Prefix.t -> bool

val run_prefix_list_named : ctx -> string -> Prefix.t -> bool

(** Cisco AS-path regex over the printed path ("_"-aware). Exposed for
    testing. *)
val as_path_regex_matches : string -> int list -> bool
