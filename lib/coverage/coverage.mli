(** Configuration coverage: which config source lines influence the
    forwarding behavior exercised by a query set.

    Every behavior-bearing configuration unit (ACL line, route-map clause,
    prefix-list entry, interface stanza, BGP neighbor, static route) is
    classified as one of three statuses:

    - [Dead]: statically unreachable — no packet or route can ever exercise
      it, regardless of traffic. Decided by the same shared analyses the
      linter uses (LINT003 shadowing, LINT004 clause subsumption,
      LINT008 satisfiability), so lint-dead and coverage-dead agree by
      construction.
    - [Covered]: exercised by the query set — for packet filters, the query
      traffic BDD at the unit's location intersects its effective match
      set; for routing units, an installed route or established session
      attributes to it.
    - [Uncovered]: live but never exercised by the query set.

    The query set is the symbolic all-sources forward sweep
    ({!Fquery.forward_from} from {!Fquery.default_starts}); per-node static
    analysis shards across worker domains like the lint ACL pass. *)

type status = Covered | Uncovered | Dead

val status_to_string : status -> string

(** One behavior-bearing configuration unit and its verdict. *)
type item = {
  it_node : string;
  it_file : string;  (** "" when the node maps to no parsed file *)
  it_line : int;  (** 1-based source line; 0 = unknown provenance *)
  it_kind : string;
      (** ["acl-line"] | ["route-map-clause"] | ["prefix-list-entry"]
          | ["interface"] | ["bgp-neighbor"] | ["static-route"] *)
  it_what : string;  (** human description, e.g. ["acl EDGE_IN rule 20"] *)
  it_status : status;
  it_reason : string;  (** why it got that status *)
}

(** Per-file line rollup. A line carrying several units takes the best
    status among them ([Covered] > [Uncovered] > [Dead]); only units with
    known provenance contribute. Line lists are sorted and duplicate-free. *)
type file_cov = {
  fc_file : string;
  fc_covered : int list;
  fc_uncovered : int list;
  fc_dead : int list;
}

type report = {
  cov_items : item list;  (** deterministic order *)
  cov_files : file_cov list;  (** sorted by filename *)
  cov_total : int;  (** all units *)
  cov_covered : int;
  cov_uncovered : int;
  cov_dead : int;
  cov_attributed : int;  (** units with both a file and a line *)
  cov_shards : int;  (** worker shards used by the static dead pass *)
}

(** [analyze configs] classifies every unit. [dp] and [q] supply the
    query traffic and installed routes; without them everything live is
    [Uncovered] (purely static coverage). [files] maps hostnames to
    filenames (first definition wins, as in {!Lint.make_ctx}).
    [domains]/[pool] shard the per-node static dead analysis; results are
    identical at any worker count. Never raises on hostile input. *)
val analyze :
  ?domains:int ->
  ?pool:Par.Pool.t ->
  ?dp:Dataplane.t ->
  ?q:Fquery.t ->
  ?files:(string * Vi.t) list ->
  Vi.t list ->
  report

(** The unified dead-config view: every [Dead] unit first, then every
    [Uncovered] unit, each group sorted by (file, line, node, what). *)
val dead_config : report -> item list

val report_to_text : report -> string

(** Deterministic machine-readable report:
    [{"schema":1,"files":[...],"summary":{...},"dead_config":[...]}]. *)
val report_to_json : report -> string
