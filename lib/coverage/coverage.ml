(* Configuration coverage (paper §4.4 taken one step further): instead of
   only asking "is the network correct", ask which configuration lines the
   query set actually exercises. Static dead verdicts reuse the linter's
   shared analyses, so a line LINT003/LINT004/LINT008 calls dead is dead
   here by construction; liveness on top of that comes from intersecting
   the symbolic query traffic with each unit's effective match set. *)

type status = Covered | Uncovered | Dead

let status_to_string = function
  | Covered -> "covered"
  | Uncovered -> "uncovered"
  | Dead -> "dead"

(* Higher wins when several units share a source line. *)
let status_rank = function Covered -> 2 | Uncovered -> 1 | Dead -> 0

type item = {
  it_node : string;
  it_file : string;
  it_line : int;
  it_kind : string;
  it_what : string;
  it_status : status;
  it_reason : string;
}

type file_cov = {
  fc_file : string;
  fc_covered : int list;
  fc_uncovered : int list;
  fc_dead : int list;
}

type report = {
  cov_items : item list;
  cov_files : file_cov list;
  cov_total : int;
  cov_covered : int;
  cov_uncovered : int;
  cov_dead : int;
  cov_attributed : int;
  cov_shards : int;
}

(* --- static dead analysis (sharded) --- *)

let acl_dead_reason_string = function
  | Lint.Dead_empty -> "can match no packet"
  | Lint.Dead_shadowed (blockers, masked) ->
    Printf.sprintf "shadowed by rule%s %s%s"
      (if List.length blockers = 1 then "" else "s")
      (String.concat ", "
         (List.map (fun (b : Vi.acl_line) -> string_of_int b.l_seq) blockers))
      (if masked then ", with conflicting action" else "")

(* Per-config ACL dead verdicts as plain data, so worker shards (each with
   a private BDD manager) can compute them and merge results trivially.
   Route-map and prefix-list dead verdicts are structural (no BDDs) and
   stay in the main pass. *)
let acl_dead_config env (cfg : Vi.t) =
  List.concat_map
    (fun (acl : Vi.acl) ->
      List.filter_map
        (fun (s : Lint.acl_line_status) ->
          match s.als_dead with
          | None -> None
          | Some r ->
            Some (acl.acl_name, s.als_line.Vi.l_seq, acl_dead_reason_string r))
        (Lint.acl_line_statuses env acl))
    cfg.Vi.acls

(* Mirrors the lint ACL pass: independent per-node work fans out over
   worker domains; results come back in config order either way. *)
let static_dead_pass ~domains ~pool configs =
  let serial =
    (domains <= 1 && Option.is_none pool) || List.length configs < 2
  in
  let per_node =
    if serial then
      let env = Pktset.create () in
      List.map (fun c -> (c.Vi.hostname, acl_dead_config env c)) configs
    else
      Array.to_list
        (Par.map_dynamic_init ?pool ~domains
           ~init:(fun () -> Pktset.create ())
           (fun env c -> (c.Vi.hostname, acl_dead_config env c))
           (Array.of_list configs))
  in
  let shards =
    if serial then 1
    else match pool with Some p -> Par.Pool.size p | None -> domains
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (node, deads) ->
      List.iter
        (fun (acl, seq, reason) -> Hashtbl.replace tbl (node, acl, seq) reason)
        deads)
    per_node;
  (tbl, shards)

(* --- query traffic --- *)

(* Everything the coverage engine needs from the forwarding side, with
   total (never-raising) lookups so hostile snapshots degrade to "no
   traffic" rather than aborting. *)
type traffic = {
  tr_env : Pktset.t;
  tr_union : (Fgraph.loc -> bool) -> Bdd.t;  (* reach union over locations *)
}

let no_traffic env = { tr_env = env; tr_union = (fun _ -> Bdd.bot) }

let traffic_of_query q =
  let g = Fquery.graph q in
  let env = Fquery.env q in
  let man = Pktset.man env in
  let reach = Fquery.forward_from q (Fquery.default_starts q) in
  let union pred =
    List.fold_left
      (fun acc id -> Bdd.bor man acc reach.(id))
      Bdd.bot (Fgraph.locs_where g pred)
  in
  { tr_env = env; tr_union = union }

(* Traffic entering node [n] on interface [i]: what an inbound ACL sees. *)
let in_traffic tr n i =
  tr.tr_union (function Fgraph.Src (n', i') -> n' = n && i' = i | _ -> false)

(* Traffic leaving node [n] on interface [i]: what an outbound ACL sees. *)
let out_traffic tr n i =
  tr.tr_union (function
    | Fgraph.Pre_out (n', i', _) -> n' = n && i' = i
    | _ -> false)

(* Any traffic entering node [n]: the conservative context for ACLs
   referenced outside interface filters (NAT rules, zone policies). *)
let node_traffic tr n =
  tr.tr_union (function Fgraph.Src (n', _) -> n' = n | _ -> false)

let iface_traffic tr n i =
  tr.tr_union (function
    | Fgraph.Src (n', i') | Fgraph.Dst (n', i') -> n' = n && i' = i
    | Fgraph.Pre_out (n', i', _) -> n' = n && i' = i
    | _ -> false)

(* --- installed routes --- *)

let all_best_routes (dp : Dataplane.t) =
  List.concat_map
    (fun n ->
      match Hashtbl.find_opt dp.Dataplane.nodes n with
      | None -> []
      | Some nr -> Rib.best_routes nr.Dataplane.nr_main)
    dp.Dataplane.node_order

let node_best_routes dp n =
  match dp with
  | None -> []
  | Some (dp : Dataplane.t) -> (
    match Hashtbl.find_opt dp.Dataplane.nodes n with
    | None -> []
    | Some nr -> Rib.best_routes nr.Dataplane.nr_main)

(* --- route-map / prefix-list matching against installed routes --- *)

(* Structural route matching for coverage attribution. Community and
   AS-path conditions are conservatively unmatched (attrs are not tracked
   per installed route here), so a clause gated only on them reports
   Uncovered rather than falsely Covered. *)
let cond_matches (cfg : Vi.t) (r : Route.t) = function
  | Vi.Match_prefix_list name -> (
    match Vi.find_prefix_list cfg name with
    | Some pl -> Policy_eval.prefix_list_permits pl r.Route.net
    | None -> false)
  | Vi.Match_prefix p -> p = r.Route.net
  | Vi.Match_metric m -> r.Route.metric = m
  | Vi.Match_tag t -> r.Route.tag = t
  | Vi.Match_protocol s -> Route_proto.matches_source r.Route.protocol s
  | Vi.Match_community _ | Vi.Match_as_path _ -> false

let clause_matches cfg c r =
  List.for_all (fun m -> cond_matches cfg r m) c.Vi.rc_matches

(* First-match attribution: each route exercises exactly the first clause
   (entry) it satisfies, as the policy engine evaluates them. *)
let routemap_hits cfg (rm : Vi.route_map) routes =
  let n = List.length rm.Vi.rm_clauses in
  let hit = Array.make (max n 1) false in
  List.iter
    (fun r ->
      let rec walk idx = function
        | [] -> ()
        | c :: rest ->
          if clause_matches cfg c r then hit.(idx) <- true
          else walk (idx + 1) rest
      in
      walk 0 rm.Vi.rm_clauses)
    routes;
  hit

let prefix_list_hits (pl : Vi.prefix_list) routes =
  let n = List.length pl.Vi.pl_entries in
  let hit = Array.make (max n 1) false in
  List.iter
    (fun (r : Route.t) ->
      let rec walk idx = function
        | [] -> ()
        | e :: rest ->
          if Policy_eval.entry_matches e r.Route.net then hit.(idx) <- true
          else walk (idx + 1) rest
      in
      walk 0 pl.Vi.pl_entries)
    routes;
  hit

(* --- per-config items --- *)

let item ~node ~line ~kind ~what ~status ~reason =
  { it_node = node; it_file = ""; it_line = line; it_kind = kind;
    it_what = what; it_status = status; it_reason = reason }

let acl_items tr deadmap (cfg : Vi.t) used_acls (acl : Vi.acl) =
  let node = cfg.Vi.hostname in
  let name = acl.Vi.acl_name in
  let in_ifs, out_ifs =
    List.fold_left
      (fun (ins, outs) (i : Vi.interface) ->
        ( (if i.if_in_acl = Some name then i.if_name :: ins else ins),
          if i.if_out_acl = Some name then i.if_name :: outs else outs ))
      ([], []) cfg.Vi.interfaces
  in
  let referenced = List.mem name used_acls in
  let man = Pktset.man tr.tr_env in
  let traffic =
    let t =
      List.fold_left
        (fun acc i -> Bdd.bor man acc (in_traffic tr node i))
        Bdd.bot in_ifs
    in
    let t =
      List.fold_left
        (fun acc i -> Bdd.bor man acc (out_traffic tr node i))
        Bdd.bot out_ifs
      |> Bdd.bor man t
    in
    if referenced && in_ifs = [] && out_ifs = [] then
      Bdd.bor man t (node_traffic tr node)
    else t
  in
  let mk (l : Vi.acl_line) status reason =
    item ~node ~line:l.Vi.l_line ~kind:"acl-line"
      ~what:(Printf.sprintf "acl %s rule %d" name l.Vi.l_seq)
      ~status ~reason
  in
  let uncovered_reason =
    if not referenced then "acl is never applied"
    else "no query traffic reaches this rule"
  in
  if Bdd.is_bot traffic then
    (* No traffic context: the sharded dead verdicts suffice; everything
       else is live-but-unexercised. *)
    List.map
      (fun (l : Vi.acl_line) ->
        match Hashtbl.find_opt deadmap (node, name, l.Vi.l_seq) with
        | Some reason -> mk l Dead reason
        | None -> mk l Uncovered uncovered_reason)
      acl.Vi.acl_lines
  else
    (* Recompute the per-line analysis in the query manager so effective
       match sets and traffic live in the same BDD space. Dead verdicts
       are identical to the sharded ones (same pure analysis). *)
    List.map
      (fun (s : Lint.acl_line_status) ->
        match s.als_dead with
        | Some r -> mk s.als_line Dead (acl_dead_reason_string r)
        | None ->
          if not (Bdd.is_bot (Bdd.band man traffic s.als_effective)) then
            mk s.als_line Covered "exercised by query traffic"
          else mk s.als_line Uncovered uncovered_reason)
      (Lint.acl_line_statuses tr.tr_env acl)

let routemap_items routes (cfg : Vi.t) used_rms (rm : Vi.route_map) =
  let node = cfg.Vi.hostname in
  let referenced = List.mem rm.Vi.rm_name used_rms in
  let hit = routemap_hits cfg rm routes in
  let uncovered_reason =
    if not referenced then "route-map is never applied"
    else "no installed route reaches this clause"
  in
  List.mapi
    (fun idx (c, blocker) ->
      let mk status reason =
        item ~node ~line:c.Vi.rc_line ~kind:"route-map-clause"
          ~what:
            (Printf.sprintf "route-map %s clause %d" rm.Vi.rm_name c.Vi.rc_seq)
          ~status ~reason
      in
      match blocker with
      | Some (b : Vi.rm_clause) ->
        mk Dead (Printf.sprintf "subsumed by clause %d" b.rc_seq)
      | None ->
        if idx < Array.length hit && hit.(idx) then
          mk Covered "matched by an installed route"
        else mk Uncovered uncovered_reason)
    (Lint.routemap_clause_statuses rm)

let prefix_list_items routes (cfg : Vi.t) used_pls (pl : Vi.prefix_list) =
  let node = cfg.Vi.hostname in
  let referenced = List.mem pl.Vi.pl_name used_pls in
  let hit = prefix_list_hits pl routes in
  let uncovered_reason =
    if not referenced then "prefix-list is never applied"
    else "no installed route reaches this entry"
  in
  List.mapi
    (fun idx (e : Vi.prefix_list_entry) ->
      let mk status reason =
        item ~node ~line:e.Vi.ple_line ~kind:"prefix-list-entry"
          ~what:
            (Printf.sprintf "prefix-list %s seq %d" pl.Vi.pl_name e.Vi.ple_seq)
          ~status ~reason
      in
      if not (Lint.prefix_list_entry_satisfiable e) then
        mk Dead "ge/le window admits no prefix length"
      else if idx < Array.length hit && hit.(idx) then
        mk Covered "matched by an installed route"
      else mk Uncovered uncovered_reason)
    pl.Vi.pl_entries

let interface_items tr (cfg : Vi.t) =
  let node = cfg.Vi.hostname in
  List.map
    (fun (i : Vi.interface) ->
      let mk status reason =
        item ~node ~line:i.Vi.if_line ~kind:"interface"
          ~what:(Printf.sprintf "interface %s" i.Vi.if_name)
          ~status ~reason
      in
      if not i.Vi.if_enabled then mk Dead "administratively down"
      else if not (Bdd.is_bot (iface_traffic tr node i.Vi.if_name)) then
        mk Covered "carries query traffic"
      else mk Uncovered "no query traffic traverses this interface")
    cfg.Vi.interfaces

let bgp_items sessions (cfg : Vi.t) =
  let node = cfg.Vi.hostname in
  match cfg.Vi.bgp with
  | None -> []
  | Some bp ->
    List.map
      (fun (n : Vi.bgp_neighbor) ->
        let mk status reason =
          item ~node ~line:n.Vi.bn_line ~kind:"bgp-neighbor"
            ~what:
              (Printf.sprintf "bgp neighbor %s" (Ipv4.to_string n.Vi.bn_peer))
            ~status ~reason
        in
        if n.Vi.bn_shutdown then mk Dead "neighbor is shut down"
        else if
          List.exists
            (fun (s : Dataplane.session_report) ->
              s.sr_node = node && s.sr_peer = n.Vi.bn_peer && s.sr_established)
            sessions
        then mk Covered "session established"
        else mk Uncovered "session not established")
      bp.Vi.bp_neighbors

let static_route_items node_routes (cfg : Vi.t) =
  let node = cfg.Vi.hostname in
  let static_nets =
    List.filter_map
      (fun (r : Route.t) ->
        if r.Route.protocol = Route_proto.Static then Some r.Route.net
        else None)
      node_routes
  in
  List.map
    (fun (sr : Vi.static_route) ->
      let mk status reason =
        item ~node ~line:sr.Vi.sr_line ~kind:"static-route"
          ~what:
            (Printf.sprintf "static route %s" (Prefix.to_string sr.Vi.sr_prefix))
          ~status ~reason
      in
      if List.mem sr.Vi.sr_prefix static_nets then mk Covered "installed in RIB"
      else mk Uncovered "not installed in RIB")
    cfg.Vi.static_routes

(* --- assembly --- *)

let compare_items a b =
  compare
    (a.it_file, a.it_line, a.it_node, a.it_kind, a.it_what)
    (b.it_file, b.it_line, b.it_node, b.it_kind, b.it_what)

let file_rollup items =
  let per_file = Hashtbl.create 16 in
  List.iter
    (fun it ->
      if it.it_file <> "" && it.it_line > 0 then begin
        let lines =
          match Hashtbl.find_opt per_file it.it_file with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 32 in
            Hashtbl.add per_file it.it_file t;
            t
        in
        let best =
          match Hashtbl.find_opt lines it.it_line with
          | Some s when status_rank s >= status_rank it.it_status -> s
          | _ -> it.it_status
        in
        Hashtbl.replace lines it.it_line best
      end)
    items;
  Hashtbl.fold
    (fun file lines acc ->
      let by st =
        List.sort compare
          (Hashtbl.fold
             (fun l s acc -> if s = st then l :: acc else acc)
             lines [])
      in
      { fc_file = file; fc_covered = by Covered; fc_uncovered = by Uncovered;
        fc_dead = by Dead }
      :: acc)
    per_file []
  |> List.sort (fun a b -> compare a.fc_file b.fc_file)

let analyze ?(domains = 1) ?pool ?dp ?q ?(files = []) configs =
  let deadmap, shards = static_dead_pass ~domains ~pool configs in
  let tr =
    match q with
    | Some q -> traffic_of_query q
    | None -> no_traffic (Pktset.create ())
  in
  let routes = match dp with Some dp -> all_best_routes dp | None -> [] in
  let sessions = match dp with Some dp -> dp.Dataplane.sessions | None -> [] in
  let file_of_node = Hashtbl.create 16 in
  List.iter
    (fun (fname, (cfg : Vi.t)) ->
      if not (Hashtbl.mem file_of_node cfg.hostname) then
        Hashtbl.add file_of_node cfg.hostname fname)
    files;
  let items =
    List.concat_map
      (fun (cfg : Vi.t) ->
        let used_acls, used_rms, used_pls = Lint.referenced_structures cfg in
        List.concat
          [ List.concat_map (acl_items tr deadmap cfg used_acls) cfg.acls;
            List.concat_map (routemap_items routes cfg used_rms) cfg.route_maps;
            List.concat_map
              (prefix_list_items routes cfg used_pls)
              cfg.prefix_lists;
            interface_items tr cfg;
            bgp_items sessions cfg;
            static_route_items (node_best_routes dp cfg.hostname) cfg ])
      configs
  in
  let items =
    List.map
      (fun it ->
        match Hashtbl.find_opt file_of_node it.it_node with
        | Some f -> { it with it_file = f }
        | None -> it)
      items
  in
  let items = List.sort compare_items items in
  let count st = List.length (List.filter (fun i -> i.it_status = st) items) in
  { cov_items = items;
    cov_files = file_rollup items;
    cov_total = List.length items;
    cov_covered = count Covered;
    cov_uncovered = count Uncovered;
    cov_dead = count Dead;
    cov_attributed =
      List.length
        (List.filter (fun i -> i.it_file <> "" && i.it_line > 0) items);
    cov_shards = shards }

(* Dead units first (they are certainly removable), then live-but-never-
   exercised units; both groups in (file, line) order so the report reads
   top-to-bottom per file. *)
let dead_config r =
  List.filter (fun i -> i.it_status = Dead) r.cov_items
  @ List.filter (fun i -> i.it_status = Uncovered) r.cov_items

(* --- rendering --- *)

let location_string it =
  if it.it_file <> "" && it.it_line > 0 then
    Printf.sprintf "%s:%d" it.it_file it.it_line
  else if it.it_file <> "" then it.it_file
  else if it.it_line > 0 then Printf.sprintf "line %d" it.it_line
  else "-"

let report_to_text r =
  let buf = Buffer.create 1024 in
  let pct n = if r.cov_total = 0 then 100 else 100 * n / r.cov_total in
  Buffer.add_string buf
    (Printf.sprintf
       "coverage: %d units, %d covered (%d%%), %d uncovered, %d dead; %d/%d attributed to source lines\n"
       r.cov_total r.cov_covered (pct r.cov_covered) r.cov_uncovered
       r.cov_dead r.cov_attributed r.cov_total);
  List.iter
    (fun fc ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d covered, %d uncovered, %d dead\n" fc.fc_file
           (List.length fc.fc_covered)
           (List.length fc.fc_uncovered)
           (List.length fc.fc_dead)))
    r.cov_files;
  let dc = dead_config r in
  if dc <> [] then begin
    Buffer.add_string buf "dead config (dead first, then uncovered):\n";
    List.iter
      (fun it ->
        Buffer.add_string buf
          (Printf.sprintf "  [%-9s] %s %s %s: %s\n"
             (status_to_string it.it_status)
             (location_string it) it.it_node it.it_what it.it_reason))
      dc
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let field k v = Printf.sprintf "\"%s\":%s" k v in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let ints ls = "[" ^ String.concat "," (List.map string_of_int ls) ^ "]" in
  let file_json fc =
    "{"
    ^ String.concat ","
        [ field "file" (str fc.fc_file);
          field "covered" (ints fc.fc_covered);
          field "uncovered" (ints fc.fc_uncovered);
          field "dead" (ints fc.fc_dead);
          field "covered_count" (string_of_int (List.length fc.fc_covered));
          field "uncovered_count" (string_of_int (List.length fc.fc_uncovered));
          field "dead_count" (string_of_int (List.length fc.fc_dead)) ]
    ^ "}"
  in
  let item_json it =
    "{"
    ^ String.concat ","
        ([ field "status" (str (status_to_string it.it_status)) ]
        @ (if it.it_file <> "" then [ field "file" (str it.it_file) ] else [])
        @ (if it.it_line > 0 then
             [ field "line" (string_of_int it.it_line) ]
           else [])
        @ [ field "node" (str it.it_node);
            field "kind" (str it.it_kind);
            field "what" (str it.it_what);
            field "reason" (str it.it_reason) ])
    ^ "}"
  in
  "{"
  ^ String.concat ","
      [ field "schema" "1";
        field "files"
          ("[" ^ String.concat "," (List.map file_json r.cov_files) ^ "]");
        field "summary"
          ("{"
          ^ String.concat ","
              [ field "units" (string_of_int r.cov_total);
                field "covered" (string_of_int r.cov_covered);
                field "uncovered" (string_of_int r.cov_uncovered);
                field "dead" (string_of_int r.cov_dead);
                field "attributed" (string_of_int r.cov_attributed) ]
          ^ "}");
        field "dead_config"
          ("["
          ^ String.concat "," (List.map item_json (dead_config r))
          ^ "]") ]
  ^ "}\n"
