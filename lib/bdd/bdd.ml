(* Nodes live in parallel int arrays indexed by node id; ids 0 and 1 are the
   terminals. The unique table is an open-addressing array of (id + 1) values
   keyed by (var, lo, hi), so BDDs are canonical and equality is integer
   equality. A single 2-way set-associative cache serves all operations,
   keyed by an operation code that embeds auxiliary ids (variable sets,
   renamings): entry slots [2s] (MRU way) and [2s+1] (victim way) form set
   [s], so two hot keys hashing to the same set coexist instead of evicting
   each other — direct mapping left the op cache at ~12% hit rate under the
   all-pairs workload. *)

type t = int

type varset = { vs_id : int; vs_mem : bool array }
type perm = { pm_id : int; pm_map : int array }

type man = {
  mutable var : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable n : int;
  mutable buckets : int array;
  mutable bmask : int;
  nvars : int;
  mutable ck_op : int array;
  mutable ck_a : int array;
  mutable ck_b : int array;
  mutable cv : int array;
  mutable cmask : int;
  cmask_max : int;
  mutable filled : int;
  mutable hits : int;
  mutable misses : int;
  mutable win_hits : int;
  mutable win_misses : int;
  mutable next_aux : int;
  mutable identity : perm option;
}

let bot = 0
let top = 1
let equal (a : t) (b : t) = a = b
let is_bot a = a = 0
let is_top a = a = 1
let nvars m = m.nvars
let node_count m = m.n
let stats m = (m.n, m.hits, m.misses)
let cache_size m = m.cmask + 1

type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_entries : int;
  cs_filled : int;
}

let cache_stats m =
  { cs_hits = m.hits; cs_misses = m.misses; cs_entries = m.cmask + 1;
    cs_filled = m.filled }

(* Process-wide registry of live managers, weakly held so per-domain worker
   managers can still be collected when their domain dies. Lets the bench
   harness report total resident BDD nodes across every manager (main +
   worker-resident), not just the one it can see. *)
let registry = ref (Weak.create 16)
let registry_used = ref 0
let registry_mutex = Mutex.create ()

let register_manager m =
  Mutex.lock registry_mutex;
  let r = !registry in
  let slot =
    let rec find i =
      if i >= Weak.length r then None
      else if Weak.check r i then find (i + 1)
      else Some i
    in
    find 0
  in
  (match slot with
  | Some i ->
    Weak.set r i (Some m);
    registry_used := max !registry_used (i + 1)
  | None ->
    let bigger = Weak.create (2 * Weak.length r) in
    Weak.blit r 0 bigger 0 (Weak.length r);
    Weak.set bigger (Weak.length r) (Some m);
    registry_used := Weak.length r + 1;
    registry := bigger);
  Mutex.unlock registry_mutex

let create ?(cache_bits = 18) ?(max_cache_bits = 22) ~nvars () =
  let cap = 1024 in
  (* the 2-way layout needs at least one full set (two entries) *)
  let cache_bits = max 1 cache_bits in
  let max_cache_bits = max cache_bits max_cache_bits in
  let m =
    { var = Array.make cap 0; lo = Array.make cap 0; hi = Array.make cap 0;
      n = 2;
      buckets = Array.make 4096 0; bmask = 4095;
      nvars;
      ck_op = Array.make (1 lsl cache_bits) (-1);
      ck_a = Array.make (1 lsl cache_bits) 0;
      ck_b = Array.make (1 lsl cache_bits) 0;
      cv = Array.make (1 lsl cache_bits) 0;
      cmask = (1 lsl cache_bits) - 1;
      cmask_max = (1 lsl max_cache_bits) - 1;
      filled = 0;
      hits = 0; misses = 0; win_hits = 0; win_misses = 0;
      next_aux = 0; identity = None }
  in
  (* Terminals sit below every real variable. *)
  m.var.(0) <- nvars;
  m.var.(1) <- nvars;
  register_manager m;
  m

let global_stats () =
  Mutex.lock registry_mutex;
  let r = !registry in
  let managers = ref 0 and nodes = ref 0 in
  for i = 0 to !registry_used - 1 do
    match Weak.get r i with
    | Some m ->
      incr managers;
      nodes := !nodes + m.n
    | None -> ()
  done;
  Mutex.unlock registry_mutex;
  (!managers, !nodes)

let uhash v l h mask =
  let x = (v * 0x9E3779B1) lxor (l * 0x85EBCA77) lxor (h * 0xC2B2AE3F) in
  (x lxor (x lsr 16)) land mask

let rehash m =
  let nmask = (m.bmask * 2) + 1 in
  let nb = Array.make (nmask + 1) 0 in
  for id = 2 to m.n - 1 do
    let j = ref (uhash m.var.(id) m.lo.(id) m.hi.(id) nmask) in
    while nb.(!j) <> 0 do
      j := (!j + 1) land nmask
    done;
    nb.(!j) <- id + 1
  done;
  m.buckets <- nb;
  m.bmask <- nmask

let grow m =
  let cap = Array.length m.var in
  let ncap = cap * 2 in
  let extend a = Array.append a (Array.make cap 0) in
  m.var <- extend m.var;
  m.lo <- extend m.lo;
  m.hi <- extend m.hi;
  ignore ncap

let mk m v l h =
  if l = h then l
  else begin
    if m.n * 4 > (m.bmask + 1) * 3 then rehash m;
    let j = ref (uhash v l h m.bmask) in
    let result = ref (-1) in
    while !result < 0 do
      let b = m.buckets.(!j) in
      if b = 0 then begin
        if m.n >= Array.length m.var then grow m;
        let id = m.n in
        m.n <- id + 1;
        m.var.(id) <- v;
        m.lo.(id) <- l;
        m.hi.(id) <- h;
        m.buckets.(!j) <- id + 1;
        result := id
      end
      else begin
        let id = b - 1 in
        if m.var.(id) = v && m.lo.(id) = l && m.hi.(id) = h then result := id
        else j := (!j + 1) land m.bmask
      end
    done;
    !result
  end

let var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.var";
  mk m v 0 1

let nvar m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.nvar";
  mk m v 1 0

let ite_raw m v l h =
  assert (v < m.var.(l) && v < m.var.(h));
  mk m v l h

(* Operation codes for the shared cache. Auxiliary ids (varsets, perms) are
   packed into high bits so distinct quantifications never collide. *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_diff = 3
let op_not = 4
let op_exists = 5
let op_replace = 6
let op_andex = 7
let op_transform = 8
let op_restrict = 9
let op_compose = 10

(* When the set-associative cache thrashes (a full capacity's worth of
   lookups with a poor hit rate), double it up to [cmask_max], rehashing the
   warm entries into the new table. Growth only changes what is recomputed,
   never what is computed: results are canonical node ids either way. *)

(* Insert into set [s] of the new arrays with MRU-way preference: way 0 is
   demoted to way 1 before the incoming entry takes way 0. *)
let cache_insert_raw ck_op ck_a ck_b cv s op a b r =
  let i0 = s * 2 and i1 = (s * 2) + 1 in
  let delta = (if ck_op.(i1) >= 0 then 0 else 1) in
  if ck_op.(i0) >= 0 then begin
    ck_op.(i1) <- ck_op.(i0);
    ck_a.(i1) <- ck_a.(i0);
    ck_b.(i1) <- ck_b.(i0);
    cv.(i1) <- cv.(i0);
    ck_op.(i0) <- op;
    ck_a.(i0) <- a;
    ck_b.(i0) <- b;
    cv.(i0) <- r;
    delta
  end
  else begin
    ck_op.(i0) <- op;
    ck_a.(i0) <- a;
    ck_b.(i0) <- b;
    cv.(i0) <- r;
    1
  end

let cache_grow m =
  let nmask = (m.cmask * 2) + 1 in
  let ck_op = Array.make (nmask + 1) (-1) in
  let ck_a = Array.make (nmask + 1) 0 in
  let ck_b = Array.make (nmask + 1) 0 in
  let cv = Array.make (nmask + 1) 0 in
  let smask = nmask lsr 1 in
  let filled = ref 0 in
  (* Re-insert victim ways first and MRU ways second, so entries that were
     recently used land in the MRU way of their new set. *)
  List.iter
    (fun way ->
      let i = ref way in
      while !i <= m.cmask do
        let op = m.ck_op.(!i) in
        if op >= 0 then begin
          let s = uhash op m.ck_a.(!i) m.ck_b.(!i) smask in
          filled :=
            !filled
            + cache_insert_raw ck_op ck_a ck_b cv s op m.ck_a.(!i) m.ck_b.(!i)
                m.cv.(!i)
        end;
        i := !i + 2
      done)
    [ 1; 0 ];
  m.ck_op <- ck_op;
  m.ck_a <- ck_a;
  m.ck_b <- ck_b;
  m.cv <- cv;
  m.cmask <- nmask;
  m.filled <- !filled

let cache_pressure_check m =
  let window = m.win_hits + m.win_misses in
  if window > m.cmask then begin
    (* miss rate over the window above ~60% means the working set no longer
       fits: entries are evicted before they can be re-used *)
    if m.cmask < m.cmask_max && m.win_misses * 5 > window * 3 then cache_grow m;
    m.win_hits <- 0;
    m.win_misses <- 0
  end

let cache_find m op a b =
  let s = uhash op a b (m.cmask lsr 1) in
  let i0 = s * 2 in
  if m.ck_op.(i0) = op && m.ck_a.(i0) = a && m.ck_b.(i0) = b then begin
    m.hits <- m.hits + 1;
    m.win_hits <- m.win_hits + 1;
    m.cv.(i0)
  end
  else begin
    let i1 = i0 + 1 in
    if m.ck_op.(i1) = op && m.ck_a.(i1) = a && m.ck_b.(i1) = b then begin
      m.hits <- m.hits + 1;
      m.win_hits <- m.win_hits + 1;
      let r = m.cv.(i1) in
      (* promote: swap ways so a re-used entry survives the next store *)
      m.ck_op.(i1) <- m.ck_op.(i0);
      m.ck_a.(i1) <- m.ck_a.(i0);
      m.ck_b.(i1) <- m.ck_b.(i0);
      m.cv.(i1) <- m.cv.(i0);
      m.ck_op.(i0) <- op;
      m.ck_a.(i0) <- a;
      m.ck_b.(i0) <- b;
      m.cv.(i0) <- r;
      r
    end
    else begin
      m.misses <- m.misses + 1;
      m.win_misses <- m.win_misses + 1;
      if m.win_misses land 0xFFF = 0 then cache_pressure_check m;
      -1
    end
  end

let cache_store m op a b r =
  let s = uhash op a b (m.cmask lsr 1) in
  m.filled <- m.filled + cache_insert_raw m.ck_op m.ck_a m.ck_b m.cv s op a b r

let rec bnot m a =
  if a = 0 then 1
  else if a = 1 then 0
  else
    let r = cache_find m op_not a 0 in
    if r >= 0 then r
    else begin
      let res = mk m m.var.(a) (bnot m m.lo.(a)) (bnot m m.hi.(a)) in
      cache_store m op_not a 0 res;
      res
    end

(* Generic binary apply for and/or/xor/diff. Commutative ops normalize the
   operand order to improve cache hit rates. *)
let rec apply m op a b =
  let shortcut =
    if op = op_and then
      if a = 0 || b = 0 then 0
      else if a = 1 then b
      else if b = 1 then a
      else if a = b then a
      else -1
    else if op = op_or then
      if a = 1 || b = 1 then 1
      else if a = 0 then b
      else if b = 0 then a
      else if a = b then a
      else -1
    else if op = op_xor then
      if a = b then 0
      else if a = 0 then b
      else if b = 0 then a
      else if a = 1 then bnot m b
      else if b = 1 then bnot m a
      else -1
    else if a = 0 || b = 1 || a = b then 0 (* diff *)
    else if b = 0 then a
    else if a = 1 then bnot m b
    else -1
  in
  if shortcut >= 0 then shortcut
  else begin
    let a, b = if op <> op_diff && a > b then (b, a) else (a, b) in
    let r = cache_find m op a b in
    if r >= 0 then r
    else begin
      let va = m.var.(a) and vb = m.var.(b) in
      let v = if va < vb then va else vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r0 = apply m op a0 b0 in
      let r1 = apply m op a1 b1 in
      let res = mk m v r0 r1 in
      cache_store m op a b res;
      res
    end
  end

(* Conjunction and disjunction dominate the verification hot path (filters,
   FIB cells, fixed-point unions), so they get dedicated recursions: the
   bot/top short-circuits sit first and no per-call operation dispatch runs.
   They share cache codes with [apply], so mixed use stays coherent. *)
let rec band_rec m a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = b then a
  else begin
    let a, b = if a > b then (b, a) else (a, b) in
    let r = cache_find m op_and a b in
    if r >= 0 then r
    else begin
      let va = m.var.(a) and vb = m.var.(b) in
      let v = if va < vb then va else vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r0 = band_rec m a0 b0 in
      let r1 = band_rec m a1 b1 in
      let res = mk m v r0 r1 in
      cache_store m op_and a b res;
      res
    end
  end

let rec bor_rec m a b =
  if a = 1 || b = 1 then 1
  else if a = 0 then b
  else if b = 0 then a
  else if a = b then a
  else begin
    let a, b = if a > b then (b, a) else (a, b) in
    let r = cache_find m op_or a b in
    if r >= 0 then r
    else begin
      let va = m.var.(a) and vb = m.var.(b) in
      let v = if va < vb then va else vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r0 = bor_rec m a0 b0 in
      let r1 = bor_rec m a1 b1 in
      let res = mk m v r0 r1 in
      cache_store m op_or a b res;
      res
    end
  end

let band m a b = band_rec m a b
let bor m a b = bor_rec m a b
let bxor m a b = apply m op_xor a b
let bdiff m a b = apply m op_diff a b
let bimplies m a b = bor m (bnot m a) b
let ite m f g h = bor m (band m f g) (band m (bnot m f) h)
let conj m l = List.fold_left (band m) top l
let disj m l = List.fold_left (bor m) bot l

let fresh_aux m =
  let id = m.next_aux in
  m.next_aux <- id + 1;
  id

let varset m levels =
  let vs_mem = Array.make m.nvars false in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then invalid_arg "Bdd.varset";
      vs_mem.(v) <- true)
    levels;
  { vs_id = fresh_aux m; vs_mem }

let varset_mem vs v = vs.vs_mem.(v)

let perm m pairs =
  let pm_map = Array.init m.nvars (fun i -> i) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= m.nvars || b < 0 || b >= m.nvars then invalid_arg "Bdd.perm";
      pm_map.(a) <- b)
    pairs;
  { pm_id = fresh_aux m; pm_map }

let rec exists_rec m code vs a =
  if a <= 1 then a
  else begin
    let r = cache_find m code a 0 in
    if r >= 0 then r
    else begin
      let v = m.var.(a) in
      let r0 = exists_rec m code vs m.lo.(a) in
      let res =
        if vs.vs_mem.(v) && r0 = 1 then 1
        else
          let r1 = exists_rec m code vs m.hi.(a) in
          if vs.vs_mem.(v) then bor m r0 r1 else mk m v r0 r1
      in
      cache_store m code a 0 res;
      res
    end
  end

let exists m vs a = exists_rec m (op_exists lor (vs.vs_id lsl 4)) vs a

let rec replace_rec m code pm a =
  if a <= 1 then a
  else begin
    let r = cache_find m code a 0 in
    if r >= 0 then r
    else begin
      let res =
        mk m pm.pm_map.(m.var.(a)) (replace_rec m code pm m.lo.(a))
          (replace_rec m code pm m.hi.(a))
      in
      cache_store m code a 0 res;
      res
    end
  end

let replace m pm a = replace_rec m (op_replace lor (pm.pm_id lsl 4)) pm a

(* Relational product with an optional fused renaming: computes
   rename(exists vs (a ∧ b)) in one traversal. [pm] may be the identity. *)
let rec andex_rec m code vs pm a b =
  if a = 0 || b = 0 then 0
  else if a = 1 && b = 1 then 1
  else begin
    let a, b = if a > b then (b, a) else (a, b) in
    let r = cache_find m code a b in
    if r >= 0 then r
    else begin
      let va = m.var.(a) and vb = m.var.(b) in
      let v = if va < vb then va else vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r0 = andex_rec m code vs pm a0 b0 in
      let res =
        if vs.vs_mem.(v) then
          if r0 = 1 then 1 else bor m r0 (andex_rec m code vs pm a1 b1)
        else mk m pm.pm_map.(v) r0 (andex_rec m code vs pm a1 b1)
      in
      cache_store m code a b res;
      res
    end
  end

let identity_perm m =
  match m.identity with
  | Some pm -> pm
  | None ->
    let pm = { pm_id = -1; pm_map = Array.init m.nvars (fun i -> i) } in
    m.identity <- Some pm;
    pm

let and_exists m vs a b =
  andex_rec m (op_andex lor (vs.vs_id lsl 4)) vs (identity_perm m) a b

let transform m ~rel ~quant ~rename a =
  let code = op_transform lor (quant.vs_id lsl 4) lor (rename.pm_id lsl 20) in
  andex_rec m code quant rename a rel

let transform_unfused m ~rel ~quant ~rename a =
  replace m rename (exists m quant (band m a rel))

(* Variable substitution valid for ARBITRARY permutations (including
   order-violating ones like src/dst swaps): rebuild bottom-up with full ite
   instead of mk. Slower than [replace], but correct regardless of order. *)
let rec compose_rec m code pm a =
  if a <= 1 then a
  else begin
    let r = cache_find m code a 0 in
    if r >= 0 then r
    else begin
      let v' = pm.pm_map.(m.var.(a)) in
      let lo = compose_rec m code pm m.lo.(a) in
      let hi = compose_rec m code pm m.hi.(a) in
      let x = mk m v' 0 1 in
      (* ite x hi lo *)
      let res = apply m op_or (apply m op_and x hi) (apply m op_diff lo x) in
      cache_store m code a 0 res;
      res
    end
  end

let compose_perm m pm a = compose_rec m (op_compose lor (pm.pm_id lsl 4)) pm a

let rec restrict_rec m code v b a =
  if a <= 1 then a
  else if m.var.(a) > v then a
  else begin
    let r = cache_find m code a 0 in
    if r >= 0 then r
    else begin
      let res =
        if m.var.(a) = v then if b then m.hi.(a) else m.lo.(a)
        else mk m m.var.(a) (restrict_rec m code v b m.lo.(a)) (restrict_rec m code v b m.hi.(a))
      in
      cache_store m code a 0 res;
      res
    end
  end

let restrict m v b a =
  restrict_rec m (op_restrict lor (((v * 2) + Bool.to_int b) lsl 4)) v b a

let iter_nodes m root f =
  let seen = Hashtbl.create 64 in
  let rec go a =
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      f a;
      if a > 1 then begin
        go m.lo.(a);
        go m.hi.(a)
      end
    end
  in
  go root

let support m a =
  let levels = Hashtbl.create 16 in
  iter_nodes m a (fun n -> if n > 1 then Hashtbl.replace levels m.var.(n) ());
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) levels [])

let size m a =
  let c = ref 0 in
  iter_nodes m a (fun _ -> incr c);
  !c

let sat_count m a =
  (* Satisfaction probability under uniform assignment; level skips cancel
     because both cofactors are weighted 1/2. *)
  let memo = Hashtbl.create 64 in
  let rec prob a =
    if a = 0 then 0.0
    else if a = 1 then 1.0
    else
      match Hashtbl.find_opt memo a with
      | Some p -> p
      | None ->
        let p = 0.5 *. (prob m.lo.(a) +. prob m.hi.(a)) in
        Hashtbl.add memo a p;
        p
  in
  prob a *. (2.0 ** float_of_int m.nvars)

let any_sat m a =
  if a = 0 then None
  else
    let rec go a acc =
      if a = 1 then List.rev acc
      else
        let v = m.var.(a) in
        if m.lo.(a) <> 0 then go m.lo.(a) ((v, false) :: acc)
        else go m.hi.(a) ((v, true) :: acc)
    in
    Some (go a [])

let eval m a assign =
  let rec go a = if a <= 1 then a = 1 else go (if assign m.var.(a) then m.hi.(a) else m.lo.(a)) in
  go a

let pick_preferred m a prefs =
  List.fold_left
    (fun acc p ->
      let refined = band m acc p in
      if refined = 0 then acc else refined)
    a prefs

(* --- manager-independent export/import --------------------------------- *)

(* An exported BDD set is a compact node table in child-before-parent order:
   references 0 and 1 are the terminals, reference k+2 is table row k. Node
   ids in a manager are allocated children-first (mk requires both cofactors
   to exist), so sorting reachable ids ascending yields a valid row order.
   Importing into any manager over at least as many variables rebuilds the
   same canonical structure, so the imported roots denote exactly the same
   boolean functions — the basis for re-materializing a forwarding graph
   into a private per-domain manager. *)
type exported = {
  ex_var : int array;
  ex_lo : int array;
  ex_hi : int array;
  ex_roots : int array;
}

let export m roots =
  (* Post-order DFS numbering: children precede parents (what {!import}
     needs) and the table is a pure function of the BDD structure and root
     order — two managers holding the same functions export byte-identical
     tables regardless of allocation history. *)
  let seen = Hashtbl.create 256 in
  let rev_post = ref [] in
  let rec go a =
    if a > 1 && not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      go m.lo.(a);
      go m.hi.(a);
      rev_post := a :: !rev_post
    end
  in
  List.iter go roots;
  let arr = Array.of_list (List.rev !rev_post) in
  let index = Hashtbl.create (max 16 (Array.length arr)) in
  Array.iteri (fun i id -> Hashtbl.add index id i) arr;
  let ref_of a = if a <= 1 then a else Hashtbl.find index a + 2 in
  { ex_var = Array.map (fun id -> m.var.(id)) arr;
    ex_lo = Array.map (fun id -> ref_of m.lo.(id)) arr;
    ex_hi = Array.map (fun id -> ref_of m.hi.(id)) arr;
    ex_roots = Array.of_list (List.map ref_of roots) }

let import m ex =
  let n = Array.length ex.ex_var in
  let ids = Array.make (n + 2) 0 in
  ids.(1) <- 1;
  for i = 0 to n - 1 do
    let v = ex.ex_var.(i) in
    if v < 0 || v >= m.nvars then invalid_arg "Bdd.import: variable out of range";
    ids.(i + 2) <- mk m v ids.(ex.ex_lo.(i)) ids.(ex.ex_hi.(i))
  done;
  List.map (fun r -> ids.(r)) (Array.to_list ex.ex_roots)

let exported_nodes ex = Array.length ex.ex_var
