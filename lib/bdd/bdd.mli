(** Reduced ordered binary decision diagrams.

    This is the symbolic backend of the data-plane verification engine
    (paper §4.2). Nodes are hash-consed into a manager, so BDDs are canonical:
    two BDDs over the same manager represent the same boolean function iff
    they are physically equal ({!equal} is [==] on node ids). The manager owns
    a unique table and a 2-way set-associative operation cache (an MRU way
    plus a victim way per set, so two hot keys that hash together coexist);
    identity-based cache hits short-circuit full traversals, as the paper
    notes.

    Variables are identified by their level in the (fixed) variable order:
    level 0 is tested first. *)

type man
type t = int

(** [create ~nvars ()] makes a manager for variables [0 .. nvars-1].
    [cache_bits] sizes the operation caches at [2^cache_bits] entries
    initially; the cache grows automatically (doubling, rehashing warm
    entries) up to [2^max_cache_bits] entries when the observed miss rate
    degrades. Growth affects performance only — results are canonical and
    unchanged. *)
val create : ?cache_bits:int -> ?max_cache_bits:int -> nvars:int -> unit -> man

val nvars : man -> int

(** Number of live nodes in the manager (grows monotonically; there is no
    garbage collection — analyses use a fresh manager per snapshot). *)
val node_count : man -> int

val bot : t
val top : t

(** [var man v] is the function "variable v is true". *)
val var : man -> int -> t

(** [nvar man v] is the function "variable v is false". *)
val nvar : man -> int -> t

(** [ite_raw man v lo hi] builds the node testing level [v] directly; [v]
    must be strictly less than the root levels of [lo] and [hi]. *)
val ite_raw : man -> int -> t -> t -> t

val equal : t -> t -> bool
val is_bot : t -> bool
val is_top : t -> bool
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t

(** [bdiff man a b] is [a ∧ ¬b]. *)
val bdiff : man -> t -> t -> t

val bnot : man -> t -> t
val bimplies : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
val conj : man -> t list -> t
val disj : man -> t list -> t

(** Variable sets for quantification. Registered against a manager so
    operations can be cached. *)
type varset

val varset : man -> int list -> varset
val varset_mem : varset -> int -> bool

(** Order-compatible variable renamings. [perm man pairs] renames level
    [a] to level [b] for each [(a, b)]. The mapping must preserve relative
    order on the variables that actually occur in the argument BDD, and no
    target variable may occur in it. *)
type perm

val perm : man -> (int * int) list -> perm

val exists : man -> varset -> t -> t
val replace : man -> perm -> t -> t

(** Variable substitution valid for arbitrary permutations (e.g. swapping
    source and destination fields). Correct where {!replace} would require
    order compatibility; potentially slower. *)
val compose_perm : man -> perm -> t -> t

(** [and_exists man vs a b] = [exists man vs (band man a b)], computed in one
    pass (relational product). *)
val and_exists : man -> varset -> t -> t -> t

(** [transform man ~rel ~quant ~rename a] applies a packet-transformation
    relation: [replace rename (exists quant (band a rel))], fused into a
    single traversal. This is the optimized NAT operation of §4.2.3. *)
val transform : man -> rel:t -> quant:varset -> rename:perm -> t -> t

(** The same three steps executed separately (baseline for the ablation). *)
val transform_unfused : man -> rel:t -> quant:varset -> rename:perm -> t -> t

(** Restrict a variable to a constant. *)
val restrict : man -> int -> bool -> t -> t

(** Levels occurring in the BDD, ascending. *)
val support : man -> t -> int list

(** Number of nodes reachable from the root (including terminals). *)
val size : man -> t -> int

(** Number of satisfying assignments over [nvars] variables. *)
val sat_count : man -> t -> float

(** A satisfying assignment as [(level, value)] pairs for the levels tested
    on the chosen path; unmentioned levels are unconstrained.
    Returns [None] for [bot]. Prefers [false] branches, so unconstrained-
    looking (all-zero) witnesses come out when possible. *)
val any_sat : man -> t -> (int * bool) list option

(** [eval man t assign] evaluates under a total assignment. *)
val eval : man -> t -> (int -> bool) -> bool

(** [pick_preferred man t prefs] intersects [t] with each preference in order,
    keeping only intersections that remain satisfiable (§4.4.3 example
    selection). The result is a non-empty subset of [t] when [t] is
    non-empty. *)
val pick_preferred : man -> t -> t list -> t

(** Cache/unique-table statistics for benchmarks: (nodes, cache_hits,
    cache_misses). *)
val stats : man -> int * int * int

(** [(live_managers, total_nodes)] across every manager still alive in the
    process, worker-domain managers included. Managers are tracked weakly
    from {!create}, so collected managers drop out; node counts of managers
    owned by other domains are sampled without synchronization (fine for
    benchmark reporting, not a precise barrier). *)
val global_stats : unit -> int * int

(** Current operation-cache capacity in entries (grows adaptively). *)
val cache_size : man -> int

(** Operation-cache health counters: lifetime hits/misses, current capacity
    in entries, and how many entries are occupied. Hit rate is
    [cs_hits /. (cs_hits + cs_misses)]; occupancy is
    [cs_filled /. cs_entries]. *)
type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_entries : int;
  cs_filled : int;
}

val cache_stats : man -> cache_stats

(** {2 Manager-independent export/import}

    A forwarding graph's edge programs can be compiled out of one manager and
    re-materialized into a private manager per worker domain. [export] packs
    the BDDs reachable from [roots] into a compact child-before-parent node
    table; [import] rebuilds them in another manager (over at least as many
    variables), yielding BDDs denoting exactly the same boolean functions.
    Since BDDs are canonical, every derived observation (satisfiability,
    witnesses, evaluation) is identical across managers. *)
type exported

(** [export man roots] packs the listed BDDs into a manager-independent
    table. *)
val export : man -> t list -> exported

(** [import man ex] rebuilds the exported BDDs in [man], returning the new
    roots in the same order as the [roots] given to {!export}. Raises
    [Invalid_argument] if a variable is out of range for [man]. *)
val import : man -> exported -> t list

(** Number of distinct internal nodes in the exported table. *)
val exported_nodes : exported -> int
