type disposition =
  | Accepted of string
  | Delivered_to_subnet of string * string
  | Exits_network of string * string
  | Denied_in of string * string * string
  | Denied_out of string * string * string
  | Denied_zone of string * string
  | No_route of string
  | Null_routed of string
  | Loop of string
  | Hop_limit_exceeded of string

type hop = {
  h_node : string;
  h_in_iface : string option;
  h_route : string option;
  h_out_iface : string option;
  h_gateway : Ipv4.t option;
  h_packet : Packet.t;
}

type trace = { hops : hop list; disposition : disposition; final_packet : Packet.t }

let disposition_to_string = function
  | Accepted n -> Printf.sprintf "ACCEPTED at %s" n
  | Delivered_to_subnet (n, i) -> Printf.sprintf "DELIVERED_TO_SUBNET at %s[%s]" n i
  | Exits_network (n, i) -> Printf.sprintf "EXITS_NETWORK at %s[%s]" n i
  | Denied_in (n, i, acl) -> Printf.sprintf "DENIED_IN at %s[%s] by acl %s" n i acl
  | Denied_out (n, i, acl) -> Printf.sprintf "DENIED_OUT at %s[%s] by acl %s" n i acl
  | Denied_zone (n, i) -> Printf.sprintf "DENIED by zone policy at %s[%s]" n i
  | No_route n -> Printf.sprintf "NO_ROUTE at %s" n
  | Null_routed n -> Printf.sprintf "NULL_ROUTED at %s" n
  | Loop n -> Printf.sprintf "LOOP detected at %s" n
  | Hop_limit_exceeded n -> Printf.sprintf "HOP_LIMIT_EXCEEDED at %s" n

let is_delivered = function
  | Accepted _ | Delivered_to_subnet _ | Exits_network _ -> true
  | Denied_in _ | Denied_out _ | Denied_zone _ | No_route _ | Null_routed _ | Loop _
  | Hop_limit_exceeded _ ->
    false

let trace_to_string t =
  let hop_str h =
    Printf.sprintf "  %s%s%s%s" h.h_node
      (match h.h_in_iface with
       | Some i -> " in=" ^ i
       | None -> "")
      (match h.h_route with
       | Some r -> " route=" ^ r
       | None -> "")
      (match h.h_out_iface with
       | Some i -> " out=" ^ i
       | None -> "")
  in
  String.concat "\n" (List.map hop_str t.hops @ [ "  => " ^ disposition_to_string t.disposition ])

(* --- NAT --- *)

let nat_pool_ip egress_ip = function
  | Vi.Nat_ip ip -> Some ip
  | Vi.Nat_prefix p -> Some (Prefix.first_host p)
  | Vi.Nat_interface -> egress_ip

let src_nat (cfg : Vi.t) ~egress_ip (p : Packet.t) =
  let rule_matches (r : Vi.nat_rule) =
    r.nr_kind = `Source
    && (match r.nr_match_acl with
        | Some name -> (
          match Vi.find_acl cfg name with
          | Some acl -> Acl_eval.permits acl p
          | None -> false)
        | None -> true)
    && (match r.nr_match_src with
        | Some pre -> Prefix.contains pre p.src_ip
        | None -> r.nr_match_acl <> None)
  in
  match List.find_opt rule_matches cfg.nat_rules with
  | None -> p
  | Some r -> (
    match nat_pool_ip egress_ip r.nr_pool with
    | Some ip -> { p with Packet.src_ip = ip }
    | None -> p)

let dst_nat (cfg : Vi.t) (p : Packet.t) =
  let rule_matches (r : Vi.nat_rule) =
    r.nr_kind = `Destination
    && (match r.nr_match_dst with
        | Some pre -> Prefix.contains pre p.dst_ip
        | None -> false)
  in
  match List.find_opt rule_matches cfg.nat_rules with
  | None -> p
  | Some r -> (
    match nat_pool_ip None r.nr_pool with
    | Some ip -> { p with Packet.dst_ip = ip }
    | None -> p)

(* --- the walk --- *)

let run ~configs ~dp ?(max_hops = 32) ~start ?ingress pkt =
  let topo = dp.Dataplane.topo in
  let acl_check (cfg : Vi.t) name pkt =
    match Vi.find_acl cfg name with
    | Some acl -> Acl_eval.permits acl pkt
    | None -> (Semantics.for_vendor cfg.vendor).Semantics.undefined_acl_permits
  in
  (* Loop detection over the current DFS path only: entries are added on the
     way down and removed on the way back up, so multipath siblings don't see
     each other's (node, packet) states. *)
  let visited : (string * Packet.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec visit node ingress pkt hops depth =
    if depth > max_hops then
      [ { hops = List.rev hops; disposition = Hop_limit_exceeded node; final_packet = pkt } ]
    else if Hashtbl.mem visited (node, pkt) then
      [ { hops = List.rev hops; disposition = Loop node; final_packet = pkt } ]
    else begin
      Hashtbl.add visited (node, pkt) ();
      let traces = visit_fresh node ingress pkt hops depth in
      Hashtbl.remove visited (node, pkt);
      traces
    end
  and visit_fresh node ingress pkt hops depth =
      match configs node with
      | None ->
        [ { hops = List.rev hops; disposition = Exits_network (node, "?"); final_packet = pkt } ]
      | Some cfg -> (
        let stop disposition hop =
          [ { hops = List.rev (hop :: hops); disposition; final_packet = hop.h_packet } ]
        in
        let base_hop =
          { h_node = node; h_in_iface = ingress; h_route = None; h_out_iface = None;
            h_gateway = None; h_packet = pkt }
        in
        (* ingress filter *)
        let in_denied =
          match ingress with
          | Some iface -> (
            match Vi.find_interface cfg iface with
            | Some { Vi.if_in_acl = Some acl; _ } when not (acl_check cfg acl pkt) ->
              Some acl
            | Some _ | None -> None)
          | None -> None
        in
        match in_denied with
        | Some acl ->
          stop (Denied_in (node, Option.value ingress ~default:"?", acl)) base_hop
        | None -> (
          (* destination NAT before routing *)
          let pkt = dst_nat cfg pkt in
          let fib = (Dataplane.node dp node).Dataplane.nr_fib in
          match Fib.lookup_entry fib pkt.Packet.dst_ip with
          | None -> stop (No_route node) { base_hop with h_packet = pkt }
          | Some entry ->
            let route_str = Prefix.to_string entry.Fib.fe_prefix in
            let hop = { base_hop with h_route = Some route_str; h_packet = pkt } in
            List.concat_map
              (fun action ->
                match action with
                | Fib.Receive -> stop (Accepted node) hop
                | Fib.Drop_null -> stop (Null_routed node) hop
                | Fib.Forward { out_iface; gateway } -> (
                  (* zone policy *)
                  let zone_ok =
                    match Zone_eval.verdict cfg ~from_iface:ingress ~to_iface:out_iface with
                    | Zone_eval.Zone_permit -> true
                    | Zone_eval.Zone_deny -> false
                    | Zone_eval.Zone_filter acl -> Acl_eval.permits acl pkt
                  in
                  if not zone_ok then
                    stop (Denied_zone (node, out_iface)) { hop with h_out_iface = Some out_iface }
                  else
                    (* egress filter *)
                    let out_denied =
                      match Vi.find_interface cfg out_iface with
                      | Some { Vi.if_out_acl = Some acl; _ } when not (acl_check cfg acl pkt) ->
                        Some acl
                      | Some _ | None -> None
                    in
                    match out_denied with
                    | Some acl ->
                      stop (Denied_out (node, out_iface, acl))
                        { hop with h_out_iface = Some out_iface }
                    | None -> (
                      (* source NAT on egress *)
                      let egress_ip =
                        Option.map
                          (fun (ep : L3.endpoint) -> ep.ep_ip)
                          (L3.endpoint topo ~node ~iface:out_iface)
                      in
                      let pkt' = src_nat cfg ~egress_ip pkt in
                      let hop =
                        { hop with h_out_iface = Some out_iface; h_gateway = gateway;
                          h_packet = pkt' }
                      in
                      let target_ip = Option.value gateway ~default:pkt'.Packet.dst_ip in
                      let next =
                        List.find_opt
                          (fun (ep : L3.endpoint) -> ep.ep_ip = target_ip)
                          (L3.neighbors topo ~node ~iface:out_iface)
                      in
                      match next with
                      | Some ep ->
                        visit ep.ep_node (Some ep.ep_iface) pkt' (hop :: hops) (depth + 1)
                      | None -> (
                        match gateway with
                        | None -> (
                          (* directly attached destination: host or off-net *)
                          match L3.endpoint topo ~node ~iface:out_iface with
                          | Some ep when Prefix.contains ep.ep_prefix pkt'.Packet.dst_ip ->
                            [ { hops = List.rev (hop :: hops);
                                disposition = Delivered_to_subnet (node, out_iface);
                                final_packet = pkt' } ]
                          | Some _ | None ->
                            [ { hops = List.rev (hop :: hops);
                                disposition = Exits_network (node, out_iface);
                                final_packet = pkt' } ])
                        | Some _ ->
                          (* gateway is not a known device (e.g. external
                             peer): traffic leaves the modeled network *)
                          [ { hops = List.rev (hop :: hops);
                              disposition = Exits_network (node, out_iface);
                              final_packet = pkt' } ]))))
              entry.Fib.fe_actions))
  in
  visit start ingress pkt [] 0
