(** The concrete traceroute engine (§4.3.2).

    Walks one packet through FIBs, ACLs, zone policies and NATs, producing
    every multipath branch as a separate trace. This is the second,
    independent forwarding engine used to cross-validate the BDD engine
    (differential engine testing). *)

type disposition =
  | Accepted of string  (** delivered to the device itself *)
  | Delivered_to_subnet of string * string  (** node, interface *)
  | Exits_network of string * string  (** leaves via an interface with no known device behind it *)
  | Denied_in of string * string * string  (** node, interface, acl *)
  | Denied_out of string * string * string
  | Denied_zone of string * string  (** node, out interface *)
  | No_route of string
  | Null_routed of string
  | Loop of string
      (** the same (node, packet) state was reached twice on one path: a real
          forwarding loop *)
  | Hop_limit_exceeded of string
      (** the walk ran out of hop budget without revisiting a state — a long
          path or a loop whose packet is rewritten (e.g. NAT) every cycle *)

type hop = {
  h_node : string;
  h_in_iface : string option;
  h_route : string option;  (** matched FIB prefix, for annotation *)
  h_out_iface : string option;
  h_gateway : Ipv4.t option;
  h_packet : Packet.t;  (** the packet leaving this hop (after NAT) *)
}

type trace = { hops : hop list; disposition : disposition; final_packet : Packet.t }

val disposition_to_string : disposition -> string
val trace_to_string : trace -> string

(** Did the flow reach its destination on this trace? *)
val is_delivered : disposition -> bool

(** [run ~configs ~dp ~start ?ingress pkt] traces [pkt] injected at node
    [start] (entering via [ingress], or originated at the device when
    absent). Returns one trace per multipath branch. *)
val run :
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  ?max_hops:int ->
  start:string ->
  ?ingress:string ->
  Packet.t ->
  trace list
