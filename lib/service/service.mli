(** Analysis-as-a-service: a long-lived daemon serving the question set
    over newline-delimited JSON (one request object per line, one response
    object per line) on a Unix-domain — and optionally TCP — socket.

    Design:

    - {b Snapshot store.} Loaded snapshots are keyed by their content
      fingerprint (digest over per-file (name, MD5) pairs, computable
      without parsing), so two clients loading byte-identical configs
      share one parsed session, one data plane and one forwarding graph.
    - {b One pool, many clients.} All sessions share a single persistent
      {!Par.Pool}; per-connection systhreads handle protocol IO while the
      pool's worker domains provide the real parallelism. Engine compute
      is serialized per snapshot (BDD managers are not thread-safe), and
      each query routes through {!Fpar.plan} for admission, so small
      questions never occupy the pool.
    - {b Coalescing.} Identical queries against the same snapshot that
      overlap in time join one computation and share its result; repeats
      that arrive later hit the engine's query memo instead.
    - {b Shutdown.} [stop] (wired to SIGINT/SIGTERM by {!serve}) drains
      in-flight requests — each still receives its full response — then
      shuts the shared pool down exactly once, never racing the process
      [at_exit] sweep into a double join. *)

type t

(** Protocol-level counters, readable at any time (and exposed to clients
    via the [stats] method). *)
type stats = {
  st_requests : int;  (** requests parsed and dispatched *)
  st_errors : int;  (** requests answered with ["ok": false] *)
  st_computed : int;  (** queries that ran the engine *)
  st_coalesced : int;  (** queries that joined an in-flight computation *)
  st_snapshots : int;  (** live snapshots in the store *)
  st_dedup_hits : int;  (** loads answered by an existing snapshot *)
  st_evictions : int;  (** snapshots dropped by the LRU capacity bound *)
  st_shutdowns_run : int;  (** times the shared pool was actually shut down *)
}

(** [create ?domains ?auto ()] builds a service instance. [domains]
    (default {!Par.default_domains}) sizes the shared worker pool
    ([domains <= 1] runs everything serially, no pool); [auto] (default
    true) enables the adaptive serial fallback for small queries.
    [max_snapshots] bounds the snapshot store: registering one past the
    bound evicts the snapshot whose last store lookup (load, query,
    update) is oldest — in-flight requests against an evicted session
    still complete; re-loading it just pays the parse again. Unbounded by
    default. [compress] (default [`Auto]) is the quotient-compression
    mode served sessions build their forwarding engine with. *)
val create :
  ?domains:int ->
  ?auto:bool ->
  ?max_snapshots:int ->
  ?compress:Fquery.compress_mode ->
  unit ->
  t

(** Handle one request line, returning exactly one response line (no
    trailing newline). Never raises: malformed JSON, unknown methods and
    engine failures all come back as [{"ok":false,"error":...}] — a bad
    request must never take the daemon down. Thread-safe. *)
val handle_line : t -> string -> string

(** Load a snapshot directly (bypassing the protocol): returns its store
    fingerprint. [warm] (default true) forces the data plane and
    forwarding graph and pre-imports the graph into every pool worker.
    Deduped against the store like protocol loads. *)
val load_files : ?warm:bool -> t -> (string * string) list -> string

val stats : t -> stats

(** Ask the serve loop to stop. Safe from signal handlers' contexts
    (asynchronous with respect to [serve]) and idempotent. Pending
    requests drain before the listener returns. *)
val stop : t -> unit

(** [serve t ~socket ()] binds [socket] (a Unix-domain path, replaced if
    it already exists), optionally also [tcp_port] on localhost, and
    serves until {!stop}. [install_signals] (default true) wires SIGINT
    and SIGTERM to {!stop} via a self-pipe so an interrupted daemon still
    drains in-flight requests and shuts the pool down exactly once.
    Returns after the drain. *)
val serve : ?install_signals:bool -> ?tcp_port:int -> socket:string -> t -> unit

(** Test seam: artificial delay (seconds) inserted into every engine
    computation, so tests can force two identical queries to overlap and
    exercise the coalescing path deterministically. Default [0.]. *)
val test_delay : float ref
