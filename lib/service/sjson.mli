(** Minimal JSON codec for the analysis service's newline-delimited
    protocol. Self-contained on purpose: the toolchain ships no JSON
    library, and the protocol needs only the standard scalar types, arrays
    and objects — no streaming, no numbers beyond OCaml [int]/[float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Parse one complete JSON value; trailing non-whitespace is an error.
    [Error msg] carries the byte offset of the failure. *)
val parse : string -> (t, string) result

(** Compact (single-line) rendering; strings are escaped per RFC 8259.
    [Float] values that are whole numbers print with a trailing [.]
    so they re-parse as floats. *)
val to_string : t -> string

(** {2 Accessors} — total lookups used by the request handlers. *)

(** Field of an object ([None] on missing field or non-object). *)
val member : string -> t -> t option

val get_string : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option

(** Object fields as an association list ([None] on non-objects). *)
val get_obj : t -> (string * t) list option

val get_arr : t -> t list option
