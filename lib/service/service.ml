(* Analysis-as-a-service (the §5.2 "persistent service" deployment mode).

   One process owns one persistent {!Par.Pool}; per-connection systhreads
   do protocol IO and block on engine mutexes, while the pool's worker
   domains do the parallel compute. Snapshots are stored by content
   fingerprint, so identical configs loaded by different clients share a
   single parsed session — and hence a single data plane, forwarding graph
   and warm per-worker graph cache. *)

type inflight_state = Running | Done of string | Failed of string

(* One in-flight query computation. Followers with the same (snapshot,
   query) key wait on [i_cv] and share the result fragment instead of
   re-running the engine. *)
type inflight = {
  i_mutex : Mutex.t;
  i_cv : Condition.t;
  mutable i_state : inflight_state;
}

type session = {
  s_bf : Batfish.t;
  (* Serializes engine computation on this snapshot: the session's BDD
     manager is single-threaded state. Cross-snapshot queries still
     overlap (each has its own lock), and within one query the shared
     pool provides the actual parallelism. *)
  s_lock : Mutex.t;
  (* [v_clock] value at the last store lookup that returned this session —
     the LRU eviction key. Guarded by [v_mutex]. *)
  mutable s_last_used : int;
}

type stats = {
  st_requests : int;
  st_errors : int;
  st_computed : int;
  st_coalesced : int;
  st_snapshots : int;
  st_dedup_hits : int;
  st_evictions : int;
  st_shutdowns_run : int;
}

type t = {
  v_mutex : Mutex.t;  (* guards store, inflight map, counters, conns *)
  v_store : (string, session) Hashtbl.t;
  v_inflight : (string * string, inflight) Hashtbl.t;
  v_pool : Par.Pool.t option;
  v_domains : int;
  v_auto : bool;
  v_max_snapshots : int option;  (* LRU store capacity; None = unbounded *)
  v_compress : Fquery.compress_mode;  (* forwarding engines' quotient mode *)
  mutable v_requests : int;
  mutable v_errors : int;
  mutable v_computed : int;
  mutable v_coalesced : int;
  mutable v_dedup_hits : int;
  mutable v_evictions : int;
  mutable v_clock : int;  (* monotonic lookup counter driving LRU order *)
  mutable v_shutdowns_run : int;
  v_stopping : bool Atomic.t;
  v_finalized : bool Atomic.t;  (* the pool-shutdown once-guard *)
  mutable v_wake : Unix.file_descr option;  (* self-pipe write end *)
  mutable v_conns : (Unix.file_descr * Thread.t) list;
}

let test_delay = ref 0.

let create ?domains ?(auto = true) ?max_snapshots ?(compress = `Auto) () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Par.default_domains ()
  in
  let pool = if domains > 1 then Some (Par.Pool.create ~domains ()) else None in
  { v_mutex = Mutex.create (); v_store = Hashtbl.create 8;
    v_inflight = Hashtbl.create 8; v_pool = pool; v_domains = domains;
    v_auto = auto; v_max_snapshots = Option.map (max 1) max_snapshots;
    v_compress = compress; v_requests = 0; v_errors = 0; v_computed = 0;
    v_coalesced = 0; v_dedup_hits = 0; v_evictions = 0; v_clock = 0;
    v_shutdowns_run = 0;
    v_stopping = Atomic.make false; v_finalized = Atomic.make false;
    v_wake = None; v_conns = [] }

let stats t =
  Mutex.lock t.v_mutex;
  let s =
    { st_requests = t.v_requests; st_errors = t.v_errors;
      st_computed = t.v_computed; st_coalesced = t.v_coalesced;
      st_snapshots = Hashtbl.length t.v_store;
      st_dedup_hits = t.v_dedup_hits; st_evictions = t.v_evictions;
      st_shutdowns_run = t.v_shutdowns_run }
  in
  Mutex.unlock t.v_mutex;
  s

(* Stamp a session as just-used. Caller must hold [v_mutex]. *)
let touch t s =
  t.v_clock <- t.v_clock + 1;
  s.s_last_used <- t.v_clock

(* --- snapshot store ----------------------------------------------------- *)

(* Same digest as [Batfish.fingerprint]: (name, text-MD5) pairs in file
   order. Computable from the raw texts, so a client re-loading configs
   the store already holds is answered without parsing anything. *)
let files_fingerprint files =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, text) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf (Digest.to_hex (Digest.string text));
      Buffer.add_char buf '\000')
    files;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let session_options t =
  { Dataplane.default_options with
    Dataplane.domains = t.v_domains;
    Dataplane.pool = t.v_pool }

(* Size the per-worker graph MRU to the live-snapshot count (+1 slack for
   an update in flight): a capacity below the number of snapshots in
   active rotation makes every fan-out re-import a graph some other query
   just evicted — the stuck-at-9%-hit-rate failure. Never shrinks below
   the default. *)
let resize_worker_cache t =
  Fpar.set_worker_cache_capacity (max 4 (Hashtbl.length t.v_store + 1))

(* Drop least-recently-used snapshots until the store fits the configured
   capacity. Caller must hold [v_mutex]. Sessions still referenced by an
   in-flight request keep working (only the store entry goes away); a
   client re-loading an evicted snapshot simply pays the parse again. *)
let evict_over_capacity t =
  match t.v_max_snapshots with
  | None -> ()
  | Some cap ->
    while Hashtbl.length t.v_store > cap do
      let victim =
        Hashtbl.fold
          (fun fp s acc ->
            match acc with
            | Some (_, best) when best.s_last_used <= s.s_last_used -> acc
            | Some _ | None -> Some (fp, s))
          t.v_store None
      in
      match victim with
      | None -> assert false (* store length > cap >= 1: non-empty *)
      | Some (fp, _) ->
        Hashtbl.remove t.v_store fp;
        t.v_evictions <- t.v_evictions + 1
    done

(* Register a session under [fp]; an existing entry wins (two clients
   racing identical loads keep one session). Caller must not hold
   [v_mutex]. Returns (session, freshly_registered). *)
let register t fp bf =
  Mutex.lock t.v_mutex;
  match Hashtbl.find_opt t.v_store fp with
  | Some s ->
    t.v_dedup_hits <- t.v_dedup_hits + 1;
    touch t s;
    Mutex.unlock t.v_mutex;
    (s, false)
  | None ->
    let s = { s_bf = bf; s_lock = Mutex.create (); s_last_used = 0 } in
    Hashtbl.replace t.v_store fp s;
    touch t s;
    evict_over_capacity t;
    resize_worker_cache t;
    Mutex.unlock t.v_mutex;
    (s, true)

let find_session t fp =
  Mutex.lock t.v_mutex;
  let r =
    match fp with
    | Some fp -> Hashtbl.find_opt t.v_store fp
    | None -> (
      (* snapshot is optional exactly when the store is unambiguous *)
      match Hashtbl.fold (fun _ s acc -> s :: acc) t.v_store [] with
      | [ s ] -> Some s
      | _ -> None)
  in
  Option.iter (touch t) r;
  Mutex.unlock t.v_mutex;
  r

let load_session ?(warm = true) t ?(diags = []) files =
  let fp = files_fingerprint files in
  let existing =
    Mutex.lock t.v_mutex;
    let s = Hashtbl.find_opt t.v_store fp in
    (match s with
    | Some s ->
      t.v_dedup_hits <- t.v_dedup_hits + 1;
      touch t s
    | None -> ());
    Mutex.unlock t.v_mutex;
    s
  in
  match existing with
  | Some s -> (fp, s, false, 0)
  | None ->
    let snap = Batfish.Snapshot.of_texts ~diags files in
    let bf =
      Batfish.init ~options:(session_options t) ~auto_domains:t.v_auto
        ~compress:t.v_compress snap
    in
    let s, fresh = register t fp bf in
    let warmed =
      if fresh && warm then begin
        Mutex.lock s.s_lock;
        let w = try Batfish.prewarm s.s_bf with _ -> 0 in
        Mutex.unlock s.s_lock;
        w
      end
      else 0
    in
    (fp, s, fresh, warmed)

let load_files ?warm t files =
  let fp, _, _, _ = load_session ?warm t files in
  fp

(* --- in-flight coalescing ----------------------------------------------- *)

(* Run [compute] for (snapshot [fp], canonical query [key]), or join the
   identical computation already in flight. Returns the result fragment
   plus whether this request coalesced. The owner always reaches the
   Done/Failed broadcast (exceptions included), so followers never hang. *)
let run_coalesced t ~fp ~key compute =
  Mutex.lock t.v_mutex;
  match Hashtbl.find_opt t.v_inflight (fp, key) with
  | Some infl ->
    t.v_coalesced <- t.v_coalesced + 1;
    Mutex.unlock t.v_mutex;
    Mutex.lock infl.i_mutex;
    while infl.i_state = Running do
      Condition.wait infl.i_cv infl.i_mutex
    done;
    let st = infl.i_state in
    Mutex.unlock infl.i_mutex;
    (match st with
    | Done s -> (Ok s, true)
    | Failed e -> (Error e, true)
    | Running -> assert false)
  | None ->
    let infl =
      { i_mutex = Mutex.create (); i_cv = Condition.create ();
        i_state = Running }
    in
    Hashtbl.replace t.v_inflight (fp, key) infl;
    t.v_computed <- t.v_computed + 1;
    Mutex.unlock t.v_mutex;
    let result =
      match
        if !test_delay > 0. then Thread.delay !test_delay;
        compute ()
      with
      | v -> Ok v
      | exception exn -> Error (Printexc.to_string exn)
    in
    Mutex.lock t.v_mutex;
    Hashtbl.remove t.v_inflight (fp, key);
    Mutex.unlock t.v_mutex;
    Mutex.lock infl.i_mutex;
    infl.i_state <-
      (match result with Ok s -> Done s | Error e -> Failed e);
    Condition.broadcast infl.i_cv;
    Mutex.unlock infl.i_mutex;
    (result, false)

(* --- request handling --------------------------------------------------- *)

let str s = Sjson.Str s
let answer_json (a : Questions.answer) =
  Sjson.Obj
    [ ("title", str a.Questions.a_title);
      ("header", Sjson.Arr (List.map str a.Questions.a_header));
      ("rows",
       Sjson.Arr
         (List.map (fun row -> Sjson.Arr (List.map str row)) a.Questions.a_rows)) ]

let answers_fragment ?plan answers =
  let fields =
    [ ("answers", Sjson.Arr (List.map answer_json answers)) ]
    @ match plan with None -> [] | Some p -> [ ("plan", str p) ]
  in
  Sjson.to_string (Sjson.Obj fields)

(* The admission decision a symbolic query will face, as reported to the
   client: the very plan [Fpar] uses, fed the session pool, the adaptive
   cutoff and the snapshot's residency fingerprint. *)
let plan_string t q ~workload ~tasks =
  let g = Fquery.graph q in
  let cost = List.length (Fquery.default_starts q) * Fgraph.n_edges g in
  match
    Fpar.plan ?pool:t.v_pool ~domains:t.v_domains ~auto:t.v_auto ~workload
      ?fp:(Fquery.cached_fingerprint q) ~tasks ~cost ()
  with
  | Fpar.Serial -> "serial"
  | Fpar.Parallel n -> Printf.sprintf "parallel(%d)" n

let param params name = Option.bind params (Sjson.member name)
let param_string params name = Option.bind (param params name) Sjson.get_string

let parse_start s =
  match String.index_opt s '/' with
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> (s, None)

(* Canonical query key + thunk for one question. The key must be a pure
   function of the question's semantics (same question text + params ⇒
   same key) — it is the coalescing identity within a snapshot. *)
let question_of_params s params =
  let bf = s.s_bf in
  match param_string params "question" with
  | None -> Error "missing params.question"
  | Some "multipath" ->
    Ok ("multipath", fun t ->
        let plan =
          plan_string t (Batfish.forwarding bf) ~workload:Fpar.Sharded_pass
            ~tasks:2
        in
        answers_fragment ~plan [ Batfish.answer_multipath_consistency bf ])
  | Some "all_pairs" ->
    Ok ("all_pairs", fun t ->
        let q = Batfish.forwarding bf in
        let plan =
          plan_string t q ~workload:Fpar.Uniform
            ~tasks:(List.length (Fquery.default_starts q))
        in
        answers_fragment ~plan [ Batfish.answer_all_pairs bf ])
  | Some "reachability" -> (
    match (param_string params "src", param_string params "dst_prefix") with
    | None, _ -> Error "reachability needs params.src (NODE or NODE/IFACE)"
    | _, None -> Error "reachability needs params.dst_prefix"
    | Some src, Some dst -> (
      match Prefix.of_string_opt dst with
      | None -> Error (Printf.sprintf "bad dst_prefix '%s'" dst)
      | Some dst_ip ->
        Ok
          ( Printf.sprintf "reachability src=%s dst=%s" src dst,
            fun _ ->
              answers_fragment
                [ Batfish.answer_reachability bf ~src:(parse_start src)
                    ~dst_ip () ] )))
  | Some "routes" ->
    let node = param_string params "node" in
    let protocol = param_string params "protocol" in
    Ok
      ( Printf.sprintf "routes node=%s proto=%s"
          (Option.value ~default:"*" node)
          (Option.value ~default:"*" protocol),
        fun _ -> answers_fragment [ Batfish.answer_routes ?node ?protocol bf ] )
  | Some "lint" -> Ok ("lint", fun _ -> answers_fragment [ Batfish.answer_lint bf ])
  | Some "coverage" ->
    Ok ("coverage", fun _ -> answers_fragment [ Batfish.answer_coverage bf ])
  | Some "loops" -> Ok ("loops", fun _ -> answers_fragment [ Batfish.answer_loops bf ])
  | Some "diagnostics" ->
    Ok ("diagnostics", fun _ -> answers_fragment [ Batfish.answer_diagnostics bf ])
  | Some "check" -> Ok ("check", fun _ -> answers_fragment (Batfish.check_all bf))
  | Some q -> Error (Printf.sprintf "unknown question '%s'" q)

let files_of_params params =
  match param params "files" with
  | Some files_json -> (
    match Sjson.get_obj files_json with
    | None -> Error "params.files must be an object of name -> config text"
    | Some kvs ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | (name, Sjson.Str text) :: rest -> conv ((name, text) :: acc) rest
        | (name, _) :: _ ->
          Error (Printf.sprintf "params.files.%s must be a string" name)
      in
      Result.map (fun files -> (files, [])) (conv [] kvs))
  | None -> (
    match param_string params "dir" with
    | Some dir -> (
      match Batfish.Snapshot.read_dir dir with
      | files, diags -> Ok (files, diags)
      | exception exn ->
        Error
          (Printf.sprintf "cannot read '%s': %s" dir (Printexc.to_string exn)))
    | None -> Error "load needs params.files or params.dir")

let forward_stop = ref (fun (_ : t) -> ())

(* Dispatch one parsed request; returns the response fields after "ok". *)
let dispatch t req =
  let params = Sjson.member "params" req in
  match Option.bind (Sjson.member "method" req) Sjson.get_string with
  | None -> Error "missing method"
  | Some "ping" -> Ok ("\"pong\"", None)
  | Some "load" -> (
    match files_of_params params with
    | Error e -> Error e
    | Ok (files, diags) ->
      let warm =
        Option.value ~default:true
          (Option.bind (param params "warm") Sjson.get_bool)
      in
      let fp, s, fresh, warmed = load_session ~warm t ~diags files in
      let nodes =
        List.length (Batfish.Snapshot.node_names (Batfish.snapshot s.s_bf))
      in
      Ok
        ( Sjson.to_string
            (Sjson.Obj
               [ ("fingerprint", str fp); ("files", Sjson.Int (List.length files));
                 ("nodes", Sjson.Int nodes); ("reused", Sjson.Bool (not fresh));
                 ("warmed", Sjson.Int warmed) ]),
          None ))
  | Some "query" -> (
    match find_session t (param_string params "snapshot") with
    | None -> Error "unknown snapshot (load first, or pass params.snapshot)"
    | Some s -> (
      match question_of_params s params with
      | Error e -> Error e
      | Ok (key, compute) -> (
        let fp = Batfish.fingerprint s.s_bf in
        let result, coalesced =
          run_coalesced t ~fp ~key (fun () ->
              Mutex.lock s.s_lock;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock s.s_lock)
                (fun () -> compute t))
        in
        match result with
        | Error e -> Error e
        | Ok fragment ->
          Ok
            ( fragment,
              Some
                (Sjson.to_string
                   (Sjson.Obj [ ("coalesced", Sjson.Bool coalesced) ])) ))))
  | Some "update" -> (
    match find_session t (param_string params "snapshot") with
    | None -> Error "unknown snapshot (load first, or pass params.snapshot)"
    | Some s -> (
      match files_of_params params with
      | Error e -> Error e
      | Ok (files, diags) ->
        let removed =
          match Option.bind (param params "removed") Sjson.get_arr with
          | Some xs -> List.filter_map Sjson.get_string xs
          | None -> []
        in
        Mutex.lock s.s_lock;
        let outcome =
          match Batfish.update ~removed ~diags ~files s.s_bf with
          | v -> Ok v
          | exception exn -> Error (Printexc.to_string exn)
        in
        Mutex.unlock s.s_lock;
        (match outcome with
        | Error e -> Error e
        | Ok (bf', report) ->
          let fp' = Batfish.fingerprint bf' in
          ignore (register t fp' bf');
          Ok
            ( Sjson.to_string
                (Sjson.Obj
                   [ ("fingerprint", str fp');
                     ("files_changed", Sjson.Int report.Batfish.up_files_changed);
                     ("files_reparsed", Sjson.Int report.Batfish.up_files_reparsed);
                     ("nodes_changed",
                      Sjson.Arr (List.map str report.Batfish.up_nodes_changed));
                     ("nodes_simulated", Sjson.Int report.Batfish.up_nodes_simulated);
                     ("nodes_reused", Sjson.Int report.Batfish.up_nodes_reused);
                     ("forwarding_rebuilt",
                      Sjson.Bool report.Batfish.up_forwarding_rebuilt);
                     ("memo_invalidated", Sjson.Int report.Batfish.up_memo_invalidated) ]),
              None ))))
  | Some "unload" -> (
    match param_string params "snapshot" with
    | None -> Error "unload needs params.snapshot"
    | Some fp ->
      Mutex.lock t.v_mutex;
      let known = Hashtbl.mem t.v_store fp in
      if known then begin
        Hashtbl.remove t.v_store fp;
        resize_worker_cache t
      end;
      Mutex.unlock t.v_mutex;
      if known then Ok ("\"unloaded\"", None)
      else Error (Printf.sprintf "unknown snapshot '%s'" fp))
  | Some "stats" ->
    let s = stats t in
    let pool_fields =
      match t.v_pool with
      | Some p when not (Par.Pool.closed p) ->
        [ ("pool_workers", Sjson.Int (Par.Pool.size p));
          ("pool_jobs", Sjson.Int (Par.Pool.jobs_run p)) ]
      | _ -> [ ("pool_workers", Sjson.Int 0); ("pool_jobs", Sjson.Int 0) ]
    in
    Ok
      ( Sjson.to_string
          (Sjson.Obj
             ([ ("requests", Sjson.Int s.st_requests);
                ("errors", Sjson.Int s.st_errors);
                ("computed", Sjson.Int s.st_computed);
                ("coalesced", Sjson.Int s.st_coalesced);
                ("snapshots", Sjson.Int s.st_snapshots);
                ("dedup_hits", Sjson.Int s.st_dedup_hits);
                ("evictions", Sjson.Int s.st_evictions);
                ("max_snapshots",
                 Sjson.Int (Option.value ~default:0 t.v_max_snapshots));
                ("worker_cache_capacity", Sjson.Int (Fpar.worker_cache_capacity ())) ]
             @ pool_fields)),
        None )
  | Some "shutdown" ->
    !forward_stop t;
    Ok ("\"stopping\"", None)
  | Some m -> Error (Printf.sprintf "unknown method '%s'" m)

(* Assemble one response line. The result fragment is spliced in verbatim
   (it is already JSON), so coalesced followers share the rendered result
   without re-encoding — only the envelope differs per request. *)
let respond ?id ?meta ~ok body =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (if ok then "{\"ok\":true" else "{\"ok\":false");
  (match id with
  | Some id ->
    Buffer.add_string buf ",\"id\":";
    Buffer.add_string buf (Sjson.to_string id)
  | None -> ());
  Buffer.add_string buf (if ok then ",\"result\":" else ",\"error\":");
  Buffer.add_string buf body;
  (match meta with
  | Some m ->
    Buffer.add_string buf ",\"meta\":";
    Buffer.add_string buf m
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let count_request ?(error = false) t =
  Mutex.lock t.v_mutex;
  t.v_requests <- t.v_requests + 1;
  if error then t.v_errors <- t.v_errors + 1;
  Mutex.unlock t.v_mutex

let error_response ?id t msg =
  count_request ~error:true t;
  respond ?id ~ok:false (Sjson.to_string (Sjson.Str msg))

let handle_line t line =
  match Sjson.parse line with
  | Error msg -> error_response t msg
  | Ok req -> (
    let id = Sjson.member "id" req in
    match (try dispatch t req with exn -> Error (Printexc.to_string exn)) with
    | Error msg -> error_response ?id t msg
    | Ok (body, meta) ->
      count_request t;
      respond ?id ?meta ~ok:true body)

(* --- sockets and lifecycle ---------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.v_stopping true) then
    (* wake the accept loop; a full pipe just means it is already awake *)
    match t.v_wake with
    | Some w -> (
      match Unix.write w (Bytes.make 1 '!') 0 1 with
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    | None -> ()

let () = forward_stop := stop

(* Shut the shared pool down exactly once, whichever path gets here first
   (signal-driven stop, protocol shutdown, explicit serve return). The
   process [at_exit] sweep would also join the pool, but that now being
   idempotent is the backstop, not the plan. *)
let finalize t =
  if not (Atomic.exchange t.v_finalized true) then begin
    (match t.v_pool with
    | Some p -> ( try Par.Pool.shutdown p with _ -> ())
    | None -> ());
    Mutex.lock t.v_mutex;
    t.v_shutdowns_run <- t.v_shutdowns_run + 1;
    Mutex.unlock t.v_mutex
  end

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         let line =
           (* tolerate CRLF clients (nc, telnet) *)
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         if String.trim line <> "" then begin
           let resp = handle_line t line in
           output_string oc resp;
           output_char oc '\n';
           flush oc
         end;
         loop ()
     in
     loop ()
   with _ -> ());
  Mutex.lock t.v_mutex;
  t.v_conns <- List.filter (fun (fd', _) -> fd' != fd) t.v_conns;
  Mutex.unlock t.v_mutex;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?(install_signals = true) ?tcp_port ~socket t =
  (* Self-pipe: [stop] (possibly from a signal handler) writes one byte,
     unblocking the select below no matter when the signal lands. *)
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  t.v_wake <- Some wake_w;
  let saved_signals =
    if install_signals then begin
      let h = Sys.Signal_handle (fun _ -> stop t) in
      [ (Sys.sigint, Sys.signal Sys.sigint h);
        (Sys.sigterm, Sys.signal Sys.sigterm h) ]
    end
    else []
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lsock (Unix.ADDR_UNIX socket);
  Unix.listen lsock 64;
  let tsock =
    Option.map
      (fun port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen s 64;
        s)
      tcp_port
  in
  let listeners = lsock :: Option.to_list tsock in
  let accept_one l =
    match Unix.accept l with
    | fd, _ ->
      Mutex.lock t.v_mutex;
      let th = Thread.create (fun () -> handle_conn t fd) () in
      t.v_conns <- (fd, th) :: t.v_conns;
      Mutex.unlock t.v_mutex
    | exception Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if not (Atomic.get t.v_stopping) then begin
      (match Unix.select (wake_r :: listeners) [] [] (-1.) with
      | ready, _, _ ->
        List.iter
          (fun fd -> if fd != wake_r && List.memq fd ready then accept_one fd)
          listeners
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  List.iter (fun l -> try Unix.close l with Unix.Unix_error _ -> ()) listeners;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (* Drain: stop feeding the readers (in-flight responses still flush —
     only the receive side is shut), then join every connection thread,
     so a request racing the signal still gets its complete answer. *)
  Mutex.lock t.v_mutex;
  let conns = t.v_conns in
  Mutex.unlock t.v_mutex;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  t.v_wake <- None;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  List.iter (fun (s, old) -> Sys.set_signal s old) saved_signals;
  finalize t
