type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* UTF-8 encode the code point; surrogate pairs are not
               recombined (the protocol never emits them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number '%s'" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (kv :: acc)
          | Some '}' -> advance (); List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ---------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_obj = function Obj kvs -> Some kvs | _ -> None
let get_arr = function Arr xs -> Some xs | _ -> None
