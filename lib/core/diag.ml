(* Structured pipeline diagnostics. The paper's operational lesson is to
   "parse as much as possible" and degrade gracefully on everything else;
   this module is how every stage reports what it skipped, quarantined, or
   gave up on, instead of raising at the operator. *)

type severity = Info | Warn | Error | Fatal

type phase = Parse | Convert | Dataplane | Forwarding | Question | Lint

type location = {
  loc_node : string option;
  loc_file : string option;
  loc_line : int option;
}

type t = {
  d_severity : severity;
  d_phase : phase;
  d_code : string;
  d_loc : location;
  d_message : string;
}

let no_location = { loc_node = None; loc_file = None; loc_line = None }

let make ?node ?file ?line ~severity ~phase ~code message =
  { d_severity = severity; d_phase = phase; d_code = code;
    d_loc = { loc_node = node; loc_file = file; loc_line = line };
    d_message = message }

let info ?node ?file ?line ~phase ~code msg =
  make ?node ?file ?line ~severity:Info ~phase ~code msg

let warn ?node ?file ?line ~phase ~code msg =
  make ?node ?file ?line ~severity:Warn ~phase ~code msg

let error ?node ?file ?line ~phase ~code msg =
  make ?node ?file ?line ~severity:Error ~phase ~code msg

let fatal ?node ?file ?line ~phase ~code msg =
  make ?node ?file ?line ~severity:Fatal ~phase ~code msg

(* --- stable error codes --- *)

let code_parse_crash = "PARSE_CRASH"
let code_parse_warning = "PARSE_WARNING"
let code_unreadable_file = "FILE_UNREADABLE"
let code_skipped_file = "FILE_SKIPPED"
let code_duplicate_hostname = "DUPLICATE_HOSTNAME"
let code_node_quarantined = "NODE_QUARANTINED"
let code_topology_failed = "TOPOLOGY_FAILED"
let code_ospf_failed = "OSPF_FAILED"
let code_bgp_fuel_exhausted = "BGP_FUEL_EXHAUSTED"
let code_outer_fuel_exhausted = "OUTER_FUEL_EXHAUSTED"
let code_oscillation = "BGP_OSCILLATION"
let code_fib_failed = "FIB_FAILED"
let code_forwarding_failed = "FORWARDING_FAILED"
let code_unknown_node = "UNKNOWN_NODE"
let code_unknown_protocol = "UNKNOWN_PROTOCOL"
let code_scenario_inconclusive = "FAILURE_SCENARIO_INCONCLUSIVE"
let code_pruning_disabled = "FAILURE_PRUNING_DISABLED"

(* Parse-warning codes (the old [Warning.kind] constructors). *)
let code_unrecognized_syntax = "PARSE_UNRECOGNIZED_SYNTAX"
let code_bad_value = "PARSE_BAD_VALUE"
let code_unsupported_feature = "PARSE_UNSUPPORTED_FEATURE"
let code_undefined_reference = "PARSE_UNDEFINED_REFERENCE"

(* Unrecognized or unsupported input degrades gracefully (Warn); a value the
   parser understood but could not accept, or a dangling reference, is an
   operator error (Error). *)
let parse_warn ?node ?file ~line ~code msg =
  let severity =
    if code = code_bad_value || code = code_undefined_reference then Error
    else Warn
  in
  make ?node ?file ~line ~severity ~phase:Parse ~code msg

(* --- rendering --- *)

let severity_to_string = function
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"
  | Fatal -> "FATAL"

let phase_to_string = function
  | Parse -> "parse"
  | Convert -> "convert"
  | Dataplane -> "dataplane"
  | Forwarding -> "forwarding"
  | Question -> "question"
  | Lint -> "lint"

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2 | Fatal -> 3

let severity_of_string s =
  match String.lowercase_ascii s with
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "fatal" -> Some Fatal
  | _ -> None

let at_least threshold d = severity_rank d.d_severity >= severity_rank threshold

let max_severity diags =
  List.fold_left
    (fun acc d -> if severity_rank d.d_severity > severity_rank acc then d.d_severity else acc)
    Info diags

(* Rendered consistently as [node] [file:line]: the file/line pair always
   joins with ":" so every surface (text reports, lint output, coverage)
   shows the same clickable "file:line" form. A line without a file renders
   as "line N" to avoid masquerading as a filename. *)
let location_to_string loc =
  let fl =
    match (loc.loc_file, loc.loc_line) with
    | Some f, Some l -> Some (Printf.sprintf "%s:%d" f l)
    | Some f, None -> Some f
    | None, Some l -> Some (Printf.sprintf "line %d" l)
    | None, None -> None
  in
  match (loc.loc_node, fl) with
  | None, None -> "-"
  | Some n, None -> n
  | None, Some fl -> fl
  | Some n, Some fl -> n ^ " " ^ fl

let set_file d file = { d with d_loc = { d.d_loc with loc_file = Some file } }

(* Deterministic report order: by location, then code, then message. *)
let compare_for_report a b =
  let key d =
    ( Option.value d.d_loc.loc_node ~default:"",
      Option.value d.d_loc.loc_file ~default:"",
      Option.value d.d_loc.loc_line ~default:0,
      d.d_code, d.d_message, severity_rank d.d_severity )
  in
  compare (key a) (key b)

let to_string d =
  Printf.sprintf "[%s] %s %s %s: %s"
    (severity_to_string d.d_severity) (phase_to_string d.d_phase) d.d_code
    (location_to_string d.d_loc) d.d_message

(* A diagnostic is well-formed when its code is a stable SCREAMING_SNAKE
   identifier and it carries a human-readable message. The chaos harness
   asserts this for every diag the pipeline emits. *)
let well_formed d =
  let code_ok =
    String.length d.d_code > 0
    && String.for_all
         (fun c -> (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
         d.d_code
  in
  let line_ok = match d.d_loc.loc_line with Some l -> l >= 0 | None -> true in
  code_ok && line_ok && String.length d.d_message > 0

(* --- collectors --- *)

type collector = { mutable items : t list (* newest first *) }

let collector () = { items = [] }
let add c d = c.items <- d :: c.items
let add_all c ds = List.iter (add c) ds
let to_list c = List.rev c.items

(* Wrap one unit of work: any escaping exception becomes a diagnostic
   instead of aborting the pipeline. *)
let isolate ?node ?file ~phase ~code c f =
  try Some (f ())
  with exn ->
    add c (fatal ?node ?file ~phase ~code (Printexc.to_string exn));
    None
