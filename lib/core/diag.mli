(** Structured pipeline diagnostics.

    Every stage of the pipeline — parsing, VI conversion, data-plane
    simulation, forwarding analysis, questions, the lint passes — reports
    skipped input, quarantined nodes, exhausted budgets, and findings as
    diagnostics instead of raising. Parsers emit this type directly; lint
    findings carry [LINT0xx] codes (see {!Lint}). *)

type severity = Info | Warn | Error | Fatal

(** The pipeline stage that emitted the diagnostic. *)
type phase = Parse | Convert | Dataplane | Forwarding | Question | Lint

type location = {
  loc_node : string option;  (** device hostname *)
  loc_file : string option;  (** input file name *)
  loc_line : int option;  (** 1-based line in [loc_file] *)
}

type t = {
  d_severity : severity;
  d_phase : phase;
  d_code : string;  (** stable machine-readable code, e.g. ["NODE_QUARANTINED"] *)
  d_loc : location;
  d_message : string;
}

val no_location : location

val make :
  ?node:string -> ?file:string -> ?line:int ->
  severity:severity -> phase:phase -> code:string -> string -> t

val info : ?node:string -> ?file:string -> ?line:int -> phase:phase -> code:string -> string -> t
val warn : ?node:string -> ?file:string -> ?line:int -> phase:phase -> code:string -> string -> t
val error : ?node:string -> ?file:string -> ?line:int -> phase:phase -> code:string -> string -> t
val fatal : ?node:string -> ?file:string -> ?line:int -> phase:phase -> code:string -> string -> t

(** {2 Stable codes used across the pipeline} *)

val code_parse_crash : string
val code_parse_warning : string
val code_unreadable_file : string
val code_skipped_file : string
val code_duplicate_hostname : string
val code_node_quarantined : string
val code_topology_failed : string
val code_ospf_failed : string
val code_bgp_fuel_exhausted : string
val code_outer_fuel_exhausted : string
val code_oscillation : string
val code_fib_failed : string
val code_forwarding_failed : string
val code_unknown_node : string
val code_unknown_protocol : string

(** A fault-injection scenario whose re-simulation exhausted fuel, left new
    quarantined nodes, or raised: quarantined from the sweep and reported
    [inconclusive] instead of aborting it. *)
val code_scenario_inconclusive : string

(** Atom-equivalence pruning of failure scenarios was disabled (graph has
    transformation edges, or the atom partition exceeded its cap). *)
val code_pruning_disabled : string

(** {2 Parse-warning codes} *)

val code_unrecognized_syntax : string
val code_bad_value : string
val code_unsupported_feature : string
val code_undefined_reference : string

(** A parse warning at a source line; severity is derived from the code
    ([code_bad_value] and [code_undefined_reference] are [Error], the rest
    [Warn]). *)
val parse_warn : ?node:string -> ?file:string -> line:int -> code:string -> string -> t

(** {2 Inspection and rendering} *)

val severity_to_string : severity -> string
val phase_to_string : phase -> string

(** Info < Warn < Error < Fatal. *)
val severity_rank : severity -> int

(** Case-insensitive parse of a severity name ("warn"/"warning" both work). *)
val severity_of_string : string -> severity option

(** [at_least threshold d] is true when [d] is as severe as [threshold]. *)
val at_least : severity -> t -> bool

(** The highest severity present ([Info] for an empty list). *)
val max_severity : t list -> severity

val location_to_string : location -> string
val to_string : t -> string

(** Attach (or replace) the source file of a diagnostic — used by the
    snapshot loader, which knows the filename the parser did not. *)
val set_file : t -> string -> t

(** Total deterministic order for reports: location, then code, then
    message. *)
val compare_for_report : t -> t -> int

(** Structural validity: non-empty SCREAMING_SNAKE code, non-empty message,
    non-negative line. The chaos harness asserts this for every emitted
    diagnostic. *)
val well_formed : t -> bool

(** {2 Collectors} *)

type collector

val collector : unit -> collector
val add : collector -> t -> unit
val add_all : collector -> t list -> unit

(** In emission order. *)
val to_list : collector -> t list

(** [isolate ~phase ~code c f] runs [f ()]; an escaping exception is
    recorded in [c] as a [Fatal] diagnostic and [None] is returned. The unit
    of fault isolation for the whole pipeline. *)
val isolate :
  ?node:string -> ?file:string ->
  phase:phase -> code:string -> collector -> (unit -> 'a) -> 'a option
