(** The public entry point: snapshots and the four-stage pipeline.

    {[
      let snapshot = Batfish.Snapshot.of_dir "configs/" in
      let bf = Batfish.init snapshot in
      let dp = Batfish.dataplane bf in            (* stage 2 *)
      let q = Batfish.forwarding bf in            (* stage 3 engine *)
      Questions.print_answer (Batfish.answer_reachability bf ...)
    ]} *)

module Snapshot : sig
  type t

  (** [(filename, config text)] pairs; vendors are auto-detected. A file
      whose parse raises is skipped with a [Fatal] diag; duplicate hostnames
      keep the first definition and emit an [Error] diag. [?diags] prepends
      diagnostics gathered before parsing (used by {!of_dir}). [?base]
      enables fingerprint-keyed parse reuse: a file whose name and content
      digest match one in [base] takes that snapshot's parse result (model
      and diags) without re-parsing — the result is indistinguishable from a
      base-less parse because parsing is deterministic in the text. *)
  val of_texts : ?diags:Diag.t list -> ?base:t -> (string * string) list -> t

  (** Reads every regular file in a directory as a configuration. Dotfiles
      and unreadable files are skipped with a diag instead of raising;
      handling order is deterministic (sorted by name). *)
  val of_dir : string -> t

  (** The raw directory read behind {!of_dir}: [(name, text)] pairs plus the
      skipped/unreadable diagnostics, without parsing anything. *)
  val read_dir : string -> (string * string) list * Diag.t list

  val of_network : Netgen.network -> t
  val configs : t -> Vi.t list

  (** Every successfully parsed file, {e before} duplicate-hostname
      first-wins dedup — the view the duplicate-identity lint needs. *)
  val parsed_files : t -> (string * Vi.t) list

  (** Per-config parse diagnostics (post-dedup configs only). *)
  val parse_warnings : t -> (Vi.t * Diag.t list) list

  (** Parse/convert diagnostics, including every parse warning. *)
  val diags : t -> Diag.t list

  val find : t -> string -> Vi.t option
  val node_names : t -> string list

  (** The input [(filename, text)] pairs, in file order. *)
  val files : t -> (string * string) list

  (** Per-file content fingerprints (MD5 hex), in file order. *)
  val fingerprints : t -> (string * string) list

  (** How many files this construction actually parsed (the rest were
      fingerprint-reused from the base snapshot). *)
  val reparsed : t -> int

  (** Hostnames whose derived vendor-independent model differs between the
      two snapshots, sorted; includes added and removed hosts. Structural
      comparison: cosmetic edits (comments, spacing) report no change. *)
  val changed_nodes : base:t -> t -> string list
end

type t

(** [init snap] opens an analysis session. With [options.domains > 1] the
    session lazily creates one persistent {!Par.Pool} the first time a
    parallel phase runs and reuses it for every later phase (dataplane
    rounds, query fan-out, lint), keeping worker-resident BDD state warm.
    [auto_domains] (default false) enables the adaptive cutoff: symbolic
    queries whose estimated cost is too small to amortize the fan-out run
    serially. [compress] (default [`Auto]) is the quotient-compression mode
    the session's forwarding engine is built with
    ({!Fquery.compress_mode}); answers are bit-identical in every mode. *)
val init :
  ?options:Dataplane.options ->
  ?env:Dp_env.t ->
  ?auto_domains:bool ->
  ?compress:Fquery.compress_mode ->
  Snapshot.t ->
  t

val snapshot : t -> Snapshot.t

(** The session's persistent worker pool, created on first use; [None] when
    the session is single-domain. *)
val session_pool : t -> Par.Pool.t option

(** [(workers, jobs_run)] of the live session pool, if any. *)
val pool_stats : t -> (int * int) option

(** Shut down the session pool (idempotent; safe when no pool exists).
    Sessions derived via {!update} share their base's pool, so shut down
    only when done with the whole lineage. *)
val shutdown : t -> unit

(** Stage 2, computed once and cached. *)
val dataplane : t -> Dataplane.t

(** Stage 3 engine (forwarding graph), computed once and cached.
    @raise Failure if graph construction fails (see {!try_forwarding}). *)
val forwarding : t -> Fquery.t

(** Like {!forwarding} but fault-isolated: a crash during graph construction
    is returned (and recorded) as a [Fatal] forwarding diag. *)
val try_forwarding : t -> (Fquery.t, Diag.t) result

(** Content identity of the session's snapshot: a digest over the per-file
    [(name, md5)] fingerprints in file order. Computable without parsing;
    byte-identical file sets share it. The analysis service keys its
    snapshot store on this to dedup identical configs across clients. *)
val fingerprint : t -> string

(** Import this session's forwarding graph into every resident pool worker
    ({!Fpar.prewarm}), so the first parallel query starts warm. Forces the
    data plane and forwarding graph. Returns the number of workers warmed
    ([0] when single-domain or forwarding cannot be built). *)
val prewarm : t -> int

(** (hits, misses) of the forwarding query memo; [None] until the
    forwarding engine has been built. Never forces computation. *)
val memo_stats : t -> (int * int) option

(** All diagnostics produced so far: snapshot parse/convert diags, data-plane
    diags (once computed), and forwarding diags. Never forces computation. *)
val diags : t -> Diag.t list

(** True when any [Error] or [Fatal] diagnostic was produced (the CLI's
    [--strict] gate). *)
val strict_failure : t -> bool

(** Concrete traceroute through the computed data plane. *)
val traceroute : t -> start:string -> ?ingress:string -> Packet.t -> Traceroute.trace list

(** {2 Question shortcuts} *)

val answer_init_issues : t -> Questions.answer

(** The structured diagnostics table (see {!diags}). *)
val answer_diagnostics : t -> Questions.answer
val answer_undefined_references : t -> Questions.answer
val answer_unused_structures : t -> Questions.answer
val answer_duplicate_ips : t -> Questions.answer
val answer_bgp_compatibility : t -> Questions.answer
val answer_bgp_status : t -> Questions.answer
val answer_property_consistency : t -> Questions.answer
val answer_routes : ?node:string -> ?protocol:string -> t -> Questions.answer
val answer_multipath_consistency : t -> Questions.answer

(** All-pairs reachability, sharded over [options.domains] worker domains
    (identical rows at any domain count). *)
val answer_all_pairs : t -> Questions.answer

val answer_loops : t -> Questions.answer

(** Failure-scenario sweep ({!Failures.run}) over this session: every single
    ([k = 1], the default) or single-and-double ([k = 2]) link/node failure,
    atom-pruned and re-checked warm on the session pool. Sweep diagnostics
    (inconclusive scenarios, disabled pruning) are folded into {!diags}. *)
val failure_report :
  ?k:int -> ?max_properties:int -> ?prune:bool -> t -> Failures.report

(** {!failure_report} rendered as answers: the sweep summary followed by the
    per-property verdict table (minimal failing scenario + counterexample). *)
val answer_failures :
  ?k:int ->
  ?max_properties:int ->
  ?prune:bool ->
  t ->
  Failures.report * Questions.answer list

val answer_reachability :
  t -> src:Fquery.start -> dst_ip:Prefix.t -> ?hdr:Bdd.t -> unit -> Questions.answer

(** {2 Coverage}

    Which config source lines influence the forwarding behavior exercised
    by the query set ({!Coverage}). Uses the session's data plane and
    memoized query engine when they can be built, and degrades to the
    purely static report (never raising) when they cannot. *)

val coverage : t -> Coverage.report

(** Per-file covered/uncovered/dead counts as a printable table. *)
val answer_coverage : t -> Questions.answer

(** {2 Lint}

    The static-analysis registry ({!Lint}) over this snapshot: no data plane
    is computed or required. *)

(** The lint context for this snapshot (pre-dedup files included, so the
    duplicate-identity pass sees shadowed hostnames). *)
val lint_ctx : t -> Lint.ctx

(** Run selected lint passes; [Error msg] on an unknown pass name. *)
val lint :
  ?select:string list -> ?ignore_passes:string list -> t -> (Lint.report, string) result

(** Run every registered pass. *)
val lint_all : t -> Lint.report

(** {!lint_all} as a printable table. *)
val answer_lint : t -> Questions.answer

(** Every configuration-hygiene check at once (the continuous-validation
    bundle of §5.2), lint included. *)
val check_all : t -> Questions.answer list

(** {2 Incremental analysis (CI-style repeated snapshots)}

    Engine counters for one {!update}: how much was re-parsed, which hosts
    changed, and how much of the data plane / forwarding state was reused. *)
type update_report = {
  up_files_changed : int;  (** added + removed + content-changed files *)
  up_files_reparsed : int;
  up_nodes_changed : string list;
  up_components : int;
  up_dirty_components : int;
  up_nodes_simulated : int;
  up_nodes_reused : int;
  up_frontier_size : int;
      (** nodes the route-delta worklist re-simulated inside dirty
          components — where advertisement propagation actually reached *)
  up_nodes_converged_early : int;
      (** re-simulated nodes whose fixed point came back identical to the
          base: the ring where propagation died out *)
  up_forwarding_rebuilt : bool;
  up_memo_invalidated : int;
}

(** [update ~files t] re-analyzes the session after a change: [files] are
    the added/modified [(name, text)] pairs, [?removed] names deleted files.
    Only changed files are re-parsed (content fingerprints), the dirty node
    set is derived from the explicit dependency map (L3 adjacency + BGP
    sessions), the data-plane fixed point re-runs only on the nodes the edit
    actually disturbs (the route-delta worklist; clean nodes and components
    carry their RIBs/FIBs over from the base), and the forwarding graph is
    rebuilt in the warm BDD environment — or kept, memo included, when
    forwarding did not change. The result is bit-identical to a from-scratch
    analysis of the new file set. Forces the base data plane if not yet
    computed; the forwarding engine is only rebuilt if the base had built
    it. *)
val update :
  ?removed:string list ->
  ?diags:Diag.t list ->
  files:(string * string) list ->
  t ->
  t * update_report

(** The report as a printable metric table. *)
val answer_update_report : update_report -> Questions.answer

(** Differential reachability between two snapshots (proactive validation of
    a change, §5.1). Builds both forwarding graphs over one shared variable
    environment. *)
val differential :
  base:t -> candidate:t -> ?srcs:Fquery.start list -> unit -> Questions.answer

(** {2 The §4.3.2 differential engine testing harness} *)

(** Cross-validate the BDD engine against traceroute on this snapshot:
    for every edge interface, check representative packets in both
    directions. Returns the number of flows checked; raises [Failure] with a
    description on any disagreement. *)
val differential_engine_test : ?flows_per_location:int -> t -> int
