module Snapshot = struct
  (* One input file with its content fingerprint and (possibly reused) parse
     outcome. Parsing is deterministic in the file text, so (name, digest)
     fully keys the result: an unchanged file re-uses the base snapshot's
     parsed model without touching the parser (ISSUE 4). *)
  type parsed_file = {
    pf_name : string;
    pf_digest : string;  (* content fingerprint (MD5 hex of the raw text) *)
    pf_result : (Vi.t * Diag.t list, Diag.t) result;
  }

  type t = {
    files : (string * string) list;
    entries : parsed_file list;  (* one per input file, in file order *)
    all_parsed : (string * Vi.t) list;  (* every parsed file, pre-dedup *)
    parsed : (Vi.t * Diag.t list) list;
    by_name : (string, Vi.t) Hashtbl.t;
    diags : Diag.t list;
    reparsed : int;  (* files actually run through the parser *)
  }

  let fingerprint text = Digest.to_hex (Digest.string text)

  (* Per-file isolation: a parser crash on one file (truncated, binary
     garbage) becomes a Fatal diag; the rest of the snapshot still loads. *)
  let parse_one fname text =
    match Parse.parse_config text with
    | cfg, warns -> Ok (cfg, List.map (fun w -> Diag.set_file w fname) warns)
    | exception exn ->
      Error
        (Diag.fatal ~file:fname ~phase:Diag.Parse ~code:Diag.code_parse_crash
           (Printf.sprintf "parser raised: %s" (Printexc.to_string exn)))

  let of_texts ?(diags = []) ?base files =
    let reuse =
      match base with
      | None -> fun _ _ -> None
      | Some b ->
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun pf -> Hashtbl.replace tbl (pf.pf_name, pf.pf_digest) pf.pf_result)
          b.entries;
        fun name digest -> Hashtbl.find_opt tbl (name, digest)
    in
    let reparsed = ref 0 in
    let entries =
      List.map
        (fun (fname, text) ->
          let digest = fingerprint text in
          let result =
            match reuse fname digest with
            | Some r -> r
            | None ->
              incr reparsed;
              parse_one fname text
          in
          { pf_name = fname; pf_digest = digest; pf_result = result })
        files
    in
    (* Replay diagnostics in file order, exactly as a base-less parse would
       produce them (reused results carry their original diags). *)
    let c = Diag.collector () in
    Diag.add_all c diags;
    let parsed =
      List.filter_map
        (fun pf ->
          match pf.pf_result with
          | Ok (cfg, warns) ->
            List.iter (Diag.add c) warns;
            Some (pf.pf_name, (cfg, warns))
          | Error d ->
            Diag.add c d;
            None)
        entries
    in
    let all_parsed = List.map (fun (fname, (cfg, _)) -> (fname, cfg)) parsed in
    (* Duplicate hostnames are deterministic first-wins, with an Error diag
       for every shadowed config. *)
    let by_name = Hashtbl.create 64 in
    let parsed =
      List.filter_map
        (fun (fname, ((cfg : Vi.t), warns)) ->
          if Hashtbl.mem by_name cfg.hostname then begin
            Diag.add c
              (Diag.error ~node:cfg.hostname ~file:fname ~phase:Diag.Convert
                 ~code:Diag.code_duplicate_hostname
                 (Printf.sprintf
                    "hostname '%s' defined by more than one file; keeping the first"
                    cfg.hostname));
            None
          end
          else begin
            Hashtbl.add by_name cfg.hostname cfg;
            Some (cfg, warns)
          end)
        parsed
    in
    { files; entries; all_parsed; parsed; by_name; diags = Diag.to_list c;
      reparsed = !reparsed }

  (* Read every regular file of a directory; returns the texts plus the
     diagnostics of everything skipped or unreadable. *)
  let read_dir dir =
    let c = Diag.collector () in
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    let files =
      Array.to_list entries
      |> List.filter_map (fun name ->
             let path = Filename.concat dir name in
             if String.length name > 0 && name.[0] = '.' then begin
               Diag.add c
                 (Diag.info ~file:name ~phase:Diag.Parse ~code:Diag.code_skipped_file
                    "skipped dotfile");
               None
             end
             else
               match
                 if Sys.is_directory path then None
                 else begin
                   let ic = open_in_bin path in
                   let len = in_channel_length ic in
                   let text = really_input_string ic len in
                   close_in ic;
                   Some (name, text)
                 end
               with
               | v -> v
               | exception exn ->
                 Diag.add c
                   (Diag.error ~file:name ~phase:Diag.Parse
                      ~code:Diag.code_unreadable_file
                      (Printf.sprintf "unreadable file: %s" (Printexc.to_string exn)));
                 None)
    in
    (files, Diag.to_list c)

  let of_dir dir =
    let files, diags = read_dir dir in
    of_texts ~diags files

  let of_network (n : Netgen.network) = of_texts n.n_configs
  let configs t = List.map fst t.parsed
  let parsed_files t = t.all_parsed
  let parse_warnings t = t.parsed
  let diags t = t.diags
  let find t name = Hashtbl.find_opt t.by_name name
  let node_names t = List.map (fun (c : Vi.t) -> c.Vi.hostname) (configs t)
  let files t = t.files
  let fingerprints t = List.map (fun pf -> (pf.pf_name, pf.pf_digest)) t.entries
  let reparsed t = t.reparsed

  (* Hostnames whose vendor-independent model differs between [base] and [t]
     (added or removed hostnames included). The comparison is structural on
     the derived [Vi.t] with source-line provenance stripped — a cosmetic
     edit (comments, whitespace, line shifts) that parses to the same
     semantic model reports no change — with a physical-equality fast path
     for fingerprint-reused parses. *)
  let changed_nodes ~base t =
    let changed = ref [] in
    Hashtbl.iter
      (fun name cfg ->
        match Hashtbl.find_opt base.by_name name with
        | Some bcfg
          when bcfg == cfg
               || Vi.strip_provenance bcfg = Vi.strip_provenance cfg -> ()
        | Some _ | None -> changed := name :: !changed)
      t.by_name;
    Hashtbl.iter
      (fun name _ ->
        if not (Hashtbl.mem t.by_name name) then changed := name :: !changed)
      base.by_name;
    List.sort_uniq compare !changed
end

type t = {
  snap : Snapshot.t;
  env : Dp_env.t;
  options : Dataplane.options;
  auto_domains : bool;
  compress : Fquery.compress_mode;
  mutable pool : Par.Pool.t option;
  mutable dp : Dataplane.t option;
  mutable fq : Fquery.t option;
  mutable extra_diags : Diag.t list;  (* newest first *)
}

let init ?(options = Dataplane.default_options) ?(env = Dp_env.empty)
    ?(auto_domains = false) ?(compress = `Auto) snap =
  { snap; env; options; auto_domains; compress;
    pool = options.Dataplane.pool; dp = None; fq = None; extra_diags = [] }

let snapshot t = t.snap

(* One persistent worker pool per session, created lazily the first time a
   parallel phase runs and reused by every later one (dataplane rounds,
   query fan-out, lint), so worker-resident BDD state stays warm across the
   whole session. Sessions derived by [update] share their base's pool. *)
let session_pool t =
  match t.pool with
  | Some p when not (Par.Pool.closed p) -> Some p
  | _ ->
    if t.options.Dataplane.domains > 1 then begin
      let p = Par.Pool.create ~domains:t.options.Dataplane.domains () in
      t.pool <- Some p;
      Some p
    end
    else None

let shutdown t =
  match t.pool with
  | Some p -> Par.Pool.shutdown p
  | None -> ()

let pool_stats t =
  match t.pool with
  | Some p when not (Par.Pool.closed p) ->
    Some (Par.Pool.size p, Par.Pool.jobs_run p)
  | _ -> None

let effective_options t =
  { t.options with Dataplane.pool = session_pool t }

let dataplane t =
  match t.dp with
  | Some dp -> dp
  | None ->
    let dp =
      Dataplane.compute ~options:(effective_options t) ~env:t.env
        (Snapshot.configs t.snap)
    in
    t.dp <- Some dp;
    dp

let try_forwarding t =
  match t.fq with
  | Some fq -> Ok fq
  | None -> (
    match
      Fquery.make_checked ~compress_mode:t.compress
        ~configs:(Snapshot.find t.snap) ~dp:(dataplane t) ()
    with
    | Ok fq ->
      t.fq <- Some fq;
      Ok fq
    | Error d ->
      t.extra_diags <- d :: t.extra_diags;
      Error d)

let forwarding t =
  match try_forwarding t with
  | Ok fq -> fq
  | Error d -> failwith (Diag.to_string d)

(* Snapshot identity without parsing: the digest of the per-file content
   fingerprints in file order. Two sessions loaded from byte-identical file
   sets share it, which is what lets a long-lived service dedup snapshots
   across clients before doing any work. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, md5) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf md5;
      Buffer.add_char buf '\000')
    (Snapshot.fingerprints t.snap);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Ship this session's forwarding graph to every resident pool worker now,
   so the first parallel query pays no per-worker import inside its own
   latency (the cold-path inversion). Forces the data plane and forwarding
   graph; returns workers warmed (0 when single-domain or when forwarding
   cannot be built). *)
let prewarm t =
  match try_forwarding t with
  | Error _ -> 0
  | Ok fq -> Fpar.prewarm ?pool:(session_pool t) fq

(* (hits, misses) of the forwarding query memo, without forcing anything:
   [None] until the forwarding engine has been built. *)
let memo_stats t = Option.map Fquery.memo_stats t.fq

(* Every diagnostic the pipeline has produced so far. The data plane's are
   included only once it has been computed; nothing here forces it. *)
let diags t =
  Snapshot.diags t.snap
  @ (match t.dp with
    | Some dp -> dp.Dataplane.diags
    | None -> [])
  @ List.rev t.extra_diags

let strict_failure t =
  Diag.severity_rank (Diag.max_severity (diags t)) >= Diag.severity_rank Diag.Error

let traceroute t ~start ?ingress pkt =
  Traceroute.run ~configs:(Snapshot.find t.snap) ~dp:(dataplane t) ~start ?ingress pkt

let answer_init_issues t = Questions.init_issues (Snapshot.parse_warnings t.snap)
let answer_diagnostics t = Questions.diagnostics (diags t)
let answer_undefined_references t = Questions.undefined_references (Snapshot.configs t.snap)
let answer_unused_structures t = Questions.unused_structures (Snapshot.configs t.snap)
let answer_duplicate_ips t = Questions.duplicate_ips (Snapshot.configs t.snap)
let answer_bgp_compatibility t = Questions.bgp_session_compatibility (Snapshot.configs t.snap)
let answer_bgp_status t = Questions.bgp_session_status (dataplane t)
let answer_property_consistency t = Questions.property_consistency (Snapshot.configs t.snap)
let answer_routes ?node ?protocol t = Questions.routes ?node ?protocol (dataplane t)

(* Symbolic queries inherit the session's [options.domains]: the same knob
   that parallelizes route exchange shards the verification engine. They run
   on the session pool (warm worker-resident graphs) and honor [auto_domains]
   (adaptive serial fallback for small queries). *)
let answer_multipath_consistency t =
  Questions.multipath_consistency ?pool:(session_pool t)
    ~domains:t.options.Dataplane.domains ~auto:t.auto_domains (forwarding t)

let answer_all_pairs t =
  Questions.all_pairs_reachability ?pool:(session_pool t)
    ~domains:t.options.Dataplane.domains ~auto:t.auto_domains (forwarding t)

let answer_loops t = Questions.detect_loops (forwarding t)

(* Failure-scenario sweep (ISSUE 6). The report's sweep diags (inconclusive
   scenarios, disabled pruning) are folded into the session's diagnostics so
   [diags]/[strict_failure] and the CLI see them. *)
let failure_report ?(k = 1) ?max_properties ?prune t =
  let report =
    Failures.run ?pool:(session_pool t) ~domains:t.options.Dataplane.domains
      ?max_properties ?prune ~k ~options:(effective_options t) ~env:t.env
      ~configs_list:(Snapshot.configs t.snap) ~find:(Snapshot.find t.snap)
      ~base_dp:(dataplane t) ~base_fq:(forwarding t) ()
  in
  t.extra_diags <- List.rev_append report.Failures.rp_diags t.extra_diags;
  report

let answer_failures ?k ?max_properties ?prune t =
  let report = failure_report ?k ?max_properties ?prune t in
  (report, [ Questions.failure_summary report; Questions.failure_verification report ])

let answer_reachability t ~src ~dst_ip ?hdr () =
  Questions.reachability (forwarding t) ~src ~dst_ip ?hdr ()

(* --- configuration coverage over this snapshot --- *)

(* Coverage degrades gracefully: a snapshot whose data plane or forwarding
   graph cannot be built still gets the purely static report (dead lines
   from the shared lint analyses; everything live marked uncovered) instead
   of an exception — the chaos harness relies on this. *)
let coverage t =
  let dp = try Some (dataplane t) with _ -> None in
  let q =
    match dp with
    | None -> None
    | Some _ -> (
      try match try_forwarding t with Ok q -> Some q | Error _ -> None
      with _ -> None)
  in
  Coverage.analyze ~domains:t.options.Dataplane.domains
    ?pool:(session_pool t) ?dp ?q
    ~files:(Snapshot.parsed_files t.snap)
    (Snapshot.configs t.snap)

let answer_coverage t =
  let r = coverage t in
  let total_row =
    [ "TOTAL"; string_of_int r.Coverage.cov_covered;
      string_of_int r.Coverage.cov_uncovered;
      string_of_int r.Coverage.cov_dead;
      Printf.sprintf "%d/%d" r.Coverage.cov_attributed r.Coverage.cov_total ]
  in
  { Questions.a_title = "coverage";
    a_header = [ "File"; "Covered"; "Uncovered"; "Dead"; "Attributed" ];
    a_rows =
      List.map
        (fun (fc : Coverage.file_cov) ->
          [ fc.fc_file;
            string_of_int (List.length fc.fc_covered);
            string_of_int (List.length fc.fc_uncovered);
            string_of_int (List.length fc.fc_dead); "" ])
        r.Coverage.cov_files
      @ [ total_row ] }

(* --- the lint registry over this snapshot --- *)

let lint_ctx t =
  Lint.make_ctx ~files:(Snapshot.parsed_files t.snap)
    ~domains:t.options.Dataplane.domains ?pool:(session_pool t)
    (Snapshot.configs t.snap)

let lint ?select ?ignore_passes t = Lint.run ?select ?ignore_passes (lint_ctx t)
let lint_all t = Lint.run_passes (lint_ctx t) Lint.passes
let answer_lint t = Questions.lint (lint_all t)

let check_all t =
  [ answer_init_issues t; answer_undefined_references t; answer_unused_structures t;
    answer_duplicate_ips t; answer_bgp_compatibility t; answer_property_consistency t;
    answer_lint t; answer_bgp_status t ]

(* --- incremental snapshot analysis (ISSUE 4 tentpole) --- *)

type update_report = {
  up_files_changed : int;  (* added + removed + content-changed files *)
  up_files_reparsed : int;  (* files actually run through the parser *)
  up_nodes_changed : string list;  (* hosts whose VI model differs *)
  up_components : int;
  up_dirty_components : int;
  up_nodes_simulated : int;
  up_nodes_reused : int;
  up_frontier_size : int;  (* nodes the route-delta worklist re-simulated *)
  up_nodes_converged_early : int;  (* frontier nodes identical to the base *)
  up_forwarding_rebuilt : bool;
  up_memo_invalidated : int;
}

let update ?(removed = []) ?(diags = []) ~files t =
  (* New file list: base order for retained names (edits replace in place),
     genuinely new files appended in the order given. *)
  let replace = Hashtbl.create 16 in
  List.iter (fun (n, txt) -> Hashtbl.replace replace n txt) files;
  let kept =
    List.filter_map
      (fun (n, txt) ->
        if List.mem n removed then None
        else
          match Hashtbl.find_opt replace n with
          | Some txt' ->
            Hashtbl.remove replace n;
            Some (n, txt')
          | None -> Some (n, txt))
      (Snapshot.files t.snap)
  in
  let fresh = List.filter (fun (n, _) -> Hashtbl.mem replace n) files in
  let new_files = kept @ fresh in
  let snap' = Snapshot.of_texts ~diags ~base:t.snap new_files in
  let files_changed =
    let base_fp = Hashtbl.create 64 in
    List.iter
      (fun (n, d) -> Hashtbl.replace base_fp n d)
      (Snapshot.fingerprints t.snap);
    let changed = ref 0 in
    List.iter
      (fun (n, d) ->
        (match Hashtbl.find_opt base_fp n with
         | Some bd when bd = d -> ()
         | Some _ | None -> incr changed);
        Hashtbl.remove base_fp n)
      (Snapshot.fingerprints snap');
    !changed + Hashtbl.length base_fp
  in
  let changed = Snapshot.changed_nodes ~base:t.snap snap' in
  if changed = [] && Snapshot.node_names snap' = Snapshot.node_names t.snap then
    (* Cosmetic change only: every derived artifact — data plane, forwarding
       graph, query memo — carries over untouched. *)
    let reused =
      match t.dp with
      | Some dp -> List.length dp.Dataplane.node_order
      | None -> 0
    in
    ( { snap = snap'; env = t.env; options = t.options;
        auto_domains = t.auto_domains; compress = t.compress; pool = t.pool;
        dp = t.dp; fq = t.fq; extra_diags = t.extra_diags },
      { up_files_changed = files_changed;
        up_files_reparsed = Snapshot.reparsed snap';
        up_nodes_changed = [];
        up_components =
          (match t.dp with
           | Some dp -> dp.Dataplane.stats.Dataplane.st_components
           | None -> 0);
        up_dirty_components = 0;
        up_nodes_simulated = 0;
        up_nodes_reused = reused;
        up_frontier_size = 0;
        up_nodes_converged_early = 0;
        up_forwarding_rebuilt = false;
        up_memo_invalidated = 0 } )
  else begin
    let base_dp = dataplane t in
    let dp' =
      Dataplane.update ~options:(effective_options t) ~env:t.env ~base:base_dp
        ~changed (Snapshot.configs snap')
    in
    let stats = dp'.Dataplane.stats in
    let fq', rebuilt, invalidated =
      match t.fq with
      | None -> (None, false, 0)
      | Some q ->
        let q', inval =
          Fquery.update ~base:q ~dirty:changed ~configs:(Snapshot.find snap')
            ~dp:dp' ()
        in
        (* [Fquery.update] keeps the base graph object exactly when the edit
           left forwarding untouched — physical graph identity is the
           "rebuilt" signal. *)
        (Some q', not (Fquery.graph q' == Fquery.graph q), inval)
    in
    ( { snap = snap'; env = t.env; options = t.options;
        auto_domains = t.auto_domains; compress = t.compress; pool = t.pool;
        dp = Some dp'; fq = fq'; extra_diags = [] },
      { up_files_changed = files_changed;
        up_files_reparsed = Snapshot.reparsed snap';
        up_nodes_changed = changed;
        up_components = stats.Dataplane.st_components;
        up_dirty_components = stats.Dataplane.st_dirty_components;
        up_nodes_simulated = stats.Dataplane.st_simulated_nodes;
        up_nodes_reused = stats.Dataplane.st_reused_nodes;
        up_frontier_size = stats.Dataplane.st_frontier_nodes;
        up_nodes_converged_early = stats.Dataplane.st_converged_early;
        up_forwarding_rebuilt = rebuilt;
        up_memo_invalidated = invalidated } )
  end

let answer_update_report (r : update_report) =
  Questions.incremental_update ~files_changed:r.up_files_changed
    ~files_reparsed:r.up_files_reparsed ~nodes_changed:r.up_nodes_changed
    ~components:r.up_components ~dirty_components:r.up_dirty_components
    ~nodes_simulated:r.up_nodes_simulated ~nodes_reused:r.up_nodes_reused
    ~frontier_size:r.up_frontier_size
    ~nodes_converged_early:r.up_nodes_converged_early
    ~forwarding_rebuilt:r.up_forwarding_rebuilt
    ~memo_invalidated:r.up_memo_invalidated

let differential ~base ~candidate ?srcs () =
  let env = Pktset.create () in
  let qb =
    Fquery.make ~env ~configs:(Snapshot.find base.snap) ~dp:(dataplane base) ()
  in
  let qc =
    Fquery.make ~env ~configs:(Snapshot.find candidate.snap) ~dp:(dataplane candidate) ()
  in
  let srcs =
    match srcs with
    | Some s -> s
    | None ->
      List.map (fun (n, i) -> (n, Some i)) (Fgraph.edge_interfaces qb.Fquery.g ~dp:(dataplane base))
  in
  Questions.differential_reachability qb qc ~srcs

(* §4.3.2: cross-validate the two forwarding engines on this snapshot. *)
let differential_engine_test ?(flows_per_location = 4) t =
  let q = forwarding t in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let dp = dataplane t in
  let deliver = Fquery.to_delivered q () in
  let drop = Fquery.to_dropped q () in
  let checked = ref 0 in
  let slices =
    (* distinct header slices so the representatives differ *)
    [ Bdd.top;
      Pktset.value e Field.Protocol Packet.Proto.tcp;
      Pktset.value e Field.Protocol Packet.Proto.udp;
      Pktset.value e Field.Protocol Packet.Proto.icmp;
      Pktset.range e Field.Dst_port 0 1023 ]
  in
  let starts = Fgraph.edge_interfaces q.Fquery.g ~dp in
  List.iter
    (fun (node, iface) ->
      match Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, iface)) with
      | None -> ()
      | Some id ->
        let verify set expect_delivered =
          match Pktset.to_packet e ~prefs:(Pktset.standard_prefs e ()) set with
          | None -> ()
          | Some pkt ->
            incr checked;
            let traces =
              Traceroute.run ~configs:(Snapshot.find t.snap) ~dp ~start:node ~ingress:iface pkt
            in
            let delivered =
              List.exists
                (fun (tr : Traceroute.trace) -> Traceroute.is_delivered tr.disposition)
                traces
            in
            if delivered <> expect_delivered then
              failwith
                (Printf.sprintf
                   "engine disagreement at %s[%s] for %s: symbolic=%s traceroute=%s" node
                   iface (Packet.to_string pkt)
                   (if expect_delivered then "delivered" else "dropped")
                   (if delivered then "delivered" else "dropped"));
            (* The final packet must be the last hop's post-NAT packet (the
               ISSUE 4 traceroute bugfix), and on delivered paths it must lie
               in the symbolic engine's post-transformation delivered image. *)
            List.iter
              (fun (tr : Traceroute.trace) ->
                match List.rev tr.Traceroute.hops with
                | [] -> ()
                | last :: _ ->
                  if tr.final_packet <> last.Traceroute.h_packet then
                    failwith
                      (Printf.sprintf
                         "traceroute final_packet disagrees with last hop at %s[%s]: %s vs %s"
                         node iface
                         (Packet.to_string tr.final_packet)
                         (Packet.to_string last.Traceroute.h_packet)))
              traces;
            if delivered then begin
              let fwd =
                Fquery.forward_from q ~hdr:(Pktset.of_packet e pkt) [ (node, Some iface) ]
              in
              (* Delivered sets carry the query-local extra bits (zone /
                 session marks set along the path); strip them before the
                 concrete membership test, which evaluates extras as zero. *)
              let strip_extra s =
                let levels = List.init (Pktset.extra_count e) (Pktset.extra_level e) in
                Bdd.exists man (Bdd.varset man levels) s
              in
              let image = strip_extra (Fquery.delivered_union q fwd) in
              List.iter
                (fun (tr : Traceroute.trace) ->
                  if
                    Traceroute.is_delivered tr.disposition
                    && not (Pktset.mem e image tr.final_packet)
                  then
                    failwith
                      (Printf.sprintf
                         "engine disagreement at %s[%s]: traceroute final packet %s \
                          is outside the symbolic delivered image for %s"
                         node iface
                         (Packet.to_string tr.final_packet)
                         (Packet.to_string pkt)))
                traces
            end
        in
        let rec take k = function
          | [] -> ()
          | slice :: rest ->
            if k > 0 then begin
              let base = Bdd.band man (Fquery.clean q) slice in
              verify (Bdd.band man base (Bdd.bdiff man deliver.(id) drop.(id))) true;
              verify (Bdd.band man base (Bdd.bdiff man drop.(id) deliver.(id))) false;
              take (k - 1) rest
            end
        in
        take (max 1 (flows_per_location / 2)) slices)
    starts;
  !checked
