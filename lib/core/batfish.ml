module Snapshot = struct
  type t = {
    files : (string * string) list;
    all_parsed : (string * Vi.t) list;  (* every parsed file, pre-dedup *)
    parsed : (Vi.t * Diag.t list) list;
    by_name : (string, Vi.t) Hashtbl.t;
    diags : Diag.t list;
  }

  let of_texts ?(diags = []) files =
    let c = Diag.collector () in
    Diag.add_all c diags;
    (* Per-file isolation: a parser crash on one file (truncated, binary
       garbage) becomes a Fatal diag; the rest of the snapshot still loads. *)
    let parsed =
      List.filter_map
        (fun (fname, text) ->
          match Parse.parse_config text with
          | cfg, warns ->
            let warns = List.map (fun w -> Diag.set_file w fname) warns in
            List.iter (Diag.add c) warns;
            Some (fname, (cfg, warns))
          | exception exn ->
            Diag.add c
              (Diag.fatal ~file:fname ~phase:Diag.Parse ~code:Diag.code_parse_crash
                 (Printf.sprintf "parser raised: %s" (Printexc.to_string exn)));
            None)
        files
    in
    let all_parsed = List.map (fun (fname, (cfg, _)) -> (fname, cfg)) parsed in
    (* Duplicate hostnames are deterministic first-wins, with an Error diag
       for every shadowed config. *)
    let by_name = Hashtbl.create 64 in
    let parsed =
      List.filter_map
        (fun (fname, ((cfg : Vi.t), warns)) ->
          if Hashtbl.mem by_name cfg.hostname then begin
            Diag.add c
              (Diag.error ~node:cfg.hostname ~file:fname ~phase:Diag.Convert
                 ~code:Diag.code_duplicate_hostname
                 (Printf.sprintf
                    "hostname '%s' defined by more than one file; keeping the first"
                    cfg.hostname));
            None
          end
          else begin
            Hashtbl.add by_name cfg.hostname cfg;
            Some (cfg, warns)
          end)
        parsed
    in
    { files; all_parsed; parsed; by_name; diags = Diag.to_list c }

  let of_dir dir =
    let c = Diag.collector () in
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    let files =
      Array.to_list entries
      |> List.filter_map (fun name ->
             let path = Filename.concat dir name in
             if String.length name > 0 && name.[0] = '.' then begin
               Diag.add c
                 (Diag.info ~file:name ~phase:Diag.Parse ~code:Diag.code_skipped_file
                    "skipped dotfile");
               None
             end
             else
               match
                 if Sys.is_directory path then None
                 else begin
                   let ic = open_in_bin path in
                   let len = in_channel_length ic in
                   let text = really_input_string ic len in
                   close_in ic;
                   Some (name, text)
                 end
               with
               | v -> v
               | exception exn ->
                 Diag.add c
                   (Diag.error ~file:name ~phase:Diag.Parse
                      ~code:Diag.code_unreadable_file
                      (Printf.sprintf "unreadable file: %s" (Printexc.to_string exn)));
                 None)
    in
    of_texts ~diags:(Diag.to_list c) files

  let of_network (n : Netgen.network) = of_texts n.n_configs
  let configs t = List.map fst t.parsed
  let parsed_files t = t.all_parsed
  let parse_warnings t = t.parsed
  let diags t = t.diags
  let find t name = Hashtbl.find_opt t.by_name name
  let node_names t = List.map (fun (c : Vi.t) -> c.Vi.hostname) (configs t)
end

type t = {
  snap : Snapshot.t;
  env : Dp_env.t;
  options : Dataplane.options;
  mutable dp : Dataplane.t option;
  mutable fq : Fquery.t option;
  mutable extra_diags : Diag.t list;  (* newest first *)
}

let init ?(options = Dataplane.default_options) ?(env = Dp_env.empty) snap =
  { snap; env; options; dp = None; fq = None; extra_diags = [] }

let snapshot t = t.snap

let dataplane t =
  match t.dp with
  | Some dp -> dp
  | None ->
    let dp = Dataplane.compute ~options:t.options ~env:t.env (Snapshot.configs t.snap) in
    t.dp <- Some dp;
    dp

let try_forwarding t =
  match t.fq with
  | Some fq -> Ok fq
  | None -> (
    match Fquery.make_checked ~configs:(Snapshot.find t.snap) ~dp:(dataplane t) () with
    | Ok fq ->
      t.fq <- Some fq;
      Ok fq
    | Error d ->
      t.extra_diags <- d :: t.extra_diags;
      Error d)

let forwarding t =
  match try_forwarding t with
  | Ok fq -> fq
  | Error d -> failwith (Diag.to_string d)

(* Every diagnostic the pipeline has produced so far. The data plane's are
   included only once it has been computed; nothing here forces it. *)
let diags t =
  Snapshot.diags t.snap
  @ (match t.dp with
    | Some dp -> dp.Dataplane.diags
    | None -> [])
  @ List.rev t.extra_diags

let strict_failure t =
  Diag.severity_rank (Diag.max_severity (diags t)) >= Diag.severity_rank Diag.Error

let traceroute t ~start ?ingress pkt =
  Traceroute.run ~configs:(Snapshot.find t.snap) ~dp:(dataplane t) ~start ?ingress pkt

let answer_init_issues t = Questions.init_issues (Snapshot.parse_warnings t.snap)
let answer_diagnostics t = Questions.diagnostics (diags t)
let answer_undefined_references t = Questions.undefined_references (Snapshot.configs t.snap)
let answer_unused_structures t = Questions.unused_structures (Snapshot.configs t.snap)
let answer_duplicate_ips t = Questions.duplicate_ips (Snapshot.configs t.snap)
let answer_bgp_compatibility t = Questions.bgp_session_compatibility (Snapshot.configs t.snap)
let answer_bgp_status t = Questions.bgp_session_status (dataplane t)
let answer_property_consistency t = Questions.property_consistency (Snapshot.configs t.snap)
let answer_routes ?node ?protocol t = Questions.routes ?node ?protocol (dataplane t)

(* Symbolic queries inherit the session's [options.domains]: the same knob
   that parallelizes route exchange shards the verification engine. *)
let answer_multipath_consistency t =
  Questions.multipath_consistency ~domains:t.options.Dataplane.domains (forwarding t)

let answer_all_pairs t =
  Questions.all_pairs_reachability ~domains:t.options.Dataplane.domains (forwarding t)

let answer_loops t = Questions.detect_loops (forwarding t)

let answer_reachability t ~src ~dst_ip ?hdr () =
  Questions.reachability (forwarding t) ~src ~dst_ip ?hdr ()

(* --- the lint registry over this snapshot --- *)

let lint_ctx t =
  Lint.make_ctx ~files:(Snapshot.parsed_files t.snap)
    ~domains:t.options.Dataplane.domains (Snapshot.configs t.snap)

let lint ?select ?ignore_passes t = Lint.run ?select ?ignore_passes (lint_ctx t)
let lint_all t = Lint.run_passes (lint_ctx t) Lint.passes
let answer_lint t = Questions.lint (lint_all t)

let check_all t =
  [ answer_init_issues t; answer_undefined_references t; answer_unused_structures t;
    answer_duplicate_ips t; answer_bgp_compatibility t; answer_property_consistency t;
    answer_lint t; answer_bgp_status t ]

let differential ~base ~candidate ?srcs () =
  let env = Pktset.create () in
  let qb =
    Fquery.make ~env ~configs:(Snapshot.find base.snap) ~dp:(dataplane base) ()
  in
  let qc =
    Fquery.make ~env ~configs:(Snapshot.find candidate.snap) ~dp:(dataplane candidate) ()
  in
  let srcs =
    match srcs with
    | Some s -> s
    | None ->
      List.map (fun (n, i) -> (n, Some i)) (Fgraph.edge_interfaces qb.Fquery.g ~dp:(dataplane base))
  in
  Questions.differential_reachability qb qc ~srcs

(* §4.3.2: cross-validate the two forwarding engines on this snapshot. *)
let differential_engine_test ?(flows_per_location = 4) t =
  let q = forwarding t in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let dp = dataplane t in
  let deliver = Fquery.to_delivered q () in
  let drop = Fquery.to_dropped q () in
  let checked = ref 0 in
  let slices =
    (* distinct header slices so the representatives differ *)
    [ Bdd.top;
      Pktset.value e Field.Protocol Packet.Proto.tcp;
      Pktset.value e Field.Protocol Packet.Proto.udp;
      Pktset.value e Field.Protocol Packet.Proto.icmp;
      Pktset.range e Field.Dst_port 0 1023 ]
  in
  let starts = Fgraph.edge_interfaces q.Fquery.g ~dp in
  List.iter
    (fun (node, iface) ->
      match Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, iface)) with
      | None -> ()
      | Some id ->
        let verify set expect_delivered =
          match Pktset.to_packet e ~prefs:(Pktset.standard_prefs e ()) set with
          | None -> ()
          | Some pkt ->
            incr checked;
            let traces =
              Traceroute.run ~configs:(Snapshot.find t.snap) ~dp ~start:node ~ingress:iface pkt
            in
            let delivered =
              List.exists
                (fun (tr : Traceroute.trace) -> Traceroute.is_delivered tr.disposition)
                traces
            in
            if delivered <> expect_delivered then
              failwith
                (Printf.sprintf
                   "engine disagreement at %s[%s] for %s: symbolic=%s traceroute=%s" node
                   iface (Packet.to_string pkt)
                   (if expect_delivered then "delivered" else "dropped")
                   (if delivered then "delivered" else "dropped"))
        in
        let rec take k = function
          | [] -> ()
          | slice :: rest ->
            if k > 0 then begin
              let base = Bdd.band man (Fquery.clean q) slice in
              verify (Bdd.band man base (Bdd.bdiff man deliver.(id) drop.(id))) true;
              verify (Bdd.band man base (Bdd.bdiff man drop.(id) deliver.(id))) false;
              take (k - 1) rest
            end
        in
        take (max 1 (flows_per_location / 2)) slices)
    starts;
  !checked
