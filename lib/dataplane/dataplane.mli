(** Data-plane generation: the imperative fixed-point control-plane
    simulation of §4.1.

    The engine computes, in order: connected/local routes, recursive static
    routes, OSPF (to convergence, before BGP starts — the IGP-first ordering
    Datalog could not express), then BGP to a fixed point. BGP scheduling
    uses protocol-graph coloring so adjacent routers never exchange in the
    same step, and routes carry logical clocks used as a best-path tiebreak;
    together these give deterministic convergence (§4.1.2). RIB deltas are
    pulled by receivers (no per-neighbor queues, §4.1.3). Non-convergence is
    detected and reported rather than forced. *)

type schedule =
  | Colored  (** production scheduling: color classes exchange in turn *)
  | Lockstep  (** naive: everyone exchanges simultaneously (Figure 1 mode) *)

type options = {
  schedule : schedule;
  use_logical_clocks : bool;
  domains : int;  (** worker domains for parallel phases *)
  pool : Par.Pool.t option;
      (** persistent worker pool for parallel phases; when set, [domains]
          is ignored and jobs run on the pool's resident workers *)
  max_rounds : int;
      (** fuel budget for BGP rounds within one outer pass; exhausting it
          yields [converged = false] plus a [BGP_FUEL_EXHAUSTED] diag *)
  outer_fuel : int;
      (** fuel budget for session re-evaluation passes (§4.1.1); exhausting
          it yields [converged = false] plus an [OUTER_FUEL_EXHAUSTED] diag *)
  full_rib_compare : bool;
      (** ablation: also detect convergence by snapshotting and comparing
          full RIBs each round (the classic, memory-hungry method) *)
}

val default_options : options

type session_report = {
  sr_node : string;
  sr_peer : Ipv4.t;
  sr_remote_node : string option;  (** None for external peers *)
  sr_is_ibgp : bool;
  sr_established : bool;
  sr_reason : string option;  (** why the session is down *)
}

type node_result = {
  nr_node : string;
  nr_main : Rib.t;
  nr_bgp : Rib.t;
  nr_ospf : Rib.t option;
  nr_fib : Fib.t;
}

(** Opaque result of one dependency component's simulation, retained so
    {!update} can reuse unchanged components. *)
type comp_result

(** Engine counters: how much of the snapshot was actually simulated.
    A full {!compute} reports every node simulated; {!update} reports the
    dirty/reused split. [st_frontier_nodes] counts the nodes the route-delta
    worklist actually re-simulated inside dirty components (equal to
    [st_simulated_nodes] when every dirty component ran from scratch);
    [st_converged_early] counts re-simulated nodes whose fixed point came
    back identical to the base — the frontier ring where propagation died
    out. *)
type stats = {
  st_components : int;
  st_dirty_components : int;
  st_simulated_nodes : int;
  st_reused_nodes : int;
  st_frontier_nodes : int;
  st_converged_early : int;
}

type t = {
  topo : L3.t;
  nodes : (string, node_result) Hashtbl.t;
  node_order : string list;
  converged : bool;
  oscillated : bool;
  rounds : int;  (** total BGP rounds across components (or cutoff) *)
  outer_iterations : int;  (** max session re-evaluation passes (§4.1.1) *)
  sessions : session_report list;
  quarantined : (string * string) list;
      (** nodes excluded from the simulation, with the reason; their results
          are present but empty, their sessions reported down *)
  diags : Diag.t list;  (** everything skipped, quarantined, or budget-cut *)
  components : string list list;
      (** the dependency partition (L3 adjacency + BGP sessions;
          redistribution is node-local): hostname groups in config order *)
  comp_results : comp_result list;
  stats : stats;
}

(** Fault-isolated data-plane generation: a node whose topology, OSPF, or
    BGP initialization raises is quarantined (routes withdrawn, sessions
    down with a reason) instead of aborting the snapshot, and both the BGP
    round loop and the outer session re-evaluation loop run on explicit fuel
    budgets ({!options.max_rounds}, {!options.outer_fuel}). Never raises on
    operator input. *)
val compute : ?options:options -> ?env:Dp_env.t -> Vi.t list -> t

(** [update ~base ~changed configs] recomputes the data plane for [configs]
    (the complete new snapshot) reusing [base] wherever possible. [changed]
    must name every host whose vendor-independent model differs from [base]
    (added hosts included; removed hosts are simply absent from [configs]).
    A dependency component is reused wholesale when none of its members
    changed and its member set equals a base component's member set. A dirty
    component whose member set still matches runs the route-delta worklist:
    only the changed nodes (plus their session partners and any member whose
    pre-BGP state changed) are re-simulated, each neighbor is woken only when
    the advertisements it receives actually differ from the base, and every
    untouched node keeps its base RIBs — so propagation stops at the first
    ring of undisturbed fixed point. The warm path is guarded: it runs only
    when the base fixed point was converged, diagnostic-free, and provably
    timing-independent, and any mid-flight surprise falls back to the exact
    per-component scratch path [compute] uses. Either way the result is
    bit-identical to [compute configs]. [options] and [env] must equal those
    used to build [base]. Engine counters land in {!t.stats}. *)
val update :
  ?options:options -> ?env:Dp_env.t -> base:t -> changed:string list -> Vi.t list -> t

(** The explicit dependency map backing the component partition: undirected
    (node, node) influence edges — L3 adjacencies plus resolved BGP
    sessions. *)
val dependency_edges : topo:L3.t -> Vi.t list -> (string * string) list

(** @raise Invalid_argument on an unknown node name; prefer {!node_opt}. *)
val node : t -> string -> node_result

val node_opt : t -> string -> node_result option

(** Total best routes in main RIBs across nodes (the paper's Table 1
    "routes" column). *)
val total_routes : t -> int

(** Approximate heap footprint of all RIB state, in machine words (for the
    memory ablations). *)
val rib_words : t -> int
