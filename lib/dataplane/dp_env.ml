type external_announcement = {
  xa_prefix : Prefix.t;
  xa_as_path : int list;
  xa_med : int;
  xa_communities : int list;
}

type external_peer = {
  xp_ip : Ipv4.t;
  xp_as : int;
  xp_announcements : external_announcement list;
}

type t = {
  external_peers : external_peer list;
  down_links : (string * string) list;
}

let empty = { external_peers = []; down_links = [] }

let announce ?(med = 0) ?(communities = []) ?(path = []) prefix =
  { xa_prefix = prefix; xa_as_path = path; xa_med = med; xa_communities = communities }

let peer ~ip ~asn announcements =
  let announcements =
    List.map
      (fun a -> if a.xa_as_path = [] then { a with xa_as_path = [ asn ] } else a)
      announcements
  in
  { xp_ip = ip; xp_as = asn; xp_announcements = announcements }

let make ?(down_links = []) external_peers = { external_peers; down_links }

let with_down_links t more =
  let extra = List.filter (fun l -> not (List.mem l t.down_links)) more in
  { t with down_links = t.down_links @ List.sort_uniq compare extra }
let find_peer t ip = List.find_opt (fun p -> p.xp_ip = ip) t.external_peers
let link_down t ~node ~iface = List.mem (node, iface) t.down_links
