type schedule = Colored | Lockstep

type options = {
  schedule : schedule;
  use_logical_clocks : bool;
  domains : int;
  pool : Par.Pool.t option;
  max_rounds : int;
  outer_fuel : int;
  full_rib_compare : bool;
}

let default_options =
  { schedule = Colored; use_logical_clocks = true; domains = 1; pool = None;
    max_rounds = 500; outer_fuel = 5; full_rib_compare = false }

type session_report = {
  sr_node : string;
  sr_peer : Ipv4.t;
  sr_remote_node : string option;
  sr_is_ibgp : bool;
  sr_established : bool;
  sr_reason : string option;
}

type node_result = {
  nr_node : string;
  nr_main : Rib.t;
  nr_bgp : Rib.t;
  nr_ospf : Rib.t option;
  nr_fib : Fib.t;
}

(* One receiver-side BGP wire snapshot: the exact (arrival-free, sorted)
   route set arriving over one established internal session, as produced by
   the sender's export pipeline. Keyed from the receiver side because
   sessions can be asymmetric (per-side multihop/update-source). The
   incremental engine compares these sets to decide whether a neighbor's
   inputs actually changed. *)
type export_entry = {
  ex_receiver : string;
  ex_peer_ip : Ipv4.t;  (* the sender-side session address (receiver's view) *)
  ex_local_ip : Ipv4.t;  (* the receiver-side session address *)
  ex_is_ibgp : bool;
  ex_sender : string;
  mutable ex_wire : Route.t list;  (* arrival-zeroed, sorted, deduped *)
}

(* Result of simulating one dependency component (see [component_partition]).
   Retained inside [t] so that [update] can splice unchanged components'
   results into a new snapshot without re-running them, and warm-start
   route-delta propagation inside dirty ones. *)
type comp_result = {
  cr_members : string list;  (* hostnames, in config order *)
  cr_results : (string * node_result) list;
  cr_sessions : session_report list;
  cr_converged : bool;
  cr_oscillated : bool;
  cr_rounds : int;
  cr_outer : int;
  cr_quarantined : (string * string) list;
  cr_diags : Diag.t list;
  cr_prebgp : (string * string) list;
      (* per-member digest of the pre-BGP main RIB (and external BGP inputs):
         a member whose digest matches the base's needs re-simulation only if
         its incoming advertisements change *)
  cr_exports : export_entry list;
  cr_ospf_digest : string;  (* digest of the last SPF inputs used *)
  cr_delta_safe : bool;
      (* false when the fixed point is timing-dependent (an arrival-decided
         best-set boundary on some node): warm-started propagation could then
         legitimately land on a different fixed point, so [update] falls back
         to scratch *)
}

type stats = {
  st_components : int;
  st_dirty_components : int;
  st_simulated_nodes : int;
  st_reused_nodes : int;
  st_frontier_nodes : int;
  st_converged_early : int;
}

type t = {
  topo : L3.t;
  nodes : (string, node_result) Hashtbl.t;
  node_order : string list;
  converged : bool;
  oscillated : bool;
  rounds : int;
  outer_iterations : int;
  sessions : session_report list;
  quarantined : (string * string) list;
  diags : Diag.t list;
  components : string list list;
  comp_results : comp_result list;
  stats : stats;
}

(* --- internal simulation state --- *)

type remote = Internal of int | External of Dp_env.external_peer

type session = {
  ss_local_ip : Ipv4.t;
  ss_peer_ip : Ipv4.t;
  ss_neighbor : Vi.bgp_neighbor;  (* our side's neighbor stanza *)
  ss_reverse : Vi.bgp_neighbor option;  (* the peer's stanza pointing back *)
  ss_is_ibgp : bool;
  ss_remote : remote;
  mutable ss_consumed : int;
}

type publication = { pub_version : int; pub_round : int; pub_adds : Route.t list; pub_dels : Route.t list }

type node = {
  idx : int;
  cfg : Vi.t;
  router_id : Ipv4.t;
  mutable sessions : session list;
  mutable down_sessions : (Vi.bgp_neighbor * string) list;  (* reason *)
  static_configured : Vi.static_route list;
  static_rib : Rib.t;
  mutable ospf_rib : Rib.t option;
  bgp_rib : Rib.t;
  main_rib : Rib.t;
  mutable clock : int;
  mutable version : int;
  mutable published : publication list;  (* newest first; pruned *)
  mutable local_bgp : Route.t list;
  mutable published_this_round : bool;
}

let local_as (node : node) =
  match node.cfg.Vi.bgp with
  | Some b -> b.bp_as
  | None -> 0

let find_router_id (cfg : Vi.t) =
  let candidates =
    (match cfg.bgp with
     | Some b -> Option.to_list b.bp_router_id
     | None -> [])
    @ (match cfg.ospf with
       | Some o -> Option.to_list o.op_router_id
       | None -> [])
  in
  match candidates with
  | rid :: _ -> rid
  | [] ->
    (* Highest loopback address, else highest interface address. *)
    let ips which =
      List.filter_map
        (fun (i : Vi.interface) ->
          match i.if_address with
          | Some (ip, _)
            when which = (String.length i.if_name >= 4
                         && String.lowercase_ascii (String.sub i.if_name 0 4) = "loop") ->
            Some ip
          | _ -> None)
        cfg.interfaces
    in
    (match List.sort (fun a b -> Int.compare b a) (ips true) with
     | ip :: _ -> ip
     | [] -> (
       match List.sort (fun a b -> Int.compare b a) (ips false) with
       | ip :: _ -> ip
       | [] -> 0))

let igp_cost node ip =
  match Rib.lookup node.main_rib ip with
  | Some (_, r :: _) ->
    if Route_proto.is_bgp r.Route.protocol then Some (1_000_000 + r.Route.metric)
    else Some r.Route.metric
  | Some (_, []) | None -> None

let make_node idx (cfg : Vi.t) =
  let main_rib =
    Rib.create ~prefer:Cmp.main_prefer ~multipath_equal:Cmp.main_multipath_equal
      ~max_paths:16 ()
  in
  let node_ref = ref None in
  let cost ip =
    match !node_ref with
    | Some n -> igp_cost n ip
    | None -> None
  in
  let max_paths =
    match cfg.bgp with
    | Some b -> max b.bp_max_paths b.bp_max_paths_ibgp
    | None -> 1
  in
  let bgp_rib =
    Rib.create
      ~prefer:(fun a b -> Cmp.bgp_prefer ~igp_cost:cost a b)
      ~multipath_equal:(fun a b -> Cmp.bgp_multipath_equal ~igp_cost:cost a b)
      ~max_paths ()
  in
  let node =
    { idx; cfg; router_id = find_router_id cfg; sessions = []; down_sessions = [];
      static_configured = cfg.static_routes;
      static_rib =
        Rib.create ~prefer:Cmp.main_prefer ~multipath_equal:Cmp.main_multipath_equal
          ~max_paths:4 ();
      ospf_rib = None; bgp_rib; main_rib; clock = 0; version = 0; published = [];
      local_bgp = []; published_this_round = false }
  in
  node_ref := Some node;
  node

(* When clocks are disabled (Figure 1 ablation) the comparator must not see
   arrival times; we zero them at import. *)

(* --- connected & static phases --- *)

let connected_routes env (cfg : Vi.t) =
  List.concat_map
    (fun (i : Vi.interface) ->
      if (not i.if_enabled) || Dp_env.link_down env ~node:cfg.hostname ~iface:i.if_name
      then []
      else
        List.concat_map
          (fun addr ->
            match addr with
            | Some (ip, len) ->
              [ Route.connected ~net:(Prefix.make ip len) ~iface:i.if_name;
                Route.local ~ip ~iface:i.if_name ]
            | None -> [])
          (i.if_address :: List.map Option.some i.if_secondary))
    cfg.interfaces

let iface_up env (cfg : Vi.t) name =
  match Vi.find_interface cfg name with
  | Some i -> i.if_enabled && not (Dp_env.link_down env ~node:cfg.hostname ~iface:name)
  | None -> false

(* Activate statics against the current main RIB; returns true if anything
   changed. Recursive statics resolve through previously activated routes. *)
let activate_statics env node =
  let changed = ref false in
  List.iter
    (fun (sr : Vi.static_route) ->
      let nh, active =
        match sr.sr_next_hop with
        | Vi.Nh_discard -> (Route.Nh_discard, true)
        | Vi.Nh_interface i -> (Route.Nh_iface i, iface_up env node.cfg i)
        | Vi.Nh_ip ip -> (
          (Route.Nh_ip ip,
           match Rib.lookup node.main_rib ip with
           | Some (p, _) ->
             (* A static may not resolve through itself. *)
             not (Prefix.equal p sr.sr_prefix)
           | None -> false))
      in
      let route = Route.static ~net:sr.sr_prefix ~nh ~ad:sr.sr_ad ~tag:sr.sr_tag in
      let present =
        List.exists (Route.same route) (Rib.best node.static_rib sr.sr_prefix)
      in
      if active && not present then begin
        Rib.merge node.static_rib route;
        Rib.merge node.main_rib route;
        changed := true
      end
      else if (not active) && present then begin
        Rib.withdraw node.static_rib route;
        Rib.withdraw node.main_rib route;
        changed := true
      end)
    node.static_configured;
  !changed

(* --- BGP session establishment --- *)

let interface_ip_on_subnet topo nodename ip =
  List.find_opt
    (fun (ep : L3.endpoint) -> Prefix.contains ep.ep_prefix ip)
    (L3.endpoints topo nodename)

let session_local_ip topo node (nbr : Vi.bgp_neighbor) =
  match nbr.bn_update_source with
  | Some ifname -> (
    match Vi.find_interface node.cfg ifname with
    | Some { Vi.if_address = Some (ip, _); _ } -> Some ip
    | Some _ | None -> None)
  | None -> (
    match interface_ip_on_subnet topo node.cfg.Vi.hostname nbr.bn_peer with
    | Some ep -> Some ep.L3.ep_ip
    | None ->
      (* fall back to the router id's interface, as routers fall back to a
         loopback source *)
      if node.router_id <> 0 then Some node.router_id else None)

(* §4.1.1: session viability depends on a successful TCP connection, which
   interface ACLs can break. For directly connected sessions we check the
   four ACL points of each connection attempt (initiator egress, responder
   ingress, responder egress, initiator ingress); the session is down only
   when BOTH connection directions are blocked, since either speaker may
   initiate. *)
let tcp_blocked_by_acls topo node (remote_node : node option) local_ip peer_ip =
  let cfg_of ip =
    if ip = local_ip then Some node.cfg
    else Option.map (fun n -> n.cfg) remote_node
  in
  let acl_denies (cfg : Vi.t) ~inbound ~facing pkt =
    match interface_ip_on_subnet topo cfg.Vi.hostname facing with
    | None -> false
    | Some ep -> (
      match Vi.find_interface cfg ep.L3.ep_iface with
      | None -> false
      | Some i -> (
        match (if inbound then i.Vi.if_in_acl else i.Vi.if_out_acl) with
        | None -> false
        | Some name -> (
          match Vi.find_acl cfg name with
          | Some acl -> not (Acl_eval.permits acl pkt)
          | None ->
            not (Semantics.for_vendor cfg.Vi.vendor).Semantics.undefined_acl_permits)))
  in
  let pkt_blocked (pkt : Packet.t) =
    let out_blocked =
      match cfg_of pkt.src_ip with
      | Some cfg -> acl_denies cfg ~inbound:false ~facing:pkt.dst_ip pkt
      | None -> false
    and in_blocked =
      match cfg_of pkt.dst_ip with
      | Some cfg -> acl_denies cfg ~inbound:true ~facing:pkt.src_ip pkt
      | None -> false
    in
    out_blocked || in_blocked
  in
  let connection_blocked src dst =
    let syn = Packet.tcp ~src ~dst 179 in
    let syn_ack =
      Packet.tcp
        ~flags:(Packet.Tcp_flags.syn lor Packet.Tcp_flags.ack)
        ~src_port:179 ~src:dst ~dst:src 49152
    in
    pkt_blocked syn || pkt_blocked syn_ack
  in
  connection_blocked local_ip peer_ip && connection_blocked peer_ip local_ip

let establish_sessions ?(peer_quarantined = fun _ -> false) env topo nodes node_index node =
  match node.cfg.Vi.bgp with
  | None ->
    node.sessions <- [];
    node.down_sessions <- []
  | Some bgp ->
    let sessions = ref [] and down = ref [] in
    List.iter
      (fun (nbr : Vi.bgp_neighbor) ->
        let fail reason = down := (nbr, reason) :: !down in
        if nbr.bn_shutdown then fail "administratively shut down"
        else
          match session_local_ip topo node nbr with
          | None -> fail "no source address for session"
          | Some local_ip -> (
            let my_as = Option.value nbr.bn_local_as ~default:bgp.bp_as in
            match L3.owner_of_ip topo nbr.bn_peer with
            | Some ep -> (
              match Hashtbl.find_opt node_index ep.L3.ep_node with
              | None -> fail "peer node unknown"
              | Some ridx when peer_quarantined ridx -> fail "peer node quarantined"
              | Some ridx -> (
                let rnode = nodes.(ridx) in
                match rnode.cfg.Vi.bgp with
                | None -> fail "peer has no bgp process"
                | Some rbgp -> (
                  let reverse =
                    List.find_opt
                      (fun (rn : Vi.bgp_neighbor) -> rn.bn_peer = local_ip)
                      rbgp.bp_neighbors
                  in
                  match reverse with
                  | None -> fail "peer has no matching neighbor statement"
                  | Some rn ->
                    let their_as = Option.value rn.bn_local_as ~default:rbgp.bp_as in
                    if rn.bn_shutdown then fail "peer side shut down"
                    else if nbr.bn_remote_as <> their_as then
                      fail
                        (Printf.sprintf "remote-as mismatch (configured %d, peer is %d)"
                           nbr.bn_remote_as their_as)
                    else if rn.bn_remote_as <> my_as then
                      fail "peer's remote-as does not match our AS"
                    else begin
                      let is_ibgp = my_as = their_as in
                      let local_ep =
                        interface_ip_on_subnet topo node.cfg.Vi.hostname nbr.bn_peer
                      in
                      let directly_connected = local_ep <> None in
                      (* the TCP connection needs the link itself: a session
                         over an administratively/failure-downed interface
                         (either end) has no direct path and must fall back
                         to multihop reachability, if configured *)
                      let link_up =
                        match local_ep with
                        | None -> false
                        | Some ep ->
                          iface_up env node.cfg ep.L3.ep_iface
                          && (match
                                interface_ip_on_subnet topo
                                  rnode.cfg.Vi.hostname local_ip
                              with
                             | Some rep -> iface_up env rnode.cfg rep.L3.ep_iface
                             | None -> true)
                      in
                      let reachable =
                        if directly_connected && link_up then true
                        else if is_ibgp || nbr.bn_ebgp_multihop then
                          Rib.lookup node.main_rib nbr.bn_peer <> None
                          && Rib.lookup rnode.main_rib local_ip <> None
                        else false
                      in
                      if not reachable then
                        fail
                          (if directly_connected && not link_up then
                             "session interface down"
                           else if is_ibgp || nbr.bn_ebgp_multihop then
                             "peer unreachable"
                           else "eBGP peer not directly connected (no ebgp-multihop)")
                      else if
                        directly_connected
                        && tcp_blocked_by_acls topo node (Some rnode) local_ip nbr.bn_peer
                      then fail "BGP TCP session blocked by ACL"
                      else
                        sessions :=
                          { ss_local_ip = local_ip; ss_peer_ip = nbr.bn_peer;
                            ss_neighbor = nbr; ss_reverse = Some rn;
                            ss_is_ibgp = is_ibgp; ss_remote = Internal ridx;
                            ss_consumed = 0 }
                          :: !sessions
                    end)))
            | None -> (
              match Dp_env.find_peer env nbr.bn_peer with
              | None -> fail "peer address unknown (no device or environment entry)"
              | Some xp ->
                if nbr.bn_remote_as <> xp.Dp_env.xp_as then
                  fail
                    (Printf.sprintf "remote-as mismatch (configured %d, peer is %d)"
                       nbr.bn_remote_as xp.Dp_env.xp_as)
                else
                  let directly_connected =
                    match interface_ip_on_subnet topo node.cfg.Vi.hostname nbr.bn_peer with
                    | Some ep -> iface_up env node.cfg ep.L3.ep_iface
                    | None -> false
                  in
                  if not (directly_connected || nbr.bn_ebgp_multihop) then
                    fail "external peer not on a connected subnet"
                  else if
                    directly_connected
                    && tcp_blocked_by_acls topo node None local_ip nbr.bn_peer
                  then fail "BGP TCP session blocked by ACL"
                  else
                    sessions :=
                      { ss_local_ip = local_ip; ss_peer_ip = nbr.bn_peer;
                        ss_neighbor = nbr; ss_reverse = None; ss_is_ibgp = false;
                        ss_remote = External xp; ss_consumed = 0 }
                      :: !sessions)))
      bgp.bp_neighbors;
    node.sessions <- List.rev !sessions;
    node.down_sessions <- List.rev !down

(* --- BGP route processing --- *)

let next_arrival options node =
  if options.use_logical_clocks then begin
    node.clock <- node.clock + 1;
    node.clock
  end
  else 0

(* Export r from [sender] toward the peer described by [rev] (the sender's
   neighbor stanza for the receiver). [sender_ip] is the sender's session
   address. Returns the route as it appears on the wire. *)
let export_route sender (rev : Vi.bgp_neighbor) ~sender_ip ~receiver_ip ~is_ibgp r =
  let open Route in
  if r.from_peer = receiver_ip then None (* don't echo back to the sender *)
  else
    let attrs = Route.get_attrs r in
    if List.mem Vi.no_advertise attrs.Attrs.communities then None
    else if (not is_ibgp) && List.mem Vi.no_export attrs.Attrs.communities then None
    else
    (* Reflection rules for iBGP-learned routes toward iBGP peers. *)
    let reflection =
      if r.protocol = Route_proto.Ibgp && is_ibgp then begin
        let cluster_id =
          match sender.cfg.Vi.bgp with
          | Some b -> (
            match b.bp_cluster_id with
            | Some c -> Some c
            | None -> if rev.bn_route_reflector_client then Some sender.router_id else None)
          | None -> None
        in
        let from_client =
          match sender.cfg.Vi.bgp with
          | Some b ->
            List.exists
              (fun (n : Vi.bgp_neighbor) ->
                n.bn_peer = r.from_peer && n.bn_route_reflector_client)
              b.bp_neighbors
          | None -> false
        in
        match cluster_id with
        | Some cid when rev.bn_route_reflector_client || from_client ->
          let originator =
            if attrs.Attrs.originator_id = 0 then r.from_rid
            else attrs.Attrs.originator_id
          in
          Some
            (Attrs.update ~originator_id:originator
               ~cluster_list:(cid :: attrs.Attrs.cluster_list) attrs)
        | Some _ | None -> None (* not reflected *)
      end
      else Some attrs
    in
    match reflection with
    | None -> None
    | Some attrs -> (
      let r = { r with attrs = Some attrs } in
      (* Sender-side policy, in the sender's configuration context. *)
      let ctx = Policy_eval.make_ctx ~self_ip:sender_ip sender.cfg in
      let pl_ok =
        match rev.bn_prefix_list_out with
        | Some pl -> Policy_eval.run_prefix_list_named ctx pl r.net
        | None -> true
      in
      if not pl_ok then None
      else
        match Policy_eval.run_optional ctx rev.bn_export_policy r with
        | Policy_eval.Denied -> None
        | Policy_eval.Accepted r ->
          let attrs = Route.get_attrs r in
          let attrs = Attrs.update ~weight:0 attrs in
          let attrs =
            if rev.bn_send_community then attrs else Attrs.update ~communities:[] attrs
          in
          let sender_as =
            Option.value rev.bn_local_as
              ~default:
                (match sender.cfg.Vi.bgp with
                 | Some b -> b.bp_as
                 | None -> 0)
          in
          let r =
            if not is_ibgp then
              (* eBGP: prepend our AS, set next hop to our address, reset
                 local preference for the receiver. *)
              { r with
                attrs =
                  Some
                    (Attrs.update ~as_path:(sender_as :: attrs.Attrs.as_path)
                       ~local_pref:100 ~originator_id:0 ~cluster_list:[] attrs);
                next_hop = Nh_ip sender_ip }
            else
              let nh =
                if rev.bn_next_hop_self || r.from_peer = 0 then Nh_ip sender_ip
                else r.next_hop
              in
              { r with attrs = Some attrs; next_hop = nh }
          in
          Some { r with from_peer = 0; from_rid = sender.router_id })

(* Import r at [receiver] over [s]; returns the route to merge. *)
let import_route options receiver (s : session) ~sender_rid r =
  let open Route in
  let my_as = local_as receiver in
  let attrs = Route.get_attrs r in
  let loop_count = List.length (List.filter (( = ) my_as) attrs.Attrs.as_path) in
  if (not s.ss_is_ibgp) && loop_count > s.ss_neighbor.Vi.bn_allowas_in then None
  else if s.ss_is_ibgp && attrs.Attrs.originator_id = receiver.router_id then None
  else if
    s.ss_is_ibgp
    &&
    let my_cluster =
      match receiver.cfg.Vi.bgp with
      | Some b -> Option.value b.bp_cluster_id ~default:receiver.router_id
      | None -> receiver.router_id
    in
    List.mem my_cluster attrs.Attrs.cluster_list
  then None
  else
    let ctx = Policy_eval.make_ctx ~self_ip:s.ss_local_ip receiver.cfg in
    let pl_ok =
      match s.ss_neighbor.Vi.bn_prefix_list_in with
      | Some pl -> Policy_eval.run_prefix_list_named ctx pl r.net
      | None -> true
    in
    if not pl_ok then None
    else
      match Policy_eval.run_optional ctx s.ss_neighbor.Vi.bn_import_policy r with
      | Policy_eval.Denied -> None
      | Policy_eval.Accepted r ->
        let proto = if s.ss_is_ibgp then Route_proto.Ibgp else Route_proto.Ebgp in
        Some
          { r with
            protocol = proto;
            admin = Route_proto.admin_distance proto;
            arrival = next_arrival options receiver;
            from_peer = s.ss_peer_ip;
            from_rid = sender_rid }

(* Locally originated BGP routes: network statements and redistribution. *)
let compute_local_bgp node =
  match node.cfg.Vi.bgp with
  | None -> []
  | Some bgp ->
    let ctx = Policy_eval.make_ctx node.cfg in
    let from_networks =
      List.filter_map
        (fun ((p, rm) : Prefix.t * string option) ->
          let best = Rib.best node.main_rib p in
          let igp =
            List.find_opt
              (fun (r : Route.t) -> not (Route_proto.is_bgp r.Route.protocol))
              best
          in
          Option.bind igp (fun (src : Route.t) ->
              let candidate =
                { (Route.bgp ~proto:Route_proto.Ibgp ~net:p ~nh:src.Route.next_hop
                     ~attrs:(Attrs.make ~weight:32768 ~origin:Vi.Origin_igp ())
                     ~arrival:0 ~from_peer:0 ~from_rid:node.router_id)
                  with Route.admin = 200 }
              in
              match Policy_eval.run_optional ctx rm candidate with
              | Policy_eval.Denied -> None
              | Policy_eval.Accepted r -> Some r))
        bgp.bp_networks
    in
    let from_redistribution =
      List.concat_map
        (fun (rd : Vi.redistribution) ->
          Rib.best_routes node.main_rib
          |> List.filter (fun (r : Route.t) ->
                 Route_proto.matches_source r.Route.protocol rd.rd_protocol)
          |> List.filter_map (fun (src : Route.t) ->
                 let candidate =
                   { (Route.bgp ~proto:Route_proto.Ibgp ~net:src.Route.net
                        ~nh:src.Route.next_hop
                        ~attrs:
                          (Attrs.make ~weight:32768 ~origin:Vi.Origin_incomplete
                             ~med:(Option.value rd.rd_metric ~default:src.Route.metric)
                             ())
                        ~arrival:0 ~from_peer:0 ~from_rid:node.router_id)
                     with Route.admin = 200; Route.tag = src.Route.tag }
                 in
                 match Policy_eval.run_optional ctx rd.rd_route_map candidate with
                 | Policy_eval.Denied -> None
                 | Policy_eval.Accepted r -> Some r))
        bgp.bp_redistribute
    in
    from_networks @ from_redistribution

let refresh_local_bgp node =
  let fresh = compute_local_bgp node in
  let gone =
    List.filter (fun old -> not (List.exists (Route.same old) fresh)) node.local_bgp
  in
  let added =
    List.filter (fun nw -> not (List.exists (Route.same nw) node.local_bgp)) fresh
  in
  List.iter (fun r -> Rib.withdraw node.bgp_rib r) gone;
  List.iter (fun r -> Rib.merge node.bgp_rib r) added;
  node.local_bgp <- fresh

(* Merge this node's BGP best-route delta into its main RIB (locally
   originated candidates stay out: the IGP source is already there). *)
let apply_bgp_delta_to_main node (adds, dels) =
  List.iter
    (fun (r : Route.t) -> if r.Route.from_peer <> 0 then Rib.withdraw node.main_rib r)
    dels;
  List.iter
    (fun (r : Route.t) -> if r.Route.from_peer <> 0 then Rib.merge node.main_rib r)
    adds

(* The canonical advertisement order: plain structural comparison with the
   arrival clock zeroed. Every advertisement path — publication deltas, the
   warm re-import loop, wire snapshots — sorts by this, so the candidate a
   receiver keeps when one peer advertises several variants of a net (iBGP
   multipath without next-hop rewrite) is a function of the sender's final
   best set, not of delivery history. *)
let canonical_route_order (a : Route.t) (b : Route.t) =
  compare { a with Route.arrival = 0 } { b with Route.arrival = 0 }

let publish options node ~round =
  if Rib.dirty node.bgp_rib then begin
    ignore options;
    let adds, dels = Rib.take_delta node.bgp_rib in
    if adds <> [] || dels <> [] then begin
      apply_bgp_delta_to_main node (adds, dels);
      (* Publish the full current variant list for every net the delta
         touched, canonically ordered. A receiver keeps one candidate per
         (net, peer), so a raw delta would leave its pick dependent on which
         variant happened to arrive last — and a withdrawal of one variant
         would clobber a survivor until that survivor next changed. *)
      let touched = Hashtbl.create 8 in
      List.iter
        (fun (r : Route.t) -> Hashtbl.replace touched r.Route.net ())
        (adds @ dels);
      let adds =
        Rib.best_routes node.bgp_rib
        |> List.filter (fun (r : Route.t) -> Hashtbl.mem touched r.Route.net)
        |> List.sort canonical_route_order
      in
      node.version <- node.version + 1;
      let pub =
        { pub_version = node.version; pub_round = round; pub_adds = adds;
          pub_dels = dels }
      in
      node.published <-
        pub :: (if List.length node.published >= 6 then List.filteri (fun i _ -> i < 5) node.published
                else node.published);
      node.published_this_round <- true
    end
  end

(* One processing turn for a node: pull deltas from every established
   session, run export+import+merge (the queue-free hybrid of §4.1.3),
   refresh local originations, publish this node's own delta. *)
let process_node options nodes ~round ~visible node =
  node.published_this_round <- false;
  refresh_local_bgp node;
  List.iter
    (fun s ->
      match s.ss_remote with
      | External _ -> () (* external announcements injected at session setup *)
      | Internal ridx ->
        let sender = nodes.(ridx) in
        let rev =
          match s.ss_reverse with
          | Some rn -> rn
          | None -> Vi.bgp_neighbor_default s.ss_local_ip 0
        in
        (* Oldest unconsumed publication first. *)
        let pubs =
          List.filter (fun p -> p.pub_version > s.ss_consumed && visible p)
            (List.rev sender.published)
        in
        List.iter
          (fun pub ->
            List.iter
              (fun (r : Route.t) ->
                (* A withdrawal removes whatever we hold from this peer. *)
                let dummy =
                  { r with Route.from_peer = s.ss_peer_ip;
                    protocol =
                      (if s.ss_is_ibgp then Route_proto.Ibgp else Route_proto.Ebgp) }
                in
                Rib.withdraw node.bgp_rib dummy)
              pub.pub_dels;
            (* Per-net resolution: the kept candidate is the last variant in
               the publication's canonical order that survives both export
               and import. A net whose every variant was denied is stale —
               withdraw it. (A denial must not clobber an accepted variant of
               the same net, or the outcome would depend on variant order.) *)
            let outcome : (Prefix.t, Route.t option) Hashtbl.t =
              Hashtbl.create 8
            in
            List.iter
              (fun (r : Route.t) ->
                let accepted =
                  match
                    export_route sender rev ~sender_ip:s.ss_peer_ip
                      ~receiver_ip:s.ss_local_ip ~is_ibgp:s.ss_is_ibgp r
                  with
                  | None -> None
                  | Some wire ->
                    import_route options node s ~sender_rid:sender.router_id wire
                in
                match accepted with
                | Some imported -> Hashtbl.replace outcome r.Route.net (Some imported)
                | None ->
                  if not (Hashtbl.mem outcome r.Route.net) then
                    Hashtbl.replace outcome r.Route.net None)
              pub.pub_adds;
            Hashtbl.iter
              (fun net kept ->
                match kept with
                | Some imported -> Rib.merge node.bgp_rib imported
                | None ->
                  (* Export or import denied for every variant: make sure
                     nothing stale remains. *)
                  let dummy =
                    Route.bgp
                      ~proto:
                        (if s.ss_is_ibgp then Route_proto.Ibgp else Route_proto.Ebgp)
                      ~net ~nh:Route.Nh_discard ~attrs:(Attrs.make ()) ~arrival:0
                      ~from_rid:0 ~from_peer:s.ss_peer_ip
                  in
                  Rib.withdraw node.bgp_rib dummy)
              outcome;
            s.ss_consumed <- pub.pub_version)
          pubs)
    node.sessions;
  publish options node ~round

(* Inject external announcements through the import pipeline. *)
(* External announcements, already through this node's import pipeline, in
   session/announcement order (the order their arrival clocks are stamped). *)
let external_imports options node =
  List.concat_map
    (fun s ->
      match s.ss_remote with
      | Internal _ -> []
      | External xp ->
        List.filter_map
          (fun (xa : Dp_env.external_announcement) ->
            let wire =
              Route.bgp ~proto:Route_proto.Ebgp ~net:xa.xa_prefix
                ~nh:(Route.Nh_ip s.ss_peer_ip)
                ~attrs:
                  (Attrs.make ~as_path:xa.xa_as_path ~med:xa.xa_med
                     ~communities:xa.xa_communities ~origin:Vi.Origin_igp ())
                ~arrival:0 ~from_peer:s.ss_peer_ip ~from_rid:s.ss_peer_ip
            in
            import_route options node s ~sender_rid:s.ss_peer_ip wire)
          xp.Dp_env.xp_announcements)
    node.sessions

let inject_external options node =
  List.iter (Rib.merge node.bgp_rib) (external_imports options node)

(* --- route-delta reuse machinery (incremental per-node warm starts) --- *)

(* The warm path bails out to a scratch [compute_component] whenever any of
   its preconditions fail mid-flight. *)
exception Fallback of string

(* A RIB's best sets as plain comparable data, arrival clocks zeroed (the
   clocks are the one legitimately timing-dependent field). *)
let rib_state rib =
  Rib.fold_best
    (fun p best acc ->
      List.rev_append
        (List.map (fun (r : Route.t) -> (p, { r with Route.arrival = 0 })) best)
        acc)
    rib []
  |> List.sort compare

(* Digest of everything that feeds a node's BGP phase from below: its pre-BGP
   main RIB (connected + static + OSPF) and the external announcements its
   configured peers would inject. A member whose digest equals the base's
   can only change through its internal BGP inputs — which the export-set
   comparison tracks. *)
let prebgp_digest env node =
  let externals =
    match node.cfg.Vi.bgp with
    | None -> []
    | Some b ->
      List.filter_map
        (fun (nbr : Vi.bgp_neighbor) ->
          Option.map (fun xp -> (nbr.Vi.bn_peer, xp)) (Dp_env.find_peer env nbr.Vi.bn_peer))
        b.bp_neighbors
  in
  Digest.to_hex (Digest.string (Marshal.to_string (rib_state node.main_rib, externals) []))

(* The wire list one internal session carries: the sender's current BGP best
   routes, canonically ordered, through its export pipeline, arrival-zeroed.
   The order is kept (no terminal sort): the receiver imports advertisements
   in exactly this sequence and keeps the last accepted variant per net, so
   two equal wire lists mean the receiver's inputs over this session — and
   hence its kept candidates — are unchanged. *)
let wire_routes ~sender ~rev ~sender_ip ~receiver_ip ~is_ibgp =
  Rib.best_routes sender.bgp_rib
  |> List.sort canonical_route_order
  |> List.filter_map (fun r ->
         export_route sender rev ~sender_ip ~receiver_ip ~is_ibgp r)
  |> List.map (fun (r : Route.t) -> { r with Route.arrival = 0 })

(* An arrival-decided best-set boundary: two eBGP candidates for the same
   prefix that tie on every decision step before the arrival clock, only one
   of which made the best set (covers multipath-cap truncation too, since a
   truncated equal candidate differs in membership from an admitted one).
   Only eBGP pairs qualify — the oldest-path step skips iBGP ties, which the
   router-id and peer-address steps then decide deterministically. *)
let node_ambiguous node =
  let cost ip = igp_cost node ip in
  Rib.fold_entries
    (fun _p cands best acc ->
      acc
      || List.exists
           (fun a ->
             List.exists
               (fun b ->
                 a != b
                 && a.Route.protocol = Route_proto.Ebgp
                 && Cmp.bgp_pre_arrival_equal ~igp_cost:cost a b
                 && List.memq a best <> List.memq b best)
               cands)
           cands)
    node.bgp_rib false

(* A fingerprint of global BGP state (arrival clocks ignored), used to detect
   oscillation: a repeated state with pending changes means a cycle. *)
let fingerprint nodes =
  let h = ref 0 in
  Array.iter
    (fun node ->
      Rib.fold_best
        (fun p best () ->
          List.iter
            (fun (r : Route.t) ->
              h := !h lxor Hashtbl.hash (p, { r with Route.arrival = 0 }))
            best)
        node.bgp_rib ())
    nodes;
  !h

let snapshot_ribs nodes =
  Array.map
    (fun node ->
      List.map (fun (r : Route.t) -> { r with Route.arrival = 0 })
        (Rib.best_routes node.main_rib))
    nodes

(* Run the BGP exchange to a fixed point. Returns (rounds, converged,
   oscillated, fuel_exhausted). [skip] excludes quarantined nodes;
   [on_fault] quarantines a node whose processing raises — the run keeps
   going for everyone else. [options.max_rounds] is the fuel budget: when it
   runs out the result is a well-formed non-converged state, not a hang. *)
let run_bgp options nodes ~skip ~on_fault =
  let safe ~round node f =
    if not (skip node) then
      try f () with exn -> on_fault ~round node (Printexc.to_string exn)
  in
  let n = Array.length nodes in
  (* Schedule: color the internal-session graph so that no two adjacent nodes
     are in the same class (Colored), or put everyone in one class
     (Lockstep). *)
  let edges =
    Array.to_list nodes
    |> List.concat_map (fun node ->
           List.filter_map
             (fun s ->
               match s.ss_remote with
               | Internal r -> Some (node.idx, r)
               | External _ -> None)
             node.sessions)
  in
  let classes =
    match options.schedule with
    | Colored -> Coloring.classes (Coloring.greedy ~n edges)
    | Lockstep -> [| List.init n (fun i -> i) |]
  in
  (* Initial state: local originations + external announcements, then a first
     publication from everyone. *)
  Array.iter (fun node -> safe ~round:0 node (fun () -> refresh_local_bgp node)) nodes;
  Array.iter (fun node -> safe ~round:0 node (fun () -> inject_external options node)) nodes;
  Array.iter (fun node -> safe ~round:0 node (fun () -> publish options node ~round:0)) nodes;
  let seen_states = Hashtbl.create 64 in
  let rounds = ref 0 and converged = ref false and oscillated = ref false in
  while (not !converged) && (not !oscillated) && !rounds < options.max_rounds do
    incr rounds;
    let round = !rounds in
    let visible =
      match options.schedule with
      | Colored -> fun _ -> true
      | Lockstep -> fun p -> p.pub_round < round
    in
    let snapshot = if options.full_rib_compare then Some (snapshot_ribs nodes) else None in
    Array.iter
      (fun cls ->
        let members = Array.of_list cls in
        (* Same-color nodes share no session, so they can proceed in
           parallel; results are deterministic because each node only
           mutates its own state. Faults are collected and applied
           sequentially after the class so quarantine bookkeeping never
           races across domains. *)
        let faults =
          Par.map ?pool:options.pool ~domains:options.domains
            (fun i ->
              let nd = nodes.(i) in
              if skip nd then None
              else
                match process_node options nodes ~round ~visible nd with
                | () -> None
                | exception exn -> Some (i, Printexc.to_string exn))
            members
        in
        Array.iter
          (function
            | None -> ()
            | Some (i, msg) -> on_fault ~round nodes.(i) msg)
          faults)
      classes;
    let any_published =
      Array.exists (fun node -> node.published_this_round) nodes
    in
    (match snapshot with
     | Some before ->
       (* The classic convergence check: deep-compare previous and current
          RIB state. Used only by the ablation benchmark. *)
       let after = snapshot_ribs nodes in
       ignore (before = after)
     | None -> ());
    if not any_published then converged := true
    else begin
      (* The fingerprint omits in-flight publications, so a single repeat is
         not conclusive; require the same state three times past a warmup
         before declaring an oscillation. *)
      let fp = fingerprint nodes in
      let count = 1 + Option.value (Hashtbl.find_opt seen_states fp) ~default:0 in
      Hashtbl.replace seen_states fp count;
      if count >= 3 && round > 8 then oscillated := true
    end
  done;
  let fuel_exhausted =
    !rounds >= options.max_rounds && (not !converged) && not !oscillated
  in
  if fuel_exhausted then oscillated := true;
  (!rounds, !converged, !oscillated, fuel_exhausted)

(* --- dependency map and component partition --- *)

(* The explicit dependency map (ISSUE 4): a route computed on one device can
   influence another device only along (a) an L3 adjacency (connected
   subnets, OSPF adjacency, FIB next-hop resolution) or (b) a BGP session,
   whose peer is resolved exactly the way session establishment resolves it
   ([L3.owner_of_ip], which also covers multihop/iBGP peerings).
   Redistribution is node-local — one protocol feeding another on the same
   device — so it adds no cross-node edge beyond (a)/(b). The relation is
   symmetric (sessions and adjacencies are bidirectional), so influence
   closure = connected components of this graph. *)
let dependency_edges ~topo (live : Vi.t list) =
  let bgp =
    List.concat_map
      (fun (cfg : Vi.t) ->
        match cfg.Vi.bgp with
        | None -> []
        | Some b ->
          List.filter_map
            (fun (nbr : Vi.bgp_neighbor) ->
              match L3.owner_of_ip topo nbr.Vi.bn_peer with
              | Some ep when ep.L3.ep_node <> cfg.Vi.hostname ->
                Some (cfg.Vi.hostname, ep.L3.ep_node)
              | Some _ | None -> None)
            b.bp_neighbors)
      live
  in
  L3.node_edges topo @ bgp

(* Partition [live] into dependency components: deterministic — components
   ordered by first appearance in [live], members in [live] order. *)
let component_partition ~topo (live : Vi.t list) =
  let arr = Array.of_list live in
  let n = Array.length arr in
  let idx = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i (cfg : Vi.t) ->
      if not (Hashtbl.mem idx cfg.Vi.hostname) then
        Hashtbl.add idx cfg.Vi.hostname i)
    arr;
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun (a, b) ->
      match (Hashtbl.find_opt idx a, Hashtbl.find_opt idx b) with
      | Some ia, Some ib -> union ia ib
      | _ -> ())
    (dependency_edges ~topo live);
  let buckets = Hashtbl.create 16 and roots = ref [] in
  Array.iteri
    (fun i cfg ->
      let r = find i in
      match Hashtbl.find_opt buckets r with
      | None ->
        Hashtbl.add buckets r (ref [ cfg ]);
        roots := r :: !roots
      | Some members -> members := cfg :: !members)
    arr;
  List.rev_map (fun r -> List.rev !(Hashtbl.find buckets r)) !roots

let empty_rib () =
  Rib.create ~prefer:Cmp.main_prefer ~multipath_equal:Cmp.main_multipath_equal
    ~max_paths:1 ()

let empty_result ~topo name =
  let main = empty_rib () in
  { nr_node = name; nr_main = main; nr_bgp = empty_rib (); nr_ospf = None;
    nr_fib = Fib.of_rib ~node:name ~topo main }

(* Pre-flight: probe each config's topology and protocol initialization in
   isolation. A config that cannot even initialize is quarantined up front
   instead of poisoning the rest of the snapshot. Deterministic per config,
   so an unchanged config always gets the same verdict across snapshots. *)
let preflight ~env configs =
  let dc = Diag.collector () in
  let quarantine_tbl : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let quarantine ~node reason =
    if not (Hashtbl.mem quarantine_tbl node) then begin
      Hashtbl.replace quarantine_tbl node reason;
      Diag.add dc
        (Diag.error ~node ~phase:Diag.Dataplane ~code:Diag.code_node_quarantined
           reason)
    end
  in
  List.iter
    (fun (cfg : Vi.t) ->
      let probe what f =
        if not (Hashtbl.mem quarantine_tbl cfg.Vi.hostname) then
          try ignore (f ())
          with exn ->
            quarantine ~node:cfg.Vi.hostname
              (Printf.sprintf "%s raised: %s" what (Printexc.to_string exn))
      in
      probe "topology inference" (fun () -> L3.infer [ cfg ]);
      probe "ospf initialization" (fun () -> Ospf_engine.interface_settings env cfg);
      probe "node initialization" (fun () -> make_node 0 cfg))
    configs;
  let live =
    List.filter
      (fun (c : Vi.t) -> not (Hashtbl.mem quarantine_tbl c.Vi.hostname))
      configs
  in
  let quarantined =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) quarantine_tbl []
  in
  (live, quarantined, Diag.to_list dc)

let infer_topology dc live =
  try L3.infer live
  with exn ->
    Diag.add dc
      (Diag.error ~phase:Diag.Dataplane ~code:Diag.code_topology_failed
         (Printf.sprintf "topology inference raised; continuing without links: %s"
            (Printexc.to_string exn)));
    L3.infer []

(* --- per-component simulation --- *)

(* Phases 1–3, shared verbatim by the scratch and warm paths: connected
   routes, the recursive static fixed point, OSPF, then the statics/OSPF
   re-resolution dance (statics may resolve through OSPF and change the
   redistributable set). [isolate] is the caller's fault policy; [run_spf]
   maps prepared SPF inputs to per-node RIBs — the scratch path runs SPF,
   the warm path substitutes the base's RIBs when the input digest matches.
   Returns the digest of the last SPF inputs used. *)
let prebgp_phases ~env ~topo ~live ~nodes ~node_index ~isolate ~is_quarantined
    ~run_spf ~on_ospf_error =
  (* Phase 1: connected and local routes. *)
  Array.iter
    (fun node ->
      isolate node "connected-route computation" (fun () ->
          List.iter (fun r -> Rib.merge node.main_rib r) (connected_routes env node.cfg)))
    nodes;
  (* Phase 2: static routes (recursive resolution to a fixed point). *)
  let rec statics_fixpoint guard =
    let changed = ref false in
    Array.iter
      (fun node ->
        isolate node "static-route activation" (fun () ->
            if activate_statics env node then changed := true))
      nodes;
    if !changed && guard > 0 then statics_fixpoint (guard - 1)
  in
  statics_fixpoint 16;
  (* Phase 3: OSPF converges before BGP begins (the IGP-first ordering). A
     crash in the global SPF computation degrades to "no OSPF routes" with an
     Error diag rather than aborting the snapshot. *)
  let last_digest = ref "" in
  let run_ospf () =
    let redistributable name =
      match Hashtbl.find_opt node_index name with
      | None -> []
      | Some i ->
        let node = nodes.(i) in
        if is_quarantined node.cfg.Vi.hostname then []
        else Rib.best_routes node.static_rib @ connected_routes env node.cfg
    in
    let ospf_configs =
      List.filter (fun (c : Vi.t) -> not (is_quarantined c.Vi.hostname)) live
    in
    match
      let inputs =
        Ospf_engine.prepare ~env ~topo ~configs:ospf_configs ~redistributable ()
      in
      last_digest := Ospf_engine.digest inputs;
      run_spf inputs
    with
    | ribs ->
      Array.iter
        (fun node ->
          isolate node "ospf route application" (fun () ->
              match Hashtbl.find_opt ribs node.cfg.Vi.hostname with
              | None -> ()
              | Some rib ->
                Rib.withdraw_where node.main_rib (fun r ->
                    Route_proto.is_ospf r.Route.protocol);
                node.ospf_rib <- Some rib;
                List.iter (fun r -> Rib.merge node.main_rib r) (Rib.best_routes rib)))
        nodes
    | exception exn -> on_ospf_error exn
  in
  run_ospf ();
  (* Statics may resolve through OSPF; if that changes the redistributable
     set, recompute OSPF once more. *)
  let statics_changed = ref false in
  Array.iter
    (fun node ->
      isolate node "static-route activation" (fun () ->
          if activate_statics env node then statics_changed := true))
    nodes;
  if !statics_changed then begin
    statics_fixpoint 16;
    run_ospf ()
  end;
  !last_digest

(* Final-state export snapshots plus the delta-safety verdict (see
   [comp_result]): every internal session's wire list, receiver-keyed, and
   whether any node's best-set boundary is arrival-decided. *)
let export_snapshots nodes =
  let entries = ref [] and safe = ref true in
  Array.iter
    (fun node ->
      List.iter
        (fun s ->
          match s.ss_remote with
          | External _ -> ()
          | Internal ridx ->
            let sender = nodes.(ridx) in
            let rev =
              match s.ss_reverse with
              | Some rn -> rn
              | None -> Vi.bgp_neighbor_default s.ss_local_ip 0
            in
            let wire =
              wire_routes ~sender ~rev ~sender_ip:s.ss_peer_ip
                ~receiver_ip:s.ss_local_ip ~is_ibgp:s.ss_is_ibgp
            in
            entries :=
              { ex_receiver = node.cfg.Vi.hostname; ex_peer_ip = s.ss_peer_ip;
                ex_local_ip = s.ss_local_ip; ex_is_ibgp = s.ss_is_ibgp;
                ex_sender = sender.cfg.Vi.hostname; ex_wire = wire }
              :: !entries)
        node.sessions)
    nodes;
  Array.iter
    (fun node ->
      if node_ambiguous node then safe := false)
    nodes;
  let entries =
    List.sort
      (fun a b -> compare (a.ex_receiver, a.ex_peer_ip) (b.ex_receiver, b.ex_peer_ip))
      !entries
  in
  (entries, !safe)

(* Simulate one dependency component to its fixed point. [topo] is the
   global topology; by construction every topology- or session-relevant
   query made here resolves inside the component (or to the external
   environment), so per-component execution reaches the same fixed point the
   former whole-snapshot simulation did. *)
let compute_component ~options ~env ~topo (comp : Vi.t list) =
  let dc = Diag.collector () in
  let quarantine_tbl : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let quarantine ~node reason =
    if not (Hashtbl.mem quarantine_tbl node) then begin
      Hashtbl.replace quarantine_tbl node reason;
      Diag.add dc
        (Diag.error ~node ~phase:Diag.Dataplane ~code:Diag.code_node_quarantined
           reason)
    end
  in
  let is_quarantined name = Hashtbl.mem quarantine_tbl name in
  let live = comp in
  let nodes =
    let acc = ref [] in
    List.iter
      (fun (cfg : Vi.t) ->
        match make_node (List.length !acc) cfg with
        | node -> acc := node :: !acc
        | exception exn ->
          quarantine ~node:cfg.Vi.hostname
            (Printf.sprintf "node initialization raised: %s" (Printexc.to_string exn)))
      live;
    Array.of_list (List.rev !acc)
  in
  let node_index = Hashtbl.create 64 in
  Array.iter (fun node -> Hashtbl.replace node_index node.cfg.Vi.hostname node.idx) nodes;
  (* Quarantining a node mid-simulation withdraws everything it holds and
     publishes the withdrawals, so peers drop state learned from it; its
     sessions are reported down with the reason. *)
  let quarantine_node ~round node reason =
    quarantine ~node:node.cfg.Vi.hostname reason;
    (try Rib.withdraw_where node.bgp_rib (fun _ -> true) with _ -> ());
    (try Rib.withdraw_where node.main_rib (fun _ -> true) with _ -> ());
    (try Rib.withdraw_where node.static_rib (fun _ -> true) with _ -> ());
    node.ospf_rib <- None;
    node.local_bgp <- [];
    (try publish options node ~round with _ -> ());
    node.down_sessions <-
      node.down_sessions
      @ List.map (fun s -> (s.ss_neighbor, "node quarantined")) node.sessions;
    node.sessions <- []
  in
  let skip node = is_quarantined node.cfg.Vi.hostname in
  let on_fault ~round node msg =
    quarantine_node ~round node (Printf.sprintf "quarantined: %s" msg)
  in
  let isolate node what f =
    if not (skip node) then
      try f ()
      with exn ->
        on_fault ~round:0 node
          (Printf.sprintf "%s raised: %s" what (Printexc.to_string exn))
  in
  let ospf_digest =
    prebgp_phases ~env ~topo ~live ~nodes ~node_index ~isolate ~is_quarantined
      ~run_spf:(fun inputs ->
        Ospf_engine.run ?pool:options.pool ~domains:options.domains inputs)
      ~on_ospf_error:(fun exn ->
        Diag.add dc
          (Diag.error ~phase:Diag.Dataplane ~code:Diag.code_ospf_failed
             (Printf.sprintf
                "OSPF computation raised; continuing without OSPF routes: %s"
                (Printexc.to_string exn))))
  in
  (* The pre-BGP state digest each member enters Phase 4 with — the warm
     path's seed test (a member whose digest changed must be re-simulated). *)
  let prebgp =
    Array.to_list nodes
    |> List.map (fun node ->
           ( node.cfg.Vi.hostname,
             try prebgp_digest env node with _ -> "" ))
  in
  (* Phase 4: BGP, with session re-evaluation at key points (§4.1.1). The
     outer loop carries an explicit fuel budget: exhausting it yields a
     well-formed converged=false result with a diag instead of spinning. *)
  let peer_quarantined ridx = is_quarantined nodes.(ridx).cfg.Vi.hostname in
  let session_signature () =
    Array.to_list nodes
    |> List.concat_map (fun node ->
           List.map (fun s -> (node.cfg.Vi.hostname, s.ss_peer_ip)) node.sessions)
  in
  let rounds_total = ref 0 and converged = ref true and oscillated = ref false in
  let outer = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !outer < options.outer_fuel do
    incr outer;
    let before = if !outer = 1 then [] else session_signature () in
    Array.iter
      (fun node ->
        if skip node then begin
          node.down_sessions <-
            (match node.cfg.Vi.bgp with
             | Some b ->
               List.map (fun (nbr : Vi.bgp_neighbor) -> (nbr, "node quarantined"))
                 b.bp_neighbors
             | None -> []);
          node.sessions <- []
        end
        else
          try establish_sessions ~peer_quarantined env topo nodes node_index node
          with exn ->
            on_fault ~round:0 node
              (Printf.sprintf "session establishment raised: %s"
                 (Printexc.to_string exn)))
      nodes;
    let after = session_signature () in
    if !outer > 1 && before = after then continue_outer := false
    else begin
      (* Drop state learned over sessions that no longer exist. *)
      Array.iter
        (fun node ->
          isolate node "stale-session withdrawal" (fun () ->
              let live = List.map (fun s -> s.ss_peer_ip) node.sessions in
              Rib.withdraw_where node.bgp_rib (fun r ->
                  r.Route.from_peer <> 0 && not (List.mem r.Route.from_peer live));
              Rib.withdraw_where node.main_rib (fun r ->
                  Route_proto.is_bgp r.Route.protocol
                  && r.Route.from_peer <> 0
                  && not (List.mem r.Route.from_peer live));
              ignore (Rib.take_delta node.bgp_rib)))
        nodes;
      let rounds, conv, osc, fuel = run_bgp options nodes ~skip ~on_fault in
      rounds_total := !rounds_total + rounds;
      converged := conv;
      oscillated := osc;
      if fuel then
        Diag.add dc
          (Diag.error ~phase:Diag.Dataplane ~code:Diag.code_bgp_fuel_exhausted
             (Printf.sprintf "BGP did not converge within the %d-round fuel budget"
                options.max_rounds))
      else if osc then
        Diag.add dc
          (Diag.warn ~phase:Diag.Dataplane ~code:Diag.code_oscillation
             (Printf.sprintf "BGP oscillation detected after %d rounds" rounds));
      if osc then continue_outer := false
    end
  done;
  if !continue_outer && !outer >= options.outer_fuel then begin
    converged := false;
    Diag.add dc
      (Diag.error ~phase:Diag.Dataplane ~code:Diag.code_outer_fuel_exhausted
         (Printf.sprintf
            "session re-evaluation did not stabilize within the %d-pass fuel budget"
            options.outer_fuel))
  end;
  (* Phase 5: FIBs. Nodes quarantined during this component's simulation
     appear with empty tables so lookups stay total. *)
  let results = ref [] in
  Array.iter
    (fun node ->
      let name = node.cfg.Vi.hostname in
      let fib =
        try Fib.of_rib ~node:name ~topo node.main_rib
        with exn ->
          Diag.add dc
            (Diag.error ~node:name ~phase:Diag.Dataplane ~code:Diag.code_fib_failed
               (Printf.sprintf "FIB resolution raised: %s" (Printexc.to_string exn)));
          Fib.of_rib ~node:name ~topo (empty_rib ())
      in
      results :=
        (name,
         { nr_node = name; nr_main = node.main_rib;
           nr_bgp = node.bgp_rib; nr_ospf = node.ospf_rib; nr_fib = fib })
        :: !results)
    nodes;
  List.iter
    (fun (cfg : Vi.t) ->
      let name = cfg.Vi.hostname in
      if is_quarantined name && not (List.mem_assoc name !results) then
        results := (name, empty_result ~topo name) :: !results)
    comp;
  let sessions =
    Array.to_list nodes
    |> List.concat_map (fun node ->
           List.map
             (fun s ->
               { sr_node = node.cfg.Vi.hostname; sr_peer = s.ss_peer_ip;
                 sr_remote_node =
                   (match s.ss_remote with
                    | Internal i -> Some nodes.(i).cfg.Vi.hostname
                    | External _ -> None);
                 sr_is_ibgp = s.ss_is_ibgp; sr_established = true;
                 sr_reason = None })
             node.sessions
           @ List.map
               (fun ((nbr : Vi.bgp_neighbor), reason) ->
                 { sr_node = node.cfg.Vi.hostname; sr_peer = nbr.bn_peer;
                   sr_remote_node = None; sr_is_ibgp = false;
                   sr_established = false; sr_reason = Some reason })
               node.down_sessions)
  in
  let exports, delta_safe =
    try export_snapshots nodes with _ -> ([], false)
  in
  { cr_members = List.map (fun (c : Vi.t) -> c.Vi.hostname) comp;
    cr_results = List.rev !results;
    cr_sessions = sessions;
    cr_converged = !converged;
    cr_oscillated = !oscillated;
    cr_rounds = !rounds_total;
    cr_outer = !outer;
    cr_quarantined =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) quarantine_tbl [];
    cr_diags = Diag.to_list dc;
    cr_prebgp = prebgp;
    cr_exports = exports;
    cr_ospf_digest = ospf_digest;
    cr_delta_safe = delta_safe }

(* --- warm per-node re-simulation: the route-delta worklist --- *)

type warm_stats = { ws_simulated : int; ws_converged_early : int }

(* Re-simulate a dirty component starting from [base_cr]'s converged fixed
   point, touching only the nodes the edit actually disturbs.

   The pre-BGP phases (connected, statics, OSPF — with SPF reused when its
   input digest matches) run fresh for every member; they are cheap and their
   digests drive the seed test. The BGP phase then runs as a worklist seeded
   with the changed nodes, every member whose pre-BGP state changed, and the
   configured session partners of changed nodes (session viability and TCP
   ACL checks read the partner's config). Each dequeued node is re-derived
   from its neighbors' current advertisements — clean neighbors still expose
   the base fixed point — and a neighbor is enqueued only when the wire set
   it receives actually changes (or when this node's main RIB changed, since
   multihop session viability reads it). Propagation therefore dies out at
   the first ring of undisturbed fixed point.

   Bit-identity with a scratch run holds because (a) the compared surface is
   arrival-free, (b) advertisement is canonical — publication deltas, the
   re-import loop here and the wire snapshots all order variants by
   [canonical_route_order], so a receiver's kept candidate per (net, peer)
   is a function of the sender's final best set, not of delivery history,
   (c) the base was delta-safe (no arrival-decided best-set boundary), and
   (d) that safety condition is re-checked on every re-simulated node, with
   [Fallback] to the scratch path when it fails. *)
let warm_component_exn ~options ~env ~topo ~base_cr ~changed_tbl (comp : Vi.t list) =
  if not base_cr.cr_converged then raise (Fallback "base component not converged");
  if base_cr.cr_oscillated then raise (Fallback "base component oscillated");
  if base_cr.cr_quarantined <> [] then raise (Fallback "base component has quarantines");
  if base_cr.cr_diags <> [] then raise (Fallback "base component has diagnostics");
  if not base_cr.cr_delta_safe then
    raise (Fallback "base fixed point is timing-dependent");
  let nodes = Array.of_list (List.mapi make_node comp) in
  let n = Array.length nodes in
  let node_index = Hashtbl.create 64 in
  Array.iter (fun node -> Hashtbl.replace node_index node.cfg.Vi.hostname node.idx) nodes;
  let base_nr =
    Array.map
      (fun node ->
        match List.assoc_opt node.cfg.Vi.hostname base_cr.cr_results with
        | Some nr -> nr
        | None -> raise (Fallback "member missing from base results"))
      nodes
  in
  let isolate _node what f =
    try f ()
    with exn ->
      raise (Fallback (Printf.sprintf "%s raised: %s" what (Printexc.to_string exn)))
  in
  let ospf_digest =
    prebgp_phases ~env ~topo ~live:comp ~nodes ~node_index ~isolate
      ~is_quarantined:(fun _ -> false)
      ~run_spf:(fun inputs ->
        let d = Ospf_engine.digest inputs in
        if d = base_cr.cr_ospf_digest then begin
          (* unchanged SPF inputs: the base per-node OSPF RIBs are exactly
             what a fresh run would produce *)
          let tbl = Hashtbl.create (max 16 n) in
          Array.iteri
            (fun i node ->
              match base_nr.(i).nr_ospf with
              | Some rib -> Hashtbl.replace tbl node.cfg.Vi.hostname rib
              | None -> ())
            nodes;
          tbl
        end
        else Ospf_engine.run ?pool:options.pool ~domains:options.domains inputs)
      ~on_ospf_error:(fun exn -> raise (Fallback (Printexc.to_string exn)))
  in
  let prebgp =
    Array.map (fun node -> (node.cfg.Vi.hostname, prebgp_digest env node)) nodes
  in
  (* Configured session partners (both directions), from the new configs. *)
  let partners = Array.make n [] in
  Array.iteri
    (fun i node ->
      match node.cfg.Vi.bgp with
      | None -> ()
      | Some b ->
        List.iter
          (fun (nbr : Vi.bgp_neighbor) ->
            match L3.owner_of_ip topo nbr.Vi.bn_peer with
            | Some ep -> (
              match Hashtbl.find_opt node_index ep.L3.ep_node with
              | Some j when j <> i ->
                if not (List.mem j partners.(i)) then partners.(i) <- j :: partners.(i);
                if not (List.mem i partners.(j)) then partners.(j) <- i :: partners.(j)
              | Some _ | None -> ())
            | None -> ())
          b.bp_neighbors)
    nodes;
  let queue = Queue.create () in
  let in_queue = Array.make n false in
  let materialized = Array.make n false in
  let early = Array.make n false in
  let enqueue i =
    if not in_queue.(i) then begin
      in_queue.(i) <- true;
      Queue.add i queue
    end
  in
  (* Seeds: changed nodes, members whose pre-BGP state changed, and the
     session partners of changed nodes (configured in either snapshot —
     base sessions cover deleted neighbor stanzas). *)
  Array.iteri
    (fun i node ->
      let name = node.cfg.Vi.hostname in
      let changed = Hashtbl.mem changed_tbl name in
      let pre_same =
        match List.assoc_opt name base_cr.cr_prebgp with
        | Some d -> d <> "" && d = snd prebgp.(i)
        | None -> false
      in
      if changed || not pre_same then enqueue i;
      if changed then List.iter enqueue partners.(i))
    nodes;
  List.iter
    (fun sr ->
      match sr.sr_remote_node with
      | None -> ()
      | Some remote -> (
        let wake a b =
          if Hashtbl.mem changed_tbl a then
            Option.iter enqueue (Hashtbl.find_opt node_index b)
        in
        wake sr.sr_node remote;
        wake remote sr.sr_node))
    base_cr.cr_sessions;
  (* Every read of a not-yet-materialized node goes to the base fixed point:
     [view] aliases the base RIBs until the node is first dequeued. *)
  let view =
    Array.mapi
      (fun i node ->
        { node with main_rib = base_nr.(i).nr_main; bgp_rib = base_nr.(i).nr_bgp })
      nodes
  in
  let base_main_state = Array.map (fun nr -> rib_state nr.nr_main) base_nr in
  (* Last main-RIB state each node propagated from: partners are woken on a
     transition, not on every visit while the state differs from base (that
     would cycle forever in a dense session mesh). *)
  let last_main_state = Array.copy base_main_state in
  (* The live wire table, seeded from the base snapshot and refreshed as
     nodes re-simulate. Entries are private copies: [ex_wire] is mutable and
     the base's records must stay pristine. *)
  let exports : (string * Ipv4.t, export_entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace exports (e.ex_receiver, e.ex_peer_ip) { e with ex_wire = e.ex_wire })
    base_cr.cr_exports;
  let reverse_of sender (s : session) =
    match s.ss_reverse with
    | Some rn -> rn
    | None ->
      ignore sender;
      Vi.bgp_neighbor_default s.ss_local_ip 0
  in
  (* Last BGP best-set state each node's outgoing wires were computed from:
     a dequeued node re-exports (sender-side policy runs) only when its BGP
     state actually moved, not on every visit. *)
  let last_bgp_state = Array.map (fun nr -> rib_state nr.nr_bgp) base_nr in
  let step_count = ref 0 in
  (* Keep the wire table's entry set in sync with [i]'s live sessions:
     entries are created for new sessions (computing their wire once from the
     sender's current view) and dropped for sessions that disappeared.
     Surviving entries are already current — every sender rewrites its
     entries whenever its own BGP state transitions. *)
  let sync_incoming i =
    let nd = nodes.(i) in
    let name = nd.cfg.Vi.hostname in
    List.iter
      (fun s ->
        match s.ss_remote with
        | External _ -> ()
        | Internal ridx ->
          let sender = view.(ridx) in
          let current e =
            e.ex_local_ip = s.ss_local_ip
            && e.ex_is_ibgp = s.ss_is_ibgp
            && e.ex_sender = sender.cfg.Vi.hostname
          in
          (match Hashtbl.find_opt exports (name, s.ss_peer_ip) with
           | Some e when current e -> ()
           | Some _ | None ->
             let rev = reverse_of sender s in
             Hashtbl.replace exports (name, s.ss_peer_ip)
               { ex_receiver = name; ex_peer_ip = s.ss_peer_ip;
                 ex_local_ip = s.ss_local_ip; ex_is_ibgp = s.ss_is_ibgp;
                 ex_sender = sender.cfg.Vi.hostname;
                 ex_wire =
                   wire_routes ~sender ~rev ~sender_ip:s.ss_peer_ip
                     ~receiver_ip:s.ss_local_ip ~is_ibgp:s.ss_is_ibgp }))
      nd.sessions;
    let live =
      List.filter_map
        (fun s ->
          match s.ss_remote with
          | Internal _ -> Some s.ss_peer_ip
          | External _ -> None)
        nd.sessions
    in
    let stale =
      Hashtbl.fold
        (fun (r, peer) _ acc ->
          if r = name && not (List.mem peer live) then (r, peer) :: acc else acc)
        exports []
    in
    List.iter (Hashtbl.remove exports) stale
  in
  (* One node's re-derivation: wipe its BGP state and rebuild it from its
     neighbors' cached wire entries (the wires hold exactly what the scratch
     export pipeline put there, in canonical order, and [import_route]
     ignores the incoming arrival clock — so importing a cached wire is the
     import half of the scratch exchange, without re-running the sender-side
     export policies). Iterates because local originations, import best
     selection (IGP cost) and session viability read the node's own main.
     Returns the settled (main, bgp) states. *)
  (* Receiver-side import results, cached per wire entry. [import_route] is a
     pure function of (receiver config, session, sender router-id, wire
     route) apart from the arrival stamp, and a wire list is replaced
     wholesale whenever it is recomputed — so physical identity of [ex_wire]
     (plus the sender rid) keys the policy evaluation exactly. Accepted
     routes are cached arrival-free and restamped at merge time, in the same
     session/route order the direct import loop would stamp them. *)
  let import_cache : (string * Ipv4.t, Route.t list * int * Route.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  let step i =
    if not materialized.(i) then begin
      materialized.(i) <- true;
      view.(i) <- nodes.(i)
    end;
    let nd = nodes.(i) in
    let name = nd.cfg.Vi.hostname in
    let cur = ref (rib_state nd.main_rib, rib_state nd.bgp_rib) in
    let stable = ref false and guard = ref 8 in
    while not !stable do
      if !guard = 0 then
        raise (Fallback "node did not stabilize under warm re-simulation");
      decr guard;
      incr step_count;
      establish_sessions env topo view node_index nd;
      sync_incoming i;
      (* Gather the node's full BGP candidate list in the order a wipe
         followed by the scratch merge sequence would produce it — local
         originations, external announcements, then each session's cached
         wire through the (cached) import pipeline — and rebuild the rib in
         one [Rib.reload] pass. *)
      nd.local_bgp <- compute_local_bgp nd;
      let acc = ref (List.rev nd.local_bgp) in
      List.iter
        (fun r -> acc := r :: !acc)
        (external_imports options nd);
      List.iter
        (fun s ->
          match s.ss_remote with
          | External _ -> ()
          | Internal ridx -> (
            match Hashtbl.find_opt exports (name, s.ss_peer_ip) with
            | None -> ()
            | Some e ->
              let sender_rid = view.(ridx).router_id in
              let imported =
                match Hashtbl.find_opt import_cache (name, s.ss_peer_ip) with
                | Some (w, rid, imp) when w == e.ex_wire && rid = sender_rid -> imp
                | _ ->
                  let imp =
                    List.filter_map
                      (fun w ->
                        Option.map
                          (fun (r : Route.t) -> { r with Route.arrival = 0 })
                          (import_route options nd s ~sender_rid w))
                      e.ex_wire
                  in
                  Hashtbl.replace import_cache (name, s.ss_peer_ip)
                    (e.ex_wire, sender_rid, imp);
                  imp
              in
              List.iter
                (fun (r : Route.t) ->
                  acc := { r with Route.arrival = next_arrival options nd } :: !acc)
                imported))
        nd.sessions;
      Rib.reload nd.bgp_rib (List.rev !acc);
      (* Rebuild the main RIB the same wholesale way: every non-BGP-learned
         candidate survives as-is, the BGP portion is this rib's fresh best
         set (arrival-zeroed, locally originated candidates stay out) —
         exactly what the scratch delta application converges to. *)
      let retained_rev =
        Rib.fold_entries
          (fun _ cands _ acc ->
            List.fold_left
              (fun acc (c : Route.t) ->
                if Route_proto.is_bgp c.Route.protocol && c.Route.from_peer <> 0
                then acc
                else c :: acc)
              acc cands)
          nd.main_rib []
      in
      let bgp_into_main =
        List.filter_map
          (fun (r : Route.t) ->
            if r.Route.from_peer <> 0 then Some { r with Route.arrival = 0 }
            else None)
          (Rib.best_routes nd.bgp_rib)
      in
      Rib.reload nd.main_rib (retained_rev @ bgp_into_main);
      let now = (rib_state nd.main_rib, rib_state nd.bgp_rib) in
      stable := now = !cur;
      cur := now
    done;
    !cur
  in
  (* The delta test: when this node's BGP state moved (or its config changed,
     which can alter exports with the state unchanged), recompute its
     outgoing wires and enqueue exactly the receivers whose inputs changed; a
     main-RIB transition additionally wakes the configured partners (their
     session viability reads it). Returns true when nothing downstream was
     disturbed and the node landed back on its base fixed point. *)
  let propagate i (cur_main, cur_bgp) =
    let nd = nodes.(i) in
    let name = nd.cfg.Vi.hostname in
    let quiet = ref true in
    if cur_bgp <> last_bgp_state.(i) || Hashtbl.mem changed_tbl name then begin
      last_bgp_state.(i) <- cur_bgp;
      Hashtbl.iter
        (fun _ e ->
          if e.ex_sender = name then
            match Hashtbl.find_opt node_index e.ex_receiver with
            | None -> ()
            | Some j when materialized.(j) && j = i -> ()
            | Some j ->
              let rev =
                match nd.cfg.Vi.bgp with
                | None -> None
                | Some b ->
                  List.find_opt
                    (fun (rn : Vi.bgp_neighbor) -> rn.Vi.bn_peer = e.ex_local_ip)
                    b.bp_neighbors
              in
              let wire =
                match rev with
                | None -> []
                | Some rev ->
                  wire_routes ~sender:nd ~rev ~sender_ip:e.ex_peer_ip
                    ~receiver_ip:e.ex_local_ip ~is_ibgp:e.ex_is_ibgp
              in
              if wire <> e.ex_wire then begin
                e.ex_wire <- wire;
                quiet := false;
                enqueue j
              end)
        exports
    end;
    if cur_main <> last_main_state.(i) then begin
      last_main_state.(i) <- cur_main;
      quiet := false;
      List.iter enqueue partners.(i)
    end;
    !quiet && cur_main = base_main_state.(i)
  in
  (* Worklist fuel. The runaway backstop is 16 dequeues per member, but the
     caller's [max_rounds] budget also binds: a crippled fuel option must
     cripple the warm engine the same way it bounds the scratch engine's BGP
     rounds (exceeding it falls back to the scratch path, which reports fuel
     exhaustion precisely). *)
  let budget = ref (min (max 64 (16 * n)) (max 1 (options.max_rounds * n))) in
  while not (Queue.is_empty queue) do
    if !budget = 0 then raise (Fallback "delta worklist exceeded its budget");
    decr budget;
    let i = Queue.pop queue in
    in_queue.(i) <- false;
    early.(i) <- propagate i (step i)
  done;
  (* The warm fixed point must itself be timing-independent, or it cannot be
     trusted (nor serve as the next update's base). *)
  Array.iteri
    (fun i node ->
      if materialized.(i) && node_ambiguous node then
        raise (Fallback "warm fixed point is timing-dependent"))
    nodes;
  let results =
    Array.to_list
      (Array.mapi
         (fun i node ->
           let name = node.cfg.Vi.hostname in
           if materialized.(i) then
             ( name,
               { nr_node = name; nr_main = node.main_rib; nr_bgp = node.bgp_rib;
                 nr_ospf = node.ospf_rib;
                 nr_fib = Fib.of_rib ~node:name ~topo node.main_rib } )
           else (name, base_nr.(i)))
         nodes)
  in
  let sessions =
    Array.to_list nodes
    |> List.concat_map (fun node ->
           let name = node.cfg.Vi.hostname in
           if materialized.(node.idx) then
             List.map
               (fun s ->
                 { sr_node = name; sr_peer = s.ss_peer_ip;
                   sr_remote_node =
                     (match s.ss_remote with
                      | Internal i -> Some nodes.(i).cfg.Vi.hostname
                      | External _ -> None);
                   sr_is_ibgp = s.ss_is_ibgp; sr_established = true;
                   sr_reason = None })
               node.sessions
             @ List.map
                 (fun ((nbr : Vi.bgp_neighbor), reason) ->
                   { sr_node = name; sr_peer = nbr.bn_peer; sr_remote_node = None;
                     sr_is_ibgp = false; sr_established = false;
                     sr_reason = Some reason })
                 node.down_sessions
           else List.filter (fun sr -> sr.sr_node = name) base_cr.cr_sessions)
  in
  let exports_list =
    Hashtbl.fold (fun _ e acc -> e :: acc) exports []
    |> List.sort (fun a b ->
           compare (a.ex_receiver, a.ex_peer_ip) (b.ex_receiver, b.ex_peer_ip))
  in
  let simulated = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 materialized in
  let early_count = ref 0 in
  Array.iteri (fun i m -> if m && early.(i) then incr early_count) materialized;
  ( { cr_members = List.map (fun (c : Vi.t) -> c.Vi.hostname) comp;
      cr_results = results;
      cr_sessions = sessions;
      cr_converged = true;
      cr_oscillated = false;
      cr_rounds = !step_count;
      cr_outer = 1;
      cr_quarantined = [];
      cr_diags = [];
      cr_prebgp = Array.to_list prebgp;
      cr_exports = exports_list;
      cr_ospf_digest = ospf_digest;
      cr_delta_safe = true },
    { ws_simulated = simulated; ws_converged_early = !early_count } )

(* Any failed precondition or mid-flight surprise sends the component down
   the scratch path instead — slower, never wrong. *)
let warm_component ~options ~env ~topo ~base_cr ~changed_tbl comp =
  try Some (warm_component_exn ~options ~env ~topo ~base_cr ~changed_tbl comp)
  with _ -> None

(* --- orchestration --- *)

(* Stitch per-component results back into a whole-snapshot [t]. Session
   reports are re-ordered by [node_order] so the output is independent of the
   component partition. *)
let assemble ~configs ~topo ~pre_quarantined ~pre_diags ~stats comp_results =
  let results = Hashtbl.create 64 in
  List.iter
    (fun cr ->
      List.iter (fun (name, nr) -> Hashtbl.replace results name nr) cr.cr_results)
    comp_results;
  (* Pre-flight-quarantined configs appear with empty tables so lookups stay
     total. *)
  List.iter
    (fun (cfg : Vi.t) ->
      let name = cfg.Vi.hostname in
      if List.mem_assoc name pre_quarantined && not (Hashtbl.mem results name) then
        Hashtbl.replace results name (empty_result ~topo name))
    configs;
  let node_order = List.map (fun (c : Vi.t) -> c.Vi.hostname) configs in
  let order_index = Hashtbl.create 64 in
  List.iteri (fun i n -> if not (Hashtbl.mem order_index n) then Hashtbl.add order_index n i)
    node_order;
  let sessions =
    List.concat_map (fun cr -> cr.cr_sessions) comp_results
    |> List.stable_sort (fun a b ->
           compare
             (Hashtbl.find_opt order_index a.sr_node)
             (Hashtbl.find_opt order_index b.sr_node))
  in
  { topo;
    nodes = results;
    node_order;
    converged = List.for_all (fun cr -> cr.cr_converged) comp_results;
    oscillated = List.exists (fun cr -> cr.cr_oscillated) comp_results;
    rounds = List.fold_left (fun acc cr -> acc + cr.cr_rounds) 0 comp_results;
    outer_iterations = List.fold_left (fun acc cr -> max acc cr.cr_outer) 0 comp_results;
    sessions;
    quarantined =
      List.sort compare
        (pre_quarantined @ List.concat_map (fun cr -> cr.cr_quarantined) comp_results);
    diags = pre_diags @ List.concat_map (fun cr -> cr.cr_diags) comp_results;
    components = List.map (fun cr -> cr.cr_members) comp_results;
    comp_results;
    stats }

let compute ?(options = default_options) ?(env = Dp_env.empty) configs =
  let live, pre_quarantined, pre_diags0 = preflight ~env configs in
  let dc = Diag.collector () in
  let topo = infer_topology dc live in
  let pre_diags = pre_diags0 @ Diag.to_list dc in
  let comps = component_partition ~topo live in
  let comp_results = List.map (compute_component ~options ~env ~topo) comps in
  let stats =
    { st_components = List.length comp_results;
      st_dirty_components = List.length comp_results;
      st_simulated_nodes = List.length live;
      st_reused_nodes = 0;
      st_frontier_nodes = 0;
      st_converged_early = 0 }
  in
  assemble ~configs ~topo ~pre_quarantined ~pre_diags ~stats comp_results

(* Incremental recompute (ISSUE 4 tentpole; per-node route-delta reuse in
   ISSUE 8). [changed] lists the hostnames whose vendor-independent model
   differs from [base] (including added nodes; removed nodes are simply
   absent from [configs]). A component of the new snapshot is reused from
   [base] — results, sessions, diags and all — exactly when none of its
   members changed AND its member set equals a base component's member set;
   the membership check catches every cross-component influence shift (an
   edit elsewhere that acquires or loses ownership of a peer address, adds an
   adjacency, etc.) because any such shift changes the partition. A dirty
   component whose member set still matches a base component re-simulates
   only the nodes the edit disturbs ([warm_component]), warm-starting the
   rest from the base fixed point; if the warm preconditions fail (base not
   converged, timing-dependent fixed point, mid-flight surprise) it falls
   back to the identical [compute_component] path from scratch. Either way
   the result is bit-identical to a full [compute] of the new configs.
   [options] and [env] must equal the ones [base] was computed with. *)
let update ?(options = default_options) ?(env = Dp_env.empty) ~base ~changed configs =
  let live, pre_quarantined, pre_diags0 = preflight ~env configs in
  let dc = Diag.collector () in
  let topo = infer_topology dc live in
  let pre_diags = pre_diags0 @ Diag.to_list dc in
  let comps = component_partition ~topo live in
  let changed_tbl = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace changed_tbl n ()) changed;
  let base_by_members =
    List.map (fun cr -> (cr.cr_members, cr)) base.comp_results
  in
  let reused_nodes = ref 0 and dirty = ref 0 and simulated = ref 0 in
  let frontier = ref 0 and early = ref 0 in
  let comp_results =
    List.map
      (fun comp ->
        let members = List.map (fun (c : Vi.t) -> c.Vi.hostname) comp in
        let n_members = List.length members in
        let base_cr = List.assoc_opt members base_by_members in
        let any_changed = List.exists (Hashtbl.mem changed_tbl) members in
        match (any_changed, base_cr) with
        | false, Some cr ->
          reused_nodes := !reused_nodes + n_members;
          cr
        | _, Some bcr -> (
          incr dirty;
          match warm_component ~options ~env ~topo ~base_cr:bcr ~changed_tbl comp with
          | Some (cr, ws) ->
            simulated := !simulated + ws.ws_simulated;
            reused_nodes := !reused_nodes + (n_members - ws.ws_simulated);
            frontier := !frontier + ws.ws_simulated;
            early := !early + ws.ws_converged_early;
            cr
          | None ->
            simulated := !simulated + n_members;
            frontier := !frontier + n_members;
            compute_component ~options ~env ~topo comp)
        | _, None ->
          incr dirty;
          simulated := !simulated + n_members;
          frontier := !frontier + n_members;
          compute_component ~options ~env ~topo comp)
      comps
  in
  let stats =
    { st_components = List.length comp_results;
      st_dirty_components = !dirty;
      st_simulated_nodes = !simulated;
      st_reused_nodes = !reused_nodes;
      st_frontier_nodes = !frontier;
      st_converged_early = !early }
  in
  assemble ~configs ~topo ~pre_quarantined ~pre_diags ~stats comp_results

let node_opt t name = Hashtbl.find_opt t.nodes name

let node t name =
  match node_opt t name with
  | Some nr -> nr
  | None -> invalid_arg (Printf.sprintf "Dataplane.node: unknown node %s" name)

let total_routes t =
  Hashtbl.fold (fun _ nr acc -> acc + Rib.best_count nr.nr_main) t.nodes 0

let rib_words t =
  (* One traversal over every RIB at once, so structure shared across nodes
     (interned attributes) is counted a single time — the sharing is the
     point of the measurement. *)
  let all =
    Hashtbl.fold (fun _ nr acc -> nr.nr_main :: nr.nr_bgp :: acc) t.nodes []
  in
  Obj.reachable_words (Obj.repr all)
