(** OSPF route computation.

    Link-state protocols converge to the global shortest-path solution, so
    the engine computes it directly: per-source multipath Dijkstra over the
    OSPF adjacency graph (adjacencies require matching areas), intra/inter
    area classification, and E1/E2 external routes from redistribution.
    Per-source SPF runs are independent and parallelized over domains
    (§4.1.1). *)

type iface_settings = {
  os_iface : string;
  os_area : int;
  os_cost : int;
  os_passive : bool;
  os_prefix : Prefix.t;
  os_ip : Ipv4.t;
}

(** OSPF-enabled interfaces of one config (interface stanzas plus network
    statements), with effective costs. *)
val interface_settings : Dp_env.t -> Vi.t -> iface_settings list

(** The fully-evaluated SPF inputs: adjacency graph, per-router announced
    prefixes and policy-filtered externals, areas and multipath widths.
    Plain marshalable data — equal inputs produce structurally equal RIB
    tables, so {!digest} is a sound reuse key for OSPF warm starts. *)
type inputs

(** Evaluate everything SPF depends on (adjacencies, announcements,
    redistribution policy) without running SPF. *)
val prepare :
  env:Dp_env.t ->
  topo:L3.t ->
  configs:Vi.t list ->
  redistributable:(string -> Route.t list) ->
  unit ->
  inputs

(** Content fingerprint of the inputs (hex MD5 of their marshaled form). *)
val digest : inputs -> string

(** Per-source multipath SPF over prepared inputs: the per-node OSPF RIBs. *)
val run : ?pool:Par.Pool.t -> domains:int -> inputs -> (string, Rib.t) Hashtbl.t

(** [compute ~env ~topo ~configs ~redistributable ~domains] returns a
    per-node OSPF RIB ({!prepare} then {!run}). [redistributable node]
    supplies the active static/connected routes available for redistribution
    at [node]. *)
val compute :
  ?pool:Par.Pool.t ->
  env:Dp_env.t ->
  topo:L3.t ->
  configs:Vi.t list ->
  redistributable:(string -> Route.t list) ->
  domains:int ->
  unit ->
  (string, Rib.t) Hashtbl.t

(** Adjacent node pairs (for convergence scheduling diagnostics/tests). *)
val adjacency :
  env:Dp_env.t -> topo:L3.t -> configs:Vi.t list -> (string * string) list
