(** Simulation environment: the user-provided inputs beyond configurations
    (paper stage 2) — link states and routing announcements from external
    neighbors. *)

type external_announcement = {
  xa_prefix : Prefix.t;
  xa_as_path : int list;  (** path as seen from the peer, its own AS first *)
  xa_med : int;
  xa_communities : int list;
}

(** An external BGP speaker. Any internal node with a neighbor statement for
    [xp_ip] peers with it (subject to session checks). *)
type external_peer = {
  xp_ip : Ipv4.t;
  xp_as : int;
  xp_announcements : external_announcement list;
}

type t = {
  external_peers : external_peer list;
  down_links : (string * string) list;  (** (node, interface) forced down *)
}

val empty : t

val announce :
  ?med:int -> ?communities:int list -> ?path:int list -> Prefix.t -> external_announcement

val peer : ip:Ipv4.t -> asn:int -> external_announcement list -> external_peer
val make : ?down_links:(string * string) list -> external_peer list -> t

(** [with_down_links t more] is [t] with the (node, interface) pairs of
    [more] additionally forced down (duplicates ignored). Fault-injection
    scenarios derive their environment from the base one this way. *)
val with_down_links : t -> (string * string) list -> t
val find_peer : t -> Ipv4.t -> external_peer option
val link_down : t -> node:string -> iface:string -> bool
