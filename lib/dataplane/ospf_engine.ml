type iface_settings = {
  os_iface : string;
  os_area : int;
  os_cost : int;
  os_passive : bool;
  os_prefix : Prefix.t;
  os_ip : Ipv4.t;
}

let interface_settings env (cfg : Vi.t) =
  match cfg.ospf with
  | None -> []
  | Some proc ->
    List.filter_map
      (fun (i : Vi.interface) ->
        if (not i.if_enabled) || Dp_env.link_down env ~node:cfg.hostname ~iface:i.if_name
        then None
        else
          match i.if_address with
          | None -> None
          | Some (ip, len) ->
            let area_from_network =
              List.fold_left
                (fun acc (net, area) -> if Prefix.contains net ip then Some area else acc)
                None proc.op_networks
            in
            let enabled_area =
              match (i.if_ospf, area_from_network) with
              | Some oi, _ -> Some oi.Vi.oi_area
              | None, Some a -> Some a
              | None, None -> None
            in
            Option.map
              (fun area ->
                let cost =
                  match i.if_ospf with
                  | Some { Vi.oi_cost = Some c; _ } -> c
                  | Some _ | None ->
                    max 1 (proc.op_reference_bandwidth / max 1 i.if_bandwidth)
                in
                let passive =
                  (match i.if_ospf with
                   | Some oi -> oi.Vi.oi_passive
                   | None -> false)
                  || List.mem i.if_name proc.op_passive_interfaces
                  || (proc.op_default_passive
                     && not (List.mem i.if_name proc.op_active_interfaces))
                in
                { os_iface = i.if_name; os_area = area; os_cost = cost;
                  os_passive = passive; os_prefix = Prefix.make ip len; os_ip = ip })
              enabled_area)
      cfg.interfaces

type link = { to_node : int; via_iface : string; via_nh : Ipv4.t; cost : int }

type graph = {
  names : string array;
  index : (string, int) Hashtbl.t;
  links : link list array;  (* outgoing, per node *)
  settings : iface_settings list array;
  configs : Vi.t array;
}

let build_graph env topo configs =
  let with_ospf = List.filter (fun (c : Vi.t) -> c.ospf <> None) configs in
  let names = Array.of_list (List.map (fun (c : Vi.t) -> c.hostname) with_ospf) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.add index n i) names;
  let configs_arr = Array.of_list with_ospf in
  let settings = Array.map (fun c -> interface_settings env c) configs_arr in
  let links =
    Array.mapi
      (fun i cfg ->
        ignore cfg;
        List.concat_map
          (fun s ->
            if s.os_passive then []
            else
              L3.neighbors topo ~node:names.(i) ~iface:s.os_iface
              |> List.filter_map (fun (ep : L3.endpoint) ->
                     match Hashtbl.find_opt index ep.ep_node with
                     | None -> None
                     | Some j ->
                       (* Adjacency requires the remote interface to run OSPF
                          in the same area and not be passive. *)
                       let remote_ok =
                         List.exists
                           (fun rs ->
                             rs.os_iface = ep.ep_iface && rs.os_area = s.os_area
                             && not rs.os_passive)
                           settings.(j)
                       in
                       if remote_ok then
                         Some { to_node = j; via_iface = s.os_iface; via_nh = ep.ep_ip;
                                cost = s.os_cost }
                       else None))
          settings.(i))
      configs_arr
  in
  { names; index; links; settings; configs = configs_arr }

let adjacency ~env ~topo ~configs =
  let g = build_graph env topo configs in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i links ->
      List.iter
        (fun l ->
          let a = g.names.(i) and b = g.names.(l.to_node) in
          let key = if a < b then (a, b) else (b, a) in
          Hashtbl.replace seen key ())
        links)
    g.links;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* Everything the SPF phase depends on, as plain marshalable data: the
   adjacency graph, per-router announcements (interface prefixes and
   policy-filtered externals, both already evaluated), areas and multipath
   widths. Two equal input records produce structurally equal RIB tables, so
   a digest over this record is a sound reuse key for the incremental
   engine's OSPF warm start. *)
type inputs = {
  in_names : string array;
  in_links : link list array;
  in_intra : (Prefix.t * int * int) list array;  (* prefix, ifcost, area *)
  in_externals : (Prefix.t * int * Vi.metric_type * int) list array;
      (* prefix, metric, type, tag — redistribution policy pre-applied *)
  in_areas : int list array;
  in_max_paths : int array;
}

let digest (inp : inputs) = Digest.to_hex (Digest.string (Marshal.to_string inp []))

(* Multipath Dijkstra from one source. Returns per-node distance and the set
   of first hops (egress interface, next hop ip). *)
let spf (inp : inputs) src =
  let n = Array.length inp.in_names in
  let dist = Array.make n max_int in
  let first_hops : (string * Ipv4.t) list array = Array.make n [] in
  let visited = Array.make n false in
  dist.(src) <- 0;
  let module Pq = Set.Make (struct
    type t = int * int (* dist, node *)

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0, src)) in
  while not (Pq.is_empty !pq) do
    let (d, u) as el = Pq.min_elt !pq in
    pq := Pq.remove el !pq;
    if not visited.(u) then begin
      visited.(u) <- true;
      List.iter
        (fun l ->
          let nd = d + l.cost in
          let v = l.to_node in
          let hops =
            if u = src then [ (l.via_iface, l.via_nh) ] else first_hops.(u)
          in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            first_hops.(v) <- hops;
            pq := Pq.add (nd, v) !pq
          end
          else if nd = dist.(v) && not visited.(v) then
            first_hops.(v) <-
              List.sort_uniq compare (hops @ first_hops.(v)))
        inp.in_links.(u)
    end
  done;
  (dist, first_hops)

let prepare ~env ~topo ~configs ~redistributable () =
  let g = build_graph env topo configs in
  (* Announcements per router: interface prefixes with their area/cost, and
     filtered redistributed externals. *)
  let intra = Array.map (fun ss -> List.map (fun s -> (s.os_prefix, s.os_cost, s.os_area)) ss) g.settings in
  let externals =
    Array.mapi
      (fun i (cfg : Vi.t) ->
        match cfg.ospf with
        | None -> []
        | Some proc ->
          List.concat_map
            (fun (rd : Vi.redistribution) ->
              let ctx = Policy_eval.make_ctx cfg in
              redistributable g.names.(i)
              |> List.filter (fun (r : Route.t) ->
                     Route_proto.matches_source r.protocol rd.rd_protocol)
              |> List.filter_map (fun (r : Route.t) ->
                     match Policy_eval.run_optional ctx rd.rd_route_map r with
                     | Policy_eval.Denied -> None
                     | Policy_eval.Accepted r' ->
                       let metric = Option.value rd.rd_metric ~default:20 in
                       let metric =
                         (* "set metric" in the filtering map overrides *)
                         if r'.Route.metric <> r.Route.metric then r'.Route.metric
                         else metric
                       in
                       Some (r'.Route.net, metric, rd.rd_metric_type, r'.Route.tag)))
            proc.op_redistribute)
      g.configs
  in
  let areas_of = Array.map (fun ss -> List.sort_uniq Int.compare (List.map (fun s -> s.os_area) ss)) g.settings in
  let max_paths =
    Array.map
      (fun (cfg : Vi.t) ->
        match cfg.Vi.ospf with Some p -> max 1 p.Vi.op_max_paths | None -> 1)
      g.configs
  in
  { in_names = g.names; in_links = g.links; in_intra = intra;
    in_externals = externals; in_areas = areas_of; in_max_paths = max_paths }

let run ?pool ~domains (inp : inputs) =
  let n = Array.length inp.in_names in
  let result = Hashtbl.create (max 16 n) in
  if n = 0 then result
  else begin
    let compute_node src =
      let dist, first_hops = spf inp src in
      let rib =
        Rib.create ~prefer:Cmp.ospf_prefer ~multipath_equal:Cmp.ospf_multipath_equal
          ~max_paths:inp.in_max_paths.(src) ()
      in
      let my_areas = inp.in_areas.(src) in
      for r = 0 to n - 1 do
        if r <> src && dist.(r) < max_int then begin
          (* Intra/inter-area prefixes advertised by router r. *)
          List.iter
            (fun (prefix, ifcost, area) ->
              let proto =
                if List.mem area my_areas then Route_proto.Ospf else Route_proto.Ospf_ia
              in
              List.iter
                (fun (_iface, nh) ->
                  Rib.merge rib
                    (Route.ospf ~proto ~net:prefix ~nh:(Route.Nh_ip nh)
                       ~metric:(dist.(r) + ifcost) ~area))
                first_hops.(r))
            inp.in_intra.(r);
          (* External routes redistributed at router r. *)
          List.iter
            (fun (prefix, metric, mtype, tag) ->
              let proto, metric =
                match mtype with
                | Vi.E1 -> (Route_proto.Ospf_e1, metric + dist.(r))
                | Vi.E2 -> (Route_proto.Ospf_e2, metric)
              in
              List.iter
                (fun (iface, nh) ->
                  ignore iface;
                  Rib.merge rib
                    { (Route.ospf ~proto ~net:prefix ~nh:(Route.Nh_ip nh) ~metric
                         ~area:0)
                      with Route.tag })
                first_hops.(r))
            inp.in_externals.(r)
        end
      done;
      (* Clear construction deltas: the OSPF RIB is presented as converged. *)
      ignore (Rib.take_delta rib);
      rib
    in
    let ribs = Par.map ?pool ~domains compute_node (Array.init n (fun i -> i)) in
    Array.iteri (fun i rib -> Hashtbl.add result inp.in_names.(i) rib) ribs;
    result
  end

let compute ?pool ~env ~topo ~configs ~redistributable ~domains () =
  run ?pool ~domains (prepare ~env ~topo ~configs ~redistributable ())
