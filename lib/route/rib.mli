(** Delta-tracking RIBs (§4.1.3).

    A RIB keeps candidate routes per prefix and exposes the multipath best
    set. Changes to best sets accumulate in a delta; receivers pull the delta
    each iteration instead of being pushed per-neighbor queues, which is the
    paper's queue-free hybrid scheme. Deltas are normalized: a route added
    and removed within the same iteration cancels out. *)

type t

(** [prefer] is a strict total preference (negative = first argument is
    better); [multipath_equal] says when two routes can be installed together
    (ECMP); [max_paths] caps the best set. *)
val create :
  prefer:(Route.t -> Route.t -> int) ->
  multipath_equal:(Route.t -> Route.t -> bool) ->
  max_paths:int ->
  unit ->
  t

(** Insert or replace the candidate with the same {!Route.candidate_key}. *)
val merge : t -> Route.t -> unit

(** Replace the rib's whole contents in one pass, as if it had been wiped and
    every route [merge]d in list order — same candidate ordering, same best
    sets — but with a single selection per net and no per-merge delta
    bookkeeping. The delta table is reset. Built for wholesale per-node
    rebuilds (the incremental engine's warm re-step), where deltas are
    tracked by comparing RIB snapshots instead. *)
val reload : t -> Route.t list -> unit

(** Remove the candidate with the same key as this route. *)
val withdraw : t -> Route.t -> unit

(** Remove all candidates matching the predicate. *)
val withdraw_where : t -> (Route.t -> bool) -> unit

(** The multipath best set for an exact prefix. *)
val best : t -> Prefix.t -> Route.t list

(** Longest-prefix match over prefixes that currently have a best set. *)
val lookup : t -> Ipv4.t -> (Prefix.t * Route.t list) option

(** All best routes across prefixes. *)
val best_routes : t -> Route.t list

(** All candidates (the memory-relevant population). *)
val candidates : t -> Route.t list

val fold_best : (Prefix.t -> Route.t list -> 'a -> 'a) -> t -> 'a -> 'a

(** Fold over every prefix with its full candidate list and its best set
    ([f prefix candidates best acc]) — the view the incremental engine's
    ambiguity detector needs. *)
val fold_entries : (Prefix.t -> Route.t list -> Route.t list -> 'a -> 'a) -> t -> 'a -> 'a

(** Net best-set changes since the last call: (added, removed). Clears the
    delta. *)
val take_delta : t -> Route.t list * Route.t list

(** Peek: does the RIB have a pending non-empty delta? *)
val dirty : t -> bool

(** Number of prefixes with a non-empty best set. *)
val prefix_count : t -> int

val best_count : t -> int
val candidate_count : t -> int
