let chain c next = if c <> 0 then c else next ()

let structural_tiebreak (a : Route.t) (b : Route.t) =
  Stdlib.compare
    (a.net, a.next_hop, a.from_peer, a.from_rid, a.tag)
    (b.net, b.next_hop, b.from_peer, b.from_rid, b.tag)

let ospf_prefer (a : Route.t) (b : Route.t) =
  chain (Int.compare (Route_proto.ospf_rank a.protocol) (Route_proto.ospf_rank b.protocol))
  @@ fun () ->
  chain (Int.compare a.metric b.metric) @@ fun () -> structural_tiebreak a b

let ospf_multipath_equal (a : Route.t) (b : Route.t) =
  Route_proto.ospf_rank a.protocol = Route_proto.ospf_rank b.protocol
  && a.metric = b.metric

let bgp_prefer ?(use_arrival = true) ~igp_cost (a : Route.t) (b : Route.t) =
  let aa = Route.get_attrs a and ba = Route.get_attrs b in
  let cost r =
    match r.Route.next_hop with
    | Route.Nh_ip ip -> Option.value (igp_cost ip) ~default:max_int
    | Route.Nh_iface _ -> 0
    | Route.Nh_discard -> max_int
  in
  let local r = if r.Route.from_peer = 0 then 0 else 1 in
  chain (Int.compare ba.Attrs.weight aa.Attrs.weight) @@ fun () ->
  chain (Int.compare ba.Attrs.local_pref aa.Attrs.local_pref) @@ fun () ->
  chain (Int.compare (local a) (local b)) @@ fun () ->
  chain (Int.compare (List.length aa.Attrs.as_path) (List.length ba.Attrs.as_path))
  @@ fun () ->
  chain (Int.compare (Attrs.origin_rank aa.Attrs.origin) (Attrs.origin_rank ba.Attrs.origin))
  @@ fun () ->
  chain (Int.compare aa.Attrs.med ba.Attrs.med) @@ fun () ->
  let proto_rank r = if r.Route.protocol = Route_proto.Ebgp then 0 else 1 in
  chain (Int.compare (proto_rank a) (proto_rank b)) @@ fun () ->
  chain (Int.compare (cost a) (cost b)) @@ fun () ->
  (* The oldest-path step applies to eBGP pairs only, as on real routers
     (Cisco step 9, "prefer the oldest eBGP path"): iBGP ties fall through
     to the router-id step, keeping internal selection independent of
     delivery timing. At this point the two protocols are equal, so testing
     [a] covers both. *)
  chain
    (if use_arrival && a.protocol = Route_proto.Ebgp then
       Int.compare a.arrival b.arrival
     else 0)
  @@ fun () ->
  chain (Int.compare a.from_rid b.from_rid) @@ fun () ->
  chain (Int.compare a.from_peer b.from_peer) @@ fun () -> structural_tiebreak a b

let bgp_pre_arrival_equal ~igp_cost (a : Route.t) (b : Route.t) =
  let aa = Route.get_attrs a and ba = Route.get_attrs b in
  let cost r =
    match r.Route.next_hop with
    | Route.Nh_ip ip -> Option.value (igp_cost ip) ~default:max_int
    | Route.Nh_iface _ -> 0
    | Route.Nh_discard -> max_int
  in
  let local r = if r.Route.from_peer = 0 then 0 else 1 in
  let proto_rank r = if r.Route.protocol = Route_proto.Ebgp then 0 else 1 in
  aa.Attrs.weight = ba.Attrs.weight
  && aa.Attrs.local_pref = ba.Attrs.local_pref
  && local a = local b
  && List.length aa.Attrs.as_path = List.length ba.Attrs.as_path
  && Attrs.origin_rank aa.Attrs.origin = Attrs.origin_rank ba.Attrs.origin
  && aa.Attrs.med = ba.Attrs.med
  && proto_rank a = proto_rank b
  && cost a = cost b

let bgp_multipath_equal ~igp_cost (a : Route.t) (b : Route.t) =
  let aa = Route.get_attrs a and ba = Route.get_attrs b in
  let cost r =
    match r.Route.next_hop with
    | Route.Nh_ip ip -> Option.value (igp_cost ip) ~default:max_int
    | Route.Nh_iface _ -> 0
    | Route.Nh_discard -> max_int
  in
  aa.Attrs.weight = ba.Attrs.weight
  && aa.Attrs.local_pref = ba.Attrs.local_pref
  && List.length aa.Attrs.as_path = List.length ba.Attrs.as_path
  && Attrs.origin_rank aa.Attrs.origin = Attrs.origin_rank ba.Attrs.origin
  && aa.Attrs.med = ba.Attrs.med
  && a.protocol = b.protocol
  && cost a = cost b

let main_prefer (a : Route.t) (b : Route.t) =
  chain (Int.compare a.admin b.admin) @@ fun () ->
  chain (Int.compare (Route_proto.ospf_rank a.protocol) (Route_proto.ospf_rank b.protocol))
  @@ fun () ->
  chain (Int.compare a.metric b.metric) @@ fun () -> structural_tiebreak a b

let main_multipath_equal (a : Route.t) (b : Route.t) =
  a.admin = b.admin
  && Route_proto.ospf_rank a.protocol = Route_proto.ospf_rank b.protocol
  && a.metric = b.metric
