type entry = { candidates : Route.t list; best : Route.t list }

type t = {
  prefer : Route.t -> Route.t -> int;
  multipath_equal : Route.t -> Route.t -> bool;
  max_paths : int;
  mutable trie : entry Prefix_trie.t;
  (* Net delta: route -> count (+ added, - removed). Keys use arrival-less
     structural identity via Route.same semantics. *)
  delta : (Route.t, int) Hashtbl.t;
}

let create ~prefer ~multipath_equal ~max_paths () =
  { prefer; multipath_equal; max_paths; trie = Prefix_trie.empty;
    delta = Hashtbl.create 64 }

let delta_key (r : Route.t) = { r with arrival = 0 }

let bump rib r n =
  let k = delta_key r in
  let c = Option.value (Hashtbl.find_opt rib.delta k) ~default:0 + n in
  if c = 0 then Hashtbl.remove rib.delta k else Hashtbl.replace rib.delta k c

let select rib candidates =
  match List.stable_sort rib.prefer candidates with
  | [] -> []
  | top :: rest ->
    let equals = List.filter (rib.multipath_equal top) rest in
    let rec take n acc = function
      | [] -> List.rev acc
      | r :: rest -> if n = 0 then List.rev acc else take (n - 1) (r :: acc) rest
    in
    top :: take (rib.max_paths - 1) [] equals

let update_entry rib prefix f =
  let old_entry =
    Option.value
      (Prefix_trie.find prefix rib.trie)
      ~default:{ candidates = []; best = [] }
  in
  let candidates = f old_entry.candidates in
  let best = select rib candidates in
  (* Delta = symmetric difference of best sets, ignoring arrival clocks. *)
  let removed = List.filter (fun r -> not (List.exists (Route.same r) best)) old_entry.best in
  let added = List.filter (fun r -> not (List.exists (Route.same r) old_entry.best)) best in
  List.iter (fun r -> bump rib r (-1)) removed;
  List.iter (fun r -> bump rib r 1) added;
  rib.trie <-
    (if candidates = [] then Prefix_trie.remove prefix rib.trie
     else Prefix_trie.add prefix { candidates; best } rib.trie)

let merge rib r =
  let key = Route.candidate_key r in
  update_entry rib r.Route.net (fun cands ->
      r :: List.filter (fun c -> Route.candidate_key c <> key) cands)

(* [reload rib routes] replaces the rib's entire contents with the state a
   full wipe followed by [merge]ing every route in list order would produce —
   in one pass: per net, candidates are deduplicated by {!Route.candidate_key}
   (a later route replaces an earlier one with the same key, and lands at the
   front, exactly like a sequence of merges) and [select] runs once instead of
   once per merge. The delta table is reset: wholesale rebuilders compare RIB
   snapshots, they don't consume deltas. *)
let reload rib routes =
  let nets : (Prefix.t, Route.t list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Route.t) ->
      let key = Route.candidate_key r in
      match Hashtbl.find_opt nets r.Route.net with
      | None -> Hashtbl.add nets r.Route.net (ref [ r ])
      | Some cell -> cell := r :: List.filter (fun c -> Route.candidate_key c <> key) !cell)
    routes;
  let trie = ref Prefix_trie.empty in
  Hashtbl.iter
    (fun net cell ->
      let candidates = !cell in
      trie := Prefix_trie.add net { candidates; best = select rib candidates } !trie)
    nets;
  rib.trie <- !trie;
  Hashtbl.reset rib.delta

let withdraw rib r =
  let key = Route.candidate_key r in
  update_entry rib r.Route.net (fun cands ->
      List.filter (fun c -> Route.candidate_key c <> key) cands)

let withdraw_where rib pred =
  let prefixes =
    Prefix_trie.fold
      (fun p e acc -> if List.exists pred e.candidates then p :: acc else acc)
      rib.trie []
  in
  List.iter
    (fun p -> update_entry rib p (fun cands -> List.filter (fun c -> not (pred c)) cands))
    prefixes

let best rib prefix =
  match Prefix_trie.find prefix rib.trie with
  | Some e -> e.best
  | None -> []

let lookup rib ip =
  (* Deepest match with a non-empty best set. *)
  let matches = Prefix_trie.all_matches ip rib.trie in
  List.fold_left
    (fun acc (p, e) -> if e.best <> [] then Some (p, e.best) else acc)
    None matches

let fold_best f rib acc = Prefix_trie.fold (fun p e acc -> f p e.best acc) rib.trie acc

let fold_entries f rib acc =
  Prefix_trie.fold (fun p e acc -> f p e.candidates e.best acc) rib.trie acc
let best_routes rib = fold_best (fun _ b acc -> b @ acc) rib []

let candidates rib =
  Prefix_trie.fold (fun _ e acc -> e.candidates @ acc) rib.trie []

let take_delta rib =
  let added, removed =
    Hashtbl.fold
      (fun r c (add, del) ->
        if c > 0 then (r :: add, del) else if c < 0 then (add, r :: del) else (add, del))
      rib.delta ([], [])
  in
  Hashtbl.reset rib.delta;
  (added, removed)

let dirty rib = Hashtbl.length rib.delta > 0

let prefix_count rib =
  Prefix_trie.fold (fun _ e n -> if e.best <> [] then n + 1 else n) rib.trie 0

let best_count rib = fold_best (fun _ b n -> n + List.length b) rib 0

let candidate_count rib =
  Prefix_trie.fold (fun _ e n -> n + List.length e.candidates) rib.trie 0
