(** Route preference orders: the BGP decision process, OSPF preference, and
    the cross-protocol main-RIB order.

    All orders are strict and deterministic: every comparison chain ends with
    structural tiebreaks so that simulation results are stable across runs
    (§4.1.2). The BGP order includes the logical-clock step ("older route
    wins") that removes re-advertisement oscillations. *)

(** Preference for the main RIB: lower administrative distance first, then
    protocol-specific preference. *)
val main_prefer : Route.t -> Route.t -> int

val main_multipath_equal : Route.t -> Route.t -> bool

(** OSPF preference: intra < inter < E1 < E2, then metric. *)
val ospf_prefer : Route.t -> Route.t -> int

val ospf_multipath_equal : Route.t -> Route.t -> bool

(** The BGP decision process: weight, local preference, local origination,
    AS-path length, origin, MED, eBGP-over-iBGP, IGP cost to next hop,
    arrival time (logical clock, eBGP pairs only — as on real routers, iBGP
    ties fall through to the router-id step), originator router id, peer
    address. [use_arrival:false] disables the logical-clock step (Figure 1
    ablation). *)
val bgp_prefer :
  ?use_arrival:bool -> igp_cost:(Ipv4.t -> int option) -> Route.t -> Route.t -> int

val bgp_multipath_equal :
  igp_cost:(Ipv4.t -> int option) -> Route.t -> Route.t -> bool

(** True when every {!bgp_prefer} step {e before} the arrival-clock tiebreak
    compares equal on the two routes — i.e. the decision between them is made
    by arrival order (or later tiebreaks). The incremental engine uses this
    to detect best-set boundaries that depend on message timing, where
    warm-started propagation could legitimately pick a different (but equally
    preferred) route than the from-scratch run. *)
val bgp_pre_arrival_equal :
  igp_cost:(Ipv4.t -> int option) -> Route.t -> Route.t -> bool
