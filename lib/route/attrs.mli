(** BGP route attributes, interned (§4.1.3).

    The paper moves 13 properties of a BGP route into a single interned
    object; here the attribute record is the interned unit, and AS paths and
    community sets are additionally interned on their own. Interning can be
    disabled globally for the memory ablation benchmark.

    Pools are domain-local (route exchange parallelizes across domains and
    the tables are not thread-safe), so {!equal} treats physical equality as
    a fast path with a structural fallback: attrs interned in different
    domains compare equal even though they are distinct objects. *)

type t = private {
  as_path : int list;
  communities : int list;  (** sorted, deduplicated *)
  local_pref : int;
  med : int;
  origin : Vi.origin;
  originator_id : Ipv4.t;  (** router id of the route's originator *)
  cluster_list : Ipv4.t list;
  weight : int;
}

(** Global switch for the interning ablation; default on. *)
val interning_enabled : bool ref

val make :
  ?as_path:int list ->
  ?communities:int list ->
  ?local_pref:int ->
  ?med:int ->
  ?origin:Vi.origin ->
  ?originator_id:Ipv4.t ->
  ?cluster_list:Ipv4.t list ->
  ?weight:int ->
  unit ->
  t

(** Functional update, re-interned. *)
val update :
  ?as_path:int list ->
  ?communities:int list ->
  ?local_pref:int ->
  ?med:int ->
  ?origin:Vi.origin ->
  ?originator_id:Ipv4.t ->
  ?cluster_list:Ipv4.t list ->
  ?weight:int ->
  t ->
  t

val default : t
val equal : t -> t -> bool
val origin_rank : Vi.origin -> int

(** (distinct values, total requests) for the calling domain's attribute
    pool — the sharing factor reported by the interning ablation (which runs
    single-domain, where this covers all interning). *)
val pool_stats : unit -> int * int

(** Clear the calling domain's pools. *)
val clear_pools : unit -> unit
val as_path_to_string : int list -> string
