type t = {
  as_path : int list;
  communities : int list;
  local_pref : int;
  med : int;
  origin : Vi.origin;
  originator_id : Ipv4.t;
  cluster_list : Ipv4.t list;
  weight : int;
}

let interning_enabled = ref true

module Pool = Intern.Make (struct
  type nonrec t = t

  let equal = ( = )
  let hash = Hashtbl.hash
end)

module List_pool = Intern.Make (struct
  type t = int list

  let equal = ( = )
  let hash = Hashtbl.hash
end)

(* Interning tables are domain-local: BGP route exchange runs node-local
   work under [Par.map ~domains], and [Intern.Make] is a plain (not
   thread-safe) hashtable — one global pool racing across worker domains
   could corrupt the table or hand out torn reads. Per-domain pools keep
   every [intern] single-threaded. The price is that canonical
   representatives differ across domains, which is why {!equal} falls back
   to structural equality when physical equality fails. *)
let pools : (Pool.t * List_pool.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Pool.create (), List_pool.create ()))

let intern_attrs a =
  if !interning_enabled then begin
    let pool, list_pool = Domain.DLS.get pools in
    Pool.intern pool
      { a with
        as_path = List_pool.intern list_pool a.as_path;
        communities = List_pool.intern list_pool a.communities }
  end
  else a

let default =
  { as_path = []; communities = []; local_pref = 100; med = 0;
    origin = Vi.Origin_igp; originator_id = 0; cluster_list = []; weight = 0 }

let make ?(as_path = []) ?(communities = []) ?(local_pref = 100) ?(med = 0)
    ?(origin = Vi.Origin_igp) ?(originator_id = 0) ?(cluster_list = [])
    ?(weight = 0) () =
  intern_attrs
    { as_path; communities = List.sort_uniq Int.compare communities; local_pref;
      med; origin; originator_id; cluster_list; weight }

let update ?as_path ?communities ?local_pref ?med ?origin ?originator_id
    ?cluster_list ?weight a =
  let v opt dflt = Option.value opt ~default:dflt in
  intern_attrs
    { as_path = v as_path a.as_path;
      communities =
        (match communities with
         | Some c -> List.sort_uniq Int.compare c
         | None -> a.communities);
      local_pref = v local_pref a.local_pref;
      med = v med a.med;
      origin = v origin a.origin;
      originator_id = v originator_id a.originator_id;
      cluster_list = v cluster_list a.cluster_list;
      weight = v weight a.weight }

(* Physical equality is only a fast path: attrs interned in different
   domains (or before/after [clear_pools]) are structurally equal without
   being the same object. *)
let equal a b = a == b || a = b

let origin_rank = function
  | Vi.Origin_igp -> 0
  | Vi.Origin_egp -> 1
  | Vi.Origin_incomplete -> 2

(* Stats and clearing address the calling domain's own pools; the ablation
   benchmark runs single-domain, where this is the whole picture. *)
let pool_stats () =
  let pool, _ = Domain.DLS.get pools in
  (Pool.distinct pool, Pool.requests pool)

let clear_pools () =
  let pool, list_pool = Domain.DLS.get pools in
  Pool.clear pool;
  List_pool.clear list_pool

let as_path_to_string path = String.concat " " (List.map string_of_int path)
