(** Atomic Predicates verifier (Yang & Lam), the §6.2 comparison baseline.

    Computes the coarsest partition of header space such that every edge
    predicate of the forwarding graph is a union of atoms; packet sets then
    become integer sets and propagation is set arithmetic. The atom
    computation is the up-front cost the paper's direct BDD dataflow
    avoids. Only filter edges are supported (as in the original tool —
    adding transformations required a new theory, §3 Lesson 2). *)

type t

(** Builds atoms from every distinct filter predicate in the graph.
    @raise Failure if the graph contains transformation edges. *)
val build : Fgraph.t -> t

(** Total {!build}: [None] when the graph contains transformation edges or
    refinement exceeds [max_atoms] (default 4096) — callers that use atoms
    only as an optimization (the failure-scenario symmetry pruner) degrade
    gracefully instead of aborting. *)
val try_build : ?max_atoms:int -> Fgraph.t -> t option

val atom_count : t -> int

(** Fold over every graph edge's atom bitset, keyed by
    [(from_loc, to_loc, index in the source's out-edge list)]. Iteration
    order is unspecified; fold into an order-insensitive structure. *)
val fold_edge_atoms : t -> (int * int * int -> Bytes.t -> 'a -> 'a) -> 'a -> 'a

(** The set of packets (as a BDD over the graph's environment) that can
    reach any location in [targets] from [src], computed by propagating atom
    sets backward. *)
val reach : t -> Fgraph.t -> src:int -> targets:int list -> Bdd.t

(** Convert an atom set at a location back to a BDD (for cross-checking). *)
val atoms_to_bdd : t -> Bytes.t -> Bdd.t
