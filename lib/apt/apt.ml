type t = {
  env : Pktset.t;
  atoms : Bdd.t array;
  (* per (from, to, index in out_edges) the atom bitset of its predicate *)
  edge_atoms : (int * int * int, Bytes.t) Hashtbl.t;
}

let rec filter_of g fn =
  let man = Pktset.man g.Fgraph.env in
  match fn with
  | Fgraph.Filter f -> f
  | Fgraph.Seq fns -> List.fold_left (fun acc fn -> Bdd.band man acc (filter_of g fn)) Bdd.top fns
  | Fgraph.Set_extra _ | Fgraph.Erase_extra _ ->
    Bdd.top (* extra bits are outside the APT header space *)
  | Fgraph.Transform _ -> failwith "Apt: transformation edges are not supported"

let bitset_empty n = Bytes.make ((n + 7) / 8) '\000'

let bitset_set b i =
  Bytes.set b (i / 8) (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8))))

let bitset_mem b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let bitset_union a b =
  let out = Bytes.copy a in
  for i = 0 to Bytes.length a - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get a i) lor Char.code (Bytes.get b i)))
  done;
  out

let bitset_inter a b =
  let out = Bytes.copy a in
  for i = 0 to Bytes.length a - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get a i) land Char.code (Bytes.get b i)))
  done;
  out

let bitset_equal = Bytes.equal

exception Too_many_atoms

let build_capped ~max_atoms g =
  let env = g.Fgraph.env in
  let man = Pktset.man env in
  (* all distinct predicates *)
  let predicates = Hashtbl.create 64 in
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : Fgraph.edge) -> Hashtbl.replace predicates (filter_of g e.e_fn) ())
        edges)
    g.Fgraph.out_edges;
  (* refine the partition of header space *)
  let atoms = ref [ Bdd.top ] in
  Hashtbl.iter
    (fun p () ->
      if not (Bdd.is_top p || Bdd.is_bot p) then begin
        atoms :=
          List.concat_map
            (fun a ->
              let inside = Bdd.band man a p in
              let outside = Bdd.bdiff man a p in
              List.filter (fun x -> not (Bdd.is_bot x)) [ inside; outside ])
            !atoms;
        (* refinement at worst doubles per predicate; bail out before the
           partition becomes more expensive than what it is meant to save *)
        if List.length !atoms > max_atoms then raise Too_many_atoms
      end)
    predicates;
  let atoms = Array.of_list !atoms in
  let n = Array.length atoms in
  (* per-edge atom bitsets: atom i is in predicate p iff atom ∧ p = atom *)
  let pred_sets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun p () ->
      let b = bitset_empty n in
      Array.iteri
        (fun i a -> if Bdd.equal (Bdd.band man a p) a then bitset_set b i)
        atoms;
      Hashtbl.add pred_sets p b)
    predicates;
  let edge_atoms = Hashtbl.create 256 in
  Array.iteri
    (fun v edges ->
      List.iteri
        (fun k (e : Fgraph.edge) ->
          Hashtbl.replace edge_atoms (v, e.e_to, k) (Hashtbl.find pred_sets (filter_of g e.e_fn)))
        edges)
    g.Fgraph.out_edges;
  { env; atoms; edge_atoms }

let build g = build_capped ~max_atoms:max_int g

let try_build ?(max_atoms = 4096) g =
  match build_capped ~max_atoms g with
  | t -> Some t
  | exception _ -> None

let atom_count t = Array.length t.atoms

let fold_edge_atoms t f init =
  Hashtbl.fold (fun key bits acc -> f key bits acc) t.edge_atoms init

let atoms_to_bdd t b =
  let man = Pktset.man t.env in
  let acc = ref Bdd.bot in
  Array.iteri (fun i a -> if bitset_mem b i then acc := Bdd.bor man !acc a) t.atoms;
  !acc

let reach t g ~src ~targets =
  let n = Fgraph.n_locs g in
  let atoms_n = Array.length t.atoms in
  let full = bitset_empty atoms_n in
  for i = 0 to atoms_n - 1 do
    bitset_set full i
  done;
  let sets = Array.make n (bitset_empty atoms_n) in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue v =
    if not queued.(v) then begin
      queued.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter
    (fun v ->
      sets.(v) <- full;
      enqueue v)
    targets;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    queued.(v) <- false;
    List.iter
      (fun (e : Fgraph.edge) ->
        (* position of e in out_edges of its source *)
        let k =
          let rec find i = function
            | [] -> -1
            | x :: rest -> if x == e then i else find (i + 1) rest
          in
          find 0 g.Fgraph.out_edges.(e.e_from)
        in
        let pred = Hashtbl.find t.edge_atoms (e.e_from, e.e_to, k) in
        let contribution = bitset_inter pred sets.(v) in
        let united = bitset_union sets.(e.e_from) contribution in
        if not (bitset_equal united sets.(e.e_from)) then begin
          sets.(e.e_from) <- united;
          enqueue e.e_from
        end)
      g.Fgraph.in_edges.(v)
  done;
  atoms_to_bdd t sets.(src)
