(** Sharded parallel verification over per-domain BDD managers.

    Workers re-materialize the forwarding graph from a
    manager-independent {!Fgraph.spec} into private managers (no shared
    mutable BDD state) and pull independent queries off a work-stealing
    scheduler ({!Par.map_dynamic_init}). Results merge deterministically:
    reachability rows are plain data, and multipath verdicts come back as
    exported BDDs unioned in the caller's manager. Every edge function
    distributes over union, so per-shard backward fixpoints union to
    exactly the sequential fixpoint; BDD canonicity then makes the merged
    results bit-identical to the sequential engine ([domains = 1]). *)

(** Parallel {!Fquery.all_pairs}: one forward pass per start location,
    fanned across [domains] worker domains. Identical row list to the
    sequential engine. *)
val all_pairs :
  ?domains:int ->
  ?hdr:Bdd.t ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  Fquery.reach_row list

(** Parallel {!Fquery.multipath_consistency}: the delivered-sink and
    dropped-sink backward passes are sharded per destination
    (round-robin into [domains] groups per pass). Returned verdict sets
    live in the caller's manager and equal the sequential ones. *)
val multipath_consistency :
  ?domains:int ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  (Fquery.start * Bdd.t) list
