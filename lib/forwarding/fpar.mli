(** Sharded parallel verification over per-domain BDD managers.

    Workers re-materialize the forwarding graph from a
    manager-independent {!Fgraph.spec} into private managers (no shared
    mutable BDD state) and pull independent queries off a work-stealing
    scheduler ({!Par.map_dynamic_init}). Results merge deterministically:
    reachability rows are plain data, and multipath verdicts come back as
    exported BDDs unioned in the caller's manager. Every edge function
    distributes over union, so per-shard backward fixpoints union to
    exactly the sequential fixpoint; BDD canonicity then makes the merged
    results bit-identical to the sequential engine ([domains = 1]).

    Each worker domain keeps its imported graph (and warm BDD caches) in
    domain-local storage keyed by the spec fingerprint, so on a persistent
    {!Par.Pool} repeated queries against the same snapshot import nothing.
    Entry points route through an adaptive plan: with [~auto:true] an
    estimated cost below {!auto_cutoff} falls back to the sequential
    engine, so small queries never pay the fan-out overhead. *)

(** Parallel {!Fquery.all_pairs}: one forward pass per start location,
    fanned across [domains] worker domains (or the [pool]'s resident
    workers). Identical row list to the sequential engine. *)
val all_pairs :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  ?hdr:Bdd.t ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  Fquery.reach_row list

(** Parallel {!Fquery.multipath_consistency}: the delivered-sink and
    dropped-sink backward passes are sharded per destination
    (round-robin into [domains] groups per pass). Returned verdict sets
    live in the caller's manager and equal the sequential ones. *)
val multipath_consistency :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  (Fquery.start * Bdd.t) list

(** {2 Adaptive scheduling} *)

(** Execution plan chosen by {!plan}. *)
type plan = Serial | Parallel of int

(** [plan ?pool ?domains ?auto ~tasks ~cost ()] decides how an entry point
    runs: [Serial] when there are fewer than two tasks or one worker, or
    when [auto] is set and [cost] (in tasks × graph edges) is below
    {!auto_cutoff}; otherwise [Parallel n] with the pool size or [domains]
    workers. Both entry points route through this single decision, so their
    serial fallbacks are uniform. *)
val plan :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  tasks:int ->
  cost:int ->
  unit ->
  plan

(** Cost threshold for [auto] mode, in units of tasks × graph edges.
    Exposed for calibration and for tests to force either branch. *)
val auto_cutoff : int ref

(** {2 Worker-resident cache introspection} *)

(** Process-wide counters [(imports, reuses)]: how many times a worker
    domain materialized a graph from a spec versus served it from its
    domain-local cache. Reuses only accrue on persistent pools (spawned
    domains die with their cache). *)
val worker_stats : unit -> int * int

(** Number of graphs cached in the calling domain's own worker cache. *)
val worker_cached_graphs : unit -> int

(** Aggregate over a pool's resident workers: how many responded, total
    cached graphs, and the summed {!Bdd.cache_stats} of their private
    managers. *)
type worker_cache_report = {
  wr_workers : int;
  wr_cached : int;
  wr_hits : int;
  wr_misses : int;
  wr_entries : int;
  wr_filled : int;
}

val worker_cache_stats : Par.Pool.t -> worker_cache_report
