(** Sharded parallel verification over per-domain BDD managers.

    Workers re-materialize the forwarding graph from a
    manager-independent {!Fgraph.spec} into private managers (no shared
    mutable BDD state) and pull independent queries off a work-stealing
    scheduler ({!Par.map_dynamic_init}). Results merge deterministically:
    reachability rows are plain data, and multipath verdicts come back as
    exported BDDs unioned in the caller's manager. Every edge function
    distributes over union, so per-shard backward fixpoints union to
    exactly the sequential fixpoint; BDD canonicity then makes the merged
    results bit-identical to the sequential engine ([domains = 1]).

    Each worker domain keeps its imported graph (and warm BDD caches) in
    domain-local storage keyed by the spec fingerprint, so on a persistent
    {!Par.Pool} repeated queries against the same snapshot import nothing.
    Entry points route through an adaptive plan: with [~auto:true] an
    estimated cost below {!auto_cutoff} falls back to the sequential
    engine, so small queries never pay the fan-out overhead. *)

(** Parallel {!Fquery.all_pairs}: one forward pass per start location,
    fanned across [domains] worker domains (or the [pool]'s resident
    workers). Identical row list to the sequential engine. *)
val all_pairs :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  ?hdr:Bdd.t ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  Fquery.reach_row list

(** Parallel {!Fquery.multipath_consistency}: the delivered-sink and
    dropped-sink backward passes run as two concurrent jobs, each with all
    its sinks batched so a worker pays the graph import once per pass (the
    earlier per-destination sharding re-propagated the whole graph per
    shard and inverted the speedup). Returned verdict sets live in the
    caller's manager and equal the sequential ones. *)
val multipath_consistency :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  ?starts:Fquery.start list ->
  Fquery.t ->
  (Fquery.start * Bdd.t) list

(** {2 Adaptive scheduling} *)

(** Execution plan chosen by {!plan}. *)
type plan = Serial | Parallel of int

(** How parallelizable work scales when sharded: [Uniform] tasks (per-start
    forward passes) divide total work across workers; a [Sharded_pass]
    workload (multipath's two batched whole-graph passes) can at best halve
    the wall clock, so it needs a correspondingly larger job to amortize
    the fan-out overhead. *)
type workload = Uniform | Sharded_pass

(** [plan ?pool ?domains ?auto ?workload ?fp ~tasks ~cost ()] decides how
    an entry point runs: [Serial] when there are fewer than two tasks or one
    worker, or when [auto] is set and [cost] (in tasks × graph edges) is
    below the effective cutoff; otherwise [Parallel n] with the pool size or
    [domains] workers. The effective cutoff is the {!auto_cutoff} floor
    raised by {!measured_cutoff} once samples exist — but only when the
    fan-out would start cold: when [fp] (the snapshot's spec fingerprint)
    is already resident in every pool worker the import charge is waived
    and the floor alone decides. The cutoff is doubled for [Sharded_pass]
    workloads (their speedup is bounded by the pass count). Both entry
    points route through this single decision, so their serial fallbacks
    are uniform. *)
val plan :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?auto:bool ->
  ?workload:workload ->
  ?fp:string ->
  tasks:int ->
  cost:int ->
  unit ->
  plan

(** Static floor of the [auto] cost threshold, in units of tasks × graph
    edges. Setting it to [0] disables the serial fallback entirely (the test
    escape hatch); setting it to [max_int] forces serial. *)
val auto_cutoff : int ref

(** The measured break-even cost: average worker graph-import time divided
    by the serial engine's measured time per cost unit — a job cheaper than
    one graph import cannot win from a cold fan-out. [None] until both an
    import and a serial run have been sampled. *)
val measured_cutoff : unit -> int option

(** The cutoff {!plan} actually compares against in [auto] mode. [warm]
    (default false) waives the measured per-worker import charge — the
    workers already hold the graph. *)
val effective_cutoff :
  ?warm:bool -> workload:workload -> workers:int -> unit -> int

(** How many persistent pool workers currently hold the graph with spec
    fingerprint [fp] in their domain-local MRU cache. Maintained by the
    workers themselves on import/eviction; spawned (non-pool) domains never
    register. *)
val resident_workers : string -> int

(** {2 Worker-resident cache introspection} *)

(** Process-wide counters [(imports, reuses)]: how many times a worker
    domain materialized a graph from a spec versus served it from its
    domain-local cache. Reuses only accrue on persistent pools (spawned
    domains die with their cache). *)
val worker_stats : unit -> int * int

(** Worker-side entry: fetch (or materialize) the calling domain's private
    query object for the snapshot identified by [fp], from its
    manager-independent [spec]. Must run inside the worker that will use the
    result (the MRU cache is domain-local). [spec]/[fp] should come from
    {!Fquery.spec_with_fingerprint} computed on the caller before fan-out.
    Exposed so other subsystems (the failure-scenario sweep) can share the
    per-worker resident graph cache.
    [cmode] (default [`Off]) aligns the resident query's quotient-
    compression mode with the caller's; the cache entry stays keyed on the
    spec fingerprint alone because answers are mode-independent. *)
val worker_import :
  ?cmode:Fquery.compress_mode ->
  fp:string ->
  spec:Fgraph.spec ->
  dp:Dataplane.t ->
  configs:(string -> Vi.t option) ->
  unit ->
  Fquery.t

(** Number of graphs cached in the calling domain's own worker cache. *)
val worker_cached_graphs : unit -> int

(** Per-worker MRU capacity for resident imported graphs (default 4).
    A long-lived service should size it to its live-snapshot count:
    a capacity below the number of snapshots in active rotation makes
    every fan-out re-import a graph some other query just evicted
    (the stuck-at-9% hit-rate failure). Clamped to at least 1. *)
val set_worker_cache_capacity : int -> unit

val worker_cache_capacity : unit -> int

(** [prewarm ?pool q] imports [q]'s graph into every resident pool worker
    up front (one broadcast), so the first query against the snapshot finds
    the workers warm instead of paying the per-worker spec import inside
    its own latency. Returns the number of workers warmed; [0] without a
    live pool. Must not be called from inside a pool worker. *)
val prewarm : ?pool:Par.Pool.t -> Fquery.t -> int

(** Aggregate over a pool's resident workers: how many responded, total
    cached graphs, the configured per-worker capacity, process-wide
    eviction count, and the summed {!Bdd.cache_stats} of their private
    managers. *)
type worker_cache_report = {
  wr_workers : int;
  wr_cached : int;
  wr_capacity : int;
  wr_evictions : int;
  wr_hits : int;
  wr_misses : int;
  wr_entries : int;
  wr_filled : int;
}

val worker_cache_stats : Par.Pool.t -> worker_cache_report
