(** Behavioral-equivalence compression of the forwarding graph (§4.2).

    Locations with identical edge-function signatures modulo neighbor
    renaming are merged into classes by Hopcroft-style refinement; queries
    propagate over the quotient and expand per-class values back to
    concrete locations. Because the quotient runs in the graph's own
    (canonical) BDD manager and the refinement invariant makes the quotient
    least fixpoint equal to the concrete one at every member, expanded
    answers are bit-identical to the uncompressed pass. {!run}
    [~verify:true] additionally checks the concrete fixpoint equations
    location by location and returns [`Mismatch] on any failure, so
    callers always have a sound uncompressed fallback; since that check
    costs on the order of the uncompressed pass itself, callers verify the
    first pass through a partition and trust the invariant afterwards. See
    DESIGN.md §16 for the full argument. *)

(** Propagation direction a partition is built for: [`Fwd] keys locations
    on their in-edge signatures (forward reachability), [`Bwd] on their
    out-edge signatures (backward to-delivered / to-dropped passes). *)
type dir = [ `Fwd | `Bwd ]

type partition

val n_locs : partition -> int
val n_classes : partition -> int

(** [class_of p] maps each location id to its class id. Read-only. *)
val class_of : partition -> int array

(** Classes over locations, in [0, 1]; lower is more compression. *)
val ratio : partition -> float

(** Content fingerprint (MD5 hex) of the class map — keys worker caches and
    bench records on the quotient actually used. *)
val fingerprint : partition -> string

(** Coarsest stable partition of the graph for a direction, ignoring seeds.
    Pure integer refinement: no BDD operations. Classes are kind-pure, and
    [`Fwd] partitions keep in-edge-free locations (the potential flow
    starts) as singletons, so the standard seed shapes — one source
    forward, every same-kind sink backward — are class-uniform on the base
    partition and need no per-pass {!specialize}. *)
val base : Fgraph.t -> dir -> partition

(** [specialize g p ~seeds] splits seeded locations apart by seed value
    (exactness requires class-uniform seeds) and re-stabilizes by
    localized worklist refinement: only classes reachable from the split
    are re-keyed, so the per-call cost tracks the diverging region, not
    the graph. Called once per start by [all_pairs]. *)
val specialize :
  Fgraph.t -> partition -> seeds:(int * Bdd.t) list -> partition

(** [refit g dir ~like ~dirty] re-derives a stable partition for a patched
    graph: locations not flagged dirty keep their class from [like] as the
    starting key, dirty or newly appended locations start as singletons,
    and refinement re-verifies stability against the new graph. Used by
    per-scenario failure analysis to skip untouched classes. *)
val refit :
  Fgraph.t -> dir -> like:partition -> dirty:bool array -> partition

(** [run g p ~seeds] executes the propagation pass on the (lazily
    materialized, cached) quotient graph and expands the result to all
    concrete locations. [`Non_uniform] means the seeds split a class —
    {!specialize} and retry. [`Mismatch] means the per-location fixpoint
    check failed (only possible with [verify], the default) — fall back to
    the uncompressed pass. [~verify:false] skips that O(edges) sweep; use
    it only on a partition whose first pass verified. On [`Sets sets],
    [sets] is bit-identical to {!Freach.forward}/{!Freach.backward} on the
    same seeds. *)
val run :
  ?verify:bool ->
  Fgraph.t -> partition -> seeds:(int * Bdd.t) list ->
  [ `Sets of Bdd.t array | `Non_uniform | `Mismatch ]

(** [loop_screen g p] is [true] when the quotient certifies the concrete
    graph has no multi-location strongly connected component (trivial
    quotient SCCs and no edge between distinct members of one class), in
    which case loop detection can answer the empty list directly. *)
val loop_screen : Fgraph.t -> partition -> bool
