(* Sharded parallel verification.

   Each worker domain re-materializes the forwarding graph from a
   manager-independent spec into its own private BDD manager, so workers
   share no mutable state at all — no concurrent unique table, no locking
   on the hot path. Independent queries (per-source forward passes,
   per-destination-shard backward passes) fan out over domains via the
   work-stealing scheduler; results come back either as plain data
   (reachability rows) or as exported BDDs that are imported and unioned in
   the caller's manager. Both merge paths are bit-identical to the
   sequential engine: BDDs are canonical, and every edge function
   distributes over union, so a fixpoint seeded with a union of sinks
   equals the pointwise union of per-shard fixpoints.

   Importing a graph into a cold manager per call is what inverted the
   speedup in the first sharded version, so workers now keep their imported
   graph (and its warm BDD caches) in domain-local storage, keyed by the
   spec fingerprint: on a persistent {!Par.Pool} the import happens once per
   worker per snapshot, and every later query against the same snapshot
   starts hot. An incremental update yields a new fingerprint, so stale
   entries age out of the small MRU cache by themselves. *)

(* --- worker-resident snapshot state ------------------------------------ *)

type cached = { c_fp : string; c_q : Fquery.t }

(* Per-worker MRU capacity. The historical fixed capacity of 2 covered a
   base snapshot plus its incremental successor, but thrashes as soon as a
   session serves three or more live fingerprints (an analysis daemon with
   several loaded snapshots, or the failure sweep's per-scenario graphs):
   every fan-out then re-imports a graph some other query just evicted.
   Default 4; long-lived services size it to their live-snapshot count via
   {!set_worker_cache_capacity}. *)
let cache_capacity = ref 4

let set_worker_cache_capacity n = cache_capacity := max 1 n
let worker_cache_capacity () = !cache_capacity

let worker_cache : cached list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let graph_imports = Atomic.make 0
let graph_reuses = Atomic.make 0
let graph_evictions = Atomic.make 0

let worker_stats () = (Atomic.get graph_imports, Atomic.get graph_reuses)

(* --- pool-worker residency registry ------------------------------------- *)

(* How many persistent pool workers currently hold each fingerprint in
   their domain-local cache. Maintained from inside the workers (import
   increments, eviction decrements; only counted under [Par.Pool.in_worker]
   — graphs imported by one-shot spawned domains die with the domain and
   must not register as resident). {!plan} reads it to decide whether a
   fan-out would start warm: a cold fan-out must additionally pay one graph
   import per worker, a warm one only job dispatch. *)
let resident_mutex = Mutex.create ()
let resident_counts : (string, int) Hashtbl.t = Hashtbl.create 16

let note_resident fp delta =
  if Par.Pool.in_worker () then begin
    Mutex.lock resident_mutex;
    let c = Option.value ~default:0 (Hashtbl.find_opt resident_counts fp) + delta in
    if c <= 0 then Hashtbl.remove resident_counts fp
    else Hashtbl.replace resident_counts fp c;
    Mutex.unlock resident_mutex
  end

let resident_workers fp =
  Mutex.lock resident_mutex;
  let c = Option.value ~default:0 (Hashtbl.find_opt resident_counts fp) in
  Mutex.unlock resident_mutex;
  c

(* --- measured calibration ----------------------------------------------- *)

(* Wall-clock samples feeding the [auto] plan: the cost of materializing a
   graph in a worker (the dominant cold fan-out overhead) and the serial
   engine's throughput in cost units (tasks × graph edges) per nanosecond.
   Both are measured on this machine at the current snapshot scale, so the
   derived cutoff tracks the real break-even instead of a hardcoded guess. *)
let import_ns_total = Atomic.make 0
let import_samples = Atomic.make 0
let serial_ns_total = Atomic.make 0
let serial_units_total = Atomic.make 0

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let note_import ns =
  if ns > 0 then begin
    ignore (Atomic.fetch_and_add import_ns_total ns);
    Atomic.incr import_samples
  end

let note_serial ~cost ns =
  if cost > 0 && ns > 0 then begin
    ignore (Atomic.fetch_and_add serial_ns_total ns);
    ignore (Atomic.fetch_and_add serial_units_total cost)
  end

let measured_cutoff () =
  let samples = Atomic.get import_samples in
  let s_units = Atomic.get serial_units_total in
  let s_ns = Atomic.get serial_ns_total in
  if samples = 0 || s_units = 0 || s_ns = 0 then None
  else begin
    let import_ns = Atomic.get import_ns_total / samples in
    (* serial nanoseconds per cost unit, floored so the division below
       cannot blow up on very fast serial runs *)
    let unit_ns = max 1 (s_ns / s_units) in
    Some (import_ns / unit_ns)
  end

(* Runs inside a worker domain: fetch (or build) this domain's private query
   object for the snapshot identified by [fp]. MRU order; capacity bounds
   total managers per worker. [cmode] aligns the resident query's quotient-
   compression mode with the caller's: the cached entry itself stays keyed
   on the spec fingerprint alone because compressed and uncompressed
   answers are bit-identical — only the mode flag (and with it the lazily
   built partitions) needs to follow the request. *)
let worker_query ?(cmode = `Off) ~fp ~spec ~dp ~configs () =
  let cache = Domain.DLS.get worker_cache in
  match List.find_opt (fun c -> c.c_fp = fp) !cache with
  | Some c ->
    Atomic.incr graph_reuses;
    cache := c :: List.filter (fun c' -> c'.c_fp <> fp) !cache;
    Fquery.set_compress_mode c.c_q cmode;
    c.c_q
  | None ->
    let t0 = now_ns () in
    let qw =
      Fquery.of_graph ~compress_mode:cmode (Fgraph.of_spec spec) ~dp ~configs
    in
    (* Count (and time) the import only after it succeeds and before the
       cache insert below: a raising import must leave the counters
       consistent with what the MRU cache actually holds. *)
    Atomic.incr graph_imports;
    note_import (now_ns () - t0);
    let cap = !cache_capacity in
    let keep = List.filteri (fun i _ -> i < cap - 1) !cache in
    let evicted = List.filteri (fun i _ -> i >= cap - 1) !cache in
    List.iter
      (fun c ->
        Atomic.incr graph_evictions;
        note_resident c.c_fp (-1))
      evicted;
    cache := { c_fp = fp; c_q = qw } :: keep;
    note_resident fp 1;
    qw

let worker_import = worker_query

(* Import this graph into every resident pool worker up front, so the first
   client query against the snapshot finds the workers warm instead of
   paying the per-worker spec import inside its own latency (the cold-path
   inversion: importing per request made the cold sharded all-pairs slower
   than serial). Returns the number of workers warmed; 0 without a live
   pool — spawned domains die with their cache, so there is nothing durable
   to warm. *)
let prewarm ?pool q =
  match pool with
  | Some p when not (Par.Pool.closed p) ->
    let spec, fp = Fquery.spec_with_fingerprint q in
    let dp = q.Fquery.dp and configs = q.Fquery.configs in
    (* Importing the graph alone leaves each worker's private BDD manager
       with a cold unique table and operation caches, so the first sharded
       query still paid near-serial cost per shard (the cold-path
       inversion). Forward passes share little structure across starts, so
       run the full default-starts sweep in every worker: each manager ends
       in exactly the state a completed query leaves behind, and the first
       client-visible query runs at warm speed. The sweep costs one serial
       pass of wall time, paid here — at session/daemon load — instead of
       inside the first request's latency. *)
    let cmode = Fquery.compress_mode q in
    let seeds = Fquery.default_starts q in
    let warmed =
      Par.Pool.broadcast p (fun _ ->
          let qw = worker_query ~cmode ~fp ~spec ~dp ~configs () in
          List.iter (fun s -> ignore (Fquery.pairs_for_start qw s)) seeds)
    in
    Array.fold_left
      (fun n r -> match r with Some () -> n + 1 | None -> n)
      0 warmed
  | Some _ | None -> 0

let worker_cached_graphs () = List.length !(Domain.DLS.get worker_cache)

type worker_cache_report = {
  wr_workers : int;
  wr_cached : int;
  wr_capacity : int;
  wr_evictions : int;
  wr_hits : int;
  wr_misses : int;
  wr_entries : int;
  wr_filled : int;
}

let worker_cache_stats pool =
  let per_worker =
    Par.Pool.broadcast pool (fun _ ->
        let cache = !(Domain.DLS.get worker_cache) in
        let agg =
          List.fold_left
            (fun (h, m, e, f) c ->
              let s = Bdd.cache_stats (Pktset.man (Fgraph.env (Fquery.graph c.c_q))) in
              ( h + s.Bdd.cs_hits, m + s.Bdd.cs_misses,
                e + s.Bdd.cs_entries, f + s.Bdd.cs_filled ))
            (0, 0, 0, 0) cache
        in
        (List.length cache, agg))
  in
  Array.fold_left
    (fun acc w ->
      match w with
      | None -> acc
      | Some (n, (h, m, e, f)) ->
        { acc with
          wr_workers = acc.wr_workers + 1; wr_cached = acc.wr_cached + n;
          wr_hits = acc.wr_hits + h; wr_misses = acc.wr_misses + m;
          wr_entries = acc.wr_entries + e; wr_filled = acc.wr_filled + f })
    { wr_workers = 0; wr_cached = 0; wr_capacity = !cache_capacity;
      wr_evictions = Atomic.get graph_evictions; wr_hits = 0; wr_misses = 0;
      wr_entries = 0; wr_filled = 0 }
    per_worker

(* --- adaptive scheduling ------------------------------------------------ *)

type plan = Serial | Parallel of int

(* How the parallelizable work scales when sharded across workers. *)
type workload =
  | Uniform  (** independent per-task passes: fan-out divides total work *)
  | Sharded_pass
      (** a fixed small number of whole-graph passes (multipath: one per
          sink kind) run concurrently: total work matches the serial engine
          but the achievable speedup is bounded by the pass count, so only
          jobs big enough to amortize the per-worker graph import win *)

(* Static floor for the [auto] cutoff in units of tasks × graph edges:
   below this, the fan-out overhead (job dispatch, spec shipping, result
   import) exceeds the win and serial execution is chosen. [0] is an escape
   hatch meaning "never fall back to serial" (used by tests to force the
   parallel branch); otherwise the floor is raised by the measured
   per-worker graph-import cost once samples exist. *)
let auto_cutoff = ref 60_000

(* Multiply [cutoff] by [factor], saturating instead of overflowing (the
   test escape hatch sets the cutoff to [max_int]). *)
let scale_cutoff cutoff factor =
  if cutoff > max_int / factor then max_int else cutoff * factor

let effective_cutoff ?(warm = false) ~workload ~workers () =
  ignore workers;
  if !auto_cutoff = 0 then 0
  else begin
    let base =
      (* A cold fan-out pays one graph import per worker before any useful
         work, so the measured import cost is charged on top of the static
         floor. Warm workers (graph already resident in their MRU cache)
         only pay job dispatch: the floor alone decides, letting smaller
         jobs go parallel once the session has warmed up. *)
      if warm then !auto_cutoff
      else
        match measured_cutoff () with
        | Some m -> max !auto_cutoff m
        | None -> !auto_cutoff
    in
    match workload with
    | Uniform -> base
    | Sharded_pass ->
      (* two concurrent passes at best halve the wall clock, so the job must
         out-earn twice the usual fan-out overhead before the pool pays off *)
      scale_cutoff base 2
  end

let plan ?pool ?(domains = 1) ?(auto = false) ?(workload = Uniform) ?fp ~tasks
    ~cost () =
  let workers =
    match pool with
    | Some p when not (Par.Pool.closed p) -> Par.Pool.size p
    | Some _ | None -> domains
  in
  (* Warm only counts when every worker already holds the graph: a partial
     residency would still pay imports on the cold workers. Only resident
     pool workers register (see [note_resident]), so [fp = None] — or any
     graph never shipped to a pool — plans as cold. *)
  let warm =
    match (fp, pool) with
    | Some fp, Some p when not (Par.Pool.closed p) ->
      resident_workers fp >= Par.Pool.size p
    | _ -> false
  in
  if tasks < 2 || workers <= 1 then Serial
  else if auto && cost < effective_cutoff ~warm ~workload ~workers () then
    Serial
  else Parallel workers

(* --- entry points ------------------------------------------------------- *)

(* Split any fan-out group longer than [max_len] (load balance: one merged
   class holding most starts must not serialize the whole sweep onto a
   single worker). *)
let chunk_group ~max_len group =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if n >= max_len then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (n + 1) tl
  in
  go [] [] 0 group

let all_pairs ?pool ?(domains = 1) ?(auto = false) ?hdr ?starts q =
  let starts =
    match starts with
    | Some s -> s
    | None -> Fquery.default_starts q
  in
  let g = Fquery.graph q in
  let cost = List.length starts * Fgraph.n_edges g in
  (* Per-group fan-out (ISSUE 10): interchangeable sources (identical
     concrete out-edge signatures, see {!Fquery.start_groups}) form one
     task, and the worker runs a single pass for the whole group, relabeling
     the representative's rows for the other members. Without compression
     every group is a singleton and this is exactly the per-source fan-out
     of PR 3. *)
  let groups =
    let n_workers =
      match pool with
      | Some p when not (Par.Pool.closed p) -> Par.Pool.size p
      | Some _ | None -> max 1 domains
    in
    let max_len =
      max 1 ((List.length starts + (4 * n_workers) - 1) / (4 * n_workers))
    in
    List.concat_map (chunk_group ~max_len) (Fquery.start_groups q starts)
  in
  match
    plan ?pool ~domains ~auto
      ?fp:(Fquery.cached_fingerprint q)
      ~tasks:(List.length groups) ~cost ()
  with
  | Serial ->
    let t0 = now_ns () in
    let rows = Fquery.all_pairs q ?hdr ~starts () in
    note_serial ~cost (now_ns () - t0);
    rows
  | Parallel domains ->
    let spec, fp = Fquery.spec_with_fingerprint q in
    let cmode = Fquery.compress_mode q in
    let hdr_ex =
      Option.map (fun h -> Bdd.export (Pktset.man (Fgraph.env g)) [ h ]) hdr
    in
    let dp = q.Fquery.dp and configs = q.Fquery.configs in
    let group_rows =
      Par.map_dynamic_init ?pool ~domains
        ~init:(fun () ->
          let qw = worker_query ~cmode ~fp ~spec ~dp ~configs () in
          let hdr_w =
            Option.map
              (fun ex ->
                List.hd (Bdd.import (Pktset.man (Fquery.env qw)) ex))
              hdr_ex
          in
          (qw, hdr_w))
        (fun (qw, hdr_w) group ->
          match group with
          | [] -> []
          | (i0, s0) :: rest ->
            let rows0 = Fquery.pairs_for_start qw ?hdr:hdr_w s0 in
            (i0, rows0)
            :: List.map
                 (fun (i, s) ->
                   ( i,
                     List.map
                       (fun r -> { r with Fquery.rr_src = s })
                       rows0 ))
                 rest)
        (Array.of_list groups)
    in
    (* Reassemble rows in the original start order: grouping must not be
       observable in the result (bit-identical to the sequential sweep). *)
    let indexed = List.concat (Array.to_list group_rows) in
    let sorted =
      List.sort (fun (i, _) (j, _) -> Int.compare i j) indexed
    in
    List.concat_map snd sorted

let multipath_consistency ?pool ?(domains = 1) ?(auto = false) ?starts q =
  let starts =
    match starts with
    | Some s -> s
    | None -> Fquery.default_starts q
  in
  let g = Fquery.graph q in
  let delivered_sinks =
    Fgraph.locs_where g (function
      | Fgraph.Dst _ | Fgraph.Accept _ -> true
      | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false)
  in
  let dropped_sinks =
    Fgraph.locs_where g (function
      | Fgraph.Dropped _ -> true
      | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dst _
      | Fgraph.Accept _ -> false)
  in
  (* The serial engine does two whole-graph backward passes (delivered,
     dropped); the parallel plan runs exactly those two passes concurrently,
     each with all its sinks batched into a single job so the per-worker
     graph import is paid once per pass, not once per sink shard. *)
  let cost =
    (List.length delivered_sinks + List.length dropped_sinks) * Fgraph.n_edges g
  in
  match
    plan ?pool ~domains ~auto ~workload:Sharded_pass
      ?fp:(Fquery.cached_fingerprint q)
      ~tasks:2 ~cost ()
  with
  | Serial ->
    let t0 = now_ns () in
    let verdicts = Fquery.multipath_consistency q ~starts () in
    note_serial ~cost (now_ns () - t0);
    verdicts
  | Parallel domains ->
    let man = Pktset.man (Fgraph.env g) in
    let start_ids =
      (* location indices are preserved by of_spec, so ids computed on the
         main graph address the same locations in every worker's graph *)
      List.map
        (fun (node, iface) ->
          match iface with
          | Some i -> Fgraph.loc_id g (Fgraph.Src (node, i))
          | None -> Fgraph.loc_id g (Fgraph.Fwd node))
        starts
    in
    let wanted = List.filter_map Fun.id start_ids in
    let tasks =
      List.filter
        (fun (_, sinks) -> sinks <> [])
        [ (`Deliver, delivered_sinks); (`Drop, dropped_sinks) ]
    in
    let spec, fp = Fquery.spec_with_fingerprint q in
    let cmode = Fquery.compress_mode q in
    let dp = q.Fquery.dp and configs = q.Fquery.configs in
    let shards =
      Par.map_dynamic_init ?pool ~domains
        ~init:(fun () -> worker_query ~cmode ~fp ~spec ~dp ~configs ())
        (fun qw (kind, sinks) ->
          (* route through the worker query object: the pass lands in its
             memo and goes through the quotient when compression is on *)
          ignore sinks;
          let sets =
            match kind with
            | `Deliver -> Fquery.to_delivered qw ()
            | `Drop -> Fquery.to_dropped qw ()
          in
          let gw = Fquery.graph qw in
          let at_starts = List.map (fun id -> sets.(id)) wanted in
          (kind, Bdd.export (Pktset.man (Fgraph.env gw)) at_starts))
        (Array.of_list tasks)
    in
    (* Import each shard's per-start sets into the caller's manager and union
       per kind: union-distributivity makes this equal (canonically, so
       bit-identical) to one backward pass from all sinks. *)
    let n = List.length wanted in
    let deliver = Array.make n Bdd.bot and drop = Array.make n Bdd.bot in
    Array.iter
      (fun (kind, ex) ->
        let sets = Bdd.import man ex in
        let acc =
          match kind with
          | `Deliver -> deliver
          | `Drop -> drop
        in
        List.iteri (fun i s -> acc.(i) <- Bdd.bor man acc.(i) s) sets)
      shards;
    let by_id = Hashtbl.create 16 in
    List.iteri
      (fun i id ->
        if not (Hashtbl.mem by_id id) then Hashtbl.add by_id id (deliver.(i), drop.(i)))
      wanted;
    let clean =
      let e = Fgraph.env g in
      let acc = ref Bdd.top in
      for b = 0 to Pktset.extra_count e - 1 do
        acc := Bdd.band man !acc (Bdd.nvar man (Pktset.extra_level e b))
      done;
      !acc
    in
    List.filter_map
      (fun (s, id) ->
        match id with
        | None -> None
        | Some id ->
          let d, r = Hashtbl.find by_id id in
          let v = Bdd.band man (Bdd.band man d r) clean in
          if Bdd.is_bot v then None else Some (s, v))
      (List.combine starts start_ids)
