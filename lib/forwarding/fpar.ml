(* Sharded parallel verification.

   Each worker domain re-materializes the forwarding graph from a
   manager-independent spec into its own private BDD manager, so workers
   share no mutable state at all — no concurrent unique table, no locking
   on the hot path. Independent queries (per-source forward passes,
   per-destination-shard backward passes) fan out over domains via the
   work-stealing scheduler; results come back either as plain data
   (reachability rows) or as exported BDDs that are imported and unioned in
   the caller's manager. Both merge paths are bit-identical to the
   sequential engine: BDDs are canonical, and every edge function
   distributes over union, so a fixpoint seeded with a union of sinks
   equals the pointwise union of per-shard fixpoints. *)

let all_pairs ?(domains = 1) ?hdr ?starts q =
  let starts =
    match starts with
    | Some s -> s
    | None -> Fquery.default_starts q
  in
  if domains <= 1 || List.length starts < 2 then Fquery.all_pairs q ?hdr ~starts ()
  else begin
    let g = Fquery.graph q in
    let spec = Fgraph.to_spec g in
    let hdr_ex =
      Option.map (fun h -> Bdd.export (Pktset.man (Fgraph.env g)) [ h ]) hdr
    in
    let dp = q.Fquery.dp and configs = q.Fquery.configs in
    let rows =
      Par.map_dynamic_init ~domains
        ~init:(fun () ->
          let gw = Fgraph.of_spec spec in
          let hdr_w =
            Option.map
              (fun ex -> List.hd (Bdd.import (Pktset.man (Fgraph.env gw)) ex))
              hdr_ex
          in
          (Fquery.of_graph gw ~dp ~configs, hdr_w))
        (fun (qw, hdr_w) s -> Fquery.pairs_for_start qw ?hdr:hdr_w s)
        (Array.of_list starts)
    in
    List.concat (Array.to_list rows)
  end

(* Round-robin split into at most [k] non-empty groups. *)
let shard k lst =
  let k = max 1 (min k (List.length lst)) in
  let buckets = Array.make k [] in
  List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) lst;
  List.filter (fun l -> l <> []) (Array.to_list (Array.map List.rev buckets))

let multipath_consistency ?(domains = 1) ?starts q =
  let starts =
    match starts with
    | Some s -> s
    | None -> Fquery.default_starts q
  in
  if domains <= 1 then Fquery.multipath_consistency q ~starts ()
  else begin
    let g = Fquery.graph q in
    let man = Pktset.man (Fgraph.env g) in
    let start_ids =
      (* location indices are preserved by of_spec, so ids computed on the
         main graph address the same locations in every worker's graph *)
      List.map
        (fun (node, iface) ->
          match iface with
          | Some i -> Fgraph.loc_id g (Fgraph.Src (node, i))
          | None -> Fgraph.loc_id g (Fgraph.Fwd node))
        starts
    in
    let wanted = List.filter_map Fun.id start_ids in
    let delivered_sinks =
      Fgraph.locs_where g (function
        | Fgraph.Dst _ | Fgraph.Accept _ -> true
        | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false)
    in
    let dropped_sinks =
      Fgraph.locs_where g (function
        | Fgraph.Dropped _ -> true
        | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dst _
        | Fgraph.Accept _ -> false)
    in
    let tasks =
      List.map (fun s -> (`Deliver, s)) (shard domains delivered_sinks)
      @ List.map (fun s -> (`Drop, s)) (shard domains dropped_sinks)
    in
    let spec = Fgraph.to_spec g in
    let shards =
      Par.map_dynamic_init ~domains
        ~init:(fun () -> Fgraph.of_spec spec)
        (fun gw (kind, sinks) ->
          let sets = Freach.backward gw (List.map (fun id -> (id, Bdd.top)) sinks) in
          let at_starts = List.map (fun id -> sets.(id)) wanted in
          (kind, Bdd.export (Pktset.man (Fgraph.env gw)) at_starts))
        (Array.of_list tasks)
    in
    (* Import each shard's per-start sets into the caller's manager and union
       per kind: union-distributivity makes this equal (canonically, so
       bit-identical) to one backward pass from all sinks. *)
    let n = List.length wanted in
    let deliver = Array.make n Bdd.bot and drop = Array.make n Bdd.bot in
    Array.iter
      (fun (kind, ex) ->
        let sets = Bdd.import man ex in
        let acc =
          match kind with
          | `Deliver -> deliver
          | `Drop -> drop
        in
        List.iteri (fun i s -> acc.(i) <- Bdd.bor man acc.(i) s) sets)
      shards;
    let by_id = Hashtbl.create 16 in
    List.iteri
      (fun i id ->
        if not (Hashtbl.mem by_id id) then Hashtbl.add by_id id (deliver.(i), drop.(i)))
      wanted;
    let clean =
      let e = Fgraph.env g in
      let acc = ref Bdd.top in
      for b = 0 to Pktset.extra_count e - 1 do
        acc := Bdd.band man !acc (Bdd.nvar man (Pktset.extra_level e b))
      done;
      !acc
    in
    List.filter_map
      (fun (s, id) ->
        match id with
        | None -> None
        | Some id ->
          let d, r = Hashtbl.find by_id id in
          let v = Bdd.band man (Bdd.band man d r) clean in
          if Bdd.is_bot v then None else Some (s, v))
      (List.combine starts start_ids)
  end
