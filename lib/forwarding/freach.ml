(* The edge-application counter is per-propagation and returned with the
   result: a global mutable counter would race once passes run concurrently
   on multiple domains. *)
let propagate g seeds ~edges_of ~endpoint ~apply_fn =
  let edge_apps = ref 0 in
  let man = Pktset.man g.Fgraph.env in
  let n = Fgraph.n_locs g in
  let sets = Array.make n Bdd.bot in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue v =
    if not queued.(v) then begin
      queued.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter
    (fun (v, s) ->
      sets.(v) <- Bdd.bor man sets.(v) s;
      enqueue v)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    queued.(v) <- false;
    List.iter
      (fun (e : Fgraph.edge) ->
        incr edge_apps;
        let contribution = apply_fn e sets.(v) in
        let w = endpoint e in
        let united = Bdd.bor man sets.(w) contribution in
        if not (Bdd.equal united sets.(w)) then begin
          sets.(w) <- united;
          enqueue w
        end)
      (edges_of v)
  done;
  (sets, !edge_apps)

let forward_counted g seeds =
  propagate g seeds
    ~edges_of:(fun v -> g.Fgraph.out_edges.(v))
    ~endpoint:(fun e -> e.Fgraph.e_to)
    ~apply_fn:(fun e s -> Fgraph.apply g e.Fgraph.e_fn s)

let backward_counted g seeds =
  propagate g seeds
    ~edges_of:(fun v -> g.Fgraph.in_edges.(v))
    ~endpoint:(fun e -> e.Fgraph.e_from)
    ~apply_fn:(fun e s -> Fgraph.apply_reverse g e.Fgraph.e_fn s)

let forward g seeds = fst (forward_counted g seeds)
let backward g seeds = fst (backward_counted g seeds)
