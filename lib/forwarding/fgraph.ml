type loc =
  | Src of string * string
  | Fwd of string
  | Pre_out of string * string * Ipv4.t option
  | Dst of string * string
  | Accept of string
  | Dropped of string

let loc_to_string = function
  | Src (n, i) -> Printf.sprintf "src(%s[%s])" n i
  | Fwd n -> Printf.sprintf "fwd(%s)" n
  | Pre_out (n, i, Some g) -> Printf.sprintf "out(%s[%s] via %s)" n i (Ipv4.to_string g)
  | Pre_out (n, i, None) -> Printf.sprintf "out(%s[%s] attached)" n i
  | Dst (n, i) -> Printf.sprintf "dst(%s[%s])" n i
  | Accept n -> Printf.sprintf "accept(%s)" n
  | Dropped n -> Printf.sprintf "dropped(%s)" n

type func =
  | Filter of Bdd.t
  | Transform of Bdd.t
  | Set_extra of (int * bool) list
  | Erase_extra of int list
  | Seq of func list

type edge = { e_from : int; e_to : int; e_fn : func }

type t = {
  env : Pktset.t;
  locs : loc array;
  loc_index : (loc, int) Hashtbl.t;
  mutable out_edges : edge list array;
  mutable in_edges : edge list array;
  varsets : (int list, Bdd.varset) Hashtbl.t;
    (* memoized extra-bit varsets: keeps operation-cache codes stable *)
}

let zone_bits = 4

let loc_id t l = Hashtbl.find_opt t.loc_index l
let n_locs t = Array.length t.locs
let n_edges t = Array.fold_left (fun acc es -> acc + List.length es) 0 t.out_edges

let locs_where t pred =
  let acc = ref [] in
  Array.iteri (fun i l -> if pred l then acc := i :: !acc) t.locs;
  List.rev !acc

(* --- edge function application --- *)

let varset_of t bits =
  let levels = List.map (Pktset.extra_level t.env) bits in
  match Hashtbl.find_opt t.varsets levels with
  | Some vs -> vs
  | None ->
    let vs = Bdd.varset (Pktset.man t.env) levels in
    Hashtbl.add t.varsets levels vs;
    vs

let rec apply t fn set =
  let man = Pktset.man t.env in
  match fn with
  | Filter f -> Bdd.band man set f
  | Transform rel -> Pktset.apply_rel t.env rel set
  | Set_extra bits ->
    let vs = varset_of t (List.map fst bits) in
    let freed = Bdd.exists man vs set in
    List.fold_left
      (fun acc (b, v) ->
        let lvl = Pktset.extra_level t.env b in
        Bdd.band man acc (if v then Bdd.var man lvl else Bdd.nvar man lvl))
      freed bits
  | Erase_extra bits -> Bdd.exists man (varset_of t bits) set
  | Seq fns -> List.fold_left (fun acc fn -> apply t fn acc) set fns

let rec apply_reverse t fn target =
  let man = Pktset.man t.env in
  match fn with
  | Filter f -> Bdd.band man target f
  | Transform rel -> Pktset.apply_rel_reverse t.env rel target
  | Set_extra bits ->
    (* forward sets bits to fixed values; a packet maps into [target] iff
       [target] holds with those values, with the original bits free *)
    let constrained =
      List.fold_left
        (fun acc (b, v) ->
          let lvl = Pktset.extra_level t.env b in
          Bdd.band man acc (if v then Bdd.var man lvl else Bdd.nvar man lvl))
        target bits
    in
    Bdd.exists man (varset_of t (List.map fst bits)) constrained
  | Erase_extra bits -> Bdd.exists man (varset_of t bits) target
  | Seq fns -> List.fold_right (fun fn acc -> apply_reverse t fn acc) fns target

(* --- construction helpers --- *)

let zone_code_filter env code =
  (* zone bits 0..zone_bits-1 encode the ingress zone id *)
  let man = Pktset.man env in
  let rec go b acc =
    if b >= zone_bits then acc
    else
      let lvl = Pktset.extra_level env b in
      let lit = if (code lsr b) land 1 = 1 then Bdd.var man lvl else Bdd.nvar man lvl in
      go (b + 1) (Bdd.band man acc lit)
  in
  go 0 Bdd.top

let zone_code_set code =
  Set_extra (List.init zone_bits (fun b -> (b, (code lsr b) land 1 = 1)))

(* NAT rule chains: first matching rule applies; unmatched packets pass
   unchanged. Destination NAT matches on destination prefixes; source NAT on
   an ACL or source prefix, with the egress interface address available for
   interface pools. *)
let dst_nat_rel env (cfg : Vi.t) =
  let man = Pktset.man env in
  let rules = List.filter (fun (r : Vi.nat_rule) -> r.nr_kind = `Destination) cfg.nat_rules in
  if rules = [] then None
  else begin
    let covered = ref Bdd.bot in
    let rel = ref Bdd.bot in
    List.iter
      (fun (r : Vi.nat_rule) ->
        let guard =
          match r.Vi.nr_match_dst with
          | Some pre -> Pktset.dst_prefix env pre
          | None -> Bdd.bot
        in
        let guard = Bdd.bdiff man guard !covered in
        let rewrite =
          match r.Vi.nr_pool with
          | Vi.Nat_ip ip -> Some (Pktset.Set_value ip)
          | Vi.Nat_prefix p -> Some (Pktset.Set_value (Prefix.first_host p))
          | Vi.Nat_interface -> None
        in
        (match rewrite with
         | Some rw ->
           rel := Bdd.bor man !rel (Pktset.rel env ~guard [ (Field.Dst_ip, rw) ]);
           covered := Bdd.bor man !covered guard
         | None -> ()))
      rules;
    let identity = Pktset.rel env ~guard:(Bdd.bnot man !covered) [] in
    Some (Bdd.bor man !rel identity)
  end

let src_nat_rel env (cfg : Vi.t) ~egress_ip =
  let man = Pktset.man env in
  let rules = List.filter (fun (r : Vi.nat_rule) -> r.nr_kind = `Source) cfg.nat_rules in
  if rules = [] then None
  else begin
    let covered = ref Bdd.bot in
    let rel = ref Bdd.bot in
    List.iter
      (fun (r : Vi.nat_rule) ->
        let guard =
          match (r.Vi.nr_match_acl, r.Vi.nr_match_src) with
          | Some name, _ -> Acl_bdd.permits_named env cfg name
          | None, Some pre -> Pktset.src_prefix env pre
          | None, None -> Bdd.bot
        in
        let guard = Bdd.bdiff man guard !covered in
        let rewrite =
          match r.Vi.nr_pool with
          | Vi.Nat_ip ip -> Some (Pktset.Set_value ip)
          | Vi.Nat_prefix p -> Some (Pktset.Set_value (Prefix.first_host p))
          | Vi.Nat_interface -> Option.map (fun ip -> Pktset.Set_value ip) egress_ip
        in
        match rewrite with
        | Some rw ->
          rel := Bdd.bor man !rel (Pktset.rel env ~guard [ (Field.Src_ip, rw) ]);
          covered := Bdd.bor man !covered guard
        | None -> ())
      rules;
    let identity = Pktset.rel env ~guard:(Bdd.bnot man !covered) [] in
    Some (Bdd.bor man !rel identity)
  end

(* --- graph construction --- *)

type builder = {
  b_env : Pktset.t;
  mutable b_locs : loc list;  (* reversed *)
  b_index : (loc, int) Hashtbl.t;
  mutable b_count : int;
  mutable b_edges : edge list;  (* reversed *)
}

let bnode b l =
  match Hashtbl.find_opt b.b_index l with
  | Some i -> i
  | None ->
    let i = b.b_count in
    b.b_count <- i + 1;
    Hashtbl.add b.b_index l i;
    b.b_locs <- l :: b.b_locs;
    i

let bedge b from_ to_ fn = b.b_edges <- { e_from = from_; e_to = to_; e_fn = fn } :: b.b_edges

let simplify_fn env fn =
  (* flatten Seq, drop identity filters *)
  let rec flat fn =
    match fn with
    | Seq fns -> List.concat_map flat fns
    | Filter f when Bdd.is_top f -> []
    | Filter _ | Transform _ | Set_extra _ | Erase_extra _ -> [ fn ]
  in
  ignore env;
  match flat fn with
  | [] -> Filter Bdd.top
  | [ f ] -> f
  | fns -> Seq fns

(* Per-node edge construction. Every edge emitted here has its [e_from]
   location owned by [name] (ingress edges leave Src(name,·), FIB edges
   leave Fwd(name), egress and wire edges leave Pre_out(name,·,·)) — the
   ownership invariant {!patch} relies on to splice a node's edges in and
   out without touching the rest of the graph. *)
let build_node b ~session_fastpath ~dp name (cfg : Vi.t) =
  let env = b.b_env in
  let man = Pktset.man env in
  let topo = dp.Dataplane.topo in
  let fwd = bnode b (Fwd name) in
        let dropped = bnode b (Dropped name) in
        let accept = bnode b (Accept name) in
        let zoned = cfg.zones <> [] in
        let zone_ids =
          (* 0 = originated, 1..k = zones, k+1 = unzoned interface *)
          List.mapi (fun i (z : Vi.zone) -> (z.z_name, i + 1)) cfg.zones
        in
        let null_zone = List.length zone_ids + 1 in
        let zone_code_of_iface iface =
          match Zone_eval.zone_of cfg iface with
          | Some z -> (
            match List.assoc_opt z zone_ids with
            | Some c -> c
            | None -> null_zone)
          | None -> null_zone
        in
        let dnat = dst_nat_rel env cfg in
        (* ingress: Src(n,i) -> Fwd(n) *)
        List.iter
          (fun (ep : L3.endpoint) ->
            let src = bnode b (Src (name, ep.ep_iface)) in
            let in_acl =
              match Vi.find_interface cfg ep.ep_iface with
              | Some { Vi.if_in_acl = Some acl; _ } -> Acl_bdd.permits_named env cfg acl
              | Some _ | None -> Bdd.top
            in
            (* denied at ingress *)
            if not (Bdd.is_top in_acl) then
              bedge b src dropped (Filter (Bdd.bnot man in_acl));
            let steps =
              [ Filter in_acl ]
              @ (if zoned then [ zone_code_set (zone_code_of_iface ep.ep_iface) ] else [])
              @ (match dnat with
                 | Some rel -> [ Transform rel ]
                 | None -> [])
            in
            bedge b src fwd (simplify_fn env (Seq steps)))
          (L3.endpoints topo name);
        (* FIB: Fwd(n) -> Pre_out / Accept / Dropped, longest prefix first *)
        let fib = (Dataplane.node dp name).Dataplane.nr_fib in
        let entries =
          List.sort
            (fun (a : Fib.entry) (c : Fib.entry) ->
              Int.compare (Prefix.length c.fe_prefix) (Prefix.length a.fe_prefix))
            (Fib.entries fib)
        in
        let covered = ref Bdd.bot in
        let accept_set = ref Bdd.bot in
        let drop_set = ref Bdd.bot in
        let out_sets : (string * Ipv4.t option, Bdd.t ref) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (e : Fib.entry) ->
            let pfx = Pktset.dst_prefix env e.fe_prefix in
            let cell = Bdd.bdiff man pfx !covered in
            covered := Bdd.bor man !covered pfx;
            if not (Bdd.is_bot cell) then
              List.iter
                (fun action ->
                  match action with
                  | Fib.Receive -> accept_set := Bdd.bor man !accept_set cell
                  | Fib.Drop_null -> drop_set := Bdd.bor man !drop_set cell
                  | Fib.Forward { out_iface; gateway } ->
                    let key = (out_iface, gateway) in
                    let r =
                      match Hashtbl.find_opt out_sets key with
                      | Some r -> r
                      | None ->
                        let r = ref Bdd.bot in
                        Hashtbl.add out_sets key r;
                        r
                    in
                    r := Bdd.bor man !r cell)
                e.fe_actions)
          entries;
        (* no route at all *)
        drop_set := Bdd.bor man !drop_set (Bdd.bnot man !covered);
        if not (Bdd.is_bot !accept_set) then bedge b fwd accept (Filter !accept_set);
        bedge b fwd dropped (Filter !drop_set);
        let out_list =
          List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) out_sets [])
        in
        List.iter
          (fun (((out_iface, gateway) as _key), cell) ->
            let pre = bnode b (Pre_out (name, out_iface, gateway)) in
            bedge b fwd pre (Filter cell);
            (* zone policy for this egress interface *)
            let zone_fns =
              if not zoned then []
              else begin
                let out_zone = Zone_eval.zone_of cfg out_iface in
                let allowed_for code from_iface_zone =
                  (* from zone code to out_zone *)
                  match (from_iface_zone, out_zone) with
                  | None, _ when code = 0 -> Bdd.top (* originated *)
                  | fz, oz ->
                    if fz = oz then Bdd.top
                    else (
                      match (fz, oz) with
                      | Some a, Some o -> (
                        match
                          List.find_opt
                            (fun (p : Vi.zone_policy) -> p.zp_from = a && p.zp_to = o)
                            cfg.zone_policies
                        with
                        | Some p -> Acl_bdd.permits_named env cfg p.zp_acl
                        | None -> Bdd.bot)
                      | _ -> Bdd.bot)
                in
                (* originated traffic (code 0) always passes *)
                let pass = ref (zone_code_filter env 0) in
                List.iter
                  (fun (z, code) ->
                    let ok = allowed_for code (Some z) in
                    pass :=
                      Bdd.bor man !pass (Bdd.band man (zone_code_filter env code) ok))
                  zone_ids;
                (* unzoned ingress ifaces *)
                let null_ok =
                  match out_zone with
                  | None -> Bdd.top
                  | Some _ -> Bdd.bot
                in
                pass :=
                  Bdd.bor man !pass
                    (Bdd.band man (zone_code_filter env null_zone) null_ok);
                (* stateful fast path: return traffic of established sessions
                   bypasses the zone policy (§4.2.3) *)
                pass := Bdd.bor man !pass (session_fastpath name);
                [ Filter !pass; Erase_extra (List.init zone_bits Fun.id) ]
              end
            in
            let out_acl =
              match Vi.find_interface cfg out_iface with
              | Some { Vi.if_out_acl = Some acl; _ } -> Acl_bdd.permits_named env cfg acl
              | Some _ | None -> Bdd.top
            in
            let egress_ip =
              Option.map (fun (ep : L3.endpoint) -> ep.ep_ip)
                (L3.endpoint topo ~node:name ~iface:out_iface)
            in
            let snat = src_nat_rel env cfg ~egress_ip in
            let egress_steps =
              zone_fns
              @ [ Filter out_acl ]
              @ (match snat with
                 | Some rel -> [ Transform rel ]
                 | None -> [])
            in
            (* drops at egress (zone deny or ACL deny) *)
            let pass_filter =
              List.fold_left
                (fun acc fn ->
                  match fn with
                  | Filter f -> Bdd.band man acc f
                  | Transform _ | Set_extra _ | Erase_extra _ | Seq _ -> acc)
                Bdd.top zone_fns
            in
            let denied =
              Bdd.bnot man (Bdd.band man pass_filter out_acl)
            in
            if not (Bdd.is_bot denied) then bedge b pre dropped (Filter denied);
            (* wire delivery *)
            (match gateway with
             | Some gw -> (
               match L3.owner_of_ip topo gw with
               | Some ep when ep.L3.ep_node <> name ->
                 let tgt = bnode b (Src (ep.L3.ep_node, ep.L3.ep_iface)) in
                 bedge b pre tgt (simplify_fn env (Seq egress_steps))
               | Some _ | None ->
                 (* unknown gateway: leaves the modeled network *)
                 let tgt = bnode b (Dst (name, out_iface)) in
                 bedge b pre tgt (simplify_fn env (Seq egress_steps)))
             | None -> (
               (* directly attached: split per neighbor device, remainder is
                  delivered to the subnet *)
               match L3.endpoint topo ~node:name ~iface:out_iface with
               | None ->
                 let tgt = bnode b (Dst (name, out_iface)) in
                 bedge b pre tgt (simplify_fn env (Seq egress_steps))
               | Some my_ep ->
                 let neighbors = L3.neighbors topo ~node:name ~iface:out_iface in
                 let neighbor_dsts = ref Bdd.bot in
                 List.iter
                   (fun (nep : L3.endpoint) ->
                     let d = Pktset.value env Field.Dst_ip nep.ep_ip in
                     neighbor_dsts := Bdd.bor man !neighbor_dsts d;
                     let tgt = bnode b (Src (nep.ep_node, nep.ep_iface)) in
                     bedge b pre tgt (simplify_fn env (Seq (egress_steps @ [ Filter d ]))))
                   neighbors;
                 let rest =
                   Bdd.bdiff man (Pktset.dst_prefix env my_ep.ep_prefix) !neighbor_dsts
                 in
                 let tgt = bnode b (Dst (name, out_iface)) in
                 bedge b pre tgt (simplify_fn env (Seq (egress_steps @ [ Filter rest ])))))
            )
          out_list

(* Chain contraction: a Pre_out with exactly one incoming and one outgoing
   edge is folded into a single edge. Node-local: both edges are owned by
   the Pre_out's node, so contraction commutes with per-node patching.
   [select] restricts which Pre_out locations are considered. *)
let contract_chains t ~select =
  let env = t.env in
  Array.iteri
    (fun v l ->
      match l with
      | Pre_out _ when select v -> (
        match (t.in_edges.(v), t.out_edges.(v)) with
        | [ ein ], [ eout ] when ein.e_from <> v && eout.e_to <> v ->
          let merged =
            { e_from = ein.e_from; e_to = eout.e_to;
              e_fn = simplify_fn env (Seq [ ein.e_fn; eout.e_fn ]) }
          in
          t.out_edges.(ein.e_from) <-
            merged :: List.filter (fun e -> e != ein) t.out_edges.(ein.e_from);
          t.in_edges.(eout.e_to) <-
            merged :: List.filter (fun e -> e != eout) t.in_edges.(eout.e_to);
          t.in_edges.(v) <- [];
          t.out_edges.(v) <- []
        | _ -> ())
      | Pre_out _ | Src _ | Fwd _ | Dst _ | Accept _ | Dropped _ -> ())
    t.locs

let build ?env ?(compress = true) ?sessions ~configs ~dp () =
  let env =
    match env with
    | Some e -> e
    | None -> Pktset.create ()
  in
  let session_fastpath name =
    match sessions with
    | Some f -> f name
    | None -> Bdd.bot
  in
  let b =
    { b_env = env; b_locs = []; b_index = Hashtbl.create 1024; b_count = 0;
      b_edges = [] }
  in
  List.iter
    (fun name ->
      match configs name with
      | None -> ()
      | Some cfg -> build_node b ~session_fastpath ~dp name cfg)
    dp.Dataplane.node_order;
  let locs = Array.of_list (List.rev b.b_locs) in
  let n = Array.length locs in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun e ->
      out_edges.(e.e_from) <- e :: out_edges.(e.e_from);
      in_edges.(e.e_to) <- e :: in_edges.(e.e_to))
    b.b_edges;
  let t = { env; locs; loc_index = b.b_index; out_edges; in_edges;
            varsets = Hashtbl.create 8 } in
  if compress then contract_chains t ~select:(fun _ -> true);
  t

(* Which node a location belongs to (the node whose construction emits the
   location's outgoing edges). *)
let loc_node = function
  | Src (n, _) | Fwd n | Pre_out (n, _, _) | Dst (n, _) | Accept n
  | Dropped n -> n

(* In-place scenario patching (ISSUE 10 satellite; ROADMAP stretch of the
   failure sweep): rebuild only the edges owned by [dirty] nodes instead of
   reconstructing the whole graph. The base is never mutated — locations
   and surviving edges are copied (new locations append past the base's) —
   so concurrent scenarios can patch one shared base. Callers must list
   every node whose FIB, config, or *local L3 surroundings* changed (wire
   edges read neighbor interfaces, so both ends of a failed link and the
   neighbors of every downed interface are dirty too).

   Stale locations (a Dst or Src the scenario no longer targets) are kept
   but end up with no incident edges: seeds at such sinks propagate nowhere
   and forward passes never reach them, so query *values* — and therefore
   verdicts, rows and witnesses — are unaffected. What patching does not
   preserve is the base's location numbering semantics for *new* graphs:
   the patched graph is its own [t] with its own spec/fingerprint. *)
let patch ~base ~dirty ~configs ~dp () =
  let env = base.env in
  let is_dirty =
    let h = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace h n ()) dirty;
    fun n -> Hashtbl.mem h n
  in
  let b =
    { b_env = env;
      b_locs = List.rev (Array.to_list base.locs);
      b_index = Hashtbl.copy base.loc_index;
      b_count = Array.length base.locs;
      b_edges = [] }
  in
  (* surviving edges, flattened in node-index order like [to_spec] does;
     uncontracted copies live in [b_edges] reversed, matching [build] *)
  Array.iter
    (List.iter (fun e ->
         if not (is_dirty (loc_node base.locs.(e.e_from))) then
           b.b_edges <- e :: b.b_edges))
    base.out_edges;
  let session_fastpath _ = Bdd.bot in
  List.iter
    (fun name ->
      if is_dirty name then
        match configs name with
        | None -> ()
        | Some cfg -> build_node b ~session_fastpath ~dp name cfg)
    dp.Dataplane.node_order;
  let locs = Array.of_list (List.rev b.b_locs) in
  let n = Array.length locs in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun e ->
      out_edges.(e.e_from) <- e :: out_edges.(e.e_from);
      in_edges.(e.e_to) <- e :: in_edges.(e.e_to))
    b.b_edges;
  let t = { env; locs; loc_index = b.b_index; out_edges; in_edges;
            varsets = Hashtbl.create 8 } in
  (* Only freshly rebuilt Pre_outs need contraction: surviving edges were
     copied already contracted, and contraction is node-local. *)
  contract_chains t ~select:(fun v -> is_dirty (loc_node t.locs.(v)));
  t

(* Structural equality of two graphs living in the SAME manager. Hash-consing
   makes semantically equal BDDs physically equal there, so comparing edge
   programs with {!Bdd.equal} decides exactly the same predicate as comparing
   canonical spec fingerprints — without exporting, marshalling, or hashing
   either graph. [Fquery.update] uses this to detect forwarding-neutral edits
   cheaply (the warm rebuild always happens inside the base's manager). *)
let same_graph a b =
  let rec fn_eq f g =
    match (f, g) with
    | Filter x, Filter y | Transform x, Transform y -> Bdd.equal x y
    | Set_extra x, Set_extra y -> x = y
    | Erase_extra x, Erase_extra y -> x = y
    | Seq xs, Seq ys -> (
      try List.for_all2 fn_eq xs ys with Invalid_argument _ -> false)
    | (Filter _ | Transform _ | Set_extra _ | Erase_extra _ | Seq _), _ -> false
  in
  let edge_eq x y = x.e_from = y.e_from && x.e_to = y.e_to && fn_eq x.e_fn y.e_fn in
  let edges_eq ea eb =
    try List.for_all2 edge_eq ea eb with Invalid_argument _ -> false
  in
  a.env == b.env
  && a.locs = b.locs
  && Array.length a.out_edges = Array.length b.out_edges
  && (let ok = ref true in
      Array.iteri (fun i ea -> if !ok then ok := edges_eq ea b.out_edges.(i)) a.out_edges;
      !ok)

(* --- manager-independent graph specs ----------------------------------- *)

(* A spec captures the whole graph — locations, edges, and the edge
   programs' BDDs — without reference to any BDD manager, so a worker domain
   can re-materialize the graph into its own private manager. Edge functions
   are mirrored structurally with BDD roots replaced by indices into one
   shared export table (deduplicated node-wise by {!Bdd.export}). *)
type func_spec =
  | Sf_filter of int
  | Sf_transform of int
  | Sf_set_extra of (int * bool) list
  | Sf_erase_extra of int list
  | Sf_seq of func_spec list

type spec = {
  sp_order : Pktset.order;
  sp_extra_bits : int;
  sp_locs : loc array;
  sp_edges : (int * int * func_spec) array;  (* (from, to, fn) *)
  sp_bdds : Bdd.exported;
}

let to_spec t =
  let roots_rev = ref [] in
  let n_roots = ref 0 in
  let root_index bdd =
    let i = !n_roots in
    roots_rev := bdd :: !roots_rev;
    n_roots := i + 1;
    i
  in
  let rec spec_fn = function
    | Filter f -> Sf_filter (root_index f)
    | Transform rel -> Sf_transform (root_index rel)
    | Set_extra bits -> Sf_set_extra bits
    | Erase_extra bits -> Sf_erase_extra bits
    | Seq fns -> Sf_seq (List.map spec_fn fns)
  in
  let edges = ref [] in
  (* Flatten out_edges in node-index order; within a node, keep list order.
     Reconstruction rebuilds both adjacency arrays from this sequence. *)
  Array.iter
    (fun es ->
      List.iter (fun e -> edges := (e.e_from, e.e_to, spec_fn e.e_fn) :: !edges) es)
    t.out_edges;
  let sp_edges = Array.of_list (List.rev !edges) in
  let roots = List.rev !roots_rev in
  { sp_order = Pktset.order t.env;
    sp_extra_bits = Pktset.extra_count t.env;
    sp_locs = Array.copy t.locs;
    sp_edges;
    sp_bdds = Bdd.export (Pktset.man t.env) roots }

(* [export] emits a pure function of the BDD structure (post-order table), so
   two graphs with the same semantics fingerprint identically regardless of
   which manager built them — exactly what a worker-resident cache key
   needs. *)
let spec_fingerprint spec = Digest.to_hex (Digest.string (Marshal.to_string spec []))

let of_spec ?env spec =
  let env =
    match env with
    | Some e ->
      if Pktset.order e <> spec.sp_order || Pktset.extra_count e <> spec.sp_extra_bits
      then invalid_arg "Fgraph.of_spec: incompatible environment layout";
      e
    | None -> Pktset.create ~order:spec.sp_order ~extra_bits:spec.sp_extra_bits ()
  in
  let roots = Array.of_list (Bdd.import (Pktset.man env) spec.sp_bdds) in
  let rec fn_of = function
    | Sf_filter i -> Filter roots.(i)
    | Sf_transform i -> Transform roots.(i)
    | Sf_set_extra bits -> Set_extra bits
    | Sf_erase_extra bits -> Erase_extra bits
    | Sf_seq fns -> Seq (List.map fn_of fns)
  in
  let locs = Array.copy spec.sp_locs in
  let n = Array.length locs in
  let loc_index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i l -> Hashtbl.add loc_index l i) locs;
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  (* Cons in reverse so each adjacency list comes out in spec order. *)
  for i = Array.length spec.sp_edges - 1 downto 0 do
    let from_, to_, fns = spec.sp_edges.(i) in
    let e = { e_from = from_; e_to = to_; e_fn = fn_of fns } in
    out_edges.(from_) <- e :: out_edges.(from_);
    in_edges.(to_) <- e :: in_edges.(to_)
  done;
  { env; locs; loc_index; out_edges; in_edges; varsets = Hashtbl.create 8 }

let env t = t.env

let edge_interfaces t ~dp =
  let topo = dp.Dataplane.topo in
  ignore t;
  List.concat_map
    (fun name ->
      List.filter_map
        (fun (ep : L3.endpoint) ->
          if L3.neighbors topo ~node:name ~iface:ep.ep_iface = [] then
            Some (name, ep.ep_iface)
          else None)
        (L3.endpoints topo name))
    dp.Dataplane.node_order
