(* Behavioral-equivalence compression of the forwarding graph (§4.2).

   Nodes with the same edge-predicate signatures modulo neighbor renaming
   are merged into classes; propagation runs over the quotient and the
   per-class values are expanded back to concrete locations. Exactness
   comes from the refinement invariant: a stable partition guarantees that
   every member of a class has the same deduplicated signature
   {(class(neighbor), edge-function)}, with edge functions compared
   *exactly* (structural equality; BDD roots are canonical node ids, so
   equal keys apply identically). Under that invariant, with class-uniform
   seeds, the quotient least fixpoint equals the concrete least fixpoint at
   every member:

   - [Q(C) <= lfp(w)] for every member [w] of [C], by induction on the
     worklist: the class seed equals [seed(w)], and for every quotient
     contribution [(D, fn)] the signature invariant gives [w] a concrete
     in-edge from some [v] in [D] carrying [fn], so
     [apply fn (Q D) <= apply fn (lfp v) <= lfp w].
   - [Q(class u) >= lfp(u)] because the expansion [Y(u) = Q(class u)] is a
     prefixpoint of the concrete equations: every concrete edge appears in
     its endpoint's signature, hence in the quotient.

   The quotient pass runs in the graph's own manager, so canonical BDDs
   make semantically equal results *physically* equal — expanded answers
   are bit-identical to the uncompressed run. [run ~verify:true]
   additionally re-checks the concrete fixpoint equations at every
   location before returning and answers [`Mismatch] on any failure,
   letting callers fall back to the uncompressed pass automatically. That
   sweep costs one (cached) BDD application per concrete edge — the same
   order as the uncompressed pass itself — so callers verify the first
   pass through a partition and run later passes on the theorem alone.
   [`Non_uniform] reports seeds that split a class; callers [specialize]
   and retry (rare: base partitions pre-split the standard seed shapes,
   see [base]). *)

type dir = [ `Fwd | `Bwd ]

type partition = {
  p_dir : dir;
  p_class : int array;  (* loc id -> class id *)
  p_rep : int array;  (* class id -> lowest-index member *)
  p_size : int array;  (* class id -> member count *)
  p_sigs : (int * int) array array;
      (* loc id -> (neighbor loc, fn id); in-edges for `Fwd, out-edges for
         `Bwd — the edges whose contributions define the loc's value *)
  p_fns : Fgraph.func array;  (* fn id -> edge function *)
  p_members : int list array Lazy.t;
      (* class id -> members, ascending; forced only by [specialize], so
         throwaway specialized partitions never pay for it *)
  mutable p_qgraph : Fgraph.t option;
      (* materialized quotient graph, built on the first [run] and reused
         by every later pass over this partition *)
}

let members_of cls ncls =
  let ms = Array.make ncls [] in
  for u = Array.length cls - 1 downto 0 do
    ms.(cls.(u)) <- u :: ms.(cls.(u))
  done;
  ms

let n_locs p = Array.length p.p_class
let n_classes p = Array.length p.p_rep
let class_of p = p.p_class

let ratio p =
  let n = n_locs p in
  if n = 0 then 1.0 else float_of_int (n_classes p) /. float_of_int n

let fingerprint p =
  Digest.to_hex (Digest.string (Marshal.to_string (p.p_dir, p.p_class) []))

(* Per-location contribution signatures. Edge functions are interned by
   structural equality (BDD roots are canonical ids, so two edges with the
   same fn id apply identically to any set). *)
let signatures g dirn =
  let n = Fgraph.n_locs g in
  let fn_ids : (Fgraph.func, int) Hashtbl.t = Hashtbl.create 256 in
  let fns_rev = ref [] in
  let fn_id f =
    match Hashtbl.find_opt fn_ids f with
    | Some i -> i
    | None ->
      let i = Hashtbl.length fn_ids in
      Hashtbl.add fn_ids f i;
      fns_rev := f :: !fns_rev;
      i
  in
  let sigs =
    Array.init n (fun u ->
        let es =
          match dirn with
          | `Fwd ->
            List.map
              (fun (e : Fgraph.edge) -> (e.Fgraph.e_from, fn_id e.Fgraph.e_fn))
              g.Fgraph.in_edges.(u)
          | `Bwd ->
            List.map
              (fun (e : Fgraph.edge) -> (e.Fgraph.e_to, fn_id e.Fgraph.e_fn))
              g.Fgraph.out_edges.(u)
        in
        Array.of_list es)
  in
  (sigs, Array.of_list (List.rev !fns_rev))

let dedup_sorted l =
  let rec go = function
    | a :: (b :: _ as tl) -> if a = b then go tl else a :: go tl
    | tl -> tl
  in
  go l

(* Hopcroft-style refinement to stability. Each round rekeys every location
   by (current class, sorted deduplicated contribution signature) and stops
   when no class splits — class counts grow monotonically, so termination
   is bounded by the location count. Class ids are assigned in first-seen
   location order, which makes the partition deterministic. *)
let refine ~sigs ~init n =
  let assign tbl key =
    match Hashtbl.find_opt tbl key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tbl in
      Hashtbl.add tbl key i;
      i
  in
  let cls = Array.make n 0 in
  let ncls = ref 0 in
  (let tbl = Hashtbl.create 64 in
   for u = 0 to n - 1 do
     cls.(u) <- assign tbl (init u)
   done;
   ncls := Hashtbl.length tbl);
  let changed = ref true in
  while !changed do
    let tbl = Hashtbl.create (2 * !ncls) in
    let next = Array.make n 0 in
    for u = 0 to n - 1 do
      let s = Array.map (fun (v, f) -> (cls.(v), f)) sigs.(u) in
      Array.sort compare s;
      let key = (cls.(u), dedup_sorted (Array.to_list s)) in
      next.(u) <- assign tbl key
    done;
    let n' = Hashtbl.length tbl in
    (* no split ⟹ every pair of same-class locations shares a full
       signature key ⟹ the partition is stable *)
    changed := n' <> !ncls;
    ncls := n';
    Array.blit next 0 cls 0 n
  done;
  let reps = Array.make !ncls (-1) in
  let sizes = Array.make !ncls 0 in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    if reps.(c) < 0 then reps.(c) <- u;
    sizes.(c) <- sizes.(c) + 1
  done;
  (cls, reps, sizes)

(* Locations of different kinds are never merged: seeds target one kind at
   a time (sources forward, sinks backward), so kind-pure classes make the
   standard seed patterns class-uniform on the *base* partition — no
   per-pass specialization. *)
let kind = function
  | Fgraph.Src _ -> 0
  | Fgraph.Fwd _ -> 1
  | Fgraph.Pre_out _ -> 2
  | Fgraph.Dst _ -> 3
  | Fgraph.Accept _ -> 4
  | Fgraph.Dropped _ -> 5

let base g dirn =
  let sigs, fns = signatures g dirn in
  (* forward partitions additionally pre-split in-edge-free locations (the
     potential flow starts) into singletons: a single-location seed is then
     trivially class-uniform, so per-start passes skip [specialize]
     entirely. These locations contribute no propagation work of their own
     — merging them never saved anything. *)
  let init u =
    match dirn with
    | `Fwd when g.Fgraph.in_edges.(u) = [] -> (kind g.Fgraph.locs.(u), u)
    | `Fwd | `Bwd -> (kind g.Fgraph.locs.(u), -1)
  in
  let cls, reps, sizes = refine ~sigs ~init (Fgraph.n_locs g) in
  { p_dir = dirn; p_class = cls; p_rep = reps; p_size = sizes;
    p_sigs = sigs; p_fns = fns;
    p_members = lazy (members_of cls (Array.length reps)); p_qgraph = None }

(* Split a base partition so that seeded locations separate by seed value
   (class-uniform seeds are required for exactness), then re-stabilize by
   *localized* refinement: when a class splits, its largest fragment keeps
   the old id, so only the dependents of locations that actually changed
   class are ever re-keyed and the cascade is proportional to the
   diverging region rather than the graph. Both this and the full
   round-based [refine] compute the coarsest stable refinement of the
   seed-split partition, so they agree on content; [all_pairs] calls this
   once per start, which is why the per-call work (beyond one O(n) class
   array copy) must track the split, not the location count. *)
let specialize g p ~seeds =
  let man = Pktset.man (Fgraph.env g) in
  let n = n_locs p in
  let cls = Array.copy p.p_class in
  let next_id = ref (n_classes p) in
  (* copy-on-write membership: classes a split never touches keep reading
     the base's (lazily built, shared) lists *)
  let members_over : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let base_members = Lazy.force p.p_members in
  let members c =
    match Hashtbl.find_opt members_over c with
    | Some ms -> ms
    | None -> if c < Array.length base_members then base_members.(c) else []
  in
  let seed_tbl : (int, Bdd.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v, s) ->
      let cur = Option.value ~default:Bdd.bot (Hashtbl.find_opt seed_tbl v) in
      Hashtbl.replace seed_tbl v (Bdd.bor man cur s))
    seeds;
  let seed_of v = Option.value ~default:Bdd.bot (Hashtbl.find_opt seed_tbl v) in
  let moved = Queue.create () in
  (* group [c]'s members by [keyf]; the largest group (first-seen wins
     ties, keeping the outcome deterministic) keeps the id, the rest get
     fresh ids and their members are queued as moved *)
  let split_by keyf c =
    match members c with
    | [] | [ _ ] -> ()
    | ms -> (
      let groups = ref [] in
      List.iter
        (fun u ->
          let k = keyf u in
          let rec add = function
            | [] -> [ (k, [ u ]) ]
            | (k', us) :: tl when k' = k -> (k', u :: us) :: tl
            | kv :: tl -> kv :: add tl
          in
          groups := add !groups)
        ms;
      match !groups with
      | [] | [ _ ] -> ()
      | gs ->
        let keep =
          List.fold_left
            (fun best (_, us) ->
              match best with
              | Some bus when List.length bus >= List.length us -> best
              | _ -> Some us)
            None gs
        in
        let keep_us = match keep with Some us -> us | None -> [] in
        List.iter
          (fun (_, us) ->
            if us == keep_us then Hashtbl.replace members_over c (List.rev us)
            else begin
              let id = !next_id in
              incr next_id;
              Hashtbl.replace members_over id (List.rev us);
              List.iter
                (fun u ->
                  cls.(u) <- id;
                  Queue.add u moved)
                us
            end)
          gs)
  in
  (* phase 1: seeded classes split by seed value (class-uniform seeds) *)
  let seeded_classes = ref [] in
  Hashtbl.iter
    (fun v _ ->
      if not (List.mem cls.(v) !seeded_classes) then
        seeded_classes := cls.(v) :: !seeded_classes)
    seed_tbl;
  List.iter (split_by seed_of) (List.sort compare !seeded_classes);
  (* phase 2: re-key only the classes holding a dependent of a moved
     location, until no class splits — stability against the base sigs *)
  let dirty = Queue.create () in
  let dirty_mark = Hashtbl.create 16 in
  let mark c =
    if not (Hashtbl.mem dirty_mark c) then begin
      Hashtbl.replace dirty_mark c ();
      Queue.add c dirty
    end
  in
  let dependents v =
    match p.p_dir with
    | `Fwd ->
      List.iter
        (fun (e : Fgraph.edge) -> mark cls.(e.Fgraph.e_to))
        g.Fgraph.out_edges.(v)
    | `Bwd ->
      List.iter
        (fun (e : Fgraph.edge) -> mark cls.(e.Fgraph.e_from))
        g.Fgraph.in_edges.(v)
  in
  let drain_moved () =
    while not (Queue.is_empty moved) do
      dependents (Queue.pop moved)
    done
  in
  let sig_key u =
    (* self-class component omitted: only members of one class are ever
       compared, and they share it by construction *)
    let s = Array.map (fun (v, f) -> (cls.(v), f)) p.p_sigs.(u) in
    Array.sort compare s;
    dedup_sorted (Array.to_list s)
  in
  drain_moved ();
  while not (Queue.is_empty dirty) do
    let c = Queue.pop dirty in
    Hashtbl.remove dirty_mark c;
    split_by sig_key c;
    drain_moved ()
  done;
  (* renumber densely in first-member order — the same deterministic id
     convention [refine] uses *)
  let remap = Array.make !next_id (-1) in
  let k = ref 0 in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    if remap.(c) < 0 then begin
      remap.(c) <- !k;
      incr k
    end;
    cls.(u) <- remap.(c)
  done;
  let reps = Array.make !k (-1) in
  let sizes = Array.make !k 0 in
  for u = 0 to n - 1 do
    let c = cls.(u) in
    if reps.(c) < 0 then reps.(c) <- u;
    sizes.(c) <- sizes.(c) + 1
  done;
  { p with p_class = cls; p_rep = reps; p_size = sizes;
    p_members = lazy (members_of cls !k); p_qgraph = None }

(* Re-derive a stable partition for a patched graph, reusing the base class
   map for untouched locations: clean locs keep their base class as the
   initial key (they are already mutually consistent), while dirty or newly
   appended locs start as singletons. Refinement then re-verifies stability
   against the *new* graph's signatures, so any drift splits away. *)
let refit g dirn ~like ~dirty =
  let n = Fgraph.n_locs g in
  let old_n = n_locs like in
  let sigs, fns = signatures g dirn in
  let init u =
    if u < old_n && u < Array.length dirty && not dirty.(u) then like.p_class.(u)
    else old_n + u + 1
  in
  let cls, reps, sizes = refine ~sigs ~init n in
  { p_dir = dirn; p_class = cls; p_rep = reps; p_size = sizes;
    p_sigs = sigs; p_fns = fns;
    p_members = lazy (members_of cls (Array.length reps)); p_qgraph = None }

(* --- quotient propagation ---------------------------------------------- *)

let apply_fn g dirn fn set =
  match dirn with
  | `Fwd -> Fgraph.apply g fn set
  | `Bwd -> Fgraph.apply_reverse g fn set

(* The quotient as a concrete graph over class ids: each representative's
   deduplicated signature becomes one edge, so the S parallel edges of a
   merged tier collapse to one — the source of the compression win.
   Sharing the base graph's manager and varset cache keeps every BDD
   canonical; built once per partition and cached. *)
let qgraph g p =
  match p.p_qgraph with
  | Some qg -> qg
  | None ->
    let ncls = n_classes p in
    let out_edges = Array.make ncls [] in
    let in_edges = Array.make ncls [] in
    Array.iteri
      (fun c r ->
        let seen = ref [] in
        Array.iter
          (fun (v, f) ->
            let d = p.p_class.(v) in
            if not (List.exists (fun (d', f') -> d' = d && f' = f) !seen)
            then begin
              seen := (d, f) :: !seen;
              let e_from, e_to =
                match p.p_dir with `Fwd -> (d, c) | `Bwd -> (c, d)
              in
              let e = { Fgraph.e_from; e_to; e_fn = p.p_fns.(f) } in
              out_edges.(e_from) <- e :: out_edges.(e_from);
              in_edges.(e_to) <- e :: in_edges.(e_to)
            end)
          p.p_sigs.(r))
      p.p_rep;
    let qg =
      { g with
        Fgraph.locs = Array.map (fun r -> g.Fgraph.locs.(r)) p.p_rep;
        loc_index = Hashtbl.create 1;
        out_edges; in_edges }
    in
    p.p_qgraph <- Some qg;
    qg

let run ?(verify = true) g p ~seeds =
  let man = Pktset.man (Fgraph.env g) in
  let n = n_locs p in
  let ncls = n_classes p in
  let seed_tbl : (int, Bdd.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v, s) ->
      let cur = Option.value ~default:Bdd.bot (Hashtbl.find_opt seed_tbl v) in
      Hashtbl.replace seed_tbl v (Bdd.bor man cur s))
    seeds;
  let seed_of v = Option.value ~default:Bdd.bot (Hashtbl.find_opt seed_tbl v) in
  let qseed = Array.make ncls Bdd.bot in
  Array.iteri (fun c r -> qseed.(c) <- seed_of r) p.p_rep;
  (* class-uniform seeds, checked in O(|seeds| + classes): every seeded
     location must carry exactly its class's seed, and every class with a
     nonempty seed must be seeded on all [p_size] members *)
  let cover = Array.make ncls 0 in
  let uniform = ref true in
  Hashtbl.iter
    (fun v s ->
      let c = p.p_class.(v) in
      if Bdd.equal s qseed.(c) then cover.(c) <- cover.(c) + 1
      else uniform := false)
    seed_tbl;
  for c = 0 to ncls - 1 do
    if (not (Bdd.equal qseed.(c) Bdd.bot)) && cover.(c) <> p.p_size.(c) then
      uniform := false
  done;
  if not !uniform then `Non_uniform
  else begin
    (* the propagation itself is the plain worklist engine on the (much
       smaller) materialized quotient graph *)
    let qseeds = ref [] in
    for c = ncls - 1 downto 0 do
      if not (Bdd.equal qseed.(c) Bdd.bot) then
        qseeds := (c, qseed.(c)) :: !qseeds
    done;
    let qg = qgraph g p in
    let qv =
      match p.p_dir with
      | `Fwd -> Freach.forward qg !qseeds
      | `Bwd -> Freach.backward qg !qseeds
    in
    (* partition check (first pass through a partition only, see header):
       the expansion must satisfy the concrete fixpoint equations at every
       location. Every edge function maps the empty set to the empty set,
       so a location whose own value, seed and neighbor values are all
       empty satisfies its equation trivially; elsewhere re-applications of
       a (fn, class value) pair already computed above hit the BDD
       operation cache. The sweep therefore costs integer work on the
       unreached region and roughly one cache probe per edge near the
       reached one. *)
    let y u = qv.(p.p_class.(u)) in
    let ok = ref true in
    if verify then begin
      let u = ref 0 in
      while !ok && !u < n do
        let yu = y !u in
        let seed = seed_of !u in
        if
          not
            (Bdd.is_bot yu && Bdd.is_bot seed
            && Array.for_all (fun (v, _) -> Bdd.is_bot (y v)) p.p_sigs.(!u))
        then begin
          let rhs = ref seed in
          Array.iter
            (fun (v, f) ->
              rhs := Bdd.bor man !rhs (apply_fn g p.p_dir p.p_fns.(f) (y v)))
            p.p_sigs.(!u);
          if not (Bdd.equal !rhs yu) then ok := false
        end;
        incr u
      done
    end;
    if !ok then `Sets (Array.init n y) else `Mismatch
  end

(* --- loop screen -------------------------------------------------------- *)

(* [true] certifies the concrete graph has no strongly connected component
   with more than one location: quotient SCCs are all trivial and no edge
   connects two distinct members of one class (such an edge could hide a
   concrete cycle inside a merged class). Loop detection can then answer
   the empty list without touching the concrete graph. *)
let loop_screen g p =
  let ncls = n_classes p in
  let adj = Array.make ncls [] in
  let hidden = ref false in
  Array.iteri
    (fun u es ->
      let c = p.p_class.(u) in
      List.iter
        (fun (e : Fgraph.edge) ->
          let d = p.p_class.(e.Fgraph.e_to) in
          if c = d then begin
            if u <> e.Fgraph.e_to then hidden := true
            (* concrete self-loops are invisible to [Fquery.find_loops]
               (components of size one are skipped), so ignore them here *)
          end
          else adj.(c) <- d :: adj.(c))
        es)
    g.Fgraph.out_edges;
  if !hidden then false
  else begin
    let comp = Scc.compute ~n:ncls adj in
    let sizes = Array.make ncls 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    Array.for_all (fun s -> s <= 1) sizes
  end
