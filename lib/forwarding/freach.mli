(** Fixed-point packet-set propagation over the forwarding graph (§4.2.1).

    Forward propagation answers "what can reach each location from these
    sources"; backward propagation answers "what, at each location, can
    still reach these targets" — the §4.2.3 optimization for
    single-destination queries that avoids walking edges off the
    destination's forwarding tree.

    All state is local to one propagation, so concurrent passes on different
    graphs (each with its own manager) are safe. *)

(** [forward g seeds] seeds each location with the given set and iterates to
    a fixed point. Returns the set reaching each location. *)
val forward : Fgraph.t -> (int * Bdd.t) list -> Bdd.t array

(** [backward g seeds] propagates against the edges, applying preimages. The
    result at a location is the set of packets there that eventually reach a
    seeded location. *)
val backward : Fgraph.t -> (int * Bdd.t) list -> Bdd.t array

(** Like {!forward}/{!backward}, additionally returning the number of edge
    applications performed by this propagation (benchmark metric). *)
val forward_counted : Fgraph.t -> (int * Bdd.t) list -> Bdd.t array * int

val backward_counted : Fgraph.t -> (int * Bdd.t) list -> Bdd.t array * int
