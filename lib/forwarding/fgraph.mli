(** The forwarding dataflow graph (§4.2.1).

    Locations are graph nodes; edges carry packet-set functions (filters,
    NAT transformations, zone-bit manipulations). The engine propagates
    BDD-encoded packet sets over this graph, forward or backward. *)

type loc =
  | Src of string * string
      (** packets entering the network (or arriving off the wire) at
          (node, interface) *)
  | Fwd of string  (** the node's FIB lookup *)
  | Pre_out of string * string * Ipv4.t option
      (** chosen egress (node, interface, gateway) *)
  | Dst of string * string
      (** packets delivered into the attached subnet or leaving the modeled
          network via (node, interface) *)
  | Accept of string  (** delivered to the device itself *)
  | Dropped of string  (** denied/no-route/null-routed at the node *)

val loc_to_string : loc -> string

(** The node owning a location. *)
val loc_node : loc -> string

(** Edge functions. [Set_extra]/[Erase_extra] manipulate the query-local
    extra bits used for zones and waypoints. *)
type func =
  | Filter of Bdd.t
  | Transform of Bdd.t  (** NAT relation over primed variables *)
  | Set_extra of (int * bool) list
  | Erase_extra of int list
  | Seq of func list

type edge = { e_from : int; e_to : int; e_fn : func }

type t = {
  env : Pktset.t;
  locs : loc array;
  loc_index : (loc, int) Hashtbl.t;
  mutable out_edges : edge list array;
  mutable in_edges : edge list array;
  varsets : (int list, Bdd.varset) Hashtbl.t;
      (** memoized extra-bit varsets (stable operation-cache codes) *)
}

(** Zone bits occupy extra bits 0..3; waypoint instrumentation should use
    bits >= [zone_bits]. *)
val zone_bits : int

(** [build ~configs ~dp ()] constructs the graph for a computed data plane.
    [compress] enables the chain-contraction optimization (§4.2.3); the
    result is semantically equivalent. *)
val build :
  ?env:Pktset.t ->
  ?compress:bool ->
  ?sessions:(string -> Bdd.t) ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t
(** [sessions] supplies, per stateful (zoned) device, the set of return
    packets whose forward sessions were established — those bypass the zone
    policy (the session "fast path" of §4.2.3's bidirectional analysis). *)

(** [patch ~base ~dirty ~configs ~dp ()] rebuilds only the edges owned by
    the [dirty] nodes against the new [configs]/[dp], keeping every other
    node's edges (and the base's location numbering) as-is; new locations
    append past the base's. The base is not mutated. Callers must list
    every node whose FIB, config, or local L3 surroundings changed — both
    ends of a failed link and the neighbors of every downed interface
    included — or the patched graph diverges from a fresh build. Stale
    locations left without incident edges cannot influence any propagation
    result, so query values, rows and witnesses match a from-scratch
    [build] for the same inputs. *)
val patch :
  base:t ->
  dirty:string list ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t

val loc_id : t -> loc -> int option
val n_locs : t -> int
val n_edges : t -> int

(** Apply an edge function to a packet set, forward direction. *)
val apply : t -> func -> Bdd.t -> Bdd.t

(** Preimage of a packet set under an edge function. *)
val apply_reverse : t -> func -> Bdd.t -> Bdd.t

(** All locations satisfying a predicate. *)
val locs_where : t -> (loc -> bool) -> int list

val env : t -> Pktset.t

(** [same_graph a b] — exact structural equality of two graphs built in the
    {e same} manager (physical BDD equality per edge program). Decides the
    same predicate as comparing the two graphs' canonical spec fingerprints,
    at a fraction of the cost: no export, no marshalling, no hashing. Returns
    [false] whenever the managers differ. *)
val same_graph : t -> t -> bool

(** {2 Manager-independent graph specs}

    A spec is the whole graph compiled out of its BDD manager: locations,
    edges, and edge-program BDDs packed into one {!Bdd.exported} table.
    Worker domains use [of_spec] to re-materialize the graph into a private
    manager, so parallel queries share no mutable BDD state. Because BDDs are
    canonical, propagation over the re-materialized graph computes exactly
    the same packet sets (same witnesses, same verdicts). *)
type spec

(** Compile the graph into a manager-independent description. *)
val to_spec : t -> spec

(** Content fingerprint (MD5 hex) of a spec. Two graphs denoting the same
    locations, edges and packet functions fingerprint identically no matter
    which manager built them, so the fingerprint keys worker-resident graph
    caches: same fingerprint ⇒ the already-imported graph can be reused;
    an incremental update produces a new fingerprint and naturally
    invalidates stale entries. *)
val spec_fingerprint : spec -> string

(** [of_spec ?env spec] rebuilds the graph. With no [env], a fresh private
    environment (own BDD manager) is created with the spec's variable layout;
    an explicit [env] must have the same layout (order and extra-bit count)
    or [Invalid_argument] is raised. *)
val of_spec : ?env:Pktset.t -> spec -> t

(** Host-facing source locations: enabled, addressed interfaces that face no
    modeled device (heuristic default scoping, §4.4.2). *)
val edge_interfaces : t -> dp:Dataplane.t -> (string * string) list
