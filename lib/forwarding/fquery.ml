(* Memo keys for whole-graph backward passes. A [t] wraps one graph of one
   snapshot, so "same graph" is implicit in the table identity; the key is
   the query kind plus its parameters. Header sets are BDDs in the graph's
   manager, so they compare by canonical node id. *)
type memo_key =
  | Mk_delivered of string option * Bdd.t  (* at, hdr *)
  | Mk_dropped of Bdd.t  (* hdr *)

type t = {
  g : Fgraph.t;
  dp : Dataplane.t;
  configs : string -> Vi.t option;
  memo : (memo_key, Bdd.t array) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable spec_cache : (Fgraph.spec * string) option;
}

type start = string * string option

let of_graph g ~dp ~configs =
  { g; dp; configs; memo = Hashtbl.create 16; memo_hits = 0; memo_misses = 0;
    spec_cache = None }

(* The spec (and its fingerprint) is a function of the graph alone, and the
   graph inside a [t] never mutates (incremental update builds a new [t]),
   so computing both once per query object is sound. The cache lives here
   rather than in [Fgraph.t] because query combinators build [{ g with ... }]
   copies that would carry a stale cached spec. *)
let spec_with_fingerprint t =
  match t.spec_cache with
  | Some (spec, fp) -> (spec, fp)
  | None ->
    let spec = Fgraph.to_spec t.g in
    let fp = Fgraph.spec_fingerprint spec in
    t.spec_cache <- Some (spec, fp);
    (spec, fp)

(* The fingerprint if it has already been computed, without forcing the
   (milliseconds-scale) spec export. Workers can only be warm for a graph
   whose spec was shipped to them — which computes the fingerprint — so a
   [None] here is a sound "cold" answer for {!Fpar.plan}. *)
let cached_fingerprint t = Option.map snd t.spec_cache

let make ?env ?compress ~configs ~dp () =
  of_graph (Fgraph.build ?env ?compress ~configs ~dp ()) ~dp ~configs

let graph t = t.g
let memo_stats t = (t.memo_hits, t.memo_misses)

let memo_find t key compute =
  match Hashtbl.find_opt t.memo key with
  | Some r ->
    t.memo_hits <- t.memo_hits + 1;
    r
  | None ->
    t.memo_misses <- t.memo_misses + 1;
    let r = compute () in
    Hashtbl.add t.memo key r;
    r

(* Incremental rebuild (ISSUE 4; memo retention in ISSUE 8). With an empty
   dirty set the base query — graph, manager, memo, counters — is returned
   as-is, so every cached propagation result survives the update. Otherwise
   the new graph is built inside the base's warm BDD environment, where
   hash-consing turns every unchanged node's edge functions into cache hits.
   If it is structurally identical to the base graph ({!Fgraph.same_graph} —
   physical BDD equality in the shared manager, the cheap exact equivalent
   of comparing canonical spec fingerprints), the edit did not touch
   forwarding at all and the base graph (memo included) is kept; otherwise
   the memo is keyed to the old graph's propagations, so it starts fresh and
   the count of dropped entries is reported. Canonicity makes the warm-env
   rebuild's exported spec and query rows bit-identical to a from-scratch
   build. *)
let update ~base ~dirty ~configs ~dp () =
  if dirty = [] then (base, 0)
  else begin
    let g = Fgraph.build ~env:(base.g.Fgraph.env) ~configs ~dp () in
    if Fgraph.same_graph base.g g then
      (* The edit left the forwarding graph semantically untouched (same
         canonical spec): keep the base graph object — and with it every
         memoized propagation — swapping in the new data plane and configs
         for scoping defaults. Canonicity makes the kept graph's spec and
         query rows bit-identical to what the fresh build would answer. *)
      ({ base with dp; configs }, 0)
    else begin
      let invalidated = Hashtbl.length base.memo in
      (of_graph g ~dp ~configs, invalidated)
    end
  end

(* Fault-isolated construction: graph building walks every FIB and compiles
   every referenced ACL, any of which may be garbage on a hostile snapshot. *)
let make_checked ?env ?compress ~configs ~dp () =
  try Ok (make ?env ?compress ~configs ~dp ())
  with exn ->
    Error
      (Diag.fatal ~phase:Diag.Forwarding ~code:Diag.code_forwarding_failed
         (Printf.sprintf "forwarding graph construction raised: %s"
            (Printexc.to_string exn)))

let env t = t.g.Fgraph.env

let clean t =
  let e = env t in
  let man = Pktset.man e in
  let acc = ref Bdd.top in
  for b = 0 to Pktset.extra_count e - 1 do
    acc := Bdd.band man !acc (Bdd.nvar man (Pktset.extra_level e b))
  done;
  !acc

let start_loc t (node, iface) =
  match iface with
  | Some i -> Fgraph.loc_id t.g (Fgraph.Src (node, i))
  | None -> Fgraph.loc_id t.g (Fgraph.Fwd node)

let seeds_of t ?hdr starts =
  let man = Pktset.man (env t) in
  let hdr = Option.value hdr ~default:Bdd.top in
  let seed = Bdd.band man hdr (clean t) in
  List.filter_map (fun s -> Option.map (fun id -> (id, seed)) (start_loc t s)) starts

let forward_from t ?hdr starts = Freach.forward t.g (seeds_of t ?hdr starts)

let delivered_pred ?at loc =
  match loc with
  | Fgraph.Accept n | Fgraph.Dst (n, _) -> (
    match at with
    | Some node -> n = node
    | None -> true)
  | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false

let sink_seeds t pred ?hdr () =
  ignore (env t);
  let hdr = Option.value hdr ~default:Bdd.top in
  List.map (fun id -> (id, hdr)) (Fgraph.locs_where t.g pred)

let to_delivered t ?at ?hdr () =
  let hdr_b = Option.value hdr ~default:Bdd.top in
  memo_find t (Mk_delivered (at, hdr_b)) (fun () ->
      Freach.backward t.g (sink_seeds t (delivered_pred ?at) ?hdr ()))

let to_dropped t ?hdr () =
  let pred = function
    | Fgraph.Dropped _ -> true
    | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dst _ | Fgraph.Accept _ ->
      false
  in
  let hdr_b = Option.value hdr ~default:Bdd.top in
  memo_find t (Mk_dropped hdr_b) (fun () ->
      Freach.backward t.g (sink_seeds t pred ?hdr ()))

let delivered_union t ?at sets =
  let man = Pktset.man (env t) in
  List.fold_left
    (fun acc id -> Bdd.bor man acc sets.(id))
    Bdd.bot
    (Fgraph.locs_where t.g (delivered_pred ?at))

let reachable t ~src ?hdr ?dst_ip () =
  let man = Pktset.man (env t) in
  let hdr =
    match dst_ip with
    | Some p ->
      Bdd.band man (Option.value hdr ~default:Bdd.top) (Pktset.dst_prefix (env t) p)
    | None -> Option.value hdr ~default:Bdd.top
  in
  (* Backward from delivered sinks is cheaper than a full forward pass for a
     single start location. *)
  let back = to_delivered t ~hdr () in
  match start_loc t src with
  | Some id -> Bdd.band man (Bdd.band man back.(id) hdr) (clean t)
  | None -> Bdd.bot

let default_starts t =
  List.map (fun (n, i) -> (n, Some i)) (Fgraph.edge_interfaces t.g ~dp:t.dp)

let multipath_consistency t ?starts () =
  let man = Pktset.man (env t) in
  (* Scoping defaults (§4.4.2): start locations default to edge-facing
     interfaces. *)
  let starts =
    match starts with
    | Some s -> s
    | None -> default_starts t
  in
  let deliver = to_delivered t () in
  let drop = to_dropped t () in
  List.filter_map
    (fun s ->
      match start_loc t s with
      | None -> None
      | Some id ->
        let v = Bdd.band man (Bdd.band man deliver.(id) drop.(id)) (clean t) in
        if Bdd.is_bot v then None else Some (s, v))
    starts

(* Waypointing: instrument a copy of the graph so that traversing the
   waypoint node's FIB sets an extra bit, then test the bit at delivery. *)
let waypoint t ~src ~dst_node ~waypoint ~mode ?hdr () =
  let man = Pktset.man (env t) in
  let bit = Fgraph.zone_bits in
  let g = t.g in
  let instrumented =
    { g with
      Fgraph.out_edges =
        Array.map
          (List.map (fun (e : Fgraph.edge) ->
               match g.Fgraph.locs.(e.e_from) with
               | Fgraph.Fwd n when n = waypoint ->
                 { e with e_fn = Fgraph.Seq [ e.e_fn; Fgraph.Set_extra [ (bit, true) ] ] }
               | _ -> e))
          g.Fgraph.out_edges }
  in
  let seeds = seeds_of t ?hdr [ src ] in
  let sets = Freach.forward instrumented seeds in
  let delivered =
    List.fold_left
      (fun acc id -> Bdd.bor man acc sets.(id))
      Bdd.bot
      (Fgraph.locs_where g (delivered_pred ~at:dst_node))
  in
  let through =
    Bdd.band man delivered (Bdd.var man (Pktset.extra_level (env t) bit))
  in
  let avoided = Bdd.bdiff man delivered through in
  let strip s = Bdd.exists man (Bdd.varset man [ Pktset.extra_level (env t) bit ]) s in
  match mode with
  | `Through -> (strip through, strip avoided)
  | `Avoid -> (strip avoided, strip through)

let bidirectional t ~src ~dst ?hdr () =
  let e = env t in
  let man = Pktset.man e in
  let dst_node, dst_iface = dst in
  (* forward pass: establishes sessions at stateful devices *)
  let fwd = forward_from t ?hdr [ src ] in
  let delivered =
    List.fold_left
      (fun acc id -> Bdd.bor man acc fwd.(id))
      Bdd.bot
      (Fgraph.locs_where t.g (fun l ->
           match l with
           | Fgraph.Dst (n, i) -> n = dst_node && i = dst_iface
           | Fgraph.Accept n -> n = dst_node
           | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false))
  in
  let strip_extra s =
    let levels = List.init (Pktset.extra_count e) (Pktset.extra_level e) in
    Bdd.exists man (Bdd.varset man levels) s
  in
  let delivered = strip_extra delivered in
  (* session fast-path sets: return flows of everything that traversed each
     stateful device *)
  let sessions name =
    match Fgraph.loc_id t.g (Fgraph.Fwd name) with
    | Some id -> Pktset.swap_src_dst e (strip_extra fwd.(id))
    | None -> Bdd.bot
  in
  let g' = Fgraph.build ~env:e ~sessions ~configs:t.configs ~dp:t.dp () in
  (* fresh wrapper: the memo table is keyed per-graph, so the instrumented
     graph must not share the original's cache *)
  let t' = of_graph g' ~dp:t.dp ~configs:t.configs in
  (* return direction: swapped delivered flows, re-entering at dst *)
  let return_seed = Bdd.band man (Pktset.swap_src_dst e delivered) (clean t') in
  let seeds =
    match Fgraph.loc_id g' (Fgraph.Src (dst_node, dst_iface)) with
    | Some id -> [ (id, return_seed) ]
    | None -> []
  in
  let back = Freach.forward g' seeds in
  let src_node = fst src in
  let returned =
    List.fold_left
      (fun acc id -> Bdd.bor man acc back.(id))
      Bdd.bot
      (Fgraph.locs_where g' (delivered_pred ~at:src_node))
  in
  (* round trip: forward-delivered flows whose swapped counterpart returned *)
  let round_trip =
    Bdd.band man delivered (Pktset.swap_src_dst e (strip_extra returned))
  in
  (delivered, round_trip)

(* Loop detection: find a non-trivial SCC among transit locations, extract a
   cycle, and compose edge functions around it; survivors loop forever. *)
let find_loops t =
  let g = t.g in
  let man = Pktset.man (env t) in
  let n = Fgraph.n_locs g in
  let adj =
    Array.init n (fun v -> List.map (fun (e : Fgraph.edge) -> e.Fgraph.e_to) g.Fgraph.out_edges.(v))
  in
  let comp = Scc.compute ~n adj in
  let groups = Scc.groups comp in
  let results = ref [] in
  Array.iter
    (fun members ->
      if List.length members > 1 then begin
        (* find one cycle through the component with DFS *)
        let inside v = List.mem v members in
        let start = List.hd members in
        let rec dfs path v =
          if v = start && path <> [] then Some (List.rev path)
          else if List.exists (fun (w, _) -> w = v) path && v <> start then None
          else
            List.fold_left
              (fun acc (e : Fgraph.edge) ->
                match acc with
                | Some _ -> acc
                | None ->
                  if inside e.e_to then dfs ((v, e) :: path) e.e_to else None)
              None g.Fgraph.out_edges.(v)
        in
        match dfs [] start with
        | None -> ()
        | Some cycle_edges ->
          let survive =
            List.fold_left
              (fun acc (_, (e : Fgraph.edge)) -> Fgraph.apply g e.e_fn acc)
              Bdd.top cycle_edges
          in
          (* iterate composition to a fixed point: packets that keep cycling *)
          let rec fixpoint s guard =
            if guard = 0 then s
            else
              let s' =
                List.fold_left
                  (fun acc (_, (e : Fgraph.edge)) -> Fgraph.apply g e.e_fn acc)
                  s cycle_edges
              in
              let s'' = Bdd.band man s s' in
              if Bdd.equal s'' s then s else fixpoint s'' (guard - 1)
          in
          let looping = fixpoint survive 16 in
          if not (Bdd.is_bot looping) then begin
            let nodes =
              List.filter_map
                (fun (v, _) ->
                  match g.Fgraph.locs.(v) with
                  | Fgraph.Fwd n -> Some n
                  | _ -> None)
                cycle_edges
            in
            results := (nodes, looping) :: !results
          end
      end)
    groups;
  List.rev !results

(* --- all-pairs reachability -------------------------------------------- *)

(* Rows are plain data (strings + concrete packets), not BDDs: a worker
   domain computing them against a re-materialized graph in a private
   manager produces byte-identical rows, so parallel all-pairs needs no
   cross-manager BDD transfer when merging. *)
type reach_row = { rr_src : start; rr_dst : string; rr_example : Packet.t option }

let pairs_for_start t ?hdr s =
  let e = env t in
  let man = Pktset.man e in
  match start_loc t s with
  | None -> []
  | Some id ->
    let hdr = Option.value hdr ~default:Bdd.top in
    let sets = Freach.forward t.g [ (id, Bdd.band man hdr (clean t)) ] in
    (* Union delivered sets per destination node, in location-index order
       (deterministic: index order is fixed by graph construction). *)
    let order = ref [] in
    let by_node = Hashtbl.create 16 in
    Array.iteri
      (fun i l ->
        match l with
        | Fgraph.Accept n | Fgraph.Dst (n, _) ->
          (match Hashtbl.find_opt by_node n with
           | Some r -> r := Bdd.bor man !r sets.(i)
           | None ->
             order := n :: !order;
             Hashtbl.add by_node n (ref sets.(i)))
        | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> ())
      t.g.Fgraph.locs;
    let prefs = Pktset.standard_prefs e () in
    List.filter_map
      (fun n ->
        let set = !(Hashtbl.find by_node n) in
        if Bdd.is_bot set then None
        else Some { rr_src = s; rr_dst = n; rr_example = Pktset.to_packet e ~prefs set })
      (List.rev !order)

let all_pairs t ?hdr ?starts () =
  let starts =
    match starts with
    | Some s -> s
    | None -> default_starts t
  in
  List.concat_map (fun s -> pairs_for_start t ?hdr s) starts

let pick_examples t ?src_prefix ?dst_prefix ~violating ~holding () =
  let e = env t in
  let prefs = Pktset.standard_prefs e ?src_prefix ?dst_prefix () in
  let neg = Pktset.to_packet e ~prefs violating in
  (* Contrast: prefer a positive example close to the negative one (same
     protocol and destination), so the difference highlights the cause. *)
  let man = Pktset.man e in
  let close =
    match neg with
    | Some p ->
      [ Pktset.value e Field.Dst_ip p.Packet.dst_ip;
        Pktset.value e Field.Protocol p.Packet.protocol;
        Pktset.value e Field.Src_ip p.Packet.src_ip ]
    | None -> []
  in
  let pos = Pktset.to_packet e ~prefs:(close @ prefs) (Bdd.bdiff man holding violating) in
  (neg, pos)
