(* Memo keys for whole-graph backward passes. A [t] wraps one graph of one
   snapshot, so "same graph" is implicit in the table identity; the key is
   the query kind plus its parameters. Header sets are BDDs in the graph's
   manager, so they compare by canonical node id. *)
type memo_key =
  | Mk_delivered of string option * Bdd.t  (* at, hdr *)
  | Mk_dropped of Bdd.t  (* hdr *)

type compress_mode = [ `Off | `On | `Auto ]

type t = {
  g : Fgraph.t;
  dp : Dataplane.t;
  configs : string -> Vi.t option;
  memo : (memo_key, Bdd.t array) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable spec_cache : (Fgraph.spec * string) option;
  mutable cmode : compress_mode;
  mutable comp_fwd : Fcompress.partition option option;
  mutable comp_bwd : Fcompress.partition option;
  mutable comp_passes : int;
  mutable comp_fallbacks : int;
  (* the first pass through each partition direction runs the full
     per-location fixpoint verification; once it holds, later passes skip
     the O(edges) sweep (it costs as much as the uncompressed pass) *)
  mutable comp_fwd_checked : bool;
  mutable comp_bwd_checked : bool;
}

type start = string * string option

let of_graph ?(compress_mode = `Off) g ~dp ~configs =
  { g; dp; configs; memo = Hashtbl.create 16; memo_hits = 0; memo_misses = 0;
    spec_cache = None; cmode = compress_mode; comp_fwd = None; comp_bwd = None;
    comp_passes = 0; comp_fallbacks = 0; comp_fwd_checked = false;
    comp_bwd_checked = false }

(* The spec (and its fingerprint) is a function of the graph alone, and the
   graph inside a [t] never mutates (incremental update builds a new [t]),
   so computing both once per query object is sound. The cache lives here
   rather than in [Fgraph.t] because query combinators build [{ g with ... }]
   copies that would carry a stale cached spec. *)
let spec_with_fingerprint t =
  match t.spec_cache with
  | Some (spec, fp) -> (spec, fp)
  | None ->
    let spec = Fgraph.to_spec t.g in
    let fp = Fgraph.spec_fingerprint spec in
    t.spec_cache <- Some (spec, fp);
    (spec, fp)

(* The fingerprint if it has already been computed, without forcing the
   (milliseconds-scale) spec export. Workers can only be warm for a graph
   whose spec was shipped to them — which computes the fingerprint — so a
   [None] here is a sound "cold" answer for {!Fpar.plan}. *)
let cached_fingerprint t = Option.map snd t.spec_cache

let make ?env ?compress ?compress_mode ~configs ~dp () =
  of_graph ?compress_mode (Fgraph.build ?env ?compress ~configs ~dp ()) ~dp
    ~configs

let graph t = t.g
let memo_stats t = (t.memo_hits, t.memo_misses)

(* --- quotient compression (ISSUE 10) ------------------------------------ *)

(* The auto heuristic: compression only pays when the graph is big enough
   to amortize the (integer-only) refinement and the partition actually
   merges a decent fraction of locations. Thresholds are deliberately
   conservative — compressed passes are bit-identical either way, this only
   decides whether the quotient detour is worth taking. *)
let auto_min_locs = 96
let auto_max_ratio = 0.75

let set_compress_mode t m =
  if m <> t.cmode then begin
    t.cmode <- m;
    (* decisions depend on the mode; cached results stay valid because
       compressed and uncompressed passes are bit-identical *)
    t.comp_fwd <- None;
    t.comp_bwd <- None;
    t.comp_fwd_checked <- false;
    t.comp_bwd_checked <- false
  end

let compress_mode t = t.cmode

let forward_partition t =
  match t.comp_fwd with
  | Some r -> r
  | None ->
    let r =
      match t.cmode with
      | `Off -> None
      | `On -> Some (Fcompress.base t.g `Fwd)
      | `Auto ->
        if Fgraph.n_locs t.g < auto_min_locs then None
        else begin
          let p = Fcompress.base t.g `Fwd in
          if Fcompress.ratio p <= auto_max_ratio then Some p else None
        end
    in
    t.comp_fwd <- Some r;
    r

(* Backward passes activate with the forward decision (one knob), but use
   their own out-signature partition. *)
let backward_partition t =
  match forward_partition t with
  | None -> None
  | Some _ -> (
    match t.comp_bwd with
    | Some p -> Some p
    | None ->
      let p = Fcompress.base t.g `Bwd in
      t.comp_bwd <- Some p;
      Some p)

let compression_info t =
  Option.map
    (fun p -> (Fcompress.ratio p, Fcompress.n_classes p, Fcompress.fingerprint p))
    (forward_partition t)

let compress_stats t = (t.comp_passes, t.comp_fallbacks)

(* Seed a patched query's partitions by refitting the base's (the failure
   sweep's per-scenario path): locations owned by clean nodes keep their
   base class as the refinement starting key, so stability is re-verified
   instead of rediscovered from singletons. Only meaningful when [t]'s graph
   came from {!Fgraph.patch} against [base]'s graph — surviving locations
   keep their ids, new ones append past the base's. Refinement only splits,
   so any stale grouping the patch invalidated is separated again and the
   result is a stable partition of the new graph. When the base declined
   compression the same decision is recorded on [t] (one heuristic call per
   snapshot, not per scenario). *)
let refit_partitions ~base ~dirty t =
  if t.cmode <> `Off then begin
    (* refitted partitions are new objects: their first pass re-verifies *)
    t.comp_fwd_checked <- false;
    t.comp_bwd_checked <- false;
    match forward_partition base with
    | None -> t.comp_fwd <- Some None
    | Some pf ->
      let dirty_tbl = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace dirty_tbl n ()) dirty;
      let base_n = Fcompress.n_locs pf in
      let flags =
        Array.init (Fgraph.n_locs t.g) (fun i ->
            i >= base_n
            || Hashtbl.mem dirty_tbl (Fgraph.loc_node t.g.Fgraph.locs.(i)))
      in
      t.comp_fwd <- Some (Some (Fcompress.refit t.g `Fwd ~like:pf ~dirty:flags));
      match backward_partition base with
      | None -> ()
      | Some pb ->
        t.comp_bwd <- Some (Fcompress.refit t.g `Bwd ~like:pb ~dirty:flags)
  end

(* Run one propagation pass, through the quotient when compression is
   active, falling back to the concrete pass whenever the partition check
   fails (see Fcompress): answers are bit-identical in all cases. The full
   per-location verification sweep runs on the first pass through each
   partition direction only — it costs as much as the uncompressed pass,
   so paying it every time would forfeit the compression win. *)
let compressed_pass t part_of direct ~checked ~mark_checked seeds =
  match part_of t with
  | None -> direct t.g seeds
  | Some base -> (
    let verify = not (checked t) in
    (* the base partition pre-splits the standard seed shapes, so the
       specialize-and-retry path only triggers for unusual seeds (e.g. a
       start at an interior location); specialized partitions are
       throwaway, so their passes always verify *)
    let outcome, verified_base =
      match Fcompress.run ~verify t.g base ~seeds with
      | `Non_uniform ->
        ( Fcompress.run ~verify:true t.g
            (Fcompress.specialize t.g base ~seeds)
            ~seeds,
          false )
      | o -> (o, verify)
    in
    match outcome with
    | `Sets sets ->
      t.comp_passes <- t.comp_passes + 1;
      if verified_base then mark_checked t;
      sets
    | `Non_uniform | `Mismatch ->
      t.comp_fallbacks <- t.comp_fallbacks + 1;
      direct t.g seeds)

let forward_pass t seeds =
  compressed_pass t forward_partition Freach.forward
    ~checked:(fun t -> t.comp_fwd_checked)
    ~mark_checked:(fun t -> t.comp_fwd_checked <- true)
    seeds

let backward_pass t seeds =
  compressed_pass t backward_partition Freach.backward
    ~checked:(fun t -> t.comp_bwd_checked)
    ~mark_checked:(fun t -> t.comp_bwd_checked <- true)
    seeds

let memo_find t key compute =
  match Hashtbl.find_opt t.memo key with
  | Some r ->
    t.memo_hits <- t.memo_hits + 1;
    r
  | None ->
    t.memo_misses <- t.memo_misses + 1;
    let r = compute () in
    Hashtbl.add t.memo key r;
    r

(* Incremental rebuild (ISSUE 4; memo retention in ISSUE 8). With an empty
   dirty set the base query — graph, manager, memo, counters — is returned
   as-is, so every cached propagation result survives the update. Otherwise
   the new graph is built inside the base's warm BDD environment, where
   hash-consing turns every unchanged node's edge functions into cache hits.
   If it is structurally identical to the base graph ({!Fgraph.same_graph} —
   physical BDD equality in the shared manager, the cheap exact equivalent
   of comparing canonical spec fingerprints), the edit did not touch
   forwarding at all and the base graph (memo included) is kept; otherwise
   the memo is keyed to the old graph's propagations, so it starts fresh and
   the count of dropped entries is reported. Canonicity makes the warm-env
   rebuild's exported spec and query rows bit-identical to a from-scratch
   build. *)
let update ~base ~dirty ~configs ~dp () =
  if dirty = [] then (base, 0)
  else begin
    let g = Fgraph.build ~env:(base.g.Fgraph.env) ~configs ~dp () in
    if Fgraph.same_graph base.g g then
      (* The edit left the forwarding graph semantically untouched (same
         canonical spec): keep the base graph object — and with it every
         memoized propagation — swapping in the new data plane and configs
         for scoping defaults. Canonicity makes the kept graph's spec and
         query rows bit-identical to what the fresh build would answer. *)
      ({ base with dp; configs }, 0)
    else begin
      let invalidated = Hashtbl.length base.memo in
      (of_graph ~compress_mode:base.cmode g ~dp ~configs, invalidated)
    end
  end

(* Fault-isolated construction: graph building walks every FIB and compiles
   every referenced ACL, any of which may be garbage on a hostile snapshot. *)
let make_checked ?env ?compress ?compress_mode ~configs ~dp () =
  try Ok (make ?env ?compress ?compress_mode ~configs ~dp ())
  with exn ->
    Error
      (Diag.fatal ~phase:Diag.Forwarding ~code:Diag.code_forwarding_failed
         (Printf.sprintf "forwarding graph construction raised: %s"
            (Printexc.to_string exn)))

let env t = t.g.Fgraph.env

let clean t =
  let e = env t in
  let man = Pktset.man e in
  let acc = ref Bdd.top in
  for b = 0 to Pktset.extra_count e - 1 do
    acc := Bdd.band man !acc (Bdd.nvar man (Pktset.extra_level e b))
  done;
  !acc

let start_loc t (node, iface) =
  match iface with
  | Some i -> Fgraph.loc_id t.g (Fgraph.Src (node, i))
  | None -> Fgraph.loc_id t.g (Fgraph.Fwd node)

let seeds_of t ?hdr starts =
  let man = Pktset.man (env t) in
  let hdr = Option.value hdr ~default:Bdd.top in
  let seed = Bdd.band man hdr (clean t) in
  List.filter_map (fun s -> Option.map (fun id -> (id, seed)) (start_loc t s)) starts

let forward_from t ?hdr starts = forward_pass t (seeds_of t ?hdr starts)

let delivered_pred ?at loc =
  match loc with
  | Fgraph.Accept n | Fgraph.Dst (n, _) -> (
    match at with
    | Some node -> n = node
    | None -> true)
  | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false

let sink_seeds t pred ?hdr () =
  ignore (env t);
  let hdr = Option.value hdr ~default:Bdd.top in
  List.map (fun id -> (id, hdr)) (Fgraph.locs_where t.g pred)

let to_delivered t ?at ?hdr () =
  let hdr_b = Option.value hdr ~default:Bdd.top in
  memo_find t (Mk_delivered (at, hdr_b)) (fun () ->
      backward_pass t (sink_seeds t (delivered_pred ?at) ?hdr ()))

let to_dropped t ?hdr () =
  let pred = function
    | Fgraph.Dropped _ -> true
    | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dst _ | Fgraph.Accept _ ->
      false
  in
  let hdr_b = Option.value hdr ~default:Bdd.top in
  memo_find t (Mk_dropped hdr_b) (fun () ->
      backward_pass t (sink_seeds t pred ?hdr ()))

let delivered_union t ?at sets =
  let man = Pktset.man (env t) in
  List.fold_left
    (fun acc id -> Bdd.bor man acc sets.(id))
    Bdd.bot
    (Fgraph.locs_where t.g (delivered_pred ?at))

let reachable t ~src ?hdr ?dst_ip () =
  let man = Pktset.man (env t) in
  let hdr =
    match dst_ip with
    | Some p ->
      Bdd.band man (Option.value hdr ~default:Bdd.top) (Pktset.dst_prefix (env t) p)
    | None -> Option.value hdr ~default:Bdd.top
  in
  (* Backward from delivered sinks is cheaper than a full forward pass for a
     single start location. *)
  let back = to_delivered t ~hdr () in
  match start_loc t src with
  | Some id -> Bdd.band man (Bdd.band man back.(id) hdr) (clean t)
  | None -> Bdd.bot

let default_starts t =
  List.map (fun (n, i) -> (n, Some i)) (Fgraph.edge_interfaces t.g ~dp:t.dp)

let multipath_consistency t ?starts () =
  let man = Pktset.man (env t) in
  (* Scoping defaults (§4.4.2): start locations default to edge-facing
     interfaces. *)
  let starts =
    match starts with
    | Some s -> s
    | None -> default_starts t
  in
  let deliver = to_delivered t () in
  let drop = to_dropped t () in
  List.filter_map
    (fun s ->
      match start_loc t s with
      | None -> None
      | Some id ->
        let v = Bdd.band man (Bdd.band man deliver.(id) drop.(id)) (clean t) in
        if Bdd.is_bot v then None else Some (s, v))
    starts

(* Waypointing: instrument a copy of the graph so that traversing the
   waypoint node's FIB sets an extra bit, then test the bit at delivery. *)
let waypoint t ~src ~dst_node ~waypoint ~mode ?hdr () =
  let man = Pktset.man (env t) in
  let bit = Fgraph.zone_bits in
  let g = t.g in
  let instrumented =
    { g with
      Fgraph.out_edges =
        Array.map
          (List.map (fun (e : Fgraph.edge) ->
               match g.Fgraph.locs.(e.e_from) with
               | Fgraph.Fwd n when n = waypoint ->
                 { e with e_fn = Fgraph.Seq [ e.e_fn; Fgraph.Set_extra [ (bit, true) ] ] }
               | _ -> e))
          g.Fgraph.out_edges }
  in
  let seeds = seeds_of t ?hdr [ src ] in
  let sets = Freach.forward instrumented seeds in
  let delivered =
    List.fold_left
      (fun acc id -> Bdd.bor man acc sets.(id))
      Bdd.bot
      (Fgraph.locs_where g (delivered_pred ~at:dst_node))
  in
  let through =
    Bdd.band man delivered (Bdd.var man (Pktset.extra_level (env t) bit))
  in
  let avoided = Bdd.bdiff man delivered through in
  let strip s = Bdd.exists man (Bdd.varset man [ Pktset.extra_level (env t) bit ]) s in
  match mode with
  | `Through -> (strip through, strip avoided)
  | `Avoid -> (strip avoided, strip through)

let bidirectional t ~src ~dst ?hdr () =
  let e = env t in
  let man = Pktset.man e in
  let dst_node, dst_iface = dst in
  (* forward pass: establishes sessions at stateful devices *)
  let fwd = forward_from t ?hdr [ src ] in
  let delivered =
    List.fold_left
      (fun acc id -> Bdd.bor man acc fwd.(id))
      Bdd.bot
      (Fgraph.locs_where t.g (fun l ->
           match l with
           | Fgraph.Dst (n, i) -> n = dst_node && i = dst_iface
           | Fgraph.Accept n -> n = dst_node
           | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> false))
  in
  let strip_extra s =
    let levels = List.init (Pktset.extra_count e) (Pktset.extra_level e) in
    Bdd.exists man (Bdd.varset man levels) s
  in
  let delivered = strip_extra delivered in
  (* session fast-path sets: return flows of everything that traversed each
     stateful device *)
  let sessions name =
    match Fgraph.loc_id t.g (Fgraph.Fwd name) with
    | Some id -> Pktset.swap_src_dst e (strip_extra fwd.(id))
    | None -> Bdd.bot
  in
  let g' = Fgraph.build ~env:e ~sessions ~configs:t.configs ~dp:t.dp () in
  (* fresh wrapper: the memo table is keyed per-graph, so the instrumented
     graph must not share the original's cache *)
  let t' = of_graph g' ~dp:t.dp ~configs:t.configs in
  (* return direction: swapped delivered flows, re-entering at dst *)
  let return_seed = Bdd.band man (Pktset.swap_src_dst e delivered) (clean t') in
  let seeds =
    match Fgraph.loc_id g' (Fgraph.Src (dst_node, dst_iface)) with
    | Some id -> [ (id, return_seed) ]
    | None -> []
  in
  let back = Freach.forward g' seeds in
  let src_node = fst src in
  let returned =
    List.fold_left
      (fun acc id -> Bdd.bor man acc back.(id))
      Bdd.bot
      (Fgraph.locs_where g' (delivered_pred ~at:src_node))
  in
  (* round trip: forward-delivered flows whose swapped counterpart returned *)
  let round_trip =
    Bdd.band man delivered (Pktset.swap_src_dst e (strip_extra returned))
  in
  (delivered, round_trip)

(* Loop detection: find a non-trivial SCC among transit locations, extract a
   cycle, and compose edge functions around it; survivors loop forever.
   With compression active, the quotient screens first: when it certifies
   the concrete graph acyclic (the common case), the answer is [] without
   touching the concrete SCC machinery; otherwise the concrete pass runs
   unchanged, so results stay bit-identical. *)
let find_loops_concrete t =
  let g = t.g in
  let man = Pktset.man (env t) in
  let n = Fgraph.n_locs g in
  let adj =
    Array.init n (fun v -> List.map (fun (e : Fgraph.edge) -> e.Fgraph.e_to) g.Fgraph.out_edges.(v))
  in
  let comp = Scc.compute ~n adj in
  let groups = Scc.groups comp in
  let results = ref [] in
  Array.iter
    (fun members ->
      if List.length members > 1 then begin
        (* find one cycle through the component with DFS *)
        let inside v = List.mem v members in
        let start = List.hd members in
        let rec dfs path v =
          if v = start && path <> [] then Some (List.rev path)
          else if List.exists (fun (w, _) -> w = v) path && v <> start then None
          else
            List.fold_left
              (fun acc (e : Fgraph.edge) ->
                match acc with
                | Some _ -> acc
                | None ->
                  if inside e.e_to then dfs ((v, e) :: path) e.e_to else None)
              None g.Fgraph.out_edges.(v)
        in
        match dfs [] start with
        | None -> ()
        | Some cycle_edges ->
          let survive =
            List.fold_left
              (fun acc (_, (e : Fgraph.edge)) -> Fgraph.apply g e.e_fn acc)
              Bdd.top cycle_edges
          in
          (* iterate composition to a fixed point: packets that keep cycling *)
          let rec fixpoint s guard =
            if guard = 0 then s
            else
              let s' =
                List.fold_left
                  (fun acc (_, (e : Fgraph.edge)) -> Fgraph.apply g e.e_fn acc)
                  s cycle_edges
              in
              let s'' = Bdd.band man s s' in
              if Bdd.equal s'' s then s else fixpoint s'' (guard - 1)
          in
          let looping = fixpoint survive 16 in
          if not (Bdd.is_bot looping) then begin
            let nodes =
              List.filter_map
                (fun (v, _) ->
                  match g.Fgraph.locs.(v) with
                  | Fgraph.Fwd n -> Some n
                  | _ -> None)
                cycle_edges
            in
            results := (nodes, looping) :: !results
          end
      end)
    groups;
  List.rev !results

let find_loops t =
  match forward_partition t with
  | Some p when Fcompress.loop_screen t.g p ->
    t.comp_passes <- t.comp_passes + 1;
    []
  | Some _ ->
    t.comp_fallbacks <- t.comp_fallbacks + 1;
    find_loops_concrete t
  | None -> find_loops_concrete t

(* --- all-pairs reachability -------------------------------------------- *)

(* Rows are plain data (strings + concrete packets), not BDDs: a worker
   domain computing them against a re-materialized graph in a private
   manager produces byte-identical rows, so parallel all-pairs needs no
   cross-manager BDD transfer when merging. *)
type reach_row = { rr_src : start; rr_dst : string; rr_example : Packet.t option }

let pairs_for_start t ?hdr s =
  let e = env t in
  let man = Pktset.man e in
  match start_loc t s with
  | None -> []
  | Some id ->
    let hdr = Option.value hdr ~default:Bdd.top in
    let sets = forward_pass t [ (id, Bdd.band man hdr (clean t)) ] in
    (* Union delivered sets per destination node, in location-index order
       (deterministic: index order is fixed by graph construction). *)
    let order = ref [] in
    let by_node = Hashtbl.create 16 in
    Array.iteri
      (fun i l ->
        match l with
        | Fgraph.Accept n | Fgraph.Dst (n, _) ->
          (match Hashtbl.find_opt by_node n with
           | Some r -> r := Bdd.bor man !r sets.(i)
           | None ->
             order := n :: !order;
             Hashtbl.add by_node n (ref sets.(i)))
        | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Dropped _ -> ())
      t.g.Fgraph.locs;
    let prefs = Pktset.standard_prefs e () in
    List.filter_map
      (fun n ->
        let set = !(Hashtbl.find by_node n) in
        if Bdd.is_bot set then None
        else Some { rr_src = s; rr_dst = n; rr_example = Pktset.to_packet e ~prefs set })
      (List.rev !order)

(* Group starts whose locations are interchangeable sources: in-edge-free,
   with identical concrete out-edges (same target locations, equal edge
   functions). Seeding either location injects exactly the same values into
   exactly the same successors and nothing flows back into the seed, so the
   fixpoint agrees at every other location and one forward pass answers the
   whole group — rows differ only in the [rr_src] label. The key is the
   concrete signature, not the partition class: soundness needs the same
   targets, not merely same-class targets (multi-port access switches are
   the common case). Starts that do not qualify get singleton groups. *)
let start_groups t starts =
  let indexed = List.mapi (fun i s -> (i, s)) starts in
  match forward_partition t with
  | None -> List.map (fun is -> [ is ]) indexed
  | Some _ ->
    (* bucket by the target-id list (hashable), then split each bucket by
       structural equality of the full (target, function) signature —
       canonical BDDs make [=] on functions exact and cheap (equal sets
       are physically shared) *)
    let sig_of id =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (List.map
           (fun e -> (e.Fgraph.e_to, e.Fgraph.e_fn))
           t.g.Fgraph.out_edges.(id))
    in
    let order = ref [] in
    let buckets :
        (int list, ((int * Fgraph.func) list * (int * start) list ref) list ref)
        Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun (i, s) ->
        match start_loc t s with
        | Some id when t.g.Fgraph.in_edges.(id) = [] ->
          let sg = sig_of id in
          let key = List.map fst sg in
          let bucket =
            match Hashtbl.find_opt buckets key with
            | Some b -> b
            | None ->
              let b = ref [] in
              Hashtbl.add buckets key b;
              b
          in
          (match List.assoc_opt sg !bucket with
          | Some members -> members := (i, s) :: !members
          | None ->
            let members = ref [ (i, s) ] in
            bucket := (sg, members) :: !bucket;
            order := `Group members :: !order)
        | Some _ | None -> order := `Single (i, s) :: !order)
      indexed;
    List.rev_map
      (function
        | `Group members -> List.rev !members
        | `Single is -> [ is ])
      !order

let all_pairs t ?hdr ?starts () =
  let starts =
    match starts with
    | Some s -> s
    | None -> default_starts t
  in
  match forward_partition t with
  | None -> List.concat_map (fun s -> pairs_for_start t ?hdr s) starts
  | Some _ ->
    (* one pass per group of interchangeable sources; non-representative
       members reuse the representative's rows under their own label. The
       concatenation is in original start order, bit-identical to the
       ungrouped sweep. *)
    let out = Array.make (List.length starts) [] in
    List.iter
      (function
        | [] -> ()
        | (i0, s0) :: rest ->
          let rows0 = pairs_for_start t ?hdr s0 in
          out.(i0) <- rows0;
          List.iter
            (fun (i, s) ->
              out.(i) <- List.map (fun r -> { r with rr_src = s }) rows0)
            rest)
      (start_groups t starts);
    List.concat (Array.to_list out)

let pick_examples t ?src_prefix ?dst_prefix ~violating ~holding () =
  let e = env t in
  let prefs = Pktset.standard_prefs e ?src_prefix ?dst_prefix () in
  let neg = Pktset.to_packet e ~prefs violating in
  (* Contrast: prefer a positive example close to the negative one (same
     protocol and destination), so the difference highlights the cause. *)
  let man = Pktset.man e in
  let close =
    match neg with
    | Some p ->
      [ Pktset.value e Field.Dst_ip p.Packet.dst_ip;
        Pktset.value e Field.Protocol p.Packet.protocol;
        Pktset.value e Field.Src_ip p.Packet.src_ip ]
    | None -> []
  in
  let pos = Pktset.to_packet e ~prefs:(close @ prefs) (Bdd.bdiff man holding violating) in
  (neg, pos)
