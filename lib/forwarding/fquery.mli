(** Data-plane verification queries over the forwarding graph, with the
    usability machinery of §4.4: scoped defaults and positive/negative
    example selection. *)

(** Memo key for whole-graph backward passes; see {!memo_stats}. *)
type memo_key =
  | Mk_delivered of string option * Bdd.t
  | Mk_dropped of Bdd.t

(** Quotient-compression mode (§4.2, ISSUE 10): [`On] always routes whole-
    graph passes through the behavioral-equivalence quotient (falling back
    per pass if the partition check fails), [`Off] never does, [`Auto]
    enables it when the graph is large and the partition merges enough
    locations to pay for itself. Results are bit-identical in every mode. *)
type compress_mode = [ `Off | `On | `Auto ]

type t = {
  g : Fgraph.t;
  dp : Dataplane.t;
  configs : string -> Vi.t option;
  memo : (memo_key, Bdd.t array) Hashtbl.t;
      (** snapshot-keyed query memo: a [t] wraps one graph of one snapshot,
          so (same graph, same header set) ⇒ the cached propagation result.
          Callers must treat cached arrays as read-only. *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable spec_cache : (Fgraph.spec * string) option;
      (** lazily computed manager-independent spec + fingerprint; managed by
          {!spec_with_fingerprint}, do not write. *)
  mutable cmode : compress_mode;
      (** use {!set_compress_mode} / {!compress_mode}, do not write *)
  mutable comp_fwd : Fcompress.partition option option;
      (** lazily decided forward base partition; managed internally *)
  mutable comp_bwd : Fcompress.partition option;
      (** lazily computed backward base partition; managed internally *)
  mutable comp_passes : int;
  mutable comp_fallbacks : int;
  mutable comp_fwd_checked : bool;
      (** the first compressed pass per direction runs the full fixpoint
          verification; set once it holds, managed internally *)
  mutable comp_bwd_checked : bool;
}

(** A flow start location: [(node, Some iface)] for packets entering at an
    interface, [(node, None)] for packets originated by the device. *)
type start = string * string option

(** Wrap an already-built graph (fresh, empty memo). [compress_mode]
    defaults to [`Off]. *)
val of_graph :
  ?compress_mode:compress_mode ->
  Fgraph.t ->
  dp:Dataplane.t ->
  configs:(string -> Vi.t option) ->
  t

(** [compress] is the chain-contraction switch of {!Fgraph.build};
    [compress_mode] the quotient switch above. *)
val make :
  ?env:Pktset.t ->
  ?compress:bool ->
  ?compress_mode:compress_mode ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t

val graph : t -> Fgraph.t

(** The graph compiled to a manager-independent spec, plus that spec's
    content fingerprint — computed once per query object and cached (the
    wrapped graph is immutable). Parallel entry points ship the spec to
    worker domains and use the fingerprint to key each worker's resident
    imported-graph cache. *)
val spec_with_fingerprint : t -> Fgraph.spec * string

(** The spec fingerprint if {!spec_with_fingerprint} has already computed
    it, without forcing the spec export. Used by the adaptive planner as a
    zero-cost warmth probe: workers can only hold a graph whose spec was
    shipped to them, which computes the fingerprint as a side effect. *)
val cached_fingerprint : t -> string option

(** (hits, misses) of the query memo. *)
val memo_stats : t -> int * int

(** Incremental rebuild against a base query. [dirty] lists the hostnames
    whose data-plane results changed: when empty, [base] itself is returned
    (graph, manager and memo intact). Otherwise the graph is rebuilt for the
    new [configs]/[dp] inside [base]'s warm BDD environment; if its canonical
    spec fingerprint equals the base's the edit did not change forwarding and
    the base graph plus its whole memo are kept (zero entries invalidated),
    else the memo starts fresh and the number of invalidated entries is
    returned. Either way {!graph} answers with physically the base graph
    exactly when forwarding was unchanged. Canonicity makes the rebuilt
    query's spec and rows bit-identical to a from-scratch {!make}. *)
val update :
  base:t ->
  dirty:string list ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t * int

(** Fault-isolated {!make}: an exception during graph construction is
    returned as a [Fatal] forwarding diagnostic instead of escaping. *)
val make_checked :
  ?env:Pktset.t ->
  ?compress:bool ->
  ?compress_mode:compress_mode ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  (t, Diag.t) result

(** {2 Quotient compression}

    All whole-graph passes — {!to_delivered}, {!to_dropped},
    {!pairs_for_start}, {!forward_from}, {!find_loops} — route through the
    behavioral-equivalence quotient when the mode allows it, with automatic
    per-pass fallback to the uncompressed propagation whenever the
    partition check fails. Answers are bit-identical either way. *)

(** Switch the mode; cached memo entries stay valid (results are mode-
    independent), only the partition decision is recomputed. *)
val set_compress_mode : t -> compress_mode -> unit

val compress_mode : t -> compress_mode

(** (ratio, classes, quotient fingerprint) of the forward base partition
    when compression is active for this query object; forces the lazy
    decision. [None] when off or declined by the auto heuristic. *)
val compression_info : t -> (float * int * string) option

(** (compressed passes run, fallbacks to the uncompressed pass). *)
val compress_stats : t -> int * int

(** [refit_partitions ~base ~dirty t] seeds [t]'s lazy partitions by
    refitting [base]'s onto [t]'s graph ({!Fcompress.refit}): locations
    owned by nodes outside [dirty] keep their base class as the starting
    key. Sound only when [t]'s graph was produced by {!Fgraph.patch}
    against [base]'s graph with the same [dirty] set. No-op when [t] has
    compression off; records [base]'s negative auto decision on [t]. *)
val refit_partitions : base:t -> dirty:string list -> t -> unit

(** Group [starts] whose locations are interchangeable sources — in-edge-
    free with identical concrete out-edges (same targets, equal edge
    functions) — tagged with their original index, preserving first-
    occurrence order. One forward pass answers a whole group: the fixpoint
    from either seed agrees everywhere beyond the seeds, so rows differ
    only in the source label (multi-port access switches are the common
    case). Singleton groups when compression is inactive. {!all_pairs}
    runs one pass per group; {!Fpar.all_pairs} makes each group one
    parallel task. *)
val start_groups : t -> start list -> (int * start) list list

val env : t -> Pktset.t

(** The set with all query-local extra bits zero (seeds must use it). *)
val clean : t -> Bdd.t

(** Forward propagation from start locations; [hdr] scopes the headers. *)
val forward_from : t -> ?hdr:Bdd.t -> start list -> Bdd.t array

(** Per-location sets that can still reach a delivered disposition
    ([Accept]/[Dst]), optionally at a specific node, computed backward. *)
val to_delivered : t -> ?at:string -> ?hdr:Bdd.t -> unit -> Bdd.t array

(** Per-location sets that can still reach a drop. *)
val to_dropped : t -> ?hdr:Bdd.t -> unit -> Bdd.t array

(** Union of a set array over delivered locations (optionally at a node). *)
val delivered_union : t -> ?at:string -> Bdd.t array -> Bdd.t

(** [reachable t ~src ~dst_ip ()] is the set of packets entering at [src]
    that are delivered somewhere, constrained to destination [dst_ip]. *)
val reachable : t -> src:start -> ?hdr:Bdd.t -> ?dst_ip:Prefix.t -> unit -> Bdd.t

(** Default start scoping (§4.4.2): edge-facing interfaces. *)
val default_starts : t -> start list

(** Multipath consistency (the Figure 3 benchmark query): for every start
    location, flows that are delivered along some paths and dropped along
    others. Uses two backward passes. *)
val multipath_consistency :
  t -> ?starts:start list -> unit -> (start * Bdd.t) list

(** {2 All-pairs reachability}

    One row per (start, destination node) pair with a non-empty delivered
    set. Rows are plain data — strings and a concrete example packet — so
    per-start passes computed on different BDD managers (worker domains)
    merge without any cross-manager transfer, and the merged list is
    byte-identical to the sequential one. *)
type reach_row = {
  rr_src : start;
  rr_dst : string;
  rr_example : Packet.t option;
}

(** One forward pass: every destination node reachable from [s]. Rows come
    out in location-index order (deterministic). *)
val pairs_for_start : t -> ?hdr:Bdd.t -> start -> reach_row list

(** [all_pairs t ()] concatenates {!pairs_for_start} over [starts]
    (default {!default_starts}), in start order. With compression active
    it runs one pass per {!start_groups} group and relabels the
    representative's rows for the other members — the result is
    bit-identical to the per-start sweep. *)
val all_pairs : t -> ?hdr:Bdd.t -> ?starts:start list -> unit -> reach_row list

(** Waypoint query (§4.2.3): packets from [src] delivered at [dst_node]
    whose paths traversed ([`Through]) or avoided ([`Avoid]) [waypoint].
    Returns (compliant, violating). *)
val waypoint :
  t ->
  src:start ->
  dst_node:string ->
  waypoint:string ->
  mode:[ `Through | `Avoid ] ->
  ?hdr:Bdd.t ->
  unit ->
  Bdd.t * Bdd.t

(** Bidirectional reachability (§4.2.3): flows from [src] delivered at
    [dst] whose return traffic (src/dst swapped) also makes it back,
    given the firewall sessions established by the forward direction.
    Returns (delivered_forward, round_trip). *)
val bidirectional :
  t -> src:start -> dst:string * string -> ?hdr:Bdd.t -> unit -> Bdd.t * Bdd.t

(** Forwarding loops: cycles in the graph that some packet set can traverse
    fully. Returns (nodes on the cycle, looping set). *)
val find_loops : t -> (string list * Bdd.t) list

(** §4.4.3: pick a violating example and a contrasting positive example from
    the two sets, biased toward realistic packets. *)
val pick_examples :
  t ->
  ?src_prefix:Prefix.t ->
  ?dst_prefix:Prefix.t ->
  violating:Bdd.t ->
  holding:Bdd.t ->
  unit ->
  Packet.t option * Packet.t option
