(** Data-plane verification queries over the forwarding graph, with the
    usability machinery of §4.4: scoped defaults and positive/negative
    example selection. *)

(** Memo key for whole-graph backward passes; see {!memo_stats}. *)
type memo_key =
  | Mk_delivered of string option * Bdd.t
  | Mk_dropped of Bdd.t

type t = {
  g : Fgraph.t;
  dp : Dataplane.t;
  configs : string -> Vi.t option;
  memo : (memo_key, Bdd.t array) Hashtbl.t;
      (** snapshot-keyed query memo: a [t] wraps one graph of one snapshot,
          so (same graph, same header set) ⇒ the cached propagation result.
          Callers must treat cached arrays as read-only. *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable spec_cache : (Fgraph.spec * string) option;
      (** lazily computed manager-independent spec + fingerprint; managed by
          {!spec_with_fingerprint}, do not write. *)
}

(** A flow start location: [(node, Some iface)] for packets entering at an
    interface, [(node, None)] for packets originated by the device. *)
type start = string * string option

(** Wrap an already-built graph (fresh, empty memo). *)
val of_graph :
  Fgraph.t -> dp:Dataplane.t -> configs:(string -> Vi.t option) -> t

val make :
  ?env:Pktset.t ->
  ?compress:bool ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t

val graph : t -> Fgraph.t

(** The graph compiled to a manager-independent spec, plus that spec's
    content fingerprint — computed once per query object and cached (the
    wrapped graph is immutable). Parallel entry points ship the spec to
    worker domains and use the fingerprint to key each worker's resident
    imported-graph cache. *)
val spec_with_fingerprint : t -> Fgraph.spec * string

(** The spec fingerprint if {!spec_with_fingerprint} has already computed
    it, without forcing the spec export. Used by the adaptive planner as a
    zero-cost warmth probe: workers can only hold a graph whose spec was
    shipped to them, which computes the fingerprint as a side effect. *)
val cached_fingerprint : t -> string option

(** (hits, misses) of the query memo. *)
val memo_stats : t -> int * int

(** Incremental rebuild against a base query. [dirty] lists the hostnames
    whose data-plane results changed: when empty, [base] itself is returned
    (graph, manager and memo intact). Otherwise the graph is rebuilt for the
    new [configs]/[dp] inside [base]'s warm BDD environment; if its canonical
    spec fingerprint equals the base's the edit did not change forwarding and
    the base graph plus its whole memo are kept (zero entries invalidated),
    else the memo starts fresh and the number of invalidated entries is
    returned. Either way {!graph} answers with physically the base graph
    exactly when forwarding was unchanged. Canonicity makes the rebuilt
    query's spec and rows bit-identical to a from-scratch {!make}. *)
val update :
  base:t ->
  dirty:string list ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  t * int

(** Fault-isolated {!make}: an exception during graph construction is
    returned as a [Fatal] forwarding diagnostic instead of escaping. *)
val make_checked :
  ?env:Pktset.t ->
  ?compress:bool ->
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  unit ->
  (t, Diag.t) result

val env : t -> Pktset.t

(** The set with all query-local extra bits zero (seeds must use it). *)
val clean : t -> Bdd.t

(** Forward propagation from start locations; [hdr] scopes the headers. *)
val forward_from : t -> ?hdr:Bdd.t -> start list -> Bdd.t array

(** Per-location sets that can still reach a delivered disposition
    ([Accept]/[Dst]), optionally at a specific node, computed backward. *)
val to_delivered : t -> ?at:string -> ?hdr:Bdd.t -> unit -> Bdd.t array

(** Per-location sets that can still reach a drop. *)
val to_dropped : t -> ?hdr:Bdd.t -> unit -> Bdd.t array

(** Union of a set array over delivered locations (optionally at a node). *)
val delivered_union : t -> ?at:string -> Bdd.t array -> Bdd.t

(** [reachable t ~src ~dst_ip ()] is the set of packets entering at [src]
    that are delivered somewhere, constrained to destination [dst_ip]. *)
val reachable : t -> src:start -> ?hdr:Bdd.t -> ?dst_ip:Prefix.t -> unit -> Bdd.t

(** Default start scoping (§4.4.2): edge-facing interfaces. *)
val default_starts : t -> start list

(** Multipath consistency (the Figure 3 benchmark query): for every start
    location, flows that are delivered along some paths and dropped along
    others. Uses two backward passes. *)
val multipath_consistency :
  t -> ?starts:start list -> unit -> (start * Bdd.t) list

(** {2 All-pairs reachability}

    One row per (start, destination node) pair with a non-empty delivered
    set. Rows are plain data — strings and a concrete example packet — so
    per-start passes computed on different BDD managers (worker domains)
    merge without any cross-manager transfer, and the merged list is
    byte-identical to the sequential one. *)
type reach_row = {
  rr_src : start;
  rr_dst : string;
  rr_example : Packet.t option;
}

(** One forward pass: every destination node reachable from [s]. Rows come
    out in location-index order (deterministic). *)
val pairs_for_start : t -> ?hdr:Bdd.t -> start -> reach_row list

(** [all_pairs t ()] concatenates {!pairs_for_start} over [starts]
    (default {!default_starts}), in start order. *)
val all_pairs : t -> ?hdr:Bdd.t -> ?starts:start list -> unit -> reach_row list

(** Waypoint query (§4.2.3): packets from [src] delivered at [dst_node]
    whose paths traversed ([`Through]) or avoided ([`Avoid]) [waypoint].
    Returns (compliant, violating). *)
val waypoint :
  t ->
  src:start ->
  dst_node:string ->
  waypoint:string ->
  mode:[ `Through | `Avoid ] ->
  ?hdr:Bdd.t ->
  unit ->
  Bdd.t * Bdd.t

(** Bidirectional reachability (§4.2.3): flows from [src] delivered at
    [dst] whose return traffic (src/dst swapped) also makes it back,
    given the firewall sessions established by the forward direction.
    Returns (delivered_forward, round_trip). *)
val bidirectional :
  t -> src:start -> dst:string * string -> ?hdr:Bdd.t -> unit -> Bdd.t * Bdd.t

(** Forwarding loops: cycles in the graph that some packet set can traverse
    fully. Returns (nodes on the cycle, looping set). *)
val find_loops : t -> (string list * Bdd.t) list

(** §4.4.3: pick a violating example and a contrasting positive example from
    the two sets, biased toward realistic packets. *)
val pick_examples :
  t ->
  ?src_prefix:Prefix.t ->
  ?dst_prefix:Prefix.t ->
  violating:Bdd.t ->
  holding:Bdd.t ->
  unit ->
  Packet.t option * Packet.t option
