(* The vendor-independent (VI) configuration model (paper stage 1).

   Vendor parsers translate configuration text into this representation; all
   downstream analyses (data-plane generation, forwarding analysis, the
   question engine) consume only this model. *)

type action = Permit | Deny

let action_to_string = function
  | Permit -> "permit"
  | Deny -> "deny"

(* --- Packet filters (ACLs / firewall filters) --- *)

type acl_line = {
  l_seq : int;
  l_action : action;
  l_proto : int option;  (* None = any IP protocol *)
  l_src : Prefix.t;
  l_dst : Prefix.t;
  l_src_ports : (int * int) list;  (* [] = any *)
  l_dst_ports : (int * int) list;
  l_established : bool;  (* TCP established: ACK or RST set *)
  l_icmp_type : int option;
  l_text : string;  (* original text, for annotating flow traces *)
  l_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

type acl = { acl_name : string; acl_lines : acl_line list }

let acl_line_default =
  { l_seq = 0; l_action = Permit; l_proto = None;
    l_src = Prefix.everything; l_dst = Prefix.everything;
    l_src_ports = []; l_dst_ports = []; l_established = false;
    l_icmp_type = None; l_text = ""; l_line = 0 }

(* --- Routing policy structures --- *)

type prefix_list_entry = {
  ple_seq : int;
  ple_action : action;
  ple_prefix : Prefix.t;
  ple_ge : int option;
  ple_le : int option;
  ple_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

type prefix_list = { pl_name : string; pl_entries : prefix_list_entry list }

type community_list = {
  cl_name : string;
  cl_entries : (action * int) list;  (* communities as 32-bit asn:value *)
}

type as_path_list = {
  apl_name : string;
  apl_entries : (action * string) list;  (* POSIX-ish regex over "65001 65002" *)
}

type origin = Origin_igp | Origin_egp | Origin_incomplete

type match_cond =
  | Match_prefix_list of string
  | Match_prefix of Prefix.t
  | Match_community of string
  | Match_as_path of string
  | Match_metric of int
  | Match_tag of int
  | Match_protocol of string  (* "static" | "connected" | "ospf" | "bgp" *)

type set_action =
  | Set_local_pref of int
  | Set_metric of int
  | Set_communities of int list * bool  (* values, additive *)
  | Set_next_hop of Ipv4.t
  | Set_next_hop_self
  | Set_as_path_prepend of int list
  | Set_weight of int
  | Set_tag of int
  | Set_origin of origin

type rm_clause = {
  rc_seq : int;
  rc_action : action;
  rc_matches : match_cond list;
  rc_sets : set_action list;
  rc_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

type route_map = { rm_name : string; rm_clauses : rm_clause list }

(* --- OSPF --- *)

type ospf_interface = {
  oi_area : int;
  oi_cost : int option;  (* None = derive from bandwidth *)
  oi_passive : bool;
}

type metric_type = E1 | E2

type redistribution = {
  rd_protocol : string;  (* "static" | "connected" | "ospf" | "bgp" *)
  rd_metric : int option;
  rd_metric_type : metric_type;
  rd_route_map : string option;
}

type ospf_proc = {
  op_router_id : Ipv4.t option;
  op_reference_bandwidth : int;  (* Mbps *)
  op_redistribute : redistribution list;
  op_max_paths : int;
  op_networks : (Prefix.t * int) list;  (* network statements: prefix, area *)
  op_passive_interfaces : string list;
  op_active_interfaces : string list;  (* "no passive-interface X" *)
  op_default_passive : bool;
}

let ospf_proc_default =
  { op_router_id = None; op_reference_bandwidth = 100_000;
    op_redistribute = []; op_max_paths = 1; op_networks = [];
    op_passive_interfaces = []; op_active_interfaces = [];
    op_default_passive = false }

(* --- BGP --- *)

type bgp_neighbor = {
  bn_peer : Ipv4.t;
  bn_remote_as : int;
  bn_description : string option;
  bn_update_source : string option;  (* interface whose address sources the session *)
  bn_next_hop_self : bool;
  bn_route_reflector_client : bool;
  bn_send_community : bool;
  bn_import_policy : string option;
  bn_export_policy : string option;
  bn_prefix_list_in : string option;
  bn_prefix_list_out : string option;
  bn_ebgp_multihop : bool;
  bn_allowas_in : int;
  bn_local_as : int option;
  bn_shutdown : bool;
  bn_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

let bgp_neighbor_default peer remote_as =
  { bn_peer = peer; bn_remote_as = remote_as; bn_description = None;
    bn_update_source = None; bn_next_hop_self = false;
    bn_route_reflector_client = false; bn_send_community = false;
    bn_import_policy = None; bn_export_policy = None; bn_prefix_list_in = None;
    bn_prefix_list_out = None; bn_ebgp_multihop = false;
    bn_allowas_in = 0; bn_local_as = None; bn_shutdown = false; bn_line = 0 }

type bgp_proc = {
  bp_as : int;
  bp_router_id : Ipv4.t option;
  bp_networks : (Prefix.t * string option) list;  (* prefix, optional route-map *)
  bp_neighbors : bgp_neighbor list;
  bp_redistribute : redistribution list;
  bp_max_paths : int;
  bp_max_paths_ibgp : int;
  bp_cluster_id : Ipv4.t option;
}

let bgp_proc_default asn =
  { bp_as = asn; bp_router_id = None; bp_networks = []; bp_neighbors = [];
    bp_redistribute = []; bp_max_paths = 1; bp_max_paths_ibgp = 1;
    bp_cluster_id = None }

(* --- NAT --- *)

type nat_pool =
  | Nat_ip of Ipv4.t
  | Nat_prefix of Prefix.t
  | Nat_interface  (* the egress interface's address *)

type nat_rule = {
  nr_kind : [ `Source | `Destination ];
  nr_match_acl : string option;
  nr_match_src : Prefix.t option;  (* for static source NAT: local address *)
  nr_match_dst : Prefix.t option;  (* for destination NAT: global address *)
  nr_pool : nat_pool;
}

(* --- Zones (stateful firewalls) --- *)

type zone = { z_name : string; z_interfaces : string list }

type zone_policy = {
  zp_from : string;
  zp_to : string;
  zp_acl : string;  (* filter applied to inter-zone traffic *)
}

(* --- Interfaces --- *)

type interface = {
  if_name : string;
  if_address : (Ipv4.t * int) option;
  if_secondary : (Ipv4.t * int) list;
  if_enabled : bool;
  if_bandwidth : int;  (* Mbps *)
  if_in_acl : string option;
  if_out_acl : string option;
  if_ospf : ospf_interface option;
  if_description : string option;
  if_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

let interface_default name =
  { if_name = name; if_address = None; if_secondary = []; if_enabled = true;
    if_bandwidth = 1000; if_in_acl = None; if_out_acl = None; if_ospf = None;
    if_description = None; if_line = 0 }

(* --- Static routes --- *)

type static_next_hop = Nh_ip of Ipv4.t | Nh_interface of string | Nh_discard

type static_route = {
  sr_prefix : Prefix.t;
  sr_next_hop : static_next_hop;
  sr_ad : int;
  sr_tag : int;
  sr_line : int;  (* 1-based source line; 0 = unknown provenance *)
}

(* --- Whole-device configuration --- *)

type t = {
  hostname : string;
  vendor : string;  (* "cisco-ios" | "arista-eos" | "juniper" *)
  interfaces : interface list;
  acls : acl list;
  prefix_lists : prefix_list list;
  community_lists : community_list list;
  as_path_lists : as_path_list list;
  route_maps : route_map list;
  static_routes : static_route list;
  ospf : ospf_proc option;
  bgp : bgp_proc option;
  nat_rules : nat_rule list;
  zones : zone list;
  zone_policies : zone_policy list;
  ntp_servers : string list;
  dns_servers : string list;
  logging_servers : string list;
  snmp_community : string option;
}

let empty hostname vendor =
  { hostname; vendor; interfaces = []; acls = []; prefix_lists = [];
    community_lists = []; as_path_lists = []; route_maps = [];
    static_routes = []; ospf = None; bgp = None; nat_rules = []; zones = [];
    zone_policies = []; ntp_servers = []; dns_servers = [];
    logging_servers = []; snmp_community = None }

(* --- Lookups --- *)

let find_interface cfg name = List.find_opt (fun i -> i.if_name = name) cfg.interfaces
let find_acl cfg name = List.find_opt (fun a -> a.acl_name = name) cfg.acls
let find_prefix_list cfg name = List.find_opt (fun p -> p.pl_name = name) cfg.prefix_lists

let find_community_list cfg name =
  List.find_opt (fun c -> c.cl_name = name) cfg.community_lists

let find_as_path_list cfg name =
  List.find_opt (fun a -> a.apl_name = name) cfg.as_path_lists

let find_route_map cfg name = List.find_opt (fun r -> r.rm_name = name) cfg.route_maps

let find_zone_of_interface cfg ifname =
  List.find_opt (fun z -> List.mem ifname z.z_interfaces) cfg.zones

(* Prefixes owned by a device's interfaces (used for topology inference and
   connected routes). *)
let interface_prefixes cfg =
  List.concat_map
    (fun i ->
      if not i.if_enabled then []
      else
        List.filter_map
          (fun addr ->
            match addr with
            | Some (ip, len) -> Some (i.if_name, ip, Prefix.make ip len)
            | None -> None)
          (i.if_address :: List.map Option.some i.if_secondary))
    cfg.interfaces

(* Community helpers: communities are 32-bit ints "asn:value". *)
let community asn value = (asn lsl 16) lor (value land 0xFFFF)

(* Well-known communities (RFC 1997). *)
let no_export = 0xFFFF_FF01
let no_advertise = 0xFFFF_FF02
let local_as_comm = 0xFFFF_FF03

let community_to_string c =
  if c = no_export then "no-export"
  else if c = no_advertise then "no-advertise"
  else if c = local_as_comm then "local-AS"
  else Printf.sprintf "%d:%d" (c lsr 16) (c land 0xFFFF)

(* Zero every source-line provenance field. Used to compare configurations
   for semantic equality: a cosmetic edit that only shifts line numbers must
   not count as a model change (e.g. for incremental reuse). *)
let strip_provenance cfg =
  { cfg with
    interfaces = List.map (fun i -> { i with if_line = 0 }) cfg.interfaces;
    acls =
      List.map
        (fun a ->
          { a with acl_lines = List.map (fun l -> { l with l_line = 0 }) a.acl_lines })
        cfg.acls;
    prefix_lists =
      List.map
        (fun p ->
          { p with
            pl_entries = List.map (fun e -> { e with ple_line = 0 }) p.pl_entries })
        cfg.prefix_lists;
    route_maps =
      List.map
        (fun r ->
          { r with
            rm_clauses = List.map (fun c -> { c with rc_line = 0 }) r.rm_clauses })
        cfg.route_maps;
    static_routes = List.map (fun s -> { s with sr_line = 0 }) cfg.static_routes;
    bgp =
      Option.map
        (fun bp ->
          { bp with
            bp_neighbors =
              List.map (fun n -> { n with bn_line = 0 }) bp.bp_neighbors })
        cfg.bgp }

let community_of_string s =
  match s with
  | "no-export" -> Some no_export
  | "no-advertise" -> Some no_advertise
  | "local-AS" | "local-as" -> Some local_as_comm
  | s ->
    (match String.index_opt s ':' with
     | Some i -> (
       match
         ( int_of_string_opt (String.sub s 0 i),
           int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
       with
       | Some a, Some v when a >= 0 && a <= 0xFFFF && v >= 0 && v <= 0xFFFF ->
         Some (community a v)
       | _ -> None)
     | None -> None)
