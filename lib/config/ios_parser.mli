(** Parser for Cisco-IOS-style configuration text (also used for the
    Arista-EOS flavour, which shares most syntax).

    Unrecognized lines produce warnings instead of failures, mirroring
    Batfish's tolerance of the configuration long tail (Lesson 3). *)

(** [parse ~vendor text] returns the vendor-independent model and parse
    diagnostics. [vendor] should be ["cisco-ios"] or ["arista-eos"]. *)
val parse : ?vendor:string -> string -> Vi.t * Diag.t list
