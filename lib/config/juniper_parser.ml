(* Juniper "set"-statement parser. Every line is independent; structures are
   accumulated keyed by name and assembled at the end in first-seen order. *)

open Cfg_lexer

type fw_term = {
  mutable ft_srcs : Prefix.t list;
  mutable ft_dsts : Prefix.t list;
  mutable ft_proto : int option;
  mutable ft_src_ports : (int * int) list;
  mutable ft_dst_ports : (int * int) list;
  mutable ft_established : bool;
  mutable ft_icmp_type : int option;
  mutable ft_action : Vi.action option;
  mutable ft_line : int;  (* first line mentioning the term *)
}

type ps_term = {
  mutable pt_matches : Vi.match_cond list;  (* reversed *)
  mutable pt_route_filters : Vi.prefix_list_entry list;  (* reversed *)
  mutable pt_sets : Vi.set_action list;  (* reversed *)
  mutable pt_action : Vi.action option;
  mutable pt_line : int;  (* first line mentioning the term *)
}

type bgp_group = {
  mutable bg_internal : bool;
  mutable bg_peer_as : int option;
  mutable bg_import : string option;
  mutable bg_export : string option;
  mutable bg_cluster : Ipv4.t option;
  mutable bg_multipath : bool;
  mutable bg_neighbors : (Ipv4.t * int option * string option * int) list;
  (* peer, per-neighbor peer-as, description, source line; reversed *)
}

type st = {
  mutable hostname : string;
  mutable warnings : Diag.t list;
  mutable interfaces : (string, Vi.interface) Hashtbl.t;
  mutable if_order : string list;
  filters : (string, (string, fw_term) Hashtbl.t * string list ref) Hashtbl.t;
  mutable filter_order : string list;
  policies : (string, (string, ps_term) Hashtbl.t * string list ref) Hashtbl.t;
  mutable policy_order : string list;
  mutable prefix_lists : (string, (Prefix.t * int) list) Hashtbl.t;
  mutable pl_order : string list;
  mutable communities : (string, int list) Hashtbl.t;
  mutable comm_order : string list;
  mutable as_paths : (string, string) Hashtbl.t;
  mutable apl_order : string list;
  mutable statics : Vi.static_route list;
  mutable asn : int option;
  mutable router_id : Ipv4.t option;
  mutable ospf_ref_bw : int;
  mutable ospf_ifaces : (string * int * int option * bool * int) list;
  (* if, area, metric, passive, source line *)
  mutable ospf_exports : string list;
  bgp_groups : (string, bgp_group) Hashtbl.t;
  mutable bg_order : string list;
  mutable zones : (string * string list ref) list;
  mutable zone_policies : Vi.zone_policy list;
  mutable nat_pools : (string, Prefix.t) Hashtbl.t;
  mutable nat_rules : Vi.nat_rule list;
  mutable ntp : string list;
  mutable dns : string list;
  mutable syslog : string list;
  mutable snmp : string option;
}

let warn st (line : line) code =
  st.warnings <-
    Diag.parse_warn ~node:st.hostname ~line:line.num ~code (String.trim line.raw)
    :: st.warnings

let warn_undef st (line : line) ty name =
  st.warnings <-
    Diag.parse_warn ~node:st.hostname ~line:line.num
      ~code:Diag.code_undefined_reference
      (Printf.sprintf "undefined %s '%s': %s" ty name (String.trim line.raw))
    :: st.warnings

let get_interface st ?(line = 0) name =
  match Hashtbl.find_opt st.interfaces name with
  | Some i ->
    (* keep the earliest known source line as the interface's provenance *)
    if i.Vi.if_line = 0 && line > 0 then begin
      let i = { i with Vi.if_line = line } in
      Hashtbl.replace st.interfaces name i;
      i
    end
    else i
  | None ->
    let i = { (Vi.interface_default name) with Vi.if_line = line } in
    Hashtbl.add st.interfaces name i;
    st.if_order <- name :: st.if_order;
    i

let set_interface st name i = Hashtbl.replace st.interfaces name i

let get_named tbl order name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.add tbl name v;
    order := name :: !order;
    v

let get_fw_term st fname tname tline =
  let order_ref = ref st.filter_order in
  let terms, torder =
    get_named st.filters order_ref fname (fun () -> (Hashtbl.create 8, ref []))
  in
  st.filter_order <- !order_ref;
  match Hashtbl.find_opt terms tname with
  | Some t -> t
  | None ->
    let t =
      { ft_srcs = []; ft_dsts = []; ft_proto = None; ft_src_ports = [];
        ft_dst_ports = []; ft_established = false; ft_icmp_type = None;
        ft_action = None; ft_line = tline }
    in
    Hashtbl.add terms tname t;
    torder := tname :: !torder;
    t

let get_ps_term st pname tname tline =
  let order_ref = ref st.policy_order in
  let terms, torder =
    get_named st.policies order_ref pname (fun () -> (Hashtbl.create 8, ref []))
  in
  st.policy_order <- !order_ref;
  match Hashtbl.find_opt terms tname with
  | Some t -> t
  | None ->
    let t =
      { pt_matches = []; pt_route_filters = []; pt_sets = []; pt_action = None;
        pt_line = tline }
    in
    Hashtbl.add terms tname t;
    torder := tname :: !torder;
    t

let get_bgp_group st gname =
  let order_ref = ref st.bg_order in
  let g =
    get_named st.bgp_groups order_ref gname (fun () ->
        { bg_internal = false; bg_peer_as = None; bg_import = None;
          bg_export = None; bg_cluster = None; bg_multipath = false;
          bg_neighbors = [] })
  in
  st.bg_order <- !order_ref;
  g

let port_range s =
  match String.index_opt s '-' with
  | Some i -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some a, Some b -> Some (a, b)
    | _ -> None)
  | None -> Option.map (fun p -> (p, p)) (int_of_string_opt s)

let proto_num = function
  | "tcp" -> Some Packet.Proto.tcp
  | "udp" -> Some Packet.Proto.udp
  | "icmp" -> Some Packet.Proto.icmp
  | "ospf" -> Some Packet.Proto.ospf
  | s -> int_of_string_opt s

let handle st (line : line) =
  match line.tokens with
  | "set" :: rest -> (
    match rest with
    | [ "system"; "host-name"; h ] -> st.hostname <- h
    | [ "system"; "ntp"; "server"; s ] -> st.ntp <- s :: st.ntp
    | [ "system"; "name-server"; s ] -> st.dns <- s :: st.dns
    | "system" :: "syslog" :: "host" :: s :: _ -> st.syslog <- s :: st.syslog
    | "system" :: _ -> () (* other system config is irrelevant to the model *)
    | [ "snmp"; "community"; c ] -> st.snmp <- Some c
    | [ "interfaces"; ifname; "unit"; "0"; "family"; "inet"; "address"; addr ] -> (
      match Prefix.of_string_opt addr with
      | Some _ -> (
        match String.index_opt addr '/' with
        | Some k ->
          let ip = Ipv4.of_string (String.sub addr 0 k) in
          let len = int_of_string (String.sub addr (k + 1) (String.length addr - k - 1)) in
          let i = get_interface st ~line:line.num ifname in
          if i.if_address = None then
            set_interface st ifname { i with if_address = Some (ip, len) }
          else
            set_interface st ifname { i with if_secondary = (ip, len) :: i.if_secondary }
        | None -> warn st line Diag.code_bad_value)
      | None -> warn st line Diag.code_bad_value)
    | [ "interfaces"; ifname; "disable" ] ->
      set_interface st ifname
        { (get_interface st ~line:line.num ifname) with if_enabled = false }
    | "interfaces" :: ifname :: "description" :: d ->
      set_interface st ifname
        { (get_interface st ~line:line.num ifname) with
          if_description = Some (String.concat " " d) }
    | [ "interfaces"; ifname; "unit"; "0"; "family"; "inet"; "filter"; "input"; f ] ->
      set_interface st ifname
        { (get_interface st ~line:line.num ifname) with if_in_acl = Some f }
    | [ "interfaces"; ifname; "unit"; "0"; "family"; "inet"; "filter"; "output"; f ] ->
      set_interface st ifname
        { (get_interface st ~line:line.num ifname) with if_out_acl = Some f }
    | [ "interfaces"; ifname; "speed"; _ ] | [ "interfaces"; ifname; "mtu"; _ ] ->
      ignore ifname
    | [ "routing-options"; "autonomous-system"; a ] -> (
      match int_of_string_opt a with
      | Some a -> st.asn <- Some a
      | None -> warn st line Diag.code_bad_value)
    | [ "routing-options"; "router-id"; r ] -> (
      match Ipv4.of_string_opt r with
      | Some r -> st.router_id <- Some r
      | None -> warn st line Diag.code_bad_value)
    | [ "routing-options"; "static"; "route"; p; "next-hop"; nh ] -> (
      match (Prefix.of_string_opt p, Ipv4.of_string_opt nh) with
      | Some p, Some nh ->
        st.statics <-
          { Vi.sr_prefix = p; sr_next_hop = Vi.Nh_ip nh; sr_ad = 5; sr_tag = 0;
            sr_line = line.num }
          :: st.statics
      | _ -> warn st line Diag.code_bad_value)
    | [ "routing-options"; "static"; "route"; p; "discard" ] -> (
      match Prefix.of_string_opt p with
      | Some p ->
        st.statics <-
          { Vi.sr_prefix = p; sr_next_hop = Vi.Nh_discard; sr_ad = 5; sr_tag = 0;
            sr_line = line.num }
          :: st.statics
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "ospf"; "reference-bandwidth"; b ] -> (
      match int_of_string_opt b with
      | Some b -> st.ospf_ref_bw <- b
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "ospf"; "area"; a; "interface"; i ] -> (
      match int_of_string_opt a with
      | Some a -> st.ospf_ifaces <- (i, a, None, false, line.num) :: st.ospf_ifaces
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "ospf"; "area"; a; "interface"; i; "metric"; m ] -> (
      match (int_of_string_opt a, int_of_string_opt m) with
      | Some a, Some m ->
        st.ospf_ifaces <- (i, a, Some m, false, line.num) :: st.ospf_ifaces
      | _ -> warn st line Diag.code_bad_value)
    | [ "protocols"; "ospf"; "area"; a; "interface"; i; "passive" ] -> (
      match int_of_string_opt a with
      | Some a -> st.ospf_ifaces <- (i, a, None, true, line.num) :: st.ospf_ifaces
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "ospf"; "export"; p ] -> st.ospf_exports <- p :: st.ospf_exports
    | [ "protocols"; "bgp"; "group"; g; "type"; ty ] ->
      (get_bgp_group st g).bg_internal <- ty = "internal"
    | [ "protocols"; "bgp"; "group"; g; "peer-as"; pas ] -> (
      match int_of_string_opt pas with
      | Some pas -> (get_bgp_group st g).bg_peer_as <- Some pas
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "bgp"; "group"; g; "import"; p ] ->
      (get_bgp_group st g).bg_import <- Some p
    | [ "protocols"; "bgp"; "group"; g; "export"; p ] ->
      (get_bgp_group st g).bg_export <- Some p
    | [ "protocols"; "bgp"; "group"; g; "cluster"; c ] -> (
      match Ipv4.of_string_opt c with
      | Some c -> (get_bgp_group st g).bg_cluster <- Some c
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "bgp"; "group"; g; "multipath" ]
    | [ "protocols"; "bgp"; "group"; g; "multipath"; "multiple-as" ] ->
      (get_bgp_group st g).bg_multipath <- true
    | [ "protocols"; "bgp"; "group"; g; "neighbor"; p ] -> (
      match Ipv4.of_string_opt p with
      | Some p ->
        let grp = get_bgp_group st g in
        grp.bg_neighbors <- (p, None, None, line.num) :: grp.bg_neighbors
      | None -> warn st line Diag.code_bad_value)
    | [ "protocols"; "bgp"; "group"; g; "neighbor"; p; "peer-as"; pas ] -> (
      match (Ipv4.of_string_opt p, int_of_string_opt pas) with
      | Some p, Some pas ->
        let grp = get_bgp_group st g in
        grp.bg_neighbors <- (p, Some pas, None, line.num) :: grp.bg_neighbors
      | _ -> warn st line Diag.code_bad_value)
    | "protocols" :: "bgp" :: "group" :: g :: "neighbor" :: p :: "description" :: d -> (
      match Ipv4.of_string_opt p with
      | Some p ->
        let grp = get_bgp_group st g in
        grp.bg_neighbors <-
          (p, None, Some (String.concat " " d), line.num) :: grp.bg_neighbors
      | None -> warn st line Diag.code_bad_value)
    | [ "policy-options"; "prefix-list"; name; p ] -> (
      match Prefix.of_string_opt p with
      | Some p -> (
        match Hashtbl.find_opt st.prefix_lists name with
        | Some ps -> Hashtbl.replace st.prefix_lists name ((p, line.num) :: ps)
        | None ->
          Hashtbl.add st.prefix_lists name [ (p, line.num) ];
          st.pl_order <- name :: st.pl_order)
      | None -> warn st line Diag.code_bad_value)
    | [ "policy-options"; "community"; name; "members"; c ] -> (
      match Vi.community_of_string c with
      | Some c -> (
        match Hashtbl.find_opt st.communities name with
        | Some cs -> Hashtbl.replace st.communities name (c :: cs)
        | None ->
          Hashtbl.add st.communities name [ c ];
          st.comm_order <- name :: st.comm_order)
      | None -> warn st line Diag.code_bad_value)
    | "policy-options" :: "as-path" :: name :: regex ->
      if not (Hashtbl.mem st.as_paths name) then begin
        Hashtbl.add st.as_paths name
          (String.concat " " regex |> fun s -> String.trim (String.map (fun c -> if c = '"' then ' ' else c) s));
        st.apl_order <- name :: st.apl_order
      end
    | "policy-options" :: "policy-statement" :: pname :: "term" :: tname :: rest -> (
      let t = get_ps_term st pname tname line.num in
      match rest with
      | [ "from"; "prefix-list"; pl ] -> t.pt_matches <- Vi.Match_prefix_list pl :: t.pt_matches
      | [ "from"; "protocol"; p ] ->
        let p = if p = "direct" then "connected" else p in
        t.pt_matches <- Vi.Match_protocol p :: t.pt_matches
      | [ "from"; "community"; c ] -> t.pt_matches <- Vi.Match_community c :: t.pt_matches
      | [ "from"; "as-path"; a ] -> t.pt_matches <- Vi.Match_as_path a :: t.pt_matches
      | [ "from"; "metric"; m ] -> (
        match int_of_string_opt m with
        | Some m -> t.pt_matches <- Vi.Match_metric m :: t.pt_matches
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "tag"; tag ] -> (
        match int_of_string_opt tag with
        | Some tag -> t.pt_matches <- Vi.Match_tag tag :: t.pt_matches
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "route-filter"; p; modifier ] -> (
        match Prefix.of_string_opt p with
        | Some p ->
          let seq = (List.length t.pt_route_filters + 1) * 10 in
          let entry =
            match modifier with
            | "exact" ->
              Some
                { Vi.ple_seq = seq; ple_action = Vi.Permit; ple_prefix = p;
                  ple_ge = None; ple_le = None; ple_line = line.num }
            | "orlonger" ->
              Some
                { Vi.ple_seq = seq; ple_action = Vi.Permit; ple_prefix = p;
                  ple_ge = Some (Prefix.length p); ple_le = Some 32;
                  ple_line = line.num }
            | _ -> None
          in
          (match entry with
           | Some e -> t.pt_route_filters <- e :: t.pt_route_filters
           | None -> warn st line Diag.code_unrecognized_syntax)
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "route-filter"; p; "upto"; upto ] -> (
        match (Prefix.of_string_opt p, int_of_string_opt (String.map (fun c -> if c = '/' then ' ' else c) upto |> String.trim)) with
        | Some p, Some le ->
          let seq = (List.length t.pt_route_filters + 1) * 10 in
          t.pt_route_filters <-
            { Vi.ple_seq = seq; ple_action = Vi.Permit; ple_prefix = p;
              ple_ge = None; ple_le = Some le; ple_line = line.num }
            :: t.pt_route_filters
        | _ -> warn st line Diag.code_bad_value)
      | [ "then"; "local-preference"; v ] -> (
        match int_of_string_opt v with
        | Some v -> t.pt_sets <- Vi.Set_local_pref v :: t.pt_sets
        | None -> warn st line Diag.code_bad_value)
      | [ "then"; "metric"; v ] -> (
        match int_of_string_opt v with
        | Some v -> t.pt_sets <- Vi.Set_metric v :: t.pt_sets
        | None -> warn st line Diag.code_bad_value)
      | [ "then"; "community"; "add"; c ] -> (
        match Hashtbl.find_opt st.communities c with
        | Some cs -> t.pt_sets <- Vi.Set_communities (cs, true) :: t.pt_sets
        | None -> warn_undef st line "community" c)
      | [ "then"; "community"; "set"; c ] -> (
        match Hashtbl.find_opt st.communities c with
        | Some cs -> t.pt_sets <- Vi.Set_communities (cs, false) :: t.pt_sets
        | None -> warn_undef st line "community" c)
      | "then" :: "as-path-prepend" :: asns ->
        let asns =
          List.filter_map
            (fun s -> int_of_string_opt (String.trim (String.map (fun c -> if c = '"' then ' ' else c) s)))
            asns
        in
        t.pt_sets <- Vi.Set_as_path_prepend asns :: t.pt_sets
      | [ "then"; "next-hop"; "self" ] -> t.pt_sets <- Vi.Set_next_hop_self :: t.pt_sets
      | [ "then"; "next-hop"; nh ] -> (
        match Ipv4.of_string_opt nh with
        | Some nh -> t.pt_sets <- Vi.Set_next_hop nh :: t.pt_sets
        | None -> warn st line Diag.code_bad_value)
      | [ "then"; "tag"; tag ] -> (
        match int_of_string_opt tag with
        | Some tag -> t.pt_sets <- Vi.Set_tag tag :: t.pt_sets
        | None -> warn st line Diag.code_bad_value)
      | [ "then"; "accept" ] -> t.pt_action <- Some Vi.Permit
      | [ "then"; "reject" ] -> t.pt_action <- Some Vi.Deny
      | _ -> warn st line Diag.code_unrecognized_syntax)
    | "firewall" :: "family" :: "inet" :: "filter" :: fname :: "term" :: tname :: rest -> (
      let t = get_fw_term st fname tname line.num in
      match rest with
      | [ "from"; "source-address"; p ] -> (
        match Prefix.of_string_opt p with
        | Some p -> t.ft_srcs <- p :: t.ft_srcs
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "destination-address"; p ] -> (
        match Prefix.of_string_opt p with
        | Some p -> t.ft_dsts <- p :: t.ft_dsts
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "protocol"; p ] -> (
        match proto_num p with
        | Some p -> t.ft_proto <- Some p
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "destination-port"; p ] -> (
        match port_range p with
        | Some r -> t.ft_dst_ports <- r :: t.ft_dst_ports
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "source-port"; p ] -> (
        match port_range p with
        | Some r -> t.ft_src_ports <- r :: t.ft_src_ports
        | None -> warn st line Diag.code_bad_value)
      | [ "from"; "tcp-established" ] -> t.ft_established <- true
      | [ "from"; "icmp-type"; it ] -> (
        match int_of_string_opt it with
        | Some it -> t.ft_icmp_type <- Some it
        | None -> warn st line Diag.code_bad_value)
      | [ "then"; "accept" ] -> t.ft_action <- Some Vi.Permit
      | [ "then"; "discard" ] | [ "then"; "reject" ] -> t.ft_action <- Some Vi.Deny
      | [ "then"; "count"; _ ] | [ "then"; "log" ] -> ()
      | _ -> warn st line Diag.code_unrecognized_syntax)
    | [ "security"; "zones"; "security-zone"; z; "interfaces"; i ] -> (
      match List.assoc_opt z st.zones with
      | Some ifs -> ifs := i :: !ifs
      | None -> st.zones <- (z, ref [ i ]) :: st.zones)
    | [ "security"; "policies"; "from-zone"; a; "to-zone"; b; "filter"; f ] ->
      st.zone_policies <- { Vi.zp_from = a; zp_to = b; zp_acl = f } :: st.zone_policies
    | [ "security"; "nat"; "source"; "pool"; p; "address"; addr ] -> (
      match Prefix.of_string_opt addr with
      | Some pre -> Hashtbl.replace st.nat_pools p pre
      | None -> warn st line Diag.code_bad_value)
    | [ "security"; "nat"; "source"; "rule-set"; _; "rule"; _; "match"; "source-address"; p ] -> (
      match Prefix.of_string_opt p with
      | Some pre ->
        st.nat_rules <-
          { Vi.nr_kind = `Source; nr_match_acl = None; nr_match_src = Some pre;
            nr_match_dst = None; nr_pool = Vi.Nat_interface }
          :: st.nat_rules
      | None -> warn st line Diag.code_bad_value)
    | [ "security"; "nat"; "source"; "rule-set"; _; "rule"; _; "then"; "source-nat"; "pool"; p ] -> (
      (* Attach the pool to the most recent source rule. *)
      match (st.nat_rules, Hashtbl.find_opt st.nat_pools p) with
      | r :: rest, Some pre when r.Vi.nr_kind = `Source ->
        st.nat_rules <- { r with Vi.nr_pool = Vi.Nat_prefix pre } :: rest
      | _, None -> warn_undef st line "nat pool" p
      | _ -> warn st line Diag.code_unrecognized_syntax)
    | [ "security"; "nat"; "source"; "rule-set"; _; "rule"; _; "then"; "source-nat"; "interface" ] ->
      ()
    | [ "security"; "nat"; "static"; "rule-set"; _; "rule"; _; "match"; "destination-address"; g ] -> (
      match Prefix.of_string_opt g with
      | Some g ->
        st.nat_rules <-
          { Vi.nr_kind = `Destination; nr_match_acl = None; nr_match_src = None;
            nr_match_dst = Some g; nr_pool = Vi.Nat_interface }
          :: st.nat_rules
      | None -> warn st line Diag.code_bad_value)
    | [ "security"; "nat"; "static"; "rule-set"; _; "rule"; _; "then"; "static-nat"; "prefix"; l ] -> (
      match (st.nat_rules, Prefix.of_string_opt l) with
      | r :: rest, Some pre when r.Vi.nr_kind = `Destination ->
        st.nat_rules <- { r with Vi.nr_pool = Vi.Nat_prefix pre } :: rest
      | _ -> warn st line Diag.code_unrecognized_syntax)
    | _ -> warn st line Diag.code_unrecognized_syntax)
  | "delete" :: _ | "deactivate" :: _ ->
    warn st line Diag.code_unsupported_feature
  | _ -> warn st line Diag.code_unrecognized_syntax

(* Convert accumulated firewall terms into VI ACL lines. Multiple addresses
   within a term are OR'd in Junos, so a term expands to the cross product of
   its source and destination address lists. *)
let acl_of_filter name (terms : (string, fw_term) Hashtbl.t) order =
  let seq = ref 0 in
  let lines =
    List.concat_map
      (fun tname ->
        let t = Hashtbl.find terms tname in
        let action = Option.value ~default:Vi.Permit t.ft_action in
        let srcs = if t.ft_srcs = [] then [ Prefix.everything ] else List.rev t.ft_srcs in
        let dsts = if t.ft_dsts = [] then [ Prefix.everything ] else List.rev t.ft_dsts in
        List.concat_map
          (fun s ->
            List.map
              (fun d ->
                seq := !seq + 10;
                { Vi.l_seq = !seq; l_action = action; l_proto = t.ft_proto;
                  l_src = s; l_dst = d; l_src_ports = List.rev t.ft_src_ports;
                  l_dst_ports = List.rev t.ft_dst_ports;
                  l_established = t.ft_established; l_icmp_type = t.ft_icmp_type;
                  l_text = Printf.sprintf "filter %s term %s" name tname;
                  l_line = t.ft_line })
              dsts)
          srcs)
      (List.rev !order)
  in
  { Vi.acl_name = name; acl_lines = lines }

let route_map_of_policy st name (terms : (string, ps_term) Hashtbl.t) order extra_pls =
  let clauses =
    List.mapi
      (fun idx tname ->
        let t = Hashtbl.find terms tname in
        let matches =
          if t.pt_route_filters = [] then List.rev t.pt_matches
          else begin
            let pl_name = Printf.sprintf "__rf_%s_%s" name tname in
            extra_pls :=
              { Vi.pl_name; pl_entries = List.rev t.pt_route_filters } :: !extra_pls;
            Vi.Match_prefix_list pl_name :: List.rev t.pt_matches
          end
        in
        let action =
          match t.pt_action with
          | Some a -> a
          | None ->
            st.warnings <-
              Diag.parse_warn ~node:st.hostname ~line:0
                ~code:Diag.code_unsupported_feature
                (Printf.sprintf "policy-statement %s term %s has no terminal action" name tname)
              :: st.warnings;
            Vi.Permit
        in
        { Vi.rc_seq = (idx + 1) * 10; rc_action = action; rc_matches = matches;
          rc_sets = List.rev t.pt_sets; rc_line = t.pt_line })
      (List.rev !order)
  in
  { Vi.rm_name = name; rm_clauses = clauses }

let parse text =
  let lines = lines_of_string text in
  let st =
    { hostname = "unknown"; warnings = []; interfaces = Hashtbl.create 16;
      if_order = []; filters = Hashtbl.create 8; filter_order = [];
      policies = Hashtbl.create 8; policy_order = [];
      prefix_lists = Hashtbl.create 8; pl_order = [];
      communities = Hashtbl.create 8; comm_order = [];
      as_paths = Hashtbl.create 8; apl_order = []; statics = []; asn = None;
      router_id = None; ospf_ref_bw = 100_000; ospf_ifaces = [];
      ospf_exports = []; bgp_groups = Hashtbl.create 8; bg_order = [];
      zones = []; zone_policies = []; nat_pools = Hashtbl.create 4;
      nat_rules = []; ntp = []; dns = []; syslog = []; snmp = None }
  in
  List.iter (fun l -> handle st l) lines;
  (* Interfaces with OSPF settings. *)
  List.iter
    (fun (ifname, area, metric, passive, oline) ->
      let i = get_interface st ~line:oline ifname in
      let merged =
        match i.if_ospf with
        | Some prev ->
          { Vi.oi_area = area;
            oi_cost = (if metric <> None then metric else prev.oi_cost);
            oi_passive = passive || prev.oi_passive }
        | None -> { Vi.oi_area = area; oi_cost = metric; oi_passive = passive }
      in
      set_interface st ifname { i with if_ospf = Some merged })
    (List.rev st.ospf_ifaces);
  let extra_pls = ref [] in
  let route_maps =
    List.rev_map
      (fun name ->
        let terms, order = Hashtbl.find st.policies name in
        route_map_of_policy st name terms order extra_pls)
      st.policy_order
  in
  (* OSPF export policies decompose into per-protocol redistributions keyed by
     the policy's Match_protocol conditions. *)
  let redistributions =
    List.concat_map
      (fun pol ->
        match List.find_opt (fun (rm : Vi.route_map) -> rm.rm_name = pol) route_maps with
        | None ->
          st.warnings <-
            Diag.parse_warn ~node:st.hostname ~line:0
              ~code:Diag.code_undefined_reference
              (Printf.sprintf "undefined policy-statement '%s': ospf export %s" pol pol)
            :: st.warnings;
          []
        | Some rm ->
          rm.Vi.rm_clauses
          |> List.concat_map (fun (c : Vi.rm_clause) ->
                 List.filter_map
                   (function
                     | Vi.Match_protocol p when c.rc_action = Vi.Permit ->
                       Some
                         { Vi.rd_protocol = p; rd_metric = None;
                           rd_metric_type = Vi.E2; rd_route_map = Some pol }
                     | _ -> None)
                   c.rc_matches))
      (List.rev st.ospf_exports)
  in
  let ospf =
    if st.ospf_ifaces = [] && st.ospf_exports = [] then None
    else
      Some
        { Vi.ospf_proc_default with
          op_router_id = st.router_id;
          op_reference_bandwidth = st.ospf_ref_bw;
          op_redistribute = redistributions }
  in
  let bgp =
    if Hashtbl.length st.bgp_groups = 0 then None
    else
      match st.asn with
      | None ->
        st.warnings <-
          Diag.parse_warn ~node:st.hostname ~line:0 ~code:Diag.code_bad_value
            "bgp configured without routing-options autonomous-system"
          :: st.warnings;
        None
      | Some asn ->
        let neighbors =
          List.concat_map
            (fun gname ->
              let g = Hashtbl.find st.bgp_groups gname in
              (* Deduplicate per-peer statements, preserving first-seen order. *)
              let peers = ref [] in
              List.iter
                (fun (p, _, _, _) -> if not (List.mem p !peers) then peers := p :: !peers)
                (List.rev g.bg_neighbors);
              List.rev_map
                (fun p ->
                  let per_peer_as =
                    List.fold_left
                      (fun acc (q, pas, _, _) -> if q = p && pas <> None then pas else acc)
                      None g.bg_neighbors
                  and descr =
                    List.fold_left
                      (fun acc (q, _, d, _) -> if q = p && d <> None then d else acc)
                      None g.bg_neighbors
                  and first_line =
                    (* bg_neighbors is reversed; the fold ends on the earliest
                       statement mentioning this peer *)
                    List.fold_left
                      (fun acc (q, _, _, ln) -> if q = p then ln else acc)
                      0 g.bg_neighbors
                  in
                  let remote_as =
                    if g.bg_internal then asn
                    else
                      match (per_peer_as, g.bg_peer_as) with
                      | Some a, _ -> a
                      | None, Some a -> a
                      | None, None -> 0
                  in
                  { (Vi.bgp_neighbor_default p remote_as) with
                    bn_description = descr;
                    bn_import_policy = g.bg_import;
                    bn_export_policy = g.bg_export;
                    bn_route_reflector_client = g.bg_cluster <> None;
                    bn_send_community = true (* Junos sends communities by default *);
                    bn_line = first_line })
                !peers)
            (List.rev st.bg_order)
        in
        let multipath =
          Hashtbl.fold (fun _ g acc -> acc || g.bg_multipath) st.bgp_groups false
        in
        let cluster_id =
          Hashtbl.fold
            (fun _ g acc -> if g.bg_cluster <> None then g.bg_cluster else acc)
            st.bgp_groups None
        in
        Some
          { (Vi.bgp_proc_default asn) with
            bp_router_id = st.router_id;
            bp_neighbors = neighbors;
            bp_max_paths = (if multipath then 16 else 1);
            bp_max_paths_ibgp = (if multipath then 16 else 1);
            bp_cluster_id = cluster_id }
  in
  let cfg =
    { (Vi.empty st.hostname "juniper") with
      interfaces = List.rev_map (fun n -> Hashtbl.find st.interfaces n) st.if_order;
      acls =
        List.rev_map
          (fun name ->
            let terms, order = Hashtbl.find st.filters name in
            acl_of_filter name terms order)
          st.filter_order;
      prefix_lists =
        List.rev_map
          (fun name ->
            let ps = List.rev (Hashtbl.find st.prefix_lists name) in
            { Vi.pl_name = name;
              pl_entries =
                List.mapi
                  (fun i (p, ln) ->
                    { Vi.ple_seq = (i + 1) * 10; ple_action = Vi.Permit;
                      ple_prefix = p; ple_ge = None; ple_le = None;
                      ple_line = ln })
                  ps })
          st.pl_order
        @ List.rev !extra_pls;
      community_lists =
        List.rev_map
          (fun name ->
            { Vi.cl_name = name;
              cl_entries =
                List.rev_map (fun c -> (Vi.Permit, c)) (Hashtbl.find st.communities name) })
          st.comm_order;
      as_path_lists =
        List.rev_map
          (fun name ->
            { Vi.apl_name = name; apl_entries = [ (Vi.Permit, Hashtbl.find st.as_paths name) ] })
          st.apl_order;
      route_maps;
      static_routes = List.rev st.statics;
      ospf; bgp;
      nat_rules = List.rev st.nat_rules;
      zones =
        List.rev_map (fun (z, ifs) -> { Vi.z_name = z; z_interfaces = List.rev !ifs }) st.zones;
      zone_policies = List.rev st.zone_policies;
      ntp_servers = List.rev st.ntp;
      dns_servers = List.rev st.dns;
      logging_servers = List.rev st.syslog;
      snmp_community = st.snmp }
  in
  (cfg, List.rev st.warnings)
