(* Recursive-descent, line-oriented parser for the IOS configuration family.

   The parser walks top-level lines and consumes indented blocks for mode
   commands (interface, router bgp/ospf, route-map, ip access-list). It never
   fails on unknown input: unrecognized lines become warnings, matching how
   Batfish must cope with the long tail of vendor syntax. *)

open Cfg_lexer

type state = {
  mutable hostname : string;
  vendor : string;
  mutable interfaces : Vi.interface list;  (* reversed *)
  mutable acls : Vi.acl list;
  mutable prefix_lists : (string, Vi.prefix_list_entry list) Hashtbl.t;
  mutable pl_order : string list;
  mutable community_lists : (string, (Vi.action * int) list) Hashtbl.t;
  mutable cl_order : string list;
  mutable as_path_lists : (string, (Vi.action * string) list) Hashtbl.t;
  mutable apl_order : string list;
  mutable route_maps : (string, Vi.rm_clause list) Hashtbl.t;
  mutable rm_order : string list;
  mutable static_routes : Vi.static_route list;
  mutable ospf : Vi.ospf_proc option;
  mutable bgp : Vi.bgp_proc option;
  mutable nat_pools : (string * Prefix.t) list;
  mutable nat_rules : Vi.nat_rule list;
  mutable zones : Vi.zone list;
  mutable zone_policies : Vi.zone_policy list;
  mutable ntp : string list;
  mutable dns : string list;
  mutable logging : string list;
  mutable snmp : string option;
  mutable warnings : Diag.t list;
}

let warn st (line : line) code =
  st.warnings <-
    Diag.parse_warn ~node:st.hostname ~line:line.num ~code (String.trim line.raw)
    :: st.warnings

let warn_undef st (line : line) ty name =
  st.warnings <-
    Diag.parse_warn ~node:st.hostname ~line:line.num
      ~code:Diag.code_undefined_reference
      (Printf.sprintf "undefined %s '%s': %s" ty name (String.trim line.raw))
    :: st.warnings

let mask_to_len mask =
  let rec go len =
    if len > 32 then None
    else if Prefix.mask (Prefix.make 0 len) = mask then Some len
    else go (len + 1)
  in
  go 0

let wildcard_to_len w = mask_to_len (0xFFFF_FFFF lxor w land 0xFFFF_FFFF)

(* [a.b.c.d mask] or [a.b.c.d/len] *)
let addr_mask_prefix ip mask =
  Option.bind (Ipv4.of_string_opt ip) (fun ip ->
      Option.bind (Ipv4.of_string_opt mask) (fun m ->
          Option.map (fun len -> Prefix.make ip len) (mask_to_len m)))

(* ACL address spec: any | host IP | IP WILDCARD. Returns (prefix, rest). *)
let parse_acl_addr tokens =
  match tokens with
  | "any" :: rest -> Some (Prefix.everything, rest)
  | "host" :: ip :: rest ->
    Option.map (fun ip -> (Prefix.host ip, rest)) (Ipv4.of_string_opt ip)
  | ip :: wc :: rest -> (
    match (Ipv4.of_string_opt ip, Ipv4.of_string_opt wc) with
    | Some ip, Some wc -> (
      match wildcard_to_len wc with
      | Some len -> Some (Prefix.make ip len, rest)
      | None -> None)
    | _ -> None)
  | _ -> None

(* Port spec: eq N | range A B | gt N | lt N; absent = any. *)
let parse_ports tokens =
  match tokens with
  | "eq" :: p :: rest ->
    Option.map (fun p -> ([ (p, p) ], rest)) (int_of_string_opt p)
  | "range" :: a :: b :: rest -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some a, Some b -> Some ([ (a, b) ], rest)
    | _ -> None)
  | "gt" :: p :: rest ->
    Option.map (fun p -> ([ (p + 1, 65535) ], rest)) (int_of_string_opt p)
  | "lt" :: p :: rest ->
    Option.map (fun p -> ([ (0, p - 1) ], rest)) (int_of_string_opt p)
  | _ -> Some ([], tokens)

let proto_of_string = function
  | "ip" -> Some None
  | "tcp" -> Some (Some Packet.Proto.tcp)
  | "udp" -> Some (Some Packet.Proto.udp)
  | "icmp" -> Some (Some Packet.Proto.icmp)
  | "ospf" -> Some (Some Packet.Proto.ospf)
  | s -> Option.map (fun p -> Some p) (int_of_string_opt s)

let parse_acl_line st (line : line) seq_counter =
  let tokens, seq =
    match line.tokens with
    | s :: rest when int_of_string_opt s <> None ->
      (rest, int_of_string (List.hd line.tokens))
    | toks -> (toks, !seq_counter)
  in
  seq_counter := seq + 10;
  let fail () =
    warn st line Diag.code_unrecognized_syntax;
    None
  in
  match tokens with
  | action :: proto :: rest -> (
    let action =
      match action with
      | "permit" -> Some Vi.Permit
      | "deny" -> Some Vi.Deny
      | _ -> None
    in
    match (action, proto_of_string proto) with
    | Some action, Some proto -> (
      match parse_acl_addr rest with
      | None -> fail ()
      | Some (src, rest) -> (
        match parse_ports rest with
        | None -> fail ()
        | Some (src_ports, rest) -> (
          match parse_acl_addr rest with
          | None -> fail ()
          | Some (dst, rest) -> (
            match parse_ports rest with
            | None -> fail ()
            | Some (dst_ports, rest) ->
              let established = List.mem "established" rest in
              let icmp_type =
                match rest with
                | t :: _ when proto = Some Packet.Proto.icmp -> (
                  match t with
                  | "echo" -> Some 8
                  | "echo-reply" -> Some 0
                  | "ttl-exceeded" -> Some 11
                  | "unreachable" -> Some 3
                  | t -> int_of_string_opt t)
                | _ -> None
              in
              let leftover =
                List.filter
                  (fun t ->
                    t <> "established" && t <> "log"
                    && (icmp_type = None
                       || not
                            (List.mem t
                               [ "echo"; "echo-reply"; "ttl-exceeded"; "unreachable";
                                 (match icmp_type with
                                  | Some i -> string_of_int i
                                  | None -> "") ])))
                  rest
              in
              if leftover <> [] then warn st line Diag.code_unrecognized_syntax;
              Some
                { Vi.l_seq = seq; l_action = action; l_proto = proto; l_src = src;
                  l_dst = dst; l_src_ports = src_ports; l_dst_ports = dst_ports;
                  l_established = established; l_icmp_type = icmp_type;
                  l_text = String.trim line.raw; l_line = line.num }))))
    | _ -> fail ())
  | _ -> fail ()

let parse_interface_block st name hline children =
  let i = ref { (Vi.interface_default name) with Vi.if_line = hline } in
  List.iter
    (fun (line : line) ->
      match line.tokens with
      | "description" :: rest -> i := { !i with if_description = Some (String.concat " " rest) }
      | [ "ip"; "address"; a; m ] -> (
        match addr_mask_prefix a m with
        | Some p ->
          i := { !i with if_address = Some (Ipv4.of_string a, Prefix.length p) }
        | None -> warn st line Diag.code_bad_value)
      | [ "ip"; "address"; a; m; "secondary" ] -> (
        match addr_mask_prefix a m with
        | Some p ->
          i :=
            { !i with
              if_secondary = (Ipv4.of_string a, Prefix.length p) :: !i.if_secondary }
        | None -> warn st line Diag.code_bad_value)
      | [ "ip"; "access-group"; acl; "in" ] -> i := { !i with if_in_acl = Some acl }
      | [ "ip"; "access-group"; acl; "out" ] -> i := { !i with if_out_acl = Some acl }
      | [ "ip"; "ospf"; "cost"; c ] -> (
        match int_of_string_opt c with
        | Some c ->
          let oi =
            match !i.if_ospf with
            | Some oi -> oi
            | None -> { Vi.oi_area = 0; oi_cost = None; oi_passive = false }
          in
          i := { !i with if_ospf = Some { oi with oi_cost = Some c } }
        | None -> warn st line Diag.code_bad_value)
      | [ "ip"; "ospf"; _; "area"; a ] | [ "ip"; "ospf"; "area"; a ] -> (
        match int_of_string_opt a with
        | Some a ->
          let oi =
            match !i.if_ospf with
            | Some oi -> oi
            | None -> { Vi.oi_area = 0; oi_cost = None; oi_passive = false }
          in
          i := { !i with if_ospf = Some { oi with oi_area = a } }
        | None -> warn st line Diag.code_bad_value)
      | [ "bandwidth"; b ] -> (
        match int_of_string_opt b with
        | Some kbps -> i := { !i with if_bandwidth = max 1 (kbps / 1000) }
        | None -> warn st line Diag.code_bad_value)
      | [ "shutdown" ] -> i := { !i with if_enabled = false }
      | [ "no"; "shutdown" ] -> i := { !i with if_enabled = true }
      | [ "zone-member"; "security"; z ] ->
        st.zones <-
          (match List.partition (fun (zz : Vi.zone) -> zz.z_name = z) st.zones with
           | [ zz ], others -> { zz with z_interfaces = name :: zz.z_interfaces } :: others
           | _, others -> { Vi.z_name = z; z_interfaces = [ name ] } :: others)
      | [ "switchport" ] | "switchport" :: _ | [ "no"; "switchport" ]
      | "mtu" :: _ | "speed" :: _ | "duplex" :: _ | "negotiation" :: _
      | "ip" :: "nat" :: _ | "cdp" :: _ | "spanning-tree" :: _ ->
        () (* accepted but irrelevant to the model *)
      | _ -> warn st line Diag.code_unrecognized_syntax)
    children;
  st.interfaces <- !i :: st.interfaces

let parse_route_map_block st name action seq hline children =
  let matches = ref [] and sets = ref [] in
  List.iter
    (fun (line : line) ->
      match line.tokens with
      | [ "match"; "ip"; "address"; "prefix-list"; pl ] ->
        matches := Vi.Match_prefix_list pl :: !matches
      | [ "match"; "community"; c ] -> matches := Vi.Match_community c :: !matches
      | [ "match"; "as-path"; a ] -> matches := Vi.Match_as_path a :: !matches
      | [ "match"; "metric"; m ] -> (
        match int_of_string_opt m with
        | Some m -> matches := Vi.Match_metric m :: !matches
        | None -> warn st line Diag.code_bad_value)
      | [ "match"; "tag"; t ] -> (
        match int_of_string_opt t with
        | Some t -> matches := Vi.Match_tag t :: !matches
        | None -> warn st line Diag.code_bad_value)
      | [ "match"; "source-protocol"; p ] -> matches := Vi.Match_protocol p :: !matches
      | [ "set"; "local-preference"; v ] -> (
        match int_of_string_opt v with
        | Some v -> sets := Vi.Set_local_pref v :: !sets
        | None -> warn st line Diag.code_bad_value)
      | [ "set"; "metric"; v ] -> (
        match int_of_string_opt v with
        | Some v -> sets := Vi.Set_metric v :: !sets
        | None -> warn st line Diag.code_bad_value)
      | "set" :: "community" :: rest ->
        let additive = List.mem "additive" rest in
        let comms =
          List.filter_map Vi.community_of_string
            (List.filter (fun t -> t <> "additive") rest)
        in
        sets := Vi.Set_communities (comms, additive) :: !sets
      | [ "set"; "ip"; "next-hop"; ip ] -> (
        match Ipv4.of_string_opt ip with
        | Some ip -> sets := Vi.Set_next_hop ip :: !sets
        | None -> warn st line Diag.code_bad_value)
      | "set" :: "as-path" :: "prepend" :: asns ->
        sets := Vi.Set_as_path_prepend (List.filter_map int_of_string_opt asns) :: !sets
      | [ "set"; "weight"; w ] -> (
        match int_of_string_opt w with
        | Some w -> sets := Vi.Set_weight w :: !sets
        | None -> warn st line Diag.code_bad_value)
      | [ "set"; "tag"; t ] -> (
        match int_of_string_opt t with
        | Some t -> sets := Vi.Set_tag t :: !sets
        | None -> warn st line Diag.code_bad_value)
      | [ "set"; "origin"; o ] -> (
        match o with
        | "igp" -> sets := Vi.Set_origin Vi.Origin_igp :: !sets
        | "egp" -> sets := Vi.Set_origin Vi.Origin_egp :: !sets
        | "incomplete" -> sets := Vi.Set_origin Vi.Origin_incomplete :: !sets
        | _ -> warn st line Diag.code_bad_value)
      | _ -> warn st line Diag.code_unrecognized_syntax)
    children;
  let clause =
    { Vi.rc_seq = seq; rc_action = action; rc_matches = List.rev !matches;
      rc_sets = List.rev !sets; rc_line = hline }
  in
  (match Hashtbl.find_opt st.route_maps name with
   | Some clauses -> Hashtbl.replace st.route_maps name (clause :: clauses)
   | None ->
     Hashtbl.add st.route_maps name [ clause ];
     st.rm_order <- name :: st.rm_order)

let parse_redistribute tokens =
  (* redistribute <proto> [metric N] [metric-type 1|2] [route-map RM] [subnets] *)
  match tokens with
  | proto :: rest ->
    let rec scan rest (rd : Vi.redistribution) =
      match rest with
      | [] -> Some rd
      | "metric" :: m :: rest -> (
        match int_of_string_opt m with
        | Some m -> scan rest { rd with rd_metric = Some m }
        | None -> None)
      | "metric-type" :: t :: rest -> (
        match t with
        | "1" -> scan rest { rd with rd_metric_type = Vi.E1 }
        | "2" -> scan rest { rd with rd_metric_type = Vi.E2 }
        | _ -> None)
      | "route-map" :: rm :: rest -> scan rest { rd with rd_route_map = Some rm }
      | "subnets" :: rest -> scan rest rd
      | _ -> None
    in
    scan rest
      { Vi.rd_protocol = proto; rd_metric = None; rd_metric_type = Vi.E2;
        rd_route_map = None }
  | [] -> None

let parse_ospf_block st children =
  let p = ref Vi.ospf_proc_default in
  List.iter
    (fun (line : line) ->
      match line.tokens with
      | [ "router-id"; ip ] -> (
        match Ipv4.of_string_opt ip with
        | Some ip -> p := { !p with op_router_id = Some ip }
        | None -> warn st line Diag.code_bad_value)
      | [ "network"; a; w; "area"; area ] -> (
        match (Ipv4.of_string_opt a, Ipv4.of_string_opt w, int_of_string_opt area) with
        | Some a, Some w, Some area -> (
          match wildcard_to_len w with
          | Some len ->
            p := { !p with op_networks = (Prefix.make a len, area) :: !p.op_networks }
          | None -> warn st line Diag.code_bad_value)
        | _ -> warn st line Diag.code_bad_value)
      | [ "passive-interface"; "default" ] -> p := { !p with op_default_passive = true }
      | [ "passive-interface"; i ] ->
        p := { !p with op_passive_interfaces = i :: !p.op_passive_interfaces }
      | [ "no"; "passive-interface"; i ] ->
        p := { !p with op_active_interfaces = i :: !p.op_active_interfaces }
      | "redistribute" :: rest -> (
        match parse_redistribute rest with
        | Some rd -> p := { !p with op_redistribute = rd :: !p.op_redistribute }
        | None -> warn st line Diag.code_unrecognized_syntax)
      | [ "maximum-paths"; n ] -> (
        match int_of_string_opt n with
        | Some n -> p := { !p with op_max_paths = n }
        | None -> warn st line Diag.code_bad_value)
      | [ "auto-cost"; "reference-bandwidth"; n ] -> (
        match int_of_string_opt n with
        | Some n -> p := { !p with op_reference_bandwidth = n }
        | None -> warn st line Diag.code_bad_value)
      | "log-adjacency-changes" :: _ | "area" :: _ -> ()
      | _ -> warn st line Diag.code_unrecognized_syntax)
    children;
  st.ospf <-
    Some
      { !p with
        op_networks = List.rev !p.op_networks;
        op_redistribute = List.rev !p.op_redistribute }

let parse_bgp_block st asn children =
  (* Repeated `router bgp` blocks (common in generated/merged configs)
     accumulate into one process. *)
  let p =
    ref
      (match st.bgp with
       | Some existing when existing.Vi.bp_as = asn -> existing
       | Some _ | None -> Vi.bgp_proc_default asn)
  in
  let neighbors : (Ipv4.t, Vi.bgp_neighbor) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (n : Vi.bgp_neighbor) ->
      Hashtbl.replace neighbors n.bn_peer n;
      order := n.bn_peer :: !order)
    !p.bp_neighbors;
  p := { !p with bp_neighbors = []; bp_networks = List.rev !p.bp_networks;
         bp_redistribute = List.rev !p.bp_redistribute };
  let with_neighbor st line ip f =
    match Ipv4.of_string_opt ip with
    | None -> warn st line Diag.code_bad_value
    | Some peer -> (
      match Hashtbl.find_opt neighbors peer with
      | Some n -> Hashtbl.replace neighbors peer (f n)
      | None ->
        (* IOS requires remote-as first; tolerate other orders with AS 0,
           flagged later by the session-compatibility question. *)
        Hashtbl.add neighbors peer
          (f { (Vi.bgp_neighbor_default peer 0) with Vi.bn_line = line.num });
        order := peer :: !order)
  in
  List.iter
    (fun (line : line) ->
      match line.tokens with
      | [ "bgp"; "router-id"; ip ] -> (
        match Ipv4.of_string_opt ip with
        | Some ip -> p := { !p with bp_router_id = Some ip }
        | None -> warn st line Diag.code_bad_value)
      | [ "bgp"; "cluster-id"; ip ] -> (
        match Ipv4.of_string_opt ip with
        | Some ip -> p := { !p with bp_cluster_id = Some ip }
        | None -> warn st line Diag.code_bad_value)
      | "bgp" :: "log-neighbor-changes" :: _ -> ()
      | [ "neighbor"; ip; "remote-as"; ras ] -> (
        match int_of_string_opt ras with
        | Some ras -> with_neighbor st line ip (fun n -> { n with bn_remote_as = ras })
        | None -> warn st line Diag.code_bad_value)
      | "neighbor" :: ip :: "description" :: rest ->
        with_neighbor st line ip (fun n ->
            { n with bn_description = Some (String.concat " " rest) })
      | [ "neighbor"; ip; "update-source"; i ] ->
        with_neighbor st line ip (fun n -> { n with bn_update_source = Some i })
      | [ "neighbor"; ip; "next-hop-self" ] ->
        with_neighbor st line ip (fun n -> { n with bn_next_hop_self = true })
      | [ "neighbor"; ip; "route-reflector-client" ] ->
        with_neighbor st line ip (fun n -> { n with bn_route_reflector_client = true })
      | [ "neighbor"; ip; "send-community" ] ->
        with_neighbor st line ip (fun n -> { n with bn_send_community = true })
      | [ "neighbor"; ip; "route-map"; rm; "in" ] ->
        with_neighbor st line ip (fun n -> { n with bn_import_policy = Some rm })
      | [ "neighbor"; ip; "route-map"; rm; "out" ] ->
        with_neighbor st line ip (fun n -> { n with bn_export_policy = Some rm })
      | [ "neighbor"; ip; "prefix-list"; pl; "in" ] ->
        with_neighbor st line ip (fun n -> { n with bn_prefix_list_in = Some pl })
      | [ "neighbor"; ip; "prefix-list"; pl; "out" ] ->
        with_neighbor st line ip (fun n -> { n with bn_prefix_list_out = Some pl })
      | [ "neighbor"; ip; "ebgp-multihop" ] | [ "neighbor"; ip; "ebgp-multihop"; _ ] ->
        with_neighbor st line ip (fun n -> { n with bn_ebgp_multihop = true })
      | [ "neighbor"; ip; "allowas-in" ] ->
        with_neighbor st line ip (fun n -> { n with bn_allowas_in = 1 })
      | [ "neighbor"; ip; "allowas-in"; k ] -> (
        match int_of_string_opt k with
        | Some k -> with_neighbor st line ip (fun n -> { n with bn_allowas_in = k })
        | None -> warn st line Diag.code_bad_value)
      | [ "neighbor"; ip; "local-as"; las ] -> (
        match int_of_string_opt las with
        | Some las -> with_neighbor st line ip (fun n -> { n with bn_local_as = Some las })
        | None -> warn st line Diag.code_bad_value)
      | [ "neighbor"; ip; "shutdown" ] ->
        with_neighbor st line ip (fun n -> { n with bn_shutdown = true })
      | [ "network"; a; "mask"; m ] -> (
        match addr_mask_prefix a m with
        | Some pre -> p := { !p with bp_networks = (pre, None) :: !p.bp_networks }
        | None -> warn st line Diag.code_bad_value)
      | [ "network"; a; "mask"; m; "route-map"; rm ] -> (
        match addr_mask_prefix a m with
        | Some pre -> p := { !p with bp_networks = (pre, Some rm) :: !p.bp_networks }
        | None -> warn st line Diag.code_bad_value)
      | "redistribute" :: rest -> (
        match parse_redistribute rest with
        | Some rd -> p := { !p with bp_redistribute = rd :: !p.bp_redistribute }
        | None -> warn st line Diag.code_unrecognized_syntax)
      | [ "maximum-paths"; n ] -> (
        match int_of_string_opt n with
        | Some n -> p := { !p with bp_max_paths = n }
        | None -> warn st line Diag.code_bad_value)
      | [ "maximum-paths"; "ibgp"; n ] -> (
        match int_of_string_opt n with
        | Some n -> p := { !p with bp_max_paths_ibgp = n }
        | None -> warn st line Diag.code_bad_value)
      | [ "address-family"; "ipv4" ] | [ "exit-address-family" ]
      | [ "address-family"; "ipv4"; "unicast" ] -> ()
      | _ -> warn st line Diag.code_unrecognized_syntax)
    children;
  let bn =
    List.rev_map (fun peer -> Hashtbl.find neighbors peer) !order
  in
  st.bgp <-
    Some
      { !p with
        bp_neighbors = bn;
        bp_networks = List.rev !p.bp_networks;
        bp_redistribute = List.rev !p.bp_redistribute }

let parse_static_route st (line : line) tokens =
  (* ip route A MASK (IP | Null0 | IFNAME [IP]) [AD] [tag T] *)
  match tokens with
  | a :: m :: rest -> (
    match addr_mask_prefix a m with
    | None -> warn st line Diag.code_bad_value
    | Some prefix -> (
      let nh, rest =
        match rest with
        | "Null0" :: rest -> (Some Vi.Nh_discard, rest)
        | g :: rest when Ipv4.of_string_opt g <> None ->
          (Some (Vi.Nh_ip (Ipv4.of_string g)), rest)
        | ifname :: g :: rest when Ipv4.of_string_opt g <> None ->
          ignore ifname;
          (Some (Vi.Nh_ip (Ipv4.of_string g)), rest)
        | ifname :: rest -> (Some (Vi.Nh_interface ifname), rest)
        | [] -> (None, [])
      in
      match nh with
      | None -> warn st line Diag.code_bad_value
      | Some nh ->
        let ad, rest =
          match rest with
          | d :: rest' when int_of_string_opt d <> None -> (int_of_string d, rest')
          | _ -> (1, rest)
        in
        let tag =
          match rest with
          | [ "tag"; t ] -> Option.value ~default:0 (int_of_string_opt t)
          | [] -> 0
          | _ ->
            warn st line Diag.code_unrecognized_syntax;
            0
        in
        st.static_routes <-
          { Vi.sr_prefix = prefix; sr_next_hop = nh; sr_ad = ad; sr_tag = tag;
            sr_line = line.num }
          :: st.static_routes))
  | _ -> warn st line Diag.code_bad_value

let parse_nat st (line : line) tokens =
  match tokens with
  | [ "pool"; name; start_ip; _end_ip; "prefix-length"; len ] -> (
    match (Ipv4.of_string_opt start_ip, int_of_string_opt len) with
    | Some ip, Some len -> st.nat_pools <- (name, Prefix.make ip len) :: st.nat_pools
    | _ -> warn st line Diag.code_bad_value)
  | "inside" :: "source" :: "list" :: acl :: "pool" :: pool :: _ -> (
    match List.assoc_opt pool st.nat_pools with
    | Some p ->
      st.nat_rules <-
        { Vi.nr_kind = `Source; nr_match_acl = Some acl; nr_match_src = None;
          nr_match_dst = None; nr_pool = Vi.Nat_prefix p }
        :: st.nat_rules
    | None -> warn_undef st line "nat pool" pool)
  | "inside" :: "source" :: "list" :: acl :: "interface" :: _ ->
    st.nat_rules <-
      { Vi.nr_kind = `Source; nr_match_acl = Some acl; nr_match_src = None;
        nr_match_dst = None; nr_pool = Vi.Nat_interface }
      :: st.nat_rules
  | [ "inside"; "source"; "static"; local; global ] -> (
    match (Ipv4.of_string_opt local, Ipv4.of_string_opt global) with
    | Some l, Some g ->
      st.nat_rules <-
        { Vi.nr_kind = `Source; nr_match_acl = None;
          nr_match_src = Some (Prefix.host l); nr_match_dst = None;
          nr_pool = Vi.Nat_ip g }
        :: st.nat_rules;
      (* Static NAT is bidirectional: inbound traffic to the global address
         is translated back to the local address. *)
      st.nat_rules <-
        { Vi.nr_kind = `Destination; nr_match_acl = None; nr_match_src = None;
          nr_match_dst = Some (Prefix.host g); nr_pool = Vi.Nat_ip l }
        :: st.nat_rules
    | _ -> warn st line Diag.code_bad_value)
  | _ -> warn st line Diag.code_unrecognized_syntax

let parse ?(vendor = "cisco-ios") text =
  let lines = Array.of_list (lines_of_string text) in
  let n = Array.length lines in
  let st =
    { hostname = "unknown"; vendor; interfaces = []; acls = [];
      prefix_lists = Hashtbl.create 16; pl_order = [];
      community_lists = Hashtbl.create 16; cl_order = [];
      as_path_lists = Hashtbl.create 16; apl_order = [];
      route_maps = Hashtbl.create 16; rm_order = [];
      static_routes = []; ospf = None; bgp = None; nat_pools = [];
      nat_rules = []; zones = []; zone_policies = []; ntp = []; dns = [];
      logging = []; snmp = None; warnings = [] }
  in
  let block i =
    (* children: following lines with indent > 0 *)
    let rec go j acc =
      if j < n && lines.(j).indent > 0 then go (j + 1) (lines.(j) :: acc)
      else (List.rev acc, j)
    in
    go (i + 1) []
  in
  let rec top i =
    if i >= n then ()
    else
      let line = lines.(i) in
      let next = ref (i + 1) in
      (match line.tokens with
       | [ "hostname"; h ] -> st.hostname <- h
       | [ "ntp"; "server"; s ] -> st.ntp <- s :: st.ntp
       | "ip" :: "name-server" :: servers -> st.dns <- List.rev servers @ st.dns
       | [ "logging"; "host"; s ] | [ "logging"; s ] -> st.logging <- s :: st.logging
       | "snmp-server" :: "community" :: c :: _ -> st.snmp <- Some c
       | "version" :: _ | "boot" :: _ | "service" :: _ | "aaa" :: _ | "line" :: _
       | "banner" :: _ | "enable" :: _ | "clock" :: _ | "end" :: _
       | "spanning-tree" :: _ | "vlan" :: _ | "username" :: _ ->
         (* boilerplate irrelevant to the model; skip with any children *)
         let _, j = block i in
         next := j
       | "interface" :: rest ->
         let name = String.concat "" rest in
         let children, j = block i in
         parse_interface_block st name line.num children;
         next := j
       | [ "ip"; "access-list"; "extended"; name ] | [ "ip"; "access-list"; name ] ->
         let children, j = block i in
         let seq_counter = ref 10 in
         let acl_lines = List.filter_map (fun l -> parse_acl_line st l seq_counter) children in
         st.acls <- { Vi.acl_name = name; acl_lines } :: st.acls;
         next := j
       | "access-list" :: num :: rest when int_of_string_opt num <> None -> (
         (* classic numbered ACLs: 1-99 standard (source match only),
            100-199 extended *)
         let n = int_of_string num in
         let seq_counter =
           ref
             (10
             * (1
               + List.length
                   (match List.find_opt (fun (a : Vi.acl) -> a.acl_name = num) st.acls with
                    | Some a -> a.acl_lines
                    | None -> [])))
         in
         let parsed =
           if n < 100 then
             (* standard: [permit|deny] <src-spec> *)
             match rest with
             | action :: addr ->
               let action =
                 match action with
                 | "permit" -> Some Vi.Permit
                 | "deny" -> Some Vi.Deny
                 | _ -> None
               in
               (match (action, parse_acl_addr addr) with
                | Some action, Some (src, leftover) when leftover = [] || leftover = [ "log" ] ->
                  Some
                    { Vi.l_seq = !seq_counter; l_action = action; l_proto = None;
                      l_src = src; l_dst = Prefix.everything; l_src_ports = [];
                      l_dst_ports = []; l_established = false; l_icmp_type = None;
                      l_text = String.trim line.raw; l_line = line.num }
                | _ -> None)
             | [] -> None
           else parse_acl_line st { line with tokens = rest } seq_counter
         in
         match parsed with
         | None -> warn st line Diag.code_unrecognized_syntax
         | Some acl_line ->
           st.acls <-
             (match List.partition (fun (a : Vi.acl) -> a.acl_name = num) st.acls with
              | [ a ], others ->
                { a with Vi.acl_lines = a.acl_lines @ [ acl_line ] } :: others
              | _, others -> { Vi.acl_name = num; acl_lines = [ acl_line ] } :: others))
       | "ip" :: "prefix-list" :: name :: rest -> (
         let seq, rest =
           match rest with
           | "seq" :: s :: rest' when int_of_string_opt s <> None ->
             (int_of_string s, rest')
           | _ ->
             ( (match Hashtbl.find_opt st.prefix_lists name with
                | Some es -> (List.length es + 1) * 10
                | None -> 10),
               rest )
         in
         match rest with
         | action :: pfx :: modifiers -> (
           let action =
             match action with
             | "permit" -> Some Vi.Permit
             | "deny" -> Some Vi.Deny
             | _ -> None
           in
           match (action, Prefix.of_string_opt pfx) with
           | Some action, Some prefix ->
             let rec mods ge le = function
               | "ge" :: v :: rest -> (
                 match int_of_string_opt v with
                 | Some v -> mods (Some v) le rest
                 | None -> (ge, le, false))
               | "le" :: v :: rest -> (
                 match int_of_string_opt v with
                 | Some v -> mods ge (Some v) rest
                 | None -> (ge, le, false))
               | [] -> (ge, le, true)
               | _ -> (ge, le, false)
             in
             let ge, le, ok = mods None None modifiers in
             if not ok then warn st line Diag.code_unrecognized_syntax;
             let entry =
               { Vi.ple_seq = seq; ple_action = action; ple_prefix = prefix;
                 ple_ge = ge; ple_le = le; ple_line = line.num }
             in
             (match Hashtbl.find_opt st.prefix_lists name with
              | Some es -> Hashtbl.replace st.prefix_lists name (entry :: es)
              | None ->
                Hashtbl.add st.prefix_lists name [ entry ];
                st.pl_order <- name :: st.pl_order)
           | _ -> warn st line Diag.code_bad_value)
         | _ -> warn st line Diag.code_unrecognized_syntax)
       | "ip" :: "community-list" :: rest -> (
         let rest =
           match rest with
           | "standard" :: r -> r
           | r -> r
         in
         match rest with
         | name :: action :: comms ->
           let action = if action = "deny" then Vi.Deny else Vi.Permit in
           let entries = List.filter_map Vi.community_of_string comms in
           let entries = List.map (fun c -> (action, c)) entries in
           (match Hashtbl.find_opt st.community_lists name with
            | Some es -> Hashtbl.replace st.community_lists name (List.rev entries @ es)
            | None ->
              Hashtbl.add st.community_lists name (List.rev entries);
              st.cl_order <- name :: st.cl_order)
         | _ -> warn st line Diag.code_unrecognized_syntax)
       | "ip" :: "as-path" :: "access-list" :: name :: action :: regex -> (
         let action = if action = "deny" then Vi.Deny else Vi.Permit in
         let entry = (action, String.concat " " regex) in
         match Hashtbl.find_opt st.as_path_lists name with
         | Some es -> Hashtbl.replace st.as_path_lists name (entry :: es)
         | None ->
           Hashtbl.add st.as_path_lists name [ entry ];
           st.apl_order <- name :: st.apl_order)
       | [ "route-map"; name; action; seq ] -> (
         match
           ( (match action with
              | "permit" -> Some Vi.Permit
              | "deny" -> Some Vi.Deny
              | _ -> None),
             int_of_string_opt seq )
         with
         | Some action, Some seq ->
           let children, j = block i in
           parse_route_map_block st name action seq line.num children;
           next := j
         | _ -> warn st line Diag.code_unrecognized_syntax)
       | "router" :: "ospf" :: _ ->
         let children, j = block i in
         parse_ospf_block st children;
         next := j
       | [ "router"; "bgp"; asn ] -> (
         match int_of_string_opt asn with
         | Some asn ->
           let children, j = block i in
           parse_bgp_block st asn children;
           next := j
         | None -> warn st line Diag.code_bad_value)
       | "ip" :: "route" :: rest -> parse_static_route st line rest
       | "ip" :: "nat" :: rest -> parse_nat st line rest
       | [ "zone"; "security"; name ] ->
         if not (List.exists (fun (z : Vi.zone) -> z.z_name = name) st.zones) then
           st.zones <- { Vi.z_name = name; z_interfaces = [] } :: st.zones
       | [ "zone-pair"; "security"; _; "source"; src; "destination"; dst; "acl"; acl ]
       | [ "zone-pair"; "security"; "source"; src; "destination"; dst; "acl"; acl ] ->
         st.zone_policies <- { Vi.zp_from = src; zp_to = dst; zp_acl = acl } :: st.zone_policies
       | _ -> warn st line Diag.code_unrecognized_syntax);
      top !next
  in
  top 0;
  let assemble order tbl f =
    List.rev_map (fun name -> f name (List.rev (Hashtbl.find tbl name))) order
  in
  let cfg =
    { (Vi.empty st.hostname st.vendor) with
      interfaces = List.rev st.interfaces;
      acls = List.rev st.acls;
      prefix_lists =
        assemble st.pl_order st.prefix_lists (fun pl_name pl_entries ->
            { Vi.pl_name; pl_entries });
      community_lists =
        assemble st.cl_order st.community_lists (fun cl_name cl_entries ->
            { Vi.cl_name; cl_entries });
      as_path_lists =
        assemble st.apl_order st.as_path_lists (fun apl_name apl_entries ->
            { Vi.apl_name; apl_entries });
      route_maps =
        assemble st.rm_order st.route_maps (fun rm_name clauses ->
            { Vi.rm_name;
              rm_clauses =
                List.sort (fun a b -> Int.compare a.Vi.rc_seq b.Vi.rc_seq) clauses });
      static_routes = List.rev st.static_routes;
      ospf = st.ospf;
      bgp = st.bgp;
      nat_rules = List.rev st.nat_rules;
      zones =
        List.rev_map
          (fun (z : Vi.zone) -> { z with z_interfaces = List.rev z.z_interfaces })
          st.zones;
      zone_policies = List.rev st.zone_policies;
      ntp_servers = List.rev st.ntp;
      dns_servers = List.rev st.dns;
      logging_servers = List.rev st.logging;
      snmp_community = st.snmp }
  in
  (cfg, List.rev st.warnings)
