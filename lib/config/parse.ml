let detect_vendor text =
  let lines = Cfg_lexer.lines_of_string text in
  let is_set (l : Cfg_lexer.line) =
    match l.tokens with
    | "set" :: _ | "delete" :: _ -> true
    | _ -> false
  in
  let set_count = List.length (List.filter is_set lines) in
  if set_count * 2 > List.length lines then "juniper"
  else if
    List.exists
      (fun (l : Cfg_lexer.line) ->
        match l.tokens with
        | [ "!"; "device:"; _; "(EOS)" ] -> true
        | _ -> false)
      lines
    || Re.execp (Re.compile (Re.str "! Arista")) text
  then "arista-eos"
  else "cisco-ios"

let parse_config text =
  match detect_vendor text with
  | "juniper" -> Juniper_parser.parse text
  | vendor -> Ios_parser.parse ~vendor text

let undefined_references (cfg : Vi.t) =
  let refs = ref [] in
  let need ty name where defined =
    if not defined then refs := (ty, name, where) :: !refs
  in
  let has_rm n = Vi.find_route_map cfg n <> None in
  let has_acl n = Vi.find_acl cfg n <> None in
  let has_pl n = Vi.find_prefix_list cfg n <> None in
  let has_cl n = Vi.find_community_list cfg n <> None in
  let has_apl n = Vi.find_as_path_list cfg n <> None in
  List.iter
    (fun (i : Vi.interface) ->
      let where = "interface " ^ i.if_name in
      Option.iter (fun a -> need "acl" a where (has_acl a)) i.if_in_acl;
      Option.iter (fun a -> need "acl" a where (has_acl a)) i.if_out_acl)
    cfg.interfaces;
  Option.iter
    (fun (bgp : Vi.bgp_proc) ->
      List.iter
        (fun (n : Vi.bgp_neighbor) ->
          let where = "bgp neighbor " ^ Ipv4.to_string n.bn_peer in
          Option.iter (fun r -> need "route-map" r where (has_rm r)) n.bn_import_policy;
          Option.iter (fun r -> need "route-map" r where (has_rm r)) n.bn_export_policy;
          Option.iter (fun p -> need "prefix-list" p where (has_pl p)) n.bn_prefix_list_in;
          Option.iter (fun p -> need "prefix-list" p where (has_pl p)) n.bn_prefix_list_out)
        bgp.bp_neighbors;
      List.iter
        (fun ((_, rm) : Prefix.t * string option) ->
          Option.iter (fun r -> need "route-map" r "bgp network" (has_rm r)) rm)
        bgp.bp_networks;
      List.iter
        (fun (rd : Vi.redistribution) ->
          Option.iter
            (fun r -> need "route-map" r ("bgp redistribute " ^ rd.rd_protocol) (has_rm r))
            rd.rd_route_map)
        bgp.bp_redistribute)
    cfg.bgp;
  Option.iter
    (fun (ospf : Vi.ospf_proc) ->
      List.iter
        (fun (rd : Vi.redistribution) ->
          Option.iter
            (fun r -> need "route-map" r ("ospf redistribute " ^ rd.rd_protocol) (has_rm r))
            rd.rd_route_map)
        ospf.op_redistribute)
    cfg.ospf;
  List.iter
    (fun (rm : Vi.route_map) ->
      List.iter
        (fun (c : Vi.rm_clause) ->
          let where = Printf.sprintf "route-map %s %d" rm.rm_name c.rc_seq in
          List.iter
            (function
              | Vi.Match_prefix_list p -> need "prefix-list" p where (has_pl p)
              | Vi.Match_community cl -> need "community-list" cl where (has_cl cl)
              | Vi.Match_as_path a -> need "as-path-list" a where (has_apl a)
              | Vi.Match_prefix _ | Vi.Match_metric _ | Vi.Match_tag _
              | Vi.Match_protocol _ -> ())
            c.rc_matches)
        rm.rm_clauses)
    cfg.route_maps;
  List.iter
    (fun (r : Vi.nat_rule) ->
      Option.iter (fun a -> need "acl" a "nat rule" (has_acl a)) r.nr_match_acl)
    cfg.nat_rules;
  List.iter
    (fun (zp : Vi.zone_policy) ->
      let where = Printf.sprintf "zone-pair %s->%s" zp.zp_from zp.zp_to in
      need "acl" zp.zp_acl where (has_acl zp.zp_acl);
      need "zone" zp.zp_from where
        (List.exists (fun (z : Vi.zone) -> z.z_name = zp.zp_from) cfg.zones);
      need "zone" zp.zp_to where
        (List.exists (fun (z : Vi.zone) -> z.z_name = zp.zp_to) cfg.zones))
    cfg.zone_policies;
  (* Sorted and deduplicated: the same dangling name referenced from several
     sites (or twice from one) must report identically on every run. *)
  List.sort_uniq compare !refs
