(** Parser for Juniper-style flat "set" configuration statements.

    Firewall filters become ACLs, policy-statements become route maps,
    route-filters become anonymous prefix lists, and OSPF export policies are
    decomposed into per-protocol redistributions, mirroring how Batfish
    normalizes Junos into its vendor-independent model. *)

val parse : string -> Vi.t * Diag.t list
