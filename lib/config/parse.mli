(** Vendor detection and parser dispatch (pipeline stage 1). *)

(** Best-effort vendor identification from the configuration text. *)
val detect_vendor : string -> string

(** [parse_config text] detects the vendor and parses to the VI model, plus
    parse diagnostics ([Diag.code_unrecognized_syntax] and friends). *)
val parse_config : string -> Vi.t * Diag.t list

(** Post-parse reference checking: undefined route maps, ACLs, prefix lists,
    etc. referenced from the configuration (the Lesson 5 "are all referenced
    structures defined" analysis feeds on this). *)
val undefined_references : Vi.t -> (string * string * string) list
(** Returns (structure type, name, referenced from), sorted and deduplicated
    so report output is stable across runs. *)
