(* Failure-scenario exploration (the paper's "verify under the failures
   operators actually fear", via Plankton-style equivalence pruning and
   selective re-simulation from a warm base fixed point).

   The sweep enumerates single and double link/node failures from the L3
   topology, collapses scenarios whose failed elements carry identical
   forwarding atoms (Apt) into one representative, and re-checks a property
   set per representative by warm incremental re-simulation: the failed
   elements' nodes are marked dirty, [Dataplane.update] recomputes exactly
   their dependency components against the fault-injected environment and
   reuses every clean component verbatim. Fault injection is sound for the
   update path because [Dp_env.down_links] is consulted only for the owning
   (node, interface) pair: every node whose inputs the injection can change
   is itself listed dirty, so all environment-visible differences live in
   recomputed components and each per-scenario result is bit-identical to a
   cold full recompute of that scenario (test- and bench-enforced).

   Scenario checks fan out across the session {!Par.Pool} with stripe
   affinity: each worker re-checks against its resident imported base graph
   ({!Fpar.worker_import}), building the scenario graph into the same warm
   private manager. A scenario whose re-simulation exhausts fuel, oscillates,
   quarantines new nodes, or raises is reported [Inconclusive] with a
   {!Diag} record — the sweep itself never aborts. *)

type element =
  | Link of L3.endpoint * L3.endpoint
  | Node of string

type scenario = { sc_id : int; sc_elements : element list }

type property = { pr_src : Fquery.start; pr_dst : string }

(* [Violated] means the destination became unreachable from the start under
   the scenario; the packet is a concrete witness from the residual set
   (deliverable in the base network, undeliverable under the failure). *)
type verdict = Holds | Violated of Packet.t option

type outcome =
  | Checked of verdict list  (* one per property, in property order *)
  | Inconclusive of string

type result = {
  r_scenario : scenario;
  r_outcome : outcome;
  r_rep : int;  (* sc_id of the representative that was actually simulated *)
}

type report = {
  rp_k : int;
  rp_properties : property list;
  rp_dropped_properties : int;
  rp_enumerated : int;
  rp_simulated : int;
  rp_pruned : int;
  rp_pruning : bool;
  rp_atoms : int;
  rp_results : result list;  (* every enumerated scenario, id order *)
  rp_surviving : property list;
  rp_failing : (property * scenario * Packet.t option) list;
  rp_inconclusive : (scenario * string) list;  (* representatives only *)
  rp_diags : Diag.t list;
}

(* --- rendering ---------------------------------------------------------- *)

let element_to_string = function
  | Link (a, b) ->
    Printf.sprintf "link(%s[%s] ~ %s[%s])" a.L3.ep_node a.L3.ep_iface
      b.L3.ep_node b.L3.ep_iface
  | Node n -> Printf.sprintf "node(%s)" n

let scenario_to_string sc =
  String.concat " + " (List.map element_to_string sc.sc_elements)

let property_to_string p =
  let src =
    match p.pr_src with
    | n, Some i -> Printf.sprintf "%s[%s]" n i
    | n, None -> n
  in
  Printf.sprintf "%s -> %s" src p.pr_dst

(* --- enumeration -------------------------------------------------------- *)

let element_nodes = function
  | Link (a, b) -> [ a.L3.ep_node; b.L3.ep_node ]
  | Node n -> [ n ]

(* The (node, interface) pairs a failed element forces down: both ends of a
   link, every interface of a node. *)
let element_down topo = function
  | Link (a, b) ->
    [ (a.L3.ep_node, a.L3.ep_iface); (b.L3.ep_node, b.L3.ep_iface) ]
  | Node n -> List.map (fun ep -> (ep.L3.ep_node, ep.L3.ep_iface)) (L3.endpoints topo n)

(* Deterministic scenario order with all single-element scenarios before any
   pair, so the first failing scenario found for a property is minimal. *)
let enumerate ~topo ~k =
  let singles =
    List.map (fun (a, b) -> Link (a, b)) (L3.links topo)
    @ List.filter_map
        (fun n -> if L3.endpoints topo n = [] then None else Some (Node n))
        (L3.nodes topo)
  in
  let elements = Array.of_list singles in
  let n = Array.length elements in
  let out = ref [] and id = ref 0 in
  let push els =
    out := { sc_id = !id; sc_elements = els } :: !out;
    incr id
  in
  Array.iter (fun e -> push [ e ]) elements;
  if k >= 2 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        push [ elements.(i); elements.(j) ]
      done
    done;
  List.rev !out

(* --- properties --------------------------------------------------------- *)

(* Default property set: the base snapshot's reachable (start, destination)
   pairs, deduplicated in row order and capped (the sweep re-checks every
   property under every scenario, so the cap bounds total work; the dropped
   count is surfaced in the report).

   Both endpoints are restricted to host-bearing nodes — nodes owning an
   interface-subnet delivery ([Fgraph.Dst]) location on an interface that is
   not an inter-device link endpoint, i.e. a genuine edge subnet (every
   device on a point-to-point link has [Dst] locations for the /31, so the
   link endpoints must be excluded for the distinction to mean anything).
   Transit reachability (from or to a pure forwarding device) is not an
   operator intent worth sweeping failures for, and keeping transit devices
   out of the property anchor set is what gives atom pruning its leverage:
   two spine failures can only collapse into one equivalence class if
   neither spine is itself a property endpoint. When no host-to-host pair
   exists (loopback-only topologies) every pair is kept. *)
let properties_of ?(max_properties = 32) ~topo fq =
  let g = Fquery.graph fq in
  let link_eps = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace link_eps (a.L3.ep_node, a.L3.ep_iface) ();
      Hashtbl.replace link_eps (b.L3.ep_node, b.L3.ep_iface) ())
    (L3.links topo);
  let host_dst = Hashtbl.create 16 in
  ignore
    (Fgraph.locs_where g (function
      | Fgraph.Dst (n, i) ->
        if not (Hashtbl.mem link_eps (n, i)) then Hashtbl.replace host_dst n ();
        true
      | Fgraph.Src _ | Fgraph.Fwd _ | Fgraph.Pre_out _ | Fgraph.Accept _
      | Fgraph.Dropped _ -> false));
  let rows = Fquery.all_pairs fq () in
  let keep (r : Fquery.reach_row) =
    Hashtbl.mem host_dst (fst r.Fquery.rr_src)
    && Hashtbl.mem host_dst r.Fquery.rr_dst
  in
  let dedup keep rows =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (r : Fquery.reach_row) ->
        let p = { pr_src = r.Fquery.rr_src; pr_dst = r.Fquery.rr_dst } in
        if (not (keep r)) || Hashtbl.mem seen p then None
        else begin
          Hashtbl.add seen p ();
          Some p
        end)
      rows
  in
  let props =
    match dedup keep rows with
    | [] -> dedup (fun _ -> true) rows (* no host-to-host pairs: keep all *)
    | ps -> ps
  in
  let n = List.length props in
  if n <= max_properties then (props, 0)
  else (List.filteri (fun i _ -> i < max_properties) props, n - max_properties)

(* --- atom-equivalence pruning ------------------------------------------- *)

let loc_node = function
  | Fgraph.Src (n, _) | Fgraph.Fwd n | Fgraph.Pre_out (n, _, _)
  | Fgraph.Dst (n, _) | Fgraph.Accept n | Fgraph.Dropped n -> n

let endpoint_locs g (node, iface) =
  Fgraph.locs_where g (function
    | Fgraph.Src (n, i) | Fgraph.Dst (n, i) | Fgraph.Pre_out (n, i, _) ->
      n = node && i = iface
    | Fgraph.Fwd _ | Fgraph.Accept _ | Fgraph.Dropped _ -> false)

let node_locs g node = Fgraph.locs_where g (fun l -> loc_node l = node)

(* An element's signature: the multiset of property-relevant packet sets
   carried by the base graph edges the failure disables (edges incident to
   the failed endpoints' locations), plus the element kind and the
   property-anchored hostnames it touches. Each edge's atom bitset is
   converted back to a BDD and intersected with [restrict] — the union of
   the properties' base delivered sets — so traffic the properties never
   check (p2p link subnets, whose per-link addresses make every edge
   predicate unique) cannot keep symmetric elements apart. BDD node ids are
   canonical within the one manager a classify call runs in, so the
   restricted sets compare as ints. Identical signatures mean the failures
   remove interchangeable forwarding behavior relative to the checked
   properties, so their scenarios are collapsed to one representative. The
   equivalence is validated empirically: pruned and brute-force verdicts
   must agree (test-enforced). *)
let element_signature ~g ~apt ~anchors ~restrict el =
  let locs = Hashtbl.create 32 in
  let add id = Hashtbl.replace locs id () in
  (match el with
  | Link (a, b) ->
    List.iter add (endpoint_locs g (a.L3.ep_node, a.L3.ep_iface));
    List.iter add (endpoint_locs g (b.L3.ep_node, b.L3.ep_iface))
  | Node n -> List.iter add (node_locs g n));
  let man = Pktset.man (Fgraph.env g) in
  let bits =
    Apt.fold_edge_atoms apt
      (fun (f, t, _) b acc ->
        if Hashtbl.mem locs f || Hashtbl.mem locs t then
          Bdd.band man (Apt.atoms_to_bdd apt b) restrict :: acc
        else acc)
      []
    |> List.sort compare
  in
  let kind = match el with Link _ -> 0 | Node _ -> 1 in
  let touched =
    List.filter (fun n -> List.mem n anchors) (element_nodes el)
    |> List.sort compare
  in
  (kind, touched, bits)

let scenario_signature ~g ~apt ~anchors ~restrict sc =
  let sigs =
    List.map (element_signature ~g ~apt ~anchors ~restrict) sc.sc_elements
    |> List.sort compare
  in
  let ns = List.concat_map element_nodes sc.sc_elements in
  let shared = List.length ns - List.length (List.sort_uniq compare ns) in
  Marshal.to_string (sigs, shared) []

(* Group scenarios into equivalence classes: [(representative, members)]
   in enumeration order, the representative being the lowest-id member.
   Without an atom partition every scenario is its own class. *)
let classify ~apt ~g ~anchors ~restrict scenarios =
  match apt with
  | None -> List.map (fun sc -> (sc, [])) scenarios
  | Some apt ->
    let by_sig = Hashtbl.create 64 in
    let members = Hashtbl.create 64 in
    let reps = ref [] in
    List.iter
      (fun sc ->
        let key = scenario_signature ~g ~apt ~anchors ~restrict sc in
        match Hashtbl.find_opt by_sig key with
        | None ->
          Hashtbl.add by_sig key sc;
          reps := sc :: !reps
        | Some rep ->
          let prev =
            match Hashtbl.find_opt members rep.sc_id with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace members rep.sc_id (sc :: prev))
      scenarios;
    List.rev_map
      (fun rep ->
        let ms =
          match Hashtbl.find_opt members rep.sc_id with
          | Some l -> List.rev l
          | None -> []
        in
        (rep, ms))
      !reps

(* --- per-scenario check ------------------------------------------------- *)

let scenario_env ~topo env sc =
  Dp_env.with_down_links env (List.concat_map (element_down topo) sc.sc_elements)

(* Nodes whose forwarding-graph edges can differ between the base build and
   the scenario build — the dirty set handed to {!Fgraph.patch}: nodes whose
   FIB changed (or appeared/disappeared), the failed elements' own nodes
   (their interface set changes), and the L3 neighbors of every downed
   interface in either topology (wire edges into a downed interface are
   owned by the neighbor, so the neighbor's edges must be rebuilt even when
   its FIB is untouched — multi-access subnets included). *)
let graph_dirty ~base_dp ~(dp_s : Dataplane.t) sc =
  let dirty = Hashtbl.create 16 in
  let add n = Hashtbl.replace dirty n () in
  List.iter add (List.concat_map element_nodes sc.sc_elements);
  let topo_b = base_dp.Dataplane.topo in
  List.iter
    (fun (node, iface) ->
      List.iter
        (fun topo ->
          List.iter
            (fun ep -> add ep.L3.ep_node)
            (L3.neighbors topo ~node ~iface))
        [ topo_b; dp_s.Dataplane.topo ])
    (List.concat_map (element_down topo_b) sc.sc_elements);
  List.iter
    (fun n ->
      if not (Hashtbl.mem dirty n) then
        match
          ( Hashtbl.find_opt base_dp.Dataplane.nodes n,
            Hashtbl.find_opt dp_s.Dataplane.nodes n )
        with
        | Some b, Some s ->
          if Fib.entries b.Dataplane.nr_fib <> Fib.entries s.Dataplane.nr_fib
          then add n
        | None, None -> ()
        | Some _, None | None, Some _ -> add n)
    dp_s.Dataplane.node_order;
  Hashtbl.fold (fun n () acc -> n :: acc) dirty []

(* Delivered set at node [dst] for flows entering at [src], with the query's
   extra bits cleaned — the same quantity {!Fquery.all_pairs} rows report. *)
let delivered_at q ~src ~dst =
  let g = Fquery.graph q in
  let loc =
    match src with
    | n, Some i -> Fgraph.Src (n, i)
    | n, None -> Fgraph.Fwd n
  in
  match Fgraph.loc_id g loc with
  | None -> Bdd.bot
  | Some id ->
    let sets = Fquery.to_delivered q ~at:dst () in
    Bdd.band (Pktset.man (Fquery.env q)) sets.(id) (Fquery.clean q)

(* Node failures make properties anchored at the dead device vacuous: when
   [node(d)] takes the destination (or source) itself offline, "src reaches
   d" is not an operator intent the scenario can meaningfully violate — every
   property would otherwise trivially fail under its own endpoint's node
   failure and the surviving set would always be empty. Link failures get no
   such exemption: a property endpoint losing one of its links is exactly
   the redundancy question the sweep exists to answer. *)
let failed_nodes sc =
  List.filter_map (function Node n -> Some n | Link _ -> None) sc.sc_elements

(* [qb] (base) and [qs] (scenario) must share one manager, so the residual
   difference and its witness packet are computed canonically — the same
   verdict list falls out of every manager, which is what lets warm
   (worker-resident) and cold (fresh-manager) checks be compared with [=]. *)
let verdicts ~failed ~qb ~qs ~properties =
  let e = Fquery.env qb in
  let man = Pktset.man e in
  let prefs = Pktset.standard_prefs e () in
  List.map
    (fun p ->
      if List.mem (fst p.pr_src) failed || List.mem p.pr_dst failed then Holds
      else
        let cur = delivered_at qs ~src:p.pr_src ~dst:p.pr_dst in
        if not (Bdd.is_bot cur) then Holds
        else begin
          let base = delivered_at qb ~src:p.pr_src ~dst:p.pr_dst in
          let residual = Bdd.bdiff man base cur in
          Violated (Pktset.to_packet e ~prefs residual)
        end)
    properties

(* Gates shared by the warm and cold paths, so their outcomes stay
   comparable: any sign the scenario fixed point is not trustworthy makes
   the scenario inconclusive rather than producing wrong verdicts. *)
let gate ~base_dp (dp_s : Dataplane.t) =
  if not dp_s.Dataplane.converged then
    Some "re-simulation exhausted its fuel budget before convergence"
  else if dp_s.Dataplane.oscillated then
    Some "re-simulation detected a routing oscillation"
  else begin
    let base_q = List.map fst base_dp.Dataplane.quarantined in
    match
      List.filter (fun (n, _) -> not (List.mem n base_q)) dp_s.Dataplane.quarantined
    with
    | [] -> None
    | qs ->
      Some
        (Printf.sprintf "re-simulation quarantined %s"
           (String.concat ", " (List.map fst qs)))
  end

(* Warm check: runs in a pool worker (or the caller). [qb] wraps the base
   graph in this domain's private manager; the scenario data plane reuses
   the base fixed point via [Dataplane.update] and the scenario graph is
   built into the same warm manager. [options] must already be serial —
   nested pool entry would be refused by [Par.Pool.run] anyway, but the
   sweep never even tries. Never raises: any exception becomes
   [Inconclusive]. *)
let check_scenario ~options ~env ~configs_list ~find ~base_dp ~properties qb sc =
  try
    let topo = base_dp.Dataplane.topo in
    let env_s = scenario_env ~topo env sc in
    let changed =
      List.sort_uniq compare (List.concat_map element_nodes sc.sc_elements)
    in
    let dp_s = Dataplane.update ~options ~env:env_s ~base:base_dp ~changed configs_list in
    match gate ~base_dp dp_s with
    | Some why -> Inconclusive why
    | None ->
      (* Patch the base forwarding graph in place of a full rebuild: only
         the dirty nodes' edges are reconstructed (into [qb]'s warm
         manager, where unchanged predicates hash-cons to the base's), and
         the scenario query's quotient partitions are refitted from the
         base's class map so untouched classes skip re-refinement. Patched
         propagation results are bit-identical to a from-scratch build
         (warm-vs-cold equality is test-enforced). *)
      let dirty = graph_dirty ~base_dp ~dp_s sc in
      let g_s =
        Fgraph.patch ~base:(Fquery.graph qb) ~dirty ~configs:find ~dp:dp_s ()
      in
      let qs =
        Fquery.of_graph ~compress_mode:(Fquery.compress_mode qb) g_s ~dp:dp_s
          ~configs:find
      in
      Fquery.refit_partitions ~base:qb ~dirty qs;
      Checked (verdicts ~failed:(failed_nodes sc) ~qb ~qs ~properties)
  with exn ->
    Inconclusive (Printf.sprintf "re-simulation raised: %s" (Printexc.to_string exn))

(* --- cold reference ----------------------------------------------------- *)

(* Everything needed to recompute a scenario from scratch: a fresh manager
   holding a from-scratch base query (for residuals), plus the inputs. Each
   {!cold_outcome} call runs the full [Dataplane.compute] for the scenario —
   no warm reuse anywhere — which is the reference the warm path must match
   bit-for-bit. *)
type cold = {
  cold_options : Dataplane.options;
  cold_env : Dp_env.t;
  cold_configs : Vi.t list;
  cold_find : string -> Vi.t option;
  cold_dp : Dataplane.t;
  cold_q : Fquery.t;
}

let cold_context ~options ~env ~configs_list ~find () =
  let options = { options with Dataplane.pool = None; domains = 1 } in
  let cold_dp = Dataplane.compute ~options ~env configs_list in
  let cold_q = Fquery.make ~configs:find ~dp:cold_dp () in
  { cold_options = options; cold_env = env; cold_configs = configs_list;
    cold_find = find; cold_dp; cold_q }

let cold_outcome cold ~properties sc =
  try
    let topo = cold.cold_dp.Dataplane.topo in
    let env_s = scenario_env ~topo cold.cold_env sc in
    let dp_s =
      Dataplane.compute ~options:cold.cold_options ~env:env_s cold.cold_configs
    in
    match gate ~base_dp:cold.cold_dp dp_s with
    | Some why -> Inconclusive why
    | None ->
      let qs =
        Fquery.make ~env:(Fquery.env cold.cold_q) ~configs:cold.cold_find ~dp:dp_s ()
      in
      Checked (verdicts ~failed:(failed_nodes sc) ~qb:cold.cold_q ~qs ~properties)
  with exn ->
    Inconclusive (Printf.sprintf "re-simulation raised: %s" (Printexc.to_string exn))

(* --- sweep -------------------------------------------------------------- *)

let run ?pool ?(domains = 1) ?(max_properties = 32) ?(prune = true)
    ?(max_atoms = 4096) ~k ~options ~env ~configs_list ~find ~base_dp ~base_fq
    () =
  if k < 1 || k > 2 then invalid_arg "Failures.run: k must be 1 or 2";
  let diags = ref [] in
  let topo = base_dp.Dataplane.topo in
  let properties, dropped = properties_of ~max_properties ~topo base_fq in
  let scenarios = enumerate ~topo ~k in
  let g = Fquery.graph base_fq in
  let apt = if prune then Apt.try_build ~max_atoms g else None in
  if prune && not (Option.is_some apt) then
    diags :=
      Diag.warn ~phase:Diag.Question ~code:Diag.code_pruning_disabled
        "atom partition unavailable (transformation edges or atom cap \
         exceeded); checking every scenario"
      :: !diags;
  let anchors =
    List.sort_uniq compare
      (List.concat_map (fun p -> [ fst p.pr_src; p.pr_dst ]) properties)
  in
  (* the traffic the properties actually check: signatures are computed
     relative to this, so edge differences outside it cannot block pruning *)
  let restrict =
    let man = Pktset.man (Fquery.env base_fq) in
    List.fold_left
      (fun acc p ->
        Bdd.bor man acc (delivered_at base_fq ~src:p.pr_src ~dst:p.pr_dst))
      Bdd.bot properties
  in
  let classes = classify ~apt ~g ~anchors ~restrict scenarios in
  let reps = Array.of_list (List.map fst classes) in
  (* Per-scenario work is strictly serial: the sweep itself saturates the
     pool, and a nested pool entry from a worker is pointless. *)
  let options_s = { options with Dataplane.pool = None; domains = 1 } in
  let workers =
    match pool with
    | Some p when not (Par.Pool.closed p) -> Par.Pool.size p
    | Some _ | None -> domains
  in
  let outcomes =
    if workers > 1 && Array.length reps > 1 then begin
      (* compute the spec/fingerprint on the caller: the lazy cache inside
         [base_fq] is not safe to fill concurrently from workers *)
      let spec, fp = Fquery.spec_with_fingerprint base_fq in
      Par.map_dynamic_init ?pool ~domains
        ~init:(fun () ->
          Fpar.worker_import
            ~cmode:(Fquery.compress_mode base_fq)
            ~fp ~spec ~dp:base_dp ~configs:find ())
        (fun qb sc ->
          ( sc.sc_id,
            check_scenario ~options:options_s ~env ~configs_list ~find ~base_dp
              ~properties qb sc ))
        reps
    end
    else
      Array.map
        (fun sc ->
          ( sc.sc_id,
            check_scenario ~options:options_s ~env ~configs_list ~find ~base_dp
              ~properties base_fq sc ))
        reps
  in
  let by_id = Hashtbl.create 64 in
  Array.iter (fun (id, o) -> Hashtbl.replace by_id id o) outcomes;
  let results =
    List.concat_map
      (fun (rep, members) ->
        let o = Hashtbl.find by_id rep.sc_id in
        { r_scenario = rep; r_outcome = o; r_rep = rep.sc_id }
        :: List.map
             (fun m -> { r_scenario = m; r_outcome = o; r_rep = rep.sc_id })
             members)
      classes
    |> List.sort (fun a b -> compare a.r_scenario.sc_id b.r_scenario.sc_id)
  in
  (* Scenario ids enumerate singles before pairs, so the first failing
     scenario per property (over the expanded, pruning-independent list) is
     a minimal one. *)
  let failing = ref [] and surviving = ref [] in
  List.iteri
    (fun i p ->
      let rec find = function
        | [] -> None
        | r :: rest -> (
          match r.r_outcome with
          | Checked vs -> (
            match List.nth vs i with
            | Violated pkt -> Some (r.r_scenario, pkt)
            | Holds -> find rest)
          | Inconclusive _ -> find rest)
      in
      match find results with
      | Some (sc, pkt) -> failing := (p, sc, pkt) :: !failing
      | None -> surviving := p :: !surviving)
    properties;
  let inconclusive =
    List.filter_map
      (fun r ->
        match r.r_outcome with
        | Inconclusive why when r.r_rep = r.r_scenario.sc_id ->
          Some (r.r_scenario, why)
        | Inconclusive _ | Checked _ -> None)
      results
  in
  List.iter
    (fun (sc, why) ->
      diags :=
        Diag.warn ~phase:Diag.Question ~code:Diag.code_scenario_inconclusive
          (Printf.sprintf "scenario %s: %s" (scenario_to_string sc) why)
        :: !diags)
    inconclusive;
  { rp_k = k;
    rp_properties = properties;
    rp_dropped_properties = dropped;
    rp_enumerated = List.length scenarios;
    rp_simulated = Array.length reps;
    rp_pruned = List.length scenarios - Array.length reps;
    rp_pruning = Option.is_some apt;
    rp_atoms = (match apt with Some a -> Apt.atom_count a | None -> 0);
    rp_results = results;
    rp_surviving = List.rev !surviving;
    rp_failing = List.rev !failing;
    rp_inconclusive = inconclusive;
    rp_diags = List.rev !diags }
