(** Failure-scenario exploration: verify a property set under every single
    and double link/node failure.

    Scenarios are enumerated from the L3 topology, pruned by {!Apt} atom
    equivalence (scenarios whose failed elements disable graph edges with
    identical atom signatures collapse to one representative), and checked
    by warm fault-injected re-simulation: the failed elements' nodes form
    the dirty set of a {!Dataplane.update} against the base fixed point, so
    clean dependency components are reused verbatim, and the scenario
    forwarding graph is built into the checking worker's resident manager.
    Checks fan out across the session {!Par.Pool} with stripe affinity.

    Every per-scenario result is bit-identical to a cold full recompute of
    that scenario ({!cold_outcome}); a scenario whose re-simulation exhausts
    fuel, oscillates, quarantines new nodes, or raises is quarantined as
    [Inconclusive] with a {!Diag} record — the sweep never aborts. *)

(** A failed element: a point-to-point link (both endpoint interfaces forced
    down) or a whole node (every interface forced down). *)
type element =
  | Link of L3.endpoint * L3.endpoint
  | Node of string

type scenario = { sc_id : int; sc_elements : element list }

(** A reachability property: packets entering at [pr_src] are delivered at
    node [pr_dst]. It holds under a scenario iff the delivered set stays
    non-empty. A property is vacuously satisfied by any scenario whose
    [Node] failures include one of its own endpoints — a dead device cannot
    meaningfully violate reachability to itself. Link failures adjacent to
    an endpoint carry no such exemption. *)
type property = { pr_src : Fquery.start; pr_dst : string }

(** [Violated] carries a witness from the residual reachability BDD: a
    packet deliverable in the base network but not under the failure. *)
type verdict = Holds | Violated of Packet.t option

type outcome =
  | Checked of verdict list  (** one per property, in property order *)
  | Inconclusive of string

type result = {
  r_scenario : scenario;
  r_outcome : outcome;  (** inherited from the class representative *)
  r_rep : int;  (** sc_id of the representative actually simulated *)
}

type report = {
  rp_k : int;
  rp_properties : property list;
  rp_dropped_properties : int;  (** base pairs beyond the property cap *)
  rp_enumerated : int;  (** brute-force scenario count *)
  rp_simulated : int;  (** class representatives actually re-simulated *)
  rp_pruned : int;  (** [rp_enumerated - rp_simulated] *)
  rp_pruning : bool;  (** atom pruning was active *)
  rp_atoms : int;  (** atom count backing the pruner (0 when off) *)
  rp_results : result list;  (** every enumerated scenario, id order *)
  rp_surviving : property list;  (** hold under every conclusive scenario *)
  rp_failing : (property * scenario * Packet.t option) list;
      (** minimal failing scenario (singles enumerate before pairs) plus
          counterexample packet, per failing property *)
  rp_inconclusive : (scenario * string) list;
  rp_diags : Diag.t list;
}

val element_to_string : element -> string
val scenario_to_string : scenario -> string
val property_to_string : property -> string

(** Deterministic enumeration: every link ({!L3.links}) and every node with
    at least one endpoint as single-element scenarios, followed by all
    unordered pairs when [k >= 2]. *)
val enumerate : topo:L3.t -> k:int -> scenario list

(** Default property set from the base snapshot's reachable pairs, capped;
    returns [(properties, dropped_count)]. Both endpoints are restricted to
    host-bearing nodes — those with an interface-subnet [Fgraph.Dst]
    delivery location on an interface that is not an inter-device link
    endpoint in [topo] — so transit devices do not become property anchors;
    keeping the anchor set small is what lets atom pruning collapse
    symmetric transit failures. Falls back to every reachable pair when no
    host-to-host pair exists. *)
val properties_of :
  ?max_properties:int -> topo:L3.t -> Fquery.t -> property list * int

(** Equivalence classes [(representative, members)] in enumeration order.
    [apt = None] disables pruning (every scenario its own class). [anchors]
    are the hostnames the properties mention; elements touching different
    anchors never collapse. [restrict] is the property-relevant packet set
    (the union of the properties' base delivered sets, in the graph's
    manager): edge atom sets are intersected with it before comparison, so
    traffic the properties never check — e.g. per-link p2p subnets, unique
    by construction — cannot keep symmetric elements apart. *)
val classify :
  apt:Apt.t option ->
  g:Fgraph.t ->
  anchors:string list ->
  restrict:Bdd.t ->
  scenario list ->
  (scenario * scenario list) list

(** The fault-injected environment of a scenario: the base environment with
    every failed element's (node, interface) pairs forced down. *)
val scenario_env : topo:L3.t -> Dp_env.t -> scenario -> Dp_env.t

(** Warm single-scenario check against a base query [qb] (the base graph in
    the calling domain's manager — {!Fpar.worker_import} inside a pool
    worker). [options] should be serial; never raises. *)
val check_scenario :
  options:Dataplane.options ->
  env:Dp_env.t ->
  configs_list:Vi.t list ->
  find:(string -> Vi.t option) ->
  base_dp:Dataplane.t ->
  properties:property list ->
  Fquery.t ->
  scenario ->
  outcome

(** {2 Cold reference}

    A fresh-manager, from-scratch recompute of a scenario: full
    {!Dataplane.compute} against the fault-injected environment and fresh
    graph builds, no warm reuse anywhere. Warm outcomes must equal cold
    outcomes structurally ([=]) — the bit-identity contract. *)

type cold

val cold_context :
  options:Dataplane.options ->
  env:Dp_env.t ->
  configs_list:Vi.t list ->
  find:(string -> Vi.t option) ->
  unit ->
  cold

val cold_outcome : cold -> properties:property list -> scenario -> outcome

(** {2 The sweep} *)

(** [run ~k ~options ~env ~configs_list ~find ~base_dp ~base_fq ()] explores
    every failure scenario up to size [k] (1 or 2). [prune] (default true)
    enables atom-equivalence pruning, degrading gracefully (with a
    [code_pruning_disabled] diag) when the graph has transformation edges or
    the atom partition exceeds [max_atoms]. With a [pool] (or [domains] > 1)
    representatives fan out across workers; per-scenario work itself always
    runs serial. *)
val run :
  ?pool:Par.Pool.t ->
  ?domains:int ->
  ?max_properties:int ->
  ?prune:bool ->
  ?max_atoms:int ->
  k:int ->
  options:Dataplane.options ->
  env:Dp_env.t ->
  configs_list:Vi.t list ->
  find:(string -> Vi.t option) ->
  base_dp:Dataplane.t ->
  base_fq:Fquery.t ->
  unit ->
  report
