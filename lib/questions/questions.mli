(** The question engine: specialized, narrowly-scoped analyses (Lessons 4-5).

    Deep-configuration questions (undefined references, duplicate IPs, BGP
    compatibility, property consistency) only need the VI model; forwarding
    questions need a computed data plane. Every question returns a printable
    tabular {!answer} so results read uniformly. *)

type answer = {
  a_title : string;
  a_header : string list;
  a_rows : string list list;
}

val answer_to_string : answer -> string
val print_answer : answer -> unit

(** {2 Configuration questions (no data plane needed)} *)

(** Parse diagnostics collected during stage 1. *)
val init_issues : (Vi.t * Diag.t list) list -> answer

(** Structured pipeline diagnostics as a uniform table. *)
val diagnostics : Diag.t list -> answer

(** Structures referenced but never defined. *)
val undefined_references : Vi.t list -> answer

(** Structures defined but never referenced. *)
val unused_structures : Vi.t list -> answer

(** Interface addresses assigned to more than one interface. *)
val duplicate_ips : Vi.t list -> answer

(** Configured BGP neighbors whose two ends disagree (AS numbers, missing
    reverse configuration). Purely configuration-based. *)
val bgp_session_compatibility : Vi.t list -> answer

(** Per-node management-plane settings with majority/outlier analysis:
    NTP servers, DNS servers, logging hosts, SNMP communities. *)
val property_consistency : Vi.t list -> answer

(** A lint {!Lint.report} as a uniform table (code, pass, severity,
    location, message). *)
val lint : Lint.report -> answer

(** Engine-counter summary of an incremental update (ISSUE 4): what changed,
    what was re-simulated, what was reused, and how far the route-delta
    worklist's frontier reached. *)
val incremental_update :
  files_changed:int ->
  files_reparsed:int ->
  nodes_changed:string list ->
  components:int ->
  dirty_components:int ->
  nodes_simulated:int ->
  nodes_reused:int ->
  frontier_size:int ->
  nodes_converged_early:int ->
  forwarding_rebuilt:bool ->
  memo_invalidated:int ->
  answer

val interface_properties : Vi.t list -> answer
val node_properties : Vi.t list -> answer

(** {2 Data-plane questions} *)

(** Session establishment results from the simulation. *)
val bgp_session_status : Dataplane.t -> answer

(** Main-RIB routes, optionally filtered. *)
val routes : ?node:string -> ?protocol:string -> Dataplane.t -> answer

(** Run a packet through a named ACL (testFilters). *)
val test_filters : Vi.t -> acl:string -> Packet.t -> answer

(** Symbolically search a named ACL for packets with a given disposition
    (searchFilters): returns an example packet per matching line. *)
val search_filters :
  Pktset.t -> Vi.t -> acl:string -> action:Vi.action -> answer

(** Run a candidate route through a named routing policy (testRoutePolicies):
    verdict plus the attribute changes it makes. *)
val test_route_policy : Vi.t -> policy:string -> Route.t -> answer

(** Concrete traceroute. *)
val traceroute :
  configs:(string -> Vi.t option) ->
  dp:Dataplane.t ->
  start:string ->
  ?ingress:string ->
  Packet.t ->
  answer

(** Symbolic reachability: can packets from [src] reach [dst_ip]? Reports
    the verdict with negative/positive examples (§4.4.3). *)
val reachability :
  Fquery.t ->
  src:Fquery.start ->
  dst_ip:Prefix.t ->
  ?hdr:Bdd.t ->
  unit ->
  answer

(** Multipath consistency over default-scoped start locations. [domains]
    shards the backward passes over worker domains ({!Fpar}); the answer is
    identical at any value. *)
val multipath_consistency :
  ?pool:Par.Pool.t -> ?domains:int -> ?auto:bool -> Fquery.t -> answer

(** All-pairs reachability: one row per (source location, destination node)
    pair with delivered flows, with an example flow each. [domains] fans the
    per-source forward passes across worker domains. *)
val all_pairs_reachability :
  ?pool:Par.Pool.t -> ?domains:int -> ?auto:bool -> Fquery.t -> answer

(** Forwarding loops. *)
val detect_loops : Fquery.t -> answer

(** Flows delivered in exactly one of two snapshots (differential
    reachability between a base and a candidate change). *)
val differential_reachability :
  Fquery.t -> Fquery.t -> srcs:Fquery.start list -> answer

(** Per-property failure-verification table from a {!Failures.report}: the
    verdict, the minimal failing scenario, and a counterexample packet from
    the residual reachability set for every failing property. *)
val failure_verification : Failures.report -> answer

(** Sweep-level counters of a {!Failures.report}: scenarios enumerated vs.
    pruned vs. simulated, pruning state, and verdict totals. *)
val failure_summary : Failures.report -> answer
