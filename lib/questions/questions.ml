type answer = {
  a_title : string;
  a_header : string list;
  a_rows : string list list;
}

let answer_to_string a =
  Printf.sprintf "%s (%d rows)\n%s" a.a_title (List.length a.a_rows)
    (Table.to_string ~header:a.a_header a.a_rows)

let print_answer a = print_string (answer_to_string a)

(* --- configuration questions --- *)

let init_issues parsed =
  let rows =
    List.concat_map
      (fun ((cfg : Vi.t), diags) ->
        List.map
          (fun (d : Diag.t) ->
            [ cfg.hostname;
              (match d.d_loc.loc_line with Some l -> string_of_int l | None -> "-");
              d.d_code; d.d_message ])
          diags)
      parsed
  in
  { a_title = "initIssues"; a_header = [ "node"; "line"; "issue"; "text" ]; a_rows = rows }

let diagnostics diags =
  let rows =
    List.map
      (fun (d : Diag.t) ->
        [ Diag.severity_to_string d.d_severity; Diag.phase_to_string d.d_phase;
          d.d_code; Diag.location_to_string d.d_loc; d.d_message ])
      diags
  in
  { a_title = "diagnostics";
    a_header = [ "severity"; "phase"; "code"; "location"; "message" ];
    a_rows = rows }

let undefined_references configs =
  let rows =
    List.concat_map
      (fun (cfg : Vi.t) ->
        List.map
          (fun (ty, name, where) -> [ cfg.hostname; ty; name; where ])
          (Parse.undefined_references cfg))
      configs
  in
  { a_title = "undefinedReferences"; a_header = [ "node"; "type"; "name"; "context" ];
    a_rows = rows }

(* A structure is unused if nothing in the config mentions it. The analysis
   itself lives in the lint registry (LINT002); this is the tabular view. *)
let unused_structures configs =
  let rows =
    List.concat_map
      (fun (cfg : Vi.t) ->
        List.map
          (fun (ty, name) -> [ cfg.hostname; ty; name ])
          (Lint.unused_structures cfg))
      configs
  in
  { a_title = "unusedStructures"; a_header = [ "node"; "type"; "name" ]; a_rows = rows }

let duplicate_ips configs =
  let rows =
    List.map
      (fun (ip, users) ->
        [ Ipv4.to_string ip;
          String.concat ", "
            (List.map (fun (n, i) -> Printf.sprintf "%s[%s]" n i) users) ])
      (Lint.duplicate_ips configs)
  in
  { a_title = "duplicateIps"; a_header = [ "ip"; "owners" ];
    a_rows = List.sort compare rows }

let bgp_session_compatibility configs =
  let rows =
    List.map
      (fun (node, peer, text, _severity) -> [ node; Ipv4.to_string peer; text ])
      (Lint.bgp_session_issues configs)
  in
  { a_title = "bgpSessionCompatibility"; a_header = [ "node"; "peer"; "issue" ];
    a_rows = rows }

(* The full lint report as a table (same findings as the lint CLI). *)
(* The incremental-update summary (ISSUE 4): how much work the engine
   actually redid after a change, as a uniform metric table. *)
let incremental_update ~files_changed ~files_reparsed ~nodes_changed ~components
    ~dirty_components ~nodes_simulated ~nodes_reused ~frontier_size
    ~nodes_converged_early ~forwarding_rebuilt ~memo_invalidated =
  let rows =
    [ [ "filesChanged"; string_of_int files_changed ];
      [ "filesReparsed"; string_of_int files_reparsed ];
      [ "nodesChanged"; String.concat " " nodes_changed ];
      [ "dependencyComponents"; string_of_int components ];
      [ "dirtyComponents"; string_of_int dirty_components ];
      [ "nodesSimulated"; string_of_int nodes_simulated ];
      [ "nodesReused"; string_of_int nodes_reused ];
      [ "frontierSize"; string_of_int frontier_size ];
      [ "nodesConvergedEarly"; string_of_int nodes_converged_early ];
      [ "forwardingRebuilt"; string_of_bool forwarding_rebuilt ];
      [ "memoEntriesInvalidated"; string_of_int memo_invalidated ] ]
  in
  { a_title = "incrementalUpdate"; a_header = [ "metric"; "value" ]; a_rows = rows }

let lint (report : Lint.report) =
  let rows =
    List.concat_map
      (fun ((p : Lint.pass), findings) ->
        List.map
          (fun (d : Diag.t) ->
            [ d.Diag.d_code; p.Lint.p_name;
              Diag.severity_to_string d.d_severity;
              Diag.location_to_string d.d_loc; d.d_message ])
          findings)
      report.Lint.r_results
  in
  { a_title = "lint";
    a_header = [ "code"; "pass"; "severity"; "location"; "message" ];
    a_rows = rows }

let property_consistency configs =
  let properties =
    [ ("ntp-servers", fun (c : Vi.t) -> c.ntp_servers);
      ("dns-servers", fun (c : Vi.t) -> c.dns_servers);
      ("logging-hosts", fun (c : Vi.t) -> c.logging_servers);
      ("snmp-community", fun (c : Vi.t) -> Option.to_list c.snmp_community) ]
  in
  let rows =
    List.concat_map
      (fun (prop, get) ->
        let values =
          List.map (fun c -> (c.Vi.hostname, String.concat "," (List.sort compare (get c)))) configs
        in
        let counts = Hashtbl.create 8 in
        List.iter
          (fun (_, v) ->
            Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
          values;
        let majority, _ =
          Hashtbl.fold
            (fun v c ((_, best) as acc) -> if c > best then (v, c) else acc)
            counts ("", 0)
        in
        List.filter_map
          (fun (node, v) ->
            if v <> majority then
              Some [ node; prop; (if v = "" then "(unset)" else v);
                     (if majority = "" then "(unset)" else majority) ]
            else None)
          values)
      properties
  in
  { a_title = "propertyConsistency (outliers)";
    a_header = [ "node"; "property"; "value"; "majority" ]; a_rows = rows }

let interface_properties configs =
  let rows =
    List.concat_map
      (fun (cfg : Vi.t) ->
        List.map
          (fun (i : Vi.interface) ->
            [ cfg.hostname; i.if_name;
              (match i.if_address with
               | Some (ip, len) -> Printf.sprintf "%s/%d" (Ipv4.to_string ip) len
               | None -> "-");
              (if i.if_enabled then "up" else "admin-down");
              Option.value i.if_in_acl ~default:"-";
              Option.value i.if_out_acl ~default:"-";
              (match i.if_ospf with
               | Some o -> Printf.sprintf "area %d" o.oi_area
               | None -> "-") ])
          cfg.interfaces)
      configs
  in
  { a_title = "interfaceProperties";
    a_header = [ "node"; "interface"; "address"; "state"; "inAcl"; "outAcl"; "ospf" ];
    a_rows = rows }

let node_properties configs =
  let rows =
    List.map
      (fun (cfg : Vi.t) ->
        [ cfg.hostname; cfg.vendor;
          string_of_int (List.length cfg.interfaces);
          (match cfg.bgp with
           | Some b -> string_of_int b.bp_as
           | None -> "-");
          (if cfg.ospf <> None then "yes" else "no");
          string_of_int (List.length cfg.acls);
          string_of_int (List.length cfg.route_maps) ])
      configs
  in
  { a_title = "nodeProperties";
    a_header = [ "node"; "vendor"; "interfaces"; "bgpAs"; "ospf"; "acls"; "routeMaps" ];
    a_rows = rows }

(* --- data-plane questions --- *)

let bgp_session_status (dp : Dataplane.t) =
  let rows =
    List.map
      (fun (s : Dataplane.session_report) ->
        [ s.sr_node; Ipv4.to_string s.sr_peer;
          Option.value s.sr_remote_node ~default:"(external)";
          (if s.sr_is_ibgp then "ibgp" else "ebgp");
          (if s.sr_established then "ESTABLISHED" else "DOWN");
          Option.value s.sr_reason ~default:"-" ])
      dp.sessions
  in
  { a_title = "bgpSessionStatus";
    a_header = [ "node"; "peer"; "remoteNode"; "type"; "state"; "reason" ];
    a_rows = rows }

let routes ?node ?protocol (dp : Dataplane.t) =
  let rows =
    List.concat_map
      (fun name ->
        if node <> None && node <> Some name then []
        else
          match Dataplane.node_opt dp name with
          | None -> [] (* quarantined or otherwise missing *)
          | Some nr ->
          Rib.fold_best
            (fun _ best acc ->
              List.filter_map
                (fun (r : Route.t) ->
                  let proto = Route_proto.to_string r.protocol in
                  if protocol <> None && protocol <> Some proto then None
                  else
                    Some
                      [ name; Prefix.to_string r.net; proto;
                        (match r.next_hop with
                         | Route.Nh_ip ip -> Ipv4.to_string ip
                         | Route.Nh_iface i -> i
                         | Route.Nh_discard -> "discard");
                        string_of_int r.admin; string_of_int r.metric ])
                best
              @ acc)
            nr.Dataplane.nr_main [])
      dp.node_order
  in
  { a_title = "routes";
    a_header = [ "node"; "network"; "protocol"; "nextHop"; "admin"; "metric" ];
    a_rows = rows }

let test_filters (cfg : Vi.t) ~acl pkt =
  let rows =
    match Vi.find_acl cfg acl with
    | None -> [ [ cfg.hostname; acl; "UNDEFINED"; "-" ] ]
    | Some a ->
      let action, line = Acl_eval.action a pkt in
      [ [ cfg.hostname; acl;
          (match action with
           | Vi.Permit -> "PERMIT"
           | Vi.Deny -> "DENY");
          (match line with
           | Some l -> l.l_text
           | None -> "(implicit deny)") ] ]
  in
  { a_title = Printf.sprintf "testFilters %s" (Packet.to_string pkt);
    a_header = [ "node"; "filter"; "action"; "matchedLine" ]; a_rows = rows }

let search_filters env (cfg : Vi.t) ~acl ~action =
  let man = Pktset.man env in
  let rows =
    match Vi.find_acl cfg acl with
    | None -> [ [ cfg.hostname; acl; "UNDEFINED"; "-" ] ]
    | Some a ->
      (* per-line reachable match space: line space minus earlier lines *)
      let earlier = ref Bdd.bot in
      List.filter_map
        (fun (l : Vi.acl_line) ->
          let space = Bdd.bdiff man (Acl_bdd.line env l) !earlier in
          earlier := Bdd.bor man !earlier (Acl_bdd.line env l);
          if l.l_action <> action then None
          else if Bdd.is_bot space then
            Some [ cfg.hostname; l.l_text; "UNMATCHABLE"; "-" ]
          else
            let pkt = Pktset.to_packet env ~prefs:(Pktset.standard_prefs env ()) space in
            Some
              [ cfg.hostname; l.l_text; "example";
                (match pkt with
                 | Some p -> Packet.to_string p
                 | None -> "-") ])
        a.acl_lines
  in
  { a_title = Printf.sprintf "searchFilters action=%s" (Vi.action_to_string action);
    a_header = [ "node"; "line"; "kind"; "packet" ]; a_rows = rows }

(* testRoutePolicies: run a candidate route through a named policy and show
   the verdict plus every attribute the policy changed. *)
let test_route_policy (cfg : Vi.t) ~policy (r : Route.t) =
  let ctx = Policy_eval.make_ctx cfg in
  let rows =
    match Policy_eval.run_named ctx policy r with
    | Policy_eval.Denied -> [ [ cfg.hostname; policy; "DENY"; "-" ] ]
    | Policy_eval.Accepted r' ->
      let a = Route.get_attrs r and a' = Route.get_attrs r' in
      let changes =
        List.filter_map Fun.id
          [ (if a.Attrs.local_pref <> a'.Attrs.local_pref then
               Some (Printf.sprintf "localPref %d->%d" a.Attrs.local_pref a'.Attrs.local_pref)
             else None);
            (if a.Attrs.med <> a'.Attrs.med then
               Some (Printf.sprintf "med %d->%d" a.Attrs.med a'.Attrs.med)
             else None);
            (if a.Attrs.communities <> a'.Attrs.communities then
               Some
                 (Printf.sprintf "communities [%s]"
                    (String.concat " " (List.map Vi.community_to_string a'.Attrs.communities)))
             else None);
            (if a.Attrs.as_path <> a'.Attrs.as_path then
               Some (Printf.sprintf "asPath [%s]" (Attrs.as_path_to_string a'.Attrs.as_path))
             else None);
            (if r.Route.next_hop <> r'.Route.next_hop then Some "nextHop changed" else None);
            (if r.Route.tag <> r'.Route.tag then
               Some (Printf.sprintf "tag %d->%d" r.Route.tag r'.Route.tag)
             else None) ]
      in
      [ [ cfg.hostname; policy; "PERMIT";
          (if changes = [] then "(unchanged)" else String.concat ", " changes) ] ]
  in
  { a_title = Printf.sprintf "testRoutePolicies %s" (Route.to_string r);
    a_header = [ "node"; "policy"; "action"; "changes" ]; a_rows = rows }

let traceroute ~configs ~dp ~start ?ingress pkt =
  let traces = Traceroute.run ~configs ~dp ~start ?ingress pkt in
  let rows =
    List.mapi
      (fun i (tr : Traceroute.trace) ->
        [ string_of_int (i + 1);
          String.concat " -> " (List.map (fun (h : Traceroute.hop) -> h.h_node) tr.hops);
          Traceroute.disposition_to_string tr.disposition ])
      traces
  in
  { a_title = Printf.sprintf "traceroute %s from %s" (Packet.to_string pkt) start;
    a_header = [ "path"; "hops"; "disposition" ]; a_rows = rows }

let reachability q ~src ~dst_ip ?hdr () =
  let env = Fquery.env q in
  let man = Pktset.man env in
  let hdr = Option.value hdr ~default:Bdd.top in
  let delivered = Fquery.reachable q ~src ~hdr ~dst_ip () in
  let want = Bdd.conj man [ hdr; Pktset.dst_prefix env dst_ip; Fquery.clean q ] in
  let violating = Bdd.bdiff man want delivered in
  let neg, pos =
    Fquery.pick_examples q ~dst_prefix:dst_ip ~violating ~holding:want ()
  in
  let node, iface = src in
  let rows =
    [ [ "verdict";
        (if Bdd.is_bot violating then "ALL FLOWS DELIVERED"
         else if Bdd.is_bot delivered then "NO FLOW DELIVERED"
         else "PARTIAL") ];
      [ "counterexample";
        (match neg with
         | Some p -> Packet.to_string p
         | None -> "-") ];
      [ "positive example";
        (match pos with
         | Some p -> Packet.to_string p
         | None -> "-") ] ]
  in
  { a_title =
      Printf.sprintf "reachability %s[%s] -> %s" node
        (Option.value iface ~default:"originated")
        (Prefix.to_string dst_ip);
    a_header = [ "field"; "value" ]; a_rows = rows }

let multipath_consistency ?pool ?(domains = 1) ?(auto = false) q =
  let env = Fquery.env q in
  let violations = Fpar.multipath_consistency ?pool ~domains ~auto q in
  let rows =
    List.map
      (fun (((node, iface) : Fquery.start), v) ->
        [ node; Option.value iface ~default:"-";
          (match Pktset.to_packet env ~prefs:(Pktset.standard_prefs env ()) v with
           | Some p -> Packet.to_string p
           | None -> "-") ])
      violations
  in
  { a_title = "multipathConsistency";
    a_header = [ "node"; "interface"; "exampleFlow" ]; a_rows = rows }

let all_pairs_reachability ?pool ?(domains = 1) ?(auto = false) q =
  let rows =
    List.map
      (fun (r : Fquery.reach_row) ->
        let node, iface = r.rr_src in
        [ node; Option.value iface ~default:"-"; r.rr_dst;
          (match r.rr_example with
           | Some p -> Packet.to_string p
           | None -> "-") ])
      (Fpar.all_pairs ?pool ~domains ~auto q)
  in
  { a_title = "allPairsReachability";
    a_header = [ "srcNode"; "srcInterface"; "dstNode"; "exampleFlow" ];
    a_rows = rows }

let detect_loops q =
  let env = Fquery.env q in
  let rows =
    List.map
      (fun (nodes, set) ->
        [ String.concat " -> " nodes;
          (match Pktset.to_packet env set with
           | Some p -> Packet.to_string p
           | None -> "-") ])
      (Fquery.find_loops q)
  in
  { a_title = "detectLoops"; a_header = [ "cycle"; "examplePacket" ]; a_rows = rows }

let differential_reachability q_base q_new ~srcs =
  let env = Fquery.env q_base in
  let man = Pktset.man env in
  let base = Fquery.to_delivered q_base () in
  let fresh = Fquery.to_delivered q_new () in
  let rows =
    List.concat_map
      (fun ((node, iface) as s) ->
        let set q sets =
          match
            (match iface with
             | Some i -> Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, i))
             | None -> Fgraph.loc_id q.Fquery.g (Fgraph.Fwd node))
          with
          | Some id -> Bdd.band man sets.(id) (Fquery.clean q)
          | None -> Bdd.bot
        in
        let b = set q_base base and n = set q_new fresh in
        let lost = Bdd.bdiff man b n and gained = Bdd.bdiff man n b in
        let describe kind v =
          if Bdd.is_bot v then None
          else
            Some
              [ node; Option.value iface ~default:"-"; kind;
                (match Pktset.to_packet env ~prefs:(Pktset.standard_prefs env ()) v with
                 | Some p -> Packet.to_string p
                 | None -> "-") ]
        in
        List.filter_map Fun.id [ describe "LOST" lost; describe "GAINED" gained ]
        |> fun r ->
        ignore s;
        r)
      srcs
  in
  { a_title = "differentialReachability";
    a_header = [ "node"; "interface"; "change"; "exampleFlow" ]; a_rows = rows }

(* --- failure verification (ISSUE 6) --- *)

let failure_verification (r : Failures.report) =
  let rows =
    List.map
      (fun p ->
        match List.find_opt (fun (p', _, _) -> p' = p) r.Failures.rp_failing with
        | Some (_, sc, pkt) ->
          [ Failures.property_to_string p; "fails";
            Failures.scenario_to_string sc;
            (match pkt with
             | Some pk -> Packet.to_string pk
             | None -> "-") ]
        | None -> [ Failures.property_to_string p; "survives"; "-"; "-" ])
      r.Failures.rp_properties
  in
  { a_title = Printf.sprintf "failureVerification(k=%d)" r.Failures.rp_k;
    a_header = [ "property"; "verdict"; "minFailingScenario"; "counterexample" ];
    a_rows = rows }

let failure_summary (r : Failures.report) =
  let metric name v = [ name; v ] in
  { a_title = Printf.sprintf "failureVerification(k=%d): sweep" r.Failures.rp_k;
    a_header = [ "metric"; "value" ];
    a_rows =
      [ metric "scenariosEnumerated" (string_of_int r.Failures.rp_enumerated);
        metric "scenariosSimulated" (string_of_int r.Failures.rp_simulated);
        metric "scenariosPruned" (string_of_int r.Failures.rp_pruned);
        metric "atomPruning"
          (if r.Failures.rp_pruning then
             Printf.sprintf "on (%d atoms)" r.Failures.rp_atoms
           else "off");
        metric "properties"
          (let n = List.length r.Failures.rp_properties in
           if r.Failures.rp_dropped_properties > 0 then
             Printf.sprintf "%d (+%d beyond cap)" n r.Failures.rp_dropped_properties
           else string_of_int n);
        metric "surviving" (string_of_int (List.length r.Failures.rp_surviving));
        metric "failing" (string_of_int (List.length r.Failures.rp_failing));
        metric "inconclusive"
          (string_of_int (List.length r.Failures.rp_inconclusive)) ] }
