let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* --- persistent worker-domain pool ------------------------------------- *)

(* A long-lived set of worker domains that serve a sequence of jobs, so the
   per-call cost of [Domain.spawn] (and, more importantly, of rebuilding
   worker-resident state such as private BDD managers — cached across jobs in
   each worker's domain-local storage) is amortized over a whole session.

   Protocol: [submit] publishes a closure under the pool mutex, bumps the
   epoch and wakes every worker; each worker runs the closure once (the
   closure itself contains the work-stealing claim loop over a shared atomic
   counter) and decrements [pending]; the submitting caller blocks on
   [done_cv] until [pending] reaches zero. Only one job runs at a time, and
   [submit] must not be called from two threads at once or from inside a
   running job (both would interleave epochs). Task exceptions never escape
   into a worker's loop — they are recorded per index and re-raised in the
   caller — so a failed job can never wedge the pool. *)
module Pool = struct
  (* Set (permanently) in every pool worker domain. [submit] blocks until
     the whole job drains, so a task that re-enters [run] on its own pool —
     e.g. a per-scenario re-simulation whose options still carry the session
     pool — would deadlock: the outer job can never finish while the worker
     waits for an epoch bump that only the outer job's completion allows.
     [run] therefore degrades to inline serial execution when called from
     inside a worker; worker-local state ([init]) still lands in this
     worker's domain-local storage, so nested queries reuse its caches. *)
  let in_worker_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

  let in_worker () = !(Domain.DLS.get in_worker_key)

  type t = {
    p_size : int;
    mutable p_workers : unit Domain.t list;
    p_mutex : Mutex.t;
    (* Serializes whole submissions: a daemon's client threads share one
       session pool, so [submit] must queue callers instead of interleaving
       epochs (the original single-caller contract). Held for the full
       publish-to-drain span of one job; [p_mutex] alone still protects the
       worker protocol state. *)
    p_submit_mutex : Mutex.t;
    p_work_cv : Condition.t;
    p_done_cv : Condition.t;
    mutable p_job : (int -> unit) option;
    mutable p_epoch : int;
    mutable p_pending : int;
    mutable p_closed : bool;
    mutable p_jobs : int;
  }

  let size t = t.p_size
  let jobs_run t = t.p_jobs

  let worker_loop t idx =
    Domain.DLS.get in_worker_key := true;
    let rec wait epoch =
      Mutex.lock t.p_mutex;
      while (not t.p_closed) && t.p_epoch = epoch do
        Condition.wait t.p_work_cv t.p_mutex
      done;
      (* A job published before (or racing with) shutdown must still run:
         the submitting caller is blocked until [p_pending] drains, so
         exiting on [p_closed] while a fresh epoch is pending would hang it
         forever — the signal-driven-shutdown-mid-request hang. Check the
         epoch first; exit only when closed with no undrained job. *)
      if t.p_epoch = epoch then Mutex.unlock t.p_mutex
      else begin
        let epoch = t.p_epoch in
        let job =
          match t.p_job with
          | Some j -> j
          | None -> assert false
        in
        Mutex.unlock t.p_mutex;
        (* belt and braces: [run]'s claim loop already catches task
           exceptions, so nothing should escape here — but a worker must
           survive anything. *)
        (try job idx with _ -> ());
        Mutex.lock t.p_mutex;
        t.p_pending <- t.p_pending - 1;
        if t.p_pending = 0 then Condition.broadcast t.p_done_cv;
        Mutex.unlock t.p_mutex;
        wait epoch
      end
    in
    wait 0

  (* Pools created anywhere are joined at process exit: an idle worker
     blocked on [p_work_cv] must not keep the runtime alive (or leak) when
     the main domain finishes. [shutdown] is idempotent, so an explicit
     shutdown followed by the at_exit sweep is fine. *)
  let all_pools : t list ref = ref []
  let all_mutex = Mutex.create ()

  (* Idempotent and safe under concurrent callers (signal-driven daemon
     shutdown racing the [at_exit] sweep, or two client threads): the worker
     list is swapped out under the mutex, so exactly one caller joins each
     worker — a second call finds an empty list and returns immediately.
     Workers drain any job already published before exiting (see
     [worker_loop]), so a shutdown racing an in-flight [run] never strands
     the submitter. Must not be called from inside a pool worker (a domain
     cannot join itself). *)
  let shutdown t =
    if in_worker () then
      invalid_arg "Par.Pool.shutdown: called from inside a pool worker";
    Mutex.lock t.p_mutex;
    let workers = t.p_workers in
    t.p_closed <- true;
    t.p_workers <- [];
    Condition.broadcast t.p_work_cv;
    Mutex.unlock t.p_mutex;
    List.iter Domain.join workers

  let () = at_exit (fun () -> List.iter shutdown !all_pools)

  let create ?domains () =
    let size =
      max 1
        (match domains with
        | Some d -> d
        | None -> default_domains ())
    in
    let t =
      { p_size = size; p_workers = []; p_mutex = Mutex.create ();
        p_submit_mutex = Mutex.create ();
        p_work_cv = Condition.create (); p_done_cv = Condition.create ();
        p_job = None; p_epoch = 0; p_pending = 0; p_closed = false; p_jobs = 0 }
    in
    t.p_workers <- List.init size (fun i -> Domain.spawn (fun () -> worker_loop t i));
    Mutex.lock all_mutex;
    all_pools := t :: !all_pools;
    Mutex.unlock all_mutex;
    t

  let closed t =
    Mutex.lock t.p_mutex;
    let c = t.p_closed in
    Mutex.unlock t.p_mutex;
    c

  (* Thread-safe: concurrent submitters queue on [p_submit_mutex] and run
     their jobs back to back (one job at a time remains the pool invariant —
     it is what makes worker-resident state coherent). A job that won the
     queue before shutdown flagged the pool still completes: workers drain
     published epochs before exiting. *)
  let submit t job =
    Mutex.lock t.p_submit_mutex;
    Mutex.lock t.p_mutex;
    if t.p_closed then begin
      Mutex.unlock t.p_mutex;
      Mutex.unlock t.p_submit_mutex;
      invalid_arg "Par.Pool: pool is shut down"
    end;
    t.p_job <- Some job;
    t.p_epoch <- t.p_epoch + 1;
    t.p_pending <- t.p_size;
    t.p_jobs <- t.p_jobs + 1;
    Condition.broadcast t.p_work_cv;
    while t.p_pending > 0 do
      Condition.wait t.p_done_cv t.p_mutex
    done;
    t.p_job <- None;
    Mutex.unlock t.p_mutex;
    Mutex.unlock t.p_submit_mutex

  let run_inline ~init f arr =
    if Array.length arr = 0 then [||]
    else begin
      let st = init () in
      Array.map (fun x -> f st x) arr
    end

  let run t ~init f arr =
    let n = Array.length arr in
    if n = 0 then [||]
    else if in_worker () then run_inline ~init f arr
    else begin
      let out = Array.make n None in
      let k = t.p_size in
      (* Stripe-affinity scheduling: worker [w] drains indices congruent to
         [w] (mod [k]) before stealing from other stripes. Repeat calls over
         the same array therefore route each index to the same worker, so
         worker-resident state built for a task (imported graphs, memo
         tables, hot BDD caches) is found again on the next call — dynamic
         claiming off a single shared counter would scatter tasks across
         workers and defeat that reuse. Stealing keeps skewed costs balanced:
         an idle worker takes over a slow worker's remaining stripe. *)
      let cursors = Array.init k (fun _ -> Atomic.make 0) in
      let claim w =
        let rec try_stripe d =
          if d >= k then None
          else begin
            let s = (w + d) mod k in
            let step = Atomic.fetch_and_add cursors.(s) 1 in
            let i = s + (step * k) in
            if i < n then Some i else try_stripe (d + 1)
          end
        in
        try_stripe 0
      in
      let failed = Atomic.make false in
      let err_mutex = Mutex.create () in
      let errors = ref [] in
      let job w =
        (* Claim an index before building worker-local state, so workers
           that never win a task never pay for [init]. *)
        let st = ref None in
        let rec loop () =
          if not (Atomic.get failed) then begin
            match claim w with
            | None -> ()
            | Some i ->
              (match
                 let s =
                   match !st with
                   | Some s -> s
                   | None ->
                     let s = init () in
                     st := Some s;
                     s
                 in
                 out.(i) <- Some (f s arr.(i))
               with
              | () -> ()
              | exception exn ->
                Mutex.lock err_mutex;
                errors := (i, exn) :: !errors;
                Mutex.unlock err_mutex;
                Atomic.set failed true);
              loop ()
          end
        in
        loop ()
      in
      submit t job;
      match !errors with
      | [] ->
        Array.map
          (function
            | Some v -> v
            | None -> assert false)
          out
      | (i0, e0) :: rest ->
        (* deterministic choice under races: the lowest-index failure wins *)
        let _, exn =
          List.fold_left
            (fun (bi, be) (i, e) -> if i < bi then (i, e) else (bi, be))
            (i0, e0) rest
        in
        raise exn
    end

  let broadcast t f =
    (* A broadcast needs every worker, including this one — blocking here
       would deadlock, and there is no meaningful inline fallback. *)
    if in_worker () then
      invalid_arg "Par.Pool.broadcast: called from inside a pool worker";
    let out = Array.make t.p_size None in
    submit t (fun idx ->
        match f idx with
        | v -> out.(idx) <- Some v
        | exception _ -> ());
    out
end

let map_dynamic_init ?pool ~domains ~init f arr =
  match pool with
  | Some p when not (Pool.closed p) -> Pool.run p ~init f arr
  | Some _ | None ->
    let n = Array.length arr in
    (* From inside a pool worker, never spawn a second tier of domains. *)
    if domains <= 1 || n < 2 || Pool.in_worker () then begin
      if n = 0 then [||]
      else begin
        let st = init () in
        Array.map (fun x -> f st x) arr
      end
    end
    else begin
      let out = Array.make n None in
      let next = Atomic.make 0 in
      let workers = min domains n in
      let run () =
        (* Claim an index before paying for worker-local state, so a worker
           that never wins a task never initializes (state setup — e.g.
           materializing a private BDD manager — can dwarf small task lists). *)
        let st = ref None in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let s =
              match !st with
              | Some s -> s
              | None ->
                let s = init () in
                st := Some s;
                s
            in
            (* Each index is claimed exactly once: no two domains write the
               same cell, and results land at their input index. *)
            out.(i) <- Some (f s arr.(i));
            loop ()
          end
        in
        loop ()
      in
      let spawned = List.init (workers - 1) (fun _ -> Domain.spawn run) in
      run ();
      List.iter Domain.join spawned;
      Array.map
        (function
          | Some v -> v
          | None -> assert false)
        out
    end

let map_dynamic ?pool ~domains f arr =
  map_dynamic_init ?pool ~domains ~init:(fun () -> ()) (fun () x -> f x) arr

let map ?pool ~domains f arr = map_dynamic ?pool ~domains f arr
