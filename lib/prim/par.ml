let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

let map_dynamic_init ~domains ~init f arr =
  let n = Array.length arr in
  if domains <= 1 || n < 2 then begin
    if n = 0 then [||]
    else begin
      let st = init () in
      Array.map (fun x -> f st x) arr
    end
  end
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let workers = min domains n in
    let run () =
      (* Claim an index before paying for worker-local state, so a worker
         that never wins a task never initializes (state setup — e.g.
         materializing a private BDD manager — can dwarf small task lists). *)
      let st = ref None in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let s =
            match !st with
            | Some s -> s
            | None ->
                let s = init () in
                st := Some s;
                s
          in
          (* Each index is claimed exactly once: no two domains write the
             same cell, and results land at their input index. *)
          out.(i) <- Some (f s arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn run) in
    run ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      out
  end

let map_dynamic ~domains f arr =
  map_dynamic_init ~domains ~init:(fun () -> ()) (fun () x -> f x) arr

let map ~domains f arr = map_dynamic ~domains f arr
