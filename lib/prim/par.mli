(** Deterministic parallel map over domains.

    Used to parallelize route exchange within a color class (§4.1.1: "we can
    also speed up the computation by introducing high levels of parallelism")
    and to fan independent symbolic queries across worker domains. Work is
    distributed dynamically: workers claim the next unclaimed index from a
    shared atomic counter, so skewed per-item cost (e.g. per-source SPF) does
    not idle fast workers the way static chunking does. Results are assembled
    in index order, so output is identical to the sequential map. *)

(** A persistent pool of worker domains. Spawning a domain and — far more
    costly — rebuilding worker-resident state (private BDD managers, imported
    forwarding graphs) per call inverted the sharded-verification speedup;
    a pool keeps the same domains alive for a whole session so domain-local
    caches stay warm across jobs. *)
module Pool : sig
  type t

  (** [create ?domains ()] spawns a pool of [domains] resident workers
      (default {!default_domains}). Workers idle on a condition variable
      between jobs. Every pool is registered for shutdown at process exit,
      but callers owning a pool should still call {!shutdown} when done. *)
  val create : ?domains:int -> unit -> t

  (** Number of worker domains in the pool. *)
  val size : t -> int

  (** Number of jobs the pool has executed so far. *)
  val jobs_run : t -> int

  (** [run t ~init f arr] is {!map_dynamic_init} executed on the pool's
      resident workers: lazy per-worker [init], results in index order.
      Claiming is stripe-affine: worker [w] drains indices congruent to [w]
      (mod pool size) before stealing from other stripes, so repeated runs
      over the same array send each index to the same worker and find that
      worker's resident state (imported graphs, memo tables, hot BDD caches)
      warm, while stealing still balances skewed per-task costs. If any task
      raises, the whole job still drains (workers stop claiming new tasks),
      the pool stays usable — stripe cursors are per-call, so nothing leaks
      into the next job — and the exception of the lowest failing recorded
      index is re-raised in the caller. Called from inside a pool worker
      (a task that re-enters its own pool), [run] executes inline and
      serially in that worker instead of deadlocking on [submit].

      Thread-safe: concurrent callers (a daemon's client threads sharing one
      session pool) queue and run their jobs back to back — one job at a
      time remains the pool invariant. *)
  val run : t -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a array -> 'b array

  (** True when the calling domain is a pool worker (any pool). Nested
      parallel entry points use this to degrade to serial execution. *)
  val in_worker : unit -> bool

  (** [broadcast t f] runs [f worker_index] exactly once on each resident
      worker and returns the results indexed by worker. A worker whose call
      raises yields [None]. Used to collect per-worker (domain-local) stats
      such as cached-graph BDD cache occupancy. Raises [Invalid_argument]
      when called from inside a pool worker (it would deadlock waiting for
      itself). *)
  val broadcast : t -> (int -> 'a) -> 'a option array

  (** [shutdown t] stops and joins all workers. Idempotent and safe under
      concurrent callers (each worker is joined exactly once, by whichever
      caller swapped out the worker list); a shutdown racing an in-flight
      {!run} lets the published job drain first, so the submitter is never
      stranded. [run] and [broadcast] on a shut-down pool raise
      [Invalid_argument], as does [shutdown] from inside a pool worker. *)
  val shutdown : t -> unit

  (** [closed t] is true once {!shutdown} has been called. *)
  val closed : t -> bool
end

(** [map ~domains f arr] applies [f] to every element, using up to [domains]
    worker domains ([domains <= 1] runs sequentially). If [?pool] is given
    (and not shut down) the job runs on the pool's resident workers and
    [domains] is ignored. *)
val map : ?pool:Pool.t -> domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_dynamic] is {!map}: work-stealing distribution, index-ordered
    results. Exposed under its own name for call sites that want to insist on
    the dynamic scheduler. *)
val map_dynamic :
  ?pool:Pool.t -> domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_dynamic_init ~domains ~init f arr] is {!map_dynamic} where each
    worker domain lazily builds private state with [init] before its first
    task and threads it through every task it claims ([f state x]). Use this
    to give each worker an expensive private resource (e.g. its own BDD
    manager) amortized across the tasks it wins. [init] runs at most once per
    worker and never runs in workers that claim no task. With [domains <= 1]
    everything runs in the calling domain with a single [init]. With [?pool],
    the job runs on the pool's resident workers instead of spawning. *)
val map_dynamic_init :
  ?pool:Pool.t ->
  domains:int -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a array -> 'b array

(** Recommended worker count for this machine. *)
val default_domains : unit -> int
