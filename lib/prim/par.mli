(** Deterministic parallel map over domains.

    Used to parallelize route exchange within a color class (§4.1.1: "we can
    also speed up the computation by introducing high levels of parallelism")
    and to fan independent symbolic queries across worker domains. Work is
    distributed dynamically: workers claim the next unclaimed index from a
    shared atomic counter, so skewed per-item cost (e.g. per-source SPF) does
    not idle fast workers the way static chunking does. Results are assembled
    in index order, so output is identical to the sequential map. *)

(** [map ~domains f arr] applies [f] to every element, using up to [domains]
    worker domains ([domains <= 1] runs sequentially). *)
val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_dynamic] is {!map}: work-stealing distribution, index-ordered
    results. Exposed under its own name for call sites that want to insist on
    the dynamic scheduler. *)
val map_dynamic : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_dynamic_init ~domains ~init f arr] is {!map_dynamic} where each
    worker domain lazily builds private state with [init] before its first
    task and threads it through every task it claims ([f state x]). Use this
    to give each worker an expensive private resource (e.g. its own BDD
    manager) amortized across the tasks it wins. [init] runs at most once per
    worker and never runs in workers that claim no task. With [domains <= 1]
    everything runs in the calling domain with a single [init]. *)
val map_dynamic_init :
  domains:int -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a array -> 'b array

(** Recommended worker count for this machine. *)
val default_domains : unit -> int
