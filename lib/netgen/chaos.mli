(** Deterministic chaos harness: seeded fault injection for generated
    networks.

    Mutators corrupt a {!Netgen.network}'s configuration text the way real
    operator input breaks — truncated transfers, corrupted or duplicated
    lines, binary garbage, duplicated hostnames — while the {!Rng} seed keeps
    every run reproducible. The chaos property test asserts that the pipeline
    turns all of it into structured diagnostics, never exceptions. *)

type mutation = {
  mut_kind : string;  (** one of {!kinds} *)
  mut_files : string list;  (** every file whose content the mutation touched *)
  mut_detail : string;
}

(** ["truncate"], ["corrupt-line"], ["delete-line"], ["duplicate-line"],
    ["garbage-bytes"], ["empty-file"], ["binary-blob"],
    ["duplicate-hostname"]. *)
val kinds : string list

(** [mutate_text ~rng ~kind text] applies one file-level mutation; [None]
    when the mutation does not apply (e.g. truncating an empty file).
    @raise Invalid_argument on an unknown [kind] (["duplicate-hostname"] is
    network-level only). *)
val mutate_text : rng:Rng.t -> kind:string -> string -> string option

(** [mutate_network ~rng ~mutations net] applies [mutations] (default 1)
    randomly chosen mutations to randomly chosen files, returning the mutated
    network and what was done to it. *)
val mutate_network :
  rng:Rng.t -> ?mutations:int -> Netgen.network -> Netgen.network * mutation list

(** All files touched by a list of mutations, deduplicated. *)
val affected_files : mutation list -> string list

(** {2 Semantic single-file edits}

    Seeded edits that keep the file parseable — the CI-style changes the
    incremental engine ({!Batfish.update}) is exercised against. *)

(** ["drop-bgp-neighbor"], ["toggle-shutdown"], ["add-acl-line"],
    ["remove-acl-line"], ["add-loopback"], ["comment-edit"] (cosmetic: text
    changes, derived model does not). *)
val semantic_kinds : string list

(** [semantic_edit ~rng ~kind text] applies one semantic edit; [None] when
    the edit does not apply (e.g. no ACL to touch).
    Returns [(new_text, human detail)].
    @raise Invalid_argument on an unknown [kind]. *)
val semantic_edit : rng:Rng.t -> kind:string -> string -> (string * string) option

(** One random applicable semantic edit on one random file; [None] only if no
    kind applies to the chosen file (practically never for generated
    configs). *)
val semantic_edit_network :
  rng:Rng.t -> Netgen.network -> (Netgen.network * mutation) option
