type network = {
  n_name : string;
  n_type : string;
  n_configs : (string * string) list;
  n_env : Dp_env.t;
}

let device_count n = List.length n.n_configs

let config_lines n =
  List.fold_left
    (fun acc (_, text) -> acc + List.length (String.split_on_char '\n' text))
    0 n.n_configs

(* --- address allocation --- *)

type alloc = { mutable links : int; mutable loops : int; mutable subnets : int; mutable ext : int }

let alloc () = { links = 0; loops = 0; subnets = 0; ext = 0 }

(* /30 point-to-point links out of 10.192.0.0/10 *)
let new_link a =
  let k = a.links in
  a.links <- k + 1;
  let base = Ipv4.of_octets 10 192 0 0 + (k * 4) in
  (base + 1, base + 2)

let new_loopback a =
  let k = a.loops in
  a.loops <- k + 1;
  Ipv4.of_octets 10 255 0 0 + k

(* /24 host subnets out of 172.16.0.0/12; returns the gateway address *)
let new_subnet a =
  let k = a.subnets in
  a.subnets <- k + 1;
  Ipv4.of_octets 172 16 0 0 + (k * 256) + 1

(* /24 externally announced prefixes out of 193.0.0.0/8 *)
let new_ext_prefix a =
  let k = a.ext in
  a.ext <- k + 1;
  Prefix.make (Ipv4.of_octets 193 0 0 0 + (k * 256)) 24

let subnet_of gw = Prefix.make gw 24
let s = Printf.sprintf

(* --- IOS emission --- *)

let mask_str len = Ipv4.to_string (Prefix.mask (Prefix.make 0 len))

let ios_iface ?desc ?cost ?area ?in_acl ?out_acl ?zone name ip len =
  [ s "interface %s" name ]
  @ (match desc with
     | Some d -> [ s " description %s" d ]
     | None -> [])
  @ [ s " ip address %s %s" (Ipv4.to_string ip) (mask_str len) ]
  @ (match cost with
     | Some c -> [ s " ip ospf cost %d" c ]
     | None -> [])
  @ (match area with
     | Some ar -> [ s " ip ospf 1 area %d" ar ]
     | None -> [])
  @ (match in_acl with
     | Some acl -> [ s " ip access-group %s in" acl ]
     | None -> [])
  @ (match out_acl with
     | Some acl -> [ s " ip access-group %s out" acl ]
     | None -> [])
  @ (match zone with
     | Some z -> [ s " zone-member security %s" z ]
     | None -> [])
  @ [ " no shutdown"; "!" ]

let ios_device ?(arista = false) ~name parts =
  let body = List.concat parts in
  let header =
    if arista then [ "! Arista vEOS"; s "hostname %s" name; "!" ]
    else [ s "hostname %s" name; "!" ]
  in
  (s "%s.cfg" name, String.concat "\n" (header @ body @ [ "end"; "" ]))

let mgmt =
  [ "ntp server 10.255.255.1"; "ntp server 10.255.255.2";
    "ip name-server 10.255.255.53"; "logging host 10.255.255.99";
    "snmp-server community netops RO"; "!" ]

(* --- Junos emission --- *)

let jun_device ~name parts =
  let body = List.concat parts in
  ( s "%s.cfg" name,
    String.concat "\n"
      ([ s "set system host-name %s" name;
         "set system ntp server 10.255.255.1";
         "set system ntp server 10.255.255.2";
         "set system name-server 10.255.255.53";
         "set system syslog host 10.255.255.99 any";
         "set snmp community netops" ]
      @ body @ [ "" ]) )

let jun_iface ?cost ?area ?passive name ip len =
  [ s "set interfaces %s unit 0 family inet address %s/%d" name (Ipv4.to_string ip) len ]
  @ (match area with
     | Some ar ->
       [ s "set protocols ospf area %d interface %s%s" ar name
           (match cost with
            | Some c -> s " metric %d" c
            | None -> "") ]
       @ (if passive = Some true then [ s "set protocols ospf area %d interface %s passive" ar name ] else [])
     | None -> [])

(* ======================= leaf-spine fabrics ======================= *)

(* Internal builder shared by clos/clos3/paired_dc. Every leaf gets a host
   subnet and an anti-spoofing edge ACL; everything speaks eBGP with ECMP. *)
let clos_core ~a ~prefix ~spines ~leaves ~spine_as ~leaf_as () =
  let spine_names = List.init spines (fun i -> s "%s-spine%d" prefix (i + 1)) in
  let leaf_names = List.init leaves (fun i -> s "%s-leaf%d" prefix (i + 1)) in
  (* links.(l).(sp) = (leaf ip, spine ip) *)
  let links = Array.init leaves (fun _ -> Array.init spines (fun _ -> new_link a)) in
  let subnets = Array.init leaves (fun _ -> new_subnet a) in
  let leaf_devices =
    List.mapi
      (fun l name ->
        let lan_gw = subnets.(l) in
        let acl =
          [ "ip access-list extended EDGE_IN";
            s " 10 permit ip %s 0.0.0.255 any" (Ipv4.to_string (Prefix.network (subnet_of lan_gw)));
            " 20 deny ip any any"; "!" ]
        in
        let ifaces =
          ios_iface ~desc:"host subnet" ~in_acl:"EDGE_IN" "Vlan100" lan_gw 24
          @ List.concat
              (List.mapi
                 (fun sp (lip, _) ->
                   ios_iface ~desc:(s "to %s" (List.nth spine_names sp))
                     (s "Ethernet%d" (sp + 1)) lip 30)
                 (Array.to_list links.(l)))
        in
        let bgp =
          [ s "router bgp %d" (leaf_as l);
            s " bgp router-id %s" (Ipv4.to_string lan_gw) ]
          @ List.concat
              (List.mapi
                 (fun _sp (_, sip) ->
                   [ s " neighbor %s remote-as %d" (Ipv4.to_string sip) spine_as ])
                 (Array.to_list links.(l)))
          @ [ s " network %s mask 255.255.255.0" (Ipv4.to_string (Prefix.network (subnet_of lan_gw)));
              " maximum-paths 16"; "!" ]
        in
        ios_device ~name [ mgmt; acl; ifaces; bgp ])
      leaf_names
  in
  let spine_devices =
    List.mapi
      (fun sp name ->
        let ifaces =
          List.concat
            (List.mapi
               (fun l row ->
                 let _, sip = row.(sp) in
                 ios_iface ~desc:(s "to %s" (List.nth leaf_names l))
                   (s "Ethernet%d" (l + 1)) sip 30)
               (Array.to_list links))
        in
        let bgp =
          [ s "router bgp %d" spine_as;
            s " bgp router-id %s" (Ipv4.to_string (snd links.(0).(sp))) ]
          @ List.concat
              (List.mapi
                 (fun l row ->
                   let lip, _ = row.(sp) in
                   [ s " neighbor %s remote-as %d" (Ipv4.to_string lip) (leaf_as l) ])
                 (Array.to_list links))
          @ [ " maximum-paths 16"; "!" ]
        in
        ios_device ~arista:true ~name [ mgmt; ifaces; bgp ])
      spine_names
  in
  (spine_devices @ leaf_devices, spine_names, Array.to_list subnets)

let clos ~name ~spines ~leaves () =
  let a = alloc () in
  let devices, _, _ =
    clos_core ~a ~prefix:name ~spines ~leaves ~spine_as:64512
      ~leaf_as:(fun l -> 65001 + l)
      ()
  in
  { n_name = name; n_type = "DC"; n_configs = devices; n_env = Dp_env.empty }

let clos3 ~name ~pods ~pod_spines ~pod_leaves ~superspines () =
  let a = alloc () in
  let ss_names = List.init superspines (fun i -> s "%s-ss%d" name (i + 1)) in
  let ss_as = 64496 in
  let pod_results =
    List.init pods (fun p ->
        clos_core ~a ~prefix:(s "%s-p%d" name (p + 1)) ~spines:pod_spines
          ~leaves:pod_leaves ~spine_as:(64512 + p)
          ~leaf_as:(fun l -> 65001 + (p * 100) + l)
          ())
  in
  (* superspine <-> pod-spine links; emitted as extra config text appended to
     the pod spine configs *)
  let ss_ifaces = Array.make superspines [] in
  let ss_nbrs = Array.make superspines [] in
  let ss_iface_count = Array.make superspines 0 in
  let pod_devices =
    List.concat
      (List.mapi
         (fun p (devices, spine_names, _) ->
           List.map
             (fun (fname, text) ->
               let dev_name = Filename.remove_extension fname in
               match
                 List.find_opt (fun sn -> sn = dev_name) spine_names
               with
               | None -> (fname, text)
               | Some _ ->
                 (* link this pod spine to every superspine *)
                 let extra =
                   List.concat
                     (List.mapi
                        (fun k ss_name ->
                          let pip, ssip = new_link a in
                          ss_iface_count.(k) <- ss_iface_count.(k) + 1;
                          ss_ifaces.(k) <-
                            ss_ifaces.(k)
                            @ ios_iface ~desc:(s "to %s" dev_name)
                                (s "Ethernet%d" ss_iface_count.(k))
                                ssip 30;
                          ss_nbrs.(k) <-
                            ss_nbrs.(k) @ [ s " neighbor %s remote-as %d" (Ipv4.to_string pip) (64512 + p) ];
                          ios_iface ~desc:(s "to %s" ss_name)
                            (s "Uplink%d" (k + 1)) pip 30
                          @ [ s "router bgp %d" (64512 + p);
                              s " neighbor %s remote-as %d" (Ipv4.to_string ssip) ss_as; "!" ])
                        ss_names)
                 in
                 (fname, text ^ "\n" ^ String.concat "\n" extra ^ "\n"))
             devices)
         pod_results)
  in
  let ss_devices =
    List.mapi
      (fun k ss_name ->
        ios_device ~arista:true ~name:ss_name
          [ mgmt; ss_ifaces.(k);
            [ s "router bgp %d" ss_as ] @ ss_nbrs.(k) @ [ " maximum-paths 16"; "!" ] ])
      ss_names
  in
  { n_name = name; n_type = "DC (3-tier)"; n_configs = ss_devices @ pod_devices;
    n_env = Dp_env.empty }

(* ======================= enterprise ======================= *)

let enterprise ~name ~sites () =
  let a = alloc () in
  let asn = 65000 in
  let core_lo = [| new_loopback a; new_loopback a |] in
  let core_names = [| s "%s-core1" name; s "%s-core2" name |] in
  let core_link = new_link a in
  (* per-site: links to both cores *)
  let site_links = Array.init sites (fun _ -> (new_link a, new_link a)) in
  let site_lo = Array.init sites (fun _ -> new_loopback a) in
  let site_subnets = Array.init sites (fun _ -> (new_subnet a, new_subnet a)) in
  let border_links = Array.init 2 (fun _ -> (new_link a, new_link a)) in
  let border_lo = [| new_loopback a; new_loopback a |] in
  let isp_links = [| new_link a; new_link a |] in
  let fw_link = new_link a in
  let dmz_gw = Ipv4.of_octets 172 31 1 1 in
  let ibgp_clients =
    Array.to_list (Array.map Ipv4.to_string site_lo)
    @ Array.to_list (Array.map Ipv4.to_string border_lo)
  in
  let policies =
    [ "ip prefix-list OUR_NETS seq 5 permit 172.16.0.0/12 le 24";
      "ip prefix-list OUR_NETS seq 10 permit 172.31.0.0/16 le 24";
      "ip community-list standard SITE_ROUTES permit 65000:100";
      "route-map TO_ISP permit 10";
      " match ip address prefix-list OUR_NETS";
      "route-map TO_ISP deny 20";
      "!" ]
  in
  let cores =
    List.init 2 (fun c ->
        let other = 1 - c in
        let my_end (x, y) = if c = 0 then x else y in
        let ifaces =
          ios_iface ~cost:1 ~area:0 "Loopback0" core_lo.(c) 32
          @ ios_iface ~desc:(s "to %s" core_names.(other)) ~cost:5 ~area:0 "Ethernet1"
              (my_end core_link) 30
          @ List.concat
              (List.init sites (fun i ->
                   let l1, l2 = site_links.(i) in
                   let link = if c = 0 then l1 else l2 in
                   ios_iface ~desc:(s "to site %d" (i + 1)) ~cost:10 ~area:0
                     (s "Ethernet%d" (i + 2))
                     (fst link) 30))
          @ List.concat
              (List.init 2 (fun b ->
                   let l1, l2 = border_links.(b) in
                   let link = if c = 0 then l1 else l2 in
                   if c = b || sites = 0 then
                     ios_iface ~desc:(s "to border%d" (b + 1)) ~cost:10 ~area:0
                       (s "Ethernet%d" (sites + 2 + b))
                       (fst link) 30
                   else
                     ios_iface ~desc:(s "to border%d" (b + 1)) ~cost:10 ~area:0
                       (s "Ethernet%d" (sites + 2 + b))
                       (fst link) 30))
          @ (if c = 0 then
               ios_iface ~desc:"to firewall" ~cost:10 ~area:0 "Ethernet99" (fst fw_link) 30
             else [])
        in
        let statics =
          if c = 0 then
            [ s "ip route 172.31.1.0 255.255.255.0 %s" (Ipv4.to_string (snd fw_link)); "!" ]
          else []
        in
        let ospf =
          [ "router ospf 1";
            s " router-id %s" (Ipv4.to_string core_lo.(c));
            " passive-interface Loopback0" ]
          @ (if c = 0 then [ " redistribute static metric 20 subnets" ] else [])
          @ [ " maximum-paths 4"; "!" ]
        in
        let bgp =
          [ s "router bgp %d" asn;
            s " bgp router-id %s" (Ipv4.to_string core_lo.(c));
            s " bgp cluster-id %s" (Ipv4.to_string core_lo.(c)) ]
          @ List.concat_map
              (fun peer ->
                [ s " neighbor %s remote-as %d" peer asn;
                  s " neighbor %s update-source Loopback0" peer;
                  s " neighbor %s route-reflector-client" peer;
                  s " neighbor %s send-community" peer ])
              ibgp_clients
          @ [ s " neighbor %s remote-as %d" (Ipv4.to_string core_lo.(other)) asn;
              s " neighbor %s update-source Loopback0" (Ipv4.to_string core_lo.(other));
              " maximum-paths ibgp 4"; "!" ]
        in
        ios_device ~name:core_names.(c) [ mgmt; ifaces; statics; ospf; bgp ])
  in
  let dists =
    List.init sites (fun i ->
        let dist_name = s "%s-dist%d" name (i + 1) in
        let l1, l2 = site_links.(i) in
        let sn1, sn2 = site_subnets.(i) in
        let area = i + 1 in
        if i = sites - 1 && sites > 1 then
          (* the Junos site *)
          jun_device ~name:dist_name
            [ jun_iface ~cost:1 ~area:0 ~passive:true "lo0" site_lo.(i) 32;
              jun_iface ~cost:10 ~area:0 "ge-0/0/0" (snd l1) 30;
              jun_iface ~cost:10 ~area:0 "ge-0/0/1" (snd l2) 30;
              jun_iface ~area ~passive:true "ge-0/1/0" sn1 24;
              jun_iface ~area ~passive:true "ge-0/1/1" sn2 24;
              [ s "set routing-options autonomous-system %d" asn;
                s "set routing-options router-id %s" (Ipv4.to_string site_lo.(i));
                "set protocols bgp group ibgp type internal";
                s "set protocols bgp group ibgp neighbor %s" (Ipv4.to_string core_lo.(0));
                s "set protocols bgp group ibgp neighbor %s" (Ipv4.to_string core_lo.(1));
                "set protocols bgp group ibgp export REDIST_CONN";
                s "set policy-options prefix-list SITE_NETS %s"
                  (Prefix.to_string (subnet_of sn1));
                s "set policy-options prefix-list SITE_NETS %s"
                  (Prefix.to_string (subnet_of sn2));
                "set policy-options community SITE_COMM members 65000:100";
                "set policy-options policy-statement REDIST_CONN term conn from protocol direct";
                "set policy-options policy-statement REDIST_CONN term conn from prefix-list SITE_NETS";
                "set policy-options policy-statement REDIST_CONN term conn then community add SITE_COMM";
                "set policy-options policy-statement REDIST_CONN term conn then next-hop self";
                "set policy-options policy-statement REDIST_CONN term conn then accept";
                "set policy-options policy-statement REDIST_CONN term rest then reject" ] ]
        else
          let conn_map =
            [ s "ip prefix-list SITE_NETS seq 5 permit %s" (Prefix.to_string (subnet_of sn1));
              s "ip prefix-list SITE_NETS seq 10 permit %s" (Prefix.to_string (subnet_of sn2));
              "route-map CONN_TO_BGP permit 10";
              " match ip address prefix-list SITE_NETS";
              " set community 65000:100";
              "route-map CONN_TO_BGP deny 20";
              "!" ]
          in
          let ifaces =
            ios_iface ~cost:1 ~area:0 "Loopback0" site_lo.(i) 32
            @ ios_iface ~desc:"to core1" ~cost:10 ~area:0 "Ethernet1" (snd l1) 30
            @ ios_iface ~desc:"to core2" ~cost:10 ~area:0 "Ethernet2" (snd l2) 30
            @ ios_iface ~desc:"users" ~cost:10 ~area "Vlan10" sn1 24
            @ ios_iface ~desc:"voice" ~cost:10 ~area "Vlan20" sn2 24
          in
          let ospf =
            [ "router ospf 1"; s " router-id %s" (Ipv4.to_string site_lo.(i));
              " passive-interface Loopback0"; " passive-interface Vlan10";
              " passive-interface Vlan20"; " maximum-paths 4"; "!" ]
          in
          let bgp =
            [ s "router bgp %d" asn;
              s " bgp router-id %s" (Ipv4.to_string site_lo.(i)) ]
            @ List.concat_map
                (fun core ->
                  [ s " neighbor %s remote-as %d" core asn;
                    s " neighbor %s update-source Loopback0" core;
                    s " neighbor %s send-community" core;
                    s " neighbor %s next-hop-self" core ])
                [ Ipv4.to_string core_lo.(0); Ipv4.to_string core_lo.(1) ]
            @ [ " redistribute connected route-map CONN_TO_BGP"; " maximum-paths ibgp 4"; "!" ]
          in
          ios_device ~name:dist_name [ mgmt; conn_map; ifaces; ospf; bgp ])
  in
  let isp_as = [| 64701; 64702 |] in
  let borders =
    List.init 2 (fun bI ->
        let border_name = s "%s-border%d" name (bI + 1) in
        let l1, l2 = border_links.(bI) in
        let isp_me, isp_peer = isp_links.(bI) in
        let from_isp =
          [ "ip access-list extended FROM_ISP";
            " 10 deny ip 172.16.0.0 0.15.255.255 any";
            " 20 permit tcp any any established";
            " 30 permit icmp any any";
            " 40 permit tcp any 172.31.1.0 0.0.0.255 eq 80";
            " 50 permit tcp any 172.31.1.0 0.0.0.255 eq 443";
            " 60 permit udp any any eq 53";
            " 70 deny ip any any";
            "!";
            "ip access-list extended PRIVATE_SRC";
            " 10 permit ip 172.16.0.0 0.15.255.255 any";
            "!";
            "route-map FROM_ISP_IN permit 10";
            s " set local-preference %d" (if bI = 0 then 120 else 80);
            s " set community 65000:%d additive" (701 + bI);
            "!" ]
        in
        let nat =
          if bI = 0 then
            [ "ip nat pool INET_POOL 198.51.100.1 198.51.100.254 prefix-length 24";
              "ip nat inside source list PRIVATE_SRC pool INET_POOL overload"; "!" ]
          else []
        in
        let ifaces =
          ios_iface ~cost:1 ~area:0 "Loopback0" border_lo.(bI) 32
          @ ios_iface ~desc:"to core1" ~cost:10 ~area:0 "Ethernet1" (snd l1) 30
          @ ios_iface ~desc:"to core2" ~cost:10 ~area:0 "Ethernet2" (snd l2) 30
          @ ios_iface ~desc:"to ISP" ~in_acl:"FROM_ISP" "Ethernet3" isp_me 30
        in
        let ospf =
          [ "router ospf 1"; s " router-id %s" (Ipv4.to_string border_lo.(bI));
            " passive-interface Loopback0"; " maximum-paths 4"; "!" ]
        in
        let bgp =
          [ s "router bgp %d" asn;
            s " bgp router-id %s" (Ipv4.to_string border_lo.(bI));
            s " neighbor %s remote-as %d" (Ipv4.to_string isp_peer) isp_as.(bI);
            s " neighbor %s route-map FROM_ISP_IN in" (Ipv4.to_string isp_peer);
            s " neighbor %s route-map TO_ISP out" (Ipv4.to_string isp_peer) ]
          @ List.concat_map
              (fun core ->
                [ s " neighbor %s remote-as %d" core asn;
                  s " neighbor %s update-source Loopback0" core;
                  s " neighbor %s send-community" core;
                  s " neighbor %s next-hop-self" core ])
              [ Ipv4.to_string core_lo.(0); Ipv4.to_string core_lo.(1) ]
          @ [ " maximum-paths ibgp 4"; "!" ]
        in
        ios_device ~name:border_name [ mgmt; from_isp; policies; nat; ifaces; ospf; bgp ])
  in
  let firewall =
    let ifaces =
      ios_iface ~desc:"to core1" ~zone:"TRUST" "Ethernet1" (snd fw_link) 30
      @ ios_iface ~desc:"dmz" ~zone:"DMZ" "Ethernet2" dmz_gw 24
    in
    let zones =
      [ "zone security TRUST"; "zone security DMZ";
        "zone-pair security source TRUST destination DMZ acl TO_DMZ";
        "zone-pair security source DMZ destination TRUST acl FROM_DMZ";
        "ip access-list extended TO_DMZ";
        " 10 permit tcp any 172.31.1.0 0.0.0.255 eq 80";
        " 20 permit tcp any 172.31.1.0 0.0.0.255 eq 443";
        " 30 permit icmp any any";
        " 40 deny ip any any";
        "ip access-list extended FROM_DMZ";
        " 10 permit tcp any any established";
        " 20 permit udp 172.31.1.0 0.0.0.255 any eq 53";
        " 30 deny ip any any";
        "!" ]
    in
    let statics =
      [ s "ip route 0.0.0.0 0.0.0.0 %s" (Ipv4.to_string (fst fw_link)); "!" ]
    in
    ios_device ~name:(s "%s-fw1" name) [ mgmt; zones; ifaces; statics ]
  in
  let env =
    Dp_env.make
      (List.init 2 (fun bI ->
           let _, isp_peer = isp_links.(bI) in
           Dp_env.peer ~ip:isp_peer ~asn:isp_as.(bI)
             (Dp_env.announce ~path:[ isp_as.(bI) ] (Prefix.of_string "0.0.0.0/0")
             :: List.init 20 (fun _ ->
                    Dp_env.announce ~path:[ isp_as.(bI); 3356 ] (new_ext_prefix a)))))
  in
  { n_name = name; n_type = "enterprise"; n_configs = cores @ dists @ borders @ [ firewall ];
    n_env = env }

(* ======================= WAN ======================= *)

let wan ~name ~pops () =
  let a = alloc () in
  let asn = 65100 in
  let lo = Array.init pops (fun _ -> new_loopback a) in
  let names = Array.init pops (fun i -> s "%s-p%d" name i) in
  (* ring plus chords every 4 hops *)
  let edges = ref [] in
  for i = 0 to pops - 1 do
    edges := (i, (i + 1) mod pops, new_link a) :: !edges
  done;
  if pops > 6 then
    for i = 0 to (pops / 4) - 1 do
      let u = i * 4 and v = ((i * 4) + (pops / 2)) mod pops in
      if u <> v && (u + 1) mod pops <> v && (v + 1) mod pops <> u then
        edges := (u, v, new_link a) :: !edges
    done;
  let edges = List.rev !edges in
  let rr = [ 0; min 1 (pops - 1) ] in
  let customers =
    List.init pops (fun i ->
        if i mod 3 = 0 then Some (new_link a, 64800 + i, [ new_ext_prefix a; new_ext_prefix a ])
        else None)
  in
  let devices =
    List.init pops (fun i ->
        let my_edges =
          List.filter_map
            (fun (u, v, (uip, vip)) ->
              if u = i then Some (v, uip)
              else if v = i then Some (u, vip)
              else None)
            edges
        in
        let ifaces =
          ios_iface ~cost:1 ~area:0 "Loopback0" lo.(i) 32
          @ List.concat
              (List.mapi
                 (fun k (peer, ip) ->
                   ios_iface ~desc:(s "to %s" names.(peer)) ~cost:10 ~area:0
                     (s "Ethernet%d" (k + 1)) ip 30)
                 my_edges)
          @ (match List.nth customers i with
             | Some ((me, _), _, _) ->
               ios_iface ~desc:"customer" (s "Ethernet%d" (List.length my_edges + 1)) me 30
             | None -> [])
        in
        let policy =
          [ "ip community-list standard CUSTOMER permit 65100:200";
            "route-map CUST_IN permit 10";
            " set community 65100:200 additive";
            " set local-preference 110";
            "route-map CUST_OUT permit 10";
            " match community CUSTOMER";
            "route-map CUST_OUT deny 20"; "!" ]
        in
        let ospf =
          [ "router ospf 1"; s " router-id %s" (Ipv4.to_string lo.(i));
            " passive-interface Loopback0"; " maximum-paths 4"; "!" ]
        in
        let ibgp_peers =
          if List.mem i rr then List.filter (fun j -> j <> i) (List.init pops Fun.id)
          else List.filter (fun j -> j <> i) rr
        in
        let bgp =
          [ s "router bgp %d" asn; s " bgp router-id %s" (Ipv4.to_string lo.(i)) ]
          @ (if List.mem i rr then [ s " bgp cluster-id %s" (Ipv4.to_string lo.(i)) ] else [])
          @ List.concat_map
              (fun j ->
                [ s " neighbor %s remote-as %d" (Ipv4.to_string lo.(j)) asn;
                  s " neighbor %s update-source Loopback0" (Ipv4.to_string lo.(j));
                  s " neighbor %s send-community" (Ipv4.to_string lo.(j)) ]
                @ (if List.nth customers i <> None then
                     [ s " neighbor %s next-hop-self" (Ipv4.to_string lo.(j)) ]
                   else [])
                @
                if List.mem i rr && not (List.mem j rr) then
                  [ s " neighbor %s route-reflector-client" (Ipv4.to_string lo.(j)) ]
                else [])
              ibgp_peers
          @ (match List.nth customers i with
             | Some ((_, cust_ip), cust_as, _) ->
               [ s " neighbor %s remote-as %d" (Ipv4.to_string cust_ip) cust_as;
                 s " neighbor %s route-map CUST_IN in" (Ipv4.to_string cust_ip);
                 s " neighbor %s route-map CUST_OUT out" (Ipv4.to_string cust_ip) ]
             | None -> [])
          @ [ " maximum-paths ibgp 4"; "!" ]
        in
        ios_device ~name:names.(i) [ mgmt; policy; ifaces; ospf; bgp ])
  in
  let env =
    Dp_env.make
      (List.filter_map
         (fun c ->
           match c with
           | Some ((_, cust_ip), cust_as, prefixes ) ->
             Some
               (Dp_env.peer ~ip:cust_ip ~asn:cust_as
                  (List.map (fun p -> Dp_env.announce ~path:[ cust_as ] p) prefixes))
           | None -> None)
         customers)
  in
  { n_name = name; n_type = "WAN"; n_configs = devices; n_env = env }

(* ======================= campus ======================= *)

let campus ~name ~buildings () =
  let a = alloc () in
  let core_lo = [| new_loopback a; new_loopback a |] in
  let core_names = [| s "%s-core1" name; s "%s-core2" name |] in
  let core_link = new_link a in
  let bldg_links = Array.init buildings (fun _ -> (new_link a, new_link a)) in
  let bldg_subnets = Array.init buildings (fun _ -> (new_subnet a, new_subnet a)) in
  let server_net = Ipv4.of_octets 172 30 0 0 in
  let cores =
    List.init 2 (fun c ->
        let ifaces =
          ios_iface ~cost:1 ~area:0 "Loopback0" core_lo.(c) 32
          @ ios_iface ~desc:"core interlink" ~cost:5 ~area:0 "Ethernet1"
              ((if c = 0 then fst else snd) core_link) 30
          @ List.concat
              (List.init buildings (fun i ->
                   let l1, l2 = bldg_links.(i) in
                   (* core side is in the building's area: cores are ABRs *)
                   ios_iface ~desc:(s "to building %d" (i + 1)) ~cost:10 ~area:(i + 1)
                     (s "Ethernet%d" (i + 2))
                     (fst (if c = 0 then l1 else l2))
                     30))
          @ (if c = 0 then
               ios_iface ~desc:"server farm" ~cost:10 ~area:0 "Vlan30" (server_net + 1) 24
             else [])
        in
        let ospf =
          [ "router ospf 1"; s " router-id %s" (Ipv4.to_string core_lo.(c));
            " passive-interface Loopback0";
            " redistribute static metric 10 metric-type 1 subnets";
            " maximum-paths 4"; "!" ]
        in
        let statics =
          if c = 0 then
            [ s "ip route 172.30.9.0 255.255.255.0 %s" (Ipv4.to_string (server_net + 10)); "!" ]
          else []
        in
        ios_device ~name:core_names.(c) [ mgmt; ifaces; statics; ospf ])
  in
  let bldgs =
    List.init buildings (fun i ->
        let bname = s "%s-b%d" name (i + 1) in
        let l1, l2 = bldg_links.(i) in
        let sn1, sn2 = bldg_subnets.(i) in
        let area = i + 1 in
        if i mod 4 = 3 then
          jun_device ~name:bname
            [ jun_iface ~cost:10 ~area "ge-0/0/0" (snd l1) 30;
              jun_iface ~cost:10 ~area "ge-0/0/1" (snd l2) 30;
              jun_iface ~area ~passive:true "ge-0/1/0" sn1 24;
              jun_iface ~area ~passive:true "ge-0/1/1" sn2 24 ]
        else
          let ifaces =
            ios_iface ~desc:"to core1" ~cost:10 ~area "Ethernet1" (snd l1) 30
            @ ios_iface ~desc:"to core2" ~cost:10 ~area "Ethernet2" (snd l2) 30
            @ ios_iface ~desc:"users" ~cost:10 ~area "Vlan10" sn1 24
            @ ios_iface ~desc:"printers" ~cost:10 ~area "Vlan20" sn2 24
          in
          let ospf =
            [ "router ospf 1"; " passive-interface Vlan10"; " passive-interface Vlan20";
              " maximum-paths 4"; "!" ]
          in
          ios_device ~name:bname [ mgmt; ifaces; ospf ])
  in
  { n_name = name; n_type = "campus"; n_configs = cores @ bldgs; n_env = Dp_env.empty }

(* ======================= paired DCs ======================= *)

let paired_dc ~name ~spines ~leaves () =
  let a = alloc () in
  let mk prefix spine_as leaf_as_base =
    clos_core ~a ~prefix ~spines ~leaves ~spine_as
      ~leaf_as:(fun l -> leaf_as_base + l)
      ()
  in
  let dev_a, spines_a, _ = mk (name ^ "-a") 64512 65001 in
  let dev_b, spines_b, _ = mk (name ^ "-b") 64612 65101 in
  (* border per DC, linked to its spines and to the other border *)
  let border_names = [| name ^ "-bra"; name ^ "-brb" |] in
  let border_as = [| 65401; 65402 |] in
  let inter_link = new_link a in
  let border spine_names spine_as bI =
    let links = List.map (fun _ -> new_link a) spine_names in
    let ifaces =
      List.concat
        (List.mapi
           (fun k (bip, _) ->
             ios_iface ~desc:(s "to %s" (List.nth spine_names k)) (s "Ethernet%d" (k + 1)) bip 30)
           links)
      @ ios_iface ~desc:"inter-dc"
          (s "Ethernet%d" (List.length links + 1))
          ((if bI = 0 then fst else snd) inter_link)
          30
    in
    let bgp =
      [ s "router bgp %d" border_as.(bI) ]
      @ List.concat
          (List.map
             (fun (_, sip) -> [ s " neighbor %s remote-as %d" (Ipv4.to_string sip) spine_as ])
             links)
      @ [ s " neighbor %s remote-as %d"
            (Ipv4.to_string ((if bI = 0 then snd else fst) inter_link))
            border_as.(1 - bI);
          " maximum-paths 16"; "!" ]
    in
    (* spine side of the border links, appended to spine configs *)
    let spine_extra =
      List.mapi
        (fun k (bip, sip) ->
          (List.nth spine_names k,
           String.concat "\n"
             (ios_iface ~desc:(s "to %s" border_names.(bI)) (s "Border%d" (bI + 1)) sip 30
             @ [ s "router bgp %d" spine_as;
                 s " neighbor %s remote-as %d" (Ipv4.to_string bip) border_as.(bI); "!" ])))
        links
    in
    (ios_device ~name:border_names.(bI) [ mgmt; ifaces; bgp ], spine_extra)
  in
  let bra, extra_a = border spines_a 64512 0 in
  let brb, extra_b = border spines_b 64612 1 in
  let patch devices extras =
    List.map
      (fun (fname, text) ->
        let dev = Filename.remove_extension fname in
        match List.assoc_opt dev extras with
        | Some extra -> (fname, text ^ "\n" ^ extra ^ "\n")
        | None -> (fname, text))
      devices
  in
  { n_name = name; n_type = "paired DCs";
    n_configs = patch dev_a extra_a @ patch dev_b extra_b @ [ bra; brb ];
    n_env = Dp_env.empty }

(* ======================= HA ToR fabric ======================= *)

(* A fat leaf tier built from redundancy groups (VRRP/MLAG-style): every
   slot is one active ToR — it terminates the slot's [ports] access
   subnets and is emitted first, so deterministic first-owner gateway
   resolution makes it the forwarder — plus [members - 1] hot standbys
   whose configs are stamped from the same template, sharing the slot's
   uplink addressing (same IP on the shared per-(slot, spine) subnet).
   Standbys are therefore *behaviorally identical*, which is exactly the
   redundancy the quotient compression of Fcompress collapses into one
   class per slot; the active's [ports] identically-configured access
   interfaces (the 48-port ToR picture) are interchangeable sources that
   all-pairs collapses to one pass per device via {!Fquery.start_groups}.
   Static routing end to end: spines route each access subnet at the
   shared uplink IP, ToRs default to every spine. *)
let clos_ha ?(ports = 1) ~name ~spines ~slots ~members () =
  let spine_names = List.init spines (fun i -> s "%s-spine%d" name (i + 1)) in
  (* /29 uplink subnet per (slot, spine): spine at .1, every member at .2 *)
  let up_base l sp = Ipv4.of_octets 10 64 0 0 + (((l * spines) + sp) * 8) in
  let host_gw l p = Ipv4.of_octets 172 16 0 0 + (((l * ports) + p) * 256) + 1 in
  let spine_devices =
    List.mapi
      (fun sp sname ->
        let ifaces =
          List.concat
            (List.init slots (fun l ->
                 ios_iface ~desc:(s "to slot%d" (l + 1))
                   (s "Ethernet%d" (l + 1))
                   (up_base l sp + 1) 29))
        in
        let routes =
          List.concat
            (List.init slots (fun l ->
                 List.init ports (fun p ->
                     s "ip route %s 255.255.255.0 %s"
                       (Ipv4.to_string (Prefix.network (subnet_of (host_gw l p))))
                       (Ipv4.to_string (up_base l sp + 2)))))
          @ [ "!" ]
        in
        ios_device ~arista:true ~name:sname [ mgmt; ifaces; routes ])
      spine_names
  in
  let tor_devices =
    List.concat
      (List.init slots (fun l ->
           let uplinks =
             List.concat
               (List.init spines (fun sp ->
                    ios_iface
                      ~desc:(s "to %s" (List.nth spine_names sp))
                      (s "Ethernet%d" (sp + 1))
                      (up_base l sp + 2) 29))
           in
           let defaults =
             List.init spines (fun sp ->
                 s "ip route 0.0.0.0 0.0.0.0 %s"
                   (Ipv4.to_string (up_base l sp + 1)))
             @ [ "!" ]
           in
           let access =
             List.concat
               (List.init ports (fun p ->
                    ios_iface ~desc:"host subnet"
                      (s "Vlan%d" (100 + p))
                      (host_gw l p) 24))
           in
           List.init members (fun m ->
               let dname = s "%s-slot%d-tor%d" name (l + 1) (m + 1) in
               (* only the active terminates the access segments (host-
                  facing ports must be neighbor-free to count as edge
                  interfaces); the standbys are identical to each other *)
               let host = if m = 0 then access else [] in
               ios_device ~name:dname [ mgmt; host @ uplinks; defaults ])))
  in
  { n_name = name; n_type = "DC (HA ToR groups)";
    n_configs = spine_devices @ tor_devices; n_env = Dp_env.empty }

(* ======================= Figure 1b ======================= *)

let fig1b () =
  let border n my_ip peer_ip ext_ip ext_peer =
    ( s "%s.cfg" n,
      String.concat "\n"
        [ s "hostname %s" n;
          "interface ibgp"; s " ip address %s 255.255.255.252" my_ip;
          "interface ext"; s " ip address %s 255.255.255.252" ext_ip;
          "route-map FROM_IBGP permit 10";
          " set local-preference 200";
          "router bgp 65000";
          s " bgp router-id %s" my_ip;
          s " neighbor %s remote-as 65000" peer_ip;
          s " neighbor %s route-map FROM_IBGP in" peer_ip;
          s " neighbor %s remote-as 65010" ext_peer;
          "" ] )
  in
  let env =
    Dp_env.make
      [ Dp_env.peer ~ip:(Ipv4.of_string "203.0.1.1") ~asn:65010
          [ Dp_env.announce (Prefix.of_string "10.0.0.0/8") ];
        Dp_env.peer ~ip:(Ipv4.of_string "203.0.2.1") ~asn:65010
          [ Dp_env.announce (Prefix.of_string "10.0.0.0/8") ] ]
  in
  { n_name = "fig1b"; n_type = "pattern";
    n_configs =
      [ border "b1" "10.0.0.1" "10.0.0.2" "203.0.1.2" "203.0.1.1";
        border "b2" "10.0.0.2" "10.0.0.1" "203.0.2.2" "203.0.2.1" ];
    n_env = env }

(* ======================= the 11 profiles ======================= *)

type profile = {
  p_name : string;
  p_type : string;
  p_vendors : string;
  p_protocols : string;
  p_make : float -> network;
}

let sc f v = max 1 (int_of_float (ceil (f *. float_of_int v)))

let profiles =
  [ { p_name = "NET1"; p_type = "enterprise"; p_vendors = "Cisco, Juniper";
      p_protocols = "OSPF, BGP";
      p_make = (fun f -> enterprise ~name:"net1" ~sites:(sc f 4) ()) };
    { p_name = "NET2"; p_type = "campus"; p_vendors = "Cisco, Juniper";
      p_protocols = "OSPF";
      p_make = (fun f -> campus ~name:"net2" ~buildings:(sc f 12) ()) };
    { p_name = "NET3"; p_type = "DC"; p_vendors = "Cisco, Arista";
      p_protocols = "BGP";
      p_make = (fun f -> clos ~name:"net3" ~spines:(sc f 4) ~leaves:(sc f 12) ()) };
    { p_name = "NET4"; p_type = "enterprise"; p_vendors = "Cisco, Juniper";
      p_protocols = "OSPF, BGP";
      p_make = (fun f -> enterprise ~name:"net4" ~sites:(sc f 10) ()) };
    { p_name = "NET5"; p_type = "WAN"; p_vendors = "Cisco";
      p_protocols = "OSPF, BGP";
      p_make = (fun f -> wan ~name:"net5" ~pops:(sc f 16) ()) };
    { p_name = "NET6"; p_type = "DC (3-tier)"; p_vendors = "Cisco, Arista";
      p_protocols = "BGP";
      p_make =
        (fun f ->
          clos3 ~name:"net6" ~pods:(sc f 2) ~pod_spines:2 ~pod_leaves:(sc f 6)
            ~superspines:2 ()) };
    { p_name = "NET7"; p_type = "paired DCs"; p_vendors = "Cisco, Arista";
      p_protocols = "BGP";
      p_make = (fun f -> paired_dc ~name:"net7" ~spines:2 ~leaves:(sc f 8) ()) };
    { p_name = "NET8"; p_type = "enterprise"; p_vendors = "Cisco, Juniper";
      p_protocols = "OSPF, BGP";
      p_make = (fun f -> enterprise ~name:"net8" ~sites:(sc f 24) ()) };
    { p_name = "NET9"; p_type = "WAN"; p_vendors = "Cisco";
      p_protocols = "OSPF, BGP";
      p_make = (fun f -> wan ~name:"net9" ~pops:(sc f 40) ()) };
    { p_name = "NET10"; p_type = "DC"; p_vendors = "Cisco, Arista";
      p_protocols = "BGP";
      p_make = (fun f -> clos ~name:"net10" ~spines:(sc f 6) ~leaves:(sc f 48) ()) };
    { p_name = "NET11"; p_type = "DC (3-tier)"; p_vendors = "Cisco, Arista";
      p_protocols = "BGP";
      p_make =
        (fun f ->
          clos3 ~name:"net11" ~pods:(sc f 4) ~pod_spines:2 ~pod_leaves:(sc f 16)
            ~superspines:(sc f 2) ()) };
    (* Scale-sweep profiles (ISSUE 10): fat leaf tiers behind a small fixed
       spine count — the shape where behavioral-equivalence compression pays
       most. NET12's leaf tier is 8-way HA ToR groups (one active + seven
       template-stamped standbys per slot, four access ports each, see
       [clos_ha]); it reaches ~500 devices at scale 4 and ~1000 at scale 8.
       NET13 is a 3-tier fabric (fat pods, shared superspines). *)
    { p_name = "NET12"; p_type = "DC (HA ToR groups)"; p_vendors = "Cisco, Arista";
      p_protocols = "static";
      p_make =
        (fun f ->
          clos_ha ~ports:8 ~name:"net12" ~spines:4 ~slots:(sc f 16)
            ~members:8 ()) };
    { p_name = "NET13"; p_type = "DC (3-tier, fat pods)";
      p_vendors = "Cisco, Arista"; p_protocols = "BGP";
      p_make =
        (fun f ->
          clos3 ~name:"net13" ~pods:4 ~pod_spines:2 ~pod_leaves:(sc f 30)
            ~superspines:2 ()) } ]
