(* Deterministic fault injection for generated networks. Every mutator is
   driven by the seeded splitmix stream (Rng), so a failing seed reproduces
   exactly; the chaos property test feeds hundreds of mutated snapshots
   through the full pipeline and asserts "diagnostics, never exceptions". *)

type mutation = {
  mut_kind : string;
  mut_files : string list;  (* every file whose content the mutation touched *)
  mut_detail : string;
}

let kinds =
  [ "truncate"; "corrupt-line"; "delete-line"; "duplicate-line"; "garbage-bytes";
    "empty-file"; "binary-blob"; "duplicate-hostname" ]

let garbage_char rng = Char.chr (Rng.int rng 256)

let lines text = String.split_on_char '\n' text
let unlines ls = String.concat "\n" ls

let splice text pos insert = String.sub text 0 pos ^ insert ^ String.sub text pos (String.length text - pos)

(* Apply one line-level edit at a random line; None when the text has no
   usable line (so the driver can pick another mutation). *)
let edit_line rng text f =
  let ls = Array.of_list (lines text) in
  if Array.length ls = 0 then None
  else begin
    let i = Rng.int rng (Array.length ls) in
    f ls i;
    Some (unlines (Array.to_list ls))
  end

let mutate_text ~rng ~kind text =
  match kind with
  | "truncate" ->
    if String.length text = 0 then None
    else Some (String.sub text 0 (Rng.int rng (String.length text)))
  | "corrupt-line" ->
    edit_line rng text (fun ls i ->
        let l = ls.(i) in
        ls.(i) <-
          (if String.length l = 0 then
             String.init (1 + Rng.int rng 8) (fun _ -> garbage_char rng)
           else
             String.map (fun c -> if Rng.int rng 3 = 0 then garbage_char rng else c) l))
  | "delete-line" ->
    edit_line rng text (fun ls i -> ls.(i) <- "")
  | "duplicate-line" ->
    edit_line rng text (fun ls i -> ls.(i) <- ls.(i) ^ "\n" ^ ls.(i))
  | "garbage-bytes" ->
    let blob = String.init (1 + Rng.int rng 64) (fun _ -> garbage_char rng) in
    Some (splice text (Rng.int rng (String.length text + 1)) blob)
  | "empty-file" -> Some ""
  | "binary-blob" ->
    Some (String.init (16 + Rng.int rng 256) (fun _ -> garbage_char rng))
  | kind -> invalid_arg ("Chaos.mutate_text: unknown mutation kind " ^ kind)

let mutate_network ~rng ?(mutations = 1) (net : Netgen.network) =
  let files = Array.of_list net.Netgen.n_configs in
  let applied = ref [] in
  if Array.length files > 0 then
    for _ = 1 to mutations do
      let kind = Rng.pick_list rng kinds in
      let i = Rng.int rng (Array.length files) in
      let name, text = files.(i) in
      match kind with
      | "duplicate-hostname" ->
        if Array.length files >= 2 then begin
          let j = (i + 1 + Rng.int rng (Array.length files - 1)) mod Array.length files in
          let other_name, other_text = files.(j) in
          files.(i) <- (name, other_text);
          applied :=
            { mut_kind = kind; mut_files = [ name; other_name ];
              mut_detail = Printf.sprintf "%s now holds a copy of %s" name other_name }
            :: !applied
        end
      | kind -> (
        match mutate_text ~rng ~kind text with
        | Some text' ->
          files.(i) <- (name, text');
          applied :=
            { mut_kind = kind; mut_files = [ name ];
              mut_detail = Printf.sprintf "%s: %s" kind name }
            :: !applied
        | None -> ())
    done;
  ({ net with Netgen.n_configs = Array.to_list files }, List.rev !applied)

let affected_files muts = List.sort_uniq compare (List.concat_map (fun m -> m.mut_files) muts)

(* --- Semantic single-file edits (ISSUE 4) -------------------------------

   Unlike the fault mutators above, these keep the file parseable: each edit
   is the kind of change an operator lands in CI — dropping a BGP session,
   shutting an interface, touching an ACL — so the incremental engine's
   dirty-set computation has something real to chew on. "comment-edit" is
   deliberately cosmetic: the text changes but the derived model does not. *)

let semantic_kinds =
  [ "drop-bgp-neighbor"; "toggle-shutdown"; "add-acl-line"; "remove-acl-line";
    "add-loopback"; "comment-edit" ]

let starts_with prefix s = String.starts_with ~prefix s

(* indices of lines satisfying [p] *)
let find_lines p ls =
  let acc = ref [] in
  List.iteri (fun i l -> if p l then acc := i :: !acc) ls;
  List.rev !acc

let remove_line_at idx ls = List.filteri (fun i _ -> i <> idx) ls

let semantic_edit ~rng ~kind text =
  let ls = lines text in
  match kind with
  | "drop-bgp-neighbor" -> (
    (* remove every " neighbor <ip> ..." line of one randomly chosen peer *)
    let peers =
      List.filter_map
        (fun l ->
          if starts_with " neighbor " l then
            match String.split_on_char ' ' (String.trim l) with
            | "neighbor" :: ip :: "remote-as" :: _ -> Some ip
            | _ -> None
          else None)
        ls
      |> List.sort_uniq compare
    in
    match peers with
    | [] -> None
    | _ ->
      let ip = Rng.pick_list rng peers in
      let keep l = not (starts_with (" neighbor " ^ ip ^ " ") l) in
      Some (unlines (List.filter keep ls), "removed bgp neighbor " ^ ip))
  | "toggle-shutdown" -> (
    (* prefer shutting a non-loopback interface down; re-enable otherwise *)
    let arr = Array.of_list ls in
    let in_loopback = Array.make (Array.length arr) false in
    let cur = ref false in
    Array.iteri
      (fun i l ->
        if starts_with "interface " l then cur := starts_with "interface Loopback" l;
        in_loopback.(i) <- !cur)
      arr;
    let down = find_lines (fun l -> String.trim l = "no shutdown") ls in
    let down = List.filter (fun i -> not in_loopback.(i)) down in
    let up = find_lines (fun l -> String.trim l = "shutdown") ls in
    match (down, up) with
    | [], [] -> None
    | _ ->
      if down <> [] then begin
        let i = List.nth down (Rng.int rng (List.length down)) in
        arr.(i) <- " shutdown";
        Some (unlines (Array.to_list arr), "shut down an interface")
      end
      else begin
        let i = List.nth up (Rng.int rng (List.length up)) in
        arr.(i) <- " no shutdown";
        Some (unlines (Array.to_list arr), "re-enabled an interface")
      end)
  | "add-acl-line" -> (
    (* insert a deny line right after a random ACL header *)
    let headers = find_lines (fun l -> starts_with "ip access-list extended " l) ls in
    match headers with
    | [] -> None
    | _ ->
      let h = List.nth headers (Rng.int rng (List.length headers)) in
      let host = Printf.sprintf "203.0.113.%d" (1 + Rng.int rng 250) in
      let line = Printf.sprintf " deny udp any host %s" host in
      let out =
        List.concat (List.mapi (fun i l -> if i = h then [ l; line ] else [ l ]) ls)
      in
      Some (unlines out, "added acl deny for " ^ host))
  | "remove-acl-line" -> (
    (* delete one permit/deny line inside an ACL block *)
    let arr = Array.of_list ls in
    let in_acl = Array.make (Array.length arr) false in
    let cur = ref false in
    Array.iteri
      (fun i l ->
        if starts_with "ip access-list" l then cur := true
        else if not (starts_with " " l) then cur := false;
        in_acl.(i) <- !cur && (starts_with " permit" l || starts_with " deny" l))
      arr;
    let idxs = ref [] in
    Array.iteri (fun i v -> if v then idxs := i :: !idxs) in_acl;
    match !idxs with
    | [] -> None
    | idxs ->
      let i = List.nth idxs (Rng.int rng (List.length idxs)) in
      Some (unlines (remove_line_at i ls), "removed an acl line"))
  | "add-loopback" ->
    let ip = Printf.sprintf "198.51.100.%d" (1 + Rng.int rng 250) in
    let stanza =
      String.concat "\n"
        [ "!"; "interface Loopback99"; Printf.sprintf " ip address %s 255.255.255.255" ip;
          " no shutdown" ]
    in
    Some (text ^ "\n" ^ stanza, "added Loopback99 " ^ ip)
  | "comment-edit" ->
    let n = Rng.int rng 1_000_000 in
    Some (text ^ Printf.sprintf "\n! chaos edit %d" n, "appended a comment (cosmetic)")
  | kind -> invalid_arg ("Chaos.semantic_edit: unknown edit kind " ^ kind)

(* One random applicable semantic edit on one random file. Tries kinds in a
   seeded random order so a file without ACLs still gets edited. *)
let semantic_edit_network ~rng (net : Netgen.network) =
  let files = Array.of_list net.Netgen.n_configs in
  if Array.length files = 0 then None
  else begin
    let i = Rng.int rng (Array.length files) in
    let name, text = files.(i) in
    let rec try_kinds = function
      | [] -> None
      | ks ->
        let k = List.nth ks (Rng.int rng (List.length ks)) in
        (match semantic_edit ~rng ~kind:k text with
         | Some (text', detail) ->
           files.(i) <- (name, text');
           Some
             ( { net with Netgen.n_configs = Array.to_list files },
               { mut_kind = k; mut_files = [ name ]; mut_detail = name ^ ": " ^ detail } )
         | None -> try_kinds (List.filter (fun k' -> k' <> k) ks))
    in
    try_kinds semantic_kinds
  end
