(** Synthetic network generator.

    Stands in for the paper's 11 proprietary real networks (Table 1): each
    profile deterministically emits {e vendor configuration text} (Cisco-IOS,
    Arista-EOS and Junos flavours) plus an environment of external BGP
    announcements, so the entire pipeline — parsing, VI conversion,
    simulation, verification — runs exactly as it would on real configs. *)

type network = {
  n_name : string;
  n_type : string;  (** Table 1 "type" column *)
  n_configs : (string * string) list;  (** (filename, config text) *)
  n_env : Dp_env.t;
}

val device_count : network -> int

(** Total configuration lines (Table 1 "LoC"). *)
val config_lines : network -> int

(** {2 Topology families} *)

(** Two-tier leaf-spine eBGP fabric (RFC 7938 style), ECMP, host subnets on
    leaves, ACL-protected edge. *)
val clos : name:string -> spines:int -> leaves:int -> unit -> network

(** Three-tier fabric: superspines, per-pod spines, leaves. *)
val clos3 : name:string -> pods:int -> pod_spines:int -> pod_leaves:int -> superspines:int -> unit -> network

(** Enterprise: OSPF backbone + areas, iBGP route reflectors over loopbacks,
    dual borders with eBGP to ISPs, NAT, a zone-based firewall, route maps
    with communities/prefix lists, one Junos site. *)
val enterprise : name:string -> sites:int -> unit -> network

(** Service-provider WAN: OSPF ring + chords, route reflectors, customers as
    external peers with community-based policy. *)
val wan : name:string -> pops:int -> unit -> network

(** Campus: multi-area OSPF, building routers (some Junos), static routes. *)
val campus : name:string -> buildings:int -> unit -> network

(** Two fabrics providing backup connectivity to each other. *)
val paired_dc : name:string -> spines:int -> leaves:int -> unit -> network

(** HA ToR-group fabric: [slots] redundancy groups of [members]
    template-stamped ToRs behind [spines]. Each member carries [ports]
    identically-configured access interfaces (default 1); the standbys are
    configuration-identical clones of the active sharing its addressing
    (VRRP/MLAG style), with deterministic first-owner gateway resolution
    electing the active, so behavioral-equivalence compression can merge
    them and all-pairs can share one pass across a device's access ports.
    Static routing throughout. *)
val clos_ha :
  ?ports:int ->
  name:string -> spines:int -> slots:int -> members:int -> unit -> network

(** The two Figure 1(b) border routers (mutual-export pattern). *)
val fig1b : unit -> network

(** {2 The benchmark profiles (Table 1 stand-ins)}

    NET1..NET11 mirror the paper's Table 1; NET12/NET13 are scale-sweep
    fabrics. NET12 is the HA ToR-group clos ([clos_ha]) reaching ~500
    devices at scale 4 and ~1000 at scale 8 (the quotient-compression
    benchmark shape); NET13 is the 3-tier variant. [scale] multiplies
    device counts (1.0 = the default laptop-friendly sizes; larger values
    approach the paper's). *)

type profile = {
  p_name : string;
  p_type : string;
  p_vendors : string;
  p_protocols : string;
  p_make : float -> network;
}

val profiles : profile list
