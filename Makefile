.PHONY: all build test lint bench-smoke bench-sweep check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the shipped example fixtures with every registered pass.
lint: build
	dune exec bin/batfish_cli.exe -- lint --strict examples/configs/clean_small

# Fast benchmark subset: exercises the sharded parallel verification engine
# (and fails if parallel results ever diverge from the sequential engine) and
# writes machine-readable BENCH_results.json for the perf trajectory.
# Fails (exit 1) when any parallel/incremental record diverges from the
# sequential engine, or when a single-edit incremental.* record reports
# nodes_reused = 0 — the per-node route-delta reuse must actually engage.
bench-smoke: build
	dune exec bench/main.exe -- smoke --scale 1

# Quotient-compression scale sweep (schema 8 "sweep" section of
# BENCH_results.json): compressed vs uncompressed wall time, peak RSS, BDD
# node counts and compression ratio across several NET12 scale factors.
# Exits 1 if compressed answers ever differ from uncompressed, or if
# compression fails to win at the largest factor. --scale 2 adds the
# ~1k-device point.
bench-sweep: build
	dune exec bench/main.exe -- sweep --scale 1

# The full gate: everything compiles, every test passes (which includes
# linting the example fixtures via the runtest alias), and the bench smoke
# subset runs to completion.
check:
	dune build
	dune runtest
	$(MAKE) bench-smoke

clean:
	dune clean
