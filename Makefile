.PHONY: all build test lint check clean

all: build

build:
	dune build

test:
	dune runtest

# Lint the shipped example fixtures with every registered pass.
lint: build
	dune exec bin/batfish_cli.exe -- lint --strict examples/configs/clean_small

# The full gate: everything compiles, every test passes (which includes
# linting the example fixtures via the runtest alias).
check:
	dune build
	dune runtest

clean:
	dune clean
