(** IPv4 prefixes in CIDR notation, canonicalized (host bits zeroed). *)

type t = private { network : Ipv4.t; len : int }

(** [make ip len] canonicalizes [ip] to its network address for [len].
    @raise Invalid_argument if [len] is outside [0, 32]. *)
val make : Ipv4.t -> int -> t

(** [host ip] is the /32 prefix for [ip]. *)
val host : Ipv4.t -> t

(** Parses ["10.0.0.0/8"]. A bare address parses as a /32. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val network : t -> Ipv4.t
val length : t -> int

(** Subnet mask as an address, e.g. 255.255.255.0 for /24. *)
val mask : t -> Ipv4.t

(** Last address of the prefix. *)
val broadcast : t -> Ipv4.t

(** [contains p ip] is true if [ip] falls within [p]. *)
val contains : t -> Ipv4.t -> bool

(** [contains_prefix p q] is true if [q] is a (non-strict) subset of [p]. *)
val contains_prefix : t -> t -> bool

(** First usable host address: network + 1 for len <= 30, else the network
    address itself (point-to-point /31 and host /32 conventions). *)
val first_host : t -> Ipv4.t

(** The two halves of a prefix with [len < 32]. *)
val split : t -> t * t

val everything : t
