(** Concrete IPv4 packet headers, as used by the traceroute engine and by
    example extraction from the symbolic engine. *)

module Tcp_flags : sig
  val fin : int
  val syn : int
  val rst : int
  val psh : int
  val ack : int
  val urg : int
  val ece : int
  val cwr : int

  (** e.g. "SYN|ACK"; "-" when no flag is set. *)
  val to_string : int -> string
end

module Proto : sig
  val icmp : int
  val tcp : int
  val udp : int
  val ospf : int
  val to_string : int -> string
end

type t = {
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  protocol : int;
  src_port : int;  (** meaningful for TCP/UDP only *)
  dst_port : int;
  icmp_type : int;  (** meaningful for ICMP only *)
  icmp_code : int;
  tcp_flags : int;  (** bitmask; see {!Tcp_flags} *)
  dscp : int;
  ecn : int;
  fragment_offset : int;
  packet_length : int;
}

(** Default header: TCP, ephemeral source port, port 80, length 512. *)
val default : t

val tcp : ?flags:int -> ?src_port:int -> src:Ipv4.t -> dst:Ipv4.t -> int -> t
val udp : ?src_port:int -> src:Ipv4.t -> dst:Ipv4.t -> int -> t
val icmp : ?ty:int -> ?code:int -> src:Ipv4.t -> dst:Ipv4.t -> unit -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
