(** Deterministic pseudo-random numbers (splitmix64).

    Used by the workload generator and property tests so that every run of the
    benchmarks sees the same networks. *)

type t

val create : int -> t

(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** [pick t arr] selects a uniform element. [arr] must be non-empty. *)
val pick : t -> 'a array -> 'a

val pick_list : t -> 'a list -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Derive an independent stream (for per-component determinism). *)
val split : t -> t
