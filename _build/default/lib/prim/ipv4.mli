(** IPv4 addresses represented as non-negative integers in [0, 2^32). *)

type t = int

val zero : t
val max_value : t

(** [of_octets a b c d] builds [a.b.c.d]. Octets must be in [0, 255]. *)
val of_octets : int -> int -> int -> int -> t

val to_octets : t -> int * int * int * int

(** [of_string "10.0.0.1"] parses a dotted-quad address.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [succ ip] is the next address; wraps at [max_value]. *)
val succ : t -> t

(** [bit ip i] is bit [i] of [ip], where bit 0 is the most significant. *)
val bit : t -> int -> bool

(** Multicast range 224.0.0.0/4. *)
val is_multicast : t -> bool

(** RFC1918 private ranges. *)
val is_private : t -> bool
