let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

let map ~domains f arr =
  let n = Array.length arr in
  if domains <= 1 || n < 2 then Array.map f arr
  else begin
    let out = Array.make n None in
    let workers = min domains n in
    let chunk = (n + workers - 1) / workers in
    let run w =
      let lo = w * chunk and hi = min n ((w + 1) * chunk) in
      (* Disjoint index ranges: no two domains write the same cell. *)
      for i = lo to hi - 1 do
        out.(i) <- Some (f arr.(i))
      done
    in
    let spawned = List.init (workers - 1) (fun w -> Domain.spawn (fun () -> run (w + 1))) in
    run 0;
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      out
  end
