type t = int

let zero = 0
let max_value = 0xFFFF_FFFF

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Ipv4.of_octets";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets ip =
  ((ip lsr 24) land 0xFF, (ip lsr 16) land 0xFF, (ip lsr 8) land 0xFF, ip land 0xFF)

let of_string_opt s =
  let n = String.length s in
  (* Manual parse: avoids Scanf overhead and rejects junk like "1.2.3.4x". *)
  let rec octet i acc digits =
    if i >= n then (acc, i, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
        octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | _ -> (acc, i, digits)
  in
  let rec go i k acc =
    let v, j, digits = octet i 0 0 in
    if digits = 0 || v > 255 then None
    else if k = 3 then if j = n then Some ((acc lsl 8) lor v) else None
    else if j < n && s.[j] = '.' then go (j + 1) (k + 1) ((acc lsl 8) lor v)
    else None
  in
  go 0 0 0

let of_string s =
  match of_string_opt s with
  | Some ip -> ip
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string ip =
  let a, b, c, d = to_octets ip in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let pp fmt ip = Format.pp_print_string fmt (to_string ip)
let compare = Int.compare
let equal = Int.equal
let hash ip = ip * 0x9E3779B1 land max_int
let succ ip = (ip + 1) land max_value
let bit ip i = (ip lsr (31 - i)) land 1 = 1
let is_multicast ip = ip lsr 28 = 0xE

let is_private ip =
  ip lsr 24 = 10 || ip lsr 20 = 0xAC1 || ip lsr 16 = 0xC0A8
