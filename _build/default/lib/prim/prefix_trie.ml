type 'a t =
  | Leaf
  | Node of { value : 'a option; left : 'a t; right : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value left right =
  match (value, left, right) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; left; right }

(* Paths follow address bits from the most significant; depth equals prefix
   length. *)

let rec update_at ip len depth f t =
  match t with
  | Leaf ->
    if depth = len then node (f None) Leaf Leaf
    else if Ipv4.bit ip depth then node None Leaf (update_at ip len (depth + 1) f Leaf)
    else node None (update_at ip len (depth + 1) f Leaf) Leaf
  | Node { value; left; right } ->
    if depth = len then node (f value) left right
    else if Ipv4.bit ip depth then node value left (update_at ip len (depth + 1) f right)
    else node value (update_at ip len (depth + 1) f left) right

let update p f t = update_at (Prefix.network p) (Prefix.length p) 0 f t
let add p v t = update p (fun _ -> Some v) t
let remove p t = update p (fun _ -> None) t

let find p t =
  let ip = Prefix.network p and len = Prefix.length p in
  let rec go depth t =
    match t with
    | Leaf -> None
    | Node { value; left; right } ->
      if depth = len then value
      else go (depth + 1) (if Ipv4.bit ip depth then right else left)
  in
  go 0 t

let longest_match ip t =
  let rec go depth t best =
    match t with
    | Leaf -> best
    | Node { value; left; right } ->
      let best =
        match value with
        | Some v -> Some (Prefix.make ip depth, v)
        | None -> best
      in
      if depth = 32 then best
      else go (depth + 1) (if Ipv4.bit ip depth then right else left) best
  in
  go 0 t None

let all_matches ip t =
  let rec go depth t acc =
    match t with
    | Leaf -> List.rev acc
    | Node { value; left; right } ->
      let acc =
        match value with
        | Some v -> (Prefix.make ip depth, v) :: acc
        | None -> acc
      in
      if depth = 32 then List.rev acc
      else go (depth + 1) (if Ipv4.bit ip depth then right else left) acc
  in
  go 0 t []

let rec fold_at ip depth f t acc =
  match t with
  | Leaf -> acc
  | Node { value; left; right } ->
    let acc =
      match value with
      | Some v -> f (Prefix.make ip depth) v acc
      | None -> acc
    in
    let acc = fold_at ip (depth + 1) f left acc in
    if depth = 32 then acc
    else fold_at (ip lor (1 lsl (31 - depth))) (depth + 1) f right acc

let fold f t acc = fold_at 0 0 f t acc

let within p t =
  let ip = Prefix.network p and len = Prefix.length p in
  let rec descend depth t =
    match t with
    | Leaf -> []
    | Node { left; right; _ } ->
      if depth = len then List.rev (fold_at ip depth (fun p v acc -> (p, v) :: acc) t [])
      else descend (depth + 1) (if Ipv4.bit ip depth then right else left)
  in
  descend 0 t

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
