(** Deterministic parallel map over domains.

    Used to parallelize route exchange within a color class (§4.1.1: "we can
    also speed up the computation by introducing high levels of parallelism").
    Results are assembled in index order, so output is identical to the
    sequential map. *)

(** [map ~domains f arr] applies [f] to every element, using up to [domains]
    worker domains ([domains <= 1] runs sequentially). *)
val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Recommended worker count for this machine. *)
val default_domains : unit -> int
