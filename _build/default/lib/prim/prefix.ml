type t = { network : Ipv4.t; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFF_FFFF lxor ((1 lsl (32 - len)) - 1)

let make ip len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make";
  { network = ip land mask_of_len len; len }

let host ip = { network = ip; len = 32 }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map host (Ipv4.of_string_opt s)
  | Some i -> (
    match
      ( Ipv4.of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some ip, Some len when len >= 0 && len <= 32 -> Some (make ip len)
    | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.len
let pp fmt p = Format.pp_print_string fmt (to_string p)

let compare a b =
  let c = Int.compare a.network b.network in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = a.network = b.network && a.len = b.len
let hash p = ((p.network * 31) + p.len) * 0x9E3779B1 land max_int
let network p = p.network
let length p = p.len
let mask p = mask_of_len p.len
let broadcast p = p.network lor (0xFFFF_FFFF lxor mask_of_len p.len)
let contains p ip = ip land mask_of_len p.len = p.network
let contains_prefix p q = q.len >= p.len && contains p q.network
let first_host p = if p.len <= 30 then p.network + 1 else p.network

let split p =
  if p.len >= 32 then invalid_arg "Prefix.split";
  let len = p.len + 1 in
  ({ network = p.network; len }, { network = p.network lor (1 lsl (32 - len)); len })

let everything = { network = 0; len = 0 }
