lib/prim/table.mli:
