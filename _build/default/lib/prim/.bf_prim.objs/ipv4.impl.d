lib/prim/ipv4.ml: Char Format Int Printf String
