lib/prim/prefix_trie.mli: Ipv4 Prefix
