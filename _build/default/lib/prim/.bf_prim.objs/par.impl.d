lib/prim/par.ml: Array Domain List
