lib/prim/rng.mli:
