lib/prim/prefix.mli: Format Ipv4
