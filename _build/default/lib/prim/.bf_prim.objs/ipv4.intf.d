lib/prim/ipv4.mli: Format
