lib/prim/packet.ml: Format Ipv4 List Printf Stdlib String
