lib/prim/par.mli:
