lib/prim/intern.mli: Hashtbl
