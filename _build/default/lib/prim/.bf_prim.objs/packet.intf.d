lib/prim/packet.mli: Format Ipv4
