lib/prim/table.ml: Array Buffer List String
