lib/prim/intern.ml: Hashtbl
