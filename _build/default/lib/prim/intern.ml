module Make (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type t = { table : H.t T.t; mutable requests : int }

  let create ?(size = 1024) () = { table = T.create size; requests = 0 }

  let intern pool v =
    pool.requests <- pool.requests + 1;
    match T.find_opt pool.table v with
    | Some canonical -> canonical
    | None ->
      T.add pool.table v v;
      v

  let distinct pool = T.length pool.table
  let requests pool = pool.requests

  let clear pool =
    T.clear pool.table;
    pool.requests <- 0
end
