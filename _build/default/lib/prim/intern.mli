(** Hash-consing pools for interning routing attributes (§4.1.3 of the paper).

    Interning returns a canonical representative for each distinct value so
    that routes sharing attributes share memory, and equality checks can be
    physical. Pools track hit statistics so the memory ablation can report
    sharing factors. *)

module Make (H : Hashtbl.HashedType) : sig
  type t

  val create : ?size:int -> unit -> t

  (** [intern pool v] returns the canonical value equal to [v]. *)
  val intern : t -> H.t -> H.t

  (** Number of distinct values in the pool. *)
  val distinct : t -> int

  (** Total interning requests served. *)
  val requests : t -> int

  val clear : t -> unit
end
