(** Plain-text column-aligned tables, used by question answers and the
    benchmark harness to print the paper's tables. *)

val to_string : header:string list -> string list list -> string
val print : header:string list -> string list list -> unit
