module Tcp_flags = struct
  let fin = 1
  let syn = 2
  let rst = 4
  let psh = 8
  let ack = 16
  let urg = 32
  let ece = 64
  let cwr = 128

  let names =
    [ (fin, "FIN"); (syn, "SYN"); (rst, "RST"); (psh, "PSH"); (ack, "ACK");
      (urg, "URG"); (ece, "ECE"); (cwr, "CWR") ]

  let to_string flags =
    let set = List.filter_map (fun (b, n) -> if flags land b <> 0 then Some n else None) names in
    if set = [] then "-" else String.concat "|" set
end

module Proto = struct
  let icmp = 1
  let tcp = 6
  let udp = 17
  let ospf = 89

  let to_string = function
    | 1 -> "icmp"
    | 6 -> "tcp"
    | 17 -> "udp"
    | 89 -> "ospf"
    | p -> string_of_int p
end

type t = {
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  protocol : int;
  src_port : int;
  dst_port : int;
  icmp_type : int;
  icmp_code : int;
  tcp_flags : int;
  dscp : int;
  ecn : int;
  fragment_offset : int;
  packet_length : int;
}

let default =
  { src_ip = Ipv4.of_octets 10 0 0 1; dst_ip = Ipv4.of_octets 10 0 0 2;
    protocol = Proto.tcp; src_port = 49152; dst_port = 80;
    icmp_type = 0; icmp_code = 0; tcp_flags = Tcp_flags.syn;
    dscp = 0; ecn = 0; fragment_offset = 0; packet_length = 512 }

let tcp ?(flags = Tcp_flags.syn) ?(src_port = 49152) ~src ~dst dst_port =
  { default with src_ip = src; dst_ip = dst; protocol = Proto.tcp;
    src_port; dst_port; tcp_flags = flags }

let udp ?(src_port = 49152) ~src ~dst dst_port =
  { default with src_ip = src; dst_ip = dst; protocol = Proto.udp;
    src_port; dst_port; tcp_flags = 0 }

let icmp ?(ty = 8) ?(code = 0) ~src ~dst () =
  { default with src_ip = src; dst_ip = dst; protocol = Proto.icmp;
    src_port = 0; dst_port = 0; icmp_type = ty; icmp_code = code; tcp_flags = 0 }

let to_string p =
  let base =
    Printf.sprintf "%s %s -> %s" (Proto.to_string p.protocol)
      (Ipv4.to_string p.src_ip) (Ipv4.to_string p.dst_ip)
  in
  if p.protocol = Proto.tcp then
    Printf.sprintf "%s sport=%d dport=%d flags=%s" base p.src_port p.dst_port
      (Tcp_flags.to_string p.tcp_flags)
  else if p.protocol = Proto.udp then
    Printf.sprintf "%s sport=%d dport=%d" base p.src_port p.dst_port
  else if p.protocol = Proto.icmp then
    Printf.sprintf "%s type=%d code=%d" base p.icmp_type p.icmp_code
  else base

let pp fmt p = Format.pp_print_string fmt (to_string p)
let equal = ( = )
let compare = Stdlib.compare
