let to_string ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit (List.mapi (fun i _ -> String.make width.(i) '-') header);
  List.iter emit rows;
  Buffer.contents buf

let print ~header rows = print_string (to_string ~header rows)
