(** Persistent binary tries keyed by IPv4 prefixes.

    The trie supports exact-prefix operations and longest-prefix matching,
    the core lookup of FIBs and RIBs. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

(** [add p v t] binds [p] to [v], replacing any existing binding. *)
val add : Prefix.t -> 'a -> 'a t -> 'a t

(** [update p f t] applies [f] to the current binding of [p] (or [None]).
    Returning [None] removes the binding. *)
val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t

val remove : Prefix.t -> 'a t -> 'a t
val find : Prefix.t -> 'a t -> 'a option

(** [longest_match ip t] is the binding with the longest prefix containing
    [ip], if any. *)
val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option

(** All bindings whose prefix contains [ip], shortest first. *)
val all_matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list

(** Bindings whose prefix is contained within [p] (including [p] itself). *)
val within : Prefix.t -> 'a t -> (Prefix.t * 'a) list

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val cardinal : 'a t -> int

(** Bindings in increasing prefix order. *)
val to_list : 'a t -> (Prefix.t * 'a) list

val of_list : (Prefix.t * 'a) list -> 'a t
