type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = next t }
