type result = {
  db : Datalog.db;
  routes : (string * Prefix.t * int) list;
  derived_facts : int;
}

open Datalog

(* Variable numbering convention: small ints per rule. *)

let load_facts db ~configs ~env =
  let topo = L3.infer configs in
  List.iter
    (fun (cfg : Vi.t) ->
      let n = sym db cfg.hostname in
      (* connected prefixes *)
      List.iter
        (fun (iface, ip, prefix) ->
          ignore ip;
          ignore iface;
          fact db "iface" [| n; Prefix.network prefix; Prefix.length prefix |])
        (Vi.interface_prefixes cfg);
      (* static routes (next-hop resolution elided, as in the simple model) *)
      List.iter
        (fun (sr : Vi.static_route) ->
          match sr.sr_next_hop with
          | Vi.Nh_ip nh ->
            fact db "staticRoute"
              [| n; Prefix.network sr.sr_prefix; Prefix.length sr.sr_prefix; nh |]
          | Vi.Nh_interface _ | Vi.Nh_discard ->
            fact db "staticRoute"
              [| n; Prefix.network sr.sr_prefix; Prefix.length sr.sr_prefix; 0 |])
        cfg.static_routes;
      (* OSPF adjacency and advertised prefixes *)
      let settings = Ospf_engine.interface_settings env cfg in
      List.iter
        (fun (s : Ospf_engine.iface_settings) ->
          fact db "ospfPrefix"
            [| n; Prefix.network s.os_prefix; Prefix.length s.os_prefix; s.os_cost |];
          if not s.os_passive then
            List.iter
              (fun (ep : L3.endpoint) ->
                if ep.ep_node <> cfg.hostname then
                  fact db "ospfLink" [| n; sym db ep.ep_node; s.os_cost; ep.ep_ip |])
              (L3.neighbors topo ~node:cfg.hostname ~iface:s.os_iface))
        settings;
      (* BGP *)
      Option.iter
        (fun (bgp : Vi.bgp_proc) ->
          List.iter
            (fun ((p, _) : Prefix.t * string option) ->
              fact db "bgpNetwork" [| n; Prefix.network p; Prefix.length p |])
            bgp.bp_networks;
          List.iter
            (fun (nbr : Vi.bgp_neighbor) ->
              match L3.owner_of_ip topo nbr.bn_peer with
              | Some ep ->
                let m = sym db ep.L3.ep_node in
                let ibgp = if nbr.bn_remote_as = bgp.bp_as then 1 else 0 in
                (* receiving side n learns from m with next hop = peer ip *)
                fact db "session" [| n; m; nbr.bn_peer; ibgp |]
              | None -> (
                match Dp_env.find_peer env nbr.bn_peer with
                | Some xp ->
                  List.iter
                    (fun (xa : Dp_env.external_announcement) ->
                      fact db "extAnn"
                        [| n; Prefix.network xa.xa_prefix; Prefix.length xa.xa_prefix;
                           nbr.bn_peer;
                           List.length xa.xa_as_path |])
                    xp.Dp_env.xp_announcements
                | None -> ()))
            bgp.bp_neighbors)
        cfg.bgp)
    configs

let load_rules db =
  let v i = V i in
  let c x = C x in
  (* stratum 1: connected + static + OSPF path exploration.
     The recursive dist rule retains EVERY discovered path cost — the
     memory-hungry intermediate state Lesson 1 describes. *)
  rule db ~head:("connected", [| v 0; v 1; v 2 |]) ~body:[ ("iface", [| v 0; v 1; v 2 |]) ] ();
  rule db
    ~head:("dist", [| v 0; v 1; v 2; v 3 |])
    ~body:[ ("ospfLink", [| v 0; v 1; v 2; v 3 |]) ]
    ();
  rule db
    ~head:("dist", [| v 0; v 1; v 6; v 3 |])
    ~body:
      [ ("dist", [| v 0; v 4; v 5; v 3 |]); ("ospfLink", [| v 4; v 1; v 7; v 8 |]) ]
    ~guards:[ (fun b -> b.(5) + b.(7) <= 1024); (fun b -> b.(0) <> b.(1)) ]
    ~computes:[ (6, fun b -> b.(5) + b.(7)) ]
    ();
  stratum db;
  (* stratum 2: best OSPF distances *)
  agg_min db
    ~head:("bestDist", [| v 0; v 1; v 2 |])
    ~source:("dist", [| v 0; v 1; v 2; v 3 |])
    ~value:2;
  stratum db;
  (* stratum 3: OSPF routes via the best distance *)
  rule db
    ~head:("ospfRoute", [| v 0; v 4; v 5; v 3; v 7 |])
    ~body:
      [ ("bestDist", [| v 0; v 1; v 2 |]); ("dist", [| v 0; v 1; v 2; v 3 |]);
        ("ospfPrefix", [| v 1; v 4; v 5; v 6 |]) ]
    ~computes:[ (7, fun b -> b.(2) + b.(6)) ]
    ();
  (* BGP: policy-free propagation; iBGP-learned routes do not re-advertise
     over iBGP (full-mesh semantics). Every (pathlen, nexthop) variant is
     retained. *)
  rule db
    ~head:("bgpRoute", [| v 0; v 1; v 2; c 0; c 0; c 0 |])
    ~body:[ ("bgpNetwork", [| v 0; v 1; v 2 |]) ]
    ();
  rule db
    ~head:("bgpRoute", [| v 0; v 1; v 2; v 3; v 4; c 0 |])
    ~body:[ ("extAnn", [| v 0; v 1; v 2; v 3; v 4 |]) ]
    ();
  rule db
    ~head:("bgpRoute", [| v 0; v 1; v 2; v 6; v 8; v 7 |])
    ~body:
      [ ("session", [| v 0; v 5; v 6; v 7 |]);
        ("bgpRoute", [| v 5; v 1; v 2; v 3; v 4; v 9 |]) ]
    ~guards:
      [ (fun b -> not (b.(7) = 1 && b.(9) = 1)) (* no iBGP re-advertisement *);
        (fun b -> b.(4) <= 32) ]
    ~computes:[ (8, fun b -> b.(4) + (1 - b.(7))) ]
    ();
  stratum db;
  agg_min db
    ~head:("bestPlen", [| v 0; v 1; v 2; v 3 |])
    ~source:("bgpRoute", [| v 0; v 1; v 2; v 4; v 3; v 5 |])
    ~value:3;
  stratum db;
  rule db
    ~head:("bgpBest", [| v 0; v 1; v 2; v 4 |])
    ~body:
      [ ("bestPlen", [| v 0; v 1; v 2; v 3 |]);
        ("bgpRoute", [| v 0; v 1; v 2; v 4; v 3; v 5 |]) ]
    ();
  (* main RIB: admin-distance ranks *)
  rule db
    ~head:("candidate", [| v 0; v 1; v 2; c 0 |])
    ~body:[ ("connected", [| v 0; v 1; v 2 |]) ]
    ();
  rule db
    ~head:("candidate", [| v 0; v 1; v 2; c 1 |])
    ~body:[ ("staticRoute", [| v 0; v 1; v 2; v 3 |]) ]
    ();
  rule db
    ~head:("candidate", [| v 0; v 1; v 2; c 2 |])
    ~body:[ ("ospfRoute", [| v 0; v 1; v 2; v 3; v 4 |]) ]
    ();
  rule db
    ~head:("candidate", [| v 0; v 1; v 2; c 3 |])
    ~body:[ ("bgpBest", [| v 0; v 1; v 2; v 3 |]) ]
    ();
  stratum db;
  agg_min db
    ~head:("bestRank", [| v 0; v 1; v 2; v 3 |])
    ~source:("candidate", [| v 0; v 1; v 2; v 3 |])
    ~value:3;
  stratum db

let run ~configs ~env =
  let db = create () in
  load_facts db ~configs ~env;
  load_rules db;
  solve db;
  let routes =
    List.map
      (fun t -> (sym_name db t.(0), Prefix.make t.(1) t.(2), t.(3)))
      (tuples db "bestRank")
  in
  { db; routes; derived_facts = fact_count db }

let coverage r =
  List.sort_uniq compare (List.map (fun (n, p, _) -> (n, p)) r.routes)
