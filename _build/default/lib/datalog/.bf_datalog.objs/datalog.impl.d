lib/datalog/datalog.ml: Array Hashtbl List Option
