lib/datalog/datalog.mli:
