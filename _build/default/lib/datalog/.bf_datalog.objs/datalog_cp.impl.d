lib/datalog/datalog_cp.ml: Array Datalog Dp_env L3 List Option Ospf_engine Prefix Vi
