lib/datalog/datalog_cp.mli: Datalog Dp_env Prefix Vi
