type term = V of int | C of int

type rule = {
  r_head : string * term array;
  r_body : (string * term array) list;
  r_guards : (int array -> bool) list;
  r_computes : (int * (int array -> int)) list;
  r_nvars : int;
}

type aggregation = {
  a_head : string * term array;
  a_source : string * term array;
  a_value : int;
  a_nvars : int;
}

module Tuples = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )
  let hash = Hashtbl.hash
end)

type relation = {
  mutable all : unit Tuples.t;
  mutable delta : int array list;  (* new tuples from the last iteration *)
  mutable index : (int, int array list) Hashtbl.t;  (* by first argument *)
}

type db = {
  relations : (string, relation) Hashtbl.t;
  mutable strata : (rule list * aggregation list) list;  (* reversed *)
  mutable cur_rules : rule list;
  mutable cur_aggs : aggregation list;
  symbols : (string, int) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable next_sym : int;
}

let create () =
  { relations = Hashtbl.create 64; strata = []; cur_rules = []; cur_aggs = [];
    symbols = Hashtbl.create 64; names = Hashtbl.create 64;
    next_sym = 0x4000_0000 (* symbols live far from small ints *) }

let sym db name =
  match Hashtbl.find_opt db.symbols name with
  | Some i -> i
  | None ->
    let i = db.next_sym in
    db.next_sym <- i + 1;
    Hashtbl.add db.symbols name i;
    Hashtbl.add db.names i name;
    i

let sym_name db i = Option.value (Hashtbl.find_opt db.names i) ~default:(string_of_int i)

let relation db name =
  match Hashtbl.find_opt db.relations name with
  | Some r -> r
  | None ->
    let r = { all = Tuples.create 64; delta = []; index = Hashtbl.create 64 } in
    Hashtbl.add db.relations name r;
    r

let insert db name tuple =
  let r = relation db name in
  if not (Tuples.mem r.all tuple) then begin
    Tuples.add r.all tuple ();
    r.delta <- tuple :: r.delta;
    let k = if Array.length tuple > 0 then tuple.(0) else 0 in
    Hashtbl.replace r.index k
      (tuple :: Option.value (Hashtbl.find_opt r.index k) ~default:[]);
    true
  end
  else false

let fact db name tuple = ignore (insert db name tuple)

let max_var terms acc =
  Array.fold_left
    (fun acc t ->
      match t with
      | V v -> max acc (v + 1)
      | C _ -> acc)
    acc terms

let rule db ~head ~body ?(guards = []) ?(computes = []) () =
  let nvars =
    List.fold_left (fun acc (_, ts) -> max_var ts acc) (max_var (snd head) 0) body
  in
  let nvars = List.fold_left (fun acc (v, _) -> max acc (v + 1)) nvars computes in
  db.cur_rules <-
    { r_head = head; r_body = body; r_guards = guards; r_computes = computes;
      r_nvars = nvars }
    :: db.cur_rules

let agg_min db ~head ~source ~value =
  let nvars = max_var (snd head) (max_var (snd source) (value + 1)) in
  db.cur_aggs <- { a_head = head; a_source = source; a_value = value; a_nvars = nvars } :: db.cur_aggs

let stratum db =
  db.strata <- (List.rev db.cur_rules, List.rev db.cur_aggs) :: db.strata;
  db.cur_rules <- [];
  db.cur_aggs <- []

(* Match a tuple against an atom's terms under the current binding. *)
let match_atom binding terms tuple =
  let n = Array.length terms in
  if Array.length tuple <> n then false
  else begin
    let ok = ref true in
    let undo = ref [] in
    let i = ref 0 in
    while !ok && !i < n do
      (match terms.(!i) with
       | C c -> if tuple.(!i) <> c then ok := false
       | V v ->
         if binding.(v) = min_int then begin
           binding.(v) <- tuple.(!i);
           undo := v :: !undo
         end
         else if binding.(v) <> tuple.(!i) then ok := false);
      incr i
    done;
    if not !ok then List.iter (fun v -> binding.(v) <- min_int) !undo;
    !ok
  end

(* Candidate tuples for an atom given the binding: use the first-argument
   index when that argument is bound. *)
let candidates db binding (name, terms) ~delta_only =
  let r = relation db name in
  if delta_only then r.delta
  else
    let key =
      if Array.length terms = 0 then None
      else
        match terms.(0) with
        | C c -> Some c
        | V v -> if binding.(v) <> min_int then Some binding.(v) else None
    in
    match key with
    | Some k -> Option.value (Hashtbl.find_opt r.index k) ~default:[]
    | None -> Tuples.fold (fun t () acc -> t :: acc) r.all []

let eval_rule db rule ~delta_rel out =
  (* semi-naive: one designated body atom reads only the delta *)
  let binding = Array.make (max 1 rule.r_nvars) min_int in
  let rec go atoms idx =
    match atoms with
    | [] ->
      List.iter (fun (v, f) -> binding.(v) <- f binding) rule.r_computes;
      if List.for_all (fun g -> g binding) rule.r_guards then begin
        let hname, hterms = rule.r_head in
        let tuple =
          Array.map
            (function
              | C c -> c
              | V v -> binding.(v))
            hterms
        in
        out := (hname, tuple) :: !out
      end;
      List.iter (fun (v, _) -> binding.(v) <- min_int) rule.r_computes
    | atom :: rest ->
      let saved = Array.copy binding in
      List.iter
        (fun tuple ->
          if match_atom binding (snd atom) tuple then begin
            go rest (idx + 1);
            Array.blit saved 0 binding 0 (Array.length binding)
          end)
        (candidates db binding atom ~delta_only:(idx = delta_rel))
  in
  go rule.r_body 0

let run_aggregation db agg =
  let sname, sterms = agg.a_source in
  let r = relation db sname in
  let best : (int array, int) Hashtbl.t = Hashtbl.create 64 in
  let binding = Array.make (max 1 agg.a_nvars) min_int in
  Tuples.iter
    (fun tuple () ->
      Array.fill binding 0 (Array.length binding) min_int;
      if match_atom binding sterms tuple then begin
        let hname, hterms = agg.a_head in
        ignore hname;
        let key =
          Array.map
            (function
              | C c -> c
              | V v -> if v = agg.a_value then min_int else binding.(v))
            hterms
        in
        let v = binding.(agg.a_value) in
        match Hashtbl.find_opt best key with
        | Some cur when cur <= v -> ()
        | Some _ | None -> Hashtbl.replace best key v
      end)
    r.all;
  let hname, hterms = agg.a_head in
  Hashtbl.iter
    (fun key v ->
      let tuple =
        Array.mapi
          (fun i _ ->
            match hterms.(i) with
            | V var when var = agg.a_value -> v
            | _ -> key.(i))
          hterms
      in
      ignore (insert db hname tuple))
    best

let solve db =
  if db.cur_rules <> [] || db.cur_aggs <> [] then stratum db;
  let strata = List.rev db.strata in
  List.iter
    (fun (rules, aggs) ->
      (* Iterate to fixpoint. The first round must consider all facts (new
         strata see prior state whose deltas were consumed). *)
      let first = ref true in
      let continue_ = ref true in
      while !continue_ do
        let out = ref [] in
        List.iter
          (fun rule ->
            if !first then eval_rule db rule ~delta_rel:(-1) out
            else
              (* once per body position, reading delta there *)
              List.iteri (fun i _ -> eval_rule db rule ~delta_rel:i out) rule.r_body)
          rules;
        (* clear deltas, then insert new facts to form the next delta *)
        Hashtbl.iter (fun _ r -> r.delta <- []) db.relations;
        let changed = ref false in
        List.iter (fun (name, tuple) -> if insert db name tuple then changed := true) !out;
        first := false;
        if not !changed then continue_ := false
      done;
      List.iter (fun agg -> run_aggregation db agg) aggs;
      Hashtbl.iter (fun _ r -> r.delta <- []) db.relations)
    strata

let tuples db name =
  match Hashtbl.find_opt db.relations name with
  | Some r -> Tuples.fold (fun t () acc -> t :: acc) r.all []
  | None -> []

let relation_size db name =
  match Hashtbl.find_opt db.relations name with
  | Some r -> Tuples.length r.all
  | None -> 0

let fact_count db =
  Hashtbl.fold (fun _ r acc -> acc + Tuples.length r.all) db.relations 0
