(** A stratified, semi-naive Datalog engine.

    This reproduces the architecture of the {e original} Batfish stage 2
    (§2): the control plane is a set of recursive rules evaluated to a fixed
    point by a general solver. Its two production-killing properties are
    faithfully present (Lesson 1): no control over evaluation order, and
    retention of {e all} derived facts — including routes later discarded —
    whose count {!fact_count} exposes for the memory comparison.

    Tuples are arrays of ints; intern symbols with {!sym}. *)

type db
type term = V of int  (** variable, numbered from 0 *) | C of int  (** constant *)

val create : unit -> db

(** Intern a string as a constant. *)
val sym : db -> string -> int

val sym_name : db -> int -> string

(** Assert a base fact. *)
val fact : db -> string -> int array -> unit

(** [rule db ~head ~body] adds a rule to the current stratum. Body atoms are
    joined left to right. [guards] run once all body variables are bound
    (argument = variable valuation). [computes] bind additional variables
    from bound ones — the escape hatch LogicBlox-style arithmetic needs. *)
val rule :
  db ->
  head:string * term array ->
  body:(string * term array) list ->
  ?guards:(int array -> bool) list ->
  ?computes:(int * (int array -> int)) list ->
  unit ->
  unit

(** [agg_min db ~head ~source ~group ~value] adds a minimum aggregation over
    [source]: for each valuation of the [group] variables, the head is
    derived with [value] bound to the minimum. Aggregations evaluate at the
    end of their stratum. *)
val agg_min :
  db -> head:string * term array -> source:string * term array -> value:int -> unit

(** Close the current stratum; later rules see the fixpoint of earlier
    strata. *)
val stratum : db -> unit

(** Evaluate all strata to fixed points (semi-naive). *)
val solve : db -> unit

val tuples : db -> string -> int array list
val relation_size : db -> string -> int

(** Total facts derived across all relations (the retained intermediate
    state the paper calls out). *)
val fact_count : db -> int
