(** The original Batfish stage 2, reconstructed: a control-plane model
    written as Datalog rules (§2), used as the Figure 3 baseline.

    Feature scope matches the class of network the original tool supported
    (the paper benchmarks it only on NET1): connected routes, static routes,
    OSPF with costs, and policy-free BGP with full-mesh iBGP semantics.
    Route maps, reflectors, and session checks are beyond it — which is
    Lesson 1's point. *)

type result = {
  db : Datalog.db;
  (* best routes per node as (node, prefix, protocol-rank) *)
  routes : (string * Prefix.t * int) list;
  derived_facts : int;  (** everything the solver retained *)
}

(** Build facts from the VI configs/environment, load the rules, and solve. *)
val run : configs:Vi.t list -> env:Dp_env.t -> result

(** (node, prefix) pairs with a best route — for cross-checking against the
    imperative engine. *)
val coverage : result -> (string * Prefix.t) list
