(** Routes: the unit of RIB state.

    [arrival] is the logical clock (§4.1.2): BGP best-path selection breaks
    ties on arrival time, like routers do, which removes pathological
    re-advertisement loops. *)

type next_hop = Nh_ip of Ipv4.t | Nh_iface of string | Nh_discard

type t = {
  net : Prefix.t;
  protocol : Route_proto.t;
  admin : int;
  metric : int;
  next_hop : next_hop;
  tag : int;
  attrs : Attrs.t option;  (** BGP only *)
  arrival : int;  (** logical clock; 0 for local routes *)
  from_peer : Ipv4.t;  (** sending peer; 0 when locally originated *)
  from_rid : Ipv4.t;  (** sender's router id *)
  ospf_area : int;
}

val connected : net:Prefix.t -> iface:string -> t
val local : ip:Ipv4.t -> iface:string -> t
val static : net:Prefix.t -> nh:next_hop -> ad:int -> tag:int -> t

val ospf :
  proto:Route_proto.t -> net:Prefix.t -> nh:next_hop -> metric:int -> area:int -> t

val bgp :
  proto:Route_proto.t ->
  net:Prefix.t ->
  nh:next_hop ->
  attrs:Attrs.t ->
  arrival:int ->
  from_peer:Ipv4.t ->
  from_rid:Ipv4.t ->
  t

(** BGP attributes, or defaults for non-BGP routes. *)
val get_attrs : t -> Attrs.t

(** Identity of a candidate within a RIB entry: a newly merged route replaces
    the candidate with the same key (same peer for BGP, same next hop for
    IGPs). *)
val candidate_key : t -> int * int * int

val next_hop_ip : t -> Ipv4.t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Structural equality ignoring the arrival clock (used for delta
    normalization: a re-learned identical route is not a change). *)
val same : t -> t -> bool
