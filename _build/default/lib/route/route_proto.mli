(** Routing protocols and their administrative distances. *)

type t =
  | Connected
  | Local  (** host route for an interface's own address *)
  | Static
  | Ospf  (** intra-area *)
  | Ospf_ia  (** inter-area *)
  | Ospf_e1
  | Ospf_e2
  | Ebgp
  | Ibgp

val to_string : t -> string

(** Cisco-style default administrative distance. *)
val admin_distance : t -> int

(** Preference rank among OSPF route types (intra < inter < E1 < E2). *)
val ospf_rank : t -> int

val is_bgp : t -> bool
val is_ospf : t -> bool

(** Match against a redistribution source keyword ("static", "connected",
    "ospf", "bgp", "direct"). *)
val matches_source : t -> string -> bool
