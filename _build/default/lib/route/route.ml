type next_hop = Nh_ip of Ipv4.t | Nh_iface of string | Nh_discard

type t = {
  net : Prefix.t;
  protocol : Route_proto.t;
  admin : int;
  metric : int;
  next_hop : next_hop;
  tag : int;
  attrs : Attrs.t option;
  arrival : int;
  from_peer : Ipv4.t;
  from_rid : Ipv4.t;
  ospf_area : int;
}

let base net protocol admin metric next_hop =
  { net; protocol; admin; metric; next_hop; tag = 0; attrs = None; arrival = 0;
    from_peer = 0; from_rid = 0; ospf_area = 0 }

let connected ~net ~iface = base net Route_proto.Connected 0 0 (Nh_iface iface)
let local ~ip ~iface = base (Prefix.host ip) Route_proto.Local 0 0 (Nh_iface iface)

let static ~net ~nh ~ad ~tag =
  { (base net Route_proto.Static ad 0 nh) with tag }

let ospf ~proto ~net ~nh ~metric ~area =
  { (base net proto (Route_proto.admin_distance proto) metric nh) with
    ospf_area = area }

let bgp ~proto ~net ~nh ~attrs ~arrival ~from_peer ~from_rid =
  { (base net proto (Route_proto.admin_distance proto) 0 nh) with
    attrs = Some attrs; arrival; from_peer; from_rid;
    metric = attrs.Attrs.med }

let get_attrs r = Option.value r.attrs ~default:Attrs.default

let nh_key = function
  | Nh_ip ip -> ip
  | Nh_iface s -> Hashtbl.hash s lor (1 lsl 40)
  | Nh_discard -> 1 lsl 41

let candidate_key r =
  if Route_proto.is_bgp r.protocol then (1, r.from_peer, 0)
  else (0, r.from_peer, nh_key r.next_hop)

let next_hop_ip r =
  match r.next_hop with
  | Nh_ip ip -> Some ip
  | Nh_iface _ | Nh_discard -> None

let next_hop_to_string = function
  | Nh_ip ip -> Ipv4.to_string ip
  | Nh_iface i -> i
  | Nh_discard -> "discard"

let to_string r =
  let a = get_attrs r in
  let bgp_part =
    if Route_proto.is_bgp r.protocol then
      Printf.sprintf " lp=%d med=%d path=[%s]" a.Attrs.local_pref a.Attrs.med
        (Attrs.as_path_to_string a.Attrs.as_path)
    else ""
  in
  Printf.sprintf "%s via %s (%s ad=%d metric=%d)%s" (Prefix.to_string r.net)
    (next_hop_to_string r.next_hop)
    (Route_proto.to_string r.protocol)
    r.admin r.metric bgp_part

let pp fmt r = Format.pp_print_string fmt (to_string r)

let same a b = { a with arrival = 0 } = { b with arrival = 0 }
