lib/route/route.mli: Attrs Format Ipv4 Prefix Route_proto
