lib/route/route.ml: Attrs Format Hashtbl Ipv4 Option Prefix Printf Route_proto
