lib/route/cmp.mli: Ipv4 Route
