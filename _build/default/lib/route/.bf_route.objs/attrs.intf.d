lib/route/attrs.mli: Ipv4 Vi
