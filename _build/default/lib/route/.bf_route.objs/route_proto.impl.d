lib/route/route_proto.ml:
