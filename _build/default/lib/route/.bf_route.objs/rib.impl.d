lib/route/rib.ml: Hashtbl List Option Prefix_trie Route
