lib/route/attrs.ml: Hashtbl Int Intern Ipv4 List Option String Vi
