lib/route/rib.mli: Ipv4 Prefix Route
