lib/route/route_proto.mli:
