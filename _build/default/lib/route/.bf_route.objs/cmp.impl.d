lib/route/cmp.ml: Attrs Int List Option Route Route_proto Stdlib
