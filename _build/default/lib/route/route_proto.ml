type t =
  | Connected
  | Local
  | Static
  | Ospf
  | Ospf_ia
  | Ospf_e1
  | Ospf_e2
  | Ebgp
  | Ibgp

let to_string = function
  | Connected -> "connected"
  | Local -> "local"
  | Static -> "static"
  | Ospf -> "ospf"
  | Ospf_ia -> "ospfIA"
  | Ospf_e1 -> "ospfE1"
  | Ospf_e2 -> "ospfE2"
  | Ebgp -> "bgp"
  | Ibgp -> "ibgp"

let admin_distance = function
  | Connected -> 0
  | Local -> 0
  | Static -> 1
  | Ebgp -> 20
  | Ospf | Ospf_ia -> 110
  | Ospf_e1 | Ospf_e2 -> 110
  | Ibgp -> 200

let ospf_rank = function
  | Ospf -> 0
  | Ospf_ia -> 1
  | Ospf_e1 -> 2
  | Ospf_e2 -> 3
  | Connected | Local | Static | Ebgp | Ibgp -> 4

let is_bgp = function
  | Ebgp | Ibgp -> true
  | Connected | Local | Static | Ospf | Ospf_ia | Ospf_e1 | Ospf_e2 -> false

let is_ospf = function
  | Ospf | Ospf_ia | Ospf_e1 | Ospf_e2 -> true
  | Connected | Local | Static | Ebgp | Ibgp -> false

let matches_source t src =
  match (t, src) with
  | (Connected | Local), ("connected" | "direct") -> true
  | Static, "static" -> true
  | (Ospf | Ospf_ia | Ospf_e1 | Ospf_e2), "ospf" -> true
  | (Ebgp | Ibgp), "bgp" -> true
  | _ -> false
