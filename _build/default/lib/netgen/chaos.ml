(* Deterministic fault injection for generated networks. Every mutator is
   driven by the seeded splitmix stream (Rng), so a failing seed reproduces
   exactly; the chaos property test feeds hundreds of mutated snapshots
   through the full pipeline and asserts "diagnostics, never exceptions". *)

type mutation = {
  mut_kind : string;
  mut_files : string list;  (* every file whose content the mutation touched *)
  mut_detail : string;
}

let kinds =
  [ "truncate"; "corrupt-line"; "delete-line"; "duplicate-line"; "garbage-bytes";
    "empty-file"; "binary-blob"; "duplicate-hostname" ]

let garbage_char rng = Char.chr (Rng.int rng 256)

let lines text = String.split_on_char '\n' text
let unlines ls = String.concat "\n" ls

let splice text pos insert = String.sub text 0 pos ^ insert ^ String.sub text pos (String.length text - pos)

(* Apply one line-level edit at a random line; None when the text has no
   usable line (so the driver can pick another mutation). *)
let edit_line rng text f =
  let ls = Array.of_list (lines text) in
  if Array.length ls = 0 then None
  else begin
    let i = Rng.int rng (Array.length ls) in
    f ls i;
    Some (unlines (Array.to_list ls))
  end

let mutate_text ~rng ~kind text =
  match kind with
  | "truncate" ->
    if String.length text = 0 then None
    else Some (String.sub text 0 (Rng.int rng (String.length text)))
  | "corrupt-line" ->
    edit_line rng text (fun ls i ->
        let l = ls.(i) in
        ls.(i) <-
          (if String.length l = 0 then
             String.init (1 + Rng.int rng 8) (fun _ -> garbage_char rng)
           else
             String.map (fun c -> if Rng.int rng 3 = 0 then garbage_char rng else c) l))
  | "delete-line" ->
    edit_line rng text (fun ls i -> ls.(i) <- "")
  | "duplicate-line" ->
    edit_line rng text (fun ls i -> ls.(i) <- ls.(i) ^ "\n" ^ ls.(i))
  | "garbage-bytes" ->
    let blob = String.init (1 + Rng.int rng 64) (fun _ -> garbage_char rng) in
    Some (splice text (Rng.int rng (String.length text + 1)) blob)
  | "empty-file" -> Some ""
  | "binary-blob" ->
    Some (String.init (16 + Rng.int rng 256) (fun _ -> garbage_char rng))
  | kind -> invalid_arg ("Chaos.mutate_text: unknown mutation kind " ^ kind)

let mutate_network ~rng ?(mutations = 1) (net : Netgen.network) =
  let files = Array.of_list net.Netgen.n_configs in
  let applied = ref [] in
  if Array.length files > 0 then
    for _ = 1 to mutations do
      let kind = Rng.pick_list rng kinds in
      let i = Rng.int rng (Array.length files) in
      let name, text = files.(i) in
      match kind with
      | "duplicate-hostname" ->
        if Array.length files >= 2 then begin
          let j = (i + 1 + Rng.int rng (Array.length files - 1)) mod Array.length files in
          let other_name, other_text = files.(j) in
          files.(i) <- (name, other_text);
          applied :=
            { mut_kind = kind; mut_files = [ name; other_name ];
              mut_detail = Printf.sprintf "%s now holds a copy of %s" name other_name }
            :: !applied
        end
      | kind -> (
        match mutate_text ~rng ~kind text with
        | Some text' ->
          files.(i) <- (name, text');
          applied :=
            { mut_kind = kind; mut_files = [ name ];
              mut_detail = Printf.sprintf "%s: %s" kind name }
            :: !applied
        | None -> ())
    done;
  ({ net with Netgen.n_configs = Array.to_list files }, List.rev !applied)

let affected_files muts = List.sort_uniq compare (List.concat_map (fun m -> m.mut_files) muts)
