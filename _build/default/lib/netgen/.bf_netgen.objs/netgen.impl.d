lib/netgen/netgen.ml: Array Dp_env Filename Fun Ipv4 List Prefix Printf String
