lib/netgen/chaos.mli: Netgen Rng
