lib/netgen/chaos.ml: Array Char List Netgen Printf Rng String
