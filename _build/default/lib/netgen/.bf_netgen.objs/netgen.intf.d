lib/netgen/netgen.mli: Dp_env
