lib/core/batfish.mli: Bdd Dataplane Dp_env Fquery Netgen Packet Prefix Questions Traceroute Vi Warning
