lib/core/batfish.mli: Bdd Dataplane Diag Dp_env Fquery Netgen Packet Prefix Questions Traceroute Vi Warning
