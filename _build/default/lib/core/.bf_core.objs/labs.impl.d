lib/core/labs.ml: Batfish Dataplane Dp_env Ipv4 List Option Packet Prefix Printf Rib Route Route_proto String Traceroute
