lib/core/batfish.ml: Array Bdd Dataplane Diag Dp_env Fgraph Field Filename Fquery Hashtbl List Netgen Packet Parse Pktset Printexc Printf Questions String Sys Traceroute Vi Warning
