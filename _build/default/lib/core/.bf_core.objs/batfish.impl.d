lib/core/batfish.ml: Array Bdd Dataplane Dp_env Fgraph Field Filename Fquery Hashtbl List Netgen Packet Parse Pktset Printf Questions Sys Traceroute Vi Warning
