lib/core/labs.mli: Dp_env Packet
