type expectation =
  | Route_present of string * string * string
  | Route_absent of string * string
  | Flow_delivered of string * string option * Packet.t
  | Flow_dropped of string * string option * Packet.t
  | Session_established of string * string
  | Session_down of string * string

type lab = {
  lab_name : string;
  lab_doc : string;
  lab_configs : (string * string) list;
  lab_env : Dp_env.t;
  lab_expectations : expectation list;
}

type outcome = { ok_expectation : string; ok_pass : bool; ok_detail : string }

let describe = function
  | Route_present (n, p, proto) -> Printf.sprintf "%s has %s via %s" n p proto
  | Route_absent (n, p) -> Printf.sprintf "%s has no route to %s" n p
  | Flow_delivered (n, _, pkt) -> Printf.sprintf "%s delivers %s" n (Packet.to_string pkt)
  | Flow_dropped (n, _, pkt) -> Printf.sprintf "%s drops %s" n (Packet.to_string pkt)
  | Session_established (n, p) -> Printf.sprintf "%s session to %s up" n p
  | Session_down (n, p) -> Printf.sprintf "%s session to %s down" n p

let run lab =
  let snap = Batfish.Snapshot.of_texts lab.lab_configs in
  let bf = Batfish.init ~env:lab.lab_env snap in
  let dp = Batfish.dataplane bf in
  let check = function
    | Route_present (node, pfx, proto) -> (
      let best = Rib.best (Dataplane.node dp node).Dataplane.nr_main (Prefix.of_string pfx) in
      match
        List.find_opt (fun (r : Route.t) -> Route_proto.to_string r.protocol = proto) best
      with
      | Some r -> (true, Route.to_string r)
      | None ->
        ( false,
          Printf.sprintf "found [%s]" (String.concat "; " (List.map Route.to_string best)) ))
    | Route_absent (node, pfx) ->
      let best = Rib.best (Dataplane.node dp node).Dataplane.nr_main (Prefix.of_string pfx) in
      if best = [] then (true, "absent")
      else (false, Printf.sprintf "unexpectedly present: %s" (Route.to_string (List.hd best)))
    | Flow_delivered (start, ingress, pkt) ->
      let traces = Batfish.traceroute bf ~start ?ingress pkt in
      let ok =
        traces <> []
        && List.for_all
             (fun (tr : Traceroute.trace) -> Traceroute.is_delivered tr.disposition)
             traces
      in
      ( ok,
        String.concat " | "
          (List.map
             (fun (tr : Traceroute.trace) -> Traceroute.disposition_to_string tr.disposition)
             traces) )
    | Flow_dropped (start, ingress, pkt) ->
      let traces = Batfish.traceroute bf ~start ?ingress pkt in
      let ok =
        List.for_all
          (fun (tr : Traceroute.trace) ->
            not (Traceroute.is_delivered tr.disposition))
          traces
      in
      ( ok,
        String.concat " | "
          (List.map
             (fun (tr : Traceroute.trace) -> Traceroute.disposition_to_string tr.disposition)
             traces) )
    | Session_established (node, peer) ->
      let p = Ipv4.of_string peer in
      let s =
        List.find_opt
          (fun (s : Dataplane.session_report) -> s.sr_node = node && s.sr_peer = p)
          dp.Dataplane.sessions
      in
      (match s with
       | Some s when s.sr_established -> (true, "ESTABLISHED")
       | Some s -> (false, Option.value s.sr_reason ~default:"down")
       | None -> (false, "no such session"))
    | Session_down (node, peer) -> (
      let p = Ipv4.of_string peer in
      match
        List.find_opt
          (fun (s : Dataplane.session_report) -> s.sr_node = node && s.sr_peer = p)
          dp.Dataplane.sessions
      with
      | Some s when not s.sr_established ->
        (true, Option.value s.sr_reason ~default:"down")
      | Some _ -> (false, "unexpectedly established")
      | None -> (true, "no session (configured side down)"))
  in
  List.map
    (fun e ->
      let pass, detail = check e in
      { ok_expectation = describe e; ok_pass = pass; ok_detail = detail })
    lab.lab_expectations

let all_pass outcomes = List.for_all (fun o -> o.ok_pass) outcomes

(* ------------------------------------------------------------------ *)
(* The lab repository                                                  *)
(* ------------------------------------------------------------------ *)

let text lines = String.concat "\n" lines
let ip = Ipv4.of_string

(* Lab 1: recommended OSPF + eBGP border configuration. *)
let lab_standard_border =
  { lab_name = "standard-border";
    lab_doc = "recommended-template OSPF core with an eBGP border";
    lab_configs =
      [ ( "core.cfg",
          text
            [ "hostname core";
              "interface Loopback0"; " ip address 10.255.0.1 255.255.255.255";
              " ip ospf area 0"; " ip ospf cost 1";
              "interface e1"; " ip address 10.0.0.1 255.255.255.252";
              " ip ospf area 0"; " ip ospf cost 10";
              "interface lan"; " ip address 10.1.0.1 255.255.0.0";
              " ip ospf area 0"; " ip ospf cost 10";
              "router ospf 1"; " passive-interface lan"; " passive-interface Loopback0" ] );
        ( "border.cfg",
          text
            [ "hostname border";
              "interface e1"; " ip address 10.0.0.2 255.255.255.252";
              " ip ospf area 0"; " ip ospf cost 10";
              "interface ext"; " ip address 203.0.113.2 255.255.255.252";
              "router ospf 1"; " redistribute bgp metric 20 subnets";
              "router bgp 65000";
              " neighbor 203.0.113.1 remote-as 65010";
              " redistribute connected" ] ) ];
    lab_env =
      Dp_env.make
        [ Dp_env.peer ~ip:(ip "203.0.113.1") ~asn:65010
            [ Dp_env.announce (Prefix.of_string "8.8.8.0/24") ] ];
    lab_expectations =
      [ Session_established ("border", "203.0.113.1");
        Route_present ("border", "8.8.8.0/24", "bgp");
        Route_present ("border", "10.1.0.0/16", "ospf");
        Route_present ("core", "10.255.0.1/32", "local");
        Flow_delivered
          ("core", Some "lan", Packet.tcp ~src:(ip "10.1.0.9") ~dst:(ip "10.0.0.2") 179) ] }

(* Lab 2: a deviation — the neighbor references an undefined route-map.
   What should happen is undocumented vendor behaviour (Lesson 3): IOS
   treats it as deny-all. *)
let lab_undefined_route_map =
  { lab_name = "deviation-undefined-route-map";
    lab_doc = "BGP import references a route-map that is not defined (IOS: deny)";
    lab_configs =
      [ ( "r1.cfg",
          text
            [ "hostname r1";
              "interface e1"; " ip address 10.0.0.1 255.255.255.252";
              "router bgp 100";
              " neighbor 10.0.0.2 remote-as 65010";
              " neighbor 10.0.0.2 route-map DOES_NOT_EXIST in" ] ) ];
    lab_env =
      Dp_env.make
        [ Dp_env.peer ~ip:(ip "10.0.0.2") ~asn:65010
            [ Dp_env.announce (Prefix.of_string "9.9.9.0/24") ] ];
    lab_expectations =
      [ Session_established ("r1", "10.0.0.2");
        Route_absent ("r1", "9.9.9.0/24") ] }

(* Lab 3: a deviation — one-sided session configuration. *)
let lab_one_sided_session =
  { lab_name = "deviation-one-sided-session";
    lab_doc = "only one side configures the BGP neighbor";
    lab_configs =
      [ ( "a.cfg",
          text
            [ "hostname a";
              "interface e1"; " ip address 10.0.0.1 255.255.255.252";
              "router bgp 100"; " neighbor 10.0.0.2 remote-as 200" ] );
        ( "b.cfg",
          text
            [ "hostname b";
              "interface e1"; " ip address 10.0.0.2 255.255.255.252";
              "router bgp 200" ] ) ];
    lab_env = Dp_env.empty;
    lab_expectations = [ Session_down ("a", "10.0.0.2") ] }

(* Lab 4: well-known communities honoured at export. The provider tags
   customer routes no-export at import, so they reach the provider but are
   not re-exported to other eBGP peers. *)
let lab_no_export =
  { lab_name = "well-known-communities";
    lab_doc = "routes tagged no-export must not cross the next eBGP boundary";
    lab_configs =
      [ ( "edge.cfg",
          text
            [ "hostname edge";
              "interface lan"; " ip address 10.5.0.1 255.255.0.0";
              "interface e1"; " ip address 10.0.0.1 255.255.255.252";
              "router bgp 100";
              " neighbor 10.0.0.2 remote-as 200";
              " network 10.5.0.0 mask 255.255.0.0" ] );
        ( "peer.cfg",
          text
            [ "hostname peer";
              "interface e1"; " ip address 10.0.0.2 255.255.255.252";
              "interface far"; " ip address 10.0.1.1 255.255.255.252";
              "route-map CUST_IN permit 10"; " set community no-export";
              "router bgp 200";
              " neighbor 10.0.0.1 remote-as 100";
              " neighbor 10.0.0.1 route-map CUST_IN in";
              " neighbor 10.0.1.2 remote-as 300" ] );
        ( "far.cfg",
          text
            [ "hostname far";
              "interface far"; " ip address 10.0.1.2 255.255.255.252";
              "router bgp 300";
              " neighbor 10.0.1.1 remote-as 200" ] ) ];
    lab_env = Dp_env.empty;
    lab_expectations =
      [ Route_present ("peer", "10.5.0.0/16", "bgp");
        (* no-export: peer must not pass it on to far *)
        Route_absent ("far", "10.5.0.0/16") ] }

(* Lab 5: numbered ACLs, the classic syntax. *)
let lab_numbered_acl =
  { lab_name = "numbered-acls";
    lab_doc = "classic numbered access lists filter as the named ones do";
    lab_configs =
      [ ( "gw.cfg",
          text
            [ "hostname gw";
              "interface lan"; " ip address 10.6.0.1 255.255.0.0";
              " ip access-group 105 in";
              "interface wan"; " ip address 10.0.0.1 255.255.255.252";
              "access-list 105 permit tcp 10.6.0.0 0.0.255.255 any eq 443";
              "access-list 105 deny ip any any";
              "ip route 0.0.0.0 0.0.0.0 10.0.0.2" ] );
        ( "up.cfg",
          text
            [ "hostname up";
              "interface wan"; " ip address 10.0.0.2 255.255.255.252";
              "interface net"; " ip address 8.8.8.1 255.255.255.0";
              "ip route 10.6.0.0 255.255.0.0 10.0.0.1" ] ) ];
    lab_env = Dp_env.empty;
    lab_expectations =
      [ Flow_delivered
          ("gw", Some "lan", Packet.tcp ~src:(ip "10.6.1.1") ~dst:(ip "8.8.8.8") 443);
        Flow_dropped
          ("gw", Some "lan", Packet.tcp ~src:(ip "10.6.1.1") ~dst:(ip "8.8.8.8") 80) ] }

let builtin =
  [ lab_standard_border; lab_undefined_route_map; lab_one_sided_session;
    lab_no_export; lab_numbered_acl ]
