(** The §4.3.1 validation framework, offline edition.

    The paper's workflow: (1) network experts build small labs exercising a
    feature and its deviations, (2) runtime state is collected from real
    devices (show commands, pings, traceroutes), (3) the Batfish model is
    validated against that collected state, daily, to catch regressions.

    We cannot run vendor device images here, so the "collected state" is a
    checked-in expectation list per lab — the same regression protection with
    a curated oracle. Labs deliberately include {e deviations} from standard
    configuration (Lesson 3): undefined references, one-sided sessions,
    shadowed ACL lines. *)

type expectation =
  | Route_present of string * string * string
      (** node, prefix, protocol name as shown by `routes` *)
  | Route_absent of string * string  (** node, prefix *)
  | Flow_delivered of string * string option * Packet.t  (** start, ingress *)
  | Flow_dropped of string * string option * Packet.t
  | Session_established of string * string  (** node, peer ip *)
  | Session_down of string * string

type lab = {
  lab_name : string;
  lab_doc : string;
  lab_configs : (string * string) list;
  lab_env : Dp_env.t;
  lab_expectations : expectation list;
}

type outcome = { ok_expectation : string; ok_pass : bool; ok_detail : string }

(** Validate the model against the lab's expected runtime state. *)
val run : lab -> outcome list

val all_pass : outcome list -> bool

(** The checked-in lab repository ("data from labs ... goes into a
    repository, and step 3 is run daily"). *)
val builtin : lab list
