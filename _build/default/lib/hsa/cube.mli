(** Ternary cubes over packet-header bits: the "custom data structure"
    family of representations (HSA's difference-of-cubes, NoD's ternary
    vectors) that the paper's BDD engine replaced (§4.2, Lesson 2).

    A set of packets is a list of cubes (a union). Negation and subtraction
    multiply cube counts — the blow-up that motivates canonical BDDs. *)

type t

(** Header layout: dstIp(32) srcIp(32) proto(8) srcPort(16) dstPort(16)
    tcpFlags(8) — 112 bits. *)
val width : int

val star : t

(** [set_field cube offset bits value] constrains a field. *)
val set_field : t -> int -> int -> int -> t

val dst_ip_off : int
val src_ip_off : int
val proto_off : int
val src_port_off : int
val dst_port_off : int
val tcp_flags_off : int

val of_packet : Packet.t -> t
val matches : t -> Packet.t -> bool
val intersect : t -> t -> t option

(** [subtract a b] = a \ b as a union of disjoint cubes. *)
val subtract : t -> t -> t list

(** {2 Sets as cube lists} *)

type set = t list

val empty : set
val full : set
val is_empty : set -> bool
val member : set -> Packet.t -> bool
val inter : set -> set -> set
val union : set -> set -> set
val diff : set -> set -> set

(** Number of cubes (the size metric the benchmark reports). *)
val size : set -> int

(** Prefix constraint on an IP field. *)
val ip_prefix : int -> Prefix.t -> t

(** Port range at a field offset, as a union of cubes. *)
val port_range : int -> int -> int -> set

(** Drop cubes subsumed by another cube in the set (quadratic; keeps
    fixpoints finite). *)
val compact : set -> set
