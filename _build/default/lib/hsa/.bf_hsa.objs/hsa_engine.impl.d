lib/hsa/hsa_engine.ml: Array Cube Dataplane Fib Fun Hashtbl Int L3 List Packet Prefix Queue Semantics Vi
