lib/hsa/cube.ml: Bytes Ipv4 List Packet Prefix
