lib/hsa/cube.mli: Packet Prefix
