lib/hsa/hsa_engine.mli: Cube Dataplane Vi
