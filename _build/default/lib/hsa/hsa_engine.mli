(** Header-space-analysis-style data-plane verification over cube lists
    (the custom-encoding baseline of Figure 3 / Lesson 2).

    Covers the FIB + ACL pipeline (no NAT/zones, like the original HSA);
    the benchmark networks for the comparison are chosen accordingly. *)

type t

val build : configs:(string -> Vi.t option) -> dp:Dataplane.t -> t

(** Per-start-location sets that can reach a delivered disposition. *)
val to_delivered : t -> ((string * string) * Cube.set) list

(** Per-start-location sets that can reach a drop. *)
val to_dropped : t -> ((string * string) * Cube.set) list

(** Multipath-consistency violations per start location. *)
val multipath_consistency : t -> ((string * string) * Cube.set) list

(** Peak cube count observed during propagation (the blow-up metric). *)
val peak_cubes : t -> int

val start_locations : t -> (string * string) list
