(* A cube is a Bytes of width entries: '0', '1' or '*'. Clear over fast;
   this is the baseline the BDD engine is measured against. *)

type t = Bytes.t

let width = 112
let dst_ip_off = 0
let src_ip_off = 32
let proto_off = 64
let src_port_off = 72
let dst_port_off = 88
let tcp_flags_off = 104

let star = Bytes.make width '*'

let set_field c off bits v =
  let c = Bytes.copy c in
  for i = 0 to bits - 1 do
    Bytes.set c (off + i) (if (v lsr (bits - 1 - i)) land 1 = 1 then '1' else '0')
  done;
  c

let packet_bits (p : Packet.t) =
  let b = Bytes.make width '0' in
  let put off bits v =
    for i = 0 to bits - 1 do
      Bytes.set b (off + i) (if (v lsr (bits - 1 - i)) land 1 = 1 then '1' else '0')
    done
  in
  put dst_ip_off 32 p.dst_ip;
  put src_ip_off 32 p.src_ip;
  put proto_off 8 p.protocol;
  put src_port_off 16 p.src_port;
  put dst_port_off 16 p.dst_port;
  put tcp_flags_off 8 p.tcp_flags;
  b

let of_packet p = packet_bits p

let matches c p =
  let bits = packet_bits p in
  let rec go i =
    i >= width
    || ((Bytes.get c i = '*' || Bytes.get c i = Bytes.get bits i) && go (i + 1))
  in
  go 0

let intersect a b =
  let out = Bytes.make width '*' in
  let rec go i =
    if i >= width then Some out
    else
      let x = Bytes.get a i and y = Bytes.get b i in
      if x = '*' then begin
        Bytes.set out i y;
        go (i + 1)
      end
      else if y = '*' || x = y then begin
        Bytes.set out i x;
        go (i + 1)
      end
      else None
  in
  go 0

let subtract a b =
  match intersect a b with
  | None -> [ a ]
  | Some _ ->
    (* carve a \ b: for each constrained position of b where a is looser,
       emit a copy of a with that bit flipped, fixing previous positions. *)
    let acc = ref [] in
    let prefix = Bytes.copy a in
    for i = 0 to width - 1 do
      let bi = Bytes.get b i in
      if bi <> '*' && Bytes.get a i = '*' then begin
        let piece = Bytes.copy prefix in
        Bytes.set piece i (if bi = '1' then '0' else '1');
        acc := piece :: !acc;
        Bytes.set prefix i bi
      end
    done;
    !acc

type set = t list

let empty = []
let full = [ star ]
let is_empty s = s = []
let member s p = List.exists (fun c -> matches c p) s

let inter s1 s2 =
  List.concat_map (fun a -> List.filter_map (fun b -> intersect a b) s2) s1

let union s1 s2 = s1 @ s2
let diff s1 s2 = List.fold_left (fun acc b -> List.concat_map (fun a -> subtract a b) acc) s1 s2
let size s = List.length s

let ip_prefix off p =
  let c = Bytes.make width '*' in
  for i = 0 to Prefix.length p - 1 do
    Bytes.set c (off + i) (if Ipv4.bit (Prefix.network p) i then '1' else '0')
  done;
  c

(* A range decomposes into O(bits) cubes, standard interval-to-ternary. *)
let port_range off lo hi =
  let rec go lo hi acc =
    if lo > hi then acc
    else begin
      (* largest aligned block starting at lo that fits *)
      let rec block size =
        let bigger = size * 2 in
        if lo mod bigger = 0 && lo + bigger - 1 <= hi && bigger <= 65536 then block bigger
        else size
      in
      let size = block 1 in
      let bits_free =
        let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
        log2 size 0
      in
      let c = Bytes.make width '*' in
      for i = 0 to 15 - bits_free do
        Bytes.set c (off + i) (if (lo lsr (15 - i)) land 1 = 1 then '1' else '0')
      done;
      go (lo + size) hi (c :: acc)
    end
  in
  go lo hi []

let subsumes a b =
  (* a covers b *)
  let rec go i =
    i >= width
    || ((Bytes.get a i = '*' || Bytes.get a i = Bytes.get b i) && go (i + 1))
  in
  go 0

let compact s =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      if List.exists (fun k -> subsumes k c) kept || List.exists (fun k -> subsumes k c) rest
      then go kept rest
      else go (c :: kept) rest
  in
  go [] s
