type loc =
  | Src of string * string
  | Fwd of string
  | Deliver of string
  | Drop of string

type edge = { e_from : int; e_to : int; e_filter : Cube.set }

type t = {
  locs : loc array;
  index : (loc, int) Hashtbl.t;
  out_edges : edge list array;
  in_edges : edge list array;
  starts : (string * string) list;
  mutable peak : int;
}

let peak_cubes t = t.peak
let start_locations t = t.starts

let acl_set (acl : Vi.acl) =
  let line_set (l : Vi.acl_line) =
    let base = Cube.star in
    let base =
      match l.l_proto with
      | Some p -> Cube.set_field base Cube.proto_off 8 p
      | None -> base
    in
    let with_ips =
      Cube.intersect
        (Cube.ip_prefix Cube.src_ip_off l.l_src)
        (Cube.ip_prefix Cube.dst_ip_off l.l_dst)
    in
    let base =
      match with_ips with
      | Some ips -> Cube.intersect base ips
      | None -> None
    in
    match base with
    | None -> Cube.empty
    | Some base ->
      let tcp_udp =
        [ Cube.set_field Cube.star Cube.proto_off 8 Packet.Proto.tcp;
          Cube.set_field Cube.star Cube.proto_off 8 Packet.Proto.udp ]
      in
      let ports off ranges set =
        if ranges = [] then set
        else
          Cube.inter (Cube.inter set tcp_udp)
            (List.concat_map (fun (lo, hi) -> Cube.port_range off lo hi) ranges)
      in
      let set = [ base ] in
      let set = ports Cube.src_port_off l.l_src_ports set in
      let set = ports Cube.dst_port_off l.l_dst_ports set in
      let set =
        if l.l_established then
          (* TCP with ACK or RST set *)
          Cube.inter
            (Cube.inter set
               [ Cube.set_field Cube.star Cube.proto_off 8 Packet.Proto.tcp ])
            [ Cube.set_field Cube.star (Cube.tcp_flags_off + 3) 1 1 (* ACK *);
              Cube.set_field Cube.star (Cube.tcp_flags_off + 5) 1 1 (* RST *) ]
        else set
      in
      set
  in
  let earlier = ref Cube.empty in
  let permit = ref Cube.empty in
  List.iter
    (fun (l : Vi.acl_line) ->
      let eff = Cube.diff (line_set l) !earlier in
      if l.l_action = Vi.Permit then permit := Cube.union !permit eff;
      earlier := Cube.union !earlier (line_set l))
    acl.acl_lines;
  Cube.compact !permit

let acl_set_named (cfg : Vi.t) name =
  match Vi.find_acl cfg name with
  | Some acl -> acl_set acl
  | None ->
    if (Semantics.for_vendor cfg.vendor).Semantics.undefined_acl_permits then Cube.full
    else Cube.empty

let build ~configs ~dp =
  let topo = dp.Dataplane.topo in
  let locs = ref [] and count = ref 0 in
  let index = Hashtbl.create 256 in
  let node_of l =
    match Hashtbl.find_opt index l with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.add index l i;
      locs := l :: !locs;
      i
  in
  let edges = ref [] in
  let add_edge f t filter = edges := { e_from = f; e_to = t; e_filter = filter } :: !edges in
  let starts = ref [] in
  List.iter
    (fun name ->
      match configs name with
      | None -> ()
      | Some (cfg : Vi.t) ->
        let fwd = node_of (Fwd name) in
        let deliver = node_of (Deliver name) in
        let drop = node_of (Drop name) in
        List.iter
          (fun (ep : L3.endpoint) ->
            let src = node_of (Src (name, ep.ep_iface)) in
            if L3.neighbors topo ~node:name ~iface:ep.ep_iface = [] then
              starts := (name, ep.ep_iface) :: !starts;
            let in_set =
              match Vi.find_interface cfg ep.ep_iface with
              | Some { Vi.if_in_acl = Some acl; _ } -> acl_set_named cfg acl
              | Some _ | None -> Cube.full
            in
            add_edge src fwd in_set;
            add_edge src drop (Cube.diff Cube.full in_set))
          (L3.endpoints topo name);
        (* FIB cells, longest prefix first *)
        let fib = (Dataplane.node dp name).Dataplane.nr_fib in
        let entries =
          List.sort
            (fun (a : Fib.entry) (b : Fib.entry) ->
              Int.compare (Prefix.length b.fe_prefix) (Prefix.length a.fe_prefix))
            (Fib.entries fib)
        in
        let covered = ref Cube.empty in
        List.iter
          (fun (e : Fib.entry) ->
            let cell =
              Cube.diff [ Cube.ip_prefix Cube.dst_ip_off e.fe_prefix ] !covered
            in
            covered := Cube.union !covered [ Cube.ip_prefix Cube.dst_ip_off e.fe_prefix ];
            if not (Cube.is_empty cell) then
              List.iter
                (fun action ->
                  match action with
                  | Fib.Receive -> add_edge fwd deliver cell
                  | Fib.Drop_null -> add_edge fwd drop cell
                  | Fib.Forward { out_iface; gateway } -> (
                    let out_set =
                      match Vi.find_interface cfg out_iface with
                      | Some { Vi.if_out_acl = Some acl; _ } ->
                        Cube.inter cell (acl_set_named cfg acl)
                      | Some _ | None -> cell
                    in
                    add_edge fwd drop (Cube.diff cell out_set);
                    match gateway with
                    | Some gw -> (
                      match L3.owner_of_ip topo gw with
                      | Some ep when ep.L3.ep_node <> name ->
                        add_edge fwd (node_of (Src (ep.L3.ep_node, ep.L3.ep_iface))) out_set
                      | Some _ | None -> add_edge fwd deliver out_set)
                    | None -> (
                      match L3.endpoint topo ~node:name ~iface:out_iface with
                      | Some my_ep ->
                        List.iter
                          (fun (nep : L3.endpoint) ->
                            let d =
                              Cube.set_field Cube.star Cube.dst_ip_off 32 nep.ep_ip
                            in
                            add_edge fwd (node_of (Src (nep.ep_node, nep.ep_iface)))
                              (Cube.inter out_set [ d ]))
                          (L3.neighbors topo ~node:name ~iface:out_iface);
                        let neighbor_dsts =
                          List.map
                            (fun (nep : L3.endpoint) ->
                              Cube.set_field Cube.star Cube.dst_ip_off 32 nep.ep_ip)
                            (L3.neighbors topo ~node:name ~iface:out_iface)
                        in
                        add_edge fwd deliver
                          (Cube.diff
                             (Cube.inter out_set
                                [ Cube.ip_prefix Cube.dst_ip_off my_ep.ep_prefix ])
                             neighbor_dsts)
                      | None -> add_edge fwd deliver out_set)))
                e.fe_actions)
          entries;
        (* no route *)
        add_edge fwd drop (Cube.diff Cube.full !covered))
      dp.Dataplane.node_order;
  let locs = Array.of_list (List.rev !locs) in
  let out_edges = Array.make (Array.length locs) [] in
  let in_edges = Array.make (Array.length locs) [] in
  List.iter
    (fun e ->
      out_edges.(e.e_from) <- e :: out_edges.(e.e_from);
      in_edges.(e.e_to) <- e :: in_edges.(e.e_to))
    !edges;
  { locs; index; out_edges; in_edges; starts = List.rev !starts; peak = 0 }

(* Backward propagation: filters are their own preimage. *)
let backward t seeds =
  let n = Array.length t.locs in
  let sets = Array.make n Cube.empty in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue v =
    if not queued.(v) then begin
      queued.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter
    (fun (v, s) ->
      sets.(v) <- Cube.union sets.(v) s;
      enqueue v)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    queued.(v) <- false;
    List.iter
      (fun e ->
        let contribution = Cube.inter e.e_filter sets.(v) in
        let fresh = Cube.diff contribution sets.(e.e_from) in
        if not (Cube.is_empty fresh) then begin
          sets.(e.e_from) <- Cube.compact (Cube.union sets.(e.e_from) fresh);
          t.peak <- max t.peak (Cube.size sets.(e.e_from));
          enqueue e.e_from
        end)
      t.in_edges.(v)
  done;
  sets

let starts_with_sets t sets =
  List.map
    (fun (node, iface) ->
      let id = Hashtbl.find t.index (Src (node, iface)) in
      ((node, iface), sets.(id)))
    t.starts

let to_delivered t =
  let seeds =
    Array.to_list
      (Array.mapi
         (fun i l ->
           match l with
           | Deliver _ -> Some (i, Cube.full)
           | Src _ | Fwd _ | Drop _ -> None)
         t.locs)
    |> List.filter_map Fun.id
  in
  starts_with_sets t (backward t seeds)

let to_dropped t =
  let seeds =
    Array.to_list
      (Array.mapi
         (fun i l ->
           match l with
           | Drop _ -> Some (i, Cube.full)
           | Src _ | Fwd _ | Deliver _ -> None)
         t.locs)
    |> List.filter_map Fun.id
  in
  starts_with_sets t (backward t seeds)

let multipath_consistency t =
  let deliver = to_delivered t in
  let drop = to_dropped t in
  List.filter_map
    (fun (start, d) ->
      match List.assoc_opt start drop with
      | Some dr ->
        let v = Cube.inter d dr in
        if Cube.is_empty v then None else Some (start, v)
      | None -> None)
    deliver
