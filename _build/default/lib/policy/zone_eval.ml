type verdict = Zone_permit | Zone_deny | Zone_filter of Vi.acl

let zone_of cfg iface =
  Option.map (fun (z : Vi.zone) -> z.z_name) (Vi.find_zone_of_interface cfg iface)

let verdict (cfg : Vi.t) ~from_iface ~to_iface =
  if cfg.zones = [] then Zone_permit
  else
    match from_iface with
    | None -> Zone_permit (* router-originated traffic bypasses zones *)
    | Some from_iface -> (
      let z_in = zone_of cfg from_iface and z_out = zone_of cfg to_iface in
      if z_in = z_out then Zone_permit
      else
        match (z_in, z_out) with
        | Some a, Some b -> (
          match
            List.find_opt
              (fun (p : Vi.zone_policy) -> p.zp_from = a && p.zp_to = b)
              cfg.zone_policies
          with
          | None -> Zone_deny
          | Some p -> (
            match Vi.find_acl cfg p.zp_acl with
            | Some acl -> Zone_filter acl
            | None ->
              if (Semantics.for_vendor cfg.vendor).Semantics.undefined_acl_permits
              then Zone_permit
              else Zone_deny))
        | None, _ | _, None -> Zone_deny)
