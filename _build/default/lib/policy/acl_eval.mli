(** Concrete ACL evaluation: does a packet match a filter?

    Used by the traceroute engine and by BGP session-establishment checks
    (the symbolic engine encodes the same semantics as BDDs — differential
    testing keeps the two aligned). *)

val matches_line : Vi.acl_line -> Packet.t -> bool

(** First-match semantics with implicit deny; returns the verdict and the
    matching line (None for the implicit deny). *)
val action : Vi.acl -> Packet.t -> Vi.action * Vi.acl_line option

val permits : Vi.acl -> Packet.t -> bool
