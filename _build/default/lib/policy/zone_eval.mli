(** Zone-based firewall semantics shared by the concrete and symbolic
    engines: traffic between different zones requires an explicit policy;
    unzoned-to-zoned traffic is dropped on zoned devices; intra-zone traffic
    and router-originated traffic pass. *)

type verdict = Zone_permit | Zone_deny | Zone_filter of Vi.acl

val zone_of : Vi.t -> string -> string option

(** [verdict cfg ~from_iface ~to_iface]; [from_iface = None] means the
    packet originated at the device. *)
val verdict : Vi.t -> from_iface:string option -> to_iface:string -> verdict
