(* Vendor-dependent behaviours for situations router documentation does not
   cover (Lesson 3): chiefly, what happens when a referenced structure is not
   defined. These defaults were the kind of thing Batfish had to learn by
   testing real device software in emulators (§4.3.1). *)

type t = {
  undefined_route_map_permits : bool;
  undefined_prefix_list_permits : bool;
  undefined_acl_permits : bool;
}

let for_vendor = function
  | "cisco-ios" ->
    (* IOS treats a BGP policy referencing a missing route-map as deny-all. *)
    { undefined_route_map_permits = false;
      undefined_prefix_list_permits = true;
      undefined_acl_permits = true }
  | "arista-eos" ->
    (* EOS permits routes when the referenced map is missing. *)
    { undefined_route_map_permits = true;
      undefined_prefix_list_permits = true;
      undefined_acl_permits = true }
  | "juniper" ->
    (* Junos rejects commits with dangling references; if one sneaks through
       a snapshot, treat it as reject. *)
    { undefined_route_map_permits = false;
      undefined_prefix_list_permits = false;
      undefined_acl_permits = false }
  | _ ->
    { undefined_route_map_permits = false;
      undefined_prefix_list_permits = true;
      undefined_acl_permits = true }
