type ctx = {
  cfg : Vi.t;
  semantics : Semantics.t;
  self_ip : Ipv4.t option;
}

let make_ctx ?self_ip cfg =
  { cfg; semantics = Semantics.for_vendor cfg.Vi.vendor; self_ip }

type result = Accepted of Route.t | Denied

(* --- prefix lists --- *)

let entry_matches (e : Vi.prefix_list_entry) p =
  let elen = Prefix.length e.ple_prefix and plen = Prefix.length p in
  let network_ok =
    plen >= elen && Prefix.contains e.ple_prefix (Prefix.network p)
  in
  let len_ok =
    match (e.ple_ge, e.ple_le) with
    | None, None -> plen = elen
    | Some g, None -> plen >= g
    | None, Some l -> plen <= l
    | Some g, Some l -> plen >= g && plen <= l
  in
  network_ok && len_ok

let prefix_list_permits (pl : Vi.prefix_list) p =
  let rec go = function
    | [] -> false
    | e :: rest -> if entry_matches e p then e.Vi.ple_action = Vi.Permit else go rest
  in
  go pl.pl_entries

let run_prefix_list_named ctx name p =
  match Vi.find_prefix_list ctx.cfg name with
  | Some pl -> prefix_list_permits pl p
  | None -> ctx.semantics.Semantics.undefined_prefix_list_permits

(* --- community lists --- *)

let community_list_matches (cl : Vi.community_list) communities =
  let rec go = function
    | [] -> false
    | (action, c) :: rest ->
      if List.mem c communities then action = Vi.Permit else go rest
  in
  go cl.cl_entries

(* --- AS-path regexes --- *)

(* Cisco AS-path regex: '_' matches a delimiter (space, start, end). Paths
   print as "65001 65002". Translate to a POSIX regex on that string. *)
let translate_as_regex s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '_' -> Buffer.add_string buf "( |^|$)"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let regex_cache : (string, Re.re) Hashtbl.t = Hashtbl.create 64

let as_path_regex_matches regex path =
  let re =
    match Hashtbl.find_opt regex_cache regex with
    | Some re -> re
    | None ->
      let re =
        try Re.Posix.compile_pat (translate_as_regex regex)
        with _ -> Re.compile (Re.str regex)
      in
      Hashtbl.add regex_cache regex re;
      re
  in
  Re.execp re (Attrs.as_path_to_string path)

let as_path_list_matches (apl : Vi.as_path_list) path =
  let rec go = function
    | [] -> false
    | (action, regex) :: rest ->
      if as_path_regex_matches regex path then action = Vi.Permit else go rest
  in
  go apl.apl_entries

(* --- match conditions --- *)

let cond_matches ctx (r : Route.t) = function
  | Vi.Match_prefix_list name -> run_prefix_list_named ctx name r.net
  | Vi.Match_prefix p -> Prefix.equal p r.net
  | Vi.Match_community name -> (
    match Vi.find_community_list ctx.cfg name with
    | Some cl -> community_list_matches cl (Route.get_attrs r).Attrs.communities
    | None -> false)
  | Vi.Match_as_path name -> (
    match Vi.find_as_path_list ctx.cfg name with
    | Some apl -> as_path_list_matches apl (Route.get_attrs r).Attrs.as_path
    | None -> false)
  | Vi.Match_metric m -> r.metric = m
  | Vi.Match_tag t -> r.tag = t
  | Vi.Match_protocol p -> Route_proto.matches_source r.protocol p

(* --- set actions --- *)

let apply_set ctx (r : Route.t) set =
  let attrs = Route.get_attrs r in
  match set with
  | Vi.Set_local_pref v -> { r with attrs = Some (Attrs.update ~local_pref:v attrs) }
  | Vi.Set_metric v ->
    { r with metric = v; attrs = Some (Attrs.update ~med:v attrs) }
  | Vi.Set_communities (cs, additive) ->
    let communities = if additive then cs @ attrs.Attrs.communities else cs in
    { r with attrs = Some (Attrs.update ~communities attrs) }
  | Vi.Set_next_hop ip -> { r with next_hop = Route.Nh_ip ip }
  | Vi.Set_next_hop_self -> (
    match ctx.self_ip with
    | Some ip -> { r with next_hop = Route.Nh_ip ip }
    | None -> r)
  | Vi.Set_as_path_prepend asns ->
    { r with attrs = Some (Attrs.update ~as_path:(asns @ attrs.Attrs.as_path) attrs) }
  | Vi.Set_weight w -> { r with attrs = Some (Attrs.update ~weight:w attrs) }
  | Vi.Set_tag t -> { r with tag = t }
  | Vi.Set_origin o -> { r with attrs = Some (Attrs.update ~origin:o attrs) }

let run_route_map ctx (rm : Vi.route_map) r =
  let rec go = function
    | [] -> Denied (* implicit deny at the end *)
    | (c : Vi.rm_clause) :: rest ->
      if List.for_all (cond_matches ctx r) c.rc_matches then
        match c.rc_action with
        | Vi.Permit -> Accepted (List.fold_left (apply_set ctx) r c.rc_sets)
        | Vi.Deny -> Denied
      else go rest
  in
  go rm.rm_clauses

let run_named ctx name r =
  match Vi.find_route_map ctx.cfg name with
  | Some rm -> run_route_map ctx rm r
  | None ->
    if ctx.semantics.Semantics.undefined_route_map_permits then Accepted r else Denied

let run_optional ctx policy r =
  match policy with
  | Some name -> run_named ctx name r
  | None -> Accepted r
