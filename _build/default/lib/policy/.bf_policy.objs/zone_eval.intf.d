lib/policy/zone_eval.mli: Vi
