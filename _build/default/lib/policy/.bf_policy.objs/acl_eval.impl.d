lib/policy/acl_eval.ml: List Packet Prefix Vi
