lib/policy/zone_eval.ml: List Option Semantics Vi
