lib/policy/policy_eval.mli: Ipv4 Prefix Route Semantics Vi
