lib/policy/policy_eval.ml: Attrs Buffer Hashtbl Ipv4 List Prefix Re Route Route_proto Semantics String Vi
