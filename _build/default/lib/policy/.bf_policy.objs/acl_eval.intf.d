lib/policy/acl_eval.mli: Packet Vi
