lib/policy/semantics.ml:
