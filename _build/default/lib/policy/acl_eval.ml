let port_in ranges p = ranges = [] || List.exists (fun (lo, hi) -> p >= lo && p <= hi) ranges

let matches_line (l : Vi.acl_line) (p : Packet.t) =
  (match l.l_proto with
   | Some proto -> p.protocol = proto
   | None -> true)
  && Prefix.contains l.l_src p.src_ip
  && Prefix.contains l.l_dst p.dst_ip
  && (l.l_src_ports = [] || ((p.protocol = Packet.Proto.tcp || p.protocol = Packet.Proto.udp) && port_in l.l_src_ports p.src_port))
  && (l.l_dst_ports = [] || ((p.protocol = Packet.Proto.tcp || p.protocol = Packet.Proto.udp) && port_in l.l_dst_ports p.dst_port))
  && (not l.l_established
     || (p.protocol = Packet.Proto.tcp
        && p.tcp_flags land (Packet.Tcp_flags.ack lor Packet.Tcp_flags.rst) <> 0))
  && (match l.l_icmp_type with
      | Some t -> p.protocol = Packet.Proto.icmp && p.icmp_type = t
      | None -> true)

let action (acl : Vi.acl) p =
  let rec go = function
    | [] -> (Vi.Deny, None)
    | l :: rest -> if matches_line l p then (l.Vi.l_action, Some l) else go rest
  in
  go acl.acl_lines

let permits acl p = fst (action acl p) = Vi.Permit
