(** Greedy graph coloring (Welsh-Powell), used to schedule route exchange so
    that adjacent nodes never process in the same step (§4.1.2). *)

(** [greedy ~n edges] colors vertices [0..n-1]; adjacent vertices get
    different colors. Returns the color of each vertex; colors are
    [0..num_colors-1]. Deterministic for a given input. *)
val greedy : n:int -> (int * int) list -> int array

(** Number of colors used. *)
val count : int array -> int

(** [classes coloring] groups vertex ids by color, ascending color. *)
val classes : int array -> int list array

(** [valid ~n edges coloring] checks that no edge is monochromatic. *)
val valid : n:int -> (int * int) list -> int array -> bool
