let adjacency n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a <> b then begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end)
    edges;
  adj

let greedy ~n edges =
  let adj = adjacency n edges in
  let degree = Array.map List.length adj in
  let order = Array.init n (fun i -> i) in
  (* Highest degree first; ties broken by vertex id for determinism. *)
  Array.sort
    (fun a b ->
      let c = Int.compare degree.(b) degree.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let color = Array.make n (-1) in
  Array.iter
    (fun v ->
      let used = List.filter_map (fun w -> if color.(w) >= 0 then Some color.(w) else None) adj.(v) in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      color.(v) <- first_free 0)
    order;
  color

let count coloring = Array.fold_left (fun m c -> max m (c + 1)) 0 coloring

let classes coloring =
  let k = count coloring in
  let cls = Array.make k [] in
  for v = Array.length coloring - 1 downto 0 do
    cls.(coloring.(v)) <- v :: cls.(coloring.(v))
  done;
  cls

let valid ~n edges coloring =
  ignore n;
  List.for_all (fun (a, b) -> a = b || coloring.(a) <> coloring.(b)) edges
