(** Strongly connected components (Tarjan), used by forwarding-loop
    detection. *)

(** [compute ~n adj] returns the component id of each vertex; ids are in
    reverse topological order of the condensation. *)
val compute : n:int -> int list array -> int array

(** Vertices grouped by component. *)
val groups : int array -> int list array
