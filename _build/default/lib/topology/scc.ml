let compute ~n adj =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let comp_count = ref 0 in
  (* Iterative Tarjan to avoid stack overflow on long paths. *)
  let strongconnect v =
    let call_stack = ref [ (v, ref adj.(v)) ] in
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (u, rest) :: tail -> (
        match !rest with
        | w :: ws ->
          rest := ws;
          if index.(w) < 0 then begin
            index.(w) <- !counter;
            lowlink.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            call_stack := (w, ref adj.(w)) :: !call_stack
          end
          else if on_stack.(w) then lowlink.(u) <- min lowlink.(u) index.(w)
        | [] ->
          call_stack := tail;
          (match tail with
           | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
           | [] -> ());
          if lowlink.(u) = index.(u) then begin
            let rec pop () =
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- !comp_count;
                if w <> u then pop ()
              | [] -> ()
            in
            pop ();
            incr comp_count
          end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  comp

let groups comp =
  let k = Array.fold_left (fun m c -> max m (c + 1)) 0 comp in
  let g = Array.make k [] in
  for v = Array.length comp - 1 downto 0 do
    g.(comp.(v)) <- v :: g.(comp.(v))
  done;
  g
