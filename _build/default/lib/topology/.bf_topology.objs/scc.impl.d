lib/topology/scc.ml: Array
