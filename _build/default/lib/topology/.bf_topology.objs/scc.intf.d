lib/topology/scc.mli:
