lib/topology/l3.ml: Hashtbl Ipv4 List Prefix Vi
