lib/topology/l3.mli: Ipv4 Prefix Vi
