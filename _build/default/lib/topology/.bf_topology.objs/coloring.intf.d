lib/topology/coloring.mli:
