lib/topology/coloring.ml: Array Int List
