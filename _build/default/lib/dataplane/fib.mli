(** Forwarding tables derived from the main RIB, with recursive next-hop
    resolution. *)

type action =
  | Forward of { out_iface : string; gateway : Ipv4.t option }
      (** [gateway = None] means the destination is directly attached. *)
  | Drop_null  (** null-routed *)
  | Receive  (** destined to this device *)

type entry = { fe_prefix : Prefix.t; fe_actions : action list; fe_route : Route.t list }
type t

(** [of_rib ~node ~topo main_rib] resolves every best route. Routes whose
    next hop cannot be resolved are dropped from the FIB. *)
val of_rib : node:string -> topo:L3.t -> Rib.t -> t

(** Longest-prefix-match lookup; [] means no route (drop). *)
val lookup : t -> Ipv4.t -> action list

(** The matched entry, for trace annotation. *)
val lookup_entry : t -> Ipv4.t -> entry option

val entries : t -> entry list
val entry_count : t -> int

val action_to_string : action -> string
