type action =
  | Forward of { out_iface : string; gateway : Ipv4.t option }
  | Drop_null
  | Receive

type entry = { fe_prefix : Prefix.t; fe_actions : action list; fe_route : Route.t list }
type t = { trie : entry Prefix_trie.t }

(* Resolve a route's next hop to concrete forwarding actions. A gateway that
   is not directly connected resolves recursively through the RIB (bounded,
   as routers bound recursion). *)
let resolve ~node ~topo rib (route : Route.t) =
  let connected_out ip =
    List.find_opt (fun (ep : L3.endpoint) -> Prefix.contains ep.ep_prefix ip)
      (L3.endpoints topo node)
  in
  let rec go depth (nh : Route.next_hop) =
    if depth > 8 then []
    else
      match nh with
      | Route.Nh_discard -> [ Drop_null ]
      | Route.Nh_iface iface -> [ Forward { out_iface = iface; gateway = None } ]
      | Route.Nh_ip ip -> (
        match connected_out ip with
        | Some ep ->
          if ep.ep_ip = ip then [ Receive ]
          else [ Forward { out_iface = ep.ep_iface; gateway = Some ip } ]
        | None -> (
          match Rib.lookup rib ip with
          | None -> []
          | Some (_, routes) ->
            List.concat_map (fun (r : Route.t) -> go (depth + 1) r.next_hop) routes))
  in
  go 0 route.next_hop

let of_rib ~node ~topo rib =
  let trie =
    Rib.fold_best
      (fun prefix best acc ->
        if best = [] then acc
        else
          let actions =
            List.sort_uniq compare
              (List.concat_map
                 (fun (r : Route.t) ->
                   if r.protocol = Route_proto.Local then [ Receive ]
                   else resolve ~node ~topo rib r)
                 best)
          in
          if actions = [] then acc
          else
            Prefix_trie.add prefix
              { fe_prefix = prefix; fe_actions = actions; fe_route = best }
              acc)
      rib Prefix_trie.empty
  in
  { trie }

let lookup_entry t ip =
  match Prefix_trie.all_matches ip t.trie with
  | [] -> None
  | matches -> Some (snd (List.nth matches (List.length matches - 1)))

let lookup t ip =
  match lookup_entry t ip with
  | Some e -> e.fe_actions
  | None -> []

let entries t = List.map snd (Prefix_trie.to_list t.trie)
let entry_count t = Prefix_trie.cardinal t.trie

let action_to_string = function
  | Forward { out_iface; gateway = Some g } ->
    Printf.sprintf "out %s via %s" out_iface (Ipv4.to_string g)
  | Forward { out_iface; gateway = None } -> Printf.sprintf "out %s (attached)" out_iface
  | Drop_null -> "null-route"
  | Receive -> "receive"
