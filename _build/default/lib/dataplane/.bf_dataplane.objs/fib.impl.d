lib/dataplane/fib.ml: Ipv4 L3 List Prefix Prefix_trie Printf Rib Route Route_proto
