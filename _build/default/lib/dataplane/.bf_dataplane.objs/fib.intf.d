lib/dataplane/fib.mli: Ipv4 L3 Prefix Rib Route
