lib/dataplane/ospf_engine.mli: Dp_env Hashtbl Ipv4 L3 Prefix Rib Route Vi
