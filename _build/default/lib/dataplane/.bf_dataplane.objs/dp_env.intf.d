lib/dataplane/dp_env.mli: Ipv4 Prefix
