lib/dataplane/dataplane.ml: Acl_eval Array Attrs Cmp Coloring Dp_env Fib Hashtbl Int Ipv4 L3 List Obj Option Ospf_engine Packet Par Policy_eval Prefix Printf Rib Route Route_proto Semantics String Vi
