lib/dataplane/ospf_engine.ml: Array Cmp Dp_env Hashtbl Int Ipv4 L3 List Option Par Policy_eval Prefix Rib Route Route_proto Set Vi
