lib/dataplane/dataplane.mli: Dp_env Fib Hashtbl Ipv4 L3 Rib Vi
