lib/dataplane/dataplane.mli: Diag Dp_env Fib Hashtbl Ipv4 L3 Rib Vi
