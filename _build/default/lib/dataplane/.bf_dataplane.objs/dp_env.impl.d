lib/dataplane/dp_env.ml: Ipv4 List Prefix
