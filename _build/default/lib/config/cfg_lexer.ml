(* Line-oriented tokenization shared by the vendor parsers. *)

type line = {
  num : int;  (* 1-based line number in the source *)
  indent : int;
  tokens : string list;
  raw : string;
}

let tokenize s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let indent_of s =
  let n = String.length s in
  let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
  go 0

(* Comment lines ('!' in IOS, '#' in Juniper) and blank lines are dropped. *)
let lines_of_string text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw -> (i + 1, raw))
  |> List.filter_map (fun (num, raw) ->
         let trimmed = String.trim raw in
         if trimmed = "" || trimmed.[0] = '!' || trimmed.[0] = '#' then None
         else Some { num; indent = indent_of raw; tokens = tokenize trimmed; raw })
