(* Parse and conversion warnings. Batfish surfaces unrecognized syntax and
   undefined references rather than failing; the questions library turns
   these into user-facing answers.

   This type predates the pipeline-wide Diag subsystem and is kept as a thin
   compatibility layer for the parsers; [to_diag] lifts a warning into the
   structured diagnostic stream. *)

type kind =
  | Unrecognized_syntax
  | Undefined_reference of string * string  (* structure type, name *)
  | Bad_value
  | Unsupported_feature

type t = { w_node : string; w_line : int; w_text : string; w_kind : kind }

let make ~node ~line ~text kind = { w_node = node; w_line = line; w_text = text; w_kind = kind }

let kind_to_string = function
  | Unrecognized_syntax -> "unrecognized syntax"
  | Undefined_reference (ty, name) -> Printf.sprintf "undefined %s '%s'" ty name
  | Bad_value -> "bad value"
  | Unsupported_feature -> "unsupported feature"

let to_string w =
  Printf.sprintf "%s:%d: %s: %s" w.w_node w.w_line (kind_to_string w.w_kind) w.w_text

let to_diag ?file w =
  let severity =
    match w.w_kind with
    | Unrecognized_syntax | Unsupported_feature -> Diag.Warn
    | Undefined_reference _ | Bad_value -> Diag.Error
  in
  Diag.make ~node:w.w_node ?file ~line:w.w_line ~severity ~phase:Diag.Parse
    ~code:Diag.code_parse_warning
    (Printf.sprintf "%s: %s" (kind_to_string w.w_kind) w.w_text)
