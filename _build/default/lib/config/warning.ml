(* Parse and conversion warnings. Batfish surfaces unrecognized syntax and
   undefined references rather than failing; the questions library turns
   these into user-facing answers. *)

type kind =
  | Unrecognized_syntax
  | Undefined_reference of string * string  (* structure type, name *)
  | Bad_value
  | Unsupported_feature

type t = { w_node : string; w_line : int; w_text : string; w_kind : kind }

let make ~node ~line ~text kind = { w_node = node; w_line = line; w_text = text; w_kind = kind }

let kind_to_string = function
  | Unrecognized_syntax -> "unrecognized syntax"
  | Undefined_reference (ty, name) -> Printf.sprintf "undefined %s '%s'" ty name
  | Bad_value -> "bad value"
  | Unsupported_feature -> "unsupported feature"

let to_string w =
  Printf.sprintf "%s:%d: %s: %s" w.w_node w.w_line (kind_to_string w.w_kind) w.w_text
