lib/config/parse.ml: Cfg_lexer Ios_parser Ipv4 Juniper_parser List Option Prefix Printf Re Vi
