lib/config/cfg_lexer.ml: List String
