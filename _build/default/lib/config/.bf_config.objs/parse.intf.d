lib/config/parse.mli: Vi Warning
