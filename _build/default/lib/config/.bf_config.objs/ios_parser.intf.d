lib/config/ios_parser.mli: Vi Warning
