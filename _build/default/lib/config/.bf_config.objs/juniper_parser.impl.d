lib/config/juniper_parser.ml: Cfg_lexer Hashtbl Ipv4 List Option Packet Prefix Printf String Vi Warning
