lib/config/warning.ml: Diag Printf
