lib/config/warning.ml: Printf
