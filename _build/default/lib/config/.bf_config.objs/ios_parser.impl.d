lib/config/ios_parser.ml: Array Cfg_lexer Hashtbl Int Ipv4 List Option Packet Prefix String Vi Warning
