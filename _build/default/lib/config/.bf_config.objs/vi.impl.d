lib/config/vi.ml: Ipv4 List Option Prefix Printf String
