lib/config/juniper_parser.mli: Vi Warning
