type t =
  | Dst_ip
  | Src_ip
  | Dst_port
  | Src_port
  | Icmp_code
  | Icmp_type
  | Protocol
  | Tcp_flags
  | Dscp
  | Ecn
  | Fragment_offset
  | Packet_length

let all =
  [ Dst_ip; Src_ip; Dst_port; Src_port; Icmp_code; Icmp_type; Protocol;
    Tcp_flags; Dscp; Ecn; Fragment_offset; Packet_length ]

let bits = function
  | Dst_ip | Src_ip -> 32
  | Dst_port | Src_port -> 16
  | Icmp_code | Icmp_type | Protocol | Tcp_flags -> 8
  | Dscp -> 6
  | Ecn -> 2
  | Fragment_offset -> 13
  | Packet_length -> 16

let transformable = function
  | Dst_ip | Src_ip | Dst_port | Src_port -> true
  | Icmp_code | Icmp_type | Protocol | Tcp_flags | Dscp | Ecn | Fragment_offset
  | Packet_length -> false

let to_string = function
  | Dst_ip -> "dstIp"
  | Src_ip -> "srcIp"
  | Dst_port -> "dstPort"
  | Src_port -> "srcPort"
  | Icmp_code -> "icmpCode"
  | Icmp_type -> "icmpType"
  | Protocol -> "ipProtocol"
  | Tcp_flags -> "tcpFlags"
  | Dscp -> "dscp"
  | Ecn -> "ecn"
  | Fragment_offset -> "fragmentOffset"
  | Packet_length -> "packetLength"

let header_bits = List.fold_left (fun acc f -> acc + bits f) 0 all
let transform_bits = 96
let total_vars = header_bits + transform_bits

(* Transformable fields occupy interleaved (unprimed, primed) level pairs at
   the front of the order; the remaining fields follow contiguously. *)
let base =
  let tbl = Hashtbl.create 16 in
  let off = ref 0 in
  List.iter
    (fun f ->
      if transformable f then begin
        Hashtbl.add tbl f !off;
        off := !off + (2 * bits f)
      end)
    all;
  List.iter
    (fun f ->
      if not (transformable f) then begin
        Hashtbl.add tbl f !off;
        off := !off + bits f
      end)
    all;
  assert (!off = total_vars);
  tbl

let levels f =
  let b = Hashtbl.find base f in
  if transformable f then Array.init (bits f) (fun i -> b + (2 * i))
  else Array.init (bits f) (fun i -> b + i)

let primed_levels f =
  if not (transformable f) then invalid_arg "Field.primed_levels";
  let b = Hashtbl.find base f in
  Array.init (bits f) (fun i -> b + (2 * i) + 1)

let value_of_packet (p : Packet.t) = function
  | Dst_ip -> p.dst_ip
  | Src_ip -> p.src_ip
  | Dst_port -> p.dst_port
  | Src_port -> p.src_port
  | Icmp_code -> p.icmp_code
  | Icmp_type -> p.icmp_type
  | Protocol -> p.protocol
  | Tcp_flags -> p.tcp_flags
  | Dscp -> p.dscp
  | Ecn -> p.ecn
  | Fragment_offset -> p.fragment_offset
  | Packet_length -> p.packet_length
