(** Packet-header fields of the symbolic encoding.

    The variable order follows the paper (§4.2.2): fields constrained most
    often come first — destination IP, source IP, destination port, source
    port, ICMP code, ICMP type, IP protocol — followed by less-used fields.
    Within a field, the most significant bit comes first.

    The first four fields are {e transformable} (NAT can rewrite them); each
    of their 96 bits is paired with an interleaved primed variable, giving the
    261 network-independent variables the paper reports (165 header bits + 96
    primed bits). *)

type t =
  | Dst_ip
  | Src_ip
  | Dst_port
  | Src_port
  | Icmp_code
  | Icmp_type
  | Protocol
  | Tcp_flags
  | Dscp
  | Ecn
  | Fragment_offset
  | Packet_length

val all : t list
val bits : t -> int
val transformable : t -> bool
val to_string : t -> string

(** Total unprimed header bits (165). *)
val header_bits : int

(** Total variables including primed copies (261). *)
val total_vars : int

(** Levels of the field's unprimed bits, most significant first. *)
val levels : t -> int array

(** Levels of the field's primed bits; only for transformable fields. *)
val primed_levels : t -> int array

val value_of_packet : Packet.t -> t -> int
