lib/symbolic/field.ml: Array Hashtbl List Packet
