lib/symbolic/field.mli: Packet
