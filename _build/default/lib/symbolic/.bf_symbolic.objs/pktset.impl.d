lib/symbolic/pktset.ml: Array Bdd Field Hashtbl Ipv4 List Packet Prefix
