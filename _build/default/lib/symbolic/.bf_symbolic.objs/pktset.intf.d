lib/symbolic/pktset.mli: Bdd Field Packet Prefix
