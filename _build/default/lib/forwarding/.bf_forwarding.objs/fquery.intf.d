lib/forwarding/fquery.mli: Bdd Dataplane Fgraph Packet Pktset Prefix Vi
