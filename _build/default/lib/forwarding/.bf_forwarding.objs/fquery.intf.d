lib/forwarding/fquery.mli: Bdd Dataplane Diag Fgraph Packet Pktset Prefix Vi
