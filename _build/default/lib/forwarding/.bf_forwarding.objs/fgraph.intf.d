lib/forwarding/fgraph.mli: Bdd Dataplane Hashtbl Ipv4 Pktset Vi
