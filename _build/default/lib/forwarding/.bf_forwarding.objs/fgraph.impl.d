lib/forwarding/fgraph.ml: Acl_bdd Array Bdd Dataplane Fib Field Fun Hashtbl Int Ipv4 L3 List Option Pktset Prefix Printf Vi Zone_eval
