lib/forwarding/acl_bdd.ml: Bdd Field List Packet Pktset Semantics Vi
