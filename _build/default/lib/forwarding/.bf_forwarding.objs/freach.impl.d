lib/forwarding/freach.ml: Array Bdd Fgraph List Pktset Queue
