lib/forwarding/freach.mli: Bdd Fgraph
