lib/forwarding/fquery.ml: Array Bdd Dataplane Fgraph Field Freach List Option Packet Pktset Scc Vi
