lib/forwarding/fquery.ml: Array Bdd Dataplane Diag Fgraph Field Freach List Option Packet Pktset Printexc Printf Scc Vi
