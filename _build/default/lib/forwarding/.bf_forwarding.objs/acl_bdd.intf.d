lib/forwarding/acl_bdd.mli: Bdd Pktset Vi
