(** Symbolic (BDD) encoding of packet filters.

    Encodes first-match-with-implicit-deny semantics; must stay equivalent to
    {!Acl_eval} — the differential tests enforce this. *)

(** Set of packets the line's match conditions cover (ignoring action). *)
val line : Pktset.t -> Vi.acl_line -> Bdd.t

(** Set of packets the ACL permits. *)
val permits : Pktset.t -> Vi.acl -> Bdd.t

(** Permit set for a named ACL; undefined names follow vendor semantics. *)
val permits_named : Pktset.t -> Vi.t -> string -> Bdd.t
