let ports env field ranges =
  match ranges with
  | [] -> Bdd.top
  | _ ->
    (* Port matches only constrain TCP/UDP packets, as in the concrete
       evaluator. *)
    let man = Pktset.man env in
    let tcp_udp =
      Bdd.bor man
        (Pktset.value env Field.Protocol Packet.Proto.tcp)
        (Pktset.value env Field.Protocol Packet.Proto.udp)
    in
    let any =
      Bdd.disj man (List.map (fun (lo, hi) -> Pktset.range env field lo hi) ranges)
    in
    Bdd.band man tcp_udp any

let line env (l : Vi.acl_line) =
  let man = Pktset.man env in
  let proto =
    match l.l_proto with
    | Some p -> Pktset.value env Field.Protocol p
    | None -> Bdd.top
  in
  let established =
    if l.l_established then
      Bdd.band man
        (Pktset.value env Field.Protocol Packet.Proto.tcp)
        (Bdd.bor man
           (Pktset.tcp_flag env Packet.Tcp_flags.ack)
           (Pktset.tcp_flag env Packet.Tcp_flags.rst))
    else Bdd.top
  in
  let icmp =
    match l.l_icmp_type with
    | Some t ->
      Bdd.band man
        (Pktset.value env Field.Protocol Packet.Proto.icmp)
        (Pktset.value env Field.Icmp_type t)
    | None -> Bdd.top
  in
  Bdd.conj man
    [ proto;
      Pktset.src_prefix env l.l_src;
      Pktset.dst_prefix env l.l_dst;
      ports env Field.Src_port l.l_src_ports;
      ports env Field.Dst_port l.l_dst_ports;
      established; icmp ]

let permits env (acl : Vi.acl) =
  let man = Pktset.man env in
  List.fold_right
    (fun (l : Vi.acl_line) rest ->
      let m = line env l in
      match l.l_action with
      | Vi.Permit -> Bdd.bor man m rest
      | Vi.Deny -> Bdd.bdiff man rest m)
    acl.acl_lines Bdd.bot

let permits_named env (cfg : Vi.t) name =
  match Vi.find_acl cfg name with
  | Some acl -> permits env acl
  | None ->
    if (Semantics.for_vendor cfg.vendor).Semantics.undefined_acl_permits then Bdd.top
    else Bdd.bot
