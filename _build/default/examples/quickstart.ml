(* Quickstart: the paper's Figure 2 network.

   Three routers; R1 protects the path to P3 with an ssh-only ACL. We parse
   the configuration text, generate the data plane, print the FIBs, and ask
   the two questions the paper walks through: which TCP packets entering at
   R1.i0 can reach P1, and why non-ssh traffic to P3 fails (with a
   counterexample and a contrasting positive example).

   Run with: dune exec examples/quickstart.exe *)

let r1 =
  String.concat "\n"
    [ "hostname r1";
      "interface i0"; " ip address 10.0.0.1 255.255.255.0";
      "interface i1"; " ip address 10.0.12.1 255.255.255.252";
      "interface i3"; " ip address 10.0.13.1 255.255.255.252";
      " ip access-group SSH_ONLY out";
      "ip access-list extended SSH_ONLY";
      " 10 permit tcp any any eq 22";
      " 20 deny ip any any";
      "ip route 10.0.1.0 255.255.255.0 10.0.12.2";
      "ip route 10.0.3.0 255.255.255.0 10.0.13.2" ]

let r2 =
  String.concat "\n"
    [ "hostname r2";
      "interface i1"; " ip address 10.0.12.2 255.255.255.252";
      "interface p1"; " ip address 10.0.1.1 255.255.255.0" ]

let r3 =
  String.concat "\n"
    [ "hostname r3";
      "interface i3"; " ip address 10.0.13.2 255.255.255.252";
      "interface p3"; " ip address 10.0.3.1 255.255.255.0" ]

let () =
  let snapshot =
    Batfish.Snapshot.of_texts [ ("r1.cfg", r1); ("r2.cfg", r2); ("r3.cfg", r3) ]
  in
  let bf = Batfish.init snapshot in
  let dp = Batfish.dataplane bf in
  Printf.printf "=== data plane generated: converged=%b in %d BGP rounds ===\n\n"
    dp.Dataplane.converged dp.Dataplane.rounds;
  (* FIBs (Figure 2a) *)
  List.iter
    (fun node ->
      Printf.printf "FIB of %s:\n" node;
      List.iter
        (fun (e : Fib.entry) ->
          List.iter
            (fun action ->
              Printf.printf "  %-18s -> %s\n"
                (Prefix.to_string e.fe_prefix)
                (Fib.action_to_string action))
            e.fe_actions)
        (Fib.entries (Dataplane.node dp node).Dataplane.nr_fib);
      print_newline ())
    dp.Dataplane.node_order;
  (* the dataflow graph (Figure 2b) *)
  let q = Batfish.forwarding bf in
  Printf.printf "dataflow graph: %d locations, %d edges\n\n" (Fgraph.n_locs q.Fquery.g)
    (Fgraph.n_edges q.Fquery.g);
  (* Question 1: all TCP from R1.i0 to P1 *)
  Questions.print_answer
    (Batfish.answer_reachability bf ~src:("r1", Some "i0")
       ~dst_ip:(Prefix.of_string "10.0.1.0/24")
       ~hdr:(Pktset.value (Fquery.env q) Field.Protocol Packet.Proto.tcp)
       ());
  print_newline ();
  (* Question 2: TCP to P3 — partially blocked, examples explain why *)
  Questions.print_answer
    (Batfish.answer_reachability bf ~src:("r1", Some "i0")
       ~dst_ip:(Prefix.of_string "10.0.3.0/24")
       ~hdr:(Pktset.value (Fquery.env q) Field.Protocol Packet.Proto.tcp)
       ());
  print_newline ();
  (* a concrete traceroute for the counterexample flow *)
  let pkt = Packet.tcp ~src:(Ipv4.of_string "10.0.0.9") ~dst:(Ipv4.of_string "10.0.3.9") 80 in
  Printf.printf "traceroute %s:\n" (Packet.to_string pkt);
  List.iter
    (fun tr -> print_endline (Traceroute.trace_to_string tr))
    (Batfish.traceroute bf ~start:"r1" ~ingress:"i0" pkt)
