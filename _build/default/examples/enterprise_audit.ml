(* Continuous validation (§5.2): run the configuration-hygiene battery on an
   enterprise snapshot, check the firewall posture, and demonstrate
   bidirectional (stateful) reachability through the DMZ.

   Run with: dune exec examples/enterprise_audit.exe *)

let () =
  let net = Netgen.enterprise ~name:"corp" ~sites:6 () in
  let bf = Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs) in
  Printf.printf "=== %d-device enterprise snapshot ===\n\n" (Netgen.device_count net);

  (* the continuous-validation battery *)
  List.iter
    (fun answer ->
      Questions.print_answer answer;
      print_newline ())
    (Batfish.check_all bf);

  (* firewall posture: nothing from the ISPs may open connections into the
     DMZ except web traffic *)
  let q = Batfish.forwarding bf in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let dmz = Prefix.of_string "172.31.1.0/24" in
  let delivered =
    Fquery.reachable q ~src:("corp-fw1", Some "Ethernet1") ~dst_ip:dmz
      ~hdr:(Pktset.value e Field.Protocol Packet.Proto.tcp) ()
  in
  let web =
    Bdd.bor man
      (Pktset.range e Field.Dst_port 80 80)
      (Pktset.range e Field.Dst_port 443 443)
  in
  let non_web = Bdd.bdiff man delivered web in
  (* First attempt: the naive query flags a violation... *)
  (match Pktset.to_packet e non_web with
   | Some p ->
     Printf.printf "naive posture query: VIOLATION e.g. %s\n" (Packet.to_string p);
     print_endline
       "  ...but that is traffic to the firewall's own interface address — an\n\
       \  uninteresting violation (Lesson 4). Scoping the destination space:"
   | None -> print_endline "naive posture query: clean");
  (* Scoped query (§4.4.2): exclude the firewall's own address *)
  let scoped =
    Bdd.bdiff man non_web (Pktset.value e Field.Dst_ip (Ipv4.of_string "172.31.1.1"))
  in
  Printf.printf "scoped posture query: TCP into DMZ beyond 80/443: %s\n"
    (if Bdd.is_bot scoped then "NONE (policy holds)"
     else
       match Pktset.to_packet e scoped with
       | Some p -> "VIOLATION e.g. " ^ Packet.to_string p
       | None -> "VIOLATION");

  (* stateful return traffic: DMZ servers answering web clients *)
  let out_hdr =
    Bdd.conj man
      [ Pktset.value e Field.Protocol Packet.Proto.tcp;
        Pktset.dst_prefix e dmz;
        Pktset.range e Field.Dst_port 80 80 ]
  in
  let fwd, round_trip =
    Fquery.bidirectional q ~src:("corp-core1", None) ~dst:("corp-fw1", "Ethernet2")
      ~hdr:out_hdr ()
  in
  Printf.printf "bidirectional web sessions to DMZ: forward=%s round-trip=%s\n"
    (if Bdd.is_bot fwd then "blocked" else "ok")
    (if Bdd.is_bot round_trip then "return blocked" else "ok (session fast path)");

  (* a concrete trace for the audit report *)
  let pkt =
    Packet.tcp ~src:(Ipv4.of_string "172.16.0.20") ~dst:(Prefix.first_host dmz) 80
  in
  Printf.printf "\ntraceroute %s from corp-dist1:\n" (Packet.to_string pkt);
  List.iter
    (fun tr -> print_endline (Traceroute.trace_to_string tr))
    (Batfish.traceroute bf ~start:"corp-dist1" ~ingress:"Vlan10" pkt)
