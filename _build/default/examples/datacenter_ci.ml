(* Network CI (§5.1.1, automated workflow): validate a generated Clos fabric,
   then test a candidate ACL change with differential reachability before
   "merging" it.

   Run with: dune exec examples/datacenter_ci.exe *)

let () =
  print_endline "=== generating a 4-spine / 8-leaf eBGP Clos fabric ===";
  let net = Netgen.clos ~name:"dc" ~spines:4 ~leaves:8 () in
  let bf = Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs) in
  let dp = Batfish.dataplane bf in
  Printf.printf "devices=%d  config LoC=%d  routes=%d  converged=%b\n\n"
    (Netgen.device_count net) (Netgen.config_lines net) (Dataplane.total_routes dp)
    dp.Dataplane.converged;

  (* CI gate 1: every BGP session must be established *)
  let down = List.filter (fun s -> not s.Dataplane.sr_established) dp.Dataplane.sessions in
  Printf.printf "gate 1: BGP sessions   %d/%d established  %s\n"
    (List.length dp.Dataplane.sessions - List.length down)
    (List.length dp.Dataplane.sessions)
    (if down = [] then "PASS" else "FAIL");

  (* CI gate 2: full pod-to-pod reachability for host-sourced traffic *)
  let q = Batfish.forwarding bf in
  let e = Fquery.env q in
  let ok = ref true in
  for l = 1 to 8 do
    let src_subnet = Prefix.make (Ipv4.of_octets 172 16 (l - 1) 0) 24 in
    let dst_subnet = Prefix.make (Ipv4.of_octets 172 16 (l mod 8) 0) 24 in
    let delivered =
      Fquery.reachable q
        ~src:(Printf.sprintf "dc-leaf%d" l, Some "Vlan100")
        ~hdr:(Pktset.src_prefix e src_subnet)
        ~dst_ip:dst_subnet ()
    in
    if Bdd.is_bot delivered then ok := false
  done;
  Printf.printf "gate 2: pod-to-pod     %s\n" (if !ok then "PASS" else "FAIL");

  (* CI gate 3: no flow is ECMP-inconsistent *)
  let violations = Fquery.multipath_consistency q () in
  Printf.printf "gate 3: multipath      %d violations  %s\n\n" (List.length violations)
    (if violations = [] then "PASS" else "FAIL");

  (* candidate change: block TCP/445 at every edge (worm mitigation) *)
  print_endline "=== candidate change: deny tcp/445 in every leaf's EDGE_IN ===";
  let patched =
    List.map
      (fun (name, text) ->
        if String.length name >= 7 && String.sub name 0 7 = "dc-leaf" then
          ( name,
            Re.replace_string
              (Re.compile (Re.str "ip access-list extended EDGE_IN"))
              ~by:"ip access-list extended EDGE_IN\n 5 deny tcp any any eq 445" text )
        else (name, text))
      net.Netgen.n_configs
  in
  let candidate = Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts patched) in
  let answer = Batfish.differential ~base:bf ~candidate () in
  Questions.print_answer answer;
  let lost_other_than_445 =
    List.exists
      (fun row ->
        List.exists (( = ) "LOST") row
        && not (List.exists (fun c -> Re.execp (Re.compile (Re.str "dport=445")) c) row))
      answer.Questions.a_rows
  in
  Printf.printf "\nCI verdict: %s\n"
    (if lost_other_than_445 then "FAIL — the change affects flows beyond tcp/445"
     else "PASS — only tcp/445 flows are affected; safe to merge")
