(* Design validation (§5.3): certify a new campus design offline — no lab,
   no hardware — including failure scenarios, before any device exists.

   Run with: dune exec examples/design_validation.exe *)

let () =
  let net = Netgen.campus ~name:"campus" ~buildings:8 () in
  Printf.printf "=== validating a new %d-device campus design ===\n\n"
    (Netgen.device_count net);
  let snapshot = Batfish.Snapshot.of_texts net.Netgen.n_configs in

  let validate label env =
    let bf = Batfish.init ~env snapshot in
    let dp = Batfish.dataplane bf in
    let q = Batfish.forwarding bf in
    let e = Fquery.env q in
    (* every building's user subnet must reach the server farm *)
    let servers = Prefix.of_string "172.30.0.0/24" in
    let unreachable = ref [] in
    for b = 1 to 8 do
      let node = Printf.sprintf "campus-b%d" b in
      let iface = if b mod 4 = 3+1 then "ge-0/1/0" else "Vlan10" in
      let iface = if b mod 4 = 0 then "ge-0/1/0" else iface in
      let delivered = Fquery.reachable q ~src:(node, Some iface) ~dst_ip:servers () in
      if Bdd.is_bot delivered then unreachable := node :: !unreachable
    done;
    let loops = Fquery.find_loops q in
    Printf.printf "%-28s converged=%b  buildings cut off=%d  loops=%d\n" label
      dp.Dataplane.converged (List.length !unreachable) (List.length loops);
    ignore e
  in
  validate "baseline design" Dp_env.empty;
  (* failure scenarios: certify that single-uplink failures are survivable *)
  for b = 1 to 4 do
    validate
      (Printf.sprintf "building %d: core1 uplink down" b)
      (Dp_env.make ~down_links:[ (Printf.sprintf "campus-b%d" b, "Ethernet1") ] [])
  done;
  validate "core interlink down" (Dp_env.make ~down_links:[ ("campus-core1", "Ethernet1") ] []);
  print_newline ();
  print_endline
    "All scenarios validated offline; the design can proceed to a small-scale\n\
     lab (or straight to deployment) with routing already certified."
