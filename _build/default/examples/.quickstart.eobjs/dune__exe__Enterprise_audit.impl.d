examples/enterprise_audit.ml: Batfish Bdd Field Fquery Ipv4 List Netgen Packet Pktset Prefix Printf Questions Traceroute
