examples/quickstart.ml: Batfish Dataplane Fgraph Fib Field Fquery Ipv4 List Packet Pktset Prefix Printf Questions String Traceroute
