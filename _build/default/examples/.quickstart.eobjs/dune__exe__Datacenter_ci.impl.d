examples/datacenter_ci.ml: Batfish Bdd Dataplane Fquery Ipv4 List Netgen Pktset Prefix Printf Questions Re String
