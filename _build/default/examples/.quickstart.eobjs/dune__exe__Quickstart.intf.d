examples/quickstart.mli:
