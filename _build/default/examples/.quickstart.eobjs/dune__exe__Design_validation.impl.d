examples/design_validation.ml: Batfish Bdd Dataplane Dp_env Fquery List Netgen Prefix Printf
