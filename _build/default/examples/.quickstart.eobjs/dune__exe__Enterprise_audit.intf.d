examples/enterprise_audit.mli:
