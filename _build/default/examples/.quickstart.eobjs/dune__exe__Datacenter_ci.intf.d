examples/datacenter_ci.mli:
