(* Edge-case coverage: parser robustness, vendor-semantics divergence,
   session corner cases, OSPF areas and redistribution, FIB resolution
   corners, and question-engine corners. *)

let check = Alcotest.check

let cfg lines = fst (Parse.parse_config (String.concat "\n" lines))

let compute ?options ?env texts =
  Dataplane.compute ?options ?env (List.map cfg texts)

let routes_to node (dp : Dataplane.t) pfx =
  Rib.best (Dataplane.node dp node).Dataplane.nr_main (Prefix.of_string pfx)

(* --- parser robustness --- *)

let empty_config () =
  let c, warnings = Parse.parse_config "" in
  check Alcotest.string "unknown hostname" "unknown" c.Vi.hostname;
  check Alcotest.int "no warnings" 0 (List.length warnings)

let malformed_everywhere () =
  (* garbage in every block must warn, never raise *)
  let text =
    String.concat "\n"
      [ "hostname broken";
        "interface e1";
        " ip address 500.1.2.3 255.255.255.0";
        " ip address 10.0.0.1 255.255.0.255";
        "ip access-list extended X";
        " 10 permit tcp frobnicate";
        " banana";
        "router bgp notanumber";
        "router bgp 100";
        " neighbor 1.2.3.4 remote-as mango";
        " neighbor not-an-ip remote-as 3";
        "ip route 10.0.0.0 255.255.0.0";
        "route-map M permit NaN";
        "ip prefix-list P seq 5 permit 10.0.0.0/99" ]
  in
  let c, warnings = Parse.parse_config text in
  check Alcotest.string "hostname parsed" "broken" c.Vi.hostname;
  check Alcotest.bool "many warnings" true (List.length warnings >= 8);
  (* the broken interface has no address *)
  let e1 = Option.get (Vi.find_interface c "e1") in
  check Alcotest.bool "no address" true (e1.Vi.if_address = None)

let juniper_malformed () =
  let text =
    String.concat "\n"
      [ "set system host-name j1";
        "set interfaces ge-0/0/0 unit 0 family inet address banana";
        "set protocols ospf area NaN interface ge-0/0/0";
        "set routing-options static route 10.0.0.0/8 next-hop nowhere";
        "delete interfaces ge-0/0/0";
        "set utter nonsense here" ]
  in
  let c, warnings = Parse.parse_config text in
  check Alcotest.string "vendor" "juniper" c.Vi.vendor;
  check Alcotest.bool "warned" true (List.length warnings >= 4)

let wildcard_masks () =
  (* non-contiguous wildcard is rejected with a warning *)
  let c, warnings =
    Parse.parse_config
      "hostname w\nip access-list extended A\n 10 permit ip 10.0.0.0 0.0.255.0 any\n 20 permit ip any any\n"
  in
  let acl = Option.get (Vi.find_acl c "A") in
  check Alcotest.int "bad line skipped" 1 (List.length acl.Vi.acl_lines);
  check Alcotest.bool "warned" true (warnings <> [])

let acl_port_operators () =
  let c, _ =
    Parse.parse_config
      (String.concat "\n"
         [ "hostname p"; "ip access-list extended A";
           " 10 permit tcp any any gt 1023";
           " 20 permit tcp any any lt 10";
           " 30 permit udp any range 100 200 any" ])
  in
  let acl = Option.get (Vi.find_acl c "A") in
  let l1 = List.nth acl.Vi.acl_lines 0 in
  check Alcotest.(list (pair int int)) "gt" [ (1024, 65535) ] l1.Vi.l_dst_ports;
  let l2 = List.nth acl.Vi.acl_lines 1 in
  check Alcotest.(list (pair int int)) "lt" [ (0, 9) ] l2.Vi.l_dst_ports;
  let l3 = List.nth acl.Vi.acl_lines 2 in
  check Alcotest.(list (pair int int)) "range src" [ (100, 200) ] l3.Vi.l_src_ports

(* --- vendor semantics divergence (Lesson 3) --- *)

let undefined_map_vendor_difference () =
  (* same topology, same missing route-map; IOS denies, EOS permits *)
  let net vendor_header =
    [ vendor_header
      @ [ "hostname a";
          "interface e1"; " ip address 10.0.0.1 255.255.255.252";
          "interface lan"; " ip address 10.1.0.1 255.255.0.0";
          "router bgp 100";
          " neighbor 10.0.0.2 remote-as 200";
          " neighbor 10.0.0.2 route-map NOPE out";
          " network 10.1.0.0 mask 255.255.0.0" ];
      [ "hostname b";
        "interface e1"; " ip address 10.0.0.2 255.255.255.252";
        "router bgp 200";
        " neighbor 10.0.0.1 remote-as 100" ] ]
  in
  let dp_ios = compute (net []) in
  check Alcotest.int "ios: undefined map denies export" 0
    (List.length (routes_to "b" dp_ios "10.1.0.0/16"));
  let dp_eos = compute (net [ "! Arista vEOS" ]) in
  check Alcotest.int "eos: undefined map permits" 1
    (List.length (routes_to "b" dp_eos "10.1.0.0/16"))

(* --- BGP corner cases --- *)

let ebgp_multihop_session () =
  (* peers over loopbacks with static reachability; requires multihop *)
  let a multihop =
    [ "hostname a";
      "interface Loopback0"; " ip address 1.1.1.1 255.255.255.255";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252";
      "interface lan"; " ip address 10.1.0.1 255.255.0.0";
      "ip route 2.2.2.2 255.255.255.255 10.0.0.2";
      "router bgp 100";
      " neighbor 2.2.2.2 remote-as 200";
      " neighbor 2.2.2.2 update-source Loopback0" ]
    @ (if multihop then [ " neighbor 2.2.2.2 ebgp-multihop 2" ] else [])
    @ [ " network 10.1.0.0 mask 255.255.0.0" ]
  and b multihop =
    [ "hostname b";
      "interface Loopback0"; " ip address 2.2.2.2 255.255.255.255";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252";
      "ip route 1.1.1.1 255.255.255.255 10.0.0.1";
      "router bgp 200";
      " neighbor 1.1.1.1 remote-as 100" ]
    @ if multihop then [ " neighbor 1.1.1.1 ebgp-multihop 2" ] else []
  in
  let dp_no = compute [ a false; b false ] in
  check Alcotest.bool "without multihop: down" true
    (List.exists (fun s -> not s.Dataplane.sr_established) dp_no.Dataplane.sessions);
  let dp_yes = compute [ a true; b true ] in
  check Alcotest.bool "with multihop: up" true
    (List.for_all (fun s -> s.Dataplane.sr_established) dp_yes.Dataplane.sessions);
  check Alcotest.int "route delivered over multihop" 1
    (List.length (routes_to "b" dp_yes "10.1.0.0/16"))

let allowas_in () =
  (* b re-receives a path containing its own AS; rejected unless allowas-in *)
  let hub allow =
    [ "hostname hub";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252";
      "router bgp 100";
      " neighbor 10.0.0.2 remote-as 200" ]
    @ (if allow then [ " neighbor 10.0.0.2 allowas-in 2" ] else [])
  and spoke =
    [ "hostname spoke";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252";
      "interface lan"; " ip address 10.9.0.1 255.255.0.0";
      "route-map PREPEND permit 10";
      " set as-path prepend 100 100";
      "router bgp 200";
      " neighbor 10.0.0.1 remote-as 100";
      " neighbor 10.0.0.1 route-map PREPEND out";
      " network 10.9.0.0 mask 255.255.0.0" ]
  in
  let dp_no = compute [ hub false; spoke ] in
  check Alcotest.int "loop check rejects" 0 (List.length (routes_to "hub" dp_no "10.9.0.0/16"));
  let dp_yes = compute [ hub true; spoke ] in
  check Alcotest.int "allowas-in accepts" 1 (List.length (routes_to "hub" dp_yes "10.9.0.0/16"))

let bgp_weight_local_only () =
  (* weight set at import wins locally but is not exported *)
  let a =
    [ "hostname a";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252";
      "interface e2"; " ip address 10.0.1.1 255.255.255.252";
      "route-map W permit 10"; " set weight 1000";
      "router bgp 100";
      " neighbor 10.0.0.2 remote-as 200";
      " neighbor 10.0.0.2 route-map W in";
      " neighbor 10.0.1.2 remote-as 300" ]
  and b =
    [ "hostname b";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252";
      "interface lan"; " ip address 10.9.0.1 255.255.0.0";
      "route-map LONG permit 10"; " set as-path prepend 200 200 200";
      "router bgp 200";
      " neighbor 10.0.0.1 remote-as 100";
      " neighbor 10.0.0.1 route-map LONG out";
      " network 10.9.0.0 mask 255.255.0.0" ]
  and c =
    [ "hostname c";
      "interface e2"; " ip address 10.0.1.2 255.255.255.252";
      "interface lan"; " ip address 10.9.0.1 255.255.0.0";
      "router bgp 300";
      " neighbor 10.0.1.1 remote-as 100";
      " network 10.9.0.0 mask 255.255.0.0" ]
  in
  let dp = compute [ a; b; c ] in
  (match routes_to "a" dp "10.9.0.0/16" with
   | [ r ] ->
     (* weight 1000 beats the shorter path via c *)
     check Alcotest.bool "weighted path wins" true
       (r.Route.from_peer = Ipv4.of_string "10.0.0.2")
   | l -> Alcotest.failf "expected one route, got %d" (List.length l))

(* --- OSPF corners --- *)

let ospf_inter_area () =
  let r1 =
    [ "hostname r1";
      "interface lan"; " ip address 172.20.1.1 255.255.255.0"; " ip ospf area 1"; " ip ospf cost 10";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface lan" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e2"; " ip address 10.0.1.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1" ]
  and r3 =
    [ "hostname r3";
      "interface e2"; " ip address 10.0.1.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface lan"; " ip address 172.20.3.1 255.255.255.0"; " ip ospf area 3"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface lan" ]
  in
  let dp = compute [ r1; r2; r3 ] in
  (* r3 reaches area-1 prefix as inter-area *)
  (match routes_to "r3" dp "172.20.1.0/24" with
   | [ r ] ->
     check Alcotest.bool "inter-area" true (r.Route.protocol = Route_proto.Ospf_ia);
     check Alcotest.int "accumulated cost" 30 r.Route.metric
   | l -> Alcotest.failf "expected route, got %d" (List.length l));
  (* r2 (pure area 0) also sees both *)
  check Alcotest.int "r2 sees area 3 lan" 1 (List.length (routes_to "r2" dp "172.20.3.0/24"))

let ospf_e1_vs_e2 () =
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 100";
      "ip route 172.30.0.0 255.255.0.0 Null0";
      "router ospf 1"; " redistribute static metric 50 metric-type 1 subnets" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 100";
      "router ospf 1" ]
  in
  let dp = compute [ r1; r2 ] in
  (match routes_to "r2" dp "172.30.0.0/16" with
   | [ r ] ->
     check Alcotest.bool "E1" true (r.Route.protocol = Route_proto.Ospf_e1);
     (* E1 accumulates internal cost *)
     check Alcotest.int "metric 50+100" 150 r.Route.metric
   | l -> Alcotest.failf "expected E1 route, got %d" (List.length l))

let ospf_network_statements () =
  (* classic style: no per-interface area commands *)
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252";
      "interface lan"; " ip address 172.21.0.1 255.255.255.0";
      "router ospf 1";
      " network 10.0.0.0 0.0.0.255 area 0";
      " network 172.21.0.0 0.0.0.255 area 0";
      " passive-interface lan" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252";
      "router ospf 1"; " network 0.0.0.0 255.255.255.255 area 0" ]
  in
  let dp = compute [ r1; r2 ] in
  check Alcotest.int "lan advertised" 1 (List.length (routes_to "r2" dp "172.21.0.0/24"))

(* --- FIB corners --- *)

let fib_longest_prefix_tie () =
  (* static and ospf for the same prefix: admin distance decides the FIB *)
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "ip route 172.22.0.0 255.255.0.0 Null0";
      "router ospf 1" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface lan"; " ip address 172.22.0.1 255.255.0.0"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface lan" ]
  in
  let dp = compute [ r1; r2 ] in
  (* static (ad 1) shadows the OSPF route (ad 110) *)
  check Alcotest.bool "null wins by admin" true
    (Fib.lookup (Dataplane.node dp "r1").Dataplane.nr_fib (Ipv4.of_string "172.22.5.5")
     = [ Fib.Drop_null ])

let secondary_addresses () =
  let c, _ =
    Parse.parse_config
      "hostname s\ninterface e1\n ip address 10.0.0.1 255.255.255.0\n ip address 10.0.1.1 255.255.255.0 secondary\n"
  in
  check Alcotest.int "two prefixes" 2 (List.length (Vi.interface_prefixes c));
  let dp = Dataplane.compute [ c ] in
  check Alcotest.int "connected for secondary" 1
    (List.length (routes_to "s" dp "10.0.1.0/24"))

(* --- question corners --- *)

let search_filters_unmatchable () =
  let c, _ =
    Parse.parse_config
      (String.concat "\n"
         [ "hostname u"; "ip access-list extended A";
           " 10 deny tcp any any";
           " 20 permit tcp any any eq 80";  (* shadowed: unmatchable *)
           " 30 permit ip any any" ])
  in
  let env = Pktset.create () in
  let a = Questions.search_filters env c ~acl:"A" ~action:Vi.Permit in
  check Alcotest.bool "shadowed line reported" true
    (List.exists (fun r -> List.exists (( = ) "UNMATCHABLE") r) a.Questions.a_rows)

let routes_question_filters () =
  let net = Netgen.clos ~name:"rqf" ~spines:2 ~leaves:2 () in
  let bf = Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs) in
  let all = Batfish.answer_routes bf in
  let bgp_only = Batfish.answer_routes ~protocol:"bgp" bf in
  check Alcotest.bool "filter reduces rows" true
    (List.length bgp_only.Questions.a_rows < List.length all.Questions.a_rows
    && List.length bgp_only.Questions.a_rows > 0);
  check Alcotest.bool "only bgp rows" true
    (List.for_all (fun r -> List.nth r 2 = "bgp") bgp_only.Questions.a_rows)

(* --- traceroute corners --- *)

let traceroute_multipath_count () =
  let net = Netgen.clos ~name:"tmc" ~spines:4 ~leaves:2 () in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let bf = Batfish.init ~env:net.Netgen.n_env snap in
  let pkt =
    Packet.tcp ~src:(Ipv4.of_string "172.16.0.10") ~dst:(Ipv4.of_string "172.16.1.10") 80
  in
  let traces = Batfish.traceroute bf ~start:"tmc-leaf1" ~ingress:"Vlan100" pkt in
  (* ECMP over 4 spines *)
  check Alcotest.int "four paths" 4 (List.length traces);
  check Alcotest.bool "all delivered" true
    (List.for_all (fun tr -> Traceroute.is_delivered tr.Traceroute.disposition) traces)

let suites =
  [ ( "extra.parser",
      [ Alcotest.test_case "empty config" `Quick empty_config;
        Alcotest.test_case "malformed everywhere" `Quick malformed_everywhere;
        Alcotest.test_case "juniper malformed" `Quick juniper_malformed;
        Alcotest.test_case "non-contiguous wildcard" `Quick wildcard_masks;
        Alcotest.test_case "port operators" `Quick acl_port_operators ] );
    ( "extra.semantics",
      [ Alcotest.test_case "undefined map per vendor" `Quick undefined_map_vendor_difference ] );
    ( "extra.bgp",
      [ Alcotest.test_case "ebgp multihop" `Quick ebgp_multihop_session;
        Alcotest.test_case "allowas-in" `Quick allowas_in;
        Alcotest.test_case "weight" `Quick bgp_weight_local_only ] );
    ( "extra.ospf",
      [ Alcotest.test_case "inter-area" `Quick ospf_inter_area;
        Alcotest.test_case "E1 vs E2" `Quick ospf_e1_vs_e2;
        Alcotest.test_case "network statements" `Quick ospf_network_statements ] );
    ( "extra.fib",
      [ Alcotest.test_case "admin shadows" `Quick fib_longest_prefix_tie;
        Alcotest.test_case "secondary addresses" `Quick secondary_addresses ] );
    ( "extra.questions",
      [ Alcotest.test_case "unmatchable lines" `Quick search_filters_unmatchable;
        Alcotest.test_case "routes filters" `Quick routes_question_filters ] );
    ( "extra.traceroute",
      [ Alcotest.test_case "ecmp traces" `Quick traceroute_multipath_count ] ) ]

(* --- new features: labs, well-known communities, testRoutePolicies --- *)

let labs_all_pass () =
  List.iter
    (fun (lab : Labs.lab) ->
      let outcomes = Labs.run lab in
      List.iter
        (fun (o : Labs.outcome) ->
          if not o.ok_pass then
            Alcotest.failf "lab %s: %s — %s" lab.lab_name o.ok_expectation o.ok_detail)
        outcomes)
    Labs.builtin

let well_known_communities () =
  check Alcotest.bool "no-export parses" true
    (Vi.community_of_string "no-export" = Some Vi.no_export);
  check Alcotest.string "roundtrip" "no-advertise" (Vi.community_to_string Vi.no_advertise);
  (* no-advertise: not exported even over iBGP *)
  let a =
    [ "hostname a";
      "interface lan"; " ip address 10.7.0.1 255.255.0.0";
      "interface e1"; " ip address 10.0.0.1 255.255.255.252";
      "route-map TAG permit 10"; " set community no-advertise";
      "router bgp 100";
      " neighbor 10.0.0.2 remote-as 100";
      " neighbor 10.0.0.2 send-community";
      " network 10.7.0.0 mask 255.255.0.0 route-map TAG" ]
  and b =
    [ "hostname b";
      "interface e1"; " ip address 10.0.0.2 255.255.255.252";
      "router bgp 100";
      " neighbor 10.0.0.1 remote-as 100" ]
  in
  let dp = compute [ a; b ] in
  check Alcotest.int "no-advertise withheld" 0
    (List.length (routes_to "b" dp "10.7.0.0/16"))

let test_route_policy_question () =
  let c =
    cfg
      [ "hostname q";
        "ip prefix-list TENS seq 5 permit 10.0.0.0/8 le 24";
        "route-map POL permit 10";
        " match ip address prefix-list TENS";
        " set local-preference 250";
        " set community 65000:42 additive" ]
  in
  let r =
    Route.bgp ~proto:Route_proto.Ebgp ~net:(Prefix.of_string "10.3.0.0/16")
      ~nh:(Route.Nh_ip (Ipv4.of_string "1.2.3.4"))
      ~attrs:(Attrs.make ()) ~arrival:0 ~from_peer:0 ~from_rid:0
  in
  let a = Questions.test_route_policy c ~policy:"POL" r in
  check Alcotest.bool "permit with changes" true
    (List.exists
       (fun row ->
         List.exists (( = ) "PERMIT") row
         && List.exists (fun s -> Re.execp (Re.compile (Re.str "localPref 100->250")) s) row)
       a.Questions.a_rows);
  let denied =
    Questions.test_route_policy c ~policy:"POL"
      { r with Route.net = Prefix.of_string "192.168.0.0/16" }
  in
  check Alcotest.bool "deny" true
    (List.exists (fun row -> List.exists (( = ) "DENY") row) denied.Questions.a_rows)

let numbered_standard_acl () =
  let c =
    cfg
      [ "hostname n";
        "access-list 10 permit 10.0.0.0 0.0.0.255";
        "access-list 10 deny 10.0.0.0 0.255.255.255";
        "access-list 10 permit 192.168.0.0 0.0.255.255" ]
  in
  let acl = Option.get (Vi.find_acl c "10") in
  check Alcotest.int "three lines" 3 (List.length acl.Vi.acl_lines);
  let p src = Acl_eval.permits acl (Packet.tcp ~src:(Ipv4.of_string src) ~dst:(Ipv4.of_string "1.1.1.1") 80) in
  check Alcotest.bool "first line" true (p "10.0.0.5");
  check Alcotest.bool "second line" false (p "10.9.9.9");
  check Alcotest.bool "third line" true (p "192.168.3.3");
  check Alcotest.bool "implicit deny" false (p "172.16.0.1")

let extra2_suites =
  [ ( "extra.features",
      [ Alcotest.test_case "labs all pass" `Quick labs_all_pass;
        Alcotest.test_case "well-known communities" `Quick well_known_communities;
        Alcotest.test_case "testRoutePolicies" `Quick test_route_policy_question;
        Alcotest.test_case "numbered standard acl" `Quick numbered_standard_acl ] ) ]

let suites = suites @ extra2_suites
