(* Tests for the symbolic packet-set layer: encodings agree with concrete
   packet semantics, and NAT relations compute correct images/preimages. *)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
let check = Alcotest.check

let packet_gen =
  QCheck.Gen.(
    let ip = map (fun i -> i land 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF) in
    let port = int_bound 65535 in
    map2
      (fun (src_ip, dst_ip, src_port, dst_port) (proto, flags, it, ic) ->
        { Packet.default with src_ip; dst_ip; src_port; dst_port;
          protocol = proto; tcp_flags = flags; icmp_type = it; icmp_code = ic })
      (quad ip ip port port)
      (quad (oneofl [ 1; 6; 17; 89 ]) (int_bound 255) (int_bound 255) (int_bound 255)))

let packet_arb = QCheck.make ~print:Packet.to_string packet_gen

(* One shared env: creating a manager per case is expensive. *)
let env = Pktset.create ()

let of_packet_mem =
  qtest "of_packet is a member" packet_arb (fun p ->
      Pktset.mem env (Pktset.of_packet env p) p)

let of_packet_distinct =
  qtest "distinct packets are not members" (QCheck.pair packet_arb packet_arb)
    (fun (p, q) ->
      QCheck.assume (not (Packet.equal p q));
      not (Pktset.mem env (Pktset.of_packet env p) q))

let prefix_matches_contains =
  qtest "dst_prefix = Prefix.contains" (QCheck.pair packet_arb (QCheck.make
      QCheck.Gen.(map2 (fun ip len -> Prefix.make (ip land 0xFFFF_FFFF) len) (int_range 0 0xFFFF_FFFF) (int_bound 32))))
    (fun (p, pre) ->
      Pktset.mem env (Pktset.dst_prefix env pre) p = Prefix.contains pre p.Packet.dst_ip)

let range_matches_interval =
  qtest "range = interval membership"
    (QCheck.triple packet_arb (QCheck.int_bound 65535) (QCheck.int_bound 65535))
    (fun (p, a, b) ->
      let lo = min a b and hi = max a b in
      Pktset.mem env (Pktset.range env Field.Dst_port lo hi) p
      = (p.Packet.dst_port >= lo && p.Packet.dst_port <= hi))

let value_matches_equality =
  qtest "value = equality" (QCheck.pair packet_arb (QCheck.int_bound 255))
    (fun (p, v) ->
      Pktset.mem env (Pktset.value env Field.Protocol v) p = (p.Packet.protocol = v))

let tcp_flag_matches =
  qtest "tcp_flag tests the right bit" packet_arb (fun p ->
      List.for_all
        (fun mask ->
          Pktset.mem env (Pktset.tcp_flag env mask) p = (p.Packet.tcp_flags land mask <> 0))
        [ Packet.Tcp_flags.syn; Packet.Tcp_flags.ack; Packet.Tcp_flags.rst;
          Packet.Tcp_flags.fin ])

let to_packet_in_set =
  qtest "to_packet returns a member" packet_arb (fun p ->
      let set =
        Bdd.bor (Pktset.man env) (Pktset.of_packet env p)
          (Pktset.dst_prefix env (Prefix.of_string "10.0.0.0/8"))
      in
      match Pktset.to_packet env set with
      | None -> false
      | Some q -> Pktset.mem env set q)

let to_packet_respects_prefs () =
  let set = Pktset.dst_prefix env (Prefix.of_string "10.0.0.0/8") in
  let prefs = Pktset.standard_prefs env ~dst_prefix:(Prefix.of_string "10.1.0.0/16") () in
  match Pktset.to_packet env ~prefs set with
  | None -> Alcotest.fail "expected a packet"
  | Some p ->
    check Alcotest.int "prefers tcp" Packet.Proto.tcp p.Packet.protocol;
    check Alcotest.int "prefers port 80" 80 p.Packet.dst_port;
    check Alcotest.bool "dst hint honored" true
      (Prefix.contains (Prefix.of_string "10.1.0.0/16") p.Packet.dst_ip)

let sat_count_prefix () =
  let man = Pktset.man env in
  let total = 2.0 ** float_of_int (Bdd.nvars man) in
  let s = Pktset.dst_prefix env (Prefix.of_string "10.0.0.0/8") in
  check (Alcotest.float 1e-6) "prefix /8 fraction" (total /. 256.0) (Bdd.sat_count man s)

(* --- NAT relations --- *)

let nat_value_rewrite =
  qtest "Set_value image is the constant" packet_arb (fun p ->
      let target = Ipv4.of_string "192.0.2.1" in
      let r = Pktset.rel env ~guard:Bdd.top [ (Field.Src_ip, Pktset.Set_value target) ] in
      let image = Pktset.apply_rel env r (Pktset.of_packet env p) in
      let expected = { p with Packet.src_ip = target } in
      Pktset.mem env image expected && not (Bdd.is_bot image)
      && (Packet.equal p expected || not (Pktset.mem env image p)))

let nat_guard_filters =
  qtest "guard restricts the relation" packet_arb (fun p ->
      let guard = Pktset.dst_prefix env (Prefix.of_string "10.0.0.0/8") in
      let r =
        Pktset.rel env ~guard [ (Field.Src_ip, Pktset.Set_value (Ipv4.of_string "1.2.3.4")) ]
      in
      let image = Pktset.apply_rel env r (Pktset.of_packet env p) in
      if Prefix.contains (Prefix.of_string "10.0.0.0/8") p.Packet.dst_ip then
        Pktset.mem env image { p with Packet.src_ip = Ipv4.of_string "1.2.3.4" }
      else Bdd.is_bot image)

let nat_fused_matches_unfused =
  qtest "apply_rel fused = unfused" packet_arb (fun p ->
      let r =
        Pktset.rel env ~guard:(Pktset.value env Field.Protocol Packet.Proto.tcp)
          [ (Field.Src_ip, Pktset.Set_prefix (Prefix.of_string "203.0.113.0/24"));
            (Field.Src_port, Pktset.Set_range (1024, 65535)) ]
      in
      let set =
        Bdd.bor (Pktset.man env) (Pktset.of_packet env p)
          (Pktset.src_prefix env (Prefix.of_string "172.16.0.0/12"))
      in
      Bdd.equal (Pktset.apply_rel env r set) (Pktset.apply_rel_unfused env r set))

let nat_reverse_is_preimage =
  qtest "preimage contains sources of image" packet_arb (fun p ->
      let r =
        Pktset.rel env ~guard:Bdd.top
          [ (Field.Dst_ip, Pktset.Set_value (Ipv4.of_string "10.10.10.10")) ]
      in
      let image = Pktset.apply_rel env r (Pktset.of_packet env p) in
      let back = Pktset.apply_rel_reverse env r image in
      Pktset.mem env back p)

let nat_pool_image_within_pool =
  qtest "Set_prefix image lands in the pool" packet_arb (fun p ->
      let pool = Prefix.of_string "198.51.100.0/24" in
      let r = Pktset.rel env ~guard:Bdd.top [ (Field.Src_ip, Pktset.Set_prefix pool) ] in
      let image = Pktset.apply_rel env r (Pktset.of_packet env p) in
      Bdd.is_bot (Bdd.bdiff (Pktset.man env) image (Pktset.src_prefix env pool)))

(* --- alternative variable orders agree semantically --- *)

let orders_agree =
  qtest ~count:40 "orders agree on membership" packet_arb (fun p ->
      let check_env e =
        let set =
          Bdd.band (Pktset.man e)
            (Pktset.dst_prefix e (Prefix.of_string "10.0.0.0/9"))
            (Pktset.range e Field.Dst_port 100 2000)
        in
        Pktset.mem e set p
      in
      let a = check_env env in
      let b = check_env (Pktset.create ~order:Pktset.Reversed_fields ()) in
      let c = check_env (Pktset.create ~order:Pktset.Lsb_first ()) in
      a = b && b = c)

let layout_units () =
  check Alcotest.int "165 header bits" 165 Field.header_bits;
  check Alcotest.int "261 total vars" 261 Field.total_vars;
  check Alcotest.int "manager vars = 261 + extra" (261 + 8)
    (Bdd.nvars (Pktset.man env));
  (* Paper order: destination IP first. *)
  check Alcotest.int "dst ip msb is level 0" 0 (Pktset.levels env Field.Dst_ip).(0);
  check Alcotest.bool "interleaved primes" true
    ((Pktset.levels env Field.Dst_ip).(1) = 2);
  check Alcotest.int "extra after header" 261 (Pktset.extra_level env 0)

let suites =
  [ ( "symbolic.encoding",
      [ Alcotest.test_case "layout" `Quick layout_units;
        of_packet_mem; of_packet_distinct; prefix_matches_contains;
        range_matches_interval; value_matches_equality; tcp_flag_matches ] );
    ( "symbolic.examples",
      [ to_packet_in_set;
        Alcotest.test_case "prefs" `Quick to_packet_respects_prefs;
        Alcotest.test_case "sat_count" `Quick sat_count_prefix ] );
    ( "symbolic.nat",
      [ nat_value_rewrite; nat_guard_filters; nat_fused_matches_unfused;
        nat_reverse_is_preimage; nat_pool_image_within_pool ] );
    ("symbolic.orders", [ orders_agree ]) ]
