(* Fault-injection tests: the pipeline's "never crash on operator input,
   always report what was skipped" invariant. Fixtures cover each malformed
   input class per parser; the seeded chaos property drives hundreds of
   mutated snapshots through the full pipeline and asserts diagnostics,
   never exceptions. *)

let check = Alcotest.check

let truncated_ios =
  "hostname broken-ios\n\
   interface Ethernet1\n\
   \ ip address 10.255.0.1 255.255.\n\
   router bgp 65001\n\
   \ neighbor 10.255.0.2 remote-as 650"

let truncated_juniper =
  "set system host-name broken-jun\n\
   set interfaces ge-0/0/0 unit 0 family inet address 10.25\n\
   set protocols bgp group peers neighbor 10.254."

let binary_blob = String.init 256 (fun i -> Char.chr ((i * 37 + 11) land 0xff))

let well_formed_diags bf =
  List.iter
    (fun d ->
      if not (Diag.well_formed d) then
        Alcotest.failf "ill-formed diag: %s" (Diag.to_string d))
    (Batfish.diags bf)

let has_code code diags = List.exists (fun (d : Diag.t) -> d.d_code = code) diags

(* Malformed input per parser class: truncated IOS and Juniper, empty file,
   binary garbage — all alongside a well-formed fabric that must still
   produce a data plane with its sessions up. *)
let malformed_fixtures () =
  let net = Netgen.clos ~name:"fx" ~spines:2 ~leaves:2 () in
  let files =
    net.Netgen.n_configs
    @ [ ("broken-ios.cfg", truncated_ios); ("broken-jun.cfg", truncated_juniper);
        ("empty.cfg", ""); ("blob.cfg", binary_blob) ]
  in
  let snap = Batfish.Snapshot.of_texts files in
  let bf = Batfish.init ~env:net.Netgen.n_env snap in
  ignore (Batfish.check_all bf);
  let dp = Batfish.dataplane bf in
  well_formed_diags bf;
  let fabric =
    List.map
      (fun (_, text) -> (fst (Parse.parse_config text)).Vi.hostname)
      net.Netgen.n_configs
  in
  List.iter
    (fun host ->
      check Alcotest.bool (host ^ " not quarantined") false
        (List.mem_assoc host dp.Dataplane.quarantined);
      match Dataplane.node_opt dp host with
      | None -> Alcotest.failf "%s missing from data plane" host
      | Some nr ->
        check Alcotest.bool (host ^ " has routes") true
          (Rib.best_count nr.Dataplane.nr_main > 0))
    fabric;
  let fabric_sessions =
    List.filter
      (fun (s : Dataplane.session_report) -> List.mem s.sr_node fabric)
      dp.Dataplane.sessions
  in
  check Alcotest.bool "fabric sessions up" true
    (fabric_sessions <> []
    && List.for_all (fun (s : Dataplane.session_report) -> s.sr_established) fabric_sessions);
  check Alcotest.bool "fabric converged" true dp.Dataplane.converged

let duplicate_hostname_first_wins () =
  let first = "hostname twin\ninterface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n" in
  let second = "hostname twin\ninterface Ethernet1\n ip address 10.2.0.1 255.255.255.0\n" in
  let snap = Batfish.Snapshot.of_texts [ ("a.cfg", first); ("b.cfg", second) ] in
  check Alcotest.int "one config survives" 1
    (List.length (Batfish.Snapshot.configs snap));
  check Alcotest.bool "duplicate diag emitted" true
    (has_code Diag.code_duplicate_hostname (Batfish.Snapshot.diags snap));
  match Batfish.Snapshot.find snap "twin" with
  | None -> Alcotest.fail "hostname lost"
  | Some cfg -> (
    match (List.hd cfg.Vi.interfaces).Vi.if_address with
    | Some (ip, _) -> check Alcotest.string "first wins" "10.1.0.1" (Ipv4.to_string ip)
    | None -> Alcotest.fail "interface lost")

let of_dir_skips_unreadable () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bf_chaos_dir_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write "good.cfg" "hostname good\ninterface Ethernet1\n ip address 10.3.0.1 255.255.255.0\n";
  write ".dotfile" "not a config";
  let dangling = Filename.concat dir "dangling.cfg" in
  if Sys.file_exists dangling then Sys.remove dangling;
  (try Unix.symlink (Filename.concat dir "does-not-exist") dangling
   with Unix.Unix_error _ -> ());
  let snap = Batfish.Snapshot.of_dir dir in
  let diags = Batfish.Snapshot.diags snap in
  check Alcotest.bool "good config parsed" true
    (Batfish.Snapshot.find snap "good" <> None);
  check Alcotest.bool "dotfile skipped with diag" true (has_code Diag.code_skipped_file diags);
  check Alcotest.bool "unreadable file diag" true (has_code Diag.code_unreadable_file diags)

(* A node whose initialization raises (here: an interface with an impossible
   prefix length, which makes Prefix.make blow up) is quarantined; the rest
   of the snapshot still produces a data plane. *)
let quarantine_poisoned_node () =
  let good =
    fst
      (Parse.parse_config
         "hostname survivor\ninterface Ethernet1\n ip address 10.4.0.1 255.255.255.0\n")
  in
  let poisoned =
    { (Vi.empty "poison" "cisco-ios") with
      Vi.interfaces =
        [ { (Vi.interface_default "Ethernet1") with
            Vi.if_address = Some (Ipv4.of_string "10.4.1.1", 64) } ] }
  in
  let dp = Dataplane.compute [ good; poisoned ] in
  check Alcotest.bool "poisoned node quarantined" true
    (List.mem_assoc "poison" dp.Dataplane.quarantined);
  check Alcotest.bool "quarantine diag" true
    (has_code Diag.code_node_quarantined dp.Dataplane.diags);
  (match Dataplane.node_opt dp "survivor" with
   | None -> Alcotest.fail "survivor missing"
   | Some nr ->
     check Alcotest.bool "survivor has routes" true
       (Rib.best_count nr.Dataplane.nr_main > 0));
  match Dataplane.node_opt dp "poison" with
  | None -> Alcotest.fail "quarantined node should still have an (empty) result"
  | Some nr ->
    check Alcotest.int "quarantined node has no routes" 0
      (Rib.best_count nr.Dataplane.nr_main)

(* Exhausting the BGP round fuel yields a well-formed converged=false result
   with a diag, not a hang or an exception. *)
let fuel_budget () =
  let net = Netgen.fig1b () in
  let configs =
    List.map (fun (_, text) -> fst (Parse.parse_config text)) net.Netgen.n_configs
  in
  let options =
    { Dataplane.default_options with schedule = Dataplane.Lockstep; max_rounds = 5 }
  in
  let dp = Dataplane.compute ~options ~env:net.Netgen.n_env configs in
  check Alcotest.bool "not converged" false dp.Dataplane.converged;
  check Alcotest.bool "fuel diag emitted" true
    (has_code Diag.code_bgp_fuel_exhausted dp.Dataplane.diags
    || has_code Diag.code_oscillation dp.Dataplane.diags)

let unknown_names_graceful () =
  let net = Netgen.clos ~name:"uk" ~spines:2 ~leaves:2 () in
  let bf =
    Batfish.init ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs)
  in
  let dp = Batfish.dataplane bf in
  check Alcotest.bool "node_opt None" true (Dataplane.node_opt dp "no-such-node" = None);
  (match Dataplane.node dp "no-such-node" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Dataplane.node should reject unknown names");
  let ans = Questions.routes ~node:"no-such-node" dp in
  check Alcotest.int "routes for unknown node: empty, no raise" 0
    (List.length ans.Questions.a_rows)

(* The chaos property (acceptance criterion): across >= 200 seeded mutations
   of generated networks, check_all and dataplane never raise, every diag is
   well-formed, and un-mutated nodes are never quarantined. *)
let seeds_per_profile = 50

let chaos_profiles =
  [ ("clos", fun () -> Netgen.clos ~name:"cx" ~spines:2 ~leaves:3 ());
    ("enterprise", fun () -> Netgen.enterprise ~name:"ce" ~sites:3 ());
    ("campus", fun () -> Netgen.campus ~name:"cc" ~buildings:3 ());
    ("wan", fun () -> Netgen.wan ~name:"cw" ~pops:4 ()) ]

let chaos_property () =
  let total = ref 0 in
  List.iteri
    (fun bi (pname, make) ->
      let base = make () in
      let hostname_of_file =
        List.map
          (fun (fname, text) -> (fname, (fst (Parse.parse_config text)).Vi.hostname))
          base.Netgen.n_configs
      in
      for seed = 0 to seeds_per_profile - 1 do
        incr total;
        let where = Printf.sprintf "%s seed %d" pname seed in
        let rng = Rng.create ((1000 * bi) + seed) in
        let mutated, applied =
          Chaos.mutate_network ~rng ~mutations:(1 + Rng.int rng 3) (make ())
        in
        let bf =
          Batfish.init ~env:mutated.Netgen.n_env
            (Batfish.Snapshot.of_texts mutated.Netgen.n_configs)
        in
        (try ignore (Batfish.check_all bf)
         with exn ->
           Alcotest.failf "%s: check_all raised %s" where (Printexc.to_string exn));
        let dp =
          try Batfish.dataplane bf
          with exn ->
            Alcotest.failf "%s: dataplane raised %s" where (Printexc.to_string exn)
        in
        well_formed_diags bf;
        (* A non-converged result must say why. *)
        if not dp.Dataplane.converged then
          check Alcotest.bool (where ^ ": non-convergence explained") true
            (has_code Diag.code_bgp_fuel_exhausted dp.Dataplane.diags
            || has_code Diag.code_oscillation dp.Dataplane.diags
            || has_code Diag.code_outer_fuel_exhausted dp.Dataplane.diags);
        (* Un-mutated nodes stay in the simulation with results. *)
        let affected = Chaos.affected_files applied in
        List.iter
          (fun (fname, host) ->
            if not (List.mem fname affected) then begin
              if List.mem_assoc host dp.Dataplane.quarantined then
                Alcotest.failf "%s: un-mutated node %s was quarantined (%s)" where host
                  (List.assoc host dp.Dataplane.quarantined);
              if Dataplane.node_opt dp host = None then
                Alcotest.failf "%s: un-mutated node %s missing" where host
            end)
          hostname_of_file
      done)
    chaos_profiles;
  check Alcotest.bool "ran >= 200 mutations" true (!total >= 200)

let suites =
  [ ( "chaos",
      [ Alcotest.test_case "malformed fixtures" `Quick malformed_fixtures;
        Alcotest.test_case "duplicate hostname first-wins" `Quick duplicate_hostname_first_wins;
        Alcotest.test_case "of_dir skips unreadable" `Quick of_dir_skips_unreadable;
        Alcotest.test_case "quarantine poisoned node" `Quick quarantine_poisoned_node;
        Alcotest.test_case "fuel budget" `Quick fuel_budget;
        Alcotest.test_case "unknown names graceful" `Quick unknown_names_graceful;
        Alcotest.test_case "chaos property (seeded mutations)" `Slow chaos_property ] ) ]
