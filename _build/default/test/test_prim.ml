(* Tests for bf_prim: addresses, prefixes, tries, rng, interning, par. *)

let check = Alcotest.check
let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let ip_gen = QCheck.Gen.(map (fun i -> i land 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF))
let ip_arb = QCheck.make ~print:Ipv4.to_string ip_gen

let prefix_gen =
  QCheck.Gen.(
    map2 (fun ip len -> Prefix.make (ip land 0xFFFF_FFFF) len) (int_range 0 0xFFFF_FFFF) (int_bound 32))

let prefix_arb = QCheck.make ~print:Prefix.to_string prefix_gen

(* --- Ipv4 --- *)

let ipv4_units () =
  check Alcotest.int "of_octets" 0x0A000001 (Ipv4.of_octets 10 0 0 1);
  check Alcotest.string "to_string" "10.0.0.1" (Ipv4.to_string (Ipv4.of_octets 10 0 0 1));
  check Alcotest.int "of_string" (Ipv4.of_octets 192 168 1 200) (Ipv4.of_string "192.168.1.200");
  check Alcotest.bool "junk rejected" true (Ipv4.of_string_opt "1.2.3.4x" = None);
  check Alcotest.bool "overflow rejected" true (Ipv4.of_string_opt "1.2.3.256" = None);
  check Alcotest.bool "short rejected" true (Ipv4.of_string_opt "1.2.3" = None);
  check Alcotest.bool "empty octet rejected" true (Ipv4.of_string_opt "1..2.3" = None);
  check Alcotest.bool "msb" true (Ipv4.bit (Ipv4.of_octets 128 0 0 0) 0);
  check Alcotest.bool "lsb" true (Ipv4.bit (Ipv4.of_octets 0 0 0 1) 31);
  check Alcotest.int "succ wraps" 0 (Ipv4.succ Ipv4.max_value);
  check Alcotest.bool "multicast" true (Ipv4.is_multicast (Ipv4.of_string "224.0.0.5"));
  check Alcotest.bool "private 172.16" true (Ipv4.is_private (Ipv4.of_string "172.16.0.1"));
  check Alcotest.bool "not private" false (Ipv4.is_private (Ipv4.of_string "8.8.8.8"))

let ipv4_roundtrip =
  qtest "ipv4 string roundtrip" QCheck.(make ip_gen)
    (fun ip -> Ipv4.of_string (Ipv4.to_string ip) = ip)

(* --- Prefix --- *)

let prefix_units () =
  let p = Prefix.of_string "10.1.2.3/24" in
  check Alcotest.string "canonicalized" "10.1.2.0/24" (Prefix.to_string p);
  check Alcotest.bool "contains" true (Prefix.contains p (Ipv4.of_string "10.1.2.255"));
  check Alcotest.bool "not contains" false (Prefix.contains p (Ipv4.of_string "10.1.3.0"));
  check Alcotest.string "mask" "255.255.255.0" (Ipv4.to_string (Prefix.mask p));
  check Alcotest.string "broadcast" "10.1.2.255" (Ipv4.to_string (Prefix.broadcast p));
  check Alcotest.string "first host" "10.1.2.1" (Ipv4.to_string (Prefix.first_host p));
  let p31 = Prefix.of_string "10.0.0.0/31" in
  check Alcotest.string "/31 first host" "10.0.0.0" (Ipv4.to_string (Prefix.first_host p31));
  check Alcotest.bool "contains_prefix" true
    (Prefix.contains_prefix (Prefix.of_string "10.0.0.0/8") p);
  check Alcotest.bool "no larger prefix" false
    (Prefix.contains_prefix p (Prefix.of_string "10.0.0.0/8"));
  let a, b = Prefix.split (Prefix.of_string "10.0.0.0/8") in
  check Alcotest.string "split lo" "10.0.0.0/9" (Prefix.to_string a);
  check Alcotest.string "split hi" "10.128.0.0/9" (Prefix.to_string b);
  check Alcotest.string "bare ip is /32" "1.2.3.4/32"
    (Prefix.to_string (Prefix.of_string "1.2.3.4"))

let prefix_roundtrip =
  qtest "prefix string roundtrip" prefix_arb
    (fun p -> Prefix.equal (Prefix.of_string (Prefix.to_string p)) p)

let prefix_split_partition =
  qtest "split partitions membership" (QCheck.pair prefix_arb ip_arb) (fun (p, ip) ->
      QCheck.assume (Prefix.length p < 32);
      let a, b = Prefix.split p in
      Prefix.contains p ip = (Prefix.contains a ip || Prefix.contains b ip)
      && not (Prefix.contains a ip && Prefix.contains b ip))

(* --- Prefix_trie: model-based --- *)

let trie_of_assoc l = List.fold_left (fun t (p, v) -> Prefix_trie.add p v t) Prefix_trie.empty l

let model_find l p =
  List.fold_left (fun acc (q, v) -> if Prefix.equal p q then Some v else acc) None l

let model_lpm l ip =
  List.fold_left
    (fun acc (q, v) ->
      if Prefix.contains q ip then
        match acc with
        | Some (best, _) when Prefix.length best > Prefix.length q -> acc
        | _ -> Some (q, v)
      else acc)
    None l

let assoc_gen = QCheck.Gen.(list_size (int_bound 30) (pair prefix_gen small_nat))

let trie_find_matches_model =
  qtest "trie find = model"
    (QCheck.pair (QCheck.make assoc_gen) prefix_arb)
    (fun (l, p) -> Prefix_trie.find p (trie_of_assoc l) = model_find l p)

let trie_lpm_matches_model =
  qtest "trie longest_match = model"
    (QCheck.pair (QCheck.make assoc_gen) ip_arb)
    (fun (l, ip) ->
      let t = trie_of_assoc l in
      match (Prefix_trie.longest_match ip t, model_lpm l ip) with
      | None, None -> true
      | Some (p, v), Some (q, w) -> Prefix.equal p q && v = w
      | _ -> false)

let trie_remove_then_absent =
  qtest "remove makes find None" (QCheck.make assoc_gen) (fun l ->
      let t = trie_of_assoc l in
      List.for_all (fun (p, _) -> Prefix_trie.find p (Prefix_trie.remove p t) = None) l)

let trie_units () =
  let t =
    trie_of_assoc
      [ (Prefix.of_string "10.0.0.0/8", 1); (Prefix.of_string "10.1.0.0/16", 2);
        (Prefix.of_string "10.1.1.0/24", 3); (Prefix.of_string "0.0.0.0/0", 0) ]
  in
  let lpm ip =
    match Prefix_trie.longest_match (Ipv4.of_string ip) t with
    | Some (_, v) -> v
    | None -> -1
  in
  check Alcotest.int "lpm /24" 3 (lpm "10.1.1.5");
  check Alcotest.int "lpm /16" 2 (lpm "10.1.2.5");
  check Alcotest.int "lpm /8" 1 (lpm "10.2.0.1");
  check Alcotest.int "lpm default" 0 (lpm "192.168.0.1");
  check Alcotest.int "cardinal" 4 (Prefix_trie.cardinal t);
  check Alcotest.int "all_matches count" 4
    (List.length (Prefix_trie.all_matches (Ipv4.of_string "10.1.1.5") t));
  check Alcotest.int "within 10/8" 3
    (List.length (Prefix_trie.within (Prefix.of_string "10.0.0.0/8") t));
  check Alcotest.bool "empty trie is empty" true (Prefix_trie.is_empty Prefix_trie.empty);
  check Alcotest.bool "removal restores emptiness" true
    (Prefix_trie.is_empty
       (Prefix_trie.remove (Prefix.of_string "1.0.0.0/8")
          (Prefix_trie.add (Prefix.of_string "1.0.0.0/8") 5 Prefix_trie.empty)))

let trie_within_under_prefix =
  qtest "within only returns contained prefixes"
    (QCheck.pair (QCheck.make assoc_gen) prefix_arb)
    (fun (l, p) ->
      Prefix_trie.within p (trie_of_assoc l)
      |> List.for_all (fun (q, _) -> Prefix.contains_prefix p q))

(* --- Packet --- *)

let packet_units () =
  let p = Packet.tcp ~src:(Ipv4.of_string "1.1.1.1") ~dst:(Ipv4.of_string "2.2.2.2") 443 in
  check Alcotest.int "dport" 443 p.Packet.dst_port;
  check Alcotest.string "flags" "SYN" (Packet.Tcp_flags.to_string p.Packet.tcp_flags);
  check Alcotest.string "no flags" "-" (Packet.Tcp_flags.to_string 0);
  check Alcotest.string "synack" "SYN|ACK"
    (Packet.Tcp_flags.to_string (Packet.Tcp_flags.syn lor Packet.Tcp_flags.ack));
  let i = Packet.icmp ~src:(Ipv4.of_string "1.1.1.1") ~dst:(Ipv4.of_string "2.2.2.2") () in
  check Alcotest.int "icmp proto" Packet.Proto.icmp i.Packet.protocol;
  check Alcotest.int "echo request" 8 i.Packet.icmp_type

(* --- Rng --- *)

let rng_units () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  check Alcotest.(list int) "deterministic" (seq a) (seq b);
  let c = Rng.create 43 in
  check Alcotest.bool "different seeds differ" true (seq (Rng.create 42) <> seq c);
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle (Rng.create 1) arr;
  check Alcotest.(list int) "shuffle is a permutation" (List.init 20 Fun.id)
    (List.sort Int.compare (Array.to_list arr))

(* --- Intern --- *)

module String_intern = Intern.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let intern_units () =
  let pool = String_intern.create () in
  let a = String_intern.intern pool (String.concat "" [ "he"; "llo" ]) in
  let b = String_intern.intern pool (String.concat "" [ "hel"; "lo" ]) in
  check Alcotest.bool "physically shared" true (a == b);
  check Alcotest.int "distinct" 1 (String_intern.distinct pool);
  check Alcotest.int "requests" 2 (String_intern.requests pool);
  ignore (String_intern.intern pool "world");
  check Alcotest.int "distinct 2" 2 (String_intern.distinct pool);
  String_intern.clear pool;
  check Alcotest.int "cleared" 0 (String_intern.distinct pool)

(* --- Par --- *)

let par_matches_seq =
  qtest ~count:50 "par map = seq map"
    QCheck.(list small_int)
    (fun l ->
      let arr = Array.of_list l in
      Par.map ~domains:4 (fun x -> (x * x) + 1) arr = Array.map (fun x -> (x * x) + 1) arr)

(* --- Table --- *)

let table_units () =
  let s = Table.to_string ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  check Alcotest.bool "header present" true (String.length s > 0);
  check Alcotest.bool "rows present" true
    (String.split_on_char '\n' s |> List.length >= 4)

let suites =
  [ ( "prim.ipv4",
      [ Alcotest.test_case "units" `Quick ipv4_units; ipv4_roundtrip ] );
    ( "prim.prefix",
      [ Alcotest.test_case "units" `Quick prefix_units; prefix_roundtrip;
        prefix_split_partition ] );
    ( "prim.trie",
      [ Alcotest.test_case "units" `Quick trie_units; trie_find_matches_model;
        trie_lpm_matches_model; trie_remove_then_absent; trie_within_under_prefix ] );
    ("prim.packet", [ Alcotest.test_case "units" `Quick packet_units ]);
    ("prim.rng", [ Alcotest.test_case "units" `Quick rng_units ]);
    ("prim.intern", [ Alcotest.test_case "units" `Quick intern_units ]);
    ("prim.par", [ par_matches_seq ]);
    ("prim.table", [ Alcotest.test_case "units" `Quick table_units ]) ]
