test/test_baselines.ml: Alcotest Apt Array Bdd Cube Datalog Datalog_cp Dataplane Fgraph Fquery Hsa_engine Ipv4 List Netgen Packet Parse Pktset Prefix Printf QCheck QCheck_alcotest Rib String Vi
