test/test_forwarding.ml: Alcotest Array Bdd Dataplane Fgraph Field Fquery Ipv4 List Packet Parse Pktset Prefix QCheck QCheck_alcotest String Traceroute Vi
