test/test_symbolic.ml: Alcotest Array Bdd Field Ipv4 List Packet Pktset Prefix QCheck QCheck_alcotest
