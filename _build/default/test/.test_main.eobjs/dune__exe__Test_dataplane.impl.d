test/test_dataplane.ml: Alcotest Attrs Dataplane Dp_env Fib Ipv4 List Parse Prefix Printf Rib Route Route_proto String
