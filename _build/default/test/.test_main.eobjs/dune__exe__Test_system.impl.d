test/test_system.ml: Alcotest Batfish Bdd Dataplane Field Fquery Ipv4 List Netgen Option Packet Pktset Prefix Printf Questions Re String Vi Warning
