test/test_extra.ml: Acl_eval Alcotest Attrs Batfish Dataplane Fib Ipv4 Labs List Netgen Option Packet Parse Pktset Prefix Questions Re Rib Route Route_proto String Traceroute Vi
