test/test_routing.ml: Acl_eval Alcotest Array Attrs Cmp Coloring Ipv4 L3 List Option Packet Parse Policy_eval Prefix QCheck QCheck_alcotest Rib Route Route_proto Scc String Vi
