test/test_prim.ml: Alcotest Array Fun Hashtbl Int Intern Ipv4 List Packet Par Prefix Prefix_trie QCheck QCheck_alcotest Rng String Table
