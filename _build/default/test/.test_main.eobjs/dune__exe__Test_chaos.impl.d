test/test_chaos.ml: Alcotest Batfish Chaos Char Dataplane Diag Filename Ipv4 List Netgen Parse Printexc Printf Questions Rib Rng String Sys Unix Vi
