test/test_config.ml: Alcotest Ipv4 List Option Parse Prefix QCheck QCheck_alcotest String Vi Warning
