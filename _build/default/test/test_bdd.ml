(* Tests for the BDD engine: semantics against brute-force truth tables,
   canonicity, quantification, renaming, and the fused transform. *)

let nv = 8 (* brute force over 2^8 assignments *)

(* Random boolean expressions, evaluated both directly and via BDDs. *)
type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr

let rec eval_expr env = function
  | Evar i -> env i
  | Enot e -> not (eval_expr env e)
  | Eand (a, b) -> eval_expr env a && eval_expr env b
  | Eor (a, b) -> eval_expr env a || eval_expr env b
  | Exor (a, b) -> eval_expr env a <> eval_expr env b

let rec build m = function
  | Evar i -> Bdd.var m i
  | Enot e -> Bdd.bnot m (build m e)
  | Eand (a, b) -> Bdd.band m (build m a) (build m b)
  | Eor (a, b) -> Bdd.bor m (build m a) (build m b)
  | Exor (a, b) -> Bdd.bxor m (build m a) (build m b)

let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun i -> Evar i) (int_bound (nv - 1))
        else
          frequency
            [ (1, map (fun i -> Evar i) (int_bound (nv - 1)));
              (2, map (fun e -> Enot e) (self (n / 2)));
              (2, map2 (fun a b -> Eand (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Eor (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Exor (a, b)) (self (n / 2)) (self (n / 2))) ]))

let rec expr_print = function
  | Evar i -> Printf.sprintf "x%d" i
  | Enot e -> Printf.sprintf "!(%s)" (expr_print e)
  | Eand (a, b) -> Printf.sprintf "(%s & %s)" (expr_print a) (expr_print b)
  | Eor (a, b) -> Printf.sprintf "(%s | %s)" (expr_print a) (expr_print b)
  | Exor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_print a) (expr_print b)

let expr_arb = QCheck.make ~print:expr_print expr_gen

let env_of_int a i = (a lsr i) land 1 = 1

let all_assignments f =
  let rec go a = a >= 1 lsl nv || (f a && go (a + 1)) in
  go 0

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let semantics =
  qtest "bdd matches truth table" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let t = build m e in
      all_assignments (fun a ->
          Bdd.eval m t (env_of_int a) = eval_expr (env_of_int a) e))

let canonicity =
  qtest "equivalent functions share a node" (QCheck.pair expr_arb expr_arb)
    (fun (e1, e2) ->
      let m = Bdd.create ~nvars:nv () in
      let t1 = build m e1 and t2 = build m e2 in
      let equiv =
        all_assignments (fun a -> eval_expr (env_of_int a) e1 = eval_expr (env_of_int a) e2)
      in
      Bdd.equal t1 t2 = equiv)

let de_morgan =
  qtest "de morgan" (QCheck.pair expr_arb expr_arb) (fun (e1, e2) ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e1 and b = build m e2 in
      Bdd.equal
        (Bdd.bnot m (Bdd.band m a b))
        (Bdd.bor m (Bdd.bnot m a) (Bdd.bnot m b)))

let double_negation =
  qtest "double negation" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e in
      Bdd.equal a (Bdd.bnot m (Bdd.bnot m a)))

let diff_is_and_not =
  qtest "diff = and-not" (QCheck.pair expr_arb expr_arb) (fun (e1, e2) ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e1 and b = build m e2 in
      Bdd.equal (Bdd.bdiff m a b) (Bdd.band m a (Bdd.bnot m b)))

let exists_semantics =
  qtest "exists = or of cofactors" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e in
      let vs = Bdd.varset m [ 0; 2; 5 ] in
      let q = Bdd.exists m vs a in
      all_assignments (fun asn ->
          let expected =
            (* or over the 8 combinations of quantified vars *)
            List.exists
              (fun combo ->
                let env i =
                  match i with
                  | 0 -> combo land 1 = 1
                  | 2 -> combo land 2 = 2
                  | 5 -> combo land 4 = 4
                  | _ -> env_of_int asn i
                in
                eval_expr env e)
              [ 0; 1; 2; 3; 4; 5; 6; 7 ]
          in
          Bdd.eval m q (env_of_int asn) = expected))

let exists_removes_support =
  qtest "exists removes quantified vars from support" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e in
      let vs = Bdd.varset m [ 1; 3 ] in
      let q = Bdd.exists m vs a in
      List.for_all (fun v -> v <> 1 && v <> 3) (Bdd.support m q))

let and_exists_fusion =
  qtest "and_exists = exists . and" (QCheck.pair expr_arb expr_arb)
    (fun (e1, e2) ->
      let m = Bdd.create ~nvars:nv () in
      let a = build m e1 and b = build m e2 in
      let vs = Bdd.varset m [ 0; 4; 7 ] in
      Bdd.equal (Bdd.and_exists m vs a b) (Bdd.exists m vs (Bdd.band m a b)))

(* Renaming: build over even vars, shift up to odd vars. *)
let replace_shift =
  qtest "replace shifts assignments" expr_arb (fun e ->
      let m = Bdd.create ~nvars:(2 * nv) () in
      let rec remap = function
        | Evar i -> Evar (2 * i)
        | Enot x -> Enot (remap x)
        | Eand (x, y) -> Eand (remap x, remap y)
        | Eor (x, y) -> Eor (remap x, remap y)
        | Exor (x, y) -> Exor (remap x, remap y)
      in
      let e = remap e in
      let a = build m e in
      let pm = Bdd.perm m (List.init nv (fun k -> (2 * k, (2 * k) + 1))) in
      let shifted = Bdd.replace m pm a in
      all_assignments (fun asn ->
          (* original reads var 2k; shifted must read var 2k+1 *)
          let env_orig i = if i mod 2 = 0 then env_of_int asn (i / 2) else false in
          let env_shift i = if i mod 2 = 1 then env_of_int asn (i / 2) else false in
          Bdd.eval m a env_orig = Bdd.eval m shifted env_shift))

(* Fused transform vs the three separate steps, on an interleaved layout. *)
let transform_fused_matches_unfused =
  qtest "transform fused = unfused" (QCheck.pair expr_arb expr_arb)
    (fun (e_set, e_guard) ->
      let m = Bdd.create ~nvars:(2 * nv) () in
      let rec to_unprimed_expr = function
        | Evar i -> Evar (2 * i)
        | Enot x -> Enot (to_unprimed_expr x)
        | Eand (x, y) -> Eand (to_unprimed_expr x, to_unprimed_expr y)
        | Eor (x, y) -> Eor (to_unprimed_expr x, to_unprimed_expr y)
        | Exor (x, y) -> Exor (to_unprimed_expr x, to_unprimed_expr y)
      in
      let set = build m (to_unprimed_expr e_set) in
      let guard = build m (to_unprimed_expr e_guard) in
      (* rel: guard on inputs; outputs x'k = xk for k >= 2; x'0, x'1 free. *)
      let identity k =
        Bdd.bnot m (Bdd.bxor m (Bdd.var m (2 * k)) (Bdd.var m ((2 * k) + 1)))
      in
      let rel =
        Bdd.conj m (guard :: List.init (nv - 2) (fun k -> identity (k + 2)))
      in
      let quant = Bdd.varset m (List.init nv (fun k -> 2 * k)) in
      let rename = Bdd.perm m (List.init nv (fun k -> ((2 * k) + 1, 2 * k))) in
      Bdd.equal
        (Bdd.transform m ~rel ~quant ~rename set)
        (Bdd.transform_unfused m ~rel ~quant ~rename set))

let sat_count_matches =
  qtest "sat_count = brute count" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let t = build m e in
      let count = ref 0 in
      for a = 0 to (1 lsl nv) - 1 do
        if eval_expr (env_of_int a) e then incr count
      done;
      abs_float (Bdd.sat_count m t -. float_of_int !count) < 0.5)

let any_sat_satisfies =
  qtest "any_sat satisfies" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let t = build m e in
      match Bdd.any_sat m t with
      | None -> Bdd.is_bot t
      | Some assignment ->
        let env i =
          match List.assoc_opt i assignment with
          | Some b -> b
          | None -> false
        in
        Bdd.eval m t env)

let restrict_semantics =
  qtest "restrict fixes a variable" expr_arb (fun e ->
      let m = Bdd.create ~nvars:nv () in
      let t = build m e in
      let r1 = Bdd.restrict m 3 true t in
      let r0 = Bdd.restrict m 3 false t in
      all_assignments (fun a ->
          let env = env_of_int a in
          let env_with v i = if i = 3 then v else env i in
          Bdd.eval m r1 env = eval_expr (env_with true) e
          && Bdd.eval m r0 env = eval_expr (env_with false) e))

let pick_preferred_subset =
  qtest "pick_preferred returns nonempty subset" (QCheck.pair expr_arb expr_arb)
    (fun (e, p) ->
      let m = Bdd.create ~nvars:nv () in
      let t = build m e and pref = build m p in
      QCheck.assume (not (Bdd.is_bot t));
      let picked = Bdd.pick_preferred m t [ pref; Bdd.var m 0 ] in
      (not (Bdd.is_bot picked)) && Bdd.is_bot (Bdd.bdiff m picked t))

let units () =
  let m = Bdd.create ~nvars:4 () in
  Alcotest.check Alcotest.bool "top is top" true (Bdd.is_top Bdd.top);
  Alcotest.check Alcotest.bool "x and !x = bot" true
    (Bdd.is_bot (Bdd.band m (Bdd.var m 1) (Bdd.nvar m 1)));
  Alcotest.check Alcotest.bool "x or !x = top" true
    (Bdd.is_top (Bdd.bor m (Bdd.var m 1) (Bdd.nvar m 1)));
  Alcotest.check Alcotest.bool "ite(x,1,0) = x" true
    (Bdd.equal (Bdd.ite m (Bdd.var m 2) Bdd.top Bdd.bot) (Bdd.var m 2));
  Alcotest.check Alcotest.int "var size" 3 (Bdd.size m (Bdd.var m 0));
  Alcotest.check Alcotest.bool "implies" true
    (Bdd.is_top (Bdd.bimplies m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 0)));
  let x0 = Bdd.var m 0 in
  Alcotest.check Alcotest.bool "sat_count of one var" true
    (Bdd.sat_count m x0 = 8.0);
  Alcotest.check (Alcotest.list Alcotest.int) "support" [ 0; 3 ]
    (Bdd.support m (Bdd.band m (Bdd.var m 0) (Bdd.var m 3)))

let node_growth () =
  (* Force unique-table resizes and array growth. *)
  let m = Bdd.create ~nvars:24 () in
  let acc = ref Bdd.bot in
  for i = 0 to 4000 do
    let v1 = Bdd.var m (i mod 24) and v2 = Bdd.var m ((i * 7) mod 24) in
    acc := Bdd.bor m !acc (Bdd.band m v1 (Bdd.bxor m v2 !acc))
  done;
  let nodes, hits, misses = Bdd.stats m in
  Alcotest.check Alcotest.bool "many nodes" true (nodes > 1000);
  Alcotest.check Alcotest.bool "cache used" true (hits > 0 && misses > 0)

let suites =
  [ ( "bdd.core",
      [ Alcotest.test_case "units" `Quick units;
        Alcotest.test_case "growth" `Quick node_growth;
        semantics; canonicity; de_morgan; double_negation; diff_is_and_not ] );
    ( "bdd.quantify",
      [ exists_semantics; exists_removes_support; and_exists_fusion;
        replace_shift; transform_fused_matches_unfused ] );
    ( "bdd.sat",
      [ sat_count_matches; any_sat_satisfies; restrict_semantics;
        pick_preferred_subset ] ) ]
